/**
 * @file
 * ta_sim: command-line driver for the simulator. Runs one GEMM through
 * the TransArray model (and optionally every baseline) and prints
 * cycles, the energy breakdown and the transitive-sparsity statistics.
 *
 * Usage:
 *   ta_sim [--n N] [--k K] [--m M] [--wbits B] [--abits B]
 *          [--tbits T] [--maxdist D] [--units U] [--static]
 *          [--baselines] [--seed S] [--samples LIMIT] [--threads N]
 *          [--plan-cache FILE] [--batch N] [--response]
 *
 * Host threading: --threads N shards the sub-tile loop across N worker
 * threads (results are bit-identical for any N); defaults to the
 * TA_THREADS environment variable, else 1.
 *
 * Batched dispatch: --batch N runs N instances of the GEMM as one
 * batch window with multiple layers in flight on the executor
 * (runLayersBatched); instance i draws weights with the layerSeed()
 * rule seed+i, so instance 0 reproduces the --batch 1 run exactly.
 *
 * Plan persistence: --plan-cache FILE warm-starts the scoreboard plan
 * cache from a previous run's snapshot and saves the merged snapshot
 * back on exit (simulated results are unaffected — plans are pure).
 *
 * Service protocol: --response prints only the canonical response
 * line of docs/SERVICE.md for this request (id 0) — the standalone
 * reference a `ta_serve` response must match byte for byte.
 *
 * Numeric flags are validated (garbage, out-of-range and sign errors
 * are rejected with a clear message instead of silently becoming 0).
 *
 * Example (LLaMA-7B q_proj at int4):
 *   ta_sim --n 4096 --k 4096 --m 2048 --wbits 4 --baselines
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baselines/baseline.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/accelerator.h"
#include "exec/parallel_executor.h"
#include "harness/plan_cache_store.h"
#include "kernels/kernel_table.h"
#include "service/protocol.h"
#include "workloads/suite_runner.h"

using namespace ta;

namespace {

struct Options
{
    ServiceRequest req; ///< shape/engine fields share ta_serve defaults
    bool baselines = false;
    bool response = false;
    int threads = ParallelExecutor::defaultThreads();
    std::string planCache;
    size_t batch = 1;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--n N] [--k K] [--m M] [--wbits B] [--abits B]\n"
        "          [--tbits T] [--maxdist D] [--units U] [--static]\n"
        "          [--baselines] [--seed S] [--samples LIMIT]\n"
        "          [--threads N] [--plan-cache FILE] [--batch N]\n"
        "          [--kernels scalar|avx2|neon|auto] [--response]\n",
        argv0);
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    ServiceRequest &r = opt.req;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--static") {
            r.useStatic = true;
            continue;
        }
        if (a == "--baselines") {
            opt.baselines = true;
            continue;
        }
        if (a == "--response") {
            opt.response = true;
            continue;
        }
        if (a == "--help" || a == "-h")
            return false;
        const bool known =
            a == "--n" || a == "--k" || a == "--m" || a == "--wbits" ||
            a == "--abits" || a == "--tbits" || a == "--maxdist" ||
            a == "--units" || a == "--seed" || a == "--samples" ||
            a == "--threads" || a == "--plan-cache" ||
            a == "--batch" || a == "--kernels";
        if (!known) {
            std::fprintf(stderr, "unknown flag %s\n", a.c_str());
            return false;
        }
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", a.c_str());
            return false;
        }
        const char *v = argv[++i];
        bool ok = true;
        constexpr uint64_t kMaxDim = 1ull << 24;
        if (a == "--n")
            ok = parseU64Flag(a, v, 0, kMaxDim, r.shape.n);
        else if (a == "--k")
            ok = parseU64Flag(a, v, 0, kMaxDim, r.shape.k);
        else if (a == "--m")
            ok = parseU64Flag(a, v, 0, kMaxDim, r.shape.m);
        else if (a == "--wbits")
            ok = parseIntFlag(a, v, 1, 16, r.wbits);
        else if (a == "--abits")
            ok = parseIntFlag(a, v, 1, 8, r.abits);
        else if (a == "--tbits")
            ok = parseIntFlag(a, v, 1, 16, r.tbits);
        else if (a == "--maxdist")
            ok = parseIntFlag(a, v, 0, 64, r.maxdist);
        else if (a == "--units") {
            int units = 0;
            ok = parseIntFlag(a, v, 1, 64, units);
            r.units = static_cast<uint32_t>(units);
        } else if (a == "--seed")
            ok = parseU64Flag(a, v, 0, ~0ull, r.seed);
        else if (a == "--samples")
            ok = parseSizeFlag(a, v, 0, 1u << 20, r.samples);
        else if (a == "--threads")
            ok = parseIntFlag(a, v, 1, 256, opt.threads);
        else if (a == "--plan-cache")
            opt.planCache = v;
        else if (a == "--batch")
            ok = parseSizeFlag(a, v, 1, 4096, opt.batch);
        else if (a == "--kernels") {
            std::string err;
            ok = setKernels(v, &err);
            if (!ok)
                std::fprintf(stderr, "--kernels: %s\n", err.c_str());
        }
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage(argv[0]);
        return 2;
    }
    const ServiceRequest &req = opt.req;

    // The one engine builder shared with ta_serve and ta_loadgen, so
    // "the same request" always selects the same configuration.
    TransArrayAccelerator::Config cfg =
        engineConfig(engineKeyOf(req), opt.threads);
    TransArrayAccelerator acc(cfg); // non-const: --plan-cache warm-start

    PlanCacheStore store;
    const ScoreboardConfig sc = cfg.unit.scoreboardConfig();
    if (!opt.planCache.empty() && opt.response) {
        // --response keeps stdout protocol-clean: load silently.
        if (store.loadFile(opt.planCache))
            store.restore(sc, acc.planCache());
    } else if (!opt.planCache.empty() &&
               loadPlanCacheFile(store, opt.planCache)) {
        store.restore(sc, acc.planCache());
    }

    if (opt.response) {
        const LayerRun run = acc.runShape(req.shape, req.wbits,
                                          req.seed);
        std::printf("%s\n", serializeResponse(req, run).c_str());
        if (!opt.planCache.empty()) {
            store.capture(sc, acc.planCache());
            store.saveFile(opt.planCache);
        }
        return 0;
    }

    std::printf("GEMM %llu x %llu x %llu, int%d weights, int%d "
                "activations (%.2f GMACs)\n",
                static_cast<unsigned long long>(req.shape.n),
                static_cast<unsigned long long>(req.shape.k),
                static_cast<unsigned long long>(req.shape.m), req.wbits,
                req.abits, req.shape.macs() / 1e9);
    std::printf("TransArray: T=%d, maxDistance=%d, %u units, %s "
                "scoreboard, %d host thread(s)\n\n",
                req.tbits, req.maxdist, req.units,
                req.useStatic ? "static" : "dynamic", acc.threads());

    // --batch N keeps N instances of the GEMM in flight on the
    // executor; instance i seeds with layerSeed(seed, i) = seed + i, so
    // instance 0 is byte-identical to the unbatched run and the table
    // below is unchanged by the batch width.
    LayerRun ta;
    double batch_secs = 0;
    uint64_t batch_cycles = 0;
    uint64_t sampled_total = 0;
    if (opt.batch > 1) {
        std::vector<BatchLayerRequest> reqs(opt.batch);
        for (size_t i = 0; i < opt.batch; ++i)
            reqs[i] = BatchLayerRequest{req.shape, req.wbits,
                                        layerSeed(req.seed, i)};
        const auto t0 = std::chrono::steady_clock::now();
        const std::vector<LayerRun> runs = acc.runLayersBatched(reqs);
        batch_secs = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
        for (const LayerRun &r : runs) {
            batch_cycles += r.cycles;
            sampled_total += r.exec.get("exec.sampledSubTiles");
        }
        ta = runs.front();
    } else {
        ta = acc.runShape(req.shape, req.wbits, req.seed);
        sampled_total = ta.exec.get("exec.sampledSubTiles");
    }

    Table t("results");
    t.setHeader({"Arch", "Cycles", "ms @500MHz", "Energy (uJ)",
                 "Speedup vs TA"});
    auto row = [&](const std::string &name, const LayerRun &r) {
        t.addRow({name, std::to_string(r.cycles),
                  Table::fmt(r.cycles / 500e3, 3),
                  Table::fmt(r.energy.total() / 1e6, 2),
                  Table::fmt(static_cast<double>(r.cycles) / ta.cycles,
                             2)});
    };
    row("TransArray-" + std::to_string(req.wbits) + "bit", ta);
    if (opt.baselines) {
        for (const char *name :
             {"BitFusion", "ANT", "Olive", "Tender", "BitVert"}) {
            const LayerRun r = makeBaseline(name)->runGemm(
                req.shape, std::max(req.wbits, 4), req.abits, 0.5);
            row(name, r);
        }
    }
    t.print();

    const SparsityStats &s = ta.sparsity;
    std::printf("transitive density %.2f%% (bit sparsity %.1f%%): "
                "PR %.1f%% FR %.1f%% TR %.2f%% ZR rows %.1f%%\n",
                100 * s.totalDensity(), 100 * s.bitDensity(),
                100 * s.prDensity(), 100 * s.frDensity(),
                100 * s.trDensity(), 100 * s.zrSparsity());
    std::printf("compute %llu cycles, DRAM %llu cycles -> %s-bound\n",
                static_cast<unsigned long long>(ta.computeCycles),
                static_cast<unsigned long long>(ta.dramCycles),
                ta.computeCycles >= ta.dramCycles ? "compute" : "DRAM");
    if (opt.batch > 1) {
        std::printf("batched dispatch: %zu layers in flight, %llu total "
                    "cycles, %.3fs host wall (%.1f layers/s)\n",
                    opt.batch,
                    static_cast<unsigned long long>(batch_cycles),
                    batch_secs, opt.batch / batch_secs);
    }
    const PlanCache::Counters pc = acc.planCacheCounters();
    // With --batch > 1 the counts cover every instance, matching the
    // accelerator-lifetime plan-cache counters on the same line.
    std::printf("host: %llu sampled sub-tiles, plan cache %llu hits / "
                "%llu misses (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(sampled_total),
                static_cast<unsigned long long>(pc.hits),
                static_cast<unsigned long long>(pc.misses),
                100.0 * pc.hitRate());
    if (!opt.planCache.empty()) {
        store.capture(sc, acc.planCache());
        savePlanCacheFile(store, opt.planCache);
    }
    return 0;
}
