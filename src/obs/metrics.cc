#include "obs/metrics.h"

#include <cmath>

namespace ta {
namespace obs {

void
Histogram::observe(double ms)
{
    if (!(ms >= 0))
        ms = 0;
    int bucket = kNumEdges; // overflow unless an edge covers it
    for (int i = 0; i < kNumEdges; ++i) {
        if (ms <= static_cast<double>(edgeMs(i))) {
            bucket = i;
            break;
        }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sumUs_.fetch_add(static_cast<uint64_t>(ms * 1e3),
                     std::memory_order_relaxed);
}

uint64_t
Histogram::cumulative(int i) const
{
    uint64_t n = 0;
    for (int b = 0; b <= i && b <= kNumEdges; ++b)
        n += buckets_[b].load(std::memory_order_relaxed);
    return n;
}

MetricsRegistry::Entry &
MetricsRegistry::entryFor(const std::string &name, MetricKind kind)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = byName_.find(name);
    if (it != byName_.end())
        return *it->second;
    auto entry = std::make_unique<Entry>();
    entry->name = name;
    entry->kind = kind;
    switch (kind) {
      case MetricKind::Counter:
        entry->counter = std::make_unique<Counter>();
        break;
      case MetricKind::Gauge:
        entry->gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::Histogram:
        entry->histogram = std::make_unique<Histogram>();
        break;
    }
    Entry *raw = entry.get();
    entries_.push_back(std::move(entry));
    byName_.emplace(name, raw);
    return *raw;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return *entryFor(name, MetricKind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return *entryFor(name, MetricKind::Gauge).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return *entryFor(name, MetricKind::Histogram).histogram;
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<MetricSample> out;
    out.reserve(entries_.size() + 16);
    for (const auto &entry : entries_) {
        switch (entry->kind) {
          case MetricKind::Counter:
            out.push_back({entry->name, MetricKind::Counter,
                           entry->counter->value()});
            break;
          case MetricKind::Gauge:
            out.push_back({entry->name, MetricKind::Gauge,
                           entry->gauge->value()});
            break;
          case MetricKind::Histogram:
            // Prometheus-style cumulative buckets over the fixed
            // edges; bucket-wise summable across snapshots.
            for (int i = 0; i < Histogram::kNumEdges; ++i) {
                out.push_back({entry->name + "_le_" +
                                   std::to_string(Histogram::edgeMs(i)),
                               MetricKind::Counter,
                               entry->histogram->cumulative(i)});
            }
            out.push_back({entry->name + "_le_inf",
                           MetricKind::Counter,
                           entry->histogram->count()});
            break;
        }
    }
    return out;
}

namespace {

struct KeyMeta
{
    const char *key;
    MetricKind kind;
    MetricAgg agg;
};

// The stats-op key schema. Counters sum; additive gauges sum;
// high-water and per-process gauges max; rates and percentiles are
// recomputed (or dropped) by the aggregator.
constexpr KeyMeta kStatsKeys[] = {
    {"admitted", MetricKind::Counter, MetricAgg::Sum},
    {"rejected", MetricKind::Counter, MetricAgg::Sum},
    {"served", MetricKind::Counter, MetricAgg::Sum},
    {"errors", MetricKind::Counter, MetricAgg::Sum},
    {"windows", MetricKind::Counter, MetricAgg::Sum},
    {"batched_requests", MetricKind::Counter, MetricAgg::Sum},
    {"plans_loaded", MetricKind::Counter, MetricAgg::Sum},
    {"cache_hits", MetricKind::Counter, MetricAgg::Sum},
    {"cache_misses", MetricKind::Counter, MetricAgg::Sum},
    {"cache_evictions", MetricKind::Counter, MetricAgg::Sum},
    {"shed_unmeetable", MetricKind::Counter, MetricAgg::Sum},
    {"deadline_met", MetricKind::Counter, MetricAgg::Sum},
    {"deadline_misses", MetricKind::Counter, MetricAgg::Sum},
    {"buffer_hits", MetricKind::Counter, MetricAgg::Sum},
    {"buffer_misses", MetricKind::Counter, MetricAgg::Sum},
    {"buffer_evictions", MetricKind::Counter, MetricAgg::Sum},
    // Additive gauges: levels that are meaningful cluster-wide totals.
    {"queue_depth", MetricKind::Gauge, MetricAgg::Sum},
    {"inflight_windows", MetricKind::Gauge, MetricAgg::Sum},
    {"storage_bytes_mapped", MetricKind::Gauge, MetricAgg::Sum},
    // High-water / per-process gauges: summing replicas' uptimes (or
    // their identical catalogs) is meaningless — take the max.
    {"peak_queue_depth", MetricKind::Gauge, MetricAgg::Max},
    {"max_window", MetricKind::Gauge, MetricAgg::Max},
    {"uptime_ms", MetricKind::Gauge, MetricAgg::Max},
    {"catalog_models", MetricKind::Gauge, MetricAgg::Max},
    // Recomputed from the summed counters / not aggregatable.
    {"cache_hit_rate", MetricKind::Gauge, MetricAgg::Derived},
    {"service_ms_p50", MetricKind::Gauge, MetricAgg::Derived},
    {"service_ms_p95", MetricKind::Gauge, MetricAgg::Derived},
    {"service_ms_p99", MetricKind::Gauge, MetricAgg::Derived},
};

} // namespace

MetricAgg
statsKeyAgg(const std::string &key)
{
    for (const KeyMeta &meta : kStatsKeys)
        if (key == meta.key)
            return meta.agg;
    // Histogram buckets are cumulative counters: bucket-wise sums.
    if (key.find("_le_") != std::string::npos)
        return MetricAgg::Sum;
    return MetricAgg::Derived;
}

MetricKind
statsKeyKind(const std::string &key)
{
    for (const KeyMeta &meta : kStatsKeys)
        if (key == meta.key)
            return meta.kind;
    return MetricKind::Counter;
}

} // namespace obs
} // namespace ta
