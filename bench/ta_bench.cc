/**
 * @file
 * ta_bench: the unified benchmark driver. Every figure/table/ablation
 * harness registers itself with the BenchmarkRegistry; this main
 * enumerates (--list), filters (--filter), threads (--threads), emits
 * schema-stable JSON (--json-out) and persists scoreboard plans across
 * processes (--plan-cache). Thin per-figure executables reuse the same
 * driver pinned to one benchmark.
 */

#include "harness/harness.h"

int
main(int argc, char **argv)
{
    return ta::harnessMain(argc, argv);
}
