/** @file Unit tests for the static-SI calibration flow (Sec. 3.3). */

#include <gtest/gtest.h>

#include "quant/calibration.h"
#include "scoreboard/static_scoreboard.h"
#include "workloads/generators.h"

namespace ta {
namespace {

TEST(Calibration, CollectValues)
{
    TransRowCollector c(4);
    c.collect(std::vector<uint32_t>{1, 3, 3, 0});
    EXPECT_EQ(c.batches(), 1u);
    EXPECT_EQ(c.totalRows(), 4u);
    EXPECT_EQ(c.distinctValues(), 3u); // 0, 1, 3
    EXPECT_EQ(c.countOf(3), 2u);
    EXPECT_EQ(c.countOf(7), 0u);
}

TEST(Calibration, CollectSlicedTensor)
{
    TransRowCollector c(8);
    const SlicedMatrix t = realLikeSlicedWeights(32, 64, 8, 5);
    c.collect(t);
    EXPECT_EQ(c.totalRows(), 32u * 8 * (64 / 8));
    EXPECT_GT(c.distinctValues(), 100u);
}

TEST(Calibration, CoverageSaturatesAcrossBatches)
{
    // Sec. 3.3: a small calibration dataset suffices — coverage of a
    // fresh tensor rises quickly with batches.
    TransRowCollector c(8);
    const SlicedMatrix probe = realLikeSlicedWeights(64, 64, 8, 999);
    double prev = c.coverage(probe);
    EXPECT_EQ(prev, 0.0);
    for (int b = 0; b < 6; ++b) {
        c.collect(realLikeSlicedWeights(64, 64, 8, 100 + b));
        const double cov = c.coverage(probe);
        EXPECT_GE(cov, prev - 1e-12);
        prev = cov;
    }
    EXPECT_GT(prev, 0.95); // nearly all TransRow values seen
}

TEST(Calibration, PopulationRespectsCap)
{
    TransRowCollector c(4);
    c.collect(std::vector<uint32_t>(100, 5u));
    const auto pop = c.population(16);
    EXPECT_EQ(pop.size(), 16u);
    for (uint32_t v : pop)
        EXPECT_EQ(v, 5u);
}

TEST(Calibration, PopulationFeedsStaticScoreboard)
{
    TransRowCollector c(8);
    c.collect(realLikeSlicedWeights(64, 64, 8, 11));
    ScoreboardConfig sc;
    sc.tBits = 8;
    StaticScoreboard sb(sc, c.population());

    // The resulting SI serves a tile drawn from the same distribution
    // with near-dynamic density.
    const SlicedMatrix tile_src = realLikeSlicedWeights(32, 8, 8, 12);
    const auto tiles = tileValues(tile_src.bits, 8, 256);
    SparsityStats s;
    for (const auto &t : tiles)
        s.merge(sb.evaluateTile(t));
    EXPECT_LT(s.totalDensity(), s.bitDensity());
}

TEST(Calibration, RejectsOutOfRange)
{
    TransRowCollector c(4);
    EXPECT_THROW(c.collect(std::vector<uint32_t>{16}),
                 std::logic_error);
    EXPECT_THROW(c.countOf(16), std::logic_error);
}

TEST(Calibration, BatchCounting)
{
    TransRowCollector c(4);
    c.collect(std::vector<uint32_t>{1});
    c.collect(std::vector<uint32_t>{2});
    c.collect(realLikeSlicedWeights(4, 8, 4, 1));
    EXPECT_EQ(c.batches(), 3u);
}

} // namespace
} // namespace ta
