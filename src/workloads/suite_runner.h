/**
 * @file
 * Shared driver that runs a whole WorkloadSuite (LLaMA blocks, ResNet-18
 * layers, ...) through the TransArray cycle model. Centralizes the
 * layer loop the figure harnesses used to duplicate, so every harness
 * inherits the parallel sub-tile executor, the plan cache, and — with a
 * batch window > 1 — batch-level sharded execution that keeps multiple
 * layers in flight per executor (TransArrayAccelerator::
 * runLayersBatched). Batched and per-layer dispatch produce
 * byte-identical per-layer results; only host wall-clock changes.
 *
 * Weight-seed convention (the single documented rule, shared by every
 * harness): layer i of a suite draws its synthetic weights with seed
 * `base_seed + i` — see layerSeed(). Historical harnesses hand-rolled
 * `seed++` loops with the same rule; they now route through here.
 */

#ifndef TA_WORKLOADS_SUITE_RUNNER_H
#define TA_WORKLOADS_SUITE_RUNNER_H

#include <functional>

#include "core/accelerator.h"
#include "workloads/gemm_workload.h"

namespace ta {

/** The canonical per-layer weight seed: base_seed, base_seed+1, ... */
constexpr uint64_t
layerSeed(uint64_t base_seed, size_t layer_index)
{
    return base_seed + layer_index;
}

/** Totals of one suite pass plus the per-layer breakdown. */
struct SuiteRunResult
{
    LayerRun total;                ///< sums with per-layer `count` applied
    std::vector<LayerRun> perLayer; ///< one entry per suite layer (count=1)
};

/** Engine selection for one layer of a mixed-precision suite. */
struct LayerEnginePick
{
    const TransArrayAccelerator *acc = nullptr;
    int weightBits = 8;
};

/** Chooses the accelerator and weight width for layer `index`. */
using LayerEngineFn =
    std::function<LayerEnginePick(size_t index, const GemmLayerDesc &)>;

/**
 * Run every layer of `suite` at `weight_bits` through `acc.runShape`,
 * with the layerSeed() weight-seed convention. `batch` > 1 dispatches
 * up to that many layers per runLayersBatched window (multiple layers
 * in flight on the accelerator's executor); results are byte-identical
 * to batch == 1 for any window and any thread count.
 */
SuiteRunResult runSuite(const TransArrayAccelerator &acc,
                        const WorkloadSuite &suite, int weight_bits,
                        uint64_t seed, size_t batch = 1);

/**
 * Generalization of runSuite() for mixed-precision suites (Fig. 14's
 * 8-bit edge layers inside a 4-bit CNN): `pick` selects the engine and
 * weight width per layer; seeds still follow layerSeed(). Batch windows
 * group consecutive layers sharing an accelerator (a window flushes on
 * every engine change, preserving per-engine batching semantics).
 */
SuiteRunResult runSuiteMixed(const WorkloadSuite &suite,
                             const LayerEngineFn &pick, uint64_t seed,
                             size_t batch = 1);

/** Cycle total only (the common harness reduction). */
uint64_t suiteCycles(const TransArrayAccelerator &acc,
                     const WorkloadSuite &suite, int weight_bits,
                     uint64_t seed, size_t batch = 1);

} // namespace ta

#endif // TA_WORKLOADS_SUITE_RUNNER_H
