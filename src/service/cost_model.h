/**
 * @file
 * Calibrated service-time cost model for the scheduler's planning
 * layer. The model predicts the host cost of a "run" request in
 * cost-cycles (1 cost-cycle == 1 nanosecond of calibrated single-window
 * host execution) from the request's analytic layer geometry — the same
 * arithmetic `TransArrayAccelerator::layerGeometry` applies to the
 * synthesized representative tensor, so a prediction never has to touch
 * an engine, a cache, or a clock. Predictions are pure functions of
 * (request, coefficients file): byte-identical across runs, which is
 * what lets the planner's shed decisions stay inside the service
 * determinism contract.
 *
 * Features (all derived without synthesizing the tensor):
 *   f0 = 1                      per-request fixed overhead
 *   f1 = sampled sub-tiles      scoreboard passes actually simulated
 *   f2 = sliced bit area        nr * wbits * kr, tensor synthesis +
 *                               bit-slicing work
 *   f3 = static-calibration     sampled sub-tiles when the request
 *                               uses the static scoreboard, else 0
 *   f4 = missProb * sampled     plan-construction work on cache misses
 *
 * The fit (fitModel) clamps coefficients to be nonnegative, which makes
 * the planner's required monotonicity properties — cost monotone in
 * layer count and tile area, cache-hit prediction <= cache-miss
 * prediction — hold by construction, not by luck of the regression.
 *
 * Coefficients persist in a versioned, checksummed text file
 * (docs/BENCH_SCHEMA.md). Loading is all-or-nothing: any truncation,
 * corruption, unknown version or checksum mismatch rejects the whole
 * file and leaves the model unchanged.
 */

#ifndef TA_SERVICE_COST_MODEL_H
#define TA_SERVICE_COST_MODEL_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.h"

namespace ta {

/** Feature vector of one request at a given plan-cache miss
 *  probability; the dot product with CostModel coefficients is the
 *  predicted cost in cost-cycles (ns). */
struct CostFeatures
{
    static constexpr size_t kCount = 5;
    std::array<double, kCount> f{}; // [base, sampled, slicedBits,
                                    //  staticCal, missSampled]
};

/**
 * Analytic geometry features of `req`. `miss_prob` in [0, 1] is the
 * assumed plan-cache miss probability (the calibrated steady-state
 * value at serve time; 1.0 for a cold cache, 0.0 for a fully warm
 * one). Mirrors layerGeometry: representative dims capped at
 * (kDefaultReprRows x kDefaultReprCols), sub-tiles of
 * maxTransRows x tbits over the sliced nr*wbits x kr bit matrix,
 * stride-sampled down to the request's sample limit.
 */
CostFeatures costFeaturesOf(const ServiceRequest &req, double miss_prob);

class CostModel
{
  public:
    /** One calibration observation: features -> measured host ns. */
    struct Sample
    {
        CostFeatures features;
        double measuredNs = 0.0;
    };

    /** Relative-error percentiles of a fit, over its own samples. */
    struct FitReport
    {
        size_t samples = 0;
        double errP50 = 0.0;
        double errP90 = 0.0;
        double errP99 = 0.0;
    };

    /** Conservative built-in coefficients used when no file is given;
     *  calibrated once on the reference container so planning works
     *  out of the box (docs/SERVICE.md). */
    static CostModel builtin();

    /** Predicted cost in cost-cycles (ns) for a feature vector. */
    double predictCycles(const CostFeatures &features) const;

    /** Predicted service milliseconds for one request, using the
     *  model's calibrated steady-state miss probability. */
    double predictMs(const ServiceRequest &req) const;

    /** Same, at an explicit miss probability. */
    double predictMsAt(const ServiceRequest &req,
                       double miss_prob) const;

    /**
     * Nonnegative least-squares fit over `samples` (normal equations +
     * active-set clamping). Returns false when samples are empty or
     * degenerate; on success replaces the coefficients and fills
     * `report` (optional).
     */
    bool fit(const std::vector<Sample> &samples,
             FitReport *report = nullptr);

    /** Write the versioned coefficients file (atomicity not required:
     *  the loader rejects partial writes wholesale). */
    bool saveFile(const std::string &path) const;

    /**
     * Strict load: version line, every coefficient, the calibration
     * metadata and the trailing FNV-1a checksum must all parse and
     * match, or the load fails and the model keeps its previous state.
     */
    bool loadFile(const std::string &path, std::string *err = nullptr);

    const std::array<double, CostFeatures::kCount> &coeffs() const
    {
        return coeffs_;
    }
    double assumedMissProb() const { return assumedMissProb_; }
    void setAssumedMissProb(double p);
    const FitReport &fitReport() const { return report_; }

  private:
    /** Cost-cycles per feature unit; nonnegative by construction. */
    std::array<double, CostFeatures::kCount> coeffs_{};
    /** Steady-state plan-cache miss probability assumed at serve
     *  time; calibrated (from the warm/cold battery split), never read
     *  from live cache state — predictions must stay pure. */
    double assumedMissProb_ = 0.1;
    FitReport report_;
};

/**
 * The deterministic calibration battery: a seeded spread of request
 * geometries (shapes x wbits x static x samples) covering the feature
 * space. `quick` shrinks the grid for CI smoke runs.
 */
std::vector<ServiceRequest> costCalibrationBattery(uint64_t seed,
                                                   bool quick);

} // namespace ta

#endif // TA_SERVICE_COST_MODEL_H
