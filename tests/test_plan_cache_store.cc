/**
 * @file
 * Persistence contract of PlanCacheStore: a round-tripped cache returns
 * plans identical to fresh Scoreboard::build results, sections are
 * isolated per scoreboard config, and corrupt files (wrong magic,
 * version mismatch, truncation) are rejected wholesale.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "harness/plan_cache_store.h"
#include "scoreboard/analyzer.h"

namespace ta {
namespace {

void
expectPlansEqual(const Plan &a, const Plan &b)
{
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    EXPECT_EQ(a.numRows, b.numRows);
    EXPECT_EQ(a.zeroRows, b.zeroRows);
    for (size_t i = 0; i < a.nodes.size(); ++i) {
        EXPECT_EQ(a.nodes[i].id, b.nodes[i].id);
        EXPECT_EQ(a.nodes[i].count, b.nodes[i].count);
        EXPECT_EQ(a.nodes[i].parent, b.nodes[i].parent);
        EXPECT_EQ(a.nodes[i].distance, b.nodes[i].distance);
        EXPECT_EQ(a.nodes[i].materialized, b.nodes[i].materialized);
        EXPECT_EQ(a.nodes[i].outlier, b.nodes[i].outlier);
        EXPECT_EQ(a.nodes[i].lane, b.nodes[i].lane);
    }
}

std::vector<std::vector<uint32_t>>
randomTiles(size_t count, size_t rows, int t, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<uint32_t>> tiles(count);
    for (auto &tile : tiles) {
        tile.resize(rows);
        for (auto &v : tile)
            v = static_cast<uint32_t>(rng.uniformInt(0, (1 << t) - 1));
    }
    return tiles;
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

/** Build every tile through `cache`, returning the builds performed. */
size_t
populate(PlanCache &cache, const Scoreboard &sb,
         const std::vector<std::vector<uint32_t>> &tiles)
{
    size_t builds = 0;
    for (const auto &tile : tiles) {
        cache.getOrBuild(tile, [&] {
            ++builds;
            return sb.build(tile);
        });
    }
    return builds;
}

TEST(PlanCacheStore, RoundTripEqualsFreshBuilds)
{
    ScoreboardConfig sc;
    sc.tBits = 8;
    const Scoreboard sb(sc);
    const auto tiles = randomTiles(24, 64, 8, 42);

    PlanCache cache(256);
    EXPECT_EQ(populate(cache, sb, tiles), tiles.size());

    PlanCacheStore store;
    EXPECT_EQ(store.capture(sc, cache), tiles.size());
    const std::string path = tempPath("plan_store_roundtrip.bin");
    ASSERT_TRUE(store.saveFile(path));

    PlanCacheStore loaded;
    ASSERT_TRUE(loaded.loadFile(path));
    EXPECT_EQ(loaded.planCount(), tiles.size());
    EXPECT_EQ(loaded.sectionCount(), 1u);

    PlanCache warm(256);
    EXPECT_EQ(loaded.restore(sc, warm), tiles.size());
    EXPECT_EQ(warm.size(), tiles.size());

    // Every lookup hits, and the restored plan equals a fresh build.
    for (const auto &tile : tiles) {
        const auto plan = warm.getOrBuild(tile, [&]() -> Plan {
            ADD_FAILURE() << "restored cache should not rebuild";
            return sb.build(tile);
        });
        expectPlansEqual(*plan, sb.build(tile));
    }
    EXPECT_EQ(warm.counters().hits, tiles.size());
    EXPECT_EQ(warm.counters().misses, 0u);
    std::remove(path.c_str());
}

TEST(PlanCacheStore, WarmAnalyzerMatchesColdAnalyzer)
{
    ScoreboardConfig sc;
    sc.tBits = 6;
    const Scoreboard sb(sc);
    const auto tiles = randomTiles(16, 48, 6, 7);

    PlanCache cold(128);
    populate(cold, sb, tiles);
    PlanCacheStore store;
    store.capture(sc, cold);
    const std::string path = tempPath("plan_store_warm.bin");
    ASSERT_TRUE(store.saveFile(path));

    PlanCacheStore loaded;
    ASSERT_TRUE(loaded.loadFile(path));
    PlanCache warm(128);
    loaded.restore(sc, warm);

    const SparsityAnalyzer plain(sc);
    const SparsityAnalyzer cached(sc, &warm);
    for (const auto &tile : tiles) {
        const SparsityStats a = plain.analyzeValues(tile);
        const SparsityStats b = cached.analyzeValues(tile);
        EXPECT_EQ(a.totalOps(), b.totalOps());
        EXPECT_EQ(a.prRows, b.prRows);
        EXPECT_EQ(a.frRows, b.frRows);
        EXPECT_EQ(a.trNodes, b.trNodes);
        EXPECT_EQ(a.zrRows, b.zrRows);
        EXPECT_EQ(a.distHist, b.distHist);
    }
    EXPECT_EQ(warm.counters().misses, 0u);
    std::remove(path.c_str());
}

TEST(PlanCacheStore, SectionsIsolatePerConfig)
{
    ScoreboardConfig a;
    a.tBits = 4;
    ScoreboardConfig b;
    b.tBits = 4;
    b.maxDistance = 2; // different config -> different section
    const Scoreboard sba(a), sbb(b);
    const auto tiles = randomTiles(8, 32, 4, 5);

    PlanCache ca(64), cb(64);
    populate(ca, sba, tiles);
    populate(cb, sbb, tiles);

    PlanCacheStore store;
    store.capture(a, ca);
    store.capture(b, cb);
    EXPECT_EQ(store.sectionCount(), 2u);
    EXPECT_EQ(store.planCount(), 2 * tiles.size());

    PlanCache ra(64);
    EXPECT_EQ(store.restore(a, ra), tiles.size());
    // A third config has no section: nothing restored.
    ScoreboardConfig c;
    c.tBits = 8;
    PlanCache rc(64);
    EXPECT_EQ(store.restore(c, rc), 0u);
    EXPECT_EQ(rc.size(), 0u);
}

TEST(PlanCacheStore, CaptureMergesInsteadOfReplacing)
{
    ScoreboardConfig sc;
    sc.tBits = 4;
    const Scoreboard sb(sc);
    const auto first = randomTiles(6, 32, 4, 11);
    const auto second = randomTiles(6, 32, 4, 12);

    PlanCacheStore store;
    PlanCache c1(64);
    populate(c1, sb, first);
    store.capture(sc, c1);
    PlanCache c2(64);
    populate(c2, sb, second);
    // Capturing a cache that never saw `first` must keep those plans.
    EXPECT_EQ(store.capture(sc, c2), first.size() + second.size());
}

TEST(PlanCacheStore, MergeLoadUnionsAndExistingEntriesWin)
{
    ScoreboardConfig sc;
    sc.tBits = 4;
    const Scoreboard sb(sc);
    const auto mine = randomTiles(6, 32, 4, 31);
    const auto theirs = randomTiles(4, 32, 4, 32);
    // Three keys overlap between the two files.
    std::vector<std::vector<uint32_t>> shared(mine.begin(),
                                              mine.begin() + 3);

    PlanCache cache_a(64);
    populate(cache_a, sb, mine);
    PlanCacheStore store_a;
    store_a.capture(sc, cache_a);
    const std::string path_a = tempPath("merge_a.bin");
    ASSERT_TRUE(store_a.saveFile(path_a));

    // File B carries the shared keys with *doctored* plans (numRows
    // bumped), so the winner of a conflict is observable.
    PlanCache cache_b(64);
    populate(cache_b, sb, theirs);
    for (const auto &tile : shared) {
        Plan doctored = sb.build(tile);
        doctored.numRows += 7;
        cache_b.insert(tile, std::make_shared<const Plan>(
                                 std::move(doctored)));
    }
    PlanCacheStore store_b;
    store_b.capture(sc, cache_b);
    const std::string path_b = tempPath("merge_b.bin");
    ASSERT_TRUE(store_b.saveFile(path_b));

    // Replace-load A, then merge-load B: union of keys, A's plans
    // winning every overlap.
    PlanCacheStore merged;
    ASSERT_TRUE(merged.loadFile(path_a));
    ASSERT_TRUE(merged.loadFile(path_b, /*merge=*/true));
    EXPECT_EQ(merged.planCount(), mine.size() + theirs.size());
    EXPECT_EQ(merged.sectionCount(), 1u);

    PlanCache restored(64);
    EXPECT_EQ(merged.restore(sc, restored),
              mine.size() + theirs.size());
    for (const auto &tile : shared) {
        const auto plan = restored.getOrBuild(tile, [&]() -> Plan {
            ADD_FAILURE() << "merged cache should hold the key";
            return sb.build(tile);
        });
        // A's (undoctored) plan won the conflict.
        EXPECT_EQ(plan->numRows, sb.build(tile).numRows);
    }
    for (const auto &tile : theirs) {
        restored.getOrBuild(tile, [&]() -> Plan {
            ADD_FAILURE() << "merge dropped a B-only key";
            return sb.build(tile);
        });
    }

    // Merging a corrupt file must leave the union untouched.
    const std::string bad = tempPath("merge_bad.bin");
    std::FILE *f = std::fopen(bad.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a cache", f);
    std::fclose(f);
    const size_t before = merged.planCount();
    EXPECT_FALSE(merged.loadFile(bad, /*merge=*/true));
    EXPECT_EQ(merged.planCount(), before);

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
    std::remove(bad.c_str());
}

TEST(PlanCacheStore, MergeLoadAddsNewSections)
{
    ScoreboardConfig a;
    a.tBits = 4;
    ScoreboardConfig b;
    b.tBits = 4;
    b.maxDistance = 2;
    const Scoreboard sba(a), sbb(b);
    const auto tiles = randomTiles(5, 32, 4, 33);

    PlanCache ca(64), cb(64);
    populate(ca, sba, tiles);
    populate(cb, sbb, tiles);
    PlanCacheStore sa, sb_store;
    sa.capture(a, ca);
    sb_store.capture(b, cb);
    const std::string pa = tempPath("merge_sec_a.bin");
    const std::string pb = tempPath("merge_sec_b.bin");
    ASSERT_TRUE(sa.saveFile(pa));
    ASSERT_TRUE(sb_store.saveFile(pb));

    PlanCacheStore merged;
    ASSERT_TRUE(merged.loadFile(pa, /*merge=*/true)); // into empty
    ASSERT_TRUE(merged.loadFile(pb, /*merge=*/true));
    EXPECT_EQ(merged.sectionCount(), 2u);
    EXPECT_EQ(merged.planCount(), 2 * tiles.size());
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

TEST(PlanCacheStore, MissingFileRejected)
{
    PlanCacheStore store;
    EXPECT_FALSE(store.loadFile(tempPath("plan_store_nonexistent.bin")));
    EXPECT_EQ(store.planCount(), 0u);
}

TEST(PlanCacheStore, VersionMismatchRejected)
{
    ScoreboardConfig sc;
    sc.tBits = 4;
    const Scoreboard sb(sc);
    PlanCache cache(64);
    populate(cache, sb, randomTiles(4, 16, 4, 3));
    PlanCacheStore store;
    store.capture(sc, cache);
    const std::string path = tempPath("plan_store_version.bin");
    ASSERT_TRUE(store.saveFile(path));

    // Bump the version field (bytes 4..7) to an unknown value.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const uint32_t bad_version = PlanCacheStore::kVersion + 1;
    ASSERT_EQ(std::fseek(f, 4, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&bad_version, sizeof(bad_version), 1, f), 1u);
    std::fclose(f);

    PlanCacheStore loaded;
    EXPECT_FALSE(loaded.loadFile(path));
    EXPECT_EQ(loaded.planCount(), 0u);
    std::remove(path.c_str());
}

TEST(PlanCacheStore, BadMagicRejected)
{
    const std::string path = tempPath("plan_store_magic.bin");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a plan cache", f);
    std::fclose(f);
    PlanCacheStore loaded;
    EXPECT_FALSE(loaded.loadFile(path));
    std::remove(path.c_str());
}

TEST(PlanCacheStore, TruncatedFileRejected)
{
    ScoreboardConfig sc;
    sc.tBits = 8;
    const Scoreboard sb(sc);
    PlanCache cache(64);
    populate(cache, sb, randomTiles(8, 64, 8, 9));
    PlanCacheStore store;
    store.capture(sc, cache);
    const std::string path = tempPath("plan_store_trunc.bin");
    ASSERT_TRUE(store.saveFile(path));

    // Rewrite the file at half length: every prefix cut must fail
    // cleanly (no partial sections surviving).
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_GT(size, 16);
    std::fseek(f, 0, SEEK_SET);
    std::vector<unsigned char> bytes(static_cast<size_t>(size));
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);

    for (const size_t cut :
         {static_cast<size_t>(size) / 2, static_cast<size_t>(size) - 1,
          size_t{12}}) {
        std::FILE *w = std::fopen(path.c_str(), "wb");
        ASSERT_NE(w, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, cut, w), cut);
        std::fclose(w);
        PlanCacheStore loaded;
        EXPECT_FALSE(loaded.loadFile(path)) << "cut at " << cut;
        EXPECT_EQ(loaded.planCount(), 0u);
    }

    // Appending trailing garbage must also be rejected.
    std::FILE *w = std::fopen(path.c_str(), "wb");
    ASSERT_NE(w, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), w),
              bytes.size());
    std::fputc(0x5a, w);
    std::fclose(w);
    PlanCacheStore loaded;
    EXPECT_FALSE(loaded.loadFile(path));
    std::remove(path.c_str());
}

TEST(PlanCacheStore, SingleByteCorruptionNeverCrashesLoad)
{
    ScoreboardConfig sc;
    sc.tBits = 4;
    const Scoreboard sb(sc);
    PlanCache cache(64);
    populate(cache, sb, randomTiles(4, 16, 4, 77));
    PlanCacheStore store;
    store.capture(sc, cache);
    const std::string path = tempPath("plan_store_flip.bin");
    ASSERT_TRUE(store.saveFile(path));

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    std::vector<unsigned char> bytes(
        static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);

    // Flip every byte in turn: the v2 checksum trailer covers every
    // payload byte (and a flip inside the trailer itself breaks the
    // comparison), so every single-byte corruption must be rejected
    // outright — logged, empty store, never a crash, never garbage
    // plans silently loaded.
    for (size_t i = 0; i < bytes.size(); ++i) {
        std::vector<unsigned char> mutated = bytes;
        mutated[i] ^= 0xFF;
        std::FILE *w = std::fopen(path.c_str(), "wb");
        ASSERT_NE(w, nullptr);
        ASSERT_EQ(std::fwrite(mutated.data(), 1, mutated.size(), w),
                  mutated.size());
        std::fclose(w);
        PlanCacheStore loaded;
        EXPECT_FALSE(loaded.loadFile(path)) << "flip at byte " << i;
        EXPECT_EQ(loaded.planCount(), 0u) << "flip at byte " << i;
    }
    std::remove(path.c_str());
}

TEST(PlanCacheStore, SaveIsAtomicTempPlusRename)
{
    ScoreboardConfig sc;
    sc.tBits = 8;
    const Scoreboard sb(sc);
    const auto tiles = randomTiles(8, 32, 8, 77);
    PlanCache cache(64);
    populate(cache, sb, tiles);

    const std::string path = tempPath("atomic_save.bin");
    PlanCacheStore store;
    store.capture(sc, cache);
    ASSERT_TRUE(store.saveFile(path));
    // No temp artifact may survive a successful save.
    const std::string tmp_path =
        path + ".tmp." + std::to_string(::getpid());
    std::FILE *tmp = std::fopen(tmp_path.c_str(), "rb");
    EXPECT_EQ(tmp, nullptr);
    if (tmp != nullptr)
        std::fclose(tmp);

    // Overwriting an existing (even corrupt) file replaces it whole:
    // the reader can never observe a half-written cache.
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("corrupt", f);
        std::fclose(f);
    }
    ASSERT_TRUE(store.saveFile(path));
    PlanCacheStore loaded;
    ASSERT_TRUE(loaded.loadFile(path));
    EXPECT_EQ(loaded.planCount(), store.planCount());
    std::remove(path.c_str());

    // An unwritable directory fails cleanly and leaves no temp file.
    EXPECT_FALSE(store.saveFile("/nonexistent-dir/plans.bin"));
}

TEST(PlanCacheInsert, RespectsCapacityAndSkipsResidentKeys)
{
    ScoreboardConfig sc;
    sc.tBits = 4;
    const Scoreboard sb(sc);
    PlanCache cache(4, 1); // one shard, 4 entries
    const auto tiles = randomTiles(6, 8, 4, 21);
    for (const auto &tile : tiles)
        cache.insert(tile,
                     std::make_shared<const Plan>(sb.build(tile)));
    EXPECT_EQ(cache.size(), 4u);
    // Re-inserting a resident key neither duplicates nor evicts.
    cache.insert(tiles.back(),
                 std::make_shared<const Plan>(sb.build(tiles.back())));
    EXPECT_EQ(cache.size(), 4u);
    // insert() never touches the hit/miss counters.
    EXPECT_EQ(cache.counters().hits, 0u);
    EXPECT_EQ(cache.counters().misses, 0u);

    size_t visited = 0;
    cache.forEach([&](const std::vector<uint32_t> &key,
                      const std::shared_ptr<const Plan> &plan) {
        ++visited;
        expectPlansEqual(*plan, sb.build(key));
    });
    EXPECT_EQ(visited, 4u);
}

} // namespace
} // namespace ta
