/**
 * @file
 * Prefix/Suffix Translators (Fig. 6). The dynamic scoreboard stores each
 * node's candidate prefixes and pending suffixes as T-bit bitmaps rather
 * than explicit node indices: bit b set in a prefix bitmap means "the
 * prefix reached by clearing bit b of this node"; bit b set in a suffix
 * bitmap means "the suffix reached by setting bit b". Decoding is a
 * single bit flip, which is what makes the hardware table entry of
 * Fig. 6 only ~33 bits wide instead of storing T node indices.
 */

#ifndef TA_HASSE_TRANSLATORS_H
#define TA_HASSE_TRANSLATORS_H

#include <cstdint>
#include <vector>

#include "hasse/hasse_graph.h"

namespace ta {

/** A T-bit bitmap naming neighbors by which bit to flip. */
using NeighborBitmap = uint32_t;

/** Encode prefix `p` of node `n` (must differ in exactly one set bit). */
NeighborBitmap encodePrefix(NodeId n, NodeId p);

/** Decode all prefixes named by `bm` for node `n` (1->0 flips). */
std::vector<NodeId> decodePrefixes(NodeId n, NeighborBitmap bm);

/** First (lowest-bit) prefix named by `bm`; n itself if bm == 0. */
NodeId firstPrefix(NodeId n, NeighborBitmap bm);

/** Encode suffix `s` of node `n` (must differ in exactly one clear bit). */
NeighborBitmap encodeSuffix(NodeId n, NodeId s);

/** Decode all suffixes named by `bm` for node `n` (0->1 flips). */
std::vector<NodeId> decodeSuffixes(NodeId n, NeighborBitmap bm);

} // namespace ta

#endif // TA_HASSE_TRANSLATORS_H
