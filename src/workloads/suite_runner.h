/**
 * @file
 * Shared driver that runs a whole WorkloadSuite (LLaMA blocks, ResNet-18
 * layers, ...) through the TransArray cycle model. Centralizes the
 * layer loop the figure harnesses used to duplicate, so every harness
 * inherits the parallel sub-tile executor and the plan cache, and
 * reports the merged LayerRun (including exec/plan-cache counters).
 */

#ifndef TA_WORKLOADS_SUITE_RUNNER_H
#define TA_WORKLOADS_SUITE_RUNNER_H

#include "core/accelerator.h"
#include "workloads/gemm_workload.h"

namespace ta {

/** Totals of one suite pass plus the per-layer breakdown. */
struct SuiteRunResult
{
    LayerRun total;                ///< sums with per-layer `count` applied
    std::vector<LayerRun> perLayer; ///< one entry per suite layer (count=1)
};

/**
 * Run every layer of `suite` at `weight_bits` through `acc.runShape`,
 * advancing the weight seed per layer (matching the historical harness
 * convention seed, seed+1, ...).
 */
SuiteRunResult runSuite(const TransArrayAccelerator &acc,
                        const WorkloadSuite &suite, int weight_bits,
                        uint64_t seed);

/** Cycle total only (the common harness reduction). */
uint64_t suiteCycles(const TransArrayAccelerator &acc,
                     const WorkloadSuite &suite, int weight_bits,
                     uint64_t seed);

} // namespace ta

#endif // TA_WORKLOADS_SUITE_RUNNER_H
