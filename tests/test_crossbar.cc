/** @file Unit tests for the crossbar bank-conflict model (Sec. 4.4). */

#include <gtest/gtest.h>

#include "noc/crossbar.h"

namespace ta {
namespace {

TEST(Crossbar, ConflictFreeGroupIsOneCycle)
{
    CrossbarModel x(8, 4);
    EXPECT_EQ(x.cyclesForGroup({0, 1, 2, 3, 4, 5, 6, 7}), 1u);
}

TEST(Crossbar, WorstCaseSerializes)
{
    CrossbarModel x(8, 4);
    EXPECT_EQ(x.cyclesForGroup({3, 3, 3, 3}), 4u);
}

TEST(Crossbar, EmptyGroup)
{
    CrossbarModel x(8, 4);
    EXPECT_EQ(x.cyclesForGroup({}), 1u);
}

TEST(Crossbar, RejectsBadBank)
{
    CrossbarModel x(4, 2);
    EXPECT_THROW(x.cyclesForGroup({4}), std::logic_error);
}

TEST(Crossbar, QueueHidesSparseConflicts)
{
    // One conflicting group followed by conflict-free ones: the queue
    // absorbs the extra cycles, so throughput stays 1 group/cycle plus
    // the final drain.
    CrossbarModel x(8, 8);
    std::vector<std::vector<uint32_t>> groups;
    groups.push_back({1, 1, 2, 3}); // +1 backlog
    for (int i = 0; i < 8; ++i)
        groups.push_back({0, 1, 2, 3});
    const uint64_t cycles = x.simulateGroups(groups);
    EXPECT_EQ(cycles, groups.size()); // backlog fully drained
    EXPECT_EQ(x.stats().get("stallCycles"), 0u);
}

TEST(Crossbar, SaturatedConflictsStall)
{
    // Every group hits one bank with multiplicity 8: the queue cannot
    // keep up and the producer must stall.
    CrossbarModel x(8, 4);
    std::vector<std::vector<uint32_t>> groups(
        16, std::vector<uint32_t>(8, 5));
    const uint64_t cycles = x.simulateGroups(groups);
    EXPECT_GE(cycles, 16u * 8 - 4);
    EXPECT_GT(x.stats().get("stallCycles"), 0u);
}

TEST(Crossbar, StatsCountGroupsAndWrites)
{
    CrossbarModel x(4, 2);
    x.simulateGroups({{0, 1}, {2, 2}});
    EXPECT_EQ(x.stats().get("groups"), 2u);
    EXPECT_EQ(x.stats().get("writes"), 4u);
    EXPECT_EQ(x.stats().get("conflictGroups"), 1u);
}

TEST(Crossbar, ResetStats)
{
    CrossbarModel x(4, 2);
    x.cyclesForGroup({0});
    x.resetStats();
    EXPECT_EQ(x.stats().get("groups"), 0u);
}

} // namespace
} // namespace ta
