/**
 * @file
 * Crossbar with bank-conflict queueing (Sec. 4.4): between dispatch and
 * the prefix buffer, T result vectors per cycle are written to banks
 * selected by their row indices. Same-bank writes serialize; a small queue
 * plus the double buffer hides part of that latency. The model reports
 * the serialized cycle count for a sequence of write groups.
 */

#ifndef TA_NOC_CROSSBAR_H
#define TA_NOC_CROSSBAR_H

#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace ta {

class CrossbarModel
{
  public:
    /**
     * @param banks    number of independent buffer banks
     * @param queue_depth entries of the conflict-absorbing queue; while
     *                 the queue has room, conflicting writes do not stall
     *                 the producer.
     */
    CrossbarModel(uint32_t banks, uint32_t queue_depth);

    uint32_t banks() const { return banks_; }

    /**
     * Cycles to retire one group of parallel writes whose bank ids are
     * given. Without conflicts this is 1; with conflicts, the maximum
     * per-bank multiplicity, minus what the queue absorbs.
     */
    uint32_t cyclesForGroup(const std::vector<uint32_t> &bank_ids);

    /**
     * Simulate a sequence of groups arriving one per cycle and return the
     * total cycles until the last write retires (queue drains overlap
     * with conflict-free groups).
     */
    uint64_t simulateGroups(
        const std::vector<std::vector<uint32_t>> &groups);

    const StatGroup &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

  private:
    uint32_t banks_;
    uint32_t queueDepth_;
    StatGroup stats_{"crossbar"};
};

} // namespace ta

#endif // TA_NOC_CROSSBAR_H
