/**
 * @file
 * Scoreboard Information (SI): the compact table the scoreboard emits
 * (Fig. 5 step 6 / Fig. 6). One entry per Hasse node holding the chosen
 * prefix and lane. Total size is 2*T*2^T bits (e.g. 512 B at T = 8),
 * which `sizeBits()` reports for the buffer model.
 */

#ifndef TA_SCOREBOARD_SCOREBOARD_INFO_H
#define TA_SCOREBOARD_SCOREBOARD_INFO_H

#include <cstdint>
#include <vector>

#include "scoreboard/scoreboard.h"

namespace ta {

/** One SI table entry. */
struct SiEntry
{
    bool valid = false;    ///< node participates in the plan
    NodeId prefix = 0;     ///< node whose result this node reuses
    uint8_t lane = 0;      ///< parallel lane (tree) id
    bool outlier = false;  ///< accumulate from scratch (no reuse)
    bool materialized = false; ///< TR pass-through node
};

/** The SI table for one plan. */
class ScoreboardInfo
{
  public:
    ScoreboardInfo() = default;
    explicit ScoreboardInfo(int t_bits);

    /** Build the table from a scoreboard plan. */
    static ScoreboardInfo fromPlan(const Plan &plan);

    int tBits() const { return tBits_; }

    const SiEntry &entry(NodeId n) const;

    bool valid(NodeId n) const { return entry(n).valid; }

    /**
     * The TranSparsity pruning of the dispatcher (Fig. 8 step 3):
     * XOR of a row value with its SI prefix — the bits that still need
     * accumulation.
     */
    uint32_t transSparsity(NodeId n) const;

    /** Hardware table footprint per the paper: 2 * T * 2^T bits. */
    uint64_t sizeBits() const;

    /**
     * Serialize to the DRAM image the static scoreboard prefetches
     * (Sec. 4.2): one 2T-bit entry per node — T bits of prefix plus
     * flags and lane — bit-packed to exactly sizeBits() (512 B at
     * T = 8). Requires T in [4, 8] so the flags fit.
     */
    std::vector<uint8_t> serialize() const;

    /** Reconstruct a table from its DRAM image. */
    static ScoreboardInfo deserialize(int t_bits,
                                      const std::vector<uint8_t> &img);

  private:
    int tBits_ = 0;
    std::vector<SiEntry> entries_;
};

} // namespace ta

#endif // TA_SCOREBOARD_SCOREBOARD_INFO_H
