#include "common/rng.h"

#include <cmath>

namespace ta {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = (~0ull / span) * span;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + static_cast<int64_t>(v % span);
}

double
Rng::uniformDouble()
{
    // 53 high-quality bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = 2.0 * uniformDouble() - 1.0;
        v = 2.0 * uniformDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    haveSpare_ = true;
    return u * mul;
}

bool
Rng::bernoulli(double p)
{
    return uniformDouble() < p;
}

} // namespace ta
