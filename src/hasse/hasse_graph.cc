#include "hasse/hasse_graph.h"

#include "common/logging.h"

namespace ta {

HasseGraph::HasseGraph(int t_bits) : tBits_(t_bits)
{
    TA_ASSERT(t_bits >= 2 && t_bits <= 16,
              "TransRow width must be in [2,16], got ", t_bits);
    forward_ = hammingOrder(t_bits);
}

std::vector<NodeId>
HasseGraph::prefixes(NodeId n) const
{
    std::vector<NodeId> out;
    uint32_t bits = n;
    while (bits) {
        const uint32_t low = bits & (~bits + 1);
        out.push_back(n & ~low);
        bits &= bits - 1;
    }
    return out;
}

std::vector<NodeId>
HasseGraph::suffixes(NodeId n) const
{
    std::vector<NodeId> out;
    for (int b = 0; b < tBits_; ++b) {
        const uint32_t bit = 1u << b;
        if (!(n & bit))
            out.push_back(n | bit);
    }
    return out;
}

bool
HasseGraph::precedes(NodeId p, NodeId s) const
{
    return p != s && (p & s) == p;
}

int
HasseGraph::distance(NodeId p, NodeId s) const
{
    if (p == s)
        return 0;
    if (!precedes(p, s))
        return -1;
    return level(s) - level(p);
}

uint64_t
HasseGraph::maxLevelWidth() const
{
    return levelWidth(tBits_ / 2);
}

uint64_t
HasseGraph::levelWidth(int level) const
{
    TA_ASSERT(level >= 0 && level <= tBits_, "bad level ", level);
    uint64_t c = 1;
    for (int i = 0; i < level; ++i)
        c = c * (tBits_ - i) / (i + 1);
    return c;
}

} // namespace ta
