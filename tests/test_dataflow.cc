/** @file Unit tests for the baseline dataflow loop-nest model. */

#include <gtest/gtest.h>

#include "baselines/dataflow.h"

namespace ta {
namespace {

DataflowModel::Config
dcfg(Dataflow df = Dataflow::WeightStationary)
{
    DataflowModel::Config c;
    c.dataflow = df;
    c.peRows = 32;
    c.peCols = 32;
    c.bufferBytes = 512 * 1024;
    return c;
}

const GemmShape kBig{4096, 4096, 2048};

TEST(Dataflow, Names)
{
    EXPECT_EQ(dataflowName(Dataflow::WeightStationary),
              "weight-stationary");
    EXPECT_EQ(dataflowName(Dataflow::OutputStationary),
              "output-stationary");
    EXPECT_EQ(dataflowName(Dataflow::InputStationary),
              "input-stationary");
}

TEST(Dataflow, RejectsDegenerateConfigs)
{
    DataflowModel::Config c = dcfg();
    c.peRows = 0;
    EXPECT_THROW((DataflowModel(c)), std::logic_error);
    c = dcfg();
    c.bufferBytes = 16;
    EXPECT_THROW((DataflowModel(c)), std::logic_error);
}

TEST(Dataflow, KTileBoundedByKAndBuffer)
{
    DataflowModel m(dcfg());
    EXPECT_LE(m.kTile(kBig), kBig.k);
    EXPECT_GE(m.kTile(kBig), 1u);
    // Tiny K: the whole reduction fits.
    EXPECT_EQ(m.kTile({128, 64, 128}), 64u);
}

TEST(Dataflow, SmallerBufferSmallerKTile)
{
    DataflowModel::Config small = dcfg();
    small.bufferBytes = 32 * 1024;
    const GemmShape huge{4096, 1 << 20, 2048};
    EXPECT_LT(DataflowModel(small).kTile(huge),
              DataflowModel(dcfg()).kTile(huge));
}

TEST(Dataflow, WeightStationaryStreamsWeightsOnce)
{
    const TrafficReport t = DataflowModel(dcfg()).traffic(kBig);
    EXPECT_EQ(t.dramWeightBytes, kBig.n * kBig.k); // 8-bit, once
    EXPECT_GE(t.dramInputBytes, kBig.k * kBig.m);  // restreamed
}

TEST(Dataflow, InputStationaryStreamsInputsOnce)
{
    const TrafficReport t =
        DataflowModel(dcfg(Dataflow::InputStationary)).traffic(kBig);
    EXPECT_EQ(t.dramInputBytes, kBig.k * kBig.m);
    EXPECT_GE(t.dramWeightBytes, kBig.n * kBig.k);
}

TEST(Dataflow, ResidentTensorNotRestreamed)
{
    // A weight tensor that fits in half the buffer is loaded once even
    // under output-stationary.
    const GemmShape tiny{64, 64, 1 << 16};
    const TrafficReport t =
        DataflowModel(dcfg(Dataflow::OutputStationary)).traffic(tiny);
    EXPECT_EQ(t.dramWeightBytes, tiny.n * tiny.k);
}

TEST(Dataflow, OutputStationaryAvoidsPsumTraffic)
{
    const TrafficReport ws = DataflowModel(dcfg()).traffic(kBig);
    const TrafficReport os =
        DataflowModel(dcfg(Dataflow::OutputStationary)).traffic(kBig);
    EXPECT_LE(os.bufOutputBytes, ws.bufOutputBytes);
}

TEST(Dataflow, BufferTrafficScalesWithStrips)
{
    // Doubling M doubles the weight-buffer passes.
    DataflowModel m(dcfg());
    GemmShape half = kBig;
    half.m = kBig.m / 2;
    const TrafficReport a = m.traffic(half);
    const TrafficReport b = m.traffic(kBig);
    EXPECT_NEAR(static_cast<double>(b.bufWeightBytes) /
                    a.bufWeightBytes,
                2.0, 0.01);
}

TEST(Dataflow, TotalsAreSums)
{
    const TrafficReport t = DataflowModel(dcfg()).traffic(kBig);
    EXPECT_EQ(t.dramBytes(), t.dramWeightBytes + t.dramInputBytes +
                                 t.dramOutputBytes);
    EXPECT_EQ(t.bufBytes(), t.bufWeightBytes + t.bufInputBytes +
                                t.bufOutputBytes);
}

} // namespace
} // namespace ta
