/**
 * @file
 * Cross-module integration tests: quantize -> slice -> scoreboard ->
 * execute -> dequantize pipelines, end-to-end accelerator comparisons,
 * and the headline speedup shape of the paper.
 */

#include <gtest/gtest.h>

#include "baselines/baseline.h"
#include "core/accelerator.h"
#include "core/transitive_gemm.h"
#include "eval/accuracy_proxy.h"
#include "workloads/generators.h"
#include "workloads/llama.h"

namespace ta {
namespace {

TEST(Integration, QuantizedGemmEndToEnd)
{
    // Float weights -> group-wise int4 -> transitive GEMM -> dequant
    // approximates the float GEMM.
    const MatF wf = gaussianWeights(16, 128, 1);
    const GroupQuantizer gq(4, 128);
    const QuantResult q = gq.quantize(wf);

    const MatI32 in = randomActivations(128, 4, 8, 2);
    MatF inf(128, 4);
    for (size_t i = 0; i < in.size(); ++i)
        inf.data()[i] = static_cast<float>(in.data()[i]);

    TransitiveGemmConfig c;
    c.scoreboard.tBits = 8;
    TransitiveGemmEngine engine(c);
    const auto res = engine.run(q.values, 4, in);

    const MatF ref = denseGemmF(wf, inf);
    // Per-element relative error bounded by the int4 group quantization.
    double err = 0, mag = 0;
    for (size_t r = 0; r < ref.rows(); ++r) {
        for (size_t col = 0; col < ref.cols(); ++col) {
            const double dq =
                res.output.at(r, col) * q.scaleAt(r, 0);
            err += std::abs(dq - ref.at(r, col));
            mag += std::abs(ref.at(r, col));
        }
    }
    EXPECT_LT(err / mag, 0.2);
}

TEST(Integration, TransitiveEqualsQuantizedDense)
{
    // The transitive engine must be *exactly* the quantized GEMM: no
    // extra error beyond quantization itself.
    const MatI32 w = realLikeWeights(32, 128, 8, 3);
    const MatI32 in = randomActivations(128, 8, 8, 4);
    TransitiveGemmConfig c;
    c.scoreboard.tBits = 8;
    const auto res = TransitiveGemmEngine(c).run(w, 8, in);
    EXPECT_TRUE(res.output == denseGemm(w, in));
}

TEST(Integration, HeadlineSpeedupShape)
{
    // The paper's headline (Sec. 5.5): on FC layers, TA-4bit beats
    // Olive by ~7.5x, BitVert by ~4x, ANT by ~5x; TA-8bit by ~3.75x /
    // ~2x / ~2.5x. Check the ordering and rough factors on one
    // representative layer (scaled-down q_proj).
    const GemmShape shape{1024, 1024, 2048};

    TransArrayAccelerator::Config tc;
    tc.sampleLimit = 64;
    TransArrayAccelerator ta_acc(tc);
    const SlicedMatrix w8 = realLikeSlicedWeights(
        std::min<size_t>(shape.n, 512), shape.k, 8, 5);
    const SlicedMatrix w4 = realLikeSlicedWeights(
        std::min<size_t>(shape.n, 512), shape.k, 4, 5);
    const double rescale = static_cast<double>(shape.n) / 512;
    const double ta8 =
        ta_acc.runLayer(w8, shape.m).computeCycles * rescale;
    const double ta4 =
        ta_acc.runLayer(w4, shape.m).computeCycles * rescale;

    const double ant = makeBaseline("ANT")
                           ->runGemm(shape, 8, 8)
                           .computeCycles;
    const double olive = makeBaseline("Olive")
                             ->runGemm(shape, 8, 8)
                             .computeCycles;
    const double bitvert = makeBaseline("BitVert")
                               ->runGemm(shape, 8, 8, 0.5)
                               .computeCycles;

    // Ordering: TA-4bit < TA-8bit < BitVert < ANT < Olive cycles.
    EXPECT_LT(ta4, ta8);
    EXPECT_LT(ta8, bitvert);
    EXPECT_LT(bitvert, ant);
    EXPECT_LT(ant, olive);

    // Rough factors (generous bands; the paper reports 3.75x and 7.46x
    // over Olive for TA-8bit / TA-4bit).
    EXPECT_GT(olive / ta8, 2.0);
    EXPECT_LT(olive / ta8, 6.5);
    EXPECT_GT(olive / ta4, 4.5);
    EXPECT_LT(olive / ta4, 12.0);
}

TEST(Integration, EnergyOrderingOnFcLayer)
{
    // TA should use less total energy than Olive on an FC layer
    // (paper: 2.31x less for TA-4bit).
    const GemmShape shape{512, 1024, 2048};
    TransArrayAccelerator::Config tc;
    tc.sampleLimit = 64;
    const SlicedMatrix w4 = realLikeSlicedWeights(shape.n, shape.k, 4, 6);
    const double ta4 =
        TransArrayAccelerator(tc).runLayer(w4, shape.m).energy.total();
    const double olive =
        makeBaseline("Olive")->runGemm(shape, 8, 8).energy.total();
    EXPECT_LT(ta4, olive);
}

TEST(Integration, AttentionSpeedupShape)
{
    // Fig. 12: TA-8bit > ANT-8bit > BitFusion-16bit on attention.
    const LlamaConfig cfg = llama1_7b();
    const auto attn = llamaAttentionLayers(cfg);
    const GemmShape qk = attn.layers[0].shape;

    TransArrayAccelerator::Config tc;
    tc.sampleLimit = 32;
    const SlicedMatrix kc = realLikeSlicedWeights(
        std::min<uint64_t>(qk.n, 256), qk.k, 8, 7);
    const double scale = static_cast<double>(qk.n) / 256;
    const double ta_cycles =
        TransArrayAccelerator(tc).runLayer(kc, qk.m).computeCycles *
        scale;
    const double ant =
        makeBaseline("ANT")->runGemm(qk, 8, 8).computeCycles;
    const double bf16 =
        makeBaseline("BitFusion")->runGemm(qk, 16, 16).computeCycles;
    EXPECT_LT(ta_cycles, ant);
    EXPECT_LT(ant, bf16);
}

TEST(Integration, StaticVsDynamicDensityOrdering)
{
    // Fig. 13 at a small tile size: dynamic < static < bit sparsity.
    const SlicedMatrix w = realLikeSlicedWeights(256, 64, 8, 8);
    ScoreboardConfig sc;
    sc.tBits = 8;
    const auto tiles = tileValues(w.bits, 8, w.bits.rows());
    std::vector<uint32_t> calib;
    for (const auto &t : tiles)
        calib.insert(calib.end(), t.begin(), t.end());
    StaticScoreboard sb(sc, calib);
    SparsityAnalyzer dyn(sc);

    const auto ds = sb.analyze(w.bits, 64);
    const auto dd = dyn.analyzeDynamic(w.bits, 64);
    EXPECT_LE(dd.totalDensity(), ds.totalDensity() + 1e-9);
    EXPECT_LT(ds.totalDensity(), ds.bitDensity());
}

} // namespace
} // namespace ta
