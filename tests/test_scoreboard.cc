/** @file Unit + property tests for the Scoreboard (Alg. 1/2, Sec. 3). */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "scoreboard/scoreboard.h"

namespace ta {
namespace {

ScoreboardConfig
cfg(int t, int max_dist = 4, int lanes = 0)
{
    ScoreboardConfig c;
    c.tBits = t;
    c.maxDistance = max_dist;
    c.numLanes = lanes;
    return c;
}

/** Check the structural invariants every plan must satisfy. */
void
checkPlanInvariants(const Plan &plan, const std::vector<uint32_t> &values)
{
    const int t = plan.config.tBits;
    std::set<NodeId> seen;
    std::map<NodeId, size_t> position;
    uint64_t count_sum = 0, zero_rows = 0;
    for (uint32_t v : values)
        zero_rows += v == 0;

    for (size_t i = 0; i < plan.nodes.size(); ++i) {
        const PlanNode &pn = plan.nodes[i];
        // Each node executed at most once; never the root.
        EXPECT_NE(pn.id, 0u);
        EXPECT_LT(pn.id, 1u << t);
        EXPECT_TRUE(seen.insert(pn.id).second)
            << "node " << pn.id << " executed twice";
        position[pn.id] = i;
        count_sum += pn.count;

        EXPECT_GE(pn.lane, 0);
        EXPECT_LT(pn.lane, plan.config.lanes());

        if (pn.outlier) {
            EXPECT_GT(pn.count, 0u) << "outliers are present rows";
            continue;
        }
        // Non-outlier: parent is an immediate Hasse prefix.
        EXPECT_EQ(popcount(pn.id ^ pn.parent), 1)
            << "node " << pn.id << " parent " << pn.parent;
        EXPECT_EQ(pn.id & pn.parent, pn.parent) << "parent not a prefix";
        if (pn.parent != 0) {
            // Parent executed earlier (issue order is dependence-safe).
            auto it = position.find(pn.parent);
            ASSERT_NE(it, position.end())
                << "parent " << pn.parent << " of " << pn.id
                << " never executed";
            EXPECT_LT(it->second, i);
        }
        if (pn.materialized) {
            EXPECT_EQ(pn.count, 0u);
        }
    }
    EXPECT_EQ(count_sum + zero_rows, values.size());
    EXPECT_EQ(plan.zeroRows, zero_rows);
    EXPECT_EQ(plan.numRows, values.size());

    // Op accounting identities.
    EXPECT_EQ(plan.prRows() + plan.frRows(), values.size() - zero_rows);
    EXPECT_EQ(plan.apeOps(), values.size() - zero_rows);
    const auto lane_ops = plan.laneOps();
    uint64_t lane_sum = 0;
    for (uint64_t l : lane_ops)
        lane_sum += l;
    EXPECT_EQ(lane_sum, plan.ppeOps());
}

TEST(Scoreboard, EmptyInput)
{
    const Plan plan = Scoreboard(cfg(4)).build(std::vector<uint32_t>{});
    EXPECT_TRUE(plan.nodes.empty());
    EXPECT_EQ(plan.totalOps(), 0u);
}

TEST(Scoreboard, AllZeroRowsSkipped)
{
    const Plan plan =
        Scoreboard(cfg(4)).build(std::vector<uint32_t>{0, 0, 0});
    EXPECT_TRUE(plan.nodes.empty());
    EXPECT_EQ(plan.zeroRows, 3u);
    EXPECT_EQ(plan.totalOps(), 0u);
}

TEST(Scoreboard, SingleLevel1RowCostsOneOp)
{
    const Plan plan = Scoreboard(cfg(4)).build(std::vector<uint32_t>{2});
    ASSERT_EQ(plan.nodes.size(), 1u);
    EXPECT_EQ(plan.nodes[0].id, 2u);
    EXPECT_EQ(plan.nodes[0].parent, 0u);
    EXPECT_EQ(plan.totalOps(), 1u);
}

TEST(Scoreboard, SingleDeepRowCostsPopcount)
{
    // 0b0111 alone: no reuse possible, chain from the root = 3 adds.
    const Plan plan = Scoreboard(cfg(4)).build(std::vector<uint32_t>{7});
    EXPECT_EQ(plan.totalOps(), 3u);
    checkPlanInvariants(plan, {7});
}

TEST(Scoreboard, DuplicateRowsAreFullReuse)
{
    const Plan plan =
        Scoreboard(cfg(4)).build(std::vector<uint32_t>{5, 5, 5, 5});
    EXPECT_EQ(plan.prRows(), 1u);
    EXPECT_EQ(plan.frRows(), 3u);
    // Node 5 (level 2) needs a chain of 2; dups are 1 op each.
    EXPECT_EQ(plan.totalOps(), 2u + 3u);
    checkPlanInvariants(plan, {5, 5, 5, 5});
}

TEST(Scoreboard, MotivationExampleFig1)
{
    // Rows 1011, 1111, 0011, 0010: the paper counts 4 transitive ops
    // (every row reuses its predecessor) vs 10 bit-sparsity ops.
    const std::vector<uint32_t> values = {0b1011, 0b1111, 0b0011, 0b0010};
    const Plan plan = Scoreboard(cfg(4)).build(values);
    EXPECT_EQ(plan.totalOps(), 4u);
    EXPECT_EQ(plan.trNodes(), 0u);
    checkPlanInvariants(plan, values);
}

TEST(Scoreboard, Fig5WorkedExample)
{
    // Fig. 5: TransRows {14, 2, 5, 1, 15, 7, 2} with T = 4, two lanes.
    const std::vector<uint32_t> values = {14, 2, 5, 1, 15, 7, 2};
    const Plan plan = Scoreboard(cfg(4, 4, 2)).build(values);
    checkPlanInvariants(plan, values);

    std::map<NodeId, PlanNode> by_id;
    for (const auto &pn : plan.nodes)
        by_id[pn.id] = pn;

    // All six present nodes execute.
    for (NodeId n : {1u, 2u, 5u, 7u, 14u, 15u})
        ASSERT_TRUE(by_id.count(n)) << "missing node " << n;

    // The reuse chain of lane 1: 1 -> 5 -> 7 (each distance 1).
    EXPECT_EQ(by_id[1].parent, 0u);
    EXPECT_EQ(by_id[5].parent, 1u);
    EXPECT_EQ(by_id[7].parent, 5u);
    // Node 15 reuses either 7 or the transitively-completed 14.
    EXPECT_TRUE(by_id[15].parent == 7 || by_id[15].parent == 14);

    // Node 14 is at distance 2 from node 2: exactly one TR node (6 or
    // 10, whichever the backward pass picked first) is materialized.
    EXPECT_EQ(plan.trNodes(), 1u);
    EXPECT_TRUE(by_id.count(6) || by_id.count(10));
    const PlanNode tr = by_id.count(6) ? by_id[6] : by_id[10];
    EXPECT_TRUE(tr.materialized);
    EXPECT_EQ(tr.parent, 2u);
    EXPECT_EQ(by_id[14].parent, tr.id);

    // Total ops: paper's balanced forest executes 4 + 4 = 8 ops.
    EXPECT_EQ(plan.totalOps(), 8u);

    // Both lanes busy.
    const auto lane_ops = plan.laneOps();
    EXPECT_GT(lane_ops[0], 0u);
    EXPECT_GT(lane_ops[1], 0u);
}

TEST(Scoreboard, DistanceTwoChainMaterializesOneTr)
{
    // 2 present, 14 present, nothing between: 2 -> {6|10} -> 14.
    const std::vector<uint32_t> values = {2, 14};
    const Plan plan = Scoreboard(cfg(4)).build(values);
    EXPECT_EQ(plan.trNodes(), 1u);
    EXPECT_EQ(plan.totalOps(), 3u); // 2 rows + 1 TR
    checkPlanInvariants(plan, values);
}

TEST(Scoreboard, TransitivityAcrossThreeLevels)
{
    // 0001 -> 0011 -> 0111 -> 1111: perfect chain, 4 ops.
    const std::vector<uint32_t> values = {0b0001, 0b0011, 0b0111, 0b1111};
    const Plan plan = Scoreboard(cfg(4)).build(values);
    EXPECT_EQ(plan.totalOps(), 4u);
    EXPECT_EQ(plan.trNodes(), 0u);
    std::map<NodeId, PlanNode> by_id;
    for (const auto &pn : plan.nodes)
        by_id[pn.id] = pn;
    EXPECT_EQ(by_id[0b0011].parent, 0b0001u);
    EXPECT_EQ(by_id[0b0111].parent, 0b0011u);
    EXPECT_EQ(by_id[0b1111].parent, 0b0111u);
}

TEST(Scoreboard, MaxDistanceOutlier)
{
    // With maxDistance 2, node 7 (level 3) alone exceeds the range:
    // dispatched standalone at PopCount cost.
    const Plan plan = Scoreboard(cfg(4, 2)).build(std::vector<uint32_t>{7});
    ASSERT_EQ(plan.nodes.size(), 1u);
    EXPECT_TRUE(plan.nodes[0].outlier);
    EXPECT_EQ(plan.totalOps(), 3u);
}

TEST(Scoreboard, OutlierStillReusedByDuplicates)
{
    const Plan plan =
        Scoreboard(cfg(4, 2)).build(std::vector<uint32_t>{7, 7});
    EXPECT_EQ(plan.prRows(), 1u);
    EXPECT_EQ(plan.frRows(), 1u);
    EXPECT_EQ(plan.totalOps(), 4u); // 3 scratch adds + 1 reuse
}

TEST(Scoreboard, NeverWorseThanBitSparsity)
{
    Rng rng(404);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint32_t> values(64);
        for (auto &v : values)
            v = static_cast<uint32_t>(rng.uniformInt(0, 255));
        const Plan plan = Scoreboard(cfg(8)).build(values);
        uint64_t bit_ops = 0;
        for (uint32_t v : values)
            bit_ops += popcount(v);
        EXPECT_LE(plan.totalOps(), bit_ops);
        EXPECT_GE(plan.totalOps(), values.size() - plan.zeroRows);
        checkPlanInvariants(plan, values);
    }
}

TEST(Scoreboard, FullGraphCoverageIsOneOpPerRow)
{
    // Every 4-bit value present: everything reuses at distance 1;
    // zero TR nodes, one op per non-zero row.
    std::vector<uint32_t> values(16);
    for (uint32_t v = 0; v < 16; ++v)
        values[v] = v;
    const Plan plan = Scoreboard(cfg(4)).build(values);
    EXPECT_EQ(plan.trNodes(), 0u);
    EXPECT_EQ(plan.totalOps(), 15u);
    checkPlanInvariants(plan, values);
}

TEST(Scoreboard, Deterministic)
{
    Rng rng(77);
    std::vector<uint32_t> values(128);
    for (auto &v : values)
        v = static_cast<uint32_t>(rng.uniformInt(0, 255));
    const Plan a = Scoreboard(cfg(8)).build(values);
    const Plan b = Scoreboard(cfg(8)).build(values);
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (size_t i = 0; i < a.nodes.size(); ++i) {
        EXPECT_EQ(a.nodes[i].id, b.nodes[i].id);
        EXPECT_EQ(a.nodes[i].parent, b.nodes[i].parent);
        EXPECT_EQ(a.nodes[i].lane, b.nodes[i].lane);
    }
}

TEST(Scoreboard, RejectsOutOfRangeValue)
{
    EXPECT_THROW(Scoreboard(cfg(4)).build(std::vector<uint32_t>{16}),
                 std::logic_error);
}

TEST(Scoreboard, LaneBalanceOnRandomData)
{
    Rng rng(99);
    std::vector<uint32_t> values(256);
    for (auto &v : values)
        v = static_cast<uint32_t>(rng.uniformInt(0, 255));
    const Plan plan = Scoreboard(cfg(8)).build(values);
    const auto lane_ops = plan.laneOps();
    uint64_t mx = 0, mn = ~0ull, sum = 0;
    for (uint64_t l : lane_ops) {
        mx = std::max(mx, l);
        mn = std::min(mn, l);
        sum += l;
    }
    const double mean = static_cast<double>(sum) / lane_ops.size();
    EXPECT_LT(mx, mean * 1.6 + 4) << "worst lane too loaded";
    // A lane can legitimately be empty when its level-1 root is absent
    // from the data, but most lanes must carry work.
    int busy = 0;
    for (uint64_t l : lane_ops)
        busy += l > 0;
    EXPECT_GE(busy, 6);
    (void)mn;
}

/** Property sweep across widths, row counts and one-bit densities. */
struct SweepParam
{
    int tBits;
    int rows;
    double density;
};

class ScoreboardSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(ScoreboardSweep, InvariantsHold)
{
    const SweepParam p = GetParam();
    Rng rng(p.tBits * 1000 + p.rows);
    std::vector<uint32_t> values(p.rows);
    for (auto &v : values) {
        uint32_t x = 0;
        for (int b = 0; b < p.tBits; ++b)
            x |= static_cast<uint32_t>(rng.bernoulli(p.density)) << b;
        v = x;
    }
    const Plan plan = Scoreboard(cfg(p.tBits)).build(values);
    checkPlanInvariants(plan, values);
    uint64_t bit_ops = 0;
    for (uint32_t v : values)
        bit_ops += popcount(v);
    EXPECT_LE(plan.totalOps(), bit_ops);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScoreboardSweep,
    ::testing::Values(SweepParam{2, 16, 0.5}, SweepParam{3, 64, 0.5},
                      SweepParam{4, 16, 0.5}, SweepParam{4, 256, 0.5},
                      SweepParam{5, 100, 0.3}, SweepParam{6, 128, 0.5},
                      SweepParam{8, 32, 0.5}, SweepParam{8, 256, 0.5},
                      SweepParam{8, 1024, 0.5}, SweepParam{8, 256, 0.1},
                      SweepParam{8, 256, 0.9}, SweepParam{10, 256, 0.5},
                      SweepParam{12, 128, 0.5}));

} // namespace
} // namespace ta

namespace ta {
namespace {

TEST(Scoreboard, TotalOpsInvariantUnderPermutation)
{
    Rng rng(606);
    std::vector<uint32_t> values(200);
    for (auto &v : values)
        v = static_cast<uint32_t>(rng.uniformInt(0, 255));
    ScoreboardConfig c;
    c.tBits = 8;
    Scoreboard sb(c);
    const uint64_t ref = sb.build(values).totalOps();
    for (int trial = 0; trial < 5; ++trial) {
        for (size_t i = values.size() - 1; i > 0; --i)
            std::swap(values[i], values[rng.uniformInt(0, i)]);
        EXPECT_EQ(sb.build(values).totalOps(), ref);
    }
}

TEST(Scoreboard, ManyDuplicatesOfDeepValue)
{
    // 256 copies of one level-8 value: one PopCount chain plus 255
    // full reuses.
    std::vector<uint32_t> values(256, 255u);
    ScoreboardConfig c;
    c.tBits = 8;
    c.maxDistance = 8 + 1;
    const Plan plan = Scoreboard(c).build(values);
    EXPECT_EQ(plan.totalOps(), 8u + 255u);
    EXPECT_EQ(plan.frRows(), 255u);
}

TEST(Scoreboard, MixedZeroAndNonZero)
{
    const std::vector<uint32_t> values = {0, 1, 0, 2, 0, 3};
    const Plan plan = Scoreboard([] {
        ScoreboardConfig c;
        c.tBits = 4;
        return c;
    }()).build(values);
    EXPECT_EQ(plan.zeroRows, 3u);
    EXPECT_EQ(plan.numRows, 6u);
    EXPECT_EQ(plan.totalOps(), 3u); // 1, 2 from root; 3 reuses either
}

TEST(Scoreboard, TwoLaneConfigUsesOnlyTwoLanes)
{
    ScoreboardConfig c;
    c.tBits = 4;
    c.numLanes = 2;
    const Plan plan =
        Scoreboard(c).build(std::vector<uint32_t>{1, 2, 4, 8, 15});
    for (const auto &pn : plan.nodes) {
        EXPECT_GE(pn.lane, 0);
        EXPECT_LT(pn.lane, 2);
    }
    EXPECT_EQ(plan.laneOps().size(), 2u);
}

} // namespace
} // namespace ta
