/**
 * @file
 * Sparsity analyzer: the op-counting machinery behind the paper's design
 * space exploration (Fig. 9) and the static/dynamic comparison (Fig. 13).
 * Classifies TransRow work into the four computation patterns of Sec. 5.2:
 * ZR (zero row), TR (transitive pass-through), FR (full result reuse) and
 * PR (prefix result reuse), and reports densities relative to dense
 * bit-level GEMM.
 */

#ifndef TA_SCOREBOARD_ANALYZER_H
#define TA_SCOREBOARD_ANALYZER_H

#include <array>
#include <cstdint>
#include <functional>

#include "quant/bitslice.h"
#include "scoreboard/scoreboard.h"

namespace ta {

class ParallelExecutor;
class PlanCache;

/** Aggregated sparsity statistics over one or more (tile, chunk) plans. */
struct SparsityStats
{
    int tBits = 0;
    uint64_t rows = 0;        ///< TransRows analyzed
    uint64_t denseOps = 0;    ///< rows * T: dense bit-GEMM adds
    uint64_t bitOps = 0;      ///< total one-bits: bit-sparsity adds
    uint64_t zrRows = 0;      ///< zero rows (skipped)
    uint64_t prRows = 0;      ///< first row per present node
    uint64_t frRows = 0;      ///< duplicate rows (full reuse)
    uint64_t trNodes = 0;     ///< materialized pass-through nodes
    uint64_t outlierExtra = 0; ///< extra adds on from-scratch outliers
    uint64_t siMisses = 0;    ///< static-SI chain breaks (Sec. 3.3)
    /** Present-node distance histogram; index d-1, last bucket = >= size. */
    std::array<uint64_t, 8> distHist{};

    uint64_t totalOps() const { return prRows + frRows + trNodes +
                                       outlierExtra; }

    double totalDensity() const;   ///< totalOps / denseOps
    double bitDensity() const;     ///< bitOps / denseOps
    double zrSparsity() const;     ///< zrRows / rows
    double trDensity() const;      ///< trNodes (+outlier extra) share
    double frDensity() const;
    double prDensity() const;

    /** Accumulate another tile/chunk result. */
    void merge(const SparsityStats &other);

    /** Collect stats from one dynamic-scoreboard plan. */
    static SparsityStats fromPlan(const Plan &plan, uint64_t bit_ops);
};

/**
 * Analyzer driving the dynamic scoreboard over a binary matrix with the
 * paper's tiling: rows are processed in groups of `tile_rows`, columns in
 * chunks of T; each (tile, chunk) gets its own private plan.
 */
class SparsityAnalyzer
{
  public:
    /**
     * `cache`, when given, memoizes the per-(tile, chunk) plans —
     * results are bit-identical either way (plans are pure functions of
     * the values). The cache must outlive the analyzer and serve only
     * this ScoreboardConfig.
     */
    explicit SparsityAnalyzer(ScoreboardConfig config,
                              PlanCache *cache = nullptr)
        : config_(config), scoreboard_(config), cache_(cache)
    {}

    /**
     * Dynamic-scoreboard analysis of a full binary matrix (Fig. 9 /
     * Fig. 13 "Dynamic" series).
     */
    SparsityStats analyzeDynamic(const MatBit &bits,
                                 size_t tile_rows) const;

    /**
     * As analyzeDynamic(), sharding the (tile, chunk) grid across
     * `pool` with a shard-order stats merge — bit-identical to the
     * serial overload for any thread count.
     */
    SparsityStats analyzeDynamic(const MatBit &bits, size_t tile_rows,
                                 ParallelExecutor &pool) const;

    /** Analyze one list of TransRow values as a single sub-tile. */
    SparsityStats analyzeValues(const std::vector<uint32_t> &values) const;

  private:
    ScoreboardConfig config_;
    Scoreboard scoreboard_;
    PlanCache *cache_;
};

/** Sum of set bits over a list of TransRow values. */
uint64_t bitOpsOf(const std::vector<uint32_t> &values);

/** Same, straight from TransRows (avoids staging a value vector). */
uint64_t bitOpsOf(const std::vector<TransRow> &rows);

/**
 * Collect the per-(tile, chunk) TransRow value lists of a binary matrix:
 * tiles of `tile_rows` rows by chunks of T columns.
 */
std::vector<std::vector<uint32_t>> tileValues(const MatBit &bits,
                                              int t_bits,
                                              size_t tile_rows);

/** Number of (tile, chunk) grid cells tileValues() would produce. */
size_t tileGridCells(const MatBit &bits, int t_bits, size_t tile_rows);

/**
 * Append the TransRow values of grid cell `cell` to `out`. Cells are
 * indexed tile-major (chunk fastest), exactly matching the order of
 * tileValues()' output — the building block of the parallel scans.
 */
void appendTileChunkValues(const MatBit &bits, int t_bits,
                           size_t tile_rows, size_t cell,
                           std::vector<uint32_t> &out);

/**
 * The one parallel (tile, chunk) scan shared by every analyzer: shards
 * the grid across `pool` and calls `per_cell(shard, values)` for each
 * cell of the shard, in cell order, with a per-shard reused value
 * buffer. Callers accumulate into per-shard state sized
 * `pool.threads()` and merge it in shard order — per-shard cell order
 * plus shard-order merging is what keeps every scan bit-identical to
 * the serial loop for any thread count.
 */
void forEachTileChunkSharded(
    ParallelExecutor &pool, const MatBit &bits, int t_bits,
    size_t tile_rows,
    const std::function<void(int shard,
                             const std::vector<uint32_t> &values)>
        &per_cell);

} // namespace ta

#endif // TA_SCOREBOARD_ANALYZER_H
