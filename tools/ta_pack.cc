/**
 * @file
 * ta_pack: compile workload suites into ta-segment v1 files — the
 * storage tier's write path. Each suite becomes one catalog model
 * whose layer planes are the exact tensors the engine would
 * synthesize at serve time (realLikeSlicedWeights under the runShape
 * repr cap, seeds following the suite_runner layerSeed rule), packed
 * with packSlicedBits. Packing is deterministic: the same suites,
 * seed, wbits and repr caps produce byte-identical files, pinned by
 * the CI re-pack `cmp`.
 *
 * Usage:
 *   ta_pack --out FILE --suites A[,B...] [--wbits N] [--seed S]
 *           [--repr-rows N] [--repr-cols N] [--verify]
 *   ta_pack --verify-file FILE [--list]
 *   ta_pack --list-suites
 *
 * --verify (and --verify-file) re-expand every packed plane against
 * fresh synthesis and byte-compare, and re-hash every data page
 * against the catalog's checksum table — the full
 * what-you-packed-is-what-you-serve audit.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.h"
#include "storage/buffer_manager.h"
#include "storage/segment_format.h"
#include "workloads/generators.h"
#include "workloads/llama.h"
#include "workloads/resnet18.h"
#include "workloads/suite_runner.h"

using namespace ta;

namespace {

/** A small fixed suite for smoke tests and CI: shapes modest enough
 *  to pack + serve in seconds, still exercising the n > reprRows cap
 *  and ragged (non-multiple-of-8) column packing. */
WorkloadSuite
quickSuite()
{
    WorkloadSuite s;
    s.name = "quick";
    s.layers = {{"q_proj", {512, 512, 256}, 1, false},
                {"gate", {256, 1024, 128}, 1, false},
                {"down", {1024, 300, 64}, 1, false},
                {"head", {320, 768, 96}, 1, false}};
    return s;
}

/** Named suites a catalog can hold. Names are the model names. */
bool
suiteByName(const std::string &name, WorkloadSuite *out)
{
    if (name == "quick")
        *out = quickSuite();
    else if (name == "llama7b-fc")
        *out = llamaFcLayers(llama2_7b());
    else if (name == "llama7b-attn")
        *out = llamaAttentionLayers(llama2_7b());
    else if (name == "llama13b-fc")
        *out = llamaFcLayers(llama2_13b());
    else if (name == "llama8b-fc")
        *out = llamaFcLayers(llama3_8b());
    else if (name == "resnet18")
        *out = resnet18Layers();
    else
        return false;
    out->name = name;
    return true;
}

const char *kSuiteNames[] = {"quick",       "llama7b-fc",
                             "llama7b-attn", "llama13b-fc",
                             "llama8b-fc",   "resnet18"};

/** The runShape representative cap (accelerator.cc reprDims). */
std::pair<uint64_t, uint64_t>
reprDims(const GemmShape &shape, uint64_t repr_rows, uint64_t repr_cols)
{
    return {std::min(shape.n, repr_rows), std::min(shape.k, repr_cols)};
}

/** Synthesize + pack the plane of one suite layer — the single rule
 *  both the packer and --verify use, identical to the serving-time
 *  synthesis fallback. */
std::vector<uint8_t>
packPlane(const GemmShape &shape, int wbits, uint64_t seed,
          uint64_t repr_rows, uint64_t repr_cols)
{
    const auto [nr, kr] = reprDims(shape, repr_rows, repr_cols);
    return packSlicedBits(realLikeSlicedWeights(nr, kr, wbits, seed));
}

SegmentModelInput
buildModel(const WorkloadSuite &suite, int wbits, uint64_t base_seed,
           uint64_t repr_rows, uint64_t repr_cols)
{
    SegmentModelInput m;
    m.name = suite.name;
    m.baseSeed = base_seed;
    m.wbits = wbits;
    for (size_t i = 0; i < suite.layers.size(); ++i) {
        const GemmLayerDesc &l = suite.layers[i];
        SegmentEntryInput e;
        e.layer = l.name;
        e.n = l.shape.n;
        e.k = l.shape.k;
        e.m = l.shape.m;
        e.seed = layerSeed(base_seed, i);
        e.wbits = wbits;
        const auto [nr, kr] = reprDims(l.shape, repr_rows, repr_cols);
        e.reprRows = nr;
        e.reprCols = kr;
        e.packed = packPlane(l.shape, wbits, e.seed, repr_rows,
                             repr_cols);
        m.entries.push_back(std::move(e));
    }
    return m;
}

/** Re-expand every entry of an opened segment against fresh synthesis
 *  and re-hash every data page. Prints a per-model summary. */
bool
verifySegment(const SegmentFile &seg)
{
    bool ok = true;
    for (const CatalogModel &m : seg.models()) {
        uint64_t bytes = 0;
        for (const CatalogEntry &e : m.entries) {
            const std::vector<uint8_t> fresh =
                packSlicedBits(realLikeSlicedWeights(
                    e.reprRows, e.reprCols, e.wbits, e.seed));
            const uint8_t *stored = seg.pageData(e.firstPage);
            if (fresh.size() != e.dataBytes ||
                std::memcmp(fresh.data(), stored, fresh.size()) != 0) {
                std::fprintf(stderr,
                             "ta_pack: %s/%s: packed plane differs "
                             "from fresh synthesis\n",
                             m.name.c_str(), e.layer.c_str());
                ok = false;
            }
            for (uint64_t p = e.firstPage;
                 p < e.firstPage + e.pageCount; ++p) {
                if (fnv64(seg.pageData(p), kSegmentPageSize) !=
                    seg.pageFnv(p)) {
                    std::fprintf(stderr,
                                 "ta_pack: %s/%s: page %llu checksum "
                                 "mismatch\n",
                                 m.name.c_str(), e.layer.c_str(),
                                 static_cast<unsigned long long>(p));
                    ok = false;
                }
            }
            bytes += e.dataBytes;
        }
        std::fprintf(stderr,
                     "ta_pack: verified model '%s': %zu layers, "
                     "%llu plane bytes\n",
                     m.name.c_str(), m.entries.size(),
                     static_cast<unsigned long long>(bytes));
    }
    return ok;
}

void
listSegment(const SegmentFile &seg)
{
    for (const CatalogModel &m : seg.models()) {
        std::printf("model %s wbits=%d base_seed=%llu layers=%zu\n",
                    m.name.c_str(), m.wbits,
                    static_cast<unsigned long long>(m.baseSeed),
                    m.entries.size());
        for (const CatalogEntry &e : m.entries)
            std::printf(
                "  %s n=%llu k=%llu m=%llu seed=%llu repr=%llux%llu "
                "pages=%llu@%llu\n",
                e.layer.c_str(), static_cast<unsigned long long>(e.n),
                static_cast<unsigned long long>(e.k),
                static_cast<unsigned long long>(e.m),
                static_cast<unsigned long long>(e.seed),
                static_cast<unsigned long long>(e.reprRows),
                static_cast<unsigned long long>(e.reprCols),
                static_cast<unsigned long long>(e.pageCount),
                static_cast<unsigned long long>(e.firstPage));
    }
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --out FILE --suites A[,B...] [--wbits N] "
        "[--seed S]\n"
        "          [--repr-rows N] [--repr-cols N] [--verify]\n"
        "       %s --verify-file FILE [--list]\n"
        "       %s --list-suites\n"
        "  --out        segment file to write (atomic tmp+rename)\n"
        "  --suites     comma-separated suite names; each becomes one\n"
        "               catalog model\n"
        "  --wbits      weight bit width (default 4)\n"
        "  --seed       base seed; layer i uses seed+i (default 1)\n"
        "  --repr-rows  representative-row cap (default 256, the\n"
        "               runShape default; servers only match entries\n"
        "               packed at their own cap)\n"
        "  --repr-cols  representative-col cap (default 4096)\n"
        "  --verify     after writing, re-expand every plane against\n"
        "               fresh synthesis and re-hash every page\n"
        "  --verify-file  audit an existing segment the same way\n"
        "  --list       with --verify-file: print the catalog\n"
        "  --list-suites  print known suite names\n",
        argv0, argv0, argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path, suites_arg, verify_path;
    long long wbits = 4;
    uint64_t seed = 1;
    uint64_t repr_rows = kDefaultReprRows;
    uint64_t repr_cols = kDefaultReprCols;
    bool verify = false, list = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 2;
        }
        if (a == "--verify") {
            verify = true;
            continue;
        }
        if (a == "--list") {
            list = true;
            continue;
        }
        if (a == "--list-suites") {
            for (const char *s : kSuiteNames)
                std::printf("%s\n", s);
            return 0;
        }
        const bool known = a == "--out" || a == "--suites" ||
                           a == "--wbits" || a == "--seed" ||
                           a == "--repr-rows" || a == "--repr-cols" ||
                           a == "--verify-file";
        if (!known) {
            std::fprintf(stderr, "unknown flag %s\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
        const char *v = argv[++i];
        bool ok = true;
        if (a == "--out")
            out_path = v;
        else if (a == "--suites")
            suites_arg = v;
        else if (a == "--verify-file")
            verify_path = v;
        else if (a == "--wbits")
            ok = parseIntFlag(a, v, 1, 16, wbits);
        else if (a == "--seed")
            ok = parseU64Flag(a, v, 0, ~uint64_t{0} / 2, seed);
        else if (a == "--repr-rows")
            ok = parseU64Flag(a, v, 1, 1u << 20, repr_rows);
        else if (a == "--repr-cols")
            ok = parseU64Flag(a, v, 1, 1u << 20, repr_cols);
        if (!ok) {
            usage(argv[0]);
            return 2;
        }
    }

    // ---- audit mode -------------------------------------------------
    if (!verify_path.empty()) {
        SegmentFile seg;
        std::string err;
        if (!seg.open(verify_path, &err)) {
            std::fprintf(stderr, "ta_pack: %s\n", err.c_str());
            return 1;
        }
        if (list)
            listSegment(seg);
        return verifySegment(seg) ? 0 : 1;
    }

    if (out_path.empty() || suites_arg.empty()) {
        usage(argv[0]);
        return 2;
    }

    // ---- pack -------------------------------------------------------
    std::vector<SegmentModelInput> models;
    size_t pos = 0;
    while (pos <= suites_arg.size()) {
        const size_t comma = suites_arg.find(',', pos);
        const std::string name =
            suites_arg.substr(pos, comma == std::string::npos
                                       ? std::string::npos
                                       : comma - pos);
        pos = comma == std::string::npos ? suites_arg.size() + 1
                                         : comma + 1;
        WorkloadSuite suite;
        if (!suiteByName(name, &suite)) {
            std::fprintf(stderr,
                         "ta_pack: unknown suite '%s' (see "
                         "--list-suites)\n",
                         name.c_str());
            return 2;
        }
        models.push_back(
            buildModel(suite, static_cast<int>(wbits), seed,
                       repr_rows, repr_cols));
    }

    std::string err;
    if (!writeSegmentFile(out_path, models, &err)) {
        std::fprintf(stderr, "ta_pack: %s\n", err.c_str());
        return 1;
    }
    uint64_t planes = 0, bytes = 0;
    for (const SegmentModelInput &m : models)
        for (const SegmentEntryInput &e : m.entries) {
            ++planes;
            bytes += e.packed.size();
        }
    std::fprintf(stderr,
                 "ta_pack: wrote %s: %zu model(s), %llu plane(s), "
                 "%llu plane bytes\n",
                 out_path.c_str(), models.size(),
                 static_cast<unsigned long long>(planes),
                 static_cast<unsigned long long>(bytes));

    if (verify) {
        SegmentFile seg;
        if (!seg.open(out_path, &err)) {
            std::fprintf(stderr, "ta_pack: %s\n", err.c_str());
            return 1;
        }
        if (!verifySegment(seg))
            return 1;
    }
    return 0;
}
