/**
 * @file
 * Fig. 11: energy breakdown of TransArray on the first FC layer of
 * LLaMA-1-7B (q_proj, 4096 x 4096 x seq 2048), dynamic scoreboard,
 * 8-bit weights. The paper's qualitative shape: buffers dominate
 * (prefix buffer the largest on-chip consumer), DRAM static energy is
 * small because runtime is short.
 */

#include <cstdio>

#include "common/table.h"
#include "harness/harness.h"
#include "workloads/llama.h"

using namespace ta;

namespace {

int
runFig11(HarnessContext &ctx)
{
    const LlamaConfig model = llama1_7b();
    const GemmShape q_proj = llamaFcLayers(model).layers[0].shape;

    TransArrayAccelerator::Config tc;
    tc.sampleLimit = ctx.quick() ? 48 : 128;
    const auto acc = ctx.makeAccelerator(tc);
    const LayerRun run = acc->runShape(q_proj, 8, ctx.seed(11));

    const EnergyBreakdown &e = run.energy;
    const double total = e.total();
    auto pct = [&](double v) { return Table::fmt(100.0 * v / total, 1); };

    Table t("Fig. 11: TransArray energy breakdown, LLaMA-1-7B first FC "
            "layer");
    t.setHeader({"Component", "Energy (nJ)", "Share (%)"});
    t.addRow({"DRAM dynamic", Table::fmt(e.dramDynamic / 1e3, 1),
              pct(e.dramDynamic)});
    t.addRow({"DRAM static", Table::fmt(e.dramStatic / 1e3, 1),
              pct(e.dramStatic)});
    t.addRow({"Core (PE+NoC+SB)", Table::fmt(e.core / 1e3, 1),
              pct(e.core)});
    t.addRow({"Weight buffer", Table::fmt(e.weightBuf / 1e3, 1),
              pct(e.weightBuf)});
    t.addRow({"Input buffer", Table::fmt(e.inputBuf / 1e3, 1),
              pct(e.inputBuf)});
    t.addRow({"Prefix buffer", Table::fmt(e.prefixBuf / 1e3, 1),
              pct(e.prefixBuf)});
    t.addRow({"Output buffer", Table::fmt(e.outputBuf / 1e3, 1),
              pct(e.outputBuf)});
    t.addRow({"Double buffers", Table::fmt(e.otherBuf / 1e3, 1),
              pct(e.otherBuf)});
    t.addRow({"All buffers", Table::fmt(e.buffers() / 1e3, 1),
              pct(e.buffers())});
    t.addRow({"Total", Table::fmt(total / 1e3, 1), "100.0"});
    t.print();

    ctx.metric("cycles", run.cycles);
    ctx.metric("compute_cycles", run.computeCycles);
    ctx.metric("dram_cycles", run.dramCycles);
    ctx.metric("total_energy_nj", total / 1e3);
    ctx.metric("buffer_share_pct", 100.0 * e.buffers() / total);
    ctx.metric("prefix_buffer_share_pct", 100.0 * e.prefixBuf / total);

    std::printf(
        "Layer cycles: %llu (compute %llu, DRAM %llu)\n"
        "Shape check vs paper: buffers are the majority consumer and\n"
        "the prefix buffer is the largest single buffer — TransArray\n"
        "trades buffer energy for drastically fewer compute cycles.\n",
        static_cast<unsigned long long>(run.cycles),
        static_cast<unsigned long long>(run.computeCycles),
        static_cast<unsigned long long>(run.dramCycles));
    return 0;
}

} // namespace

TA_BENCHMARK("fig11",
             "TransArray energy breakdown on the LLaMA-1-7B first FC "
             "layer",
             runFig11);
