#include "service/request_queue.h"

#include <algorithm>

namespace ta {

RequestQueue::RequestQueue(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity))
{
}

bool
RequestQueue::submit(ServiceJob job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_ || jobs_.size() >= capacity_) {
            ++counters_.rejected;
            return false;
        }
        jobs_.push_back(std::move(job));
        ++counters_.admitted;
        counters_.peakDepth =
            std::max<uint64_t>(counters_.peakDepth, jobs_.size());
    }
    cv_.notify_one();
    return true;
}

bool
RequestQueue::popBatch(size_t max_window, std::vector<ServiceJob> &out)
{
    out.clear();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
    if (jobs_.empty())
        return false; // closed and drained

    out.push_back(std::move(jobs_.front()));
    jobs_.pop_front();
    // By value: push_back below may reallocate `out` and would leave a
    // reference into it dangling.
    const EngineKey key = out.front().key;
    // Coalesce same-engine jobs in arrival order; jobs for other
    // engines keep their relative order for the next popBatch().
    for (auto it = jobs_.begin();
         it != jobs_.end() && out.size() < std::max<size_t>(1, max_window);) {
        if (it->key == key) {
            out.push_back(std::move(*it));
            it = jobs_.erase(it);
        } else {
            ++it;
        }
    }
    return true;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_.size();
}

RequestQueue::Counters
RequestQueue::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

} // namespace ta
