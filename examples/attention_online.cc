/**
 * @file
 * Online attention with the dynamic scoreboard (Sec. 3.4 / 5.7): the
 * K cache is generated at runtime, so no offline preprocessing is
 * possible. This example quantizes a runtime K cache, runs QK^T through
 * the functional transitive engine (verifying exactness), and shows why
 * the dynamic scoreboard matters by comparing its density against a
 * static SI calibrated on a *different* sequence.
 *
 * Build & run:  ./build/examples/attention_online
 */

#include <cstdio>

#include "core/transitive_gemm.h"
#include "scoreboard/static_scoreboard.h"
#include "workloads/generators.h"

using namespace ta;

int
main()
{
    // Runtime-generated K cache (128 keys x 64 dims) and queries.
    const MatI32 kcache = randomActivations(128, 64, 8, 101);
    const MatI32 queries = randomActivations(64, 32, 8, 102);

    // QK^T on the transitive engine with the dynamic scoreboard.
    TransitiveGemmConfig cfg;
    cfg.scoreboard.tBits = 8;
    TransitiveGemmEngine engine(cfg);
    const TransitiveGemmResult res = engine.run(kcache, 8, queries);

    if (!(res.output == denseGemm(kcache, queries))) {
        std::fprintf(stderr, "FAIL: attention scores diverged!\n");
        return 1;
    }
    std::printf("QK^T scores bit-exact across %llu sub-tiles\n",
                static_cast<unsigned long long>(res.subTiles));
    std::printf("dynamic scoreboard density: %.2f%% (bit sparsity "
                "%.1f%%)\n\n",
                100.0 * res.stats.totalDensity(),
                100.0 * res.stats.bitDensity());

    // Why dynamic? A static SI calibrated on one sequence mispredicts
    // the prefix structure of the next.
    const SlicedMatrix this_seq = bitSlice(kcache, 8);
    const SlicedMatrix other_seq =
        bitSlice(randomActivations(128, 64, 8, 999), 8);

    std::vector<uint32_t> stale_calib;
    for (const auto &t : tileValues(other_seq.bits, 8,
                                    other_seq.bits.rows()))
        stale_calib.insert(stale_calib.end(), t.begin(), t.end());
    StaticScoreboard stale(cfg.scoreboard, stale_calib);
    const SparsityStats ss = stale.analyze(this_seq.bits, 256);

    ScoreboardConfig sc = cfg.scoreboard;
    const SparsityStats ds =
        SparsityAnalyzer(sc).analyzeDynamic(this_seq.bits, 256);

    std::printf("density on this sequence:\n");
    std::printf("  dynamic SI (per sub-tile)  : %.2f%%\n",
                100.0 * ds.totalDensity());
    std::printf("  static SI (stale sequence) : %.2f%%  (%llu SI "
                "misses)\n",
                100.0 * ss.totalDensity(),
                static_cast<unsigned long long>(ss.siMisses));
    std::printf("\nThe dynamic scoreboard keeps attention GEMMs at "
                "near-optimal sparsity\nwithout any offline pass — the "
                "capability Olive/Tender/BitVert lack.\n");
    return 0;
}
