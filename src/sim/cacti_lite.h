/**
 * @file
 * CACTI-lite: a small geometric SRAM estimator standing in for the
 * CACTI 7.0 runs the paper used for buffer area and power (Sec. 5.1).
 * A bank is modeled as a near-square 6T cell array with periphery
 * overhead; access energy follows the wordline/bitline-length (square
 * root of bank capacity) law and leakage is proportional to capacity.
 * Constants are anchored at 28 nm and consistent with the simpler
 * EnergyParams::sramPerByte() law used in the fast path.
 */

#ifndef TA_SIM_CACTI_LITE_H
#define TA_SIM_CACTI_LITE_H

#include <cstdint>

namespace ta {

/** SRAM macro geometry. */
struct SramGeometry
{
    uint64_t bytes = 8 * 1024;
    uint32_t banks = 1;
    uint32_t wordBytes = 8; ///< bytes per access port word
};

/** Estimated physical characteristics. */
struct SramEstimate
{
    double areaMm2 = 0;
    double readPjPerAccess = 0;
    double writePjPerAccess = 0;
    double leakageMw = 0;

    double readPjPerByte(uint32_t word_bytes) const
    {
        return readPjPerAccess / word_bytes;
    }
};

class CactiLite
{
  public:
    struct Params
    {
        double cellUm2 = 0.127;     ///< 6T bit cell at 28 nm
        double arrayEfficiency = 0.7; ///< cells / total macro area
        double bankOverhead = 0.06; ///< extra area per doubling of banks
        double basePjPerByte = 0.25; ///< read energy at the 8 KB point
        double writeFactor = 1.1;   ///< writes slightly above reads
        double leakMwPerKb = 0.0015; ///< 28 nm HD leakage
    };

    CactiLite() : CactiLite(Params()) {}
    explicit CactiLite(Params params) : params_(params) {}

    const Params &params() const { return params_; }

    /** Estimate one SRAM macro. */
    SramEstimate estimate(const SramGeometry &g) const;

  private:
    Params params_;
};

} // namespace ta

#endif // TA_SIM_CACTI_LITE_H
