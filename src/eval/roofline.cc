#include "eval/roofline.h"

#include <algorithm>

#include "common/logging.h"

namespace ta {

double
RooflinePoint::attainable(double ops_per_byte) const
{
    TA_ASSERT(ops_per_byte >= 0, "intensity must be non-negative");
    return std::min(opsPerCycle, bytesPerCycle * ops_per_byte);
}

double
gemmIntensity(const GemmShape &shape, int weight_bits, int act_bits,
              int out_bits)
{
    const double bytes =
        static_cast<double>(shape.n) * shape.k * weight_bits / 8 +
        static_cast<double>(shape.k) * shape.m * act_bits / 8 +
        static_cast<double>(shape.n) * shape.m * out_bits / 8;
    TA_ASSERT(bytes > 0, "empty GEMM");
    return static_cast<double>(shape.macs()) / bytes;
}

RooflinePoint
transArrayRoofline(uint32_t units, uint32_t lanes, uint32_t adders,
                   int weight_bits, double density,
                   double bytes_per_cycle)
{
    TA_ASSERT(density > 0 && density <= 1, "density in (0,1]: ",
              density);
    RooflinePoint p;
    p.label = "TransArray-" + std::to_string(weight_bits) + "bit";
    const double adds_per_cycle =
        static_cast<double>(units) * lanes * adders;
    // One dense MAC = weight_bits bit-adds; transitive sparsity keeps
    // only `density` of them.
    p.opsPerCycle = adds_per_cycle / (weight_bits * density);
    p.bytesPerCycle = bytes_per_cycle;
    return p;
}

RooflinePoint
baselineRoofline(const std::string &label, double macs_per_cycle,
                 double bytes_per_cycle)
{
    TA_ASSERT(macs_per_cycle > 0, "need positive throughput");
    return {label, macs_per_cycle, bytes_per_cycle};
}

} // namespace ta
