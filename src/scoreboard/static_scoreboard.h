/**
 * @file
 * Static Scoreboard (Sec. 3.3): the SI is computed once, offline, from all
 * TransRows of a tensor, then shared by every tile. When a tile lacks the
 * prefix a row's SI entry points at, the prefix-suffix path breaks — an
 * SI Miss — and the missing chain nodes must be re-materialized inside the
 * tile (extra TR adds), degrading density for small tiles (Fig. 13).
 */

#ifndef TA_SCOREBOARD_STATIC_SCOREBOARD_H
#define TA_SCOREBOARD_STATIC_SCOREBOARD_H

#include <vector>

#include "scoreboard/analyzer.h"
#include "scoreboard/scoreboard_info.h"

namespace ta {

class ParallelExecutor;

class StaticScoreboard
{
  public:
    /**
     * Build the tensor-level public SI from every TransRow value the
     * tensor contains (offline calibration step).
     */
    StaticScoreboard(ScoreboardConfig config,
                     const std::vector<uint32_t> &all_values);

    const ScoreboardInfo &info() const { return si_; }
    const Plan &tensorPlan() const { return tensorPlan_; }

    /**
     * Evaluate one tile's TransRows under the shared static SI,
     * counting ops and SI misses.
     */
    SparsityStats evaluateTile(const std::vector<uint32_t> &values) const;

    /**
     * Tile the binary matrix exactly like the dynamic analyzer and
     * evaluate every (tile, chunk) with the shared SI.
     */
    SparsityStats analyze(const MatBit &bits, size_t tile_rows) const;

    /**
     * As analyze(), sharding the (tile, chunk) grid across `pool` and
     * merging per-shard stats in shard order — bit-identical to the
     * serial overload for any thread count.
     */
    SparsityStats analyze(const MatBit &bits, size_t tile_rows,
                          ParallelExecutor &pool) const;

  private:
    ScoreboardConfig config_;
    Plan tensorPlan_;
    ScoreboardInfo si_;
};

/**
 * Parallel offline calibration scan: shard the (tile, chunk) grid of
 * `bits`, extract each shard's TransRow values into a private buffer
 * and concatenate the buffers in shard order, so the calibration value
 * sequence — and therefore the shared SI — is bit-identical to the
 * serial `tileValues()` concatenation for any thread count.
 */
StaticScoreboard buildStaticScoreboard(const ScoreboardConfig &config,
                                       const MatBit &bits,
                                       size_t tile_rows,
                                       ParallelExecutor &pool);

} // namespace ta

#endif // TA_SCOREBOARD_STATIC_SCOREBOARD_H
