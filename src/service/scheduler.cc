#include "service/scheduler.h"

#include <algorithm>
#include <exception>

#include "common/logging.h"
#include "obs/trace.h"

namespace ta {

namespace {

constexpr size_t kLatencyRingCapacity = 1 << 16;

/** The plan-relevant scoreboard fields (PlanCacheStore's section key). */
std::tuple<int, int, int, bool>
scoreboardKeyOf(const ScoreboardConfig &c)
{
    return {c.tBits, c.maxDistance, c.numLanes, c.balanceLanes};
}

} // namespace

std::string
WindowPlanner::admissionShed(const ServiceRequest &req) const
{
    if (req.deadlineMs == 0)
        return "";
    const double predicted = model_.predictMs(req);
    if (predicted <= static_cast<double>(req.deadlineMs))
        return "";
    return "deadline_unmeetable: predicted " + formatDouble(predicted) +
           " ms exceeds deadline " + std::to_string(req.deadlineMs) +
           " ms";
}

void
WindowPlanner::annotate(ServiceJob &job, double now_ms) const
{
    job.predictedMs = model_.predictMs(job.request);
    if (job.request.deadlineMs > 0)
        job.deadlineAbsMs =
            now_ms + static_cast<double>(job.request.deadlineMs);
}

ServiceScheduler::ServiceScheduler(ServiceConfig config)
    : config_(config),
      queue_(config.queueCapacity),
      served_(metrics_.counter("served")),
      errors_(metrics_.counter("errors")),
      windows_(metrics_.counter("windows")),
      batchedRequests_(metrics_.counter("batched_requests")),
      shedUnmeetable_(metrics_.counter("shed_unmeetable")),
      deadlineMet_(metrics_.counter("deadline_met")),
      deadlineMisses_(metrics_.counter("deadline_misses")),
      maxWindow_(metrics_.gauge("max_window")),
      inflightWindows_(metrics_.gauge("inflight_windows")),
      serviceHist_(metrics_.histogram("service_ms"))
{
    config_.window = std::max<size_t>(1, config_.window);
    config_.sessions = std::max(1, config_.sessions);
    latencyRing_.reserve(kLatencyRingCapacity);
}

ServiceScheduler::~ServiceScheduler()
{
    stop();
}

void
ServiceScheduler::start()
{
    if (started_)
        return;
    started_ = true;
    startedAt_ = std::chrono::steady_clock::now();
    if (!config_.costModelPath.empty()) {
        std::string err;
        if (planner_.loadCoefficients(config_.costModelPath, &err)) {
            logf(LogLevel::Info, "service",
                 "cost model loaded from %s",
                 config_.costModelPath.c_str());
        } else {
            // Strict wholesale rejection: the planner keeps its
            // built-in coefficients. ta_serve pre-validates the file
            // and exits instead of reaching this path.
            logf(LogLevel::Warn, "service",
                 "cost model rejected (%s); using built-in "
                 "coefficients",
                 err.c_str());
        }
    }
    if (!config_.catalogDir.empty()) {
        // Open-and-go cold start: mmap + validate every segment of the
        // catalog; no weight is synthesized or copied. ta_serve
        // pre-validates the directory and exits on failure, so this
        // path only logs.
        BufferManager::Config bc;
        bc.bufferPages = config_.bufferPages;
        auto buffers = std::make_unique<BufferManager>(bc);
        std::string err;
        if (buffers->openCatalog(config_.catalogDir, &err)) {
            buffers_ = std::move(buffers);
            logf(LogLevel::Info, "service",
                 "catalog %s: %zu model(s) in %zu segment(s), "
                 "%zu bytes mapped, %zu buffer pages",
                 config_.catalogDir.c_str(), buffers_->modelCount(),
                 buffers_->segmentCount(), buffers_->bytesMapped(),
                 config_.bufferPages);
        } else {
            logf(LogLevel::Warn, "service",
                 "catalog rejected (%s); serving synthesis only",
                 err.c_str());
        }
    }
    if (!config_.planCachePath.empty()) {
        std::lock_guard<std::mutex> lock(storeMu_);
        // Log to stderr: in stdio mode stdout carries protocol lines.
        if (store_.loadFile(config_.planCachePath)) {
            plansLoaded_ = store_.planCount();
            logf(LogLevel::Info, "service",
                 "warm plan cache, %zu plans (%zu configs) from %s",
                 store_.planCount(), store_.sectionCount(),
                 config_.planCachePath.c_str());
        } else {
            logf(LogLevel::Info, "service",
                 "cold plan cache (%s absent or unreadable)",
                 config_.planCachePath.c_str());
        }
    }
    for (int s = 0; s < config_.sessions; ++s)
        sessions_.emplace_back([this] { sessionLoop(); });
    if (!config_.planCachePath.empty() &&
        config_.cacheSaveIntervalSec > 0)
        persister_ = std::thread([this] { persistLoop(); });
}

void
ServiceScheduler::stop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;
    queue_.close();
    for (std::thread &t : sessions_)
        t.join();
    sessions_.clear();
    if (persister_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(persistMu_);
            persistStop_ = true;
        }
        persistCv_.notify_all();
        persister_.join();
    }
    if (!config_.planCachePath.empty()) {
        if (persistSnapshot()) {
            std::lock_guard<std::mutex> lock(storeMu_);
            logf(LogLevel::Info, "service",
                 "saved %zu plans (%zu configs) to %s",
                 store_.planCount(), store_.sectionCount(),
                 config_.planCachePath.c_str());
        } else {
            logf(LogLevel::Warn, "service", "failed to write %s",
                 config_.planCachePath.c_str());
        }
    }
}

bool
ServiceScheduler::persistSnapshot()
{
    // Capture under engineMu_ (the cache set is append-only), then
    // save under storeMu_. The store keeps warm-start sections for
    // configs this process never touched, so a save never shrinks the
    // file's coverage.
    std::lock_guard<std::mutex> store_lock(storeMu_);
    {
        std::lock_guard<std::mutex> lock(engineMu_);
        for (const auto &kv : caches_)
            store_.capture(kv.second.config, *kv.second.cache);
    }
    return store_.saveFile(config_.planCachePath);
}

void
ServiceScheduler::persistLoop()
{
    const auto interval =
        std::chrono::seconds(config_.cacheSaveIntervalSec);
    std::unique_lock<std::mutex> lock(persistMu_);
    while (!persistCv_.wait_for(lock, interval,
                                [&] { return persistStop_; })) {
        lock.unlock();
        // Periodic saves are silent (stop() logs the final one); a
        // transient write failure just retries next interval.
        persistSnapshot();
        lock.lock();
    }
}

void
ServiceScheduler::submit(const ServiceRequest &req,
                         ServiceResponder respond)
{
    if (config_.plannedScheduling) {
        // Deterministic SLO admission control: a request whose
        // predicted service cost alone exceeds its own deadline is
        // shed before burning cycles — explicitly, never silently.
        const std::string shed = planner_.admissionShed(req);
        if (!shed.empty()) {
            shedUnmeetable_.add(1);
            respond(serializeError(req.id, shed));
            return;
        }
    }
    ServiceJob job;
    job.request = req;
    job.key = engineKeyOf(req);
    job.respond = std::move(respond);
    job.enqueued = std::chrono::steady_clock::now();
    if (config_.plannedScheduling)
        planner_.annotate(job, steadyNowMs());
    ServiceResponder reject_path = job.respond; // queue may move job
    if (!queue_.submit(std::move(job)))
        reject_path(serializeError(req.id, "overloaded: queue full"));
}

TransArrayAccelerator &
ServiceScheduler::engineFor(const ServiceRequest &req)
{
    const EngineKey key = engineKeyOf(req);
    TransArrayAccelerator::Config cfg =
        engineConfig(key, config_.threads);
    const ScoreboardConfig sc = cfg.unit.scoreboardConfig();

    // The engine's plans live in the process-wide cache for its
    // scoreboard config, created the first time any engine needs it.
    // Only the map insertions happen under engineMu_; the expensive
    // steps — the warm-start copy and the engine construction (which
    // spawns executor workers) — run outside so concurrent sessions
    // and inline stats ops are not serialized behind them.
    PlanCache *shared = nullptr;
    bool fresh_cache = false;
    {
        std::lock_guard<std::mutex> lock(engineMu_);
        const auto it = engines_.find(key);
        if (it != engines_.end())
            return *it->second;
        SharedCache &entry = caches_[scoreboardKeyOf(sc)];
        if (entry.cache == nullptr) {
            entry.config = sc;
            entry.cache =
                std::make_unique<PlanCache>(config_.planCacheCapacity);
            fresh_cache = true;
        }
        shared = entry.cache.get(); // unique_ptr: stable across rehash
    }
    if (fresh_cache) {
        // Under storeMu_: the periodic persister captures into store_
        // while sessions run. PlanCache::insert is thread-safe and
        // idempotent, so engines racing ahead of a still-running
        // restore only see a partially warm cache — a hit-rate
        // detail, never a correctness one.
        std::lock_guard<std::mutex> store_lock(storeMu_);
        store_.restore(sc, *shared);
    }
    cfg.sharedPlanCache = shared;
    auto engine = std::make_unique<TransArrayAccelerator>(cfg);
    std::lock_guard<std::mutex> lock(engineMu_);
    // A racing session may have inserted the same key first; emplace
    // keeps the winner and discards our duplicate.
    return *engines_.emplace(key, std::move(engine)).first->second;
}

void
ServiceScheduler::sessionLoop()
{
    std::vector<ServiceJob> batch;
    while (queue_.popBatch(config_.window, batch))
        runBatch(batch);
}

bool
ServiceScheduler::resolveModel(const ServiceRequest &req,
                               BufferManager::Pin &pin,
                               std::string &err)
{
    if (buffers_ == nullptr) {
        err = "storage: no catalog loaded (model '" + req.model + "')";
        return false;
    }
    // The engine's synthesis key under the runShape repr cap: a
    // catalog entry matches exactly when it holds the plane
    // realLikeSlicedWeights(nr, kr, wbits, seed) — anything else must
    // be an explicit error, never a silently different tensor.
    const uint64_t nr =
        std::min<uint64_t>(req.shape.n, kDefaultReprRows);
    const uint64_t kr =
        std::min<uint64_t>(req.shape.k, kDefaultReprCols);
    const CatalogEntry *entry =
        buffers_->findEntry(req.model, req.seed, req.wbits, nr, kr);
    if (entry == nullptr) {
        err = "storage: model '" + req.model +
              "' has no plane for seed=" + std::to_string(req.seed) +
              " wbits=" + std::to_string(req.wbits) + " repr=" +
              std::to_string(nr) + "x" + std::to_string(kr);
        return false;
    }
    std::string pin_err;
    pin = buffers_->pin(*entry, &pin_err);
    if (!pin.ok()) {
        err = "storage: " + pin_err;
        return false;
    }
    return true;
}

void
ServiceScheduler::runBatch(std::vector<ServiceJob> &batch)
{
    inflightWindows_.add(1);
    // Phase spans (pin/exec/serialize): the window's phases are shared
    // work, so every traced request of the window gets a span with the
    // same bounds — each trace id then tells its complete story in
    // ta_trace's breakdown. One clock read per phase edge, none when
    // tracing is off.
    obs::Tracer &tracer = obs::Tracer::instance();
    const bool traced = tracer.enabled();
    const auto phaseSpans = [&](const char *name, uint64_t t0,
                                uint64_t t1) {
        for (const ServiceJob &job : batch) {
            if (job.request.traceId == 0)
                continue;
            obs::Span span;
            span.traceId = job.request.traceId;
            span.spanId = tracer.mintSpanId();
            span.name = name;
            span.argKey = "window";
            span.argVal = batch.size();
            span.t0Ns = t0;
            span.t1Ns = t1;
            tracer.record(span);
        }
    };

    std::vector<std::string> responses(batch.size());
    // Resolve catalog models first: a request whose model is unknown
    // or whose segment pages fail their checksum gets a clean
    // "storage:" error, and the rest of the window still runs. Pins
    // are held until every dispatch of the window has completed.
    std::vector<BufferManager::Pin> pins(batch.size());
    std::vector<size_t> live;
    live.reserve(batch.size());
    uint64_t storage_errors = 0;
    const uint64_t pin_t0 = traced ? obs::Tracer::nowNs() : 0;
    for (size_t i = 0; i < batch.size(); ++i) {
        const ServiceRequest &r = batch[i].request;
        if (!r.model.empty()) {
            std::string err;
            if (!resolveModel(r, pins[i], err)) {
                responses[i] = serializeError(r.id, err);
                ++storage_errors;
                continue;
            }
        }
        live.push_back(i);
    }
    if (traced)
        phaseSpans("pin", pin_t0, obs::Tracer::nowNs());
    if (storage_errors != 0)
        errors_.add(storage_errors);
    const uint64_t exec_t0 = traced ? obs::Tracer::nowNs() : 0;
    try {
        if (live.size() == 1) {
            const size_t i = live.front();
            const ServiceRequest &r = batch[i].request;
            TransArrayAccelerator &acc = engineFor(r);
            responses[i] = serializeResponse(
                r, pins[i].ok()
                       ? acc.runShapeView(r.shape, r.wbits,
                                          pins[i].view())
                       : acc.runShape(r.shape, r.wbits, r.seed));
        } else if (!live.empty()) {
            TransArrayAccelerator &acc =
                engineFor(batch[live.front()].request);
            std::vector<BatchLayerRequest> layers(live.size());
            for (size_t j = 0; j < live.size(); ++j) {
                const size_t i = live[j];
                const ServiceRequest &r = batch[i].request;
                layers[j] = BatchLayerRequest{r.shape, r.wbits, r.seed};
                if (pins[i].ok())
                    layers[j].view = &pins[i].view();
            }
            const std::vector<LayerRun> runs =
                acc.runLayersBatched(layers);
            for (size_t j = 0; j < live.size(); ++j)
                responses[live[j]] = serializeResponse(
                    batch[live[j]].request, runs[j]);
        }
    } catch (const std::exception &e) {
        uint64_t engine_errors = 0;
        for (size_t i : live) {
            responses[i] = serializeError(batch[i].request.id,
                                          std::string("engine: ") +
                                              e.what());
            ++engine_errors;
        }
        errors_.add(engine_errors);
    }
    if (traced)
        phaseSpans("exec", exec_t0, obs::Tracer::nowNs());

    // Count the batch before delivering it: a client that received
    // its response and immediately asks for stats must see itself
    // served (the cluster stats aggregation relies on this).
    served_.add(batch.size());
    windows_.add(1);
    if (batch.size() > 1)
        batchedRequests_.add(batch.size());
    maxWindow_.max(batch.size());

    const uint64_t ser_t0 = traced ? obs::Tracer::nowNs() : 0;
    const auto done = std::chrono::steady_clock::now();
    uint64_t met = 0, missed = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
        batch[i].respond(responses[i]);
        const double ms = std::chrono::duration<double, std::milli>(
                              done - batch[i].enqueued)
                              .count();
        recordLatency(ms);
        // Deadline outcome accounting (both policies): measured from
        // admission, the same latency the client experiences minus
        // transport.
        if (batch[i].request.deadlineMs > 0) {
            if (ms <= static_cast<double>(batch[i].request.deadlineMs))
                ++met;
            else
                ++missed;
        }
    }
    if (traced)
        phaseSpans("serialize", ser_t0, obs::Tracer::nowNs());
    if (met != 0)
        deadlineMet_.add(met);
    if (missed != 0)
        deadlineMisses_.add(missed);
    inflightWindows_.add(-1);
}

void
ServiceScheduler::recordLatency(double ms)
{
    serviceHist_.observe(ms);
    std::lock_guard<std::mutex> lock(statsMu_);
    if (latencyRing_.size() < kLatencyRingCapacity)
        latencyRing_.push_back(ms);
    else
        latencyRing_[latencyCount_ % kLatencyRingCapacity] = ms;
    ++latencyCount_;
}

ServiceStats
ServiceScheduler::stats() const
{
    ServiceStats s;
    const RequestQueue::Counters qc = queue_.counters();
    s.admitted = qc.admitted;
    s.rejected = qc.rejected;
    s.peakQueueDepth = qc.peakDepth;
    s.queueDepth = queue_.depth();
    s.plansLoaded = plansLoaded_;
    {
        std::lock_guard<std::mutex> lock(engineMu_);
        for (const auto &kv : caches_) {
            const PlanCache::Counters c = kv.second.cache->counters();
            s.cacheHits += c.hits;
            s.cacheMisses += c.misses;
            s.cacheEvictions += c.evictions;
        }
    }
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        s.latencySamples = latencyCount_;
        s.serviceMs = percentileSummary(latencyRing_);
    }
    s.served = served_.value();
    s.errors = errors_.value();
    s.windows = windows_.value();
    s.batchedRequests = batchedRequests_.value();
    s.maxWindow = maxWindow_.value();
    s.shedUnmeetable = shedUnmeetable_.value();
    s.deadlineMet = deadlineMet_.value();
    s.deadlineMisses = deadlineMisses_.value();
    s.inflightWindows = inflightWindows_.value();
    if (started_) {
        s.uptimeMs = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - startedAt_)
                .count());
    }
    s.latencyHist.reserve(obs::Histogram::kNumEdges + 1);
    for (int i = 0; i < obs::Histogram::kNumEdges; ++i)
        s.latencyHist.emplace_back(
            "service_ms_le_" +
                std::to_string(obs::Histogram::edgeMs(i)),
            serviceHist_.cumulative(i));
    s.latencyHist.emplace_back("service_ms_le_inf",
                               serviceHist_.count());
    s.scheduler = config_.plannedScheduling ? "planned" : "fifo";
    if (buffers_ != nullptr) {
        const BufferManager::Counters bc = buffers_->counters();
        s.bufferHits = bc.hits;
        s.bufferMisses = bc.misses;
        s.bufferEvictions = bc.evictions;
        s.catalogModels = buffers_->modelCount();
        s.storageBytesMapped = buffers_->bytesMapped();
    }
    return s;
}

} // namespace ta
