/**
 * @file
 * Three-stage pipeline timing (Sec. 4.6): (1) dynamic scoreboarding,
 * (2) PPE array, (3) APE array, decoupled by double buffers. Exact
 * in-order pipeline recurrence: an item enters a stage when both the
 * previous item has left that stage and the item has left the previous
 * stage.
 */

#ifndef TA_CORE_PIPELINE_H
#define TA_CORE_PIPELINE_H

#include <array>
#include <cstdint>
#include <vector>

namespace ta {

/** Per-item cycle costs of each pipeline stage. */
using StageCosts = std::array<uint64_t, 3>;

class PipelineModel
{
  public:
    /**
     * Total cycles for a stream of items through the 3-stage pipeline.
     * finish[i][s] = max(finish[i-1][s], finish[i][s-1]) + cost[i][s].
     */
    static uint64_t totalCycles(const std::vector<StageCosts> &items);

    /**
     * Steady-state approximation: sum over items of the max stage cost,
     * plus the fill latency of the first item's earlier stages. Used by
     * the sampled accelerator model where items are scaled.
     */
    static uint64_t steadyStateCycles(const std::vector<StageCosts> &items,
                                      double scale = 1.0);
};

} // namespace ta

#endif // TA_CORE_PIPELINE_H
