#include "service/request_queue.h"

#include <algorithm>
#include <tuple>

#include "obs/trace.h"

namespace ta {

namespace {

/** Clamp an (already parser-validated) priority into the class range. */
int
classOf(const ServiceJob &job)
{
    return std::clamp(job.request.priority, 0,
                      RequestQueue::kPriorities - 1);
}

/** EDF ordering key inside the lead scan: earliest deadline first,
 *  higher class breaking deadline ties, arrival order last — total
 *  and deterministic (seq is unique). */
std::tuple<double, int, uint64_t>
leadKey(const ServiceJob &job, int cls)
{
    return {job.deadlineAbsMs, -cls, job.seq};
}

/** True when the job's deadline is close enough that waiting behind a
 *  higher class would forfeit it (the promotion rule). A job without
 *  a prediction promotes only once its slack is gone entirely. */
bool
isImminent(const ServiceJob &job, double now_ms)
{
    if (job.deadlineAbsMs == kNoDeadlineMs)
        return false;
    return job.deadlineAbsMs - now_ms <=
           RequestQueue::kUrgencyFactor * job.predictedMs;
}

} // namespace

double
steadyNowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

RequestQueue::RequestQueue(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity))
{
}

bool
RequestQueue::submit(ServiceJob job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_ || resident_ >= capacity_) {
            ++counters_.rejected;
            return false;
        }
        job.seq = nextSeq_++;
        classes_[classOf(job)].push_back(std::move(job));
        ++resident_;
        ++counters_.admitted;
        counters_.peakDepth =
            std::max<uint64_t>(counters_.peakDepth, resident_);
    }
    cv_.notify_one();
    return true;
}

bool
RequestQueue::popBatch(size_t max_window, std::vector<ServiceJob> &out,
                       double now_ms, PoppedWindow *window)
{
    out.clear();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || resident_ > 0; });
    if (resident_ == 0)
        return false; // closed and drained
    // Pack-phase start: after the wait, so the span measures packing
    // work, never idle blocking.
    obs::Tracer &tracer = obs::Tracer::instance();
    const uint64_t pack_t0 =
        tracer.enabled() ? obs::Tracer::nowNs() : 0;
    if (now_ms < 0.0)
        now_ms = steadyNowMs();

    // Lead selection: EDF within the highest non-empty class, plus
    // any lower-class job whose deadline has become imminent — the
    // anti-starvation promotion (a stream of high-priority work can
    // never park a deadline-holding request past its own deadline).
    int top = kPriorities - 1;
    while (classes_[top].empty())
        --top;
    int lead_class = top;
    size_t lead_idx = 0;
    bool have = false;
    std::tuple<double, int, uint64_t> best{};
    for (int p = top; p >= 0; --p) {
        const std::deque<ServiceJob> &cls = classes_[p];
        for (size_t i = 0; i < cls.size(); ++i) {
            if (p < top && !isImminent(cls[i], now_ms))
                continue;
            const auto key = leadKey(cls[i], p);
            if (!have || key < best) {
                best = key;
                lead_class = p;
                lead_idx = i;
                have = true;
            }
        }
    }
    out.push_back(std::move(classes_[lead_class][lead_idx]));
    classes_[lead_class].erase(classes_[lead_class].begin() +
                               static_cast<ptrdiff_t>(lead_idx));
    --resident_;
    // By value: push_back below may reallocate `out` and would leave a
    // reference into it dangling.
    const EngineKey key = out.front().key;

    // Cost-bounded coalescing. The window executes as one dispatch
    // barrier, so every member lands at roughly the cumulative
    // predicted cost; a candidate joins only while that cumulative
    // cost still fits inside (a) the remaining slack of every packed
    // member that can still meet its deadline and (b) its own slack,
    // if it has one it could still meet. Jobs without predictions
    // contribute zero cost, which reproduces the historical greedy
    // coalescing exactly.
    double cum_ms = out.front().predictedMs;
    double min_slack = kNoDeadlineMs;
    auto slackOf = [&](const ServiceJob &j) {
        return j.deadlineAbsMs == kNoDeadlineMs
                   ? kNoDeadlineMs
                   : j.deadlineAbsMs - now_ms;
    };
    {
        const double s = slackOf(out.front());
        if (s >= out.front().predictedMs)
            min_slack = s; // lead can still make it; protect it
    }
    const size_t window_cap = std::max<size_t>(1, max_window);
    // Highest class down; within a class candidates are visited in
    // EDF order (deadline, then seq) — the earliest-deadline work
    // joins the window first, and everything left behind keeps its
    // relative order for the next popBatch().
    for (int p = kPriorities - 1; p >= 0 && out.size() < window_cap;
         --p) {
        std::deque<ServiceJob> &cls = classes_[p];
        std::vector<size_t> order;
        for (size_t i = 0; i < cls.size(); ++i)
            if (cls[i].key == key)
                order.push_back(i);
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) {
                      return std::tie(cls[a].deadlineAbsMs,
                                      cls[a].seq) <
                             std::tie(cls[b].deadlineAbsMs,
                                      cls[b].seq);
                  });
        std::vector<size_t> taken;
        for (size_t i : order) {
            if (out.size() + taken.size() >= window_cap)
                break;
            const ServiceJob &cand = cls[i];
            const double new_cum = cum_ms + cand.predictedMs;
            if (new_cum > min_slack)
                continue; // would push a packed member past its SLO
            const double s = slackOf(cand);
            const bool meetable = s >= cand.predictedMs;
            if (meetable && new_cum > s)
                continue; // keep its chance in a later window
            taken.push_back(i);
            cum_ms = new_cum;
            if (meetable)
                min_slack = std::min(min_slack, s);
        }
        // Append in pack (EDF) order, then erase back-to-front so
        // earlier indices stay valid while the deque shrinks.
        for (size_t i : taken)
            out.push_back(std::move(cls[i]));
        std::sort(taken.begin(), taken.end());
        for (size_t t = taken.size(); t-- > 0;) {
            cls.erase(cls.begin() +
                      static_cast<ptrdiff_t>(taken[t]));
            --resident_;
        }
    }

    if (window != nullptr) {
        // The window inherits the earliest deadline of its members —
        // coalescing a deadline-free job with an urgent one must not
        // launder the urgency away.
        PoppedWindow w;
        w.predictedMs = cum_ms;
        for (const ServiceJob &j : out)
            w.deadlineAbsMs =
                std::min(w.deadlineAbsMs, j.deadlineAbsMs);
        *window = w;
    }
    if (tracer.enabled()) {
        // Per traced member: a "queue" span covering admission → pop
        // (the enqueued stamp and nowNs() read the same steady clock)
        // and a "pack" span covering the window-selection work above.
        const uint64_t pop_ns = obs::Tracer::nowNs();
        for (const ServiceJob &j : out) {
            if (j.request.traceId == 0)
                continue;
            obs::Span queue_span;
            queue_span.traceId = j.request.traceId;
            queue_span.spanId = tracer.mintSpanId();
            queue_span.name = "queue";
            queue_span.t0Ns = static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    j.enqueued.time_since_epoch())
                    .count());
            queue_span.t1Ns = pop_ns;
            tracer.record(queue_span);
            obs::Span pack_span;
            pack_span.traceId = j.request.traceId;
            pack_span.spanId = tracer.mintSpanId();
            pack_span.name = "pack";
            pack_span.argKey = "window";
            pack_span.argVal = out.size();
            pack_span.t0Ns = pack_t0;
            pack_span.t1Ns = pop_ns;
            tracer.record(pack_span);
        }
    }
    return true;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return resident_;
}

RequestQueue::Counters
RequestQueue::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

} // namespace ta
