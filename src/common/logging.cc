#include "common/logging.h"

#include <cstdio>
#include <stdexcept>

namespace ta {
namespace detail {

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throw instead of exit(1) so tests can assert on user-error paths.
    throw std::runtime_error("fatal: " + msg);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    throw std::logic_error("panic: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace ta
