#include "noc/bitonic_sorter.h"

#include "common/bitutil.h"
#include "common/logging.h"

namespace ta {

namespace {

/** Sort key: PopCount major, value minor for deterministic plans. */
uint64_t
sortKey(const TransRow &r)
{
    return (static_cast<uint64_t>(popcount(r.value)) << 32) | r.value;
}

} // namespace

BitonicSorter::BitonicSorter(uint32_t capacity) : capacity_(capacity)
{
    TA_ASSERT(capacity >= 2 && isPow2(capacity),
              "sorter capacity must be a power of two >= 2");
}

uint32_t
BitonicSorter::numStages() const
{
    const uint32_t k = ceilLog2(capacity_);
    return k * (k + 1) / 2;
}

uint64_t
BitonicSorter::sortCycles(uint64_t n) const
{
    if (n == 0)
        return 0;
    const uint64_t batches = ceilDiv(n, capacity_);
    // Pipelined network: fill latency + one batch per cycle after.
    return numStages() + (batches - 1);
}

std::vector<TransRow>
BitonicSorter::sort(std::vector<TransRow> rows) const
{
    lastCompareOps_ = 0;
    const size_t n = rows.size();
    if (n <= 1)
        return rows;
    // Pad to a power of two with +inf sentinels so the fixed network
    // applies; strip them afterwards.
    size_t padded = 1;
    while (padded < n)
        padded <<= 1;
    const TransRow sentinel{~0u, ~0u};
    rows.resize(padded, sentinel);
    sortRange(rows, 0, padded, true);
    rows.resize(n);
    return rows;
}

void
BitonicSorter::sortRange(std::vector<TransRow> &v, size_t lo, size_t len,
                         bool ascending) const
{
    if (len <= 1)
        return;
    const size_t half = len / 2;
    sortRange(v, lo, half, true);
    sortRange(v, lo + half, half, false);
    mergeRange(v, lo, len, ascending);
}

void
BitonicSorter::mergeRange(std::vector<TransRow> &v, size_t lo, size_t len,
                          bool ascending) const
{
    if (len <= 1)
        return;
    const size_t half = len / 2;
    for (size_t i = lo; i < lo + half; ++i) {
        ++lastCompareOps_;
        const bool gt = sortKey(v[i]) > sortKey(v[i + half]);
        if (gt == ascending)
            std::swap(v[i], v[i + half]);
    }
    mergeRange(v, lo, half, ascending);
    mergeRange(v, lo + half, half, ascending);
}

} // namespace ta
