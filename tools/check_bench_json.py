#!/usr/bin/env python3
"""Validate BENCH_*.json files emitted by ta_bench --json-out and
ta_loadgen --scenario --json-out.

Each file must parse as JSON and carry the schema-stable stamp keys
("benchmark", "schema_version", "quick") plus at least one actual
metric. Files stamped `benchmark == "scenarios"` additionally get a
per-scenario schema and gate check: every scenario named in
`scenario_list` must carry the full metric block, and the robustness
gates (zero lost, zero duplicated, zero verification mismatches, shed
only when the scenario declares overload, per-scenario and overall
pass flags set) are re-enforced here so a regressing run fails CI
even if the producer's own gating is broken. The full schema — stamp
semantics, the determinism rule, the host-performance exceptions, and
the PlanCacheStore binary format — is documented in
docs/BENCH_SCHEMA.md; keep the two in sync.

Usage: check_bench_json.py BENCH_a.json [BENCH_b.json ...]
"""

import json
import sys

EXPECTED_SCHEMA_VERSION = 2
SCENARIOS_SCHEMA_VERSION = 1
STAMP_KEYS = ("benchmark", "schema_version", "quick")

# Per-scenario metric block: every scenario in scenario_list must
# carry <name>_<suffix> for each of these.
SCENARIO_SUFFIXES = (
    "requests",
    "rps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "p99_bound_ms",
    "served",
    "shed",
    "lost",
    "duplicated",
    "errors",
    "verify_mismatches",
    "restarts",
    "scale_ups",
    "scale_downs",
    "abandoned",
    "allow_shed",
    "pass",
)


def check_scenarios(path: str, data: dict) -> list:
    """Schema + gate checks for a BENCH_scenarios.json payload."""
    errors = []
    if data.get("schema_version") != SCENARIOS_SCHEMA_VERSION:
        errors.append(
            f"{path}: scenarios schema_version "
            f"{data.get('schema_version')!r} != {SCENARIOS_SCHEMA_VERSION}"
        )
    names = [n for n in str(data.get("scenario_list", "")).split(",") if n]
    if not names:
        errors.append(f"{path}: empty scenario_list")
    for name in names:
        block = {}
        for suffix in SCENARIO_SUFFIXES:
            key = f"{name}_{suffix}"
            if key not in data:
                errors.append(f"{path}: missing key '{key}'")
            else:
                block[suffix] = data[key]
        if len(block) != len(SCENARIO_SUFFIXES):
            continue  # incomplete block: gate checks would misfire
        # Gates, re-enforced independently of the producer.
        for hard_zero in ("lost", "duplicated", "verify_mismatches",
                          "errors", "abandoned"):
            if block[hard_zero] != 0:
                errors.append(
                    f"{path}: {name}: {hard_zero} = {block[hard_zero]} "
                    f"(must be 0)"
                )
        if block["shed"] != 0 and block["allow_shed"] != 1:
            errors.append(
                f"{path}: {name}: shed {block['shed']} request(s) without "
                f"declared overload"
            )
        if block["served"] + block["shed"] > block["requests"]:
            errors.append(
                f"{path}: {name}: served+shed exceeds issued requests"
            )
        if block["served"] > 0 and block["p99_ms"] > block["p99_bound_ms"]:
            errors.append(
                f"{path}: {name}: p99 {block['p99_ms']} ms over bound "
                f"{block['p99_bound_ms']} ms"
            )
        if block["pass"] != 1:
            errors.append(f"{path}: {name}: scenario did not pass")
    if data.get("pass") != 1:
        errors.append(f"{path}: overall pass != 1")
    if data.get("verified") != "true":
        errors.append(f"{path}: responses were not byte-verified")
    if not errors:
        print(f"{path}: ok (scenarios: {', '.join(names)})")
    return errors


SLO_POLICIES = ("planned", "fifo")

# Per-policy metric block of a BENCH_slo.json payload.
SLO_SUFFIXES = (
    "issued",
    "served",
    "within_deadline",
    "missed",
    "goodput_rps",
    "p99_within_deadline_ms",
    "p99_ms",
    "shed_unmeetable",
    "shed_overloaded",
    "lost",
    "duplicates",
    "errors",
    "verify_mismatches",
    "miss_rate",
)


def check_slo(path: str, data: dict) -> list:
    """Schema + gate checks for a BENCH_slo.json payload.

    The SLO gates are re-enforced independently of ta_loadgen's own
    gating: planned scheduling must beat FIFO on within-deadline
    goodput under the same offered overload, every shed must be
    explicit (no lost or duplicated responses, no unexplained
    errors), the planner must shed exactly the trace's hopeless
    fraction, and everything served must have been byte-verified.
    """
    errors = []
    if data.get("schema_version") != EXPECTED_SCHEMA_VERSION:
        errors.append(
            f"{path}: slo schema_version "
            f"{data.get('schema_version')!r} != {EXPECTED_SCHEMA_VERSION}"
        )
    for key in ("requests", "hopeless_requests", "offered_rps",
                "cost_err_p50", "cost_err_p90", "cost_err_p99"):
        if key not in data:
            errors.append(f"{path}: missing key '{key}'")
    blocks = {}
    for policy in SLO_POLICIES:
        block = {}
        for suffix in SLO_SUFFIXES:
            key = f"{policy}_{suffix}"
            if key not in data:
                errors.append(f"{path}: missing key '{key}'")
            else:
                block[suffix] = data[key]
        blocks[policy] = block
    if any(len(b) != len(SLO_SUFFIXES) for b in blocks.values()):
        return errors  # incomplete block: gate checks would misfire
    for policy, block in blocks.items():
        for hard_zero in ("lost", "duplicates", "errors",
                          "verify_mismatches"):
            if block[hard_zero] != 0:
                errors.append(
                    f"{path}: {policy}: {hard_zero} = "
                    f"{block[hard_zero]} (must be 0)"
                )
        ledger = (block["served"] + block["shed_unmeetable"]
                  + block["shed_overloaded"] + block["lost"]
                  + block["errors"])
        if ledger != block["issued"]:
            errors.append(
                f"{path}: {policy}: response ledger {ledger} != "
                f"issued {block['issued']}"
            )
    if blocks["planned"]["goodput_rps"] <= blocks["fifo"]["goodput_rps"]:
        errors.append(
            f"{path}: planned goodput {blocks['planned']['goodput_rps']} "
            f"does not beat fifo {blocks['fifo']['goodput_rps']}"
        )
    if blocks["planned"]["shed_unmeetable"] != data.get(
            "hopeless_requests"):
        errors.append(
            f"{path}: planned shed {blocks['planned']['shed_unmeetable']} "
            f"!= hopeless fraction {data.get('hopeless_requests')}"
        )
    if blocks["fifo"]["shed_unmeetable"] != 0:
        errors.append(f"{path}: fifo shed on deadline")
    if data.get("pass") != 1:
        errors.append(f"{path}: overall pass != 1")
    if data.get("verified") != "true":
        errors.append(f"{path}: responses were not byte-verified")
    if not errors:
        print(
            f"{path}: ok (slo: planned "
            f"{blocks['planned']['goodput_rps']} vs fifo "
            f"{blocks['fifo']['goodput_rps']} goodput rps)"
        )
    return errors


STORAGE_SCHEMA_VERSION = 1

# Required metric keys of a BENCH_storage.json payload.
STORAGE_KEYS = (
    "model",
    "model_layers",
    "catalog_models",
    "storage_bytes_mapped",
    "cold_open_first_response_ms",
    "synthesis_cold_first_response_ms",
    "cold_open_speedup",
    "cold_open_beats_synthesis",
    "serial_rps",
    "batched_rps",
    "buffer_hits",
    "buffer_misses",
    "buffer_evictions",
    "buffer_hit_rate",
    "errors",
    "verify_mismatches",
    "pass",
)


def check_storage(path: str, data: dict) -> list:
    """Schema + gate checks for a BENCH_storage.json payload.

    Re-enforced independently of ta_loadgen's own gating: serving a
    packed model must be byte-identical to synthesis (zero errors,
    zero verification mismatches) and the cold-open first response —
    pinning the plane out of the mmapped segment — must beat a
    fresh-synthesis cold start of the same request.
    """
    errors = []
    if data.get("schema_version") != STORAGE_SCHEMA_VERSION:
        errors.append(
            f"{path}: storage schema_version "
            f"{data.get('schema_version')!r} != {STORAGE_SCHEMA_VERSION}"
        )
    for key in STORAGE_KEYS:
        if key not in data:
            errors.append(f"{path}: missing key '{key}'")
    if errors:
        return errors
    for hard_zero in ("errors", "verify_mismatches"):
        if data[hard_zero] != 0:
            errors.append(
                f"{path}: {hard_zero} = {data[hard_zero]} (must be 0)"
            )
    if data["cold_open_beats_synthesis"] != 1:
        errors.append(
            f"{path}: cold open {data['cold_open_first_response_ms']} ms "
            f"did not beat fresh synthesis "
            f"{data['synthesis_cold_first_response_ms']} ms"
        )
    if not 0.0 <= data["buffer_hit_rate"] <= 1.0:
        errors.append(
            f"{path}: buffer_hit_rate {data['buffer_hit_rate']} out of "
            f"[0, 1]"
        )
    if data["buffer_hits"] + data["buffer_misses"] <= 0:
        errors.append(f"{path}: no buffer pins recorded")
    if data.get("pass") != 1:
        errors.append(f"{path}: overall pass != 1")
    if data.get("verified") != "true":
        errors.append(f"{path}: responses were not byte-verified")
    if not errors:
        print(
            f"{path}: ok (storage: cold open "
            f"{data['cold_open_first_response_ms']} ms vs synthesis "
            f"{data['synthesis_cold_first_response_ms']} ms, hit rate "
            f"{data['buffer_hit_rate']})"
        )
    return errors


OBS_SCHEMA_VERSION = 1

# Required metric keys of a BENCH_obs.json payload.
OBS_KEYS = (
    "requests_per_phase",
    "concurrency",
    "trials",
    "untraced_rps",
    "traced_rps",
    "overhead_pct",
    "untraced_p99_ms",
    "traced_p99_ms",
    "p99_delta_ms",
    "spans",
    "trace_bytes",
    "bytes_per_span",
    "responses_identical",
    "errors",
    "verify_mismatches",
    "pass",
)


def check_obs(path: str, data: dict) -> list:
    """Schema + gate checks for a BENCH_obs.json payload.

    The observability overhead budget, re-enforced independently of
    ta_loadgen's own gating: tracing must cost at most 5% of untraced
    throughput, responses must be byte-identical with tracing on or
    off, and the traced phase must actually have recorded spans
    (otherwise the overhead number measured nothing).
    """
    errors = []
    if data.get("schema_version") != OBS_SCHEMA_VERSION:
        errors.append(
            f"{path}: obs schema_version "
            f"{data.get('schema_version')!r} != {OBS_SCHEMA_VERSION}"
        )
    for key in OBS_KEYS:
        if key not in data:
            errors.append(f"{path}: missing key '{key}'")
    if errors:
        return errors
    for hard_zero in ("errors", "verify_mismatches"):
        if data[hard_zero] != 0:
            errors.append(
                f"{path}: {hard_zero} = {data[hard_zero]} (must be 0)"
            )
    if data["responses_identical"] != 1:
        errors.append(
            f"{path}: responses differ between traced and untraced runs"
        )
    if data["traced_rps"] < 0.95 * data["untraced_rps"]:
        errors.append(
            f"{path}: traced {data['traced_rps']} req/s below 95% of "
            f"untraced {data['untraced_rps']} req/s "
            f"({data['overhead_pct']}% overhead)"
        )
    if data["spans"] <= 0:
        errors.append(f"{path}: traced run recorded no spans")
    if data.get("pass") != 1:
        errors.append(f"{path}: overall pass != 1")
    if data.get("verified") != "true":
        errors.append(f"{path}: responses were not byte-verified")
    if not errors:
        print(
            f"{path}: ok (obs: traced {data['traced_rps']} vs untraced "
            f"{data['untraced_rps']} req/s, {data['overhead_pct']}% "
            f"overhead, {data['bytes_per_span']} bytes/span)"
        )
    return errors


def check(path: str) -> list:
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: failed to parse: {e}"]
    for key in STAMP_KEYS:
        if key not in data:
            errors.append(f"{path}: missing stamp key '{key}'")
    if data.get("benchmark") == "scenarios":
        return errors + check_scenarios(path, data)
    if data.get("benchmark") == "slo":
        return errors + check_slo(path, data)
    if data.get("benchmark") == "storage":
        return errors + check_storage(path, data)
    if data.get("benchmark") == "obs":
        return errors + check_obs(path, data)
    if data.get("schema_version") != EXPECTED_SCHEMA_VERSION:
        errors.append(
            f"{path}: schema_version {data.get('schema_version')!r} "
            f"!= {EXPECTED_SCHEMA_VERSION}"
        )
    metrics = [k for k in data if k not in STAMP_KEYS]
    if not metrics:
        errors.append(f"{path}: no metric keys beyond the stamps")
    if not errors:
        print(f"{path}: ok ({data['benchmark']}, {len(metrics)} metrics)")
    return errors


def main(argv: list) -> int:
    if not argv:
        print("usage: check_bench_json.py FILE...", file=sys.stderr)
        return 2
    errors = []
    for path in argv:
        errors.extend(check(path))
    for e in errors:
        print(e, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
