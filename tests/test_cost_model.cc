/**
 * @file
 * The calibrated cost model's contracts: the monotonicity properties
 * the planner relies on (cost monotone in layer count and tile area,
 * cache-hit prediction <= cache-miss prediction — guaranteed by the
 * nonnegative-coefficients fit, verified here over the calibration
 * battery), the calibration round-trip (fit -> save -> load ->
 * bit-identical predictions), wholesale rejection of corrupt or
 * truncated coefficients files, and a pinned prediction-error
 * tolerance on synthetic fixture data.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/cost_model.h"

namespace ta {
namespace {

ServiceRequest
requestOf(uint64_t n, uint64_t k, uint64_t m, int wbits,
          bool use_static = false, uint64_t samples = 96)
{
    ServiceRequest r;
    r.shape = {n, k, m};
    r.wbits = wbits;
    r.useStatic = use_static;
    r.samples = samples;
    return r;
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeAll(const std::string &path, const std::string &body)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << body;
}

// ---- monotonicity properties --------------------------------------------

TEST(CostModel_, PredictionMonotoneInTileArea)
{
    const CostModel model = CostModel::builtin();
    // Growing any one geometry axis (rows, depth, columns, weight
    // bits, sample budget) must never shrink the predicted cost: the
    // features are monotone in the axes and the coefficients are
    // nonnegative by construction.
    const uint64_t dims[] = {64, 128, 256, 1024, 4096};
    double prev = -1.0;
    for (uint64_t n : dims) {
        const double p = model.predictMs(requestOf(n, 512, 256, 4));
        EXPECT_GE(p, prev) << "n " << n;
        prev = p;
    }
    prev = -1.0;
    for (uint64_t k : dims) {
        const double p = model.predictMs(requestOf(256, k, 256, 4));
        EXPECT_GE(p, prev) << "k " << k;
        prev = p;
    }
    prev = -1.0;
    for (int wbits : {2, 4, 8}) {
        const double p =
            model.predictMs(requestOf(256, 512, 256, wbits));
        EXPECT_GE(p, prev) << "wbits " << wbits;
        prev = p;
    }
    prev = -1.0;
    for (uint64_t samples : {8u, 32u, 96u, 256u}) {
        const double p = model.predictMs(
            requestOf(1024, 2048, 512, 4, false, samples));
        EXPECT_GE(p, prev) << "samples " << samples;
        prev = p;
    }
}

TEST(CostModel_, PredictionMonotoneInLayerCount)
{
    // A request sequence's predicted cost is the sum of per-layer
    // predictions; appending a layer must strictly grow it (every
    // prediction includes the positive per-request base cost).
    const CostModel model = CostModel::builtin();
    const std::vector<ServiceRequest> layers = {
        requestOf(128, 256, 128, 4), requestOf(256, 512, 256, 8),
        requestOf(512, 1024, 512, 2)};
    double cum = 0.0;
    for (const ServiceRequest &r : layers) {
        const double p = model.predictMs(r);
        EXPECT_GT(p, 0.0);
        EXPECT_GT(cum + p, cum);
        cum += p;
    }
}

TEST(CostModel_, CacheHitPredictionNeverExceedsMiss)
{
    const CostModel model = CostModel::builtin();
    for (const ServiceRequest &r :
         costCalibrationBattery(7, /*quick=*/false)) {
        const double hit = model.predictMsAt(r, 0.0);
        const double miss = model.predictMsAt(r, 1.0);
        EXPECT_LE(hit, miss);
        EXPECT_GE(hit, 0.0);
    }
}

TEST(CostModel_, DegenerateLayerStillPredictsFiniteCost)
{
    const CostModel model = CostModel::builtin();
    const double p = model.predictMs(requestOf(128, 256, 0, 4));
    EXPECT_GE(p, 0.0);
    EXPECT_TRUE(std::isfinite(p));
}

// ---- calibration round-trip ---------------------------------------------

/** Synthetic battery samples from known ground-truth coefficients. */
std::vector<CostModel::Sample>
syntheticSamples(const std::array<double, CostFeatures::kCount> &truth,
                 double jitter)
{
    std::vector<CostModel::Sample> samples;
    uint64_t lcg = 12345;
    for (const ServiceRequest &r : costCalibrationBattery(3, false)) {
        for (double miss : {0.0, 1.0}) {
            CostModel::Sample s;
            s.features = costFeaturesOf(r, miss);
            double ns = 0.0;
            for (size_t i = 0; i < CostFeatures::kCount; ++i)
                ns += truth[i] * s.features.f[i];
            lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
            const double u =
                static_cast<double>((lcg >> 33) & 0xffff) / 65535.0;
            s.measuredNs = ns * (1.0 + jitter * (2.0 * u - 1.0));
            samples.push_back(s);
        }
    }
    return samples;
}

TEST(CostModel_, FitSaveLoadRoundTripIsBitIdentical)
{
    const std::array<double, CostFeatures::kCount> truth = {
        50000.0, 12000.0, 1.5, 3000.0, 40000.0};
    CostModel fitted;
    CostModel::FitReport report;
    ASSERT_TRUE(fitted.fit(syntheticSamples(truth, 0.05), &report));
    EXPECT_GT(report.samples, 0u);

    const std::string path =
        ::testing::TempDir() + "cost_model_roundtrip.txt";
    ASSERT_TRUE(fitted.saveFile(path));
    CostModel loaded;
    std::string err;
    ASSERT_TRUE(loaded.loadFile(path, &err)) << err;
    std::remove(path.c_str());

    // %.17g round-trips doubles exactly: every coefficient and every
    // prediction must be bit-identical, not merely close.
    for (size_t i = 0; i < CostFeatures::kCount; ++i)
        EXPECT_EQ(loaded.coeffs()[i], fitted.coeffs()[i]) << i;
    EXPECT_EQ(loaded.assumedMissProb(), fitted.assumedMissProb());
    for (const ServiceRequest &r : costCalibrationBattery(3, true)) {
        EXPECT_EQ(loaded.predictMs(r), fitted.predictMs(r));
        EXPECT_EQ(loaded.predictMsAt(r, 1.0),
                  fitted.predictMsAt(r, 1.0));
    }
}

// ---- strict file rejection ----------------------------------------------

TEST(CostModel_, CorruptOrTruncatedFileRejectedWholesale)
{
    CostModel fitted;
    const std::array<double, CostFeatures::kCount> truth = {
        50000.0, 12000.0, 1.5, 3000.0, 40000.0};
    ASSERT_TRUE(fitted.fit(syntheticSamples(truth, 0.0)));
    const std::string path =
        ::testing::TempDir() + "cost_model_corrupt.txt";
    ASSERT_TRUE(fitted.saveFile(path));
    const std::string good = readAll(path);
    ASSERT_FALSE(good.empty());

    const CostModel pristine = CostModel::builtin();
    const ServiceRequest probe = requestOf(256, 512, 256, 4);

    auto expectRejected = [&](const std::string &body,
                              const char *what) {
        writeAll(path, body);
        CostModel model = CostModel::builtin();
        std::string err;
        EXPECT_FALSE(model.loadFile(path, &err)) << what;
        EXPECT_FALSE(err.empty()) << what;
        // Wholesale: a failed load leaves the model untouched.
        EXPECT_EQ(model.predictMs(probe), pristine.predictMs(probe))
            << what;
    };

    expectRejected("", "empty file");
    expectRejected(good.substr(0, good.size() / 2),
                   "truncated mid-file");
    expectRejected(good.substr(0, good.rfind("checksum")),
                   "checksum line missing");
    {
        // Flip one byte inside the first coefficient line: both the
        // strict line parse and the checksum must catch it.
        std::string flipped = good;
        const size_t pos = flipped.find('\n') + 1;
        ASSERT_LT(pos, flipped.size());
        flipped[pos] = flipped[pos] == 'x' ? 'y' : 'x';
        expectRejected(flipped, "coefficient byte-flip");
    }
    {
        std::string bad_sum = good;
        const size_t pos = bad_sum.rfind("checksum ") + 9;
        bad_sum[pos] = bad_sum[pos] == '0' ? '1' : '0';
        expectRejected(bad_sum, "checksum mismatch");
    }
    {
        std::string wrong_version = good;
        wrong_version.replace(0, wrong_version.find('\n'),
                              "ta-cost-model v999");
        expectRejected(wrong_version, "unknown version");
    }
    expectRejected("ta-cost-model v1\n", "header only");

    std::remove(path.c_str());
    CostModel missing;
    std::string err;
    EXPECT_FALSE(missing.loadFile(path, &err));
    EXPECT_FALSE(err.empty());
}

// ---- pinned prediction-error tolerance ----------------------------------

TEST(CostModel_, FitRecoversSyntheticFixtureWithinTolerance)
{
    const std::array<double, CostFeatures::kCount> truth = {
        50000.0, 12000.0, 1.5, 3000.0, 40000.0};

    // Noise-free fixture: the fit must reproduce the generating model
    // almost exactly (pinned at 0.1% relative error).
    CostModel exact;
    CostModel::FitReport exact_report;
    ASSERT_TRUE(exact.fit(syntheticSamples(truth, 0.0),
                          &exact_report));
    EXPECT_LE(exact_report.errP99, 1e-3);

    // +-5% multiplicative jitter: relative-least-squares keeps the
    // p99 relative error within 3x the jitter bound.
    CostModel noisy;
    CostModel::FitReport noisy_report;
    ASSERT_TRUE(noisy.fit(syntheticSamples(truth, 0.05),
                          &noisy_report));
    EXPECT_LE(noisy_report.errP50, 0.05);
    EXPECT_LE(noisy_report.errP99, 0.15);

    // Coefficients stay nonnegative under noise (the monotonicity
    // guarantee is structural, not statistical).
    for (double c : noisy.coeffs())
        EXPECT_GE(c, 0.0);
}

TEST(CostModel_, FitRejectsDegenerateInput)
{
    CostModel model;
    EXPECT_FALSE(model.fit({}));
    // All-zero measurements are degenerate too: the relative-error
    // weighting has nothing to anchor on.
    std::vector<CostModel::Sample> zeros(4);
    EXPECT_FALSE(model.fit(zeros));
}

} // namespace
} // namespace ta
