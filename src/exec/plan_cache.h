/**
 * @file
 * Sharded LRU cache of scoreboard plans keyed by the exact TransRow
 * value sequence of a sub-tile. A plan is a pure function of (values,
 * ScoreboardConfig), so identical sub-tiles — ubiquitous in ternary /
 * BitNet weight tensors and in the low-entropy high bit-slices of
 * Gaussian weights — can skip Scoreboard::build entirely. Shards are
 * independently locked so the parallel executor's workers rarely
 * contend; cached plans are shared read-only via shared_ptr.
 *
 * Thread safety: getOrBuild/insert/counters/size are safe to call
 * concurrently from any thread (per-shard mutexes); forEach holds the
 * shard lock across the callback and clear() must not race lookups.
 *
 * Determinism: caching never changes simulated results — a plan is a
 * pure function of (values, ScoreboardConfig), so a hit, a fresh build
 * and a double-build under a racing miss all yield identical plans.
 * Only the hit/miss counters are host-volatile (they may shift with
 * thread count and with layers in flight under batched dispatch).
 */

#ifndef TA_EXEC_PLAN_CACHE_H
#define TA_EXEC_PLAN_CACHE_H

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "scoreboard/scoreboard.h"

namespace ta {

class PlanCache
{
  public:
    struct Counters
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;

        double hitRate() const
        {
            const uint64_t total = hits + misses;
            return total == 0 ? 0.0
                              : static_cast<double>(hits) / total;
        }
    };

    /**
     * `capacity` is the total number of cached plans across all shards;
     * 0 disables caching (every lookup builds). One cache serves one
     * scoreboard configuration — do not share across engines with
     * different ScoreboardConfigs.
     */
    explicit PlanCache(size_t capacity = 4096, size_t shards = 8);

    /**
     * Return the cached plan for `values`, or invoke `build`, insert
     * and return the result. Concurrent misses on the same key may
     * build twice; both results are identical, so correctness is
     * unaffected (only the miss counter inflates).
     */
    std::shared_ptr<const Plan>
    getOrBuild(const std::vector<uint32_t> &values,
               const std::function<Plan()> &build);

    /**
     * Insert a prebuilt plan (persistent-cache warm start). Respects
     * capacity/LRU like a miss-path insertion but touches no hit/miss
     * counter — those count real lookups only. No-op when the cache is
     * disabled or the key is already resident.
     */
    void insert(const std::vector<uint32_t> &values,
                std::shared_ptr<const Plan> plan);

    /**
     * Visit every resident (key, plan) pair (persistence snapshot).
     * Shards are walked in index order, entries in LRU order. Do not
     * call getOrBuild/insert from `fn` (the shard lock is held).
     */
    void forEach(const std::function<
                 void(const std::vector<uint32_t> &,
                      const std::shared_ptr<const Plan> &)> &fn) const;

    /** Aggregate hit/miss/eviction counters over all shards. */
    Counters counters() const;

    /** Cached plan count. */
    size_t size() const;

    size_t capacity() const { return capacity_; }

    /** Drop every cached plan (counters are kept). */
    void clear();

    /** FNV-1a over the value sequence (exposed for tests). */
    static uint64_t hashValues(const std::vector<uint32_t> &values);

  private:
    struct Entry
    {
        std::vector<uint32_t> key;
        std::shared_ptr<const Plan> plan;
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::list<Entry> lru; ///< front = most recently used
        /** hash -> entries with that hash (collision chain). */
        std::unordered_map<uint64_t,
                           std::vector<std::list<Entry>::iterator>>
            index;
        Counters counters;
    };

    /** Insert under the shard lock, evicting past shardCapacity_. */
    void insertLocked(Shard &shard, uint64_t hash,
                      const std::vector<uint32_t> &values,
                      std::shared_ptr<const Plan> plan);

    size_t capacity_;
    size_t shardCapacity_;
    std::vector<Shard> shards_;
};

} // namespace ta

#endif // TA_EXEC_PLAN_CACHE_H
