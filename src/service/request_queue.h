/**
 * @file
 * Bounded admission queue of the service front-end. submit() enforces
 * admission control (a full queue rejects instead of blocking — the
 * caller sends an "overloaded" error so clients see backpressure
 * immediately), and popBatch() is where cross-request batching starts:
 * it pops the most urgent job plus compatible same-EngineKey jobs,
 * preserving the relative order of the jobs it leaves behind.
 *
 * Priorities and deadlines: jobs are held in one class per request
 * priority (0 .. 2, where 2 is the most urgent). Within a class the
 * pop order is EDF — earliest absolute deadline first, arrival order
 * (`seq`) as the tie-break, and deadline-free jobs (deadlineAbsMs =
 * +inf) therefore in plain FIFO order. popBatch() starts from the
 * highest non-empty class, except that a lower-class job whose
 * deadline has become imminent (slack <= kUrgencyFactor x its
 * predicted cost) is promoted and may lead the window — the
 * anti-starvation rule: a later class can never park a request past
 * its own deadline behind an endless stream of higher-priority work.
 *
 * Window packing is cost-bounded when jobs carry predictions: a
 * candidate joins the window only while the window's cumulative
 * predicted cost still fits inside every already-packed member's
 * remaining slack (members share one dispatch barrier, so the whole
 * window lands at the cumulative cost). Jobs without predictions
 * (predictedMs = 0) reproduce the historical greedy coalescing
 * exactly. The popped window inherits the earliest deadline of its
 * members (PoppedWindow). Ordering and packing can never change a
 * response's bytes — only dispatch order.
 *
 * Thread safety: every method may be called from any thread. Worker
 * sessions block in popBatch() until work arrives or close() drains
 * the queue for shutdown.
 */

#ifndef TA_SERVICE_REQUEST_QUEUE_H
#define TA_SERVICE_REQUEST_QUEUE_H

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "service/protocol.h"

namespace ta {

/** Delivers one response line; called exactly once per request. */
using ServiceResponder = std::function<void(const std::string &line)>;

/** deadlineAbsMs value of a job without a deadline. */
constexpr double kNoDeadlineMs =
    std::numeric_limits<double>::infinity();

/** Milliseconds on the steady clock — the one time base shared by
 *  deadline arithmetic in the scheduler, the queue and the tests. */
double steadyNowMs();

/** One admitted request waiting for a worker session. */
struct ServiceJob
{
    ServiceRequest request;
    EngineKey key;
    ServiceResponder respond;
    std::chrono::steady_clock::time_point enqueued;
    /** Absolute deadline on the steadyNowMs() clock; kNoDeadlineMs
     *  when the request carries no deadline_ms. */
    double deadlineAbsMs = kNoDeadlineMs;
    /** Cost-model service prediction (ms); 0 = no prediction (FIFO
     *  scheduling, unbounded packing — the historical behavior). */
    double predictedMs = 0.0;
    /** Arrival number, assigned by RequestQueue::submit; the
     *  deterministic EDF tie-break. */
    uint64_t seq = 0;
};

class RequestQueue
{
  public:
    /** One class per valid priority (0 .. kMaxPriority). */
    static constexpr int kPriorities = kMaxPriority + 1;

    /**
     * Imminence threshold of the anti-starvation promotion: a
     * lower-class job leads the scan once its slack drops to this
     * multiple of its own predicted cost (or has run out entirely).
     */
    static constexpr double kUrgencyFactor = 2.0;

    struct Counters
    {
        uint64_t admitted = 0;
        uint64_t rejected = 0;
        uint64_t peakDepth = 0;
    };

    /** What a popBatch() window inherited from its members. */
    struct PoppedWindow
    {
        /** Earliest deadlineAbsMs across the window's members. */
        double deadlineAbsMs = kNoDeadlineMs;
        /** Cumulative predicted cost of the window (ms). */
        double predictedMs = 0.0;
    };

    /** `capacity` >= 1: jobs resident before admission control trips. */
    explicit RequestQueue(size_t capacity);

    /**
     * Admit `job` unless the queue is full. Returns false on rejection
     * (the job's responder has NOT been called — the caller owns the
     * rejection response) or after close().
     */
    bool submit(ServiceJob job);

    /**
     * Block until a job is available, then fill `out` with the most
     * urgent job — EDF within the highest non-empty class, plus the
     * imminent-deadline promotion described above — and up to
     * `max_window - 1` jobs sharing its EngineKey (highest class
     * first, EDF within each class) subject to the cost-bounded
     * packing rule. Returns false once the queue is closed and
     * drained. `now_ms` < 0 reads the steady clock; tests inject a
     * fixed value for deterministic ordering assertions. `window`
     * (optional) receives the earliest member deadline and cumulative
     * predicted cost.
     */
    bool popBatch(size_t max_window, std::vector<ServiceJob> &out,
                  double now_ms = -1.0,
                  PoppedWindow *window = nullptr);

    /** Reject new work and wake every popBatch() blocked waiter. */
    void close();

    size_t depth() const;
    Counters counters() const;

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    /** One EDF/FIFO deque per priority class; classes_[kPriorities-1]
     *  is most urgent. `resident_` is the job count across classes. */
    std::array<std::deque<ServiceJob>, kPriorities> classes_;
    size_t resident_ = 0;
    uint64_t nextSeq_ = 0;
    Counters counters_;
    bool closed_ = false;
};

} // namespace ta

#endif // TA_SERVICE_REQUEST_QUEUE_H
