/**
 * @file
 * ta_calibrate: offline calibration of the service cost model
 * (docs/SERVICE.md). Runs the deterministic calibration battery
 * serially — each request once against a cold plan cache and again
 * against a warm one — fits the nonnegative linear cost model to the
 * measured host times, and writes the versioned coefficients file that
 * `ta_serve --cost-model` and `ta_loadgen --slo` consume.
 *
 * Usage:
 *   ta_calibrate [--out FILE] [--seed N] [--reps N] [--threads N]
 *                [--assumed-hit-rate X] [--quick] [--json-out]
 *   ta_calibrate --predict FILE [--seed N] [--quick]
 *   ta_calibrate --self-check
 *
 * --predict loads a coefficients file and prints the battery's
 * predictions — a pure function of (file, seed), so two invocations
 * must emit identical bytes (CI's calibration determinism check).
 * --self-check exercises fit -> save -> load -> identical predictions
 * on synthetic samples without any timing, for ctest.
 *
 * Measurements go to the fit; all progress text goes to stderr so
 * stdout stays machine-readable (--predict) or silent.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cli.h"
#include "harness/bench_json.h"
#include "kernels/kernel_table.h"
#include "service/cost_model.h"

using namespace ta;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--out FILE] [--seed N] [--reps N] [--threads N]\n"
        "          [--assumed-hit-rate X] [--quick] [--json-out]\n"
        "       %s --predict FILE [--seed N] [--quick]\n"
        "       %s --self-check\n"
        "  --out              coefficients file to write (default\n"
        "                     cost_model.txt)\n"
        "  --seed             battery seed (default 1)\n"
        "  --reps             timing repetitions per point (default 3,\n"
        "                     median)\n"
        "  --threads          executor width while measuring\n"
        "                     (default 1 — predictions model the\n"
        "                     serial oracle)\n"
        "  --assumed-hit-rate steady-state plan-cache hit rate the\n"
        "                     served predictions assume, 0..1\n"
        "                     (default 0.9)\n"
        "  --quick            small battery for CI smoke\n"
        "  --json-out         also write BENCH_calibration.json\n"
        "  --predict          no timing: load FILE and print the\n"
        "                     battery's deterministic predictions\n"
        "  --self-check       fit/save/load round-trip on synthetic\n"
        "                     samples; exit 0 iff identical\n",
        argv0, argv0, argv0);
}

double
medianNs(std::vector<double> &v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/** Time one runShape call on `acc` in nanoseconds. */
double
timeRunNs(const TransArrayAccelerator &acc, const ServiceRequest &req)
{
    const auto t0 = std::chrono::steady_clock::now();
    acc.runShape(req.shape, req.wbits, req.seed);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

int
runPredict(const std::string &path, uint64_t seed, bool quick)
{
    CostModel model;
    std::string err;
    if (!model.loadFile(path, &err)) {
        std::fprintf(stderr, "ta_calibrate: %s\n", err.c_str());
        return 1;
    }
    // One line per battery point, fixed formatting: byte-identical
    // across invocations for a fixed (file, seed) — the determinism
    // contract CI diffs.
    const std::vector<ServiceRequest> battery =
        costCalibrationBattery(seed, quick);
    for (const ServiceRequest &req : battery) {
        std::printf(
            "%llu n=%zu k=%zu m=%zu wbits=%d static=%d samples=%zu "
            "predicted_cycles=%s predicted_ms=%s\n",
            static_cast<unsigned long long>(req.id), req.shape.n,
            req.shape.k, req.shape.m, req.wbits,
            req.useStatic ? 1 : 0, req.samples,
            formatDouble(
                model.predictCycles(costFeaturesOf(
                    req, model.assumedMissProb())))
                .c_str(),
            formatDouble(model.predictMs(req)).c_str());
    }
    return 0;
}

int
runSelfCheck()
{
    // Synthetic ground truth: a known nonnegative coefficient vector
    // plus deterministic multiplicative pseudo-noise. No clocks — the
    // check must pass identically everywhere.
    const std::array<double, CostFeatures::kCount> truth = {
        50000.0, 12000.0, 1.5, 3000.0, 40000.0};
    std::vector<CostModel::Sample> samples;
    const std::vector<ServiceRequest> battery =
        costCalibrationBattery(7, /*quick=*/false);
    uint64_t noise = 0x9e3779b97f4a7c15ull;
    for (size_t i = 0; i < battery.size(); ++i) {
        for (int miss = 0; miss <= 1; ++miss) {
            CostModel::Sample s;
            s.features = costFeaturesOf(battery[i],
                                        miss == 0 ? 0.0 : 1.0);
            double y = 0.0;
            for (size_t f = 0; f < CostFeatures::kCount; ++f)
                y += truth[f] * s.features.f[f];
            noise = noise * 6364136223846793005ull + 1442695040888963407ull;
            // +/- 5% deterministic jitter.
            const double jitter =
                1.0 + 0.05 * (static_cast<double>(noise >> 11) /
                                  9007199254740992.0 * 2.0 -
                              1.0);
            s.measuredNs = y * jitter;
            samples.push_back(s);
        }
    }

    CostModel fitted;
    CostModel::FitReport report;
    if (!fitted.fit(samples, &report)) {
        std::fprintf(stderr, "self-check: fit failed\n");
        return 1;
    }
    const std::string tmp = "cost_model.selfcheck.tmp";
    if (!fitted.saveFile(tmp)) {
        std::fprintf(stderr, "self-check: save failed\n");
        return 1;
    }
    CostModel loaded;
    std::string err;
    if (!loaded.loadFile(tmp, &err)) {
        std::fprintf(stderr, "self-check: load failed: %s\n",
                     err.c_str());
        return 1;
    }
    std::remove(tmp.c_str());
    // Round-trip contract: %.17g save -> strict load -> predictions
    // bit-identical to the in-memory fit.
    for (const CostModel::Sample &s : samples) {
        if (fitted.predictCycles(s.features) !=
            loaded.predictCycles(s.features)) {
            std::fprintf(stderr,
                         "self-check: round-trip prediction drift\n");
            return 1;
        }
    }
    // And the fit itself must explain its own synthetic data well.
    if (report.errP99 > 0.15) {
        std::fprintf(stderr,
                     "self-check: fit error p99 %.3f exceeds 0.15\n",
                     report.errP99);
        return 1;
    }
    std::fprintf(stderr,
                 "self-check: ok (%zu samples, err p50/p90/p99 "
                 "%.3f/%.3f/%.3f)\n",
                 report.samples, report.errP50, report.errP90,
                 report.errP99);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "cost_model.txt";
    std::string predict_path;
    uint64_t seed = 1;
    int reps = 3;
    int threads = 1;
    double assumed_hit_rate = 0.9;
    bool quick = false;
    bool json_out = false;
    bool self_check = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 2;
        }
        if (a == "--quick") {
            quick = true;
            continue;
        }
        if (a == "--json-out") {
            json_out = true;
            continue;
        }
        if (a == "--self-check") {
            self_check = true;
            continue;
        }
        const bool known = a == "--out" || a == "--seed" ||
                           a == "--reps" || a == "--threads" ||
                           a == "--assumed-hit-rate" ||
                           a == "--predict";
        if (!known) {
            std::fprintf(stderr, "unknown flag %s\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
        const char *v = argv[++i];
        bool ok = true;
        if (a == "--out")
            out_path = v;
        else if (a == "--predict")
            predict_path = v;
        else if (a == "--seed")
            ok = parseU64Flag(a, v, 0, ~0ull, seed);
        else if (a == "--reps")
            ok = parseIntFlag(a, v, 1, 99, reps);
        else if (a == "--threads")
            ok = parseIntFlag(a, v, 1, 256, threads);
        else if (a == "--assumed-hit-rate") {
            char *end = nullptr;
            assumed_hit_rate = std::strtod(v, &end);
            if (end == nullptr || *end != '\0' ||
                assumed_hit_rate < 0.0 || assumed_hit_rate > 1.0) {
                std::fprintf(stderr,
                             "--assumed-hit-rate: expected a value "
                             "in [0, 1], got '%s'\n",
                             v);
                ok = false;
            }
        }
        if (!ok) {
            usage(argv[0]);
            return 2;
        }
    }

    if (self_check)
        return runSelfCheck();
    if (!predict_path.empty())
        return runPredict(predict_path, seed, quick);

    const std::vector<ServiceRequest> battery =
        costCalibrationBattery(seed, quick);
    std::fprintf(stderr,
                 "ta_calibrate: %zu battery points (%s), %d rep(s), "
                 "%s kernels\n",
                 battery.size(), quick ? "quick" : "full", reps,
                 kernelArch());

    std::vector<CostModel::Sample> samples;
    const auto wall0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < battery.size(); ++i) {
        const ServiceRequest &req = battery[i];
        // A fresh engine per point: the cold run measures plan
        // construction (miss features), the following warm runs hit
        // the engine's own cache (hit features).
        TransArrayAccelerator acc(
            engineConfig(engineKeyOf(req), threads));
        CostModel::Sample cold;
        cold.features = costFeaturesOf(req, 1.0);
        cold.measuredNs = timeRunNs(acc, req);
        samples.push_back(cold);

        std::vector<double> warm_ns;
        for (int r = 0; r < reps; ++r)
            warm_ns.push_back(timeRunNs(acc, req));
        CostModel::Sample warm;
        warm.features = costFeaturesOf(req, 0.0);
        warm.measuredNs = medianNs(warm_ns);
        samples.push_back(warm);

        std::fprintf(stderr,
                     "  [%zu/%zu] n=%zu k=%zu m=%zu wbits=%d "
                     "static=%d cold %.2f ms warm %.2f ms\n",
                     i + 1, battery.size(), req.shape.n, req.shape.k,
                     req.shape.m, req.wbits, req.useStatic ? 1 : 0,
                     cold.measuredNs / 1e6, warm.measuredNs / 1e6);
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall0)
            .count();

    CostModel model;
    CostModel::FitReport report;
    if (!model.fit(samples, &report)) {
        std::fprintf(stderr, "ta_calibrate: fit failed (degenerate "
                             "battery)\n");
        return 1;
    }
    model.setAssumedMissProb(1.0 - assumed_hit_rate);
    if (!model.saveFile(out_path)) {
        std::fprintf(stderr, "ta_calibrate: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }

    static const char *kNames[CostFeatures::kCount] = {
        "base", "sampled_subtile", "sliced_bit", "static_subtile",
        "miss_subtile"};
    for (size_t i = 0; i < CostFeatures::kCount; ++i)
        std::fprintf(stderr, "  coeff %-16s %.6g ns\n", kNames[i],
                     model.coeffs()[i]);
    std::fprintf(stderr,
                 "ta_calibrate: fit over %zu samples, relative error "
                 "p50/p90/p99 %.3f/%.3f/%.3f, wrote %s (%.0f ms)\n",
                 report.samples, report.errP50, report.errP90,
                 report.errP99, out_path.c_str(), wall_ms);

    if (json_out) {
        BenchJson json("calibration");
        json.add("benchmark", std::string("calibration"));
        json.add("schema_version", static_cast<uint64_t>(2));
        json.add("quick", static_cast<uint64_t>(quick ? 1 : 0));
        json.add("battery_points",
                 static_cast<uint64_t>(battery.size()));
        json.add("fit_samples", static_cast<uint64_t>(report.samples));
        json.add("err_p50", report.errP50);
        json.add("err_p90", report.errP90);
        json.add("err_p99", report.errP99);
        json.add("assumed_hit_rate", assumed_hit_rate);
        for (size_t i = 0; i < CostFeatures::kCount; ++i)
            json.add(std::string("coeff_") + kNames[i],
                     model.coeffs()[i]);
        json.add("wall_ms", wall_ms);
        json.add("kernel_arch", std::string(kernelArch()));
        const std::string path = json.write();
        if (!path.empty())
            std::fprintf(stderr, "ta_calibrate: wrote %s\n",
                         path.c_str());
    }
    return 0;
}
