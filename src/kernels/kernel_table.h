/**
 * @file
 * Runtime-dispatched SIMD kernel layer for the three profiled sub-tile
 * inner loops: the popcount/accumulate spans of the functional
 * transitive GEMM (`executeSubTile`), the bitslice pack/unpack routines
 * (`bitSlice` / `extractTransRows` / `countOnes`) and the row-value
 * scan at the head of `Scoreboard::build`. A KernelTable is a flat
 * struct of function pointers; the scalar table is the determinism
 * oracle (plain loops, no ISA extensions beyond the build baseline)
 * and every vector table must produce byte-identical output — all
 * kernels are exact integer ops, so lane order never changes a result.
 * The contract is pinned by tests/test_kernels.cc across randomized
 * geometries and by end-to-end engine/serve byte-compares.
 *
 * Dispatch: selected once at startup (first kernels() call) from the
 * TA_KERNELS environment variable (scalar|avx2|neon|auto, default
 * auto = best table the CPU supports, probed via CPUID/HWCAP), and
 * overridable with the tools' --kernels flag through setKernels().
 * Vector translation units are compiled with their ISA flags only
 * (never raising the baseline of the rest of the build) and are
 * absent on foreign arches, which degrades to scalar-only gracefully.
 *
 * Thread safety: kernels() is an atomic load and safe everywhere;
 * setKernels() must only be called while no engine is executing
 * (startup, or between runs in tests) — the executor's task handoff
 * orders the write before any worker reads it.
 */

#ifndef TA_KERNELS_KERNEL_TABLE_H
#define TA_KERNELS_KERNEL_TABLE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ta {

/**
 * One dispatchable set of sub-tile kernels. Every member must be
 * non-null; partial tables point unimplemented entries at the scalar
 * oracle functions.
 */
struct KernelTable
{
    /** Dispatch name reported in stats/bench JSON: scalar|avx2|neon. */
    const char *arch;

    /**
     * PPE accumulate: acc[c] += row[c] for c in [0, m) with exact
     * int64 += int32 widening (the per-diff-bit input-row add of the
     * transitive GEMM).
     */
    void (*accumRow)(int64_t *acc, const int32_t *row, size_t m);

    /**
     * APE scatter: out[c] += weight * val[c] for c in [0, m). `weight`
     * is a bit-level weight (±2^level from SlicedMatrix::levelWeight);
     * vector tables may use shift+add for power-of-two magnitudes but
     * must fall back to exact multiplication otherwise.
     */
    void (*scatterRow)(int64_t *out, const int64_t *val, int64_t weight,
                       size_t m);

    /**
     * Pack n <= 32 bytes holding {0,1} into bits 0..n-1 of the result
     * (bit i = bits[i]) — the TransRow extraction kernel.
     */
    uint32_t (*packBits)(const uint8_t *bits, size_t n);

    /**
     * Bit-slice one level: dst[c] = (uint32(src[c]) >> bit) & 1 for
     * c in [0, n). Exact for any int32 source (2's complement pattern).
     */
    void (*sliceLevel)(uint8_t *dst, const int32_t *src, size_t n,
                       int bit);

    /** Sum of n bytes holding {0,1} (bit-sparsity numerator). */
    uint64_t (*countOnes)(const uint8_t *bytes, size_t n);

    /**
     * Row-value scan of Scoreboard::build: for each of the n values,
     * count zeros into *zeroRows and increment the uint32 counter at
     * counts + value * countStride for 0 < value < limit. Returns
     * false when any value >= limit (counters for in-range values are
     * still updated; the caller re-scans for the diagnostic).
     */
    bool (*rowScan)(const uint32_t *values, size_t n, uint32_t limit,
                    unsigned char *counts, size_t countStride,
                    uint64_t *zeroRows);
};

/** The scalar oracle table (always available, every entry plain C++). */
const KernelTable &scalarKernelTable();

/**
 * The currently dispatched table. First call resolves TA_KERNELS
 * (scalar|avx2|neon|auto; unset = auto) — an unavailable or unknown
 * value is fatal, so oracle runs can never silently fall through to a
 * different backend.
 */
const KernelTable &kernels();

/** Arch name of the dispatched table (== kernels().arch). */
const char *kernelArch();

/**
 * Re-dispatch by name: scalar|avx2|neon|auto. Returns false (with a
 * message in *err when given) if the name is unknown or the table is
 * not available on this host/build. Must not race running engines.
 */
bool setKernels(const std::string &name, std::string *err = nullptr);

/**
 * Names of the tables this build + host can dispatch, "scalar" first.
 * A vector arch appears only when its TU was compiled in AND the CPU
 * reports the feature at runtime.
 */
std::vector<std::string> availableKernelArchs();

} // namespace ta

#endif // TA_KERNELS_KERNEL_TABLE_H
