#include "sim/energy_model.h"

#include <cmath>

namespace ta {

double
EnergyParams::sramPerByte(double kb) const
{
    if (kb <= 0)
        return 0.0;
    // CACTI-like: access energy grows ~sqrt(capacity) with wordline /
    // bitline length.
    return sramBase * std::sqrt(kb / sramRefKb);
}

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    dramStatic += o.dramStatic;
    dramDynamic += o.dramDynamic;
    core += o.core;
    weightBuf += o.weightBuf;
    inputBuf += o.inputBuf;
    prefixBuf += o.prefixBuf;
    outputBuf += o.outputBuf;
    otherBuf += o.otherBuf;
    return *this;
}

} // namespace ta
