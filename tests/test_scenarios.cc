/**
 * @file
 * Unit tests for the adversarial scenario library: the canonical
 * scenario list, per-scenario spec well-formedness (trace/arrival
 * shape invariants, fault schedules, autoscaling bounds), seeded
 * determinism of trace generation, the Zipf popularity skew, and the
 * CI gate evaluation in checkScenarioGates — each gate must trip
 * individually and `allowShed` must be the only thing that excuses
 * shedding. Pure library tests: no processes are spawned.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "cluster/scenarios.h"

namespace ta {
namespace {

bool
sameRequest(const ServiceRequest &a, const ServiceRequest &b)
{
    return a.shape.n == b.shape.n && a.shape.k == b.shape.k &&
           a.shape.m == b.shape.m && a.wbits == b.wbits &&
           a.seed == b.seed && a.priority == b.priority &&
           a.maxdist == b.maxdist && a.useStatic == b.useStatic &&
           a.samples == b.samples;
}

TEST(ScenarioLibrary, CanonicalNamesInOrder)
{
    const std::vector<std::string> names = scenarioNames();
    const std::vector<std::string> expect = {
        "diurnal",      "burst",
        "zipf_engines", "crash_storm",
        "slow_client",  "cache_cold_stampede",
        "corrupt_cache_restart"};
    EXPECT_EQ(names, expect);
}

TEST(ScenarioLibrary, EverySpecIsWellFormed)
{
    for (const std::string &name : scenarioNames()) {
        for (const bool quick : {true, false}) {
            ScenarioSpec spec;
            std::string err;
            ASSERT_TRUE(buildScenario(name, 42, quick, spec, err))
                << name << ": " << err;
            EXPECT_EQ(spec.name, name);
            EXPECT_FALSE(spec.description.empty()) << name;
            EXPECT_GE(spec.replicas, 1) << name;
            EXPECT_FALSE(spec.trace.empty()) << name;
            EXPECT_GT(spec.p99BoundMs, 0) << name;
            EXPECT_GE(spec.maxRedispatch, 1) << name;
            EXPECT_GT(spec.requestTimeoutMs, 0) << name;

            if (spec.openLoop) {
                // Open loop: one arrival offset per request, starting
                // at zero and never going backwards.
                ASSERT_EQ(spec.arrivalSec.size(), spec.trace.size())
                    << name;
                EXPECT_DOUBLE_EQ(spec.arrivalSec.front(), 0.0)
                    << name;
                for (size_t i = 1; i < spec.arrivalSec.size(); ++i)
                    EXPECT_GE(spec.arrivalSec[i],
                              spec.arrivalSec[i - 1])
                        << name << " arrival " << i;
            } else {
                EXPECT_GE(spec.concurrency, 1u) << name;
                EXPECT_TRUE(spec.arrivalSec.empty()) << name;
            }
            if (spec.maxReplicas != 0)
                EXPECT_GT(spec.maxReplicas, spec.replicas) << name;
            if (spec.slowClients > 0) {
                EXPECT_GT(spec.stallReadMs, 0) << name;
                EXPECT_GT(spec.slowClientRequests, 0u) << name;
            }
            if (spec.needsCacheFiles)
                EXPECT_GT(spec.cacheSaveIntervalSec, 0) << name;
            for (const FaultEvent &ev : spec.faults.events)
                EXPECT_LT(ev.atRequest, spec.trace.size())
                    << name << ": fault beyond trace end";
        }
    }
}

TEST(ScenarioLibrary, UnknownNameRejected)
{
    ScenarioSpec spec;
    std::string err;
    EXPECT_FALSE(buildScenario("meteor_strike", 1, true, spec, err));
    EXPECT_FALSE(err.empty());
}

TEST(ScenarioLibrary, TracesAreSeedDeterministic)
{
    for (const std::string &name : scenarioNames()) {
        ScenarioSpec a, b;
        std::string err;
        ASSERT_TRUE(buildScenario(name, 7, true, a, err)) << err;
        ASSERT_TRUE(buildScenario(name, 7, true, b, err)) << err;
        ASSERT_EQ(a.trace.size(), b.trace.size()) << name;
        for (size_t i = 0; i < a.trace.size(); ++i)
            EXPECT_TRUE(sameRequest(a.trace[i], b.trace[i]))
                << name << " request " << i;
        EXPECT_EQ(a.arrivalSec, b.arrivalSec) << name;
    }
    // A different seed must change the trace somewhere.
    ScenarioSpec a, b;
    std::string err;
    ASSERT_TRUE(buildScenario("zipf_engines", 7, true, a, err));
    ASSERT_TRUE(buildScenario("zipf_engines", 8, true, b, err));
    bool differs = false;
    for (size_t i = 0; i < a.trace.size() && !differs; ++i)
        differs = !sameRequest(a.trace[i], b.trace[i]);
    EXPECT_TRUE(differs);
}

TEST(ScenarioLibrary, ZipfTraceSkewsEnginePopularity)
{
    const std::vector<ServiceRequest> skewed =
        scenarioTrace(11, 2000, true, /*enginePool=*/12,
                      /*zipfS=*/1.1);
    // Engines are distinguished by the variant knobs the affinity
    // policy hashes; count picks per (maxdist, static, samples).
    std::map<std::tuple<int, bool, uint64_t>, size_t> counts;
    for (const ServiceRequest &r : skewed)
        ++counts[{r.maxdist, r.useStatic, r.samples}];
    ASSERT_GT(counts.size(), 1u);
    size_t max_count = 0, min_count = skewed.size();
    for (const auto &kv : counts) {
        max_count = std::max(max_count, kv.second);
        min_count = std::min(min_count, kv.second);
    }
    // Zipf(1.1) over 12 variants: the hottest engine must dominate
    // the coldest by a wide margin (the head holds ~30% of mass, the
    // tail ~2-3%).
    EXPECT_GT(max_count, 4 * min_count);
}

TEST(ScenarioLibrary, CrashStormKillsHalfTheCluster)
{
    ScenarioSpec spec;
    std::string err;
    ASSERT_TRUE(buildScenario("crash_storm", 3, true, spec, err));
    ASSERT_EQ(spec.faults.events.size(), 1u);
    const FaultEvent &ev = spec.faults.events[0];
    EXPECT_EQ(ev.kind, FaultKind::Kill);
    EXPECT_EQ(ev.count, (spec.replicas + 1) / 2);
    EXPECT_GE(spec.minRestarts, 1u);
    EXPECT_GT(spec.maxReplicas, spec.replicas); // autoscaling armed
}

TEST(ScenarioLibrary, BurstDeclaresOverloadAndBoundsQueues)
{
    ScenarioSpec spec;
    std::string err;
    ASSERT_TRUE(buildScenario("burst", 3, true, spec, err));
    EXPECT_TRUE(spec.allowShed);
    EXPECT_GT(spec.queueCap, 0u);
    EXPECT_TRUE(spec.openLoop);
}

TEST(ScenarioLibrary, CorruptCacheRestartTargetsPersistedFile)
{
    ScenarioSpec spec;
    std::string err;
    ASSERT_TRUE(
        buildScenario("corrupt_cache_restart", 3, true, spec, err));
    EXPECT_TRUE(spec.needsCacheFiles);
    ASSERT_EQ(spec.faults.events.size(), 1u);
    EXPECT_EQ(spec.faults.events[0].kind, FaultKind::CorruptCache);
    EXPECT_GE(spec.minRestarts, 1u);
}

// ---- gate evaluation ------------------------------------------------------

ScenarioOutcome
cleanOutcome()
{
    ScenarioOutcome o;
    o.requests = 100;
    o.served = 100;
    o.p99Ms = 50;
    return o;
}

TEST(ScenarioGates, CleanOutcomePasses)
{
    ScenarioSpec spec;
    spec.p99BoundMs = 1000;
    ScenarioOutcome o = cleanOutcome();
    EXPECT_TRUE(checkScenarioGates(spec, o));
    EXPECT_TRUE(o.pass);
    EXPECT_TRUE(o.failures.empty());
}

TEST(ScenarioGates, EachGateTripsIndividually)
{
    ScenarioSpec spec;
    spec.p99BoundMs = 1000;
    spec.minRestarts = 0;

    struct Case
    {
        const char *what;
        void (*mutate)(ScenarioSpec &, ScenarioOutcome &);
    };
    const Case cases[] = {
        {"lost",
         [](ScenarioSpec &, ScenarioOutcome &o) { o.lost = 1; }},
        {"duplicated",
         [](ScenarioSpec &, ScenarioOutcome &o) {
             o.duplicated = 1;
         }},
        {"mismatches",
         [](ScenarioSpec &, ScenarioOutcome &o) {
             o.mismatches = 1;
         }},
        {"shed without allowShed",
         [](ScenarioSpec &, ScenarioOutcome &o) { o.shed = 1; }},
        {"errors",
         [](ScenarioSpec &, ScenarioOutcome &o) { o.errors = 1; }},
        {"p99 over bound",
         [](ScenarioSpec &, ScenarioOutcome &o) { o.p99Ms = 5000; }},
        {"missing restarts",
         [](ScenarioSpec &s, ScenarioOutcome &) {
             s.minRestarts = 2;
         }},
        {"abandoned slot",
         [](ScenarioSpec &, ScenarioOutcome &o) { o.abandoned = 1; }},
    };
    for (const Case &c : cases) {
        ScenarioSpec s = spec;
        ScenarioOutcome o = cleanOutcome();
        c.mutate(s, o);
        EXPECT_FALSE(checkScenarioGates(s, o)) << c.what;
        EXPECT_FALSE(o.pass) << c.what;
        ASSERT_EQ(o.failures.size(), 1u) << c.what;
    }
}

TEST(ScenarioGates, AllowShedExcusesSheddingOnly)
{
    ScenarioSpec spec;
    spec.p99BoundMs = 1000;
    spec.allowShed = true;
    ScenarioOutcome o = cleanOutcome();
    o.shed = 10;
    o.served = 90;
    EXPECT_TRUE(checkScenarioGates(spec, o)) << "declared overload";

    // allowShed never excuses loss.
    ScenarioOutcome bad = cleanOutcome();
    bad.shed = 10;
    bad.lost = 1;
    EXPECT_FALSE(checkScenarioGates(spec, bad));
}

TEST(ScenarioGates, TailBoundSkippedWhenNothingServed)
{
    // p99 of zero served requests is meaningless; the gate must not
    // trip on the 0-sample placeholder (loss gates catch real
    // trouble).
    ScenarioSpec spec;
    spec.p99BoundMs = 1;
    spec.allowShed = true;
    ScenarioOutcome o;
    o.requests = 10;
    o.shed = 10;
    o.served = 0;
    o.p99Ms = 0;
    EXPECT_TRUE(checkScenarioGates(spec, o));
}

} // namespace
} // namespace ta
