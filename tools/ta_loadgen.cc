/**
 * @file
 * ta_loadgen: load generator and correctness checker for `ta_serve`
 * and the `ta_router` cluster. Replays a seeded trace of
 * mixed-suite/mixed-precision requests against a server — spawned as
 * a child over a socketpair (--spawn), reached over TCP
 * (--connect/--port), or an in-process cluster of N spawned replicas
 * (--replicas/--policy) — in closed-loop phases at concurrency 1 (the
 * serial-request baseline) and N (cross-request batching), plus an
 * optional open-loop phase at a fixed offered rate.
 *
 * Every response is verified byte-identical to an in-process serial
 * run of the same request (--no-verify disables), which is the
 * service determinism contract of docs/SERVICE.md: co-batching,
 * server threads, cache state, routing policy, replica count and
 * replica restarts must not change a single byte.
 *
 * Emits BENCH_service_throughput.json (--json-out) with throughput
 * and p50/p95/p99 latency per phase — host-performance numbers by
 * design, like model_throughput. Cluster mode sweeps the routing
 * policies (--policy all) and emits BENCH_cluster_throughput.json
 * with per-policy throughput, latency percentiles and aggregate
 * plan-cache hit rate (engine-affinity routing keeps per-replica
 * caches hot, so its hit rate beats round_robin's).
 *
 * Adversarial mode: --scenario NAME replays a named scenario from the
 * scenario library (src/cluster/scenarios.h) — seeded fault
 * injection, autoscaling, overload shedding and slow clients — and
 * emits BENCH_scenarios.json with hard gates: zero lost or
 * duplicated responses ever, shedding only under declared overload,
 * byte-verified responses for everything served. --faults SPEC
 * injects a fault schedule into plain cluster mode; --stall-reads MS
 * turns the single-server client into a slow reader.
 */

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <netinet/in.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/fault_injector.h"
#include "cluster/router.h"
#include "cluster/scenarios.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "harness/bench_json.h"
#include "kernels/kernel_table.h"
#include "obs/trace.h"
#include "service/cost_model.h"
#include "service/line_reader.h"
#include "service/protocol.h"
#include "storage/buffer_manager.h"

using namespace ta;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// ---- client ---------------------------------------------------------------

struct Reply
{
    std::string line;
    double recvTime = 0;
};

/**
 * One pipelined protocol connection: call() writes a request line and
 * returns a future completed by the reader thread when the response
 * with the same id arrives (responses may come back out of order).
 */
class ServiceClient
{
  public:
    /** `stall_read_ms` > 0 makes this a deliberately slow client:
     *  the reader sleeps that long before consuming each response
     *  line, so the kernel socket buffer (and then the server's
     *  writer) backs up — the scenario suite's backpressure probe. */
    explicit ServiceClient(int fd, int stall_read_ms = 0)
        : fd_(fd), stallReadMs_(stall_read_ms)
    {
        reader_ = std::thread([this] { readLoop(); });
    }

    ~ServiceClient()
    {
        ::shutdown(fd_, SHUT_RDWR);
        if (reader_.joinable())
            reader_.join();
        ::close(fd_);
    }

    std::future<Reply>
    call(const ServiceRequest &req)
    {
        std::future<Reply> fut;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (dead_) {
                // The reader already exited (server gone): nobody
                // will ever complete this promise — fail it now
                // instead of blocking the caller forever.
                std::promise<Reply> p;
                p.set_value(Reply{serializeError(req.id,
                                                 "connection closed"),
                                  nowSeconds()});
                return p.get_future();
            }
            fut = pending_[req.id].get_future();
        }
        const std::string line = serializeRequest(req) + "\n";
        std::lock_guard<std::mutex> lock(writeMu_);
        size_t off = 0;
        while (off < line.size()) {
            const ssize_t n =
                ::write(fd_, line.data() + off, line.size() - off);
            if (n <= 0)
                break; // reader loop reports the dead peer
            off += static_cast<size_t>(n);
        }
        return fut;
    }

  private:
    void
    readLoop()
    {
        LineReader reader(fd_);
        std::string line;
        bool terminated = true;
        // A line torn by a server crash mid-write is connection
        // death, not a response.
        while (reader.next(line, terminated) && terminated) {
            if (stallReadMs_ > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(stallReadMs_));
            deliver(line);
        }
        // EOF: mark the connection dead (future call()s fail fast)
        // and fail any still-pending call so waiters don't hang.
        std::lock_guard<std::mutex> lock(mu_);
        dead_ = true;
        for (auto &kv : pending_)
            kv.second.set_value(
                Reply{serializeError(kv.first, "connection closed"),
                      nowSeconds()});
        pending_.clear();
    }

    void
    deliver(const std::string &line)
    {
        std::vector<std::pair<std::string, std::string>> kvs;
        std::string err;
        uint64_t id = 0;
        if (parseJsonFlat(line, kvs, err)) {
            for (const auto &kv : kvs)
                if (kv.first == "id")
                    id = std::strtoull(kv.second.c_str(), nullptr, 10);
        }
        std::promise<Reply> p;
        {
            std::lock_guard<std::mutex> lock(mu_);
            const auto it = pending_.find(id);
            if (it == pending_.end()) {
                // Unsolicited line: nobody is waiting on this id — a
                // duplicate response or a stray write. Dropped, but
                // counted so the SLO ledger can assert zero.
                ++unsolicited_;
                return;
            }
            p = std::move(it->second);
            pending_.erase(it);
        }
        p.set_value(Reply{line, nowSeconds()});
    }

  public:
    /** Dropped response lines no caller was waiting for (duplicate
     *  ids); must stay 0 in a healthy run. */
    uint64_t
    unsolicited() const
    {
        return unsolicited_.load();
    }

  private:
    int fd_;
    int stallReadMs_ = 0;
    std::thread reader_;
    std::mutex mu_;
    std::unordered_map<uint64_t, std::promise<Reply>> pending_;
    std::atomic<uint64_t> unsolicited_{0};
    bool dead_ = false;
    std::mutex writeMu_;
};

/**
 * How a phase issues one request: over a ServiceClient connection, or
 * straight into an in-process cluster Router. Lets the phase/verify
 * machinery drive both single-server and cluster targets.
 */
using CallFn =
    std::function<std::future<Reply>(const ServiceRequest &)>;

CallFn
clientCall(ServiceClient &client)
{
    return [&client](const ServiceRequest &req) {
        return client.call(req);
    };
}

CallFn
routerCall(Router &router)
{
    return [&router](const ServiceRequest &req) {
        auto prom = std::make_shared<std::promise<Reply>>();
        std::future<Reply> fut = prom->get_future();
        router.submit(req, [prom](const std::string &line) {
            prom->set_value(Reply{line, nowSeconds()});
        });
        return fut;
    };
}

// ---- server attachment ----------------------------------------------------

int
spawnServer(const std::string &command, pid_t &child)
{
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        std::perror("ta_loadgen: socketpair");
        return -1;
    }
    child = ::fork();
    if (child < 0) {
        std::perror("ta_loadgen: fork");
        ::close(sv[0]);
        ::close(sv[1]);
        return -1;
    }
    if (child == 0) {
        ::dup2(sv[1], STDIN_FILENO);
        ::dup2(sv[1], STDOUT_FILENO);
        ::close(sv[0]);
        ::close(sv[1]);
        ::execl("/bin/sh", "sh", "-c", command.c_str(),
                static_cast<char *>(nullptr));
        std::perror("ta_loadgen: exec");
        _exit(127);
    }
    ::close(sv[1]);
    return sv[0];
}

int
connectTcp(uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    // The server may still be starting: retry with a fresh socket per
    // attempt (a failed connect leaves the fd unusable).
    for (int attempt = 0; attempt < 50; ++attempt) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
            std::perror("ta_loadgen: socket");
            return -1;
        }
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        ::close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::fprintf(stderr,
                 "ta_loadgen: could not connect to 127.0.0.1:%u\n",
                 static_cast<unsigned>(port));
    return -1;
}

// ---- trace ----------------------------------------------------------------

/**
 * Seeded mixed trace: FC-projection, attention-score and CNN-ish
 * shapes at 4/6/8-bit weights, a fraction on the static scoreboard.
 * Quick shapes are CI-sized; full shapes are LLaMA-7B-sized (the
 * representative-tensor cap keeps them laptop-feasible).
 */
std::vector<ServiceRequest>
buildTrace(uint64_t seed, size_t count, bool quick,
           bool spread_engines = false)
{
    Rng rng(seed);
    std::vector<ServiceRequest> trace;
    trace.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        ServiceRequest r;
        const int suite = static_cast<int>(rng.uniformInt(0, 2));
        if (quick) {
            r.samples = 16;
            if (suite == 0) { // FC projection
                r.shape = {static_cast<uint64_t>(
                               128 * rng.uniformInt(1, 4)),
                           static_cast<uint64_t>(
                               128 * rng.uniformInt(1, 4)),
                           static_cast<uint64_t>(
                               64 * rng.uniformInt(1, 4))};
            } else if (suite == 1) { // attention score
                r.shape = {static_cast<uint64_t>(
                               64 * rng.uniformInt(2, 4)),
                           64, 128};
            } else { // CNN im2col
                r.shape = {64,
                           static_cast<uint64_t>(
                               64 * rng.uniformInt(2, 9)),
                           196};
            }
        } else {
            r.samples = 64;
            if (suite == 0) {
                r.shape = {4096, 4096,
                           static_cast<uint64_t>(
                               512 * rng.uniformInt(1, 4))};
            } else if (suite == 1) {
                r.shape = {2048, 128, 2048};
            } else {
                r.shape = {512,
                           static_cast<uint64_t>(
                               576 * rng.uniformInt(1, 4)),
                           3136};
            }
        }
        const int pick = static_cast<int>(rng.uniformInt(0, 3));
        r.wbits = pick == 0 ? 8 : pick == 1 ? 6 : 4;
        r.useStatic = rng.bernoulli(0.125);
        r.seed = static_cast<uint64_t>(rng.uniformInt(1, 1 << 20));
        r.priority = static_cast<int>(rng.uniformInt(0, 2));
        // Cluster runs spread requests over more EngineKeys so the
        // affinity policy has a real engine space to partition.
        if (spread_engines)
            r.maxdist = 3 + static_cast<int>(rng.uniformInt(0, 2));
        trace.push_back(r);
    }
    return trace;
}

// ---- phases ---------------------------------------------------------------

struct PhaseResult
{
    double wallSecs = 0;
    double rps = 0;
    PercentileSummary latencyMs;
    uint64_t errors = 0;
    /** trace index -> response line (for verification). */
    std::vector<std::string> responses;
};

/** The one stderr line per closed-loop phase (both targets). */
void
reportClosedLoop(size_t concurrency, const PhaseResult &res)
{
    std::fprintf(stderr,
                 "  closed loop, concurrency %-3zu: %6.1f req/s, "
                 "p50/p95/p99 %.2f/%.2f/%.2f ms, %llu errors\n",
                 concurrency, res.rps, res.latencyMs.p50,
                 res.latencyMs.p95, res.latencyMs.p99,
                 static_cast<unsigned long long>(res.errors));
}

/** Stats-map lookup defaulting to "0" for absent keys. */
std::string
statOf(const std::map<std::string, std::string> &stats,
       const char *key)
{
    const auto it = stats.find(key);
    return it == stats.end() ? "0" : it->second;
}

std::atomic<uint64_t> g_next_id{1};

/**
 * When set, phases stamp a fresh trace id on every request even with
 * the local tracer off — the --obs benchmark's traced phases exercise
 * the full wire path (trace field serialized, validated, propagated
 * to server-side spans) without requiring a client-side trace file.
 */
std::atomic<bool> g_stamp_trace_ids{false};

/**
 * Stamp a fresh trace id on `req` when client tracing is on (local
 * tracer enabled, or g_stamp_trace_ids). Returns the trace id to
 * record a client `request` span under, or 0 when no span should be
 * recorded (tracer off).
 */
uint64_t
maybeTraceRequest(ServiceRequest &req)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    const bool stamp =
        g_stamp_trace_ids.load(std::memory_order_relaxed);
    if (!tracer.enabled() && !stamp)
        return 0;
    req.traceId = obs::mintTraceId(req.id);
    return tracer.enabled() ? req.traceId : 0;
}

/** Record the client-side `request` root span (issue -> response).
 *  No-op with trace_id 0. */
void
recordRequestSpan(uint64_t trace_id, uint64_t t0_ns)
{
    if (trace_id == 0)
        return;
    obs::Tracer &tracer = obs::Tracer::instance();
    obs::Span span;
    span.traceId = trace_id;
    span.spanId = tracer.mintSpanId();
    span.name = "request";
    span.t0Ns = t0_ns;
    span.t1Ns = obs::Tracer::nowNs();
    tracer.record(span);
}

bool
responseOk(const std::string &line)
{
    return line.find("\"ok\":1") != std::string::npos;
}

/** Closed loop: keep `concurrency` requests in flight until the trace
 *  is exhausted; every completion immediately launches the next.
 *  `on_issue` (when set) observes each trace index as it is issued —
 *  the fault injector's clock. */
PhaseResult
runClosedLoop(const CallFn &call,
              const std::vector<ServiceRequest> &trace,
              size_t concurrency,
              std::vector<ServiceRequest> *sent_out,
              const std::function<void(size_t)> &on_issue = {})
{
    PhaseResult res;
    res.responses.assign(trace.size(), "");
    if (sent_out != nullptr)
        sent_out->assign(trace.size(), ServiceRequest());
    std::atomic<size_t> next{0};
    std::vector<std::vector<double>> lat(concurrency);
    const double t0 = nowSeconds();
    std::vector<std::thread> workers;
    for (size_t w = 0; w < concurrency; ++w) {
        workers.emplace_back([&, w] {
            while (true) {
                const size_t i = next.fetch_add(1);
                if (i >= trace.size())
                    return;
                ServiceRequest req = trace[i];
                req.id = g_next_id.fetch_add(1);
                const uint64_t trace_id = maybeTraceRequest(req);
                if (sent_out != nullptr)
                    (*sent_out)[i] = req;
                if (on_issue)
                    on_issue(i);
                const uint64_t span_t0 =
                    trace_id != 0 ? obs::Tracer::nowNs() : 0;
                const double sent = nowSeconds();
                Reply reply = call(req).get();
                recordRequestSpan(trace_id, span_t0);
                lat[w].push_back((reply.recvTime - sent) * 1e3);
                res.responses[i] = std::move(reply.line);
            }
        });
    }
    for (std::thread &t : workers)
        t.join();
    res.wallSecs = nowSeconds() - t0;
    res.rps = trace.size() / res.wallSecs;
    std::vector<double> all;
    for (const auto &v : lat)
        all.insert(all.end(), v.begin(), v.end());
    res.latencyMs = percentileSummary(std::move(all));
    for (const std::string &line : res.responses)
        res.errors += responseOk(line) ? 0 : 1;
    return res;
}

/** Open loop: offer requests at a fixed rate regardless of
 *  completions; latency includes any server-side queueing.
 *  `lat_out` (when set) receives the per-trace-index latency in ms —
 *  the SLO mode classifies each response against its own deadline. */
PhaseResult
runOpenLoop(const CallFn &call,
            const std::vector<ServiceRequest> &trace, double rate_rps,
            std::vector<ServiceRequest> *sent_out,
            std::vector<double> *lat_out = nullptr)
{
    PhaseResult res;
    res.responses.assign(trace.size(), "");
    if (sent_out != nullptr)
        sent_out->assign(trace.size(), ServiceRequest());
    if (lat_out != nullptr)
        lat_out->assign(trace.size(), 0.0);
    std::vector<std::future<Reply>> futures(trace.size());
    std::vector<double> sent_at(trace.size(), 0);
    std::vector<uint64_t> trace_ids(trace.size(), 0);
    std::vector<uint64_t> span_t0s(trace.size(), 0);
    const double t0 = nowSeconds();
    for (size_t i = 0; i < trace.size(); ++i) {
        const double due = t0 + i / rate_rps;
        while (nowSeconds() < due)
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
        ServiceRequest req = trace[i];
        req.id = g_next_id.fetch_add(1);
        trace_ids[i] = maybeTraceRequest(req);
        if (sent_out != nullptr)
            (*sent_out)[i] = req;
        if (trace_ids[i] != 0)
            span_t0s[i] = obs::Tracer::nowNs();
        sent_at[i] = nowSeconds();
        futures[i] = call(req);
    }
    std::vector<double> lat;
    lat.reserve(trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
        Reply reply = futures[i].get();
        recordRequestSpan(trace_ids[i], span_t0s[i]);
        const double ms = (reply.recvTime - sent_at[i]) * 1e3;
        lat.push_back(ms);
        if (lat_out != nullptr)
            (*lat_out)[i] = ms;
        res.responses[i] = std::move(reply.line);
    }
    res.wallSecs = nowSeconds() - t0;
    res.rps = trace.size() / res.wallSecs;
    res.latencyMs = percentileSummary(std::move(lat));
    for (const std::string &line : res.responses)
        res.errors += responseOk(line) ? 0 : 1;
    return res;
}

// ---- verification ---------------------------------------------------------

/**
 * In-process serial oracle: one single-threaded engine per EngineKey,
 * runs each unique request once and memoizes the LayerRun. This is
 * "standalone ta_sim" as a library call — the same engineConfig and
 * the same serializeResponse the CLI's --response mode uses.
 */
class Verifier
{
  public:
    /** The oracle response line for `req`. */
    std::string
    expected(const ServiceRequest &req)
    {
        return serializeResponse(req, runOf(req));
    }

  private:
    const LayerRun &
    runOf(const ServiceRequest &req)
    {
        const EngineKey key = engineKeyOf(req);
        SigKey sig{key, req.shape.n, req.shape.k, req.shape.m,
                   req.wbits, req.seed};
        const auto it = memo_.find(sig);
        if (it != memo_.end())
            return it->second;
        auto eit = engines_.find(key);
        if (eit == engines_.end())
            eit = engines_
                      .emplace(key,
                               std::make_unique<TransArrayAccelerator>(
                                   engineConfig(key, 1)))
                      .first;
        return memo_
            .emplace(sig, eit->second->runShape(req.shape, req.wbits,
                                                req.seed))
            .first->second;
    }

    struct SigKey
    {
        EngineKey key;
        uint64_t n, k, m;
        int wbits;
        uint64_t seed;

        bool
        operator<(const SigKey &o) const
        {
            if (key < o.key || o.key < key)
                return key < o.key;
            return std::tie(n, k, m, wbits, seed) <
                   std::tie(o.n, o.k, o.m, o.wbits, o.seed);
        }
    };

    std::map<EngineKey, std::unique_ptr<TransArrayAccelerator>>
        engines_;
    std::map<SigKey, LayerRun> memo_;
};

uint64_t
verifyPhase(Verifier &verifier,
            const std::vector<ServiceRequest> &sent,
            const PhaseResult &phase, const char *name)
{
    uint64_t mismatches = 0;
    for (size_t i = 0; i < sent.size(); ++i) {
        if (!responseOk(phase.responses[i]))
            continue; // rejects are counted separately
        const std::string want = verifier.expected(sent[i]);
        if (phase.responses[i] != want) {
            if (++mismatches <= 3)
                std::fprintf(stderr,
                             "VERIFY MISMATCH (%s, trace %zu):\n"
                             "  got      %s\n  expected %s\n",
                             name, i, phase.responses[i].c_str(),
                             want.c_str());
        }
    }
    return mismatches;
}

// ---- stats op -------------------------------------------------------------

std::map<std::string, std::string>
fetchStats(const CallFn &call)
{
    ServiceRequest req;
    req.op = "stats";
    req.id = g_next_id.fetch_add(1);
    const Reply reply = call(req).get();
    std::vector<std::pair<std::string, std::string>> kvs;
    std::string err;
    std::map<std::string, std::string> out;
    if (parseJsonFlat(reply.line, kvs, err))
        for (const auto &kv : kvs)
            out[kv.first] = kv.second;
    return out;
}

// ---- cluster mode ---------------------------------------------------------

struct ClusterPolicyResult
{
    RoutePolicy policy;
    PhaseResult serial;
    PhaseResult batched;
    uint64_t mismatches = 0;
    uint64_t restarts = 0;
    std::map<std::string, std::string> stats;
};

/**
 * Drive an in-process Router over `replicas` spawned `ta_serve`
 * processes, once per policy — each policy gets a fresh cluster so
 * per-policy plan-cache hit rates are comparable (a shared cluster
 * would hand later policies the earlier policies' warm caches).
 * Every response is byte-verified against the same in-process serial
 * oracle the single-server mode uses.
 */
int
runClusterMode(const std::string &serve_bin, int replicas,
               const std::vector<RoutePolicy> &policies,
               size_t requests, size_t concurrency, uint64_t seed,
               bool quick, bool json_out, bool verify,
               const FaultPlan &faults,
               const std::string &trace_out)
{
    // A per-phase trace length that is a multiple of the replica
    // count lets round_robin realign on every replay (request i
    // lands on the same slot each pass) — an artifact of looping one
    // fixed trace, not of the policy. Nudge the length off the
    // multiple so the bench measures rr's scattering honestly.
    if (replicas > 1 && requests % static_cast<size_t>(replicas) == 0)
        ++requests;
    const std::vector<ServiceRequest> trace =
        buildTrace(seed, requests, quick, /*spread_engines=*/true);
    Verifier verifier; // shared: the oracle memoizes across policies
    std::vector<ClusterPolicyResult> results;
    int rc = 0;

    for (const RoutePolicy policy : policies) {
        ReplicaProcessConfig rcfg;
        rcfg.serveBinary = serve_bin;
        rcfg.count = replicas;
        rcfg.serveArgs = {"--window", "8", "--sessions", "2"};
        // Traced cluster: replicas write <file>.replica<i>.json; the
        // in-process router and this client share the local tracer's
        // <file>. Later policies overwrite earlier policies' files.
        rcfg.traceOutBase = trace_out;
        ReplicaManager manager(rcfg);
        if (!manager.start()) {
            std::fprintf(stderr,
                         "ta_loadgen: cluster failed to start (serve "
                         "binary: %s)\n",
                         serve_bin.c_str());
            return 1;
        }
        RouterConfig rtcfg;
        rtcfg.policy = policy;
        if (!faults.events.empty()) {
            // Blackholed replicas keep their connection open; only
            // the per-attempt timeout recovers those requests.
            rtcfg.requestTimeoutMs = 5000;
        }
        Router router(rtcfg, manager);
        router.start();
        const CallFn call = routerCall(router);
        // Each policy gets a fresh cluster and so a fresh injector:
        // every policy faces the identical fault schedule, fired by
        // the batched phase's request indices.
        FaultInjector injector(manager, faults, seed ^ 0x5ceull);
        std::function<void(size_t)> on_issue;
        if (!faults.events.empty())
            on_issue = [&injector](size_t i) {
                injector.onRequestIssued(i);
            };

        std::fprintf(stderr,
                     "ta_loadgen: cluster of %d, policy %s, %zu "
                     "requests/phase, warmup...\n",
                     replicas, routePolicyName(policy), requests);
        runClosedLoop(call, trace, std::max<size_t>(4, concurrency),
                      nullptr);

        ClusterPolicyResult res;
        res.policy = policy;
        std::vector<ServiceRequest> serial_sent, batched_sent;
        res.serial = runClosedLoop(call, trace, 1, &serial_sent);
        reportClosedLoop(1, res.serial);
        res.batched = runClosedLoop(call, trace, concurrency,
                                    &batched_sent, on_issue);
        reportClosedLoop(concurrency, res.batched);
        if (res.serial.errors + res.batched.errors > 0) {
            std::fprintf(stderr,
                         "ta_loadgen: %llu closed-loop error "
                         "response(s) under policy %s\n",
                         static_cast<unsigned long long>(
                             res.serial.errors + res.batched.errors),
                         routePolicyName(policy));
            rc = 1;
        }
        if (verify) {
            res.mismatches += verifyPhase(verifier, serial_sent,
                                          res.serial, "serial");
            res.mismatches += verifyPhase(verifier, batched_sent,
                                          res.batched, "batched");
            std::fprintf(
                stderr,
                "  verify: %llu mismatches (byte-identity vs "
                "standalone serial runs)\n",
                static_cast<unsigned long long>(res.mismatches));
            if (res.mismatches > 0)
                rc = 1;
        }
        res.stats = fetchStats(call);
        res.restarts = manager.restarts();
        std::fprintf(
            stderr,
            "  cluster: forwarded %s (retried %s), cache hit rate "
            "%s, windows %s, restarts %s\n",
            statOf(res.stats, "router_forwarded").c_str(),
            statOf(res.stats, "router_retried").c_str(),
            statOf(res.stats, "cache_hit_rate").c_str(),
            statOf(res.stats, "windows").c_str(),
            statOf(res.stats, "replica_restarts").c_str());

        router.stop();
        manager.stop();
        results.push_back(std::move(res));
    }

    if (json_out) {
        BenchJson json("cluster_throughput");
        json.add("benchmark", std::string("cluster_throughput"));
        json.add("schema_version", static_cast<uint64_t>(2));
        json.add("quick", static_cast<uint64_t>(quick ? 1 : 0));
        json.add("replicas", static_cast<uint64_t>(replicas));
        json.add("requests_per_phase",
                 static_cast<uint64_t>(requests));
        json.add("concurrency", static_cast<uint64_t>(concurrency));
        double hit_rate_of[3] = {-1, -1, -1};
        uint64_t total_mismatches = 0, total_errors = 0;
        for (const ClusterPolicyResult &res : results) {
            const std::string p = routePolicyName(res.policy);
            auto num = [&](const char *key) {
                const auto it = res.stats.find(key);
                return it == res.stats.end()
                           ? 0.0
                           : std::strtod(it->second.c_str(), nullptr);
            };
            json.add(p + "_serial_rps", res.serial.rps);
            json.add(p + "_batched_rps", res.batched.rps);
            json.add(p + "_p50_ms", res.batched.latencyMs.p50);
            json.add(p + "_p95_ms", res.batched.latencyMs.p95);
            json.add(p + "_p99_ms", res.batched.latencyMs.p99);
            json.add(p + "_cache_hit_rate", num("cache_hit_rate"));
            json.add(p + "_server_windows",
                     static_cast<uint64_t>(num("windows")));
            json.add(p + "_batched_requests",
                     static_cast<uint64_t>(num("batched_requests")));
            json.add(p + "_restarts", res.restarts);
            json.add(p + "_errors",
                     res.serial.errors + res.batched.errors);
            json.add(p + "_verify_mismatches", res.mismatches);
            hit_rate_of[static_cast<int>(res.policy)] =
                num("cache_hit_rate");
            total_mismatches += res.mismatches;
            total_errors += res.serial.errors + res.batched.errors;
        }
        const double rr_rate =
            hit_rate_of[static_cast<int>(RoutePolicy::RoundRobin)];
        const double aff_rate =
            hit_rate_of[static_cast<int>(RoutePolicy::Affinity)];
        if (rr_rate >= 0 && aff_rate >= 0)
            json.add("affinity_vs_round_robin_hit_gain",
                     aff_rate - rr_rate);
        json.add("errors", total_errors);
        json.add("verified",
                 std::string(!verify                 ? "skipped"
                             : total_mismatches == 0 ? "true"
                                                     : "false"));
        json.add("verify_mismatches", total_mismatches);
        const std::string path = json.write();
        if (!path.empty())
            std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    return rc;
}

// ---- SLO mode -------------------------------------------------------------

/** Deadline (ms) stamped on the deliberately-unmeetable fraction of
 *  the SLO trace: far below any host's execution time for the heavy
 *  shapes, so the planner's shed decision is never borderline. */
constexpr uint64_t kHopelessDeadlineMs = 2;

/**
 * Deadline-bearing SLO trace: the regular seeded mixed trace with a
 * generous per-request deadline, except every 4th request is replaced
 * by a heavy full-size layer carrying a deadline no host can meet
 * (kHopelessDeadlineMs). A planned server sheds the hopeless quarter
 * at admission for ~zero cost; a FIFO server burns real execution
 * time on work that was already late, starving the meetable
 * requests' goodput — exactly the contrast BENCH_slo.json gates on.
 */
std::vector<ServiceRequest>
buildSloTrace(uint64_t seed, size_t count, bool quick,
              uint64_t meet_deadline_ms)
{
    std::vector<ServiceRequest> trace =
        buildTrace(seed, count, quick);
    Rng rng(seed ^ 0x510ull);
    for (size_t i = 0; i < trace.size(); ++i) {
        if (i % 4 == 3) {
            ServiceRequest &r = trace[i];
            if (quick)
                r.shape = {2048, 4096, 1024};
            else
                r.shape = {4096, 4096, 2048};
            r.samples = 96;
            r.wbits = 4;
            r.useStatic = false;
            r.seed = static_cast<uint64_t>(
                rng.uniformInt(1, 1 << 20));
            r.deadlineMs = kHopelessDeadlineMs;
        } else {
            trace[i].deadlineMs = meet_deadline_ms;
        }
    }
    return trace;
}

/** Everything measured for one scheduler policy in the SLO bench. */
struct SloOutcome
{
    std::string policy;
    PhaseResult open;
    uint64_t issued = 0;
    uint64_t served = 0;          ///< ok responses
    uint64_t withinDeadline = 0;  ///< served with latency <= deadline
    uint64_t missed = 0;          ///< served after the deadline
    uint64_t shedUnmeetable = 0;  ///< explicit deadline_unmeetable
    uint64_t shedOverloaded = 0;  ///< explicit queue-full shed
    uint64_t lost = 0;            ///< connection-closed replies
    uint64_t otherErrors = 0;
    uint64_t duplicates = 0;      ///< unsolicited response lines
    uint64_t mismatches = 0;
    double goodputRps = 0;        ///< withinDeadline / wallSecs
    double p99WithinMs = 0;       ///< p99 latency of in-deadline serves
    std::map<std::string, std::string> stats;
};

/** Spawn one `--scheduler <policy>` server, replay the SLO trace
 *  open-loop at `rate_rps`, classify every response into the ledger
 *  and byte-verify everything served. */
SloOutcome
runSloPolicy(const std::string &serve_cmd, const std::string &policy,
             const std::vector<ServiceRequest> &trace,
             const std::vector<ServiceRequest> &warm_trace,
             double rate_rps, bool verify, Verifier &verifier)
{
    SloOutcome out;
    out.policy = policy;
    pid_t child = -1;
    const int fd = spawnServer(serve_cmd, child);
    if (fd < 0) {
        out.lost = trace.size();
        return out;
    }
    {
        ServiceClient client(fd);
        const CallFn call = clientCall(client);
        // Warm both servers identically (engines + plan cache) so the
        // open-loop phase compares scheduling, not cache state.
        runClosedLoop(call, warm_trace, 4, nullptr);

        std::vector<ServiceRequest> sent;
        std::vector<double> lat_ms;
        out.open = runOpenLoop(call, trace, rate_rps, &sent, &lat_ms);
        out.issued = trace.size();
        std::vector<double> within_lat;
        for (size_t i = 0; i < trace.size(); ++i) {
            const std::string &line = out.open.responses[i];
            if (responseOk(line)) {
                ++out.served;
                const uint64_t dl = sent[i].deadlineMs;
                if (dl == 0 || lat_ms[i] <= static_cast<double>(dl)) {
                    ++out.withinDeadline;
                    within_lat.push_back(lat_ms[i]);
                } else {
                    ++out.missed;
                }
            } else if (isDeadlineUnmeetableLine(line)) {
                ++out.shedUnmeetable;
            } else if (isOverloadedLine(line)) {
                ++out.shedOverloaded;
            } else if (line.find("connection closed") !=
                       std::string::npos) {
                ++out.lost;
            } else {
                ++out.otherErrors;
            }
        }
        out.goodputRps = out.open.wallSecs > 0
                             ? out.withinDeadline / out.open.wallSecs
                             : 0.0;
        out.p99WithinMs =
            within_lat.empty()
                ? 0.0
                : percentileOf(std::move(within_lat), 99.0);
        if (verify)
            out.mismatches =
                verifyPhase(verifier, sent, out.open, policy.c_str());
        out.stats = fetchStats(call);
        out.duplicates = client.unsolicited();

        ServiceRequest req;
        req.op = "shutdown";
        req.id = g_next_id.fetch_add(1);
        client.call(req).get();
    }
    if (child > 0) {
        int status = 0;
        ::waitpid(child, &status, 0);
    }
    return out;
}

void
reportSloPolicy(const SloOutcome &o)
{
    std::fprintf(
        stderr,
        "  %-7s: %llu/%llu within deadline (goodput %.1f req/s), "
        "%llu late, shed %llu unmeetable + %llu overloaded, "
        "%llu lost, %llu errors, p99-within %.2f ms\n",
        o.policy.c_str(),
        static_cast<unsigned long long>(o.withinDeadline),
        static_cast<unsigned long long>(o.issued), o.goodputRps,
        static_cast<unsigned long long>(o.missed),
        static_cast<unsigned long long>(o.shedUnmeetable),
        static_cast<unsigned long long>(o.shedOverloaded),
        static_cast<unsigned long long>(o.lost),
        static_cast<unsigned long long>(o.otherErrors),
        o.p99WithinMs);
}

/**
 * SLO benchmark: the same deadline-bearing overload trace replayed
 * open-loop against a planned-scheduler server and a FIFO server
 * (fresh process each), plus a serial pass that measures per-request
 * host time for the cost-model error percentiles. Emits
 * BENCH_slo.json and enforces the SLO gates:
 *   - planned goodput (in-deadline serves per second) beats FIFO's;
 *   - the planner sheds exactly the hopeless fraction, explicitly
 *     (deadline_unmeetable), and FIFO never sheds on deadline;
 *   - zero lost or duplicated responses under either policy;
 *   - every served response byte-identical to the serial oracle;
 *   - the planner's client-visible shed count matches the server's
 *     own shed_unmeetable ledger.
 */
int
runSloMode(const std::string &serve_bin, size_t requests,
           uint64_t seed, bool quick, bool json_out, bool verify,
           double rate_flag, uint64_t deadline_ms,
           const std::string &cost_model_path)
{
    if (deadline_ms == 0)
        deadline_ms = quick ? 2000 : 8000;
    const std::vector<ServiceRequest> trace =
        buildSloTrace(seed, requests, quick, deadline_ms);
    // Deadline-free copy: warmup and the serial timing pass must
    // never shed (a shed request would leave its engine cold).
    std::vector<ServiceRequest> warm_trace = trace;
    for (ServiceRequest &r : warm_trace)
        r.deadlineMs = 0;
    uint64_t hopeless = 0;
    for (const ServiceRequest &r : trace)
        hopeless += r.deadlineMs == kHopelessDeadlineMs ? 1 : 0;

    CostModel model = CostModel::builtin();
    if (!cost_model_path.empty()) {
        std::string err;
        if (!model.loadFile(cost_model_path, &err)) {
            std::fprintf(stderr, "--cost-model: %s\n", err.c_str());
            return 2;
        }
    }

    // Serial pass (in-process, single-threaded engines — the same
    // executor the calibration battery timed): per-request host ms
    // for the cost-model error percentiles, and the capacity estimate
    // the offered overload rate is derived from.
    std::vector<double> errs;
    double serial_wall = 0;
    {
        Verifier timing_oracle;
        for (const ServiceRequest &r : warm_trace)
            timing_oracle.expected(r); // warm engines + memo
        std::map<EngineKey, std::unique_ptr<TransArrayAccelerator>>
            engines;
        const double t0 = nowSeconds();
        for (const ServiceRequest &r : warm_trace) {
            const EngineKey key = engineKeyOf(r);
            auto it = engines.find(key);
            if (it == engines.end())
                it = engines
                         .emplace(
                             key,
                             std::make_unique<TransArrayAccelerator>(
                                 engineConfig(key, 1)))
                         .first;
            const double s0 = nowSeconds();
            it->second->runShape(r.shape, r.wbits, r.seed);
            const double ms = (nowSeconds() - s0) * 1e3;
            if (ms > 0)
                errs.push_back(
                    std::abs(model.predictMsAt(r, 0.0) - ms) / ms);
        }
        serial_wall = nowSeconds() - t0;
    }
    const double err_p50 = percentileOf(errs, 50.0);
    const double err_p90 = percentileOf(errs, 90.0);
    const double err_p99 = percentileOf(errs, 99.0);
    std::fprintf(stderr,
                 "ta_loadgen: slo trace %zu (%llu hopeless), serial "
                 "capacity %.1f req/s, cost-model err p50/p90/p99 "
                 "%.3f/%.3f/%.3f\n",
                 trace.size(),
                 static_cast<unsigned long long>(hopeless),
                 trace.size() / serial_wall, err_p50, err_p90,
                 err_p99);

    // Offered overload: twice the measured serial capacity unless the
    // caller pinned a rate. Identical for both policies.
    const double rate =
        rate_flag > 0 ? rate_flag
                      : std::max(4.0, 2.0 * trace.size() / serial_wall);

    Verifier verifier; // shared: memoizes across both policies
    const std::string cm_arg =
        cost_model_path.empty() ? ""
                                : " --cost-model " + cost_model_path;
    SloOutcome planned = runSloPolicy(
        serve_bin + " --scheduler planned" + cm_arg, "planned", trace,
        warm_trace, rate, verify, verifier);
    reportSloPolicy(planned);
    SloOutcome fifo =
        runSloPolicy(serve_bin + " --scheduler fifo" + cm_arg, "fifo",
                     trace, warm_trace, rate, verify, verifier);
    reportSloPolicy(fifo);

    // ---- gates ----
    int rc = 0;
    auto fail = [&rc](const char *what) {
        std::fprintf(stderr, "SLO GATE FAILED: %s\n", what);
        rc = 1;
    };
    if (planned.goodputRps <= fifo.goodputRps)
        fail("planned goodput must beat fifo goodput");
    if (planned.shedUnmeetable != hopeless)
        fail("planner must shed exactly the hopeless fraction");
    if (fifo.shedUnmeetable != 0)
        fail("fifo must never shed on deadline");
    for (const SloOutcome *o : {&planned, &fifo}) {
        if (o->lost > 0 || o->duplicates > 0)
            fail("zero lost/duplicated responses required");
        if (o->otherErrors > 0)
            fail("unexplained error responses");
        if (o->mismatches > 0)
            fail("byte-identity verification failed");
        if (o->served + o->shedUnmeetable + o->shedOverloaded +
                o->lost + o->otherErrors !=
            o->issued)
            fail("response ledger does not balance");
    }
    const uint64_t server_shed = static_cast<uint64_t>(std::strtoull(
        statOf(planned.stats, "shed_unmeetable").c_str(), nullptr,
        10));
    if (server_shed != planned.shedUnmeetable)
        fail("server shed ledger disagrees with client count");

    if (json_out) {
        BenchJson json("slo");
        json.add("benchmark", std::string("slo"));
        json.add("schema_version", static_cast<uint64_t>(2));
        json.add("quick", static_cast<uint64_t>(quick ? 1 : 0));
        json.add("requests", static_cast<uint64_t>(trace.size()));
        json.add("hopeless_requests", hopeless);
        json.add("deadline_ms", deadline_ms);
        json.add("hopeless_deadline_ms", kHopelessDeadlineMs);
        json.add("offered_rps", rate);
        json.add("serial_capacity_rps", trace.size() / serial_wall);
        json.add("cost_err_p50", err_p50);
        json.add("cost_err_p90", err_p90);
        json.add("cost_err_p99", err_p99);
        json.add("cost_model",
                 std::string(cost_model_path.empty()
                                 ? "builtin"
                                 : cost_model_path.c_str()));
        for (const SloOutcome *o : {&planned, &fifo}) {
            const std::string p = o->policy;
            json.add(p + "_issued", o->issued);
            json.add(p + "_served", o->served);
            json.add(p + "_within_deadline", o->withinDeadline);
            json.add(p + "_missed", o->missed);
            json.add(p + "_goodput_rps", o->goodputRps);
            json.add(p + "_p99_within_deadline_ms", o->p99WithinMs);
            json.add(p + "_p99_ms", o->open.latencyMs.p99);
            json.add(p + "_shed_unmeetable", o->shedUnmeetable);
            json.add(p + "_shed_overloaded", o->shedOverloaded);
            json.add(p + "_lost", o->lost);
            json.add(p + "_duplicates", o->duplicates);
            json.add(p + "_errors", o->otherErrors);
            json.add(p + "_verify_mismatches", o->mismatches);
            const double miss_den =
                static_cast<double>(o->served + o->shedUnmeetable +
                                    o->shedOverloaded);
            json.add(p + "_miss_rate",
                     miss_den > 0
                         ? (o->missed + o->shedUnmeetable +
                            o->shedOverloaded) /
                               miss_den
                         : 0.0);
        }
        json.add("planned_beats_fifo",
                 static_cast<uint64_t>(
                     planned.goodputRps > fifo.goodputRps ? 1 : 0));
        json.add("verified",
                 std::string(!verify ? "skipped"
                             : planned.mismatches + fifo.mismatches ==
                                     0
                                 ? "true"
                                 : "false"));
        json.add("pass", static_cast<uint64_t>(rc == 0 ? 1 : 0));
        const std::string path = json.write();
        if (!path.empty())
            std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    return rc;
}

// ---- storage mode ---------------------------------------------------------

/**
 * Time one spawn-to-first-response round trip (ms): process startup,
 * catalog open (when the command has one) and the first request's
 * full service. Minimum of `trials` fresh processes — fork/exec noise
 * easily exceeds the synthesis-vs-pin delta a single trial measures.
 * Returns a negative value on spawn failure; `line_out` holds the
 * last trial's response line for the byte-identity check.
 */
double
coldFirstResponseMs(const std::string &serve_cmd,
                    const ServiceRequest &req, int trials,
                    std::string &line_out)
{
    double best = -1;
    for (int t = 0; t < trials; ++t) {
        pid_t child = -1;
        const double t0 = nowSeconds();
        const int fd = spawnServer(serve_cmd, child);
        if (fd < 0)
            return -1;
        {
            ServiceClient client(fd);
            ServiceRequest r = req;
            r.id = g_next_id.fetch_add(1);
            const Reply reply = client.call(r).get();
            const double ms = (reply.recvTime - t0) * 1e3;
            line_out = reply.line;
            if (!responseOk(line_out))
                return -1;
            if (best < 0 || ms < best)
                best = ms;
            ServiceRequest sd;
            sd.op = "shutdown";
            sd.id = g_next_id.fetch_add(1);
            client.call(sd).get();
        }
        if (child > 0) {
            int status = 0;
            ::waitpid(child, &status, 0);
        }
    }
    return best;
}

/**
 * Storage benchmark (--catalog): replay a named packed model against
 * a `ta_serve --catalog` server and emit BENCH_storage.json. The
 * trace is built from the catalog itself (the model's actual packed
 * planes, enumerated in-process with the same BufferManager the
 * server uses), so every request exercises the mmap + pin path; the
 * byte-identity oracle still synthesizes, which is exactly the
 * contract under test — catalog bytes must equal synthesis bytes.
 * Measures cold-open first-response latency (catalog server) against
 * a fresh-synthesis cold start (plain server, same request sans
 * model), warm serial/batched throughput, and the server's buffer
 * hit/eviction ledger.
 */
int
runStorageMode(const std::string &serve_bin,
               const std::string &catalog_dir, std::string model_name,
               size_t requests, size_t concurrency, uint64_t seed,
               bool quick, bool json_out, bool verify)
{
    BufferManager cat;
    std::string err;
    if (!cat.openCatalog(catalog_dir, &err)) {
        std::fprintf(stderr, "ta_loadgen: --catalog: %s\n",
                     err.c_str());
        return 2;
    }
    if (model_name.empty())
        model_name = cat.models().front()->name;
    const CatalogModel *model = cat.findModel(model_name);
    if (model == nullptr) {
        std::fprintf(stderr,
                     "ta_loadgen: --model: no model '%s' in %s\n",
                     model_name.c_str(), catalog_dir.c_str());
        return 2;
    }

    // Round-robin over the model's layers, shuffled by the seed so
    // page-pin order varies run to run but the set of planes doesn't.
    Rng rng(seed);
    std::vector<ServiceRequest> trace;
    trace.reserve(requests);
    for (size_t i = 0; i < requests; ++i) {
        const size_t pick =
            i < model->entries.size()
                ? i
                : static_cast<size_t>(rng.uniformInt(
                      0, static_cast<int>(model->entries.size()) - 1));
        const CatalogEntry &e = model->entries[pick];
        ServiceRequest r;
        r.shape = {e.n, e.k, e.m};
        r.wbits = e.wbits;
        r.seed = e.seed;
        r.samples = quick ? 16 : 64;
        r.model = model->name;
        trace.push_back(r);
    }

    // Cold probe: the model's largest plane, where the synthesis the
    // catalog path skips is most expensive.
    size_t cold_idx = 0;
    for (size_t i = 0; i < model->entries.size(); ++i)
        if (model->entries[i].dataBytes >
            model->entries[cold_idx].dataBytes)
            cold_idx = i;
    ServiceRequest cold_req = trace[0];
    {
        const CatalogEntry &e = model->entries[cold_idx];
        cold_req.shape = {e.n, e.k, e.m};
        cold_req.wbits = e.wbits;
        cold_req.seed = e.seed;
    }
    ServiceRequest cold_synth = cold_req;
    cold_synth.model.clear();

    const std::string catalog_cmd =
        serve_bin + " --catalog " + catalog_dir;
    const int trials = 3;
    std::string cold_line, synth_line;
    const double cold_open_ms =
        coldFirstResponseMs(catalog_cmd, cold_req, trials, cold_line);
    const double synth_cold_ms = coldFirstResponseMs(
        serve_bin, cold_synth, trials, synth_line);
    int rc = 0;
    if (cold_open_ms < 0 || synth_cold_ms < 0) {
        std::fprintf(stderr,
                     "ta_loadgen: cold-start probe failed (catalog "
                     "%.2f ms, synthesis %.2f ms)\n",
                     cold_open_ms, synth_cold_ms);
        return 1;
    }
    // Byte-compare past the id field — the probes carry fresh ids.
    const auto afterId = [](const std::string &line) {
        const size_t comma = line.find(',');
        return comma == std::string::npos ? line
                                          : line.substr(comma);
    };
    if (afterId(cold_line) != afterId(synth_line)) {
        std::fprintf(stderr,
                     "VERIFY MISMATCH (cold start):\n  catalog   "
                     "%s\n  synthesis %s\n",
                     cold_line.c_str(), synth_line.c_str());
        rc = 1;
    }
    std::fprintf(stderr,
                 "ta_loadgen: cold first response (best of %d): "
                 "catalog %.2f ms, synthesis %.2f ms (%.2fx)\n",
                 trials, cold_open_ms, synth_cold_ms,
                 synth_cold_ms / cold_open_ms);

    // Warm phases against one long-lived catalog server.
    pid_t child = -1;
    const int fd = spawnServer(catalog_cmd, child);
    if (fd < 0)
        return 1;
    PhaseResult serial, batched;
    uint64_t mismatches = 0;
    std::map<std::string, std::string> sstats;
    {
        ServiceClient client(fd);
        const CallFn call = clientCall(client);
        std::fprintf(stderr,
                     "ta_loadgen: model '%s' (%zu layers), %zu "
                     "requests/phase, warmup...\n",
                     model->name.c_str(), model->entries.size(),
                     requests);
        runClosedLoop(call, trace, std::max<size_t>(4, concurrency),
                      nullptr);
        std::vector<ServiceRequest> serial_sent, batched_sent;
        serial = runClosedLoop(call, trace, 1, &serial_sent);
        reportClosedLoop(1, serial);
        batched = runClosedLoop(call, trace, concurrency,
                                &batched_sent);
        reportClosedLoop(concurrency, batched);
        if (serial.errors + batched.errors > 0) {
            std::fprintf(stderr,
                         "ta_loadgen: %llu closed-loop error "
                         "response(s)\n",
                         static_cast<unsigned long long>(
                             serial.errors + batched.errors));
            rc = 1;
        }
        if (verify) {
            Verifier verifier;
            mismatches +=
                verifyPhase(verifier, serial_sent, serial, "serial");
            mismatches += verifyPhase(verifier, batched_sent, batched,
                                      "batched");
            std::fprintf(stderr,
                         "  verify: %llu mismatches (catalog bytes "
                         "vs synthesis oracle)\n",
                         static_cast<unsigned long long>(mismatches));
            if (mismatches > 0)
                rc = 1;
        }
        sstats = fetchStats(call);
        ServiceRequest sd;
        sd.op = "shutdown";
        sd.id = g_next_id.fetch_add(1);
        client.call(sd).get();
    }
    if (child > 0) {
        int status = 0;
        ::waitpid(child, &status, 0);
    }

    auto num = [&](const char *key) {
        return std::strtod(statOf(sstats, key).c_str(), nullptr);
    };
    const double hits = num("buffer_hits");
    const double misses = num("buffer_misses");
    const double hit_rate =
        hits + misses > 0 ? hits / (hits + misses) : 0.0;
    std::fprintf(
        stderr,
        "  server: buffer hit rate %.3f (%.0f hits, %.0f misses, "
        "%.0f evictions), %.0f model(s), %.0f bytes mapped\n",
        hit_rate, hits, misses, num("buffer_evictions"),
        num("catalog_models"), num("storage_bytes_mapped"));

    const bool cold_beats = cold_open_ms < synth_cold_ms;
    if (!cold_beats)
        std::fprintf(stderr,
                     "ta_loadgen: WARNING cold-open did not beat "
                     "fresh synthesis\n");

    if (json_out) {
        BenchJson json("storage");
        json.add("benchmark", std::string("storage"));
        json.add("schema_version", static_cast<uint64_t>(1));
        json.add("quick", static_cast<uint64_t>(quick ? 1 : 0));
        json.add("model", model->name);
        json.add("model_layers",
                 static_cast<uint64_t>(model->entries.size()));
        json.add("catalog_models",
                 static_cast<uint64_t>(num("catalog_models")));
        json.add("storage_bytes_mapped",
                 static_cast<uint64_t>(num("storage_bytes_mapped")));
        json.add("requests_per_phase",
                 static_cast<uint64_t>(requests));
        json.add("concurrency", static_cast<uint64_t>(concurrency));
        json.add("cold_open_first_response_ms", cold_open_ms);
        json.add("synthesis_cold_first_response_ms", synth_cold_ms);
        json.add("cold_open_speedup", synth_cold_ms / cold_open_ms);
        json.add("cold_open_beats_synthesis",
                 static_cast<uint64_t>(cold_beats ? 1 : 0));
        json.add("serial_rps", serial.rps);
        json.add("batched_rps", batched.rps);
        json.add("batched_p50_ms", batched.latencyMs.p50);
        json.add("batched_p95_ms", batched.latencyMs.p95);
        json.add("batched_p99_ms", batched.latencyMs.p99);
        json.add("buffer_hits", static_cast<uint64_t>(hits));
        json.add("buffer_misses", static_cast<uint64_t>(misses));
        json.add("buffer_evictions",
                 static_cast<uint64_t>(num("buffer_evictions")));
        json.add("buffer_hit_rate", hit_rate);
        json.add("errors", serial.errors + batched.errors);
        json.add("verified",
                 std::string(!verify          ? "skipped"
                             : mismatches == 0 ? "true"
                                               : "false"));
        json.add("verify_mismatches", mismatches);
        json.add("pass",
                 static_cast<uint64_t>(rc == 0 && cold_beats ? 1 : 0));
        const std::string path = json.write();
        if (!path.empty())
            std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    return rc;
}

// ---- observability overhead mode ------------------------------------------

/** Response line with the per-run `id` echo stripped: everything from
 *  the first comma on. Two runs of the same request differ only in
 *  the id they were issued under. */
std::string
afterIdField(const std::string &line)
{
    const size_t comma = line.find(',');
    return comma == std::string::npos ? line : line.substr(comma);
}

struct ObsPhase
{
    double rps = 0;
    double p99Ms = 0;
    uint64_t errors = 0;
    std::vector<std::string> responses;
    std::vector<ServiceRequest> sent;
};

/**
 * One --obs measurement phase: spawn `cmd`, warm it, run the batched
 * closed loop once, shut it down. With `traced` every request carries
 * a fresh trace id (the server records spans for all of them); the
 * responses must come back byte-identical either way.
 */
ObsPhase
runObsPhase(const std::string &cmd,
            const std::vector<ServiceRequest> &trace,
            size_t concurrency, bool traced)
{
    ObsPhase out;
    pid_t child = -1;
    const int fd = spawnServer(cmd, child);
    if (fd < 0) {
        out.errors = trace.size();
        return out;
    }
    {
        ServiceClient client(fd);
        const CallFn call = clientCall(client);
        g_stamp_trace_ids.store(traced);
        runClosedLoop(call, trace, std::max<size_t>(4, concurrency),
                      nullptr);
        PhaseResult res =
            runClosedLoop(call, trace, concurrency, &out.sent);
        g_stamp_trace_ids.store(false);
        out.rps = res.rps;
        out.p99Ms = res.latencyMs.p99;
        out.errors = res.errors;
        out.responses = std::move(res.responses);
        ServiceRequest sd;
        sd.op = "shutdown";
        sd.id = g_next_id.fetch_add(1);
        client.call(sd).get();
    }
    if (child > 0) {
        int status = 0;
        ::waitpid(child, &status, 0);
    }
    return out;
}

/** Spans (`"ph":"X"` events) and total bytes of one trace file.
 *  Returns false when the file is missing or empty. */
bool
traceFileStats(const std::string &path, uint64_t &spans,
               uint64_t &bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    if (text.empty())
        return false;
    bytes = text.size();
    spans = 0;
    const std::string needle = "\"ph\":\"X\"";
    for (size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++spans;
    return true;
}

/**
 * Observability overhead benchmark (--obs): the same seeded trace
 * replayed against a plain server and a `--trace-out` server,
 * alternating untraced/traced across `trials` rounds (best-of to
 * shave scheduler noise), gating the tracing tax and the determinism
 * contract. Emits BENCH_obs.json with the gates:
 *   - every traced response byte-identical to its untraced twin
 *     (modulo the id echo) AND to the in-process serial oracle;
 *   - traced throughput >= 95% of untraced throughput;
 *   - the traced server actually recorded spans (the phase measured
 *     tracing, not a silently-disabled tracer).
 */
int
runObsMode(const std::string &serve_bin, size_t requests,
           size_t concurrency, uint64_t seed, bool quick,
           bool json_out, bool verify)
{
    const std::vector<ServiceRequest> trace =
        buildTrace(seed, requests, quick);
    const std::string trace_file = "obs_bench_trace.json";
    const std::string base_cmd =
        serve_bin + " --window 8 --sessions 2";
    const std::string traced_cmd =
        base_cmd + " --trace-out " + trace_file;
    const int trials = 3;

    double untraced_rps = 0, traced_rps = 0;
    double untraced_p99 = 0, traced_p99 = 0;
    double best_overhead = 1e30;
    uint64_t errors = 0, mismatched_bytes = 0, mismatches = 0;
    Verifier verifier;
    ObsPhase last_untraced, last_traced;
    for (int t = 0; t < trials; ++t) {
        std::remove(trace_file.c_str());
        ObsPhase untraced =
            runObsPhase(base_cmd, trace, concurrency, false);
        ObsPhase traced =
            runObsPhase(traced_cmd, trace, concurrency, true);
        std::fprintf(stderr,
                     "ta_loadgen: obs trial %d: untraced %.1f req/s "
                     "(p99 %.2f ms), traced %.1f req/s (p99 %.2f "
                     "ms)\n",
                     t + 1, untraced.rps, untraced.p99Ms, traced.rps,
                     traced.p99Ms);
        errors += untraced.errors + traced.errors;
        // Overhead is judged within a trial — the two phases ran back
        // to back under the same machine conditions — and the best
        // pairing across trials is kept. Comparing the fastest
        // untraced phase of one trial against the fastest traced
        // phase of another measures host noise, not tracing cost.
        const double trial_overhead =
            untraced.rps > 0
                ? 100.0 * (1.0 - traced.rps / untraced.rps)
                : 100.0;
        if (trial_overhead < best_overhead) {
            best_overhead = trial_overhead;
            untraced_rps = untraced.rps;
            traced_rps = traced.rps;
            untraced_p99 = untraced.p99Ms;
            traced_p99 = traced.p99Ms;
        }
        // Byte-identity: the trace field must be invisible in
        // response bytes — traced response i == untraced response i
        // past the per-run id echo.
        for (size_t i = 0; i < trace.size(); ++i)
            if (afterIdField(traced.responses[i]) !=
                afterIdField(untraced.responses[i])) {
                if (++mismatched_bytes <= 3)
                    std::fprintf(
                        stderr,
                        "OBS MISMATCH (trial %d, trace %zu):\n"
                        "  traced   %s\n  untraced %s\n",
                        t + 1, i, traced.responses[i].c_str(),
                        untraced.responses[i].c_str());
            }
        last_untraced = std::move(untraced);
        last_traced = std::move(traced);
    }
    if (verify) {
        const auto verifyObs = [&](const ObsPhase &ph,
                                   const char *name) {
            PhaseResult pr;
            pr.responses = ph.responses;
            return verifyPhase(verifier, ph.sent, pr, name);
        };
        mismatches += verifyObs(last_untraced, "obs-untraced");
        mismatches += verifyObs(last_traced, "obs-traced");
    }

    // The traced server flushed its span file at shutdown: per-span
    // cost on disk, and proof the phase really traced.
    uint64_t spans = 0, trace_bytes = 0;
    const bool have_trace =
        traceFileStats(trace_file, spans, trace_bytes);
    const double bytes_per_span =
        spans > 0 ? static_cast<double>(trace_bytes) /
                        static_cast<double>(spans)
                  : 0.0;

    const double overhead_pct =
        untraced_rps > 0
            ? 100.0 * (1.0 - traced_rps / untraced_rps)
            : 100.0;
    const bool responses_identical =
        mismatched_bytes == 0 && mismatches == 0 && errors == 0;

    int rc = 0;
    auto fail = [&rc](const char *what) {
        std::fprintf(stderr, "OBS GATE FAILED: %s\n", what);
        rc = 1;
    };
    if (!responses_identical)
        fail("responses must be byte-identical traced vs untraced");
    if (traced_rps < 0.95 * untraced_rps)
        fail("tracing overhead exceeds 5% of throughput");
    if (!have_trace || spans == 0)
        fail("traced server recorded no spans");

    std::fprintf(stderr,
                 "ta_loadgen: obs: untraced %.1f req/s, traced %.1f "
                 "req/s (%.2f%% overhead), p99 %+.2f ms, %llu "
                 "span(s), %.1f bytes/span: %s\n",
                 untraced_rps, traced_rps, overhead_pct,
                 traced_p99 - untraced_p99,
                 static_cast<unsigned long long>(spans),
                 bytes_per_span, rc == 0 ? "PASS" : "FAIL");

    if (json_out) {
        BenchJson json("obs");
        json.add("benchmark", std::string("obs"));
        json.add("schema_version", static_cast<uint64_t>(1));
        json.add("quick", static_cast<uint64_t>(quick ? 1 : 0));
        json.add("requests_per_phase",
                 static_cast<uint64_t>(trace.size()));
        json.add("concurrency", static_cast<uint64_t>(concurrency));
        json.add("trials", static_cast<uint64_t>(trials));
        json.add("untraced_rps", untraced_rps);
        json.add("traced_rps", traced_rps);
        json.add("overhead_pct", overhead_pct);
        json.add("untraced_p99_ms", untraced_p99);
        json.add("traced_p99_ms", traced_p99);
        json.add("p99_delta_ms", traced_p99 - untraced_p99);
        json.add("spans", spans);
        json.add("trace_bytes", trace_bytes);
        json.add("bytes_per_span", bytes_per_span);
        json.add("responses_identical",
                 static_cast<uint64_t>(responses_identical ? 1 : 0));
        json.add("errors", errors);
        json.add("verify_mismatches", mismatches);
        json.add("verified",
                 std::string(!verify          ? "skipped"
                             : mismatches == 0 ? "true"
                                               : "false"));
        json.add("pass", static_cast<uint64_t>(rc == 0 ? 1 : 0));
        const std::string path = json.write();
        if (!path.empty())
            std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    return rc;
}

// ---- scenario mode --------------------------------------------------------

/**
 * Per-index delivery ledger for one scenario run. Every responder
 * firing lands here, including late or duplicate ones — the gates
 * need to *see* a duplicated response, not have it masked by a
 * future that can only complete once.
 */
struct ScenarioLedger
{
    std::mutex mu;
    std::vector<int> deliveries;
    std::vector<std::string> lines; ///< first response per index
    std::vector<double> latMs;
    std::vector<ServiceRequest> sent;
    std::vector<std::promise<void>> first; ///< set on first delivery

    explicit ScenarioLedger(size_t n)
        : deliveries(n, 0), lines(n), latMs(n, 0), sent(n), first(n)
    {
    }

    void
    record(size_t i, const std::string &line, double lat_ms)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (++deliveries[i] == 1) {
            lines[i] = line;
            latMs[i] = lat_ms;
            first[i].set_value();
        }
    }
};

/** Issue trace[i] into the router, recording into the ledger. */
void
scenarioIssue(Router &router, const ScenarioSpec &spec,
              FaultInjector &injector,
              const std::shared_ptr<ScenarioLedger> &ledger, size_t i)
{
    ServiceRequest req = spec.trace[i];
    req.id = g_next_id.fetch_add(1);
    {
        std::lock_guard<std::mutex> lock(ledger->mu);
        ledger->sent[i] = req;
    }
    injector.onRequestIssued(i);
    const double sent = nowSeconds();
    router.submit(req, [ledger, i, sent](const std::string &line) {
        ledger->record(i, line, (nowSeconds() - sent) * 1e3);
    });
}

/** One slow client's transcript (verified after the threads join —
 *  the Verifier is not thread-safe). */
struct SlowClientResult
{
    std::vector<ServiceRequest> sent;
    std::vector<std::string> lines;
    uint64_t lost = 0;
};

/**
 * Pipeline `spec.slowClientRequests` requests on one connection to
 * replica `slot`, reading responses with `spec.stallReadMs` sleeps —
 * the server keeps the connection writable (or blocks its writer)
 * while the rest of the cluster must stay unaffected.
 */
SlowClientResult
runSlowClient(const ScenarioSpec &spec, uint16_t port, uint64_t seed,
              bool quick, std::chrono::seconds deadline)
{
    SlowClientResult res;
    const int fd = connectTcp(port);
    if (fd < 0) {
        res.lost = spec.slowClientRequests;
        return res;
    }
    ServiceClient client(fd, spec.stallReadMs);
    const std::vector<ServiceRequest> trace =
        scenarioTrace(seed, spec.slowClientRequests, quick, 6, 0.0);
    std::vector<std::future<Reply>> futures;
    for (ServiceRequest req : trace) {
        req.id = g_next_id.fetch_add(1);
        res.sent.push_back(req);
        futures.push_back(client.call(req));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        if (futures[i].wait_for(deadline) !=
            std::future_status::ready) {
            ++res.lost;
            res.lines.emplace_back();
            continue;
        }
        res.lines.push_back(futures[i].get().line);
    }
    return res;
}

/** Wait (bounded) for replica `slot`'s persisted plan-cache file to
 *  appear — corrupt_cache faults need a file to corrupt. */
bool
waitForCacheFile(const std::string &base, int slot, int timeout_ms)
{
    const std::string path = base + "." + std::to_string(slot);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    struct stat st;
    while (std::chrono::steady_clock::now() < deadline) {
        if (::stat(path.c_str(), &st) == 0 && st.st_size > 0)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::fprintf(stderr,
                 "ta_loadgen: no plan-cache file at %s after %d ms\n",
                 path.c_str(), timeout_ms);
    return false;
}

/**
 * Replay one scenario against a fresh cluster and classify every
 * request: served (byte-verified), shed (explicit overload), error,
 * lost or duplicated. Bounded waits throughout — a wedged cluster
 * surfaces as lost requests and a failed gate, never a hang.
 */
ScenarioOutcome
runOneScenario(const std::string &serve_bin, const ScenarioSpec &spec,
               uint64_t seed, bool quick, Verifier *verifier)
{
    ScenarioOutcome out;
    const size_t n = spec.trace.size();
    out.requests = n;
    const auto perRequestDeadline =
        std::chrono::seconds(quick ? 60 : 120);

    const std::string cacheBase =
        spec.needsCacheFiles
            ? "scenario_cache_" + spec.name + ".bin"
            : "";
    const int maxSlots = std::max(spec.replicas, spec.maxReplicas);
    for (int i = 0; i < maxSlots && !cacheBase.empty(); ++i)
        std::remove((cacheBase + "." + std::to_string(i)).c_str());

    ReplicaProcessConfig rcfg;
    rcfg.serveBinary = serve_bin;
    rcfg.count = spec.replicas;
    rcfg.serveArgs = {"--window", "8", "--sessions", "2"};
    if (spec.queueCap > 0) {
        rcfg.serveArgs.push_back("--queue-cap");
        rcfg.serveArgs.push_back(std::to_string(spec.queueCap));
    }
    rcfg.planCacheBase = cacheBase;
    rcfg.cacheSaveIntervalSec = spec.cacheSaveIntervalSec;
    rcfg.backoffInitialMs = 50;
    if (spec.maxReplicas > spec.replicas) {
        rcfg.autoscale.maxReplicas = spec.maxReplicas;
        rcfg.autoscale.upDepthPerReplica = 4;
        rcfg.autoscale.downDepthPerReplica = 1;
        rcfg.autoscale.holdMs = 100;
        rcfg.autoscale.cooldownMs = 400;
    }
    ReplicaManager manager(rcfg);
    if (!manager.start()) {
        out.lost = n;
        out.failures.push_back("cluster failed to start");
        return out;
    }

    RouterConfig rtcfg;
    rtcfg.policy = RoutePolicy::Affinity;
    rtcfg.requestTimeoutMs = spec.requestTimeoutMs;
    rtcfg.maxRedispatch = spec.maxRedispatch;
    rtcfg.backoffSeed = seed;
    Router router(rtcfg, manager);
    router.start();
    const CallFn call = routerCall(router);

    FaultInjector injector(manager, spec.faults, seed ^ 0x5ceull,
                           cacheBase);

    if (spec.warmup) {
        std::vector<ServiceRequest> warm(
            spec.trace.begin(),
            spec.trace.begin() +
                static_cast<ptrdiff_t>(std::min<size_t>(24, n)));
        runClosedLoop(call, warm, 4, nullptr);
    }
    // corrupt_cache faults need an on-disk snapshot to flip a byte
    // in: wait for the victim's periodic save after the warmup.
    for (const FaultEvent &ev : spec.faults.events)
        if (ev.kind == FaultKind::CorruptCache && !cacheBase.empty())
            waitForCacheFile(cacheBase, ev.slot >= 0 ? ev.slot : 0,
                             15000);

    const auto ledger = std::make_shared<ScenarioLedger>(n);
    std::vector<std::future<void>> firsts;
    firsts.reserve(n);
    for (size_t i = 0; i < n; ++i)
        firsts.push_back(ledger->first[i].get_future());

    // Slow-client sidecars run concurrently with the main trace.
    std::vector<SlowClientResult> slowResults(
        static_cast<size_t>(spec.slowClients));
    std::vector<std::thread> slowThreads;
    for (int c = 0; c < spec.slowClients; ++c) {
        const int slot = c % spec.replicas;
        const ReplicaEndpoint ep = manager.endpoint(slot);
        slowThreads.emplace_back([&, c, ep] {
            slowResults[static_cast<size_t>(c)] = runSlowClient(
                spec, ep.port, seed + 1000 + static_cast<uint64_t>(c),
                quick, perRequestDeadline);
        });
    }

    const double t0 = nowSeconds();
    if (spec.openLoop) {
        for (size_t i = 0; i < n; ++i) {
            const double due = t0 + spec.arrivalSec[i];
            while (nowSeconds() < due)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            scenarioIssue(router, spec, injector, ledger, i);
        }
        const auto absDeadline =
            std::chrono::steady_clock::now() + perRequestDeadline;
        for (size_t i = 0; i < n; ++i)
            firsts[i].wait_until(absDeadline);
    } else {
        std::atomic<size_t> next{0};
        std::vector<std::thread> workers;
        for (size_t w = 0; w < spec.concurrency; ++w) {
            workers.emplace_back([&] {
                while (true) {
                    const size_t i = next.fetch_add(1);
                    if (i >= n)
                        return;
                    scenarioIssue(router, spec, injector, ledger, i);
                    firsts[i].wait_for(perRequestDeadline);
                }
            });
        }
        for (std::thread &t : workers)
            t.join();
    }
    for (std::thread &t : slowThreads)
        t.join();
    out.wallSec = nowSeconds() - t0;
    out.rps = out.wallSec > 0 ? n / out.wallSec : 0;

    out.restarts = manager.restarts();
    out.scaleUps = manager.scaleUps();
    out.scaleDowns = manager.scaleDowns();
    out.abandoned = static_cast<uint64_t>(manager.abandonedCount());

    // Stopping the router fails anything still pending through the
    // responders (counted as errors, not lost), so the ledger is
    // complete once stop() returns.
    router.stop();
    manager.stop();

    std::vector<double> lat;
    {
        std::lock_guard<std::mutex> lock(ledger->mu);
        for (size_t i = 0; i < n; ++i) {
            const int d = ledger->deliveries[i];
            if (d == 0) {
                ++out.lost;
                continue;
            }
            if (d > 1)
                ++out.duplicated;
            const std::string &line = ledger->lines[i];
            if (responseOk(line)) {
                ++out.served;
                lat.push_back(ledger->latMs[i]);
                if (verifier != nullptr &&
                    line != verifier->expected(ledger->sent[i])) {
                    if (++out.mismatches <= 3)
                        std::fprintf(
                            stderr,
                            "VERIFY MISMATCH (%s, trace %zu):\n"
                            "  got      %s\n",
                            spec.name.c_str(), i, line.c_str());
                }
            } else if (isOverloadedLine(line)) {
                ++out.shed;
            } else {
                if (++out.errors <= 3)
                    std::fprintf(stderr,
                                 "  error response (%s, trace %zu): "
                                 "%s\n",
                                 spec.name.c_str(), i, line.c_str());
            }
        }
    }
    for (const SlowClientResult &sc : slowResults) {
        out.requests += sc.sent.size();
        out.lost += sc.lost;
        for (size_t i = 0; i < sc.lines.size(); ++i) {
            const std::string &line = sc.lines[i];
            if (line.empty())
                continue; // already counted lost
            if (responseOk(line)) {
                ++out.served;
                if (verifier != nullptr &&
                    line != verifier->expected(sc.sent[i]))
                    ++out.mismatches;
            } else if (isOverloadedLine(line)) {
                ++out.shed;
            } else {
                ++out.errors;
            }
        }
    }
    const PercentileSummary p = percentileSummary(std::move(lat));
    out.p50Ms = p.p50;
    out.p95Ms = p.p95;
    out.p99Ms = p.p99;

    for (int i = 0; i < maxSlots && !cacheBase.empty(); ++i)
        std::remove((cacheBase + "." + std::to_string(i)).c_str());
    return out;
}

/** Run each named scenario, enforce its gates, emit
 *  BENCH_scenarios.json. Returns the process exit code. */
int
runScenarioMode(const std::string &serve_bin,
                const std::vector<std::string> &names, uint64_t seed,
                bool quick, bool json_out, bool verify)
{
    Verifier verifier; // shared: the oracle memoizes across scenarios
    BenchJson json("scenarios");
    json.add("benchmark", std::string("scenarios"));
    json.add("schema_version", static_cast<uint64_t>(1));
    json.add("quick", static_cast<uint64_t>(quick ? 1 : 0));
    std::string list;
    for (const std::string &name : names)
        list += (list.empty() ? "" : ",") + name;
    json.add("scenario_list", list);

    int rc = 0;
    for (const std::string &name : names) {
        ScenarioSpec spec;
        std::string err;
        if (!buildScenario(name, seed, quick, spec, err)) {
            std::fprintf(stderr, "ta_loadgen: %s\n", err.c_str());
            return 2;
        }
        std::fprintf(stderr,
                     "ta_loadgen: scenario %s (%s): %zu requests, "
                     "%d replicas%s...\n",
                     spec.name.c_str(), spec.description.c_str(),
                     spec.trace.size(), spec.replicas,
                     spec.maxReplicas > spec.replicas
                         ? ", autoscaling"
                         : "");
        ScenarioOutcome out = runOneScenario(
            serve_bin, spec, seed, quick,
            verify ? &verifier : nullptr);
        checkScenarioGates(spec, out);
        std::fprintf(
            stderr,
            "  %s: %s — %6.1f req/s, p50/p95/p99 "
            "%.2f/%.2f/%.2f ms, served %llu, shed %llu, lost %llu, "
            "dup %llu, errors %llu, restarts %llu, scale +%llu/-"
            "%llu\n",
            spec.name.c_str(), out.pass ? "PASS" : "FAIL", out.rps,
            out.p50Ms, out.p95Ms, out.p99Ms,
            static_cast<unsigned long long>(out.served),
            static_cast<unsigned long long>(out.shed),
            static_cast<unsigned long long>(out.lost),
            static_cast<unsigned long long>(out.duplicated),
            static_cast<unsigned long long>(out.errors),
            static_cast<unsigned long long>(out.restarts),
            static_cast<unsigned long long>(out.scaleUps),
            static_cast<unsigned long long>(out.scaleDowns));
        for (const std::string &f : out.failures)
            std::fprintf(stderr, "  gate: %s\n", f.c_str());
        if (!out.pass)
            rc = 1;

        json.add(name + "_requests", out.requests);
        json.add(name + "_rps", out.rps);
        json.add(name + "_p50_ms", out.p50Ms);
        json.add(name + "_p95_ms", out.p95Ms);
        json.add(name + "_p99_ms", out.p99Ms);
        json.add(name + "_p99_bound_ms", spec.p99BoundMs);
        json.add(name + "_served", out.served);
        json.add(name + "_shed", out.shed);
        json.add(name + "_lost", out.lost);
        json.add(name + "_duplicated", out.duplicated);
        json.add(name + "_errors", out.errors);
        json.add(name + "_verify_mismatches", out.mismatches);
        json.add(name + "_restarts", out.restarts);
        json.add(name + "_scale_ups", out.scaleUps);
        json.add(name + "_scale_downs", out.scaleDowns);
        json.add(name + "_abandoned", out.abandoned);
        json.add(name + "_allow_shed",
                 static_cast<uint64_t>(spec.allowShed ? 1 : 0));
        json.add(name + "_pass",
                 static_cast<uint64_t>(out.pass ? 1 : 0));
    }
    json.add("verified",
             std::string(verify ? "true" : "skipped"));
    json.add("pass", static_cast<uint64_t>(rc == 0 ? 1 : 0));
    if (json_out) {
        const std::string path = json.write();
        if (!path.empty())
            std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    return rc;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s (--spawn CMD | --connect PORT |\n"
        "           --replicas N [--policy P] [--serve-bin PATH] |\n"
        "           --scenario NAMES [--serve-bin PATH] |\n"
        "           --slo [--serve-bin PATH] |\n"
        "           --obs [--serve-bin PATH] |\n"
        "           --catalog DIR [--model NAME] [--serve-bin PATH])\n"
        "          [--requests N]\n"
        "          [--concurrency N] [--rate RPS] [--seed S]\n"
        "          [--deadline-ms MS] [--cost-model FILE]\n"
        "          [--faults SPEC] [--stall-reads MS]\n"
        "          [--kernels scalar|avx2|neon|auto]\n"
        "          [--trace-out FILE]\n"
        "          [--quick] [--json-out] [--no-verify]\n"
        "          [--no-shutdown]\n"
        "  --spawn        start CMD as a child speaking the protocol\n"
        "                 on its stdin/stdout (via /bin/sh -c)\n"
        "  --connect      connect to a running ta_serve --tcp PORT\n"
        "                 on 127.0.0.1\n"
        "  --replicas     cluster mode: spawn N ta_serve replicas\n"
        "                 behind an in-process router and sweep the\n"
        "                 routing policies (emits\n"
        "                 BENCH_cluster_throughput.json)\n"
        "  --policy       round_robin | least_outstanding | affinity\n"
        "                 | all (cluster mode; default all)\n"
        "  --serve-bin    ta_serve binary for cluster replicas\n"
        "                 (default: next to this binary)\n"
        "  --scenario     adversarial scenario suite: a name, a\n"
        "                 comma list, 'all', or 'list' to print the\n"
        "                 names; enforces the robustness gates and\n"
        "                 emits BENCH_scenarios.json\n"
        "  --catalog      storage benchmark: replay a packed model\n"
        "                 against a ta_serve --catalog server, gate\n"
        "                 catalog-vs-synthesis byte-identity, and\n"
        "                 emit BENCH_storage.json (cold-open vs\n"
        "                 fresh-synthesis cold start, buffer hit\n"
        "                 rate, rps)\n"
        "  --model        model to replay (--catalog mode; default:\n"
        "                 first model in the catalog)\n"
        "  --obs          observability overhead benchmark: the same\n"
        "                 trace against a plain and a --trace-out\n"
        "                 server, gate byte-identical responses and\n"
        "                 <=5%% throughput overhead, and emit\n"
        "                 BENCH_obs.json\n"
        "  --trace-out    record client request spans and write them\n"
        "                 as Chrome trace JSON to FILE at exit; in\n"
        "                 cluster mode (--replicas) the in-process\n"
        "                 router's route spans land in the same file\n"
        "                 and replicas write FILE.replica<i>.json\n"
        "  --slo          SLO benchmark: replay a deadline-bearing\n"
        "                 overload trace against a planned and a fifo\n"
        "                 server, gate planned goodput > fifo goodput\n"
        "                 with explicit sheds only, and emit\n"
        "                 BENCH_slo.json\n"
        "  --deadline-ms  per-request deadline stamped on the trace\n"
        "                 (single-server modes: every request; --slo:\n"
        "                 the meetable fraction; default --slo\n"
        "                 2000 quick / 8000 full)\n"
        "  --cost-model   calibrated ta_calibrate coefficients for\n"
        "                 the --slo cost-error report and the spawned\n"
        "                 servers (default: built-in model)\n"
        "  --faults       fault schedule for cluster mode, e.g.\n"
        "                 \"kill@12:2;blackhole@5:0:400\" (see\n"
        "                 src/cluster/fault_injector.h)\n"
        "  --stall-reads  slow-client mode (--spawn/--connect):\n"
        "                 stall MS before reading each response\n"
        "  --kernels      sub-tile kernel backend for the in-process\n"
        "                 verify oracle (responses byte-identical for\n"
        "                 every backend; default TA_KERNELS/auto)\n"
        "  --requests     trace length per phase (default 48;\n"
        "                 --quick default 24)\n"
        "  --concurrency  closed-loop clients in the batched phase\n"
        "                 (default 8)\n"
        "  --rate         add an open-loop phase at RPS offered load\n"
        "  --seed         trace seed (default 1)\n"
        "  --quick        CI-sized shapes and counts\n"
        "  --json-out     write BENCH_service_throughput.json\n"
        "  --no-verify    skip the byte-identity oracle check\n"
        "  --no-shutdown  leave the server running on exit\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    // A server dying mid-trace must surface as write errors and
    // "connection closed" replies, not kill the load generator.
    std::signal(SIGPIPE, SIG_IGN);
    std::string spawn_cmd;
    long long connect_port = 0;
    long long replicas = 0;
    std::string policy_arg = "all";
    std::string serve_bin;
    std::string scenario_arg;
    std::string catalog_arg;
    std::string model_arg;
    std::string faults_arg;
    long long stall_reads = 0;
    std::string cost_model_path;
    std::string trace_out;
    size_t requests = 0;
    size_t concurrency = 8;
    double rate = 0;
    uint64_t seed = 1;
    uint64_t deadline_ms = 0;
    bool quick = false, json_out = false, verify = true,
         send_shutdown = true, slo = false, obs = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--quick") {
            quick = true;
            continue;
        }
        if (a == "--slo") {
            slo = true;
            continue;
        }
        if (a == "--obs") {
            obs = true;
            continue;
        }
        if (a == "--json-out") {
            json_out = true;
            continue;
        }
        if (a == "--no-verify") {
            verify = false;
            continue;
        }
        if (a == "--no-shutdown") {
            send_shutdown = false;
            continue;
        }
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 2;
        }
        const bool known = a == "--spawn" || a == "--connect" ||
                           a == "--replicas" || a == "--policy" ||
                           a == "--serve-bin" || a == "--requests" ||
                           a == "--concurrency" || a == "--seed" ||
                           a == "--rate" || a == "--scenario" ||
                           a == "--faults" || a == "--stall-reads" ||
                           a == "--kernels" || a == "--deadline-ms" ||
                           a == "--cost-model" || a == "--catalog" ||
                           a == "--model" || a == "--trace-out";
        if (!known) {
            std::fprintf(stderr, "unknown flag %s\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
        const char *v = argv[++i];
        bool ok = true;
        if (a == "--spawn")
            spawn_cmd = v;
        else if (a == "--connect")
            ok = parseIntFlag(a, v, 1, 65535, connect_port);
        else if (a == "--replicas")
            ok = parseIntFlag(a, v, 1, 64, replicas);
        else if (a == "--policy")
            policy_arg = v;
        else if (a == "--serve-bin")
            serve_bin = v;
        else if (a == "--scenario")
            scenario_arg = v;
        else if (a == "--catalog")
            catalog_arg = v;
        else if (a == "--model")
            model_arg = v;
        else if (a == "--faults")
            faults_arg = v;
        else if (a == "--stall-reads")
            ok = parseIntFlag(a, v, 1, 60000, stall_reads);
        else if (a == "--kernels") {
            std::string err;
            ok = setKernels(v, &err);
            if (!ok)
                std::fprintf(stderr, "--kernels: %s\n", err.c_str());
        }
        else if (a == "--requests")
            ok = parseSizeFlag(a, v, 1, 1 << 16, requests);
        else if (a == "--concurrency")
            ok = parseSizeFlag(a, v, 1, 256, concurrency);
        else if (a == "--seed")
            ok = parseU64Flag(a, v, 0, ~0ull, seed);
        else if (a == "--deadline-ms")
            ok = parseU64Flag(a, v, 1, kMaxDeadlineMs, deadline_ms);
        else if (a == "--cost-model")
            cost_model_path = v;
        else if (a == "--trace-out")
            trace_out = v;
        else if (a == "--rate") {
            long long rps = 0; // whole requests/s only
            ok = parseIntFlag(a, v, 1, 100000, rps);
            rate = static_cast<double>(rps);
        }
        if (!ok) {
            usage(argv[0]);
            return 2;
        }
    }
    const int targets = (spawn_cmd.empty() ? 0 : 1) +
                        (connect_port != 0 ? 1 : 0) +
                        (replicas != 0 ? 1 : 0) +
                        (scenario_arg.empty() ? 0 : 1) +
                        (catalog_arg.empty() ? 0 : 1) +
                        (slo ? 1 : 0) + (obs ? 1 : 0);
    if (targets != 1) {
        std::fprintf(stderr,
                     "exactly one of --spawn / --connect / "
                     "--replicas / --scenario / --catalog / --slo / "
                     "--obs is required\n");
        usage(argv[0]);
        return 2;
    }
    if (requests == 0)
        requests = quick ? 24 : 48;

    // Client tracing: request root spans from this process, flushed
    // to `trace_out` on every exit path (the destructor runs after
    // whichever mode handler returns).
    struct TraceFlusher
    {
        std::string path;
        ~TraceFlusher()
        {
            obs::Tracer &tracer = obs::Tracer::instance();
            if (path.empty() || !tracer.enabled())
                return;
            if (tracer.flush())
                std::fprintf(
                    stderr,
                    "ta_loadgen: wrote %llu span(s) to %s (%llu "
                    "dropped)\n",
                    static_cast<unsigned long long>(
                        tracer.spanCount()),
                    path.c_str(),
                    static_cast<unsigned long long>(
                        tracer.dropped()));
            else
                std::fprintf(stderr,
                             "ta_loadgen: failed to write trace "
                             "file %s\n",
                             path.c_str());
        }
    } trace_flusher;
    if (!trace_out.empty()) {
        obs::Tracer::instance().enable(trace_out, "ta_loadgen");
        trace_flusher.path = trace_out;
    }

    FaultPlan faults;
    if (!faults_arg.empty()) {
        std::string err;
        if (!parseFaultSpec(faults_arg, faults, err)) {
            std::fprintf(stderr, "--faults: %s\n", err.c_str());
            return 2;
        }
        if (replicas == 0 && scenario_arg.empty()) {
            std::fprintf(stderr,
                         "--faults requires cluster mode "
                         "(--replicas)\n");
            return 2;
        }
    }

    if (slo) {
        if (serve_bin.empty())
            serve_bin = defaultServeBinary(argv[0]);
        return runSloMode(serve_bin, requests, seed, quick, json_out,
                          verify, rate, deadline_ms, cost_model_path);
    }

    if (obs) {
        if (serve_bin.empty())
            serve_bin = defaultServeBinary(argv[0]);
        return runObsMode(serve_bin, requests, concurrency, seed,
                          quick, json_out, verify);
    }

    if (!catalog_arg.empty()) {
        if (serve_bin.empty())
            serve_bin = defaultServeBinary(argv[0]);
        return runStorageMode(serve_bin, catalog_arg, model_arg,
                              requests, concurrency, seed, quick,
                              json_out, verify);
    }

    if (!scenario_arg.empty()) {
        if (scenario_arg == "list") {
            for (const std::string &name : scenarioNames())
                std::printf("%s\n", name.c_str());
            return 0;
        }
        std::vector<std::string> names;
        if (scenario_arg == "all") {
            names = scenarioNames();
        } else {
            size_t start = 0;
            while (start < scenario_arg.size()) {
                size_t end = scenario_arg.find(',', start);
                if (end == std::string::npos)
                    end = scenario_arg.size();
                if (end > start)
                    names.push_back(
                        scenario_arg.substr(start, end - start));
                start = end + 1;
            }
        }
        if (names.empty()) {
            std::fprintf(stderr, "--scenario: no names given\n");
            return 2;
        }
        if (serve_bin.empty())
            serve_bin = defaultServeBinary(argv[0]);
        return runScenarioMode(serve_bin, names, seed, quick,
                               json_out, verify);
    }

    if (replicas > 0) {
        std::vector<RoutePolicy> policies;
        if (policy_arg == "all") {
            policies = {RoutePolicy::RoundRobin,
                        RoutePolicy::LeastOutstanding,
                        RoutePolicy::Affinity};
        } else {
            RoutePolicy p;
            if (!parseRoutePolicy(policy_arg, p)) {
                std::fprintf(stderr,
                             "--policy: expected round_robin, "
                             "least_outstanding, affinity or all, "
                             "got '%s'\n",
                             policy_arg.c_str());
                return 2;
            }
            policies = {p};
        }
        if (serve_bin.empty())
            serve_bin = defaultServeBinary(argv[0]);
        if (rate > 0)
            std::fprintf(stderr,
                         "ta_loadgen: --rate is ignored in cluster "
                         "mode\n");
        return runClusterMode(serve_bin, static_cast<int>(replicas),
                              policies, requests, concurrency, seed,
                              quick, json_out, verify, faults,
                              trace_out);
    }

    pid_t child = -1;
    const int fd =
        !spawn_cmd.empty()
            ? spawnServer(spawn_cmd, child)
            : connectTcp(static_cast<uint16_t>(connect_port));
    if (fd < 0)
        return 1;

    int rc = 0;
    {
        ServiceClient client(fd, static_cast<int>(stall_reads));
        const CallFn call = clientCall(client);
        std::vector<ServiceRequest> trace =
            buildTrace(seed, requests, quick);
        // --deadline-ms stamps every trace request; a planned server
        // then tracks deadline_met/deadline_misses (and sheds any
        // request its cost model says can never make it).
        if (deadline_ms > 0)
            for (ServiceRequest &r : trace)
                r.deadlineMs = deadline_ms;

        // Warmup: bring the plan cache and engines to steady state so
        // the serial and batched phases measure dispatch, not cold
        // caches (real serving is warm; a cold run is the restart
        // case, covered by --plan-cache persistence).
        std::fprintf(stderr,
                     "ta_loadgen: %zu requests/phase, warmup...\n",
                     requests);
        runClosedLoop(call, trace, std::max<size_t>(4, concurrency),
                      nullptr);

        std::vector<ServiceRequest> serial_sent, batched_sent,
            open_sent;
        const PhaseResult serial =
            runClosedLoop(call, trace, 1, &serial_sent);
        reportClosedLoop(1, serial);
        const PhaseResult batched =
            runClosedLoop(call, trace, concurrency, &batched_sent);
        reportClosedLoop(concurrency, batched);
        PhaseResult open;
        if (rate > 0) {
            open = runOpenLoop(call, trace, rate, &open_sent);
            std::fprintf(
                stderr,
                "  open loop, %.0f req/s offered: %6.1f req/s, "
                "p50/p95/p99 %.2f/%.2f/%.2f ms, %llu errors\n",
                rate, open.rps, open.latencyMs.p50, open.latencyMs.p95,
                open.latencyMs.p99,
                static_cast<unsigned long long>(open.errors));
        }

        // Closed-loop phases must not see errors: concurrency never
        // exceeds the server's queue capacity, so any error line is a
        // dead connection or an engine failure. (Open-loop errors can
        // be legitimate admission rejections under offered overload;
        // they are reported but don't fail the run.)
        if (serial.errors + batched.errors > 0) {
            std::fprintf(stderr,
                         "ta_loadgen: %llu closed-loop error "
                         "response(s)\n",
                         static_cast<unsigned long long>(
                             serial.errors + batched.errors));
            rc = 1;
        }

        uint64_t mismatches = 0;
        if (verify) {
            Verifier verifier;
            mismatches +=
                verifyPhase(verifier, serial_sent, serial, "serial");
            mismatches += verifyPhase(verifier, batched_sent, batched,
                                      "batched");
            if (rate > 0)
                mismatches +=
                    verifyPhase(verifier, open_sent, open, "open");
            std::fprintf(stderr,
                         "  verify: %llu mismatches (byte-identity "
                         "vs standalone serial runs)\n",
                         static_cast<unsigned long long>(mismatches));
            if (mismatches > 0)
                rc = 1;
        }

        const std::map<std::string, std::string> sstats =
            fetchStats(call);
        auto sstat = [&](const char *key) {
            return statOf(sstats, key);
        };
        std::fprintf(
            stderr,
            "  server: windows %s (max %s, batched %s), cache hit "
            "rate %s, plans loaded %s, rejected %s\n",
            sstat("windows").c_str(), sstat("max_window").c_str(),
            sstat("batched_requests").c_str(),
            sstat("cache_hit_rate").c_str(),
            sstat("plans_loaded").c_str(), sstat("rejected").c_str());

        if (json_out) {
            BenchJson json("service_throughput");
            json.add("benchmark", std::string("service_throughput"));
            json.add("schema_version", static_cast<uint64_t>(2));
            json.add("quick", static_cast<uint64_t>(quick ? 1 : 0));
            json.add("requests_per_phase",
                     static_cast<uint64_t>(requests));
            json.add("concurrency",
                     static_cast<uint64_t>(concurrency));
            json.add("serial_rps", serial.rps);
            json.add("serial_p50_ms", serial.latencyMs.p50);
            json.add("serial_p95_ms", serial.latencyMs.p95);
            json.add("serial_p99_ms", serial.latencyMs.p99);
            json.add("batched_rps", batched.rps);
            json.add("batched_p50_ms", batched.latencyMs.p50);
            json.add("batched_p95_ms", batched.latencyMs.p95);
            json.add("batched_p99_ms", batched.latencyMs.p99);
            json.add("batch_speedup", batched.rps / serial.rps);
            if (rate > 0) {
                json.add("openloop_offered_rps", rate);
                json.add("openloop_achieved_rps", open.rps);
                json.add("openloop_p50_ms", open.latencyMs.p50);
                json.add("openloop_p95_ms", open.latencyMs.p95);
                json.add("openloop_p99_ms", open.latencyMs.p99);
                json.add("openloop_errors", open.errors);
            }
            json.add("errors", serial.errors + batched.errors);
            json.add("verified",
                     std::string(!verify          ? "skipped"
                                 : mismatches == 0 ? "true"
                                                   : "false"));
            json.add("verify_mismatches", mismatches);
            auto num = [&](const char *key) {
                return std::strtod(sstat(key).c_str(), nullptr);
            };
            json.add("server_windows",
                     static_cast<uint64_t>(num("windows")));
            json.add("server_max_window",
                     static_cast<uint64_t>(num("max_window")));
            json.add("server_batched_requests",
                     static_cast<uint64_t>(num("batched_requests")));
            json.add("server_cache_hit_rate", num("cache_hit_rate"));
            json.add("server_plans_loaded",
                     static_cast<uint64_t>(num("plans_loaded")));
            json.add("server_rejected",
                     static_cast<uint64_t>(num("rejected")));
            // Kernel backends: ours (the in-process verify oracle)
            // and the server's, as reported by its stats op.
            json.add("kernel_arch", std::string(kernelArch()));
            const std::string server_arch = sstat("kernel_arch");
            // statOf defaults missing keys to "0" (pre-kernel server).
            json.add("server_kernel_arch",
                     server_arch == "0" || server_arch.empty()
                         ? std::string("unknown")
                         : server_arch);
            const std::string path = json.write();
            if (!path.empty())
                std::fprintf(stderr, "wrote %s\n", path.c_str());
        }

        if (send_shutdown) {
            ServiceRequest req;
            req.op = "shutdown";
            req.id = g_next_id.fetch_add(1);
            client.call(req).get();
        }
    } // closes the connection, joins the reader

    if (child > 0) {
        int status = 0;
        ::waitpid(child, &status, 0);
        if (send_shutdown &&
            (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
            std::fprintf(stderr,
                         "ta_loadgen: server exited abnormally "
                         "(status %d)\n",
                         status);
            rc = rc == 0 ? 1 : rc;
        }
    }
    return rc;
}
