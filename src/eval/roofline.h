/**
 * @file
 * Roofline analysis for the accelerator models: operational intensity
 * (effective ops per DRAM byte) against the compute and bandwidth
 * ceilings, used to explain where transitive sparsity pays off (the
 * prefill GEMMs of Fig. 10) and where it cannot (decode GEMVs — see
 * bench/ablation_decode). Works for both the TransArray (whose
 * *effective* compute ceiling is the adder throughput divided by
 * density) and the MAC-array baselines.
 */

#ifndef TA_EVAL_ROOFLINE_H
#define TA_EVAL_ROOFLINE_H

#include <string>

#include "workloads/gemm_workload.h"

namespace ta {

/** A machine's two ceilings at a fixed clock. */
struct RooflinePoint
{
    std::string label;
    double opsPerCycle = 0;   ///< compute ceiling (effective MAC/cycle)
    double bytesPerCycle = 0; ///< bandwidth ceiling

    /** Intensity below which the machine is bandwidth-bound. */
    double ridgeIntensity() const
    {
        return bytesPerCycle > 0 ? opsPerCycle / bytesPerCycle : 0;
    }

    /** Attainable ops/cycle at a given operational intensity. */
    double attainable(double ops_per_byte) const;
};

/** Operational intensity of a GEMM with given operand widths. */
double gemmIntensity(const GemmShape &shape, int weight_bits,
                     int act_bits, int out_bits = 32);

/**
 * Effective TransArray compute ceiling: adders retire one add per
 * cycle, and transitive density converts adds into MAC-equivalents —
 * density d means each weight-bit add stands for 1/(d*S) MACs.
 */
RooflinePoint transArrayRoofline(uint32_t units, uint32_t lanes,
                                 uint32_t adders, int weight_bits,
                                 double density,
                                 double bytes_per_cycle);

/** Baseline MAC-array ceiling. */
RooflinePoint baselineRoofline(const std::string &label,
                               double macs_per_cycle,
                               double bytes_per_cycle);

} // namespace ta

#endif // TA_EVAL_ROOFLINE_H
