/**
 * @file
 * Determinism contract of batch-level sharded execution: batched
 * results are bit-identical to serial per-layer runs across thread
 * counts {1, 2, 8}, batch windows {1, 4, 16} and every kernel backend
 * this build + host can dispatch (scalar oracle vs SIMD), including
 * mixed-precision suites and the parallelized baseline models vs.
 * their serial reference. Also pins the BatchScheduler's static task
 * decomposition: every (layer, item) is covered exactly once, by the
 * same shard partition the per-layer path uses.
 */

#include <gtest/gtest.h>

#include "baselines/baseline.h"
#include "core/accelerator.h"
#include "exec/batch_scheduler.h"
#include "kernels/kernel_table.h"
#include "workloads/llama.h"
#include "workloads/resnet18.h"
#include "workloads/suite_runner.h"

namespace ta {
namespace {

/** Restores the dispatched kernel table on scope exit. */
struct KernelGuard
{
    std::string prev;

    KernelGuard() : prev(kernelArch()) {}
    ~KernelGuard() { setKernels(prev); }
};

// ---- BatchScheduler task decomposition ----------------------------------

TEST(BatchScheduler, TasksPartitionEveryLayerExactly)
{
    for (int shards : {1, 2, 3, 8}) {
        const std::vector<size_t> items{5, 0, 17, 1, 64, 3};
        const std::vector<LayerTask> tasks =
            BatchScheduler::buildTasks(items, shards);
        std::vector<std::vector<int>> touched(items.size());
        for (size_t l = 0; l < items.size(); ++l)
            touched[l].assign(items[l], 0);
        for (const LayerTask &t : tasks) {
            ASSERT_LT(t.layer, items.size());
            ASSERT_GE(t.shard, 0);
            ASSERT_LT(t.shard, shards);
            ASSERT_LT(t.begin, t.end); // empty tasks are skipped
            ASSERT_LE(t.end, items[t.layer]);
            // The per-layer shard partition is exactly the one
            // per-layer dispatch would use.
            EXPECT_EQ(t.begin, ParallelExecutor::shardBegin(
                                   items[t.layer], t.shard, shards));
            EXPECT_EQ(t.end, ParallelExecutor::shardBegin(
                                 items[t.layer], t.shard + 1, shards));
            for (size_t i = t.begin; i < t.end; ++i)
                ++touched[t.layer][i];
        }
        for (size_t l = 0; l < items.size(); ++l)
            for (int c : touched[l])
                EXPECT_EQ(c, 1);
    }
}

TEST(BatchScheduler, RunsPrepareBeforeProcessingAndCounts)
{
    ParallelExecutor pool(4);
    BatchScheduler sched(pool);
    std::vector<int> prepared(6, 0);
    // Tasks may only write their own (layer, shard) slot — exactly the
    // discipline the scheduler documents.
    std::vector<std::vector<size_t>> processed(
        6, std::vector<size_t>(pool.threads(), 0));
    sched.run(
        6,
        [&](size_t l) -> size_t {
            prepared[l] = 1;
            return l + 1; // layer l has l+1 items
        },
        [&](const LayerTask &t, int) {
            EXPECT_EQ(prepared[t.layer], 1); // phase barrier held
            processed[t.layer][t.shard] += t.end - t.begin;
        });
    for (size_t l = 0; l < 6; ++l) {
        size_t total = 0;
        for (size_t s : processed[l])
            total += s;
        EXPECT_EQ(total, l + 1);
    }
    EXPECT_EQ(sched.batchesCompleted(), 1u);
}

// ---- runLayersBatched vs serial runShape --------------------------------

void
expectStatsEqual(const SparsityStats &a, const SparsityStats &b)
{
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.denseOps, b.denseOps);
    EXPECT_EQ(a.bitOps, b.bitOps);
    EXPECT_EQ(a.zrRows, b.zrRows);
    EXPECT_EQ(a.prRows, b.prRows);
    EXPECT_EQ(a.frRows, b.frRows);
    EXPECT_EQ(a.trNodes, b.trNodes);
    EXPECT_EQ(a.outlierExtra, b.outlierExtra);
    EXPECT_EQ(a.siMisses, b.siMisses);
    EXPECT_EQ(a.distHist, b.distHist);
}

void
expectLayerRunEqual(const LayerRun &a, const LayerRun &b)
{
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    EXPECT_EQ(a.dramCycles, b.dramCycles);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
    EXPECT_EQ(a.subTiles, b.subTiles);
    expectStatsEqual(a.sparsity, b.sparsity);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TransArrayAccelerator::Config
accCfg(int threads, bool use_static = false)
{
    TransArrayAccelerator::Config c;
    c.sampleLimit = 32;
    c.threads = threads;
    c.useStaticScoreboard = use_static;
    return c;
}

std::vector<BatchLayerRequest>
mixedShapeRequests()
{
    // Mixed sizes and precisions, including a degenerate layer (m = 0)
    // that must survive batching like runShape survives it.
    return {
        BatchLayerRequest{{512, 512, 256}, 4, 9},
        BatchLayerRequest{{256, 1024, 128}, 8, 10},
        BatchLayerRequest{{96, 256, 64}, 4, 11},
        BatchLayerRequest{{128, 128, 0}, 4, 12},
        BatchLayerRequest{{768, 256, 512}, 6, 13},
        BatchLayerRequest{{64, 64, 32}, 2, 14},
    };
}

TEST(RunLayersBatched, BitIdenticalToSerialAcrossThreadsAndWindows)
{
    const std::vector<BatchLayerRequest> reqs = mixedShapeRequests();
    KernelGuard guard;

    // Serial per-layer reference at one thread on the scalar oracle.
    ASSERT_TRUE(setKernels("scalar"));
    const TransArrayAccelerator ref(accCfg(1));
    std::vector<LayerRun> expect;
    for (const BatchLayerRequest &r : reqs)
        expect.push_back(ref.runShape(r.shape, r.weightBits, r.seed));

    // The kernel backend is a third determinism dimension: every
    // vector table must reproduce the scalar reference bit-for-bit
    // under every (threads, window) combination.
    for (const std::string &arch : availableKernelArchs()) {
        ASSERT_TRUE(setKernels(arch));
        for (int threads : {1, 2, 8}) {
            for (size_t window : {size_t{1}, size_t{4}, size_t{16}}) {
                const TransArrayAccelerator acc(accCfg(threads));
                // Windows smaller than the request list exercise
                // multiple batches against one accelerator (shared
                // plan cache).
                std::vector<LayerRun> got;
                for (size_t i = 0; i < reqs.size(); i += window) {
                    const std::vector<BatchLayerRequest> win(
                        reqs.begin() + i,
                        reqs.begin() +
                            std::min(reqs.size(), i + window));
                    const std::vector<LayerRun> runs =
                        acc.runLayersBatched(win);
                    got.insert(got.end(), runs.begin(), runs.end());
                }
                ASSERT_EQ(got.size(), expect.size());
                for (size_t i = 0; i < got.size(); ++i)
                    expectLayerRunEqual(got[i], expect[i]);
            }
        }
    }
}

TEST(RunLayersBatched, StaticScoreboardPathBitIdentical)
{
    const std::vector<BatchLayerRequest> reqs{
        BatchLayerRequest{{256, 256, 128}, 4, 21},
        BatchLayerRequest{{128, 512, 64}, 4, 22},
        BatchLayerRequest{{96, 128, 32}, 8, 23},
    };
    const TransArrayAccelerator ref(accCfg(1, true));
    const TransArrayAccelerator acc(accCfg(8, true));
    const std::vector<LayerRun> got = acc.runLayersBatched(reqs);
    for (size_t i = 0; i < reqs.size(); ++i)
        expectLayerRunEqual(got[i],
                            ref.runShape(reqs[i].shape,
                                         reqs[i].weightBits,
                                         reqs[i].seed));
}

TEST(RunLayersBatched, PerLayerExecCountersStayAttributable)
{
    const std::vector<BatchLayerRequest> reqs = mixedShapeRequests();
    const TransArrayAccelerator acc(accCfg(2));
    const std::vector<LayerRun> runs = acc.runLayersBatched(reqs);
    for (size_t i = 0; i < runs.size(); ++i) {
        const uint64_t sampled =
            runs[i].exec.get("exec.sampledSubTiles");
        if (reqs[i].shape.m == 0) {
            EXPECT_EQ(sampled, 0u);
            continue;
        }
        EXPECT_GT(sampled, 0u);
        // Local per-layer lookup outcomes cover every sampled sub-tile.
        EXPECT_EQ(runs[i].exec.get("planCache.hits") +
                      runs[i].exec.get("planCache.misses"),
                  sampled);
        // Deterministic static sharding: shard counts are fixed by
        // (sampled, threads) alone.
        EXPECT_EQ(runs[i].exec.get("exec.shard0.subTiles") +
                      runs[i].exec.get("exec.shard1.subTiles"),
                  sampled);
    }
}

// ---- suite_runner batch windows -----------------------------------------

void
expectSuiteEqual(const SuiteRunResult &a, const SuiteRunResult &b)
{
    ASSERT_EQ(a.perLayer.size(), b.perLayer.size());
    for (size_t i = 0; i < a.perLayer.size(); ++i)
        expectLayerRunEqual(a.perLayer[i], b.perLayer[i]);
    expectLayerRunEqual(a.total, b.total);
}

TEST(BatchedSuiteRunner, RunSuiteBitIdenticalAcrossWindows)
{
    const WorkloadSuite suite = llamaFcLayers(llama1_7b());
    const TransArrayAccelerator ref(accCfg(1));
    const SuiteRunResult serial = runSuite(ref, suite, 4, 1);
    for (int threads : {1, 2, 8}) {
        for (size_t window : {size_t{1}, size_t{4}, size_t{16}}) {
            const TransArrayAccelerator acc(accCfg(threads));
            expectSuiteEqual(runSuite(acc, suite, 4, 1, window),
                             serial);
        }
    }
}

TEST(BatchedSuiteRunner, MixedPrecisionSuiteBitIdentical)
{
    // Fig. 14's pattern: 8-bit edge layers on one engine, 4-bit inner
    // layers on another — windows must flush on engine changes.
    WorkloadSuite s = resnet18Layers();
    s.layers.resize(std::min<size_t>(s.layers.size(), 7));

    auto make_pick = [](const TransArrayAccelerator &a8,
                        const TransArrayAccelerator &a4,
                        size_t n_layers) {
        return [&a8, &a4, n_layers](size_t i, const GemmLayerDesc &) {
            const bool edge = i == 0 || i + 1 == n_layers;
            return edge ? LayerEnginePick{&a8, 8}
                        : LayerEnginePick{&a4, 4};
        };
    };

    TransArrayAccelerator::Config c4 = accCfg(1);
    c4.actBits = 4;
    const TransArrayAccelerator ref8(accCfg(1)), ref4(c4);
    const SuiteRunResult serial = runSuiteMixed(
        s, make_pick(ref8, ref4, s.layers.size()), 33);

    for (int threads : {2, 8}) {
        TransArrayAccelerator::Config p4 = accCfg(threads);
        p4.actBits = 4;
        const TransArrayAccelerator acc8(accCfg(threads)), acc4(p4);
        for (size_t window : {size_t{4}, size_t{16}}) {
            expectSuiteEqual(
                runSuiteMixed(s,
                              make_pick(acc8, acc4, s.layers.size()),
                              33, window),
                serial);
        }
    }
}

TEST(BatchedSuiteRunner, SuiteCyclesAgreesWithPerLayerLoop)
{
    const WorkloadSuite suite = llamaAttentionLayers(llama1_7b());
    const TransArrayAccelerator acc(accCfg(2));
    const uint64_t serial = suiteCycles(acc, suite, 8, 100);
    EXPECT_EQ(suiteCycles(acc, suite, 8, 100, 4), serial);
    EXPECT_EQ(suiteCycles(acc, suite, 8, 100, 16), serial);
}

// ---- parallelized baselines vs serial reference -------------------------

TEST(ParallelBaselines, SuiteBitIdenticalToSerialReference)
{
    const WorkloadSuite suite = llamaFcLayers(llama2_13b());
    for (const char *name :
         {"BitFusion", "ANT", "Olive", "Tender", "BitVert"}) {
        const auto acc = makeBaseline(name);
        const BaselineSuiteResult serial =
            runBaselineSuite(*acc, suite, 8, 8, 0.5, nullptr);
        for (int threads : {2, 8}) {
            ParallelExecutor pool(threads);
            const BaselineSuiteResult par =
                runBaselineSuite(*acc, suite, 8, 8, 0.5, &pool);
            ASSERT_EQ(par.perLayer.size(), serial.perLayer.size());
            for (size_t i = 0; i < par.perLayer.size(); ++i) {
                EXPECT_EQ(par.perLayer[i].cycles,
                          serial.perLayer[i].cycles)
                    << name << " layer " << i;
                EXPECT_DOUBLE_EQ(par.perLayer[i].energy.total(),
                                 serial.perLayer[i].energy.total());
            }
            EXPECT_EQ(par.total.cycles, serial.total.cycles);
            EXPECT_DOUBLE_EQ(par.total.energy.total(),
                             serial.total.energy.total());
        }
    }
}

TEST(ParallelBaselines, CountsApplyToTotals)
{
    WorkloadSuite s;
    s.name = "counted";
    s.layers.push_back({"a", {256, 256, 64}, 3, false});
    s.layers.push_back({"b", {128, 512, 32}, 1, false});
    const auto acc = makeBaseline("Olive");
    const BaselineSuiteResult r =
        runBaselineSuite(*acc, s, 8, 8, 0.5, nullptr);
    EXPECT_EQ(r.total.cycles, 3 * r.perLayer[0].cycles +
                                  r.perLayer[1].cycles);
}

} // namespace
} // namespace ta
