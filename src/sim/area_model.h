/**
 * @file
 * 28 nm area model reproducing Table 2. Component unit areas are the
 * paper's synthesized values (Design Compiler + ARM cells); the model
 * multiplies them by array dimensions and adds them up, so the bench can
 * print the same rows the paper does.
 */

#ifndef TA_SIM_AREA_MODEL_H
#define TA_SIM_AREA_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

namespace ta {

/** Unit areas in um^2, from Table 2 of the paper. */
struct ComponentAreas
{
    double ppe = 50.3;          ///< 12-bit prefix PE
    double ape = 101.7;         ///< 24-bit accumulation PE
    double noc = 19520.0;       ///< 8-way Benes + crossbar, per unit
    double scoreboard = 92507.0; ///< dynamic scoreboard (shared)
    double peBitFusion = 548.0; ///< 8-bit fusible PE
    double peAnt = 210.0;       ///< 4-bit adaptive-type PE
    double peOlive = 319.0;     ///< 4-bit outlier-victim PE
    double peBitVert = 985.0;   ///< 8-bit bit-slice PE
    double peTender = 329.0;    ///< 4-bit decomposed PE
};

/** One row of the Table 2 area comparison. */
struct AreaReport
{
    std::string arch;
    double coreAreaMm2 = 0.0;
    uint64_t bufferKb = 0;
};

class AreaModel
{
  public:
    explicit AreaModel(ComponentAreas areas = {}) : areas_(areas) {}

    const ComponentAreas &areas() const { return areas_; }

    /**
     * TransArray compute-core area: `units` x (PPE + APE arrays of
     * t_lanes x m_adders plus one NoC) plus one shared scoreboard.
     */
    AreaReport transArray(uint32_t units, uint32_t t_lanes,
                          uint32_t m_adders, uint64_t buffer_kb,
                          bool dynamic_scoreboard = true) const;

    /** Baseline core area: rows x cols PEs of the named unit area. */
    AreaReport baseline(const std::string &arch, double pe_um2,
                        uint32_t rows, uint32_t cols,
                        uint64_t buffer_kb) const;

    /** All Table 2 rows with the paper's configurations. */
    std::vector<AreaReport> table2() const;

  private:
    ComponentAreas areas_;
};

} // namespace ta

#endif // TA_SIM_AREA_MODEL_H
