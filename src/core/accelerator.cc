#include "core/accelerator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"
#include "exec/scratch_arena.h"
#include "noc/benes.h"
#include "workloads/generators.h"

namespace ta {

LayerRun &
LayerRun::operator+=(const LayerRun &o)
{
    computeCycles += o.computeCycles;
    dramCycles += o.dramCycles;
    cycles += o.cycles;
    dramBytes += o.dramBytes;
    energy += o.energy;
    sparsity.merge(o.sparsity);
    subTiles += o.subTiles;
    exec.merge(o.exec);
    return *this;
}

TransArrayAccelerator::TransArrayAccelerator(Config config)
    : config_(config), unit_(config.unit), pool_(config.threads),
      planCache_(config.planCacheCapacity),
      scratch_(static_cast<size_t>(pool_.threads()))
{
    TA_ASSERT(config_.units >= 1, "need at least one unit");
}

LayerRun
TransArrayAccelerator::runGemm(const MatI32 &w, int weight_bits,
                               size_t m_cols) const
{
    return runLayer(bitSlice(w, weight_bits), m_cols);
}

LayerRun
TransArrayAccelerator::runShape(const GemmShape &shape, int weight_bits,
                                uint64_t seed, size_t repr_rows,
                                size_t repr_cols) const
{
    const size_t nr = std::min<size_t>(shape.n, repr_rows);
    const size_t kr = std::min<size_t>(shape.k, repr_cols);
    const SlicedMatrix w = realLikeSlicedWeights(nr, kr, weight_bits,
                                                 seed);
    LayerRun run = runLayer(w, shape.m);

    const double f = static_cast<double>(shape.n) * shape.k /
                     (static_cast<double>(nr) * kr);
    run.computeCycles = static_cast<uint64_t>(
        std::llround(run.computeCycles * f));
    run.subTiles = static_cast<uint64_t>(std::llround(run.subTiles * f));
    EnergyBreakdown &e = run.energy;
    e.core *= f;
    e.weightBuf *= f;
    e.inputBuf *= f;
    e.prefixBuf *= f;
    e.outputBuf *= f;

    // Recompute DRAM traffic and background energy for the true shape.
    const EnergyParams &ep = config_.energy;
    DramModel dram(config_.dramBytesPerCycle);
    dram.read(shape.n * shape.k * weight_bits / 8 +
              shape.k * shape.m * config_.actBits / 8);
    dram.write(shape.n * shape.m * 4);
    run.dramBytes = dram.totalBytes();
    run.dramCycles = dram.transferCycles();
    run.cycles = std::max(run.computeCycles, run.dramCycles);
    e.otherBuf = 2.0 * run.dramBytes * ep.sramPerByte(24);
    e.dramDynamic = dram.dynamicEnergy(ep);
    e.dramStatic = ep.dramStaticEnergy(run.cycles);
    return run;
}

LayerRun
TransArrayAccelerator::runLayer(const SlicedMatrix &w,
                                size_t m_cols) const
{
    const int t = config_.unit.tBits;
    const size_t tile_rows = config_.unit.maxTransRows;
    const size_t chunks = numChunks(w.bits.cols(), t);
    const size_t row_tiles = ceilDiv(w.bits.rows(), tile_rows);
    const uint64_t total_subtiles = row_tiles * chunks;
    if (total_subtiles == 0 || m_cols == 0)
        return LayerRun{}; // degenerate layer: nothing to do
    // Sec. 4.5: with 4-bit activations each 12-bit PPE splits into two
    // 6-bit PPEs, doubling the effective m-tile width.
    const uint64_t eff_adders =
        config_.unit.adders *
        std::max<uint64_t>(1, 8 / std::max(1, config_.actBits));
    const uint64_t m_tiles = ceilDiv(m_cols, eff_adders);

    // Deterministic stride sampling of homogeneous sub-tiles.
    uint64_t stride = 1;
    if (config_.sampleLimit > 0 && total_subtiles > config_.sampleLimit)
        stride = ceilDiv(total_subtiles, config_.sampleLimit);

    std::unique_ptr<StaticScoreboard> static_sb;
    if (config_.useStaticScoreboard) {
        // Offline calibration: record every TransRow of the tensor
        // (sampled rows suffice for the shared SI).
        std::vector<uint32_t> all_values;
        std::vector<TransRow> rows;
        for (uint64_t s = 0; s < total_subtiles; s += stride) {
            const size_t rt = s / chunks, ch = s % chunks;
            const size_t r0 = rt * tile_rows;
            const size_t r1 = std::min(w.bits.rows(), r0 + tile_rows);
            extractTransRows(w, t, ch, r0, r1, rows);
            for (const auto &row : rows)
                all_values.push_back(row.value);
        }
        static_sb = std::make_unique<StaticScoreboard>(
            config_.unit.scoreboardConfig(), all_values);
    }

    LayerRun run;
    const uint64_t sampled_count = ceilDiv(total_subtiles, stride);
    const uint64_t oh = config_.mTileOverheadCycles;
    const int shards = pool_.threads();
    const PlanCache::Counters cache_before = planCache_.counters();

    // Sampled sub-tiles are independent: shard them across the executor.
    // items[i] slots and per-shard accumulators (merged in shard order
    // below) keep the result bit-identical to the serial loop.
    std::vector<StageCosts> items(sampled_count);
    struct ShardAcc
    {
        SparsityStats sparsity;
        uint64_t ppe = 0, ape = 0, xors = 0;
        uint64_t sorter = 0, sbNodes = 0, benes = 0;
        uint64_t weightBufRows = 0, count = 0;
    };
    std::vector<ShardAcc> accs(shards);

    pool_.run(sampled_count, [&](int shard, size_t i0, size_t i1) {
        ExecScratch &sc = scratch_[shard];
        ShardAcc &a = accs[shard];
        for (size_t i = i0; i < i1; ++i) {
            const uint64_t s = i * stride;
            const size_t rt = s / chunks, ch = s % chunks;
            const size_t r0 = rt * tile_rows;
            const size_t r1 =
                std::min(w.bits.rows(), r0 + tile_rows);
            extractTransRows(w, t, ch, r0, r1, sc.rows);
            TransArrayUnit::SubTileResult res;
            if (static_sb) {
                res = unit_.processSubTileStatic(*static_sb, sc.rows,
                                                 sc.values);
            } else {
                sc.stageValues();
                const auto plan = planCache_.getOrBuild(sc.values, [&] {
                    return unit_.scoreboard().build(sc.values, nullptr,
                                                    sc.scoreboard);
                });
                res = unit_.processSubTilePlanned(*plan, sc.rows);
            }
            a.sparsity.merge(res.stats);
            const DispatchResult &d = res.dispatch;
            items[i] = {d.stage1Cycles(), (d.ppeCycles + oh) * m_tiles,
                        (d.apeCycles + oh) * m_tiles};
            a.ppe += d.ppeOps;
            a.ape += d.apeOps;
            a.xors += d.xorOps;
            a.sorter += d.sorterCompares;
            a.sbNodes += d.scoreboardNodes;
            a.benes += d.benesTraversals * m_tiles;
            a.weightBufRows += sc.rows.size();
            ++a.count;
        }
    });

    uint64_t sampled = 0;
    uint64_t ppe_ops = 0, ape_ops = 0, xor_ops = 0;
    uint64_t sorter_cmp = 0, sb_nodes = 0, benes_trips = 0;
    uint64_t weight_buf_rows = 0;
    for (int s = 0; s < shards; ++s) {
        const ShardAcc &a = accs[s];
        run.sparsity.merge(a.sparsity);
        sampled += a.count;
        ppe_ops += a.ppe;
        ape_ops += a.ape;
        xor_ops += a.xors;
        sorter_cmp += a.sorter;
        sb_nodes += a.sbNodes;
        benes_trips += a.benes;
        weight_buf_rows += a.weightBufRows;
        run.exec.set("exec.shard" + std::to_string(s) + ".subTiles",
                     a.count);
    }
    const PlanCache::Counters cache_after = planCache_.counters();
    run.exec.set("exec.layers", 1);
    run.exec.set("exec.sampledSubTiles", sampled);
    run.exec.set("planCache.hits",
                 cache_after.hits - cache_before.hits);
    run.exec.set("planCache.misses",
                 cache_after.misses - cache_before.misses);
    run.exec.set("planCache.evictions",
                 cache_after.evictions - cache_before.evictions);

    const double scale =
        static_cast<double>(total_subtiles) / static_cast<double>(sampled);
    run.subTiles = total_subtiles;

    // ---- timing -------------------------------------------------------
    const uint64_t pipeline_cycles =
        PipelineModel::steadyStateCycles(items, scale);
    run.computeCycles = ceilDiv(pipeline_cycles, config_.units);

    DramModel dram(config_.dramBytesPerCycle);
    const uint64_t weight_bytes =
        w.origRows * w.bits.cols() * w.wordBits / 8;
    const uint64_t input_bytes =
        w.bits.cols() * m_cols * config_.actBits / 8;
    const uint64_t output_bytes = w.origRows * m_cols * 4;
    dram.read(weight_bytes + input_bytes);
    dram.write(output_bytes);
    run.dramBytes = dram.totalBytes();
    run.dramCycles = dram.transferCycles();
    run.cycles = std::max(run.computeCycles, run.dramCycles);

    // ---- energy ---------------------------------------------------------
    const EnergyParams &ep = config_.energy;
    EnergyBreakdown &e = run.energy;

    // Element-granularity op counts: each node/row op covers every
    // output column of the layer.
    const double ppe_elems = ppe_ops * scale * m_cols;
    const double ape_elems = ape_ops * scale * m_cols;
    BenesNetwork benes(std::max(2, t));
    e.core = ppe_elems * ep.addEnergy(12) + ape_elems * ep.addEnergy(24) +
             xor_ops * scale * ep.xorOp +
             sorter_cmp * scale * ep.sorterCompare +
             sb_nodes * scale * ep.scoreboardNode +
             benes_trips * scale * benes.numSwitches() * ep.benesSwitch +
             ape_elems * ep.shifterOp;
    if (config_.groupSize > 0) {
        // VPU group-wise rescale: one integer scale application per
        // output element per K-group (Sec. 4.5), overlapped with GEMM
        // so it costs energy but no cycles.
        const double rescales =
            ape_elems * t / static_cast<double>(config_.groupSize);
        e.core += rescales * ep.addEnergy(24);
    }

    // Buffer access energies (Table 1 capacities).
    const double bpe_in = config_.actBits / 8.0;
    e.weightBuf = weight_buf_rows * scale * (t / 8.0) * (1.0 + m_tiles) *
                  ep.sramPerByte(8);
    e.inputBuf = ppe_elems * bpe_in * ep.sramPerByte(8);
    // The prefix buffer is distributed per lane (Sec. 4.4), so each
    // access touches a small 18/T KB bank: parent read + result write
    // per PPE op, one result read per APE op, 12-bit words.
    e.prefixBuf = (1.5 * ppe_elems + ape_elems) * 1.5 *
                  ep.sramPerByte(18.0 / t);
    // Bit-level partial results merge in the 24-bit APE accumulator
    // (shifter + add), so the 32-bit output buffer sees one
    // read-modify-write per original weight row, not per sliced row.
    e.outputBuf = ape_elems / w.wordBits * 6.0 * ep.sramPerByte(22);
    e.otherBuf = 2.0 * run.dramBytes * ep.sramPerByte(24);

    e.dramDynamic = dram.dynamicEnergy(ep);
    e.dramStatic = ep.dramStaticEnergy(run.cycles);
    return run;
}

} // namespace ta
