#include "core/pipeline.h"

#include <algorithm>
#include <cmath>

namespace ta {

uint64_t
PipelineModel::totalCycles(const std::vector<StageCosts> &items)
{
    std::array<uint64_t, 3> finish{0, 0, 0};
    for (const StageCosts &c : items) {
        uint64_t prev_stage_done = 0;
        for (int s = 0; s < 3; ++s) {
            const uint64_t start = std::max(finish[s], prev_stage_done);
            finish[s] = start + c[s];
            prev_stage_done = finish[s];
        }
    }
    return finish[2];
}

uint64_t
PipelineModel::steadyStateCycles(const std::vector<StageCosts> &items,
                                 double scale)
{
    if (items.empty())
        return 0;
    uint64_t sum = 0;
    for (const StageCosts &c : items)
        sum += std::max({c[0], c[1], c[2]});
    const uint64_t fill = items.front()[0] + items.front()[1];
    return static_cast<uint64_t>(std::llround(sum * scale)) + fill;
}

} // namespace ta
