/** @file Integration tests for the full attention head pipeline. */

#include <gtest/gtest.h>

#include <cmath>

#include "eval/attention_pipeline.h"
#include "workloads/generators.h"

namespace ta {
namespace {

AttentionPipeline::Config
pcfg()
{
    AttentionPipeline::Config c;
    c.gemm.scoreboard.tBits = 8;
    c.accel.sampleLimit = 32;
    return c;
}

TEST(AttentionPipeline, ScoresAreExact)
{
    AttentionPipeline pipe(pcfg());
    const MatI32 k = randomActivations(32, 16, 8, 1);
    const MatI32 v = randomActivations(32, 16, 8, 2);
    const MatI32 q = randomActivations(16, 8, 8, 3);
    const AttentionResult r = pipe.runHead(k, v, q);
    EXPECT_TRUE(r.scores == denseGemm(k, q));
}

TEST(AttentionPipeline, ProbabilitiesCloseToFloatSoftmax)
{
    AttentionPipeline pipe(pcfg());
    const MatI32 k = randomActivations(64, 32, 8, 4);
    const MatI32 v = randomActivations(64, 32, 8, 5);
    const MatI32 q = randomActivations(32, 16, 8, 6);
    const AttentionResult r = pipe.runHead(k, v, q);
    EXPECT_LT(r.probError, 0.03);
}

TEST(AttentionPipeline, ContextMatchesIntegerReference)
{
    // PV must be the exact integer GEMM of V^T x probs.
    AttentionPipeline pipe(pcfg());
    const MatI32 k = randomActivations(32, 16, 8, 7);
    const MatI32 v = randomActivations(32, 16, 8, 8);
    const MatI32 q = randomActivations(16, 8, 8, 9);
    const AttentionResult r = pipe.runHead(k, v, q);

    MatI32 vt(16, 32);
    for (size_t kk = 0; kk < 32; ++kk)
        for (size_t d = 0; d < 16; ++d)
            vt.at(d, kk) = v.at(kk, d);
    MatI32 probs_km(32, 8);
    for (size_t kk = 0; kk < 32; ++kk)
        for (size_t qq = 0; qq < 8; ++qq)
            probs_km.at(kk, qq) = r.probs.at(qq, kk);
    EXPECT_TRUE(r.context == denseGemm(vt, probs_km));
}

TEST(AttentionPipeline, ContextApproximatesFloatAttention)
{
    AttentionPipeline pipe(pcfg());
    const size_t keys = 48, dim = 32, qn = 8;
    const MatI32 k = randomActivations(keys, dim, 8, 10);
    const MatI32 v = randomActivations(keys, dim, 8, 11);
    const MatI32 q = randomActivations(dim, qn, 8, 12);
    const AttentionResult r = pipe.runHead(k, v, q);

    // Float reference: softmax(K q / sqrt(d))^T V.
    const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
    double worst = 0;
    for (size_t qq = 0; qq < qn; ++qq) {
        std::vector<double> logits(keys), p(keys);
        double mx = -1e300;
        for (size_t kk = 0; kk < keys; ++kk) {
            double s = 0;
            for (size_t d = 0; d < dim; ++d)
                s += static_cast<double>(k.at(kk, d)) * q.at(d, qq);
            logits[kk] = s * scale;
            mx = std::max(mx, logits[kk]);
        }
        double sum = 0;
        for (size_t kk = 0; kk < keys; ++kk) {
            p[kk] = std::exp(logits[kk] - mx);
            sum += p[kk];
        }
        for (size_t d = 0; d < dim; ++d) {
            double ref = 0;
            for (size_t kk = 0; kk < keys; ++kk)
                ref += p[kk] / sum * v.at(kk, d);
            const double got = r.context.at(d, qq) / 255.0;
            worst = std::max(worst, std::fabs(got - ref));
        }
    }
    // int8 probabilities: error bounded by quantization (~1/255 per
    // key aggregated over |V| <= 127).
    EXPECT_LT(worst, 4.0);
}

TEST(AttentionPipeline, CycleComposition)
{
    AttentionPipeline pipe(pcfg());
    const MatI32 k = randomActivations(64, 32, 8, 13);
    const MatI32 v = randomActivations(64, 32, 8, 14);
    const MatI32 q = randomActivations(32, 64, 8, 15);
    const AttentionResult r = pipe.runHead(k, v, q);
    EXPECT_GT(r.gemmCycles, 0u);
    EXPECT_GT(r.vpuCycles, 0u);
    EXPECT_GE(r.totalCycles, r.gemmCycles);
    // VPU mostly overlapped behind the PV GEMM.
    EXPECT_LE(r.totalCycles, r.gemmCycles + r.vpuCycles);
}

TEST(AttentionPipeline, SparsityCollectedFromBothGemms)
{
    AttentionPipeline pipe(pcfg());
    const MatI32 k = randomActivations(32, 16, 8, 16);
    const MatI32 v = randomActivations(32, 16, 8, 17);
    const MatI32 q = randomActivations(16, 8, 8, 18);
    const AttentionResult r = pipe.runHead(k, v, q);
    // QK^T rows: 32*8 per chunk * 2 chunks; PV rows: 16*8 * 4 chunks.
    EXPECT_EQ(r.sparsity.rows, 32u * 8 * 2 + 16u * 8 * 4);
    EXPECT_LE(r.sparsity.totalOps(), r.sparsity.bitOps);
}

TEST(AttentionPipeline, ShapeMismatchRejected)
{
    AttentionPipeline pipe(pcfg());
    const MatI32 k = randomActivations(32, 16, 8, 19);
    const MatI32 v = randomActivations(16, 16, 8, 20); // wrong keys
    const MatI32 q = randomActivations(16, 8, 8, 21);
    EXPECT_THROW(pipe.runHead(k, v, q), std::logic_error);
}

} // namespace
} // namespace ta
