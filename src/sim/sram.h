/**
 * @file
 * On-chip SRAM buffer model with banking and a double-buffer wrapper.
 * Tracks access byte counts for the energy model; the TransArray's 80 KB
 * buffer budget (Table 1) instantiates five of these (weight, input,
 * output, prefix, double buffer).
 */

#ifndef TA_SIM_SRAM_H
#define TA_SIM_SRAM_H

#include <cstdint>
#include <string>

#include "sim/energy_model.h"

namespace ta {

class SramBuffer
{
  public:
    SramBuffer(std::string name, uint64_t bytes, uint32_t banks = 1);

    const std::string &name() const { return name_; }
    uint64_t capacityBytes() const { return bytes_; }
    double capacityKb() const { return bytes_ / 1024.0; }
    uint32_t banks() const { return banks_; }

    /** Record accesses (for energy); no functional storage needed. */
    void read(uint64_t bytes) { readBytes_ += bytes; }
    void write(uint64_t bytes) { writeBytes_ += bytes; }

    uint64_t readBytes() const { return readBytes_; }
    uint64_t writeBytes() const { return writeBytes_; }
    uint64_t totalBytes() const { return readBytes_ + writeBytes_; }

    /** Dynamic access energy in pJ under the given parameters. */
    double accessEnergy(const EnergyParams &p) const;

    void reset();

  private:
    std::string name_;
    uint64_t bytes_;
    uint32_t banks_;
    uint64_t readBytes_ = 0;
    uint64_t writeBytes_ = 0;
};

/**
 * Double buffer (Sec. 4.4 / 4.6): two halves of equal size; fills of the
 * shadow half overlap with drains of the active half, so the exposed
 * latency of a fill is max(0, fillCycles - computeCycles).
 */
class DoubleBuffer
{
  public:
    DoubleBuffer(std::string name, uint64_t bytes_per_half);

    SramBuffer &storage() { return storage_; }
    const SramBuffer &storage() const { return storage_; }

    /**
     * Account one pipelined stage: a fill taking `fill_cycles` hidden
     * behind `compute_cycles` of work. Returns the exposed cycles.
     */
    uint64_t overlap(uint64_t fill_cycles, uint64_t compute_cycles);

    uint64_t exposedCycles() const { return exposedCycles_; }

  private:
    SramBuffer storage_;
    uint64_t exposedCycles_ = 0;
};

} // namespace ta

#endif // TA_SIM_SRAM_H
