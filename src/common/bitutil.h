/**
 * @file
 * Bit-manipulation utilities shared by the Hasse-graph and scoreboard
 * machinery. TransRows are at most 16 bits wide, so everything here is
 * specialized for small unsigned values held in uint32_t.
 */

#ifndef TA_COMMON_BITUTIL_H
#define TA_COMMON_BITUTIL_H

#include <bit>
#include <cstdint>
#include <vector>

namespace ta {

/** Number of set bits (the Hamming weight / Hasse level of a TransRow). */
inline int
popcount(uint32_t v)
{
    return std::popcount(v);
}

/** Index of the lowest set bit. Undefined for v == 0. */
inline int
lowestSetBit(uint32_t v)
{
    return std::countr_zero(v);
}

/** Index of the highest set bit. Undefined for v == 0. */
inline int
highestSetBit(uint32_t v)
{
    return 31 - std::countl_zero(v);
}

/** True when v is a power of two (exactly one set bit). */
inline bool
isPow2(uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** ceil(log2(v)) for v >= 1. */
int ceilLog2(uint32_t v);

/** Integer ceiling division. */
inline uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Enumerate the indices of all set bits in v, ascending.
 * Used to expand prefix/suffix bitmaps into node lists.
 */
std::vector<int> setBits(uint32_t v);

/**
 * Hamming-order node sequence for a T-bit Hasse graph: all values in
 * [0, 2^T) sorted by (popcount, value). This is the forward traversal
 * order of the scoreboard (Alg. 1 of the paper); reversing it yields the
 * backward order (Alg. 2).
 */
std::vector<uint32_t> hammingOrder(int t_bits);

} // namespace ta

#endif // TA_COMMON_BITUTIL_H
