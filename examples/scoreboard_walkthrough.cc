/**
 * @file
 * Step-by-step walkthrough of the paper's Fig. 5 scoreboarding example:
 * seven TransRows {14, 2, 5, 1, 15, 7, 2} at T = 4 go through the
 * PopCount sort, the forward/backward passes and lane balancing; the
 * example prints the resulting Scoreboard Information, the balanced
 * forest, and the cycle-accurate issue trace, then executes the
 * Fig. 1/8 arithmetic to show result reuse producing exact outputs.
 *
 * Build & run:  ./build/examples/scoreboard_walkthrough
 */

#include <cstdio>

#include "common/table.h"
#include "core/trace.h"
#include "noc/bitonic_sorter.h"
#include "scoreboard/hw_scoreboard.h"

using namespace ta;

int
main()
{
    // Fig. 5 step 0: the incoming TransRows (row index = arrival order).
    const std::vector<uint32_t> values = {14, 2, 5, 1, 15, 7, 2};
    std::vector<TransRow> rows;
    for (size_t i = 0; i < values.size(); ++i)
        rows.push_back({values[i], static_cast<uint32_t>(i)});

    std::printf("incoming TransRows (value / binary):\n  ");
    for (const auto &r : rows)
        std::printf("%u(%u%u%u%u) ", r.value, (r.value >> 3) & 1,
                    (r.value >> 2) & 1, (r.value >> 1) & 1,
                    r.value & 1);
    std::printf("\n\n");

    // Step 1: PopCount (Hamming) sort.
    BitonicSorter sorter(8);
    const auto sorted = sorter.sort(rows);
    std::printf("after PopCount sort: ");
    for (const auto &r : sorted)
        std::printf("%u ", r.value);
    std::printf("(levels ");
    for (const auto &r : sorted)
        std::printf("%d ", popcount(r.value));
    std::printf(")\n\n");

    // Steps 2-5: the hardware scoreboard (two lanes like the figure).
    HwScoreboard::Config hc;
    hc.tBits = 4;
    hc.sorterCapacity = 8;
    HwScoreboard hw(hc);
    const auto res = hw.process(rows);

    Table si_table("Scoreboard Information (Fig. 5 step 6)");
    si_table.setHeader({"TransRow", "Prefix", "TranSparsity (XOR)",
                        "Lane", "Kind"});
    for (const PlanNode &pn : res.plan.nodes) {
        const uint32_t ts = pn.outlier ? pn.id : pn.id ^ pn.parent;
        si_table.addRow(
            {std::to_string(pn.id),
             pn.parent == 0 ? "-" : std::to_string(pn.parent),
             std::to_string(ts), std::to_string(pn.lane),
             pn.materialized ? "TR (materialized)"
                             : (pn.count > 1 ? "PR + FR x" +
                                                   std::to_string(
                                                       pn.count - 1)
                                             : "PR")});
    }
    si_table.print();

    std::printf("scoreboard cycles: sort %llu + record %llu + forward "
                "%llu + backward %llu = %llu\n\n",
                static_cast<unsigned long long>(res.sortCycles),
                static_cast<unsigned long long>(res.recordCycles),
                static_cast<unsigned long long>(res.forwardCycles),
                static_cast<unsigned long long>(res.backwardCycles),
                static_cast<unsigned long long>(res.totalCycles()));

    // The PPE issue trace (one add per node, lanes independent).
    const auto trace = ExecutionTracer::trace(res.plan);
    std::printf("PPE issue trace:\n%s\n",
                ExecutionTracer::render(trace).c_str());
    std::printf("lane-independence check: %s\n",
                ExecutionTracer::validate(trace) ? "PASS" : "FAIL");

    // Fig. 1 arithmetic: input column (-2, 4, -5, 6) for bits 0..3.
    const int64_t input[4] = {-2, 4, -5, 6};
    int64_t partial[16] = {0};
    uint64_t adds = 0;
    for (const PlanNode &pn : res.plan.nodes) {
        int64_t acc = pn.outlier ? 0 : partial[pn.parent];
        uint32_t diff = pn.outlier ? pn.id : pn.id ^ pn.parent;
        for (int b : setBits(diff)) {
            acc += input[b];
            ++adds;
        }
        partial[pn.id] = acc;
    }
    std::printf("\nresult reuse on input (-2, 4, -5, 6):\n");
    uint64_t dense_adds = 0, bit_adds = 0;
    for (uint32_t v : values) {
        int64_t ref = 0;
        for (int b : setBits(v)) {
            ref += input[b];
            ++bit_adds;
        }
        dense_adds += 4;
        std::printf("  TransRow %2u -> %4lld (reused: %s)\n", v,
                    static_cast<long long>(partial[v]),
                    partial[v] == ref ? "exact" : "WRONG");
    }
    std::printf("\nadds: dense %llu, bit-sparse %llu, transitive %llu "
                "(%.1fx saving over bit sparsity)\n",
                static_cast<unsigned long long>(dense_adds),
                static_cast<unsigned long long>(bit_adds),
                static_cast<unsigned long long>(adds),
                static_cast<double>(bit_adds) / adds);
    return 0;
}
