/**
 * @file
 * Failure-injection and degenerate-input tests: empty tensors, zero
 * workloads, out-of-range accesses, and missing calibration — the paths
 * a downstream user hits first when wiring the library up wrong. Also
 * the cluster fault-injection spec grammar (`--faults`), which must
 * reject malformed schedules with a clear error instead of replaying
 * the wrong adversarial run, and the corrupt_segment fault: a flipped
 * byte in a catalog segment's data region sails through open-time
 * validation by design, so serving must reject the damaged plane at
 * pin time with a clean "storage:" protocol error — no crash, no
 * wrong bytes — while everything else keeps serving.
 */

#include <sys/stat.h>

#include <future>
#include <gtest/gtest.h>

#include "baselines/baseline.h"
#include "cluster/fault_injector.h"
#include "core/accelerator.h"
#include "core/dispatcher.h"
#include "core/transitive_gemm.h"
#include "eval/attention_pipeline.h"
#include "quant/bitslice.h"
#include "scoreboard/static_scoreboard.h"
#include "service/protocol.h"
#include "service/scheduler.h"
#include "storage/buffer_manager.h"
#include "storage/segment_format.h"
#include "workloads/generators.h"

namespace ta {
namespace {

TEST(FailureInjection, EmptyWeightMatrixYieldsZeroRun)
{
    TransArrayAccelerator acc(TransArrayAccelerator::Config{});
    SlicedMatrix empty;
    empty.wordBits = 8;
    empty.origRows = 0;
    empty.bits = MatBit(0, 0);
    const LayerRun r = acc.runLayer(empty, 128);
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.dramBytes, 0u);
    EXPECT_DOUBLE_EQ(r.energy.total(), 0.0);
}

TEST(FailureInjection, ZeroOutputColumnsYieldsZeroRun)
{
    TransArrayAccelerator acc(TransArrayAccelerator::Config{});
    const SlicedMatrix w = realLikeSlicedWeights(16, 32, 8, 1);
    const LayerRun r = acc.runLayer(w, 0);
    EXPECT_EQ(r.cycles, 0u);
}

TEST(FailureInjection, ExtractTransRowsChunkOutOfBounds)
{
    const SlicedMatrix s = realLikeSlicedWeights(4, 16, 4, 2);
    EXPECT_THROW(extractTransRows(s, 8, 2, 0, 4), std::logic_error);
    EXPECT_THROW(extractTransRows(s, 8, 0, 0, s.bits.rows() + 1),
                 std::logic_error);
}

TEST(FailureInjection, ScoreboardRejectsMaxDistanceOne)
{
    ScoreboardConfig c;
    c.tBits = 4;
    c.maxDistance = 1;
    EXPECT_THROW((Scoreboard(c)), std::logic_error);
}

TEST(FailureInjection, DispatcherAllZeroRows)
{
    Dispatcher d([] {
        Dispatcher::Config c;
        c.tBits = 4;
        return c;
    }());
    ScoreboardConfig sc;
    sc.tBits = 4;
    std::vector<TransRow> rows(32, TransRow{0, 0});
    const auto r = d.dispatch(Scoreboard(sc).build(rows), rows);
    EXPECT_EQ(r.ppeOps, 0u);
    EXPECT_EQ(r.apeOps, 0u);
    EXPECT_EQ(r.apeCycles, 0u);
    EXPECT_EQ(r.xorOps, 0u);
}

TEST(FailureInjection, StaticScoreboardWithEmptyCalibration)
{
    // Nothing was calibrated: every tile value is an SI miss computed
    // from scratch, but evaluation still terminates and bounds hold.
    ScoreboardConfig c;
    c.tBits = 8;
    StaticScoreboard sb(c, {});
    const SparsityStats s = sb.evaluateTile({3, 255, 0, 129});
    EXPECT_EQ(s.zrRows, 1u);
    EXPECT_EQ(s.siMisses, 3u);
    EXPECT_EQ(s.totalOps(), 2u + 8u + 2u); // popcounts of 3, 255, 129
    EXPECT_LE(s.totalOps(), s.bitOps);
}

TEST(FailureInjection, GemmEngineRejectsShapeMismatch)
{
    TransitiveGemmConfig c;
    c.scoreboard.tBits = 4;
    TransitiveGemmEngine engine(c);
    const MatI32 w = randomIntMatrix(4, 8, 4, 3);
    const MatI32 in = randomActivations(9, 2, 8, 4); // K mismatch
    EXPECT_THROW(engine.run(w, 4, in), std::logic_error);
}

TEST(FailureInjection, GemmEngineSingleColumnOutput)
{
    // GEMV corner: one activation column.
    TransitiveGemmConfig c;
    c.scoreboard.tBits = 8;
    TransitiveGemmEngine engine(c);
    const MatI32 w = randomIntMatrix(8, 32, 8, 5);
    const MatI32 in = randomActivations(32, 1, 8, 6);
    const auto res = engine.run(w, 8, in);
    EXPECT_TRUE(res.output == denseGemm(w, in));
}

TEST(FailureInjection, AttentionSingleKeySingleQuery)
{
    AttentionPipeline::Config c;
    c.gemm.scoreboard.tBits = 8;
    c.accel.sampleLimit = 8;
    AttentionPipeline pipe(c);
    const MatI32 k = randomActivations(1, 8, 8, 7);
    const MatI32 v = randomActivations(1, 8, 8, 8);
    const MatI32 q = randomActivations(8, 1, 8, 9);
    const AttentionResult r = pipe.runHead(k, v, q);
    // One key: softmax must put all mass on it.
    EXPECT_EQ(r.probs.at(0, 0), 255);
}

TEST(FailureInjection, BaselineZeroMacsRejected)
{
    auto ant = makeBaseline("ANT");
    // Zero-MAC shape: compute cycles are zero but the model must not
    // divide by zero or underflow.
    const LayerRun r = ant->runGemm({0, 16, 16}, 8, 8);
    EXPECT_EQ(r.computeCycles, 0u);
}

TEST(FailureInjection, AcceleratorSingleSubTileLayer)
{
    // A layer exactly one sub-tile big: sampling logic must not skip it.
    TransArrayAccelerator::Config c;
    c.sampleLimit = 512;
    TransArrayAccelerator acc(c);
    const SlicedMatrix w = realLikeSlicedWeights(32, 8, 8, 10);
    const LayerRun r = acc.runLayer(w, 32);
    EXPECT_EQ(r.subTiles, 1u);
    EXPECT_GT(r.cycles, 0u);
}

// ---- fault-spec grammar ---------------------------------------------------

TEST(FaultSpec, ParsesFullGrammar)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(parseFaultSpec(
        "kill@12:2;blackhole@5:0:400;corrupt_cache@20:1", plan, err))
        << err;
    ASSERT_EQ(plan.events.size(), 3u);

    EXPECT_EQ(plan.events[0].kind, FaultKind::Kill);
    EXPECT_EQ(plan.events[0].atRequest, 12u);
    EXPECT_EQ(plan.events[0].count, 2);

    EXPECT_EQ(plan.events[1].kind, FaultKind::Blackhole);
    EXPECT_EQ(plan.events[1].atRequest, 5u);
    EXPECT_EQ(plan.events[1].slot, 0);
    EXPECT_EQ(plan.events[1].durationMs, 400);

    EXPECT_EQ(plan.events[2].kind, FaultKind::CorruptCache);
    EXPECT_EQ(plan.events[2].atRequest, 20u);
    EXPECT_EQ(plan.events[2].slot, 1);
}

TEST(FaultSpec, DefaultsAndEmptySpec)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(parseFaultSpec("kill@3", plan, err)) << err;
    ASSERT_EQ(plan.events.size(), 1u);
    EXPECT_EQ(plan.events[0].count, 1);
    EXPECT_EQ(plan.events[0].slot, -1); // seeded random victim

    ASSERT_TRUE(parseFaultSpec("blackhole@0:-1", plan, err)) << err;
    EXPECT_EQ(plan.events[0].slot, -1);
    EXPECT_EQ(plan.events[0].durationMs, 200);

    ASSERT_TRUE(parseFaultSpec("", plan, err));
    EXPECT_TRUE(plan.events.empty());
    ASSERT_TRUE(parseFaultSpec("kill@1;;", plan, err));
    EXPECT_EQ(plan.events.size(), 1u);
}

TEST(FaultSpec, RejectsMalformedEvents)
{
    FaultPlan plan;
    std::string err;
    const char *bad[] = {
        "kill",              // missing '@'
        "defenestrate@3",    // unknown kind
        "kill@",             // missing index
        "kill@x",            // non-numeric index
        "kill@-1",           // negative index
        "kill@3:0",          // zero kill count
        "kill@3:65",         // count over bound
        "kill@3:2:9",        // too many fields
        "blackhole@3:0:0",   // zero duration
        "blackhole@3:0:400:9", // too many fields
        "corrupt_cache@3:5000", // slot over bound
        "kill@3:2bad",       // trailing garbage
        "corrupt_segment@3:1", // AT only: the catalog is shared
    };
    for (const char *spec : bad) {
        err.clear();
        EXPECT_FALSE(parseFaultSpec(spec, plan, err)) << spec;
        EXPECT_FALSE(err.empty()) << spec;
    }
}

TEST(FaultSpec, ParsesCorruptSegment)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(parseFaultSpec("kill@2;corrupt_segment@7", plan, err))
        << err;
    ASSERT_EQ(plan.events.size(), 2u);
    EXPECT_EQ(plan.events[1].kind, FaultKind::CorruptSegment);
    EXPECT_EQ(plan.events[1].atRequest, 7u);
}

// ---- segment corruption ---------------------------------------------------

/** Write a one-model, one-plane catalog into a fresh directory and
 *  return (dir, segment path). The plane matches what a request with
 *  shape {64, 64, 32}, wbits 4, seed 9 would synthesize. */
std::pair<std::string, std::string>
writeTinyCatalog(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    ::mkdir(dir.c_str(), 0755);
    SegmentModelInput m;
    m.name = "m1";
    m.baseSeed = 9;
    m.wbits = 4;
    SegmentEntryInput e;
    e.layer = "fc";
    e.n = 64;
    e.k = 64;
    e.m = 32;
    e.seed = 9;
    e.wbits = 4;
    e.reprRows = 64;
    e.reprCols = 64;
    e.packed = packSlicedBits(realLikeSlicedWeights(64, 64, 4, 9));
    m.entries.push_back(std::move(e));
    const std::string path = dir + "/m1.taseg";
    std::string err;
    EXPECT_TRUE(writeSegmentFile(path, {m}, &err)) << err;
    return {dir, path};
}

ServiceRequest
tinyCatalogRequest()
{
    ServiceRequest req;
    req.id = 1;
    req.shape = {64, 64, 32};
    req.wbits = 4;
    req.seed = 9;
    req.samples = 16;
    req.model = "m1";
    return req;
}

TEST(SegmentCorruption, DamageIsInvisibleAtOpenButFatalAtPin)
{
    const auto [dir, path] = writeTinyCatalog("seg_corrupt_pin");
    ASSERT_TRUE(corruptSegmentDataByte(path));

    // Open-time validation deliberately does not hash data pages, so
    // the damaged file still opens — the whole point of the fault.
    BufferManager mgr;
    std::string err;
    ASSERT_TRUE(mgr.openCatalog(dir, &err)) << err;
    const CatalogEntry *entry = mgr.findEntry("m1", 9, 4, 64, 64);
    ASSERT_NE(entry, nullptr);

    // Pin-time page verification must catch it.
    BufferManager::Pin pin = mgr.pin(*entry, &err);
    EXPECT_FALSE(pin.ok());
    EXPECT_FALSE(err.empty());
}

TEST(SegmentCorruption, RejectsUnopenablePaths)
{
    EXPECT_FALSE(corruptSegmentDataByte(::testing::TempDir() +
                                        "no_such_file.taseg"));
    // A non-segment file must not be touched (header does not parse).
    const std::string junk = ::testing::TempDir() + "junk.taseg";
    std::FILE *f = std::fopen(junk.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a segment", f);
    std::fclose(f);
    EXPECT_FALSE(corruptSegmentDataByte(junk));
}

TEST(SegmentCorruption, InjectorFiresAgainstTheCatalogDirectory)
{
    const auto [dir, path] = writeTinyCatalog("seg_corrupt_fire");

    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(parseFaultSpec("corrupt_segment@3", plan, err)) << err;

    // No replicas: the fault targets the shared catalog, not a slot.
    ReplicaProcessConfig rcfg;
    rcfg.count = 0;
    ReplicaManager manager(rcfg);
    FaultInjector injector(manager, plan, /*seed=*/1,
                           /*planCacheBase=*/"", dir);
    injector.onRequestIssued(2);
    EXPECT_EQ(injector.counters().segmentCorruptions, 0u);
    injector.onRequestIssued(3);
    EXPECT_EQ(injector.counters().segmentCorruptions, 1u);

    // The fired fault flipped a data byte: pins must now fail.
    BufferManager mgr;
    ASSERT_TRUE(mgr.openCatalog(dir, &err)) << err;
    const CatalogEntry *entry = mgr.findEntry("m1", 9, 4, 64, 64);
    ASSERT_NE(entry, nullptr);
    BufferManager::Pin pin = mgr.pin(*entry, &err);
    EXPECT_FALSE(pin.ok());
}

TEST(SegmentCorruption, ServedAsCleanStorageErrorNotACrash)
{
    const auto [dir, path] = writeTinyCatalog("seg_corrupt_serve");
    ASSERT_TRUE(corruptSegmentDataByte(path));

    ServiceConfig cfg;
    cfg.threads = 1;
    cfg.sessions = 1;
    cfg.window = 1;
    cfg.catalogDir = dir;
    ServiceScheduler sched(cfg);
    sched.start();

    auto roundTrip = [&](const ServiceRequest &req) {
        std::promise<std::string> got;
        sched.submit(req, [&](const std::string &line) {
            got.set_value(line);
        });
        return got.get_future().get();
    };

    // The corrupted plane: a clean protocol error, never wrong bytes.
    const std::string bad = roundTrip(tinyCatalogRequest());
    EXPECT_TRUE(isStorageErrorLine(bad)) << bad;

    // The same request without a model synthesizes and still serves
    // bytes identical to a standalone serial run.
    ServiceRequest plain = tinyCatalogRequest();
    plain.model.clear();
    plain.id = 2;
    const std::string good = roundTrip(plain);
    TransArrayAccelerator oracle(engineConfig(engineKeyOf(plain), 1));
    EXPECT_EQ(good,
              serializeResponse(plain, oracle.runShape(plain.shape,
                                                       plain.wbits,
                                                       plain.seed)));
    sched.stop();
}

} // namespace
} // namespace ta
