/**
 * @file
 * CNN inference on the TransArray: ResNet-18 convolutions become GEMMs
 * via im2col (Sec. 5.10). This example walks the first residual block,
 * runs each conv's GEMM on the accelerator model at 4-bit weights, and
 * functionally verifies one layer end-to-end (im2col GEMM == direct
 * convolution).
 *
 * Build & run:  ./build/examples/resnet_im2col
 */

#include <cstdio>

#include "common/table.h"
#include "core/accelerator.h"
#include "core/transitive_gemm.h"
#include "workloads/generators.h"
#include "workloads/resnet18.h"

using namespace ta;

namespace {

/** Direct (naive) convolution reference for the functional check. */
MatI64
directConv(const MatI32 &img /*C x H*W*/, const MatI32 &w /*F x C*K*K*/,
           uint64_t ch, uint64_t size, uint64_t kernel)
{
    const uint64_t out = size - kernel + 1; // stride 1, no padding
    MatI64 res(w.rows(), out * out, 0);
    for (size_t f = 0; f < w.rows(); ++f)
        for (uint64_t y = 0; y < out; ++y)
            for (uint64_t x = 0; x < out; ++x)
                for (uint64_t c = 0; c < ch; ++c)
                    for (uint64_t ky = 0; ky < kernel; ++ky)
                        for (uint64_t kx = 0; kx < kernel; ++kx) {
                            const int32_t iv = img.at(
                                c, (y + ky) * size + (x + kx));
                            const int32_t wv = w.at(
                                f, (c * kernel + ky) * kernel + kx);
                            res.at(f, y * out + x) +=
                                static_cast<int64_t>(iv) * wv;
                        }
    return res;
}

/** im2col: (C x H*W) image -> (C*K*K x out*out) patch matrix. */
MatI32
im2col(const MatI32 &img, uint64_t ch, uint64_t size, uint64_t kernel)
{
    const uint64_t out = size - kernel + 1;
    MatI32 patches(ch * kernel * kernel, out * out, 0);
    for (uint64_t c = 0; c < ch; ++c)
        for (uint64_t ky = 0; ky < kernel; ++ky)
            for (uint64_t kx = 0; kx < kernel; ++kx)
                for (uint64_t y = 0; y < out; ++y)
                    for (uint64_t x = 0; x < out; ++x)
                        patches.at((c * kernel + ky) * kernel + kx,
                                   y * out + x) =
                            img.at(c, (y + ky) * size + (x + kx));
    return patches;
}

} // namespace

int
main()
{
    // ---- functional check on a small conv ----------------------------
    const uint64_t ch = 4, size = 10, kernel = 3, filters = 8;
    const MatI32 img = randomActivations(ch, size * size, 8, 51);
    const MatI32 w =
        realLikeWeights(filters, ch * kernel * kernel, 4, 52);

    TransitiveGemmConfig cfg;
    cfg.scoreboard.tBits = 8;
    const auto gemm_out =
        TransitiveGemmEngine(cfg).run(w, 4, im2col(img, ch, size,
                                                   kernel));
    const MatI64 conv_out = directConv(img, w, ch, size, kernel);
    if (!(gemm_out.output == conv_out)) {
        std::fprintf(stderr, "FAIL: im2col GEMM != direct conv\n");
        return 1;
    }
    std::printf("im2col transitive GEMM == direct convolution "
                "(bit-exact)\n\n");

    // ---- accelerator timing over the first layers of ResNet-18 -------
    TransArrayAccelerator::Config tc;
    tc.sampleLimit = 64;
    const TransArrayAccelerator acc(tc);

    Table t("ResNet-18 leading layers on TransArray (4-bit weights)");
    t.setHeader({"Layer", "GEMM", "Cycles", "Density (%)"});
    const WorkloadSuite s = resnet18Layers();
    uint64_t seed = 61;
    for (size_t i = 0; i < 6; ++i) {
        const auto &l = s.layers[i];
        const int bits = i == 0 ? 8 : 4;
        const LayerRun r = acc.runShape(l.shape, bits, seed++);
        char shape[64];
        std::snprintf(shape, sizeof(shape), "%llux%llux%llu",
                      static_cast<unsigned long long>(l.shape.n),
                      static_cast<unsigned long long>(l.shape.k),
                      static_cast<unsigned long long>(l.shape.m));
        t.addRow({l.name, shape, std::to_string(r.cycles),
                  Table::fmt(100.0 * r.sparsity.totalDensity(), 2)});
    }
    t.print();
    return 0;
}
