/**
 * @file
 * Extension study: whole-model prefill throughput. The paper evaluates
 * one transformer block (all blocks are identical — Sec. 5.1); scaling
 * by the block count and adding the attention GEMMs gives end-to-end
 * prefill time and tokens/second per model on the TransArray at
 * 500 MHz, with Olive as the reference. FC layers run TA-4bit
 * (iso-accuracy per Table 3); attention runs TA-8bit with the dynamic
 * scoreboard.
 *
 * Doubles as the host-performance benchmark of the parallel sub-tile
 * executor: the suites run serially and at --threads N, the cycle
 * totals must agree bit-exactly, and the JSON reports wall-clock,
 * sub-tiles/s and the plan-cache hit rate (host-volatile by design —
 * this benchmark measures the host).
 */

#include <chrono>
#include <cstdio>

#include "baselines/baseline.h"
#include "common/table.h"
#include "harness/harness.h"
#include "workloads/llama.h"
#include "workloads/suite_runner.h"

using namespace ta;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct ModelCycles
{
    uint64_t blockCycles = 0;
    uint64_t modeledSubTiles = 0;  ///< simulated (sampling re-scaled)
    uint64_t executedSubTiles = 0; ///< actually run on the host
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
};

/** One full pass over every model's FC + attention suites.
 *  `layer_cycles`, when given, collects every per-layer cycle count
 *  (deterministic, so the derived percentiles are JSON-safe). */
std::vector<ModelCycles>
runAllModels(const TransArrayAccelerator &acc,
             const std::vector<LlamaConfig> &models, uint64_t fc_seed,
             uint64_t attn_seed, size_t batch = 1,
             std::vector<double> *layer_cycles = nullptr)
{
    std::vector<ModelCycles> out;
    out.reserve(models.size());
    for (const LlamaConfig &m : models) {
        const SuiteRunResult fc =
            runSuite(acc, llamaFcLayers(m), 4, fc_seed, batch);
        const SuiteRunResult attn =
            runSuite(acc, llamaAttentionLayers(m), 8, attn_seed, batch);
        if (layer_cycles != nullptr) {
            for (const LayerRun &r : fc.perLayer)
                layer_cycles->push_back(
                    static_cast<double>(r.cycles));
            for (const LayerRun &r : attn.perLayer)
                layer_cycles->push_back(
                    static_cast<double>(r.cycles));
        }
        ModelCycles mc;
        mc.blockCycles = fc.total.cycles + attn.total.cycles;
        mc.modeledSubTiles = fc.total.subTiles + attn.total.subTiles;
        mc.executedSubTiles =
            fc.total.exec.get("exec.sampledSubTiles") +
            attn.total.exec.get("exec.sampledSubTiles");
        mc.cacheHits = fc.total.exec.get("planCache.hits") +
                       attn.total.exec.get("planCache.hits");
        mc.cacheMisses = fc.total.exec.get("planCache.misses") +
                         attn.total.exec.get("planCache.misses");
        out.push_back(mc);
    }
    return out;
}

uint64_t
baselineSuiteCycles(const BaselineAccelerator &acc,
                    const WorkloadSuite &s, int wbits, int abits,
                    ParallelExecutor &pool)
{
    // Shared baseline suite driver (sharded layers, slot-order merge).
    return runBaselineSuite(acc, s, wbits, abits, 0.5, &pool)
        .total.cycles;
}

int
runModelThroughput(HarnessContext &ctx)
{
    const int threads = ctx.threads();
    std::vector<LlamaConfig> models = allLlamaModels();
    if (ctx.quick())
        models.resize(std::min<size_t>(models.size(), 2));
    const uint64_t fc_seed = ctx.seed(1);
    const uint64_t attn_seed = fc_seed + 49; // historical: 1 -> 50

    TransArrayAccelerator::Config tc;
    tc.sampleLimit = ctx.quick() ? 24 : 64;
    tc.threads = 1;
    const TransArrayAccelerator serial_acc(tc);
    const auto parallel_acc = ctx.makeAccelerator(tc);

    // Serial reference pass, then the parallel pass; the cycle totals
    // must agree bit-exactly (deterministic sharded merge).
    const double t0 = nowSeconds();
    const std::vector<ModelCycles> serial =
        runAllModels(serial_acc, models, fc_seed, attn_seed);
    const double serial_secs = nowSeconds() - t0;

    const double t1 = nowSeconds();
    std::vector<double> layer_cycles;
    const std::vector<ModelCycles> parallel =
        runAllModels(*parallel_acc, models, fc_seed, attn_seed, 1,
                     &layer_cycles);
    const double parallel_secs = nowSeconds() - t1;

    // Batch-level sharded dispatch: same suites with `window` layers in
    // flight per runLayersBatched call; cycle totals must stay
    // bit-identical to both passes above. A fresh accelerator keeps the
    // comparison symmetric — every pass pays its own plan-cache misses
    // (reusing parallel_acc's warm cache would measure cache warmth,
    // not batching).
    const size_t window = ctx.batch(8);
    const auto batched_acc = ctx.makeAccelerator(tc);
    const double t2 = nowSeconds();
    const std::vector<ModelCycles> batched =
        runAllModels(*batched_acc, models, fc_seed, attn_seed, window);
    const double batched_secs = nowSeconds() - t2;

    uint64_t modeled_tiles = 0, executed_tiles = 0;
    uint64_t cache_hits = 0, cache_misses = 0;
    bool identical = true;
    for (size_t i = 0; i < models.size(); ++i) {
        identical = identical &&
                    serial[i].blockCycles == parallel[i].blockCycles &&
                    serial[i].blockCycles == batched[i].blockCycles;
        modeled_tiles += parallel[i].modeledSubTiles;
        executed_tiles += parallel[i].executedSubTiles;
        cache_hits += parallel[i].cacheHits;
        cache_misses += parallel[i].cacheMisses;
    }
    if (!identical) {
        std::fprintf(stderr,
                     "FATAL: parallel/batched cycle totals diverge "
                     "from the serial reference\n");
        return 1;
    }

    auto olive = makeBaseline("Olive");
    ParallelExecutor &pool = ctx.executor();
    Table t("Whole-model prefill (seq 2048) at 500 MHz");
    t.setHeader({"Model", "Blocks", "TA block cycles",
                 "TA prefill (ms)", "TA tokens/s", "Olive prefill (ms)",
                 "Speedup"});
    for (size_t i = 0; i < models.size(); ++i) {
        const LlamaConfig &m = models[i];
        const uint64_t ta_block = parallel[i].blockCycles;
        const uint64_t ol_block =
            baselineSuiteCycles(*olive, llamaFcLayers(m), 8, 8, pool) +
            baselineSuiteCycles(*olive, llamaAttentionLayers(m), 8, 8,
                                pool);
        const double ta_ms = ta_block * m.layers / 500e3;
        const double ol_ms = ol_block * m.layers / 500e3;
        t.addRow({m.name, std::to_string(m.layers),
                  std::to_string(ta_block), Table::fmt(ta_ms, 1),
                  Table::fmt(m.seq / (ta_ms / 1e3), 0),
                  Table::fmt(ol_ms, 1), Table::fmt(ol_ms / ta_ms, 2)});
        ctx.metric("block_cycles_" + m.name, ta_block);
    }
    t.print();

    const double hit_rate =
        cache_hits + cache_misses == 0
            ? 0.0
            : static_cast<double>(cache_hits) /
                  (cache_hits + cache_misses);
    std::printf(
        "\nHost execution: %d thread(s) %.3fs vs serial %.3fs "
        "(%.2fx), %.0f executed sub-tiles/s (%llu executed, "
        "%llu modeled), plan-cache hit rate %.1f%%\n",
        threads, parallel_secs, serial_secs,
        serial_secs / parallel_secs, executed_tiles / parallel_secs,
        static_cast<unsigned long long>(executed_tiles),
        static_cast<unsigned long long>(modeled_tiles),
        100.0 * hit_rate);
    std::printf(
        "Batched dispatch (--batch %zu): %.3fs, %.2fx vs per-layer "
        "dispatch, cycle totals bit-identical\n",
        window, batched_secs, parallel_secs / batched_secs);

    ctx.metric("threads", static_cast<uint64_t>(threads));
    ctx.metric("serial_wall_secs", serial_secs);
    ctx.metric("parallel_wall_secs", parallel_secs);
    ctx.metric("speedup", serial_secs / parallel_secs);
    ctx.metric("sub_tiles_executed", executed_tiles);
    ctx.metric("sub_tiles_modeled", modeled_tiles);
    ctx.metric("sub_tiles_per_sec", executed_tiles / parallel_secs);
    ctx.metric("plan_cache_hits", cache_hits);
    ctx.metric("plan_cache_misses", cache_misses);
    ctx.metric("plan_cache_hit_rate", hit_rate);
    ctx.metric("batch_window", static_cast<uint64_t>(window));
    ctx.metric("batched_wall_secs", batched_secs);
    ctx.metric("batch_speedup_vs_per_layer",
               parallel_secs / batched_secs);
    ctx.metric("bit_identical", std::string("true"));

    // Per-layer cycle distribution across every suite (shared
    // percentile convention with the service metrics). Cycles are
    // simulation-deterministic, so these belong in the JSON.
    const PercentileSummary layer_pct =
        percentileSummary(layer_cycles);
    std::printf("Per-layer cycles p50/p95/p99: %.0f / %.0f / %.0f "
                "(%zu layers)\n",
                layer_pct.p50, layer_pct.p95, layer_pct.p99,
                layer_cycles.size());
    ctx.metric("layer_cycles_p50", layer_pct.p50);
    ctx.metric("layer_cycles_p95", layer_pct.p95);
    ctx.metric("layer_cycles_p99", layer_pct.p99);

    std::printf(
        "\nExtension takeaway: block-level speedups survive end-to-end;\n"
        "attention (TA-8bit, score streaming bound) dilutes the FC-only\n"
        "factor slightly, exactly as Figs. 10 vs 12 predict.\n");
    return 0;
}

} // namespace

TA_BENCHMARK("model_throughput",
             "whole-model prefill throughput + host executor benchmark",
             runModelThroughput);
