#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/ (CI docs-lint step).

Finds every inline markdown link in the given files and verifies that
relative targets resolve to an existing file (anchors are stripped;
external URLs are skipped). Also enforces the repo's documentation
floor: docs/ARCHITECTURE.md and docs/BENCH_SCHEMA.md must exist and be
linked from README.md.

Usage: check_docs.py README.md docs/*.md
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
REQUIRED_FROM_README = ("docs/ARCHITECTURE.md", "docs/BENCH_SCHEMA.md")


def check_file(path: str) -> list:
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        return [f"{path}: unreadable: {e}"]
    base = os.path.dirname(path)
    for target in LINK_RE.findall(text):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
            continue
        if target.startswith("#"):  # intra-document anchor
            continue
        rel = target.split("#", 1)[0]
        if not os.path.exists(os.path.normpath(os.path.join(base, rel))):
            errors.append(f"{path}: broken link -> {target}")
    return errors


def main(argv: list) -> int:
    if not argv:
        print("usage: check_docs.py FILE...", file=sys.stderr)
        return 2
    errors = []
    for path in argv:
        errors.extend(check_file(path))

    for required in REQUIRED_FROM_README:
        if not os.path.exists(required):
            errors.append(f"missing required document: {required}")
    if os.path.exists("README.md"):
        readme = open("README.md", encoding="utf-8").read()
        for required in REQUIRED_FROM_README:
            if required not in readme:
                errors.append(f"README.md does not link {required}")

    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        print(f"docs ok ({len(argv)} files checked)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
