#include "common/table.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace ta {

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    TA_ASSERT(header_.empty() || row.size() == header_.size(),
              "row width ", row.size(), " != header width ",
              header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::render() const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            if (c < widths.size())
                widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::ostringstream oss;
        for (size_t c = 0; c < row.size(); ++c) {
            oss << "| " << row[c]
                << std::string(widths[c] - row[c].size() + 1, ' ');
        }
        oss << "|\n";
        return oss.str();
    };

    std::ostringstream oss;
    oss << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        oss << render_row(header_);
        size_t total = 1;
        for (size_t w : widths)
            total += w + 3;
        oss << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        oss << render_row(row);
    return oss.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fputc('\n', stdout);
}

} // namespace ta
