/**
 * @file
 * The unified benchmark-harness framework: shared CLI parsing
 * (--threads/--seed/--json-out/--filter/--list/--quick/--plan-cache),
 * a HarnessContext handed to every registered benchmark (owned
 * executor, seed policy, schema-stable JSON metrics, plan-cache-backed
 * accelerator/cache factories) and the harnessMain() driver behind
 * `ta_bench` and the thin per-figure executables.
 *
 * JSON contract: BENCH_<name>.json holds only simulation-deterministic
 * metrics plus the "benchmark"/"schema_version"/"quick" stamps, so the
 * file is byte-identical across thread counts and across cold/warm
 * plan-cache runs. Host-volatile numbers (wall clock, cache hit rates)
 * go to stdout — except in the host-performance benchmarks
 * (micro_kernels, model_throughput), which exist to measure them.
 */

#ifndef TA_HARNESS_HARNESS_H
#define TA_HARNESS_HARNESS_H

#include <memory>
#include <string>

#include "core/accelerator.h"
#include "exec/parallel_executor.h"
#include "exec/plan_cache.h"
#include "harness/bench_json.h"
#include "harness/plan_cache_store.h"
#include "harness/registry.h"
#include "harness/sweep.h"

namespace ta {

/** Version stamped into every BENCH_*.json as "schema_version". */
constexpr uint64_t kBenchJsonSchemaVersion = 2;

/** Options shared by every harness executable. */
struct HarnessOptions
{
    int threads = 0;      ///< 0 = ParallelExecutor::defaultThreads()
    bool haveSeed = false; ///< --seed given (overrides bench defaults)
    uint64_t seed = 0;
    bool emitJson = false; ///< --json-out: write BENCH_<name>.json
    bool quick = false;    ///< --quick: CI-sized shapes/iterations
    bool list = false;     ///< --list: enumerate and exit
    std::string filter;    ///< --filter substring on benchmark names
    std::string planCachePath; ///< --plan-cache persistence file
    /**
     * --batch: layers in flight per suite dispatch window (see
     * runSuite/runLayersBatched). 0 = benchmark default; simulated
     * results are identical for every window, only host wall-clock
     * changes.
     */
    size_t batch = 0;
    /**
     * --kernels: sub-tile kernel backend (scalar|avx2|neon|auto).
     * Empty = leave the TA_KERNELS/auto dispatch untouched. Simulated
     * results are byte-identical for every backend; only host
     * wall-clock changes.
     */
    std::string kernels;
};

/**
 * Parse the shared CLI into `opt`. Returns false after printing usage
 * on an unknown flag, a missing value or --help.
 */
bool parseHarnessOptions(int argc, char **argv, HarnessOptions &opt);

namespace detail {

/** unique_ptr deleter: captures the accel's plans into the store. */
struct AccelCapture
{
    PlanCacheStore *store = nullptr;

    void operator()(TransArrayAccelerator *acc) const;
};

/** unique_ptr deleter: captures a standalone cache into the store. */
struct CacheCapture
{
    PlanCacheStore *store = nullptr;
    ScoreboardConfig config;

    void operator()(PlanCache *cache) const;
};

} // namespace detail

/**
 * Per-benchmark execution context handed to every registered benchmark.
 *
 * Thread safety: a HarnessContext belongs to the single thread running
 * its benchmark — metric()/executor()/factories are not synchronized.
 * Parallelism happens *inside* a benchmark through the owned
 * ParallelExecutor (or an accelerator's), never across benchmarks:
 * harnessMain() runs benchmarks strictly in name order.
 *
 * Determinism: seed(), threads() and batch() resolve the shared CLI
 * once; every simulated metric a benchmark records must be invariant
 * under --threads/--batch/--plan-cache (see docs/BENCH_SCHEMA.md for
 * the JSON contract and the host-performance exceptions).
 */
class HarnessContext
{
  public:
    /** Accelerator whose plan cache persists through --plan-cache. */
    using AcceleratorHandle =
        std::unique_ptr<TransArrayAccelerator, detail::AccelCapture>;
    /** Standalone warm-started plan cache (fig9/fig13 sweeps). */
    using PlanCacheHandle =
        std::unique_ptr<PlanCache, detail::CacheCapture>;

    HarnessContext(std::string bench_name, const HarnessOptions &opt,
                   PlanCacheStore *store);

    const std::string &name() const { return name_; }
    /** Resolved executor width (>= 1). */
    int threads() const { return threads_; }
    bool quick() const { return options_.quick; }
    /** The --seed override, or the benchmark's documented default. */
    uint64_t seed(uint64_t fallback) const
    {
        return options_.haveSeed ? options_.seed : fallback;
    }
    /** The --batch override, or the benchmark's documented default. */
    size_t batch(size_t fallback = 1) const
    {
        return options_.batch > 0 ? options_.batch : fallback;
    }

    /** Shared executor for sweepGrid() and the parallel scans. */
    ParallelExecutor &executor();

    // ---- schema-stable JSON metrics ----------------------------------
    void metric(const std::string &key, double value);
    void metric(const std::string &key, uint64_t value);
    void metric(const std::string &key, int value)
    {
        metric(key, static_cast<uint64_t>(value));
    }
    void metric(const std::string &key, const std::string &value);

    /**
     * Write BENCH_<name>.json when --json-out is active; returns the
     * path ("" when disabled or on failure). Called by harnessMain()
     * after a successful run.
     */
    std::string writeJson() const;

    // ---- plan-cache-backed factories ---------------------------------

    /**
     * Build an accelerator with the context's thread count and, when
     * --plan-cache is active, a cache warm-started from the store; the
     * handle captures the plans back into the store on destruction.
     */
    AcceleratorHandle
    makeAccelerator(TransArrayAccelerator::Config config) const;

    /** Standalone warm-started cache for analyzer-driven sweeps. */
    PlanCacheHandle makePlanCache(const ScoreboardConfig &config,
                                  size_t capacity) const;

  private:
    std::string name_;
    HarnessOptions options_;
    PlanCacheStore *store_; ///< nullptr without --plan-cache
    int threads_;
    std::unique_ptr<ParallelExecutor> pool_; ///< lazily constructed
    BenchJson json_;
};

/**
 * Shared main: parse the CLI, select benchmarks (all, --filter, or the
 * fixed `only` name baked into a thin per-figure executable), run them
 * in name order against a shared plan-cache store and persist it.
 * Returns 0, the first failing benchmark's rc, or 2 on CLI errors.
 */
int harnessMain(int argc, char **argv, const char *only = nullptr);

} // namespace ta

#endif // TA_HARNESS_HARNESS_H
