/**
 * @file
 * Lightweight statistics registry in the spirit of gem5's stats package.
 * Simulator components register named scalar counters; harnesses dump them
 * for reporting and energy accounting.
 */

#ifndef TA_COMMON_STATS_H
#define TA_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ta {

/** A named group of scalar counters. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Add delta to the named counter (created on first use). */
    void add(const std::string &stat, uint64_t delta = 1);

    /** Overwrite the named counter. */
    void set(const std::string &stat, uint64_t value);

    /** Current value; 0 if never touched. */
    uint64_t get(const std::string &stat) const;

    /** True if the counter has been touched. */
    bool has(const std::string &stat) const;

    /** Reset all counters to zero. */
    void reset();

    /** Merge another group's counters into this one. */
    void merge(const StatGroup &other);

    const std::string &name() const { return name_; }
    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }

    /** Render "name.stat value" lines. */
    std::string dump() const;

  private:
    std::string name_;
    std::map<std::string, uint64_t> counters_;
};

/**
 * The q-th percentile (q in [0, 100]) of `values` with linear
 * interpolation between closest ranks — the convention NumPy's default
 * uses, chosen once here so every reporting surface (service metrics,
 * model_throughput) agrees. Deterministic: the input is copied and
 * sorted internally. Returns 0 for an empty input.
 */
double percentileOf(std::vector<double> values, double q);

/** The standard latency-reporting triple. */
struct PercentileSummary
{
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
};

/** p50/p95/p99 of `values` in one sort (percentileOf convention). */
PercentileSummary percentileSummary(std::vector<double> values);

} // namespace ta

#endif // TA_COMMON_STATS_H
