/**
 * @file
 * Minimal dense row-major matrix used across the library. Kept deliberately
 * simple: the simulator works with small tiles, so no expression templates
 * or blocking are needed; correctness and clarity win.
 */

#ifndef TA_QUANT_MATRIX_H
#define TA_QUANT_MATRIX_H

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace ta {

/** Dense row-major matrix of element type T. */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    Matrix(size_t rows, size_t cols, T fill = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }

    T &
    at(size_t r, size_t c)
    {
        TA_ASSERT(r < rows_ && c < cols_, "matrix index (", r, ",", c,
                  ") out of (", rows_, ",", cols_, ")");
        return data_[r * cols_ + c];
    }

    const T &
    at(size_t r, size_t c) const
    {
        TA_ASSERT(r < rows_ && c < cols_, "matrix index (", r, ",", c,
                  ") out of (", rows_, ",", cols_, ")");
        return data_[r * cols_ + c];
    }

    T *rowPtr(size_t r) { return &data_[r * cols_]; }
    const T *rowPtr(size_t r) const { return &data_[r * cols_]; }

    std::vector<T> &data() { return data_; }
    const std::vector<T> &data() const { return data_; }

    bool
    operator==(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               data_ == other.data_;
    }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<T> data_;
};

using MatF = Matrix<float>;
using MatI8 = Matrix<int8_t>;
using MatI32 = Matrix<int32_t>;
using MatI64 = Matrix<int64_t>;
using MatBit = Matrix<uint8_t>; // values restricted to {0, 1}

/**
 * Dense integer GEMM reference: out[n][m] = sum_k w[n][k] * in[k][m].
 * This is the golden model every sparse/transitive execution is checked
 * against.
 */
MatI64 denseGemm(const MatI32 &w, const MatI32 &in);

/** Dense float GEMM reference for quantization-error evaluation. */
MatF denseGemmF(const MatF &w, const MatF &in);

} // namespace ta

#endif // TA_QUANT_MATRIX_H
