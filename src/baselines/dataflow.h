/**
 * @file
 * Loop-nest dataflow model for systolic baselines. The paper's
 * comparison accelerators are PE arrays fed by a two-level memory
 * hierarchy (DRAM -> on-chip buffer -> array); which operand stays
 * resident across the innermost loops (weight-, input- or
 * output-stationary) determines how often each tensor is re-streamed.
 * This model derives per-tensor buffer and DRAM traffic for a GEMM from
 * the tiling implied by the array shape and buffer budget — the counts
 * the BaselineAccelerator energy model consumes.
 */

#ifndef TA_BASELINES_DATAFLOW_H
#define TA_BASELINES_DATAFLOW_H

#include <cstdint>
#include <string>

#include "workloads/gemm_workload.h"

namespace ta {

enum class Dataflow
{
    WeightStationary,
    OutputStationary,
    InputStationary,
};

/** Human-readable dataflow name. */
std::string dataflowName(Dataflow df);

/** Per-tensor traffic of one GEMM under a dataflow. */
struct TrafficReport
{
    // DRAM bytes (each tensor counted with its re-stream factor).
    uint64_t dramWeightBytes = 0;
    uint64_t dramInputBytes = 0;
    uint64_t dramOutputBytes = 0;
    // On-chip buffer access bytes (array-side reads/writes).
    uint64_t bufWeightBytes = 0;
    uint64_t bufInputBytes = 0;
    uint64_t bufOutputBytes = 0;

    uint64_t dramBytes() const
    {
        return dramWeightBytes + dramInputBytes + dramOutputBytes;
    }
    uint64_t bufBytes() const
    {
        return bufWeightBytes + bufInputBytes + bufOutputBytes;
    }
};

class DataflowModel
{
  public:
    struct Config
    {
        Dataflow dataflow = Dataflow::WeightStationary;
        uint32_t peRows = 32;  ///< array rows (N dimension)
        uint32_t peCols = 32;  ///< array cols (M dimension)
        uint64_t bufferBytes = 512 * 1024;
        int weightBits = 8;
        int actBits = 8;
        int accBits = 32;
    };

    explicit DataflowModel(Config config);

    const Config &config() const { return config_; }

    /** K-dimension tile that fits the buffer alongside the operands. */
    uint64_t kTile(const GemmShape &shape) const;

    /** Traffic of one GEMM under the configured dataflow. */
    TrafficReport traffic(const GemmShape &shape) const;

  private:
    Config config_;
};

} // namespace ta

#endif // TA_BASELINES_DATAFLOW_H
