/**
 * @file
 * ta_sim: command-line driver for the simulator. Runs one GEMM through
 * the TransArray model (and optionally every baseline) and prints
 * cycles, the energy breakdown and the transitive-sparsity statistics.
 *
 * Usage:
 *   ta_sim [--n N] [--k K] [--m M] [--wbits B] [--abits B]
 *          [--tbits T] [--maxdist D] [--units U] [--static]
 *          [--baselines] [--seed S] [--samples LIMIT] [--threads N]
 *          [--plan-cache FILE] [--batch N]
 *
 * Host threading: --threads N shards the sub-tile loop across N worker
 * threads (results are bit-identical for any N); defaults to the
 * TA_THREADS environment variable, else 1.
 *
 * Batched dispatch: --batch N runs N instances of the GEMM as one
 * batch window with multiple layers in flight on the executor
 * (runLayersBatched); instance i draws weights with the layerSeed()
 * rule seed+i, so instance 0 reproduces the --batch 1 run exactly.
 *
 * Plan persistence: --plan-cache FILE warm-starts the scoreboard plan
 * cache from a previous run's snapshot and saves the merged snapshot
 * back on exit (simulated results are unaffected — plans are pure).
 *
 * Example (LLaMA-7B q_proj at int4):
 *   ta_sim --n 4096 --k 4096 --m 2048 --wbits 4 --baselines
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baselines/baseline.h"
#include "common/table.h"
#include "core/accelerator.h"
#include "exec/parallel_executor.h"
#include "harness/plan_cache_store.h"
#include "workloads/suite_runner.h"

using namespace ta;

namespace {

struct Options
{
    GemmShape shape{4096, 4096, 2048};
    int wbits = 4;
    int abits = 8;
    int tbits = 8;
    int maxdist = 4;
    uint32_t units = 6;
    bool useStatic = false;
    bool baselines = false;
    uint64_t seed = 1;
    size_t samples = 96;
    int threads = ParallelExecutor::defaultThreads();
    std::string planCache;
    size_t batch = 1;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--n N] [--k K] [--m M] [--wbits B] [--abits B]\n"
        "          [--tbits T] [--maxdist D] [--units U] [--static]\n"
        "          [--baselines] [--seed S] [--samples LIMIT]\n"
        "          [--threads N] [--plan-cache FILE] [--batch N]\n",
        argv0);
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             a.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (a == "--static") {
            opt.useStatic = true;
        } else if (a == "--baselines") {
            opt.baselines = true;
        } else if (a == "--help" || a == "-h") {
            return false;
        } else {
            const char *v = next();
            if (!v)
                return false;
            if (a == "--n")
                opt.shape.n = std::strtoull(v, nullptr, 10);
            else if (a == "--k")
                opt.shape.k = std::strtoull(v, nullptr, 10);
            else if (a == "--m")
                opt.shape.m = std::strtoull(v, nullptr, 10);
            else if (a == "--wbits")
                opt.wbits = std::atoi(v);
            else if (a == "--abits")
                opt.abits = std::atoi(v);
            else if (a == "--tbits")
                opt.tbits = std::atoi(v);
            else if (a == "--maxdist")
                opt.maxdist = std::atoi(v);
            else if (a == "--units")
                opt.units = std::atoi(v);
            else if (a == "--seed")
                opt.seed = std::strtoull(v, nullptr, 10);
            else if (a == "--samples")
                opt.samples = std::strtoull(v, nullptr, 10);
            else if (a == "--threads")
                opt.threads = std::atoi(v);
            else if (a == "--plan-cache")
                opt.planCache = v;
            else if (a == "--batch")
                opt.batch = std::strtoull(v, nullptr, 10);
            else {
                std::fprintf(stderr, "unknown flag %s\n", a.c_str());
                return false;
            }
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage(argv[0]);
        return 2;
    }

    TransArrayAccelerator::Config cfg;
    cfg.unit.tBits = opt.tbits;
    cfg.unit.maxDistance = opt.maxdist;
    cfg.units = opt.units;
    cfg.actBits = opt.abits;
    cfg.useStaticScoreboard = opt.useStatic;
    cfg.sampleLimit = opt.samples;
    cfg.threads = opt.threads;
    TransArrayAccelerator acc(cfg); // non-const: --plan-cache warm-start

    PlanCacheStore store;
    const ScoreboardConfig sc = cfg.unit.scoreboardConfig();
    if (!opt.planCache.empty() && loadPlanCacheFile(store, opt.planCache))
        store.restore(sc, acc.planCache());

    std::printf("GEMM %llu x %llu x %llu, int%d weights, int%d "
                "activations (%.2f GMACs)\n",
                static_cast<unsigned long long>(opt.shape.n),
                static_cast<unsigned long long>(opt.shape.k),
                static_cast<unsigned long long>(opt.shape.m), opt.wbits,
                opt.abits, opt.shape.macs() / 1e9);
    std::printf("TransArray: T=%d, maxDistance=%d, %u units, %s "
                "scoreboard, %d host thread(s)\n\n",
                opt.tbits, opt.maxdist, opt.units,
                opt.useStatic ? "static" : "dynamic", acc.threads());

    // --batch N keeps N instances of the GEMM in flight on the
    // executor; instance i seeds with layerSeed(seed, i) = seed + i, so
    // instance 0 is byte-identical to the unbatched run and the table
    // below is unchanged by the batch width.
    LayerRun ta;
    double batch_secs = 0;
    uint64_t batch_cycles = 0;
    uint64_t sampled_total = 0;
    if (opt.batch > 1) {
        std::vector<BatchLayerRequest> reqs(opt.batch);
        for (size_t i = 0; i < opt.batch; ++i)
            reqs[i] = BatchLayerRequest{opt.shape, opt.wbits,
                                        layerSeed(opt.seed, i)};
        const auto t0 = std::chrono::steady_clock::now();
        const std::vector<LayerRun> runs = acc.runLayersBatched(reqs);
        batch_secs = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
        for (const LayerRun &r : runs) {
            batch_cycles += r.cycles;
            sampled_total += r.exec.get("exec.sampledSubTiles");
        }
        ta = runs.front();
    } else {
        ta = acc.runShape(opt.shape, opt.wbits, opt.seed);
        sampled_total = ta.exec.get("exec.sampledSubTiles");
    }

    Table t("results");
    t.setHeader({"Arch", "Cycles", "ms @500MHz", "Energy (uJ)",
                 "Speedup vs TA"});
    auto row = [&](const std::string &name, const LayerRun &r) {
        t.addRow({name, std::to_string(r.cycles),
                  Table::fmt(r.cycles / 500e3, 3),
                  Table::fmt(r.energy.total() / 1e6, 2),
                  Table::fmt(static_cast<double>(r.cycles) / ta.cycles,
                             2)});
    };
    row("TransArray-" + std::to_string(opt.wbits) + "bit", ta);
    if (opt.baselines) {
        for (const char *name :
             {"BitFusion", "ANT", "Olive", "Tender", "BitVert"}) {
            const LayerRun r = makeBaseline(name)->runGemm(
                opt.shape, std::max(opt.wbits, 4), opt.abits, 0.5);
            row(name, r);
        }
    }
    t.print();

    const SparsityStats &s = ta.sparsity;
    std::printf("transitive density %.2f%% (bit sparsity %.1f%%): "
                "PR %.1f%% FR %.1f%% TR %.2f%% ZR rows %.1f%%\n",
                100 * s.totalDensity(), 100 * s.bitDensity(),
                100 * s.prDensity(), 100 * s.frDensity(),
                100 * s.trDensity(), 100 * s.zrSparsity());
    std::printf("compute %llu cycles, DRAM %llu cycles -> %s-bound\n",
                static_cast<unsigned long long>(ta.computeCycles),
                static_cast<unsigned long long>(ta.dramCycles),
                ta.computeCycles >= ta.dramCycles ? "compute" : "DRAM");
    if (opt.batch > 1) {
        std::printf("batched dispatch: %zu layers in flight, %llu total "
                    "cycles, %.3fs host wall (%.1f layers/s)\n",
                    opt.batch,
                    static_cast<unsigned long long>(batch_cycles),
                    batch_secs, opt.batch / batch_secs);
    }
    const PlanCache::Counters pc = acc.planCacheCounters();
    // With --batch > 1 the counts cover every instance, matching the
    // accelerator-lifetime plan-cache counters on the same line.
    std::printf("host: %llu sampled sub-tiles, plan cache %llu hits / "
                "%llu misses (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(sampled_total),
                static_cast<unsigned long long>(pc.hits),
                static_cast<unsigned long long>(pc.misses),
                100.0 * pc.hitRate());
    if (!opt.planCache.empty()) {
        store.capture(sc, acc.planCache());
        savePlanCacheFile(store, opt.planCache);
    }
    return 0;
}
