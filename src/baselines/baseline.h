/**
 * @file
 * Shared cycle/energy model for the five baseline accelerators of
 * Sec. 5.1 (BitFusion, ANT, Olive, Tender, BitVert). Each baseline is a
 * PE array at 500 MHz whose effective MAC throughput depends on operand
 * widths (and, for BitVert, bit density); energy combines per-MAC logic
 * energy, systolic-style buffer traffic and the same DRAM model as the
 * TransArray so Fig. 10's bars are comparable. The paper used the
 * ANT-framework simulators; reimplementation notes per baseline live in
 * each subclass header.
 */

#ifndef TA_BASELINES_BASELINE_H
#define TA_BASELINES_BASELINE_H

#include <memory>
#include <string>

#include "core/accelerator.h"
#include "sim/energy_model.h"
#include "workloads/gemm_workload.h"

namespace ta {

class BaselineAccelerator
{
  public:
    struct Config
    {
        uint32_t peRows = 0;
        uint32_t peCols = 0;
        int nativeBits = 8;      ///< PE operand width
        double utilization = 0.85;
        EnergyParams energy;
        double dramBytesPerCycle = 25.6;
    };

    explicit BaselineAccelerator(Config config) : config_(config) {}
    virtual ~BaselineAccelerator() = default;

    virtual std::string name() const = 0;

    const Config &config() const { return config_; }

    /**
     * Override the effective DRAM bandwidth (B/cycle). CNN benches use
     * this to model on-chip feature-map residency via layer fusion.
     */
    void setDramBytesPerCycle(double bpc) { config_.dramBytesPerCycle = bpc; }
    uint64_t numPes() const
    {
        return static_cast<uint64_t>(config_.peRows) * config_.peCols;
    }

    /**
     * Simulate one GEMM. `bit_density` is the fraction of one-bits in
     * the sliced weights (only bit-slice baselines use it).
     */
    LayerRun runGemm(const GemmShape &shape, int weight_bits,
                     int act_bits, double bit_density = 0.5) const;

  protected:
    /** Effective MACs per cycle for the given operand widths. */
    virtual double macsPerCycle(int weight_bits, int act_bits,
                                double bit_density) const = 0;

    /** Logic energy per MAC, pJ. */
    virtual double macEnergyPj(int weight_bits, int act_bits,
                               double bit_density) const;

    Config config_;
};

/** Factory for all five baselines with the Table 2 configurations. */
std::unique_ptr<BaselineAccelerator>
makeBaseline(const std::string &name, const EnergyParams &energy = {});

/** Totals of one baseline suite pass plus the per-layer breakdown. */
struct BaselineSuiteResult
{
    LayerRun total;                ///< per-layer runs with `count` applied
    std::vector<LayerRun> perLayer; ///< one entry per suite layer (count=1)
};

/**
 * Run every layer of `suite` through `acc.runGemm`, sharding the layer
 * loop across `pool` when one is given (nullptr or a 1-thread pool runs
 * serially). Each layer's result lands in its own slot and the totals
 * reduce in slot (layer) order, so the result is bit-identical for any
 * thread count — the same recipe as buildStaticScoreboard's calibration
 * scan. runGemm is a pure function of (config, shape, widths, density),
 * so concurrent layer evaluations never share mutable state.
 */
BaselineSuiteResult
runBaselineSuite(const BaselineAccelerator &acc,
                 const WorkloadSuite &suite, int weight_bits,
                 int act_bits, double bit_density = 0.5,
                 ParallelExecutor *pool = nullptr);

} // namespace ta

#endif // TA_BASELINES_BASELINE_H
