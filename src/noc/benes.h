/**
 * @file
 * Benes network (Sec. 4.4): the rearrangeably non-blocking network the
 * dispatcher uses to route input-vector elements to lanes. For N ports it
 * has 2*log2(N)-1 switch stages of N/2 2x2 crosspoints. This model both
 * *functionally routes* arbitrary permutations (the classic looping
 * algorithm) and reports stage/switch counts for the latency/energy model.
 */

#ifndef TA_NOC_BENES_H
#define TA_NOC_BENES_H

#include <cstdint>
#include <memory>
#include <vector>

namespace ta {

/** Recursive switch-setting tree for one routed permutation. */
struct BenesRouting
{
    /** inCross[j]: input switch j exchanges its two ports. */
    std::vector<bool> inCross;
    /** outCross[j]: output switch j exchanges its two ports (empty at n=2). */
    std::vector<bool> outCross;
    std::unique_ptr<BenesRouting> upper;
    std::unique_ptr<BenesRouting> lower;

    /** Total 2x2 switches configured in this tree. */
    uint64_t switchCount() const;
};

class BenesNetwork
{
  public:
    /** N-port network; N must be a power of two >= 2. */
    explicit BenesNetwork(uint32_t ports);

    uint32_t ports() const { return ports_; }

    /** Switch stages: 2*log2(N) - 1. */
    uint32_t numStages() const;

    /** 2x2 switches: stages * N/2. */
    uint64_t numSwitches() const;

    /**
     * Compute switch settings realizing out[o] = in[perm[o]].
     * `perm` must be a permutation of [0, N).
     */
    BenesRouting route(const std::vector<uint32_t> &perm) const;

    /** Apply a routing to concrete data (functional check). */
    std::vector<int64_t> apply(const BenesRouting &r,
                               const std::vector<int64_t> &in) const;

  private:
    void routeRec(const std::vector<uint32_t> &perm, BenesRouting &r) const;
    std::vector<int64_t> applyRec(const BenesRouting &r,
                                  const std::vector<int64_t> &in) const;

    uint32_t ports_;
};

} // namespace ta

#endif // TA_NOC_BENES_H
