/**
 * @file
 * BitFusion (Sharma et al., ISCA'18) model: a 28x32 array of bit-level
 * dynamically composable PEs (Table 2: 548 um^2 each). A fused PE
 * natively multiplies 8x8; narrower operands recompose the 2-bit
 * BitBricks, scaling throughput by (8/w)*(8/a); wider operands (16-bit
 * attention baseline, Fig. 12) pay the inverse.
 */

#ifndef TA_BASELINES_BITFUSION_H
#define TA_BASELINES_BITFUSION_H

#include "baselines/baseline.h"

namespace ta {

class BitFusion : public BaselineAccelerator
{
  public:
    explicit BitFusion(const EnergyParams &energy);

    std::string name() const override { return "BitFusion"; }

  protected:
    double macsPerCycle(int weight_bits, int act_bits,
                        double bit_density) const override;
};

} // namespace ta

#endif // TA_BASELINES_BITFUSION_H
