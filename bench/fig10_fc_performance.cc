/**
 * @file
 * Fig. 10: runtime and energy on the FC layers of one transformer block
 * for the seven LLaMA models across seven accelerators: BitFusion*,
 * ANT, Olive, Tender*, BitVert, TA-8bit and TA-4bit (*: reference only,
 * unacceptable PPL per Table 3). Reports cycles, speedup over Olive
 * (the paper's headline comparison) and total energy with the DRAM /
 * buffer / core split.
 */

#include <cmath>
#include <cstdio>

#include "baselines/baseline.h"
#include "common/table.h"
#include "harness/harness.h"
#include "workloads/llama.h"
#include "workloads/suite_runner.h"

using namespace ta;

namespace {

struct ArchResult
{
    uint64_t cycles = 0;
    double energyNj = 0;
    EnergyBreakdown energy;
};

ArchResult
runBaselines(const BaselineAccelerator &acc, const WorkloadSuite &suite,
             int wbits, int abits, ParallelExecutor &pool)
{
    // Shared baseline suite driver: layers shard across the executor
    // with slot-order merges (bit-identical to the serial loop).
    const BaselineSuiteResult res =
        runBaselineSuite(acc, suite, wbits, abits, 0.5, &pool);
    ArchResult r;
    r.cycles = res.total.cycles;
    r.energy = res.total.energy;
    r.energyNj = r.energy.total() / 1e3;
    return r;
}

ArchResult
runTaSuite(const TransArrayAccelerator &acc, const WorkloadSuite &suite,
           int wbits, uint64_t seed, size_t batch)
{
    // Shared suite driver: inherits the parallel sub-tile executor, the
    // plan cache, the layerSeed() weight-seed convention and batched
    // layers-in-flight dispatch (results identical for any window).
    const SuiteRunResult res = runSuite(acc, suite, wbits, seed, batch);
    ArchResult r;
    r.cycles = res.total.cycles;
    r.energy = res.total.energy;
    r.energyNj = r.energy.total() / 1e3;
    return r;
}

int
runFig10(HarnessContext &ctx)
{
    TransArrayAccelerator::Config tc;
    tc.sampleLimit = ctx.quick() ? 32 : 96;
    const auto ta_acc = ctx.makeAccelerator(tc);
    const uint64_t seed = ctx.seed(1);

    std::vector<LlamaConfig> models = allLlamaModels();
    if (ctx.quick())
        models.resize(std::min<size_t>(models.size(), 2));

    std::vector<std::vector<double>> cycles_by_arch(7);
    std::vector<std::vector<double>> energy_by_arch(7);

    Table t("Fig. 10 (runtime): cycles on FC layers of one block");
    t.setHeader({"Model", "BitFusion*", "ANT", "Olive", "Tender*",
                 "BitVert", "TA-8bit", "TA-4bit", "TA8/Olive x",
                 "TA4/Olive x"});
    Table e("Fig. 10 (energy): total nJ on FC layers of one block");
    e.setHeader({"Model", "BitFusion*", "ANT", "Olive", "Tender*",
                 "BitVert", "TA-8bit", "TA-4bit"});

    ParallelExecutor &pool = ctx.executor();
    for (const LlamaConfig &model : models) {
        const WorkloadSuite suite = llamaFcLayers(model);
        std::vector<ArchResult> res;
        res.push_back(
            runBaselines(*makeBaseline("BitFusion"), suite, 8, 8, pool));
        res.push_back(
            runBaselines(*makeBaseline("ANT"), suite, 8, 8, pool));
        res.push_back(
            runBaselines(*makeBaseline("Olive"), suite, 8, 8, pool));
        res.push_back(
            runBaselines(*makeBaseline("Tender"), suite, 4, 4, pool));
        res.push_back(
            runBaselines(*makeBaseline("BitVert"), suite, 8, 8, pool));
        res.push_back(runTaSuite(*ta_acc, suite, 8, seed, ctx.batch(8)));
        res.push_back(runTaSuite(*ta_acc, suite, 4, seed, ctx.batch(8)));

        std::vector<std::string> row = {model.name};
        for (size_t a = 0; a < res.size(); ++a) {
            row.push_back(std::to_string(res[a].cycles));
            cycles_by_arch[a].push_back(
                static_cast<double>(res[a].cycles));
            energy_by_arch[a].push_back(res[a].energyNj);
        }
        const double olive = static_cast<double>(res[2].cycles);
        row.push_back(Table::fmt(olive / res[5].cycles, 2));
        row.push_back(Table::fmt(olive / res[6].cycles, 2));
        t.addRow(row);

        std::vector<std::string> erow = {model.name};
        for (const auto &r : res)
            erow.push_back(Table::fmt(r.energyNj, 0));
        e.addRow(erow);

        ctx.metric("cycles_ta8_" + model.name,
                   static_cast<uint64_t>(res[5].cycles));
        ctx.metric("cycles_ta4_" + model.name,
                   static_cast<uint64_t>(res[6].cycles));
        ctx.metric("cycles_olive_" + model.name,
                   static_cast<uint64_t>(res[2].cycles));
    }

    // Geomean speedup / energy-efficiency rows vs Olive.
    auto geomean_ratio = [&](const std::vector<double> &ref,
                             const std::vector<double> &x) {
        double acc = 0;
        for (size_t i = 0; i < x.size(); ++i)
            acc += std::log(ref[i] / x[i]);
        return std::exp(acc / x.size());
    };
    std::vector<std::string> grow = {"GeoMean speedup vs Olive"};
    std::vector<std::string> gerow = {"GeoMean energy eff vs Olive"};
    for (size_t a = 0; a < 7; ++a) {
        grow.push_back(Table::fmt(
            geomean_ratio(cycles_by_arch[2], cycles_by_arch[a]), 2));
        gerow.push_back(Table::fmt(
            geomean_ratio(energy_by_arch[2], energy_by_arch[a]), 2));
    }
    grow.push_back("-");
    grow.push_back("-");
    t.addRow(grow);
    e.addRow(gerow);

    t.print();
    e.print();

    ctx.metric("models", static_cast<uint64_t>(models.size()));
    ctx.metric("geomean_speedup_ta8_vs_olive",
               geomean_ratio(cycles_by_arch[2], cycles_by_arch[5]));
    ctx.metric("geomean_speedup_ta4_vs_olive",
               geomean_ratio(cycles_by_arch[2], cycles_by_arch[6]));
    ctx.metric("geomean_energy_eff_ta8_vs_olive",
               geomean_ratio(energy_by_arch[2], energy_by_arch[5]));
    ctx.metric("geomean_energy_eff_ta4_vs_olive",
               geomean_ratio(energy_by_arch[2], energy_by_arch[6]));

    std::printf(
        "Shape check vs paper (Sec. 5.5): TA-8bit ~2.5-3.8x over\n"
        "ANT/Olive and ~2x over BitVert; TA-4bit ~7.5x over Olive and\n"
        "~4x over BitVert; TA energy at or below the baselines.\n"
        "(*) BitFusion-8b and Tender-4b shown for reference only.\n");
    return 0;
}

} // namespace

TA_BENCHMARK("fig10",
             "LLaMA FC-layer cycles and energy vs five baselines",
             runFig10);
