#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include <unistd.h>

namespace ta {
namespace obs {

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::enable(const std::string &path, const std::string &process)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        path_ = path;
        process_ = process;
    }
    enabled_.store(true, std::memory_order_release);
}

uint64_t
Tracer::nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

Tracer::Ring *
Tracer::threadRing()
{
    // One ring per (thread, process) for the process-global tracer;
    // registration is the only locked step on the recording path.
    thread_local Ring *ring = nullptr;
    if (ring != nullptr)
        return ring;
    auto owned = std::make_unique<Ring>();
    owned->spans.resize(kRingCapacity);
    ring = owned.get();
    std::lock_guard<std::mutex> lock(mu_);
    ring->tid = static_cast<uint32_t>(rings_.size());
    rings_.push_back(std::move(owned));
    return ring;
}

void
Tracer::record(const Span &span)
{
    if (!enabled())
        return;
    Ring *ring = threadRing();
    const size_t size = ring->size.load(std::memory_order_relaxed);
    if (size >= ring->spans.size()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Span &slot = ring->spans[size];
    slot = span;
    slot.tid = ring->tid;
    // Publish: a concurrent flush() acquiring `size` sees the slot.
    ring->size.store(size + 1, std::memory_order_release);
}

uint64_t
Tracer::spanCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t n = 0;
    for (const auto &ring : rings_)
        n += ring->size.load(std::memory_order_acquire);
    return n;
}

namespace {

void
writeEvent(std::FILE *f, const Span &s, long pid, bool *first)
{
    if (!*first)
        std::fputs(",\n", f);
    *first = false;
    // Chrome wants microsecond ts/dur; keep nanosecond precision in
    // the fraction.
    const double ts = static_cast<double>(s.t0Ns) / 1e3;
    const double dur =
        static_cast<double>(s.t1Ns >= s.t0Ns ? s.t1Ns - s.t0Ns : 0) /
        1e3;
    std::fprintf(f,
                 "{\"name\":\"%s\",\"cat\":\"ta\",\"ph\":\"X\","
                 "\"pid\":%ld,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
                 "\"args\":{\"trace\":\"%s\",\"span\":\"%" PRIx64
                 "\",\"parent\":\"%" PRIx64 "\"",
                 s.name, pid, s.tid, ts, dur,
                 traceIdHex(s.traceId).c_str(), s.spanId, s.parent);
    if (s.argKey != nullptr)
        std::fprintf(f, ",\"%s\":\"%" PRIu64 "\"", s.argKey,
                     s.argVal);
    std::fputs("}}", f);
}

} // namespace

bool
Tracer::flush()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (path_.empty())
        return false;
    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (f == nullptr)
        return false;
    const long pid = static_cast<long>(::getpid());
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
    bool first = true;
    // Process-name metadata event so chrome://tracing labels the row.
    if (!first)
        std::fputs(",\n", f);
    std::fprintf(f,
                 "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%ld,"
                 "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                 pid, process_.c_str());
    first = false;
    for (const auto &ring : rings_) {
        const size_t size = ring->size.load(std::memory_order_acquire);
        for (size_t i = 0; i < size; ++i)
            writeEvent(f, ring->spans[i], pid, &first);
    }
    std::fprintf(f,
                 "\n],\"otherData\":{\"process\":\"%s\","
                 "\"dropped\":\"%" PRIu64 "\"}}\n",
                 process_.c_str(),
                 dropped_.load(std::memory_order_relaxed));
    const long bytes = std::ftell(f);
    const bool ok = std::fclose(f) == 0;
    if (ok && bytes > 0)
        flushedBytes_.store(static_cast<uint64_t>(bytes),
                            std::memory_order_relaxed);
    return ok;
}

namespace {

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

uint64_t
mintTraceId(uint64_t salt)
{
    static std::atomic<uint64_t> counter{0};
    const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
    uint64_t id = splitmix64(
        n ^ (salt << 1) ^
        (static_cast<uint64_t>(::getpid()) << 32));
    if (id == 0) // the wire format reserves 0 for "untraced"
        id = 1;
    return id;
}

std::string
traceIdHex(uint64_t id)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%" PRIx64, id);
    return std::string(buf);
}

bool
parseTraceId(const std::string &hex, uint64_t &out)
{
    if (hex.empty() || hex.size() > 16)
        return false;
    uint64_t v = 0;
    for (char c : hex) {
        uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<uint64_t>(c - 'a' + 10);
        else
            return false;
        v = (v << 4) | digit;
    }
    if (v == 0)
        return false;
    out = v;
    return true;
}

} // namespace obs
} // namespace ta
