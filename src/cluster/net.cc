#include "cluster/net.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

namespace ta {

int
connectLoopback(uint16_t port, int timeout_ms, bool keep_io_timeouts)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    // The send timeout also bounds connect() itself on Linux.
    timeval tv{timeout_ms / 1000, (timeout_ms % 1000) * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    if (!keep_io_timeouts) {
        timeval forever{0, 0}; // 0 = block without a deadline
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &forever,
                     sizeof(forever));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &forever,
                     sizeof(forever));
    }
    return fd;
}

bool
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
readLineTimeout(int fd, int timeout_ms, std::string &line)
{
    line.clear();
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    char c = 0;
    for (;;) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now())
                .count();
        if (left <= 0)
            return false;
        pollfd pfd{fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, static_cast<int>(left));
        if (pr < 0 && errno == EINTR)
            continue;
        if (pr <= 0)
            return false;
        const ssize_t n = ::read(fd, &c, 1);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        if (c == '\n')
            return true;
        line.push_back(c);
    }
}

} // namespace ta
