/**
 * @file
 * Request routing across the cluster's replicas. The Router keeps one
 * pipelined protocol connection per live replica (reconnecting as the
 * ReplicaManager restarts slots), forwards each "run" request under a
 * pluggable policy, and rewrites response ids back to the client's —
 * response bytes are otherwise untouched, so a routed response is
 * byte-identical to single-process `ta_serve` / `ta_sim --response`
 * for every policy, replica count and concurrency.
 *
 * Policies:
 *  - round_robin: rotate over live replicas.
 *  - least_outstanding: fewest in-flight requests; ties break to the
 *    lowest replica index.
 *  - affinity: hash(EngineKey) % replicas, so each replica's shared
 *    PlanCache stays hot on its slice of the engine space. The hash
 *    is a pure function of the key and the replica count — a
 *    restarted replica keeps its slice (affinity is stable across
 *    restarts). While the slot is restarting, its requests wait for
 *    it (bounded by submitTimeoutMs); only a permanently failed slot
 *    is re-routed.
 *
 * Failure semantics: requests in flight on a replica whose connection
 * dies are re-dispatched exactly once each through the normal routing
 * path (simulation requests are pure, so a retry can never change
 * bytes); the responder still fires exactly once per request — no
 * lost and no duplicated responses across a crash/restart. Per-replica
 * backpressure caps in-flight requests per connection; submitters
 * block (bounded) until the target drains.
 *
 * Degradation is bounded and explicit: with `requestTimeoutMs` set, a
 * request stuck on a stalled (blackholed) replica is withdrawn and
 * re-dispatched after a jittered-but-seeded backoff; each request has
 * a redispatch budget (`maxRedispatch`) after which it is *shed* with
 * a protocol `overloaded` error instead of retrying forever, and
 * `maxWaiting` bounds the number of submitters allowed to block so
 * the router never queues without bound. A late response from the
 * stalled replica is dropped by internal id — the responder still
 * fires exactly once.
 *
 * Thread safety: submit()/statsLine()/stats() may be called from any
 * thread; responders are invoked from router reader threads.
 */

#ifndef TA_CLUSTER_ROUTER_H
#define TA_CLUSTER_ROUTER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/replica_manager.h"
#include "service/request_queue.h"

namespace ta {

enum class RoutePolicy
{
    RoundRobin,
    LeastOutstanding,
    Affinity,
};

/** "round_robin" / "least_outstanding" / "affinity". */
bool parseRoutePolicy(const std::string &name, RoutePolicy &out);
const char *routePolicyName(RoutePolicy policy);

/** Stable FNV-1a hash of the engine-selection fields. */
uint64_t engineKeyHash(const EngineKey &key);

/** The affinity policy's slot for `key` in a `replicas`-wide cluster:
 *  a pure function, so the mapping survives replica restarts. */
int affinityIndexOf(const EngineKey &key, int replicas);

/**
 * The least-outstanding choice: the eligible index with the fewest
 * outstanding requests, ties broken to the lowest index; -1 when
 * nothing is eligible. Pure — exposed for unit tests.
 */
int pickLeastOutstanding(const std::vector<size_t> &outstanding,
                         const std::vector<bool> &eligible);

struct RouterConfig
{
    RoutePolicy policy = RoutePolicy::Affinity;
    /** Per-replica backpressure: max requests in flight on one
     *  connection before submitters block. */
    size_t maxOutstanding = 256;
    /** How long submit() may wait for a usable replica (a restarting
     *  affinity slot, or backpressure) before failing the request. */
    int submitTimeoutMs = 30000;
    /** Per-attempt deadline: a request in flight longer than this is
     *  withdrawn and re-dispatched (0 = never time out). Catches
     *  stalled/blackholed replicas that keep their connection open. */
    int requestTimeoutMs = 0;
    /** Re-dispatch budget per request (disconnect sweeps and
     *  timeouts); beyond it the request is shed with an `overloaded`
     *  protocol error. */
    int maxRedispatch = 5;
    /** Base of the jittered-but-seeded exponential retry backoff. */
    int retryBackoffBaseMs = 10;
    /** Seed of the backoff jitter (deterministic per router). */
    uint64_t backoffSeed = 1;
    /** Max submitters allowed to block for a slot before new requests
     *  are shed with an `overloaded` error (0 = unbounded). */
    size_t maxWaiting = 0;
};

/**
 * Backoff before redispatch attempt `attempt` (1-based) of the
 * request with redispatch sequence number `seq`: exponential in the
 * attempt with a jitter drawn deterministically from (seed, seq) — so
 * retries de-synchronize without introducing nondeterminism. Pure;
 * exposed for unit tests.
 */
int retryBackoffMs(int base_ms, int attempt, uint64_t seed,
                   uint64_t seq);

/** Router-level counters (host-volatile). */
struct RouterCounters
{
    uint64_t forwarded = 0; ///< requests written to a replica
    uint64_t retried = 0;   ///< re-dispatched after a dead connection
    uint64_t failed = 0;    ///< answered with a router error
    uint64_t timedOut = 0;  ///< attempts withdrawn on requestTimeoutMs
    uint64_t shed = 0;      ///< rejected with an `overloaded` error
    std::vector<uint64_t> perReplica; ///< forwarded per slot
};

class Router
{
  public:
    Router(RouterConfig config, ReplicaManager &manager);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /** Connect to the live replicas and start the maintenance
     *  thread. */
    void start();

    /** Fail waiters, close replica connections, join threads.
     *  Idempotent; also invoked by the destructor. */
    void stop();

    /**
     * Route one parsed request. "run" forwards under the policy;
     * "stats" answers with the cluster-wide aggregate; "ping" answers
     * directly. The responder fires exactly once, from a router
     * thread or inline.
     */
    void submit(const ServiceRequest &req, ServiceResponder respond);

    /** Cluster-wide stats response line: per-replica stats-op results
     *  aggregated, plus router/manager counters. */
    std::string statsLine(uint64_t id);

    RouterCounters counters() const;

    const RouterConfig &config() const { return config_; }

  private:
    struct PendingCall
    {
        ServiceRequest request;
        ServiceResponder respond;
        bool retryable = true; ///< stats probes fail instead of retry
        int attempts = 0;      ///< redispatches consumed so far
        std::chrono::steady_clock::time_point sentAt{};
    };

    struct Upstream
    {
        int fd = -1;
        bool connected = false;
        uint64_t generation = 0; ///< manager generation connected to
        std::thread reader;
        /** Set by the reader at exit, so the maintainer knows the
         *  thread is past its (possibly blocking) retry work and can
         *  be joined without deadlock. */
        std::shared_ptr<std::atomic<bool>> readerDone;
        std::mutex writeMu;
        std::unordered_map<uint64_t, PendingCall> pending;
    };

    void dispatch(PendingCall call);
    /** Consume one unit of `call`'s redispatch budget: queue it for a
     *  backed-off redispatch, or shed it when the budget is gone. */
    void redispatchOrShed(PendingCall call);
    /** Queue `call` on the redispatcher after `delay_ms`. */
    void scheduleRedispatch(PendingCall call, int delay_ms);
    void redispatchLoop();
    /** Withdraw in-flight calls older than requestTimeoutMs and
     *  requeue (or shed) them. */
    void sweepTimeouts();
    /** Policy choice among connected slots with room; -1 = none. */
    int chooseSlotLocked(const EngineKey &key);
    /** Register + write one call on slot i. True = the call is owned
     *  downstream (sent, or swept into the disconnect retry); false =
     *  the slot was unusable and `call` is intact for re-routing. */
    bool sendOn(int i, PendingCall &call);
    bool sendStatsProbe(int i, uint64_t iid, ServiceResponder respond);
    void readerLoop(int i, uint64_t generation);
    void handleDisconnect(int i, uint64_t generation);
    void maintainLoop();
    void maintainPass();
    void connectSlot(int i, const ReplicaEndpoint &ep);

    RouterConfig config_;
    ReplicaManager &manager_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::unique_ptr<Upstream>> upstreams_;
    std::atomic<uint64_t> nextInternalId_{1};
    std::atomic<uint64_t> rrCursor_{0};
    uint64_t forwarded_ = 0;
    uint64_t retried_ = 0;
    uint64_t failed_ = 0;
    uint64_t timedOut_ = 0;
    uint64_t shed_ = 0;
    size_t waiting_ = 0; ///< submitters blocked in dispatch()
    std::vector<uint64_t> perReplica_;
    /** Delayed redispatch queue, drained by redispatcher_. */
    struct Delayed
    {
        std::chrono::steady_clock::time_point due;
        PendingCall call;
    };
    std::mutex delayedMu_;
    std::condition_variable delayedCv_;
    std::vector<Delayed> delayed_;
    bool delayedStopping_ = false;
    std::atomic<uint64_t> redispatchSeq_{0};
    std::thread redispatcher_;
    /** Replaced reader threads awaiting a deadlock-free join. */
    std::vector<std::pair<std::thread,
                          std::shared_ptr<std::atomic<bool>>>>
        retired_;
    bool stopping_ = false;
    bool started_ = false;
    std::thread maintainer_;
};

} // namespace ta

#endif // TA_CLUSTER_ROUTER_H
