/**
 * @file
 * Ablations of the scoreboard design choices DESIGN.md §6 calls out:
 *
 *  (1) maxDistance cutoff (Alg. 1 line 7): density / TR nodes /
 *      outlier ops as the prefix search range widens;
 *  (2) lane balancing (Sec. 2.4): PPE critical path with the
 *      round-robin-like workload counter vs. naive first-candidate
 *      assignment;
 *  (3) prefix-buffer banking (Sec. 4.4): APE stall cycles vs. the
 *      number of crossbar banks.
 */

#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/dispatcher.h"
#include "scoreboard/analyzer.h"
#include "workloads/generators.h"

using namespace ta;

namespace {

std::vector<TransRow>
randomRows(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<TransRow> rows(n);
    for (size_t i = 0; i < n; ++i)
        rows[i] = {static_cast<uint32_t>(rng.uniformInt(0, 255)),
                   static_cast<uint32_t>(i)};
    return rows;
}

} // namespace

int
main()
{
    const MatBit bits = randomBinaryMatrix(2048, 256, 0.5, 777);

    // ---- (1) maxDistance sweep ----------------------------------------
    Table t1("Ablation 1: prefix search range (T=8, 64-row tiles)");
    t1.setHeader({"maxDistance", "Total density (%)", "TR nodes",
                  "Outlier extra ops", "Dist hist 1/2/3+"});
    for (int md : {2, 3, 4, 6, 8}) {
        ScoreboardConfig c;
        c.tBits = 8;
        c.maxDistance = md;
        const SparsityStats s =
            SparsityAnalyzer(c).analyzeDynamic(bits, 64);
        uint64_t d3 = 0;
        for (size_t i = 2; i < s.distHist.size(); ++i)
            d3 += s.distHist[i];
        t1.addRow({std::to_string(md),
                   Table::fmt(100 * s.totalDensity(), 2),
                   std::to_string(s.trNodes),
                   std::to_string(s.outlierExtra),
                   std::to_string(s.distHist[0]) + "/" +
                       std::to_string(s.distHist[1]) + "/" +
                       std::to_string(d3)});
    }
    t1.print();

    // ---- (2) lane balancing on/off -------------------------------------
    Table t2("Ablation 2: lane balancing (T=8, 256-row sub-tiles)");
    t2.setHeader({"Policy", "Avg PPE cycles (max lane)",
                  "Avg mean lane", "Imbalance"});
    for (bool balance : {true, false}) {
        ScoreboardConfig c;
        c.tBits = 8;
        c.balanceLanes = balance;
        Scoreboard sb(c);
        double max_sum = 0, mean_sum = 0;
        const int trials = 64;
        for (int i = 0; i < trials; ++i) {
            const Plan plan = sb.build(randomRows(256, 1000 + i));
            const auto lanes = plan.laneOps();
            uint64_t mx = 0, sum = 0;
            for (uint64_t l : lanes) {
                mx = std::max(mx, l);
                sum += l;
            }
            max_sum += static_cast<double>(mx);
            mean_sum += static_cast<double>(sum) / lanes.size();
        }
        t2.addRow({balance ? "balanced (paper)" : "naive first-prefix",
                   Table::fmt(max_sum / trials, 2),
                   Table::fmt(mean_sum / trials, 2),
                   Table::fmt(max_sum / mean_sum, 2)});
    }
    t2.print();

    // ---- (3) prefix-buffer banks ----------------------------------------
    Table t3("Ablation 3: prefix-buffer banks (256-row sub-tiles)");
    t3.setHeader({"Banks", "Avg APE cycles", "Avg stall cycles"});
    for (uint32_t banks : {1u, 2u, 4u, 8u, 16u, 32u}) {
        Dispatcher::Config dc;
        dc.tBits = 8;
        dc.prefixBanks = banks;
        Dispatcher d(dc);
        ScoreboardConfig c;
        c.tBits = 8;
        Scoreboard sb(c);
        double ape = 0, stall = 0;
        const int trials = 32;
        for (int i = 0; i < trials; ++i) {
            const auto rows = randomRows(256, 2000 + i);
            const auto r = d.dispatch(sb.build(rows), rows);
            ape += static_cast<double>(r.apeCycles);
            stall += static_cast<double>(r.xbarStallCycles);
        }
        t3.addRow({std::to_string(banks), Table::fmt(ape / trials, 1),
                   Table::fmt(stall / trials, 1)});
    }
    t3.print();

    std::printf(
        "Takeaways: (1) maxDistance=4 captures virtually all reuse —\n"
        "wider search buys nothing on 64-row tiles but longer Hasse\n"
        "chains; (2) the workload counter keeps the longest lane within\n"
        "a few percent of the mean, while naive assignment stretches\n"
        "the PPE critical path; (3) T=8 banks make crossbar stalls\n"
        "negligible, matching the paper's distributed-buffer choice.\n");
    return 0;
}
