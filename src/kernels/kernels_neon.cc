/**
 * @file
 * NEON (aarch64 ASIMD) kernel table. Compiled only when CMake detects
 * an aarch64 target (TA_HAVE_NEON); ASIMD is architecturally baseline
 * there, so no per-TU ISA flag and no runtime probe are needed — the
 * table is always available on builds that contain it. Semantics are
 * byte-identical to the scalar oracle (exact integer ops, different
 * lane order), pinned by tests/test_kernels.cc.
 */

#include "kernels/kernel_table.h"

#if defined(TA_HAVE_NEON) && defined(__aarch64__)

#include <arm_neon.h>

#include <bit>
#include <cstring>

namespace ta {

const KernelTable *neonKernelTable();

namespace {

void
accumRowNeon(int64_t *acc, const int32_t *row, size_t m)
{
    size_t c = 0;
    for (; c + 4 <= m; c += 4) {
        const int32x4_t r = vld1q_s32(row + c);
        int64x2_t a0 = vld1q_s64(acc + c);
        int64x2_t a1 = vld1q_s64(acc + c + 2);
        a0 = vaddw_s32(a0, vget_low_s32(r));
        a1 = vaddw_s32(a1, vget_high_s32(r));
        vst1q_s64(acc + c, a0);
        vst1q_s64(acc + c + 2, a1);
    }
    for (; c < m; ++c)
        acc[c] += row[c];
}

void
scatterRowNeon(int64_t *out, const int64_t *val, int64_t weight,
               size_t m)
{
    const bool neg = weight < 0;
    const uint64_t mag =
        neg ? static_cast<uint64_t>(-weight)
            : static_cast<uint64_t>(weight);
    if (mag == 0 || (mag & (mag - 1)) != 0) {
        for (size_t c = 0; c < m; ++c)
            out[c] += weight * val[c];
        return;
    }
    const int64x2_t cnt = vdupq_n_s64(std::countr_zero(mag));
    size_t c = 0;
    for (; c + 2 <= m; c += 2) {
        const int64x2_t v = vshlq_s64(vld1q_s64(val + c), cnt);
        const int64x2_t o = vld1q_s64(out + c);
        vst1q_s64(out + c, neg ? vsubq_s64(o, v) : vaddq_s64(o, v));
    }
    for (; c < m; ++c)
        out[c] += weight * val[c];
}

/** Pack 16 staged bytes: bit i of the result = (tmp[i] != 0). */
uint32_t
pack16(const uint8_t *tmp)
{
    static const uint8_t kWeights[16] = {1, 2, 4, 8, 16, 32, 64, 128,
                                         1, 2, 4, 8, 16, 32, 64, 128};
    const uint8x16_t x = vld1q_u8(tmp);
    const uint8x16_t bits =
        vandq_u8(vtstq_u8(x, x), vld1q_u8(kWeights));
    // Each half sums distinct powers of two, so the sums are ORs.
    const uint32_t lo = vaddv_u8(vget_low_u8(bits));
    const uint32_t hi = vaddv_u8(vget_high_u8(bits));
    return lo | (hi << 8);
}

uint32_t
packBitsNeon(const uint8_t *bits, size_t n)
{
    if (n <= 8) {
        // The hot case (T = 8): the multiplier places byte i's bit at
        // position 56 + i; the top byte of the product is the pack.
        uint64_t x = 0;
        std::memcpy(&x, bits, n);
        return static_cast<uint32_t>((x * 0x0102040810204080ull) >>
                                     56);
    }
    alignas(16) uint8_t tmp[32] = {};
    std::memcpy(tmp, bits, n <= 32 ? n : 32);
    uint32_t v = pack16(tmp);
    if (n > 16)
        v |= pack16(tmp + 16) << 16;
    return v;
}

void
sliceLevelNeon(uint8_t *dst, const int32_t *src, size_t n, int bit)
{
    const int32x4_t cnt = vdupq_n_s32(-bit); // negative = right shift
    const uint32x4_t one = vdupq_n_u32(1);
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        const uint32x4_t a = vandq_u32(
            vshlq_u32(vreinterpretq_u32_s32(vld1q_s32(src + c)), cnt),
            one);
        const uint32x4_t b = vandq_u32(
            vshlq_u32(vreinterpretq_u32_s32(vld1q_s32(src + c + 4)),
                      cnt),
            one);
        const uint16x8_t w =
            vcombine_u16(vmovn_u32(a), vmovn_u32(b));
        vst1_u8(dst + c, vmovn_u16(w));
    }
    for (; c < n; ++c)
        dst[c] = static_cast<uint8_t>(
            (static_cast<uint32_t>(src[c]) >> bit) & 1u);
}

uint64_t
countOnesNeon(const uint8_t *bytes, size_t n)
{
    uint64_t sum = 0;
    size_t i = 0;
    for (; i + 16 <= n; i += 16)
        sum += vaddlvq_u8(vld1q_u8(bytes + i));
    for (; i < n; ++i)
        sum += bytes[i];
    return sum;
}

bool
rowScanNeon(const uint32_t *values, size_t n, uint32_t limit,
            unsigned char *counts, size_t countStride,
            uint64_t *zeroRows)
{
    uint64_t zeros = 0;
    bool ok = true;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const uint32x4_t x = vld1q_u32(values + i);
        // vceqz lanes are all-ones; shift down to one bit per lane so
        // the horizontal add counts zero lanes.
        const uint32_t z =
            vaddvq_u32(vshrq_n_u32(vceqzq_u32(x), 31));
        zeros += z;
        if (z == 4)
            continue; // all-zero group: no histogram work
        for (size_t lane = 0; lane < 4; ++lane) {
            const uint32_t v = values[i + lane];
            if (v == 0)
                continue;
            if (v < limit)
                ++*reinterpret_cast<uint32_t *>(
                    counts + static_cast<size_t>(v) * countStride);
            else
                ok = false;
        }
    }
    for (; i < n; ++i) {
        const uint32_t v = values[i];
        if (v == 0)
            ++zeros;
        else if (v < limit)
            ++*reinterpret_cast<uint32_t *>(
                counts + static_cast<size_t>(v) * countStride);
        else
            ok = false;
    }
    *zeroRows += zeros;
    return ok;
}

} // namespace

const KernelTable *
neonKernelTable()
{
    static constexpr KernelTable table{
        "neon",         accumRowNeon, scatterRowNeon, packBitsNeon,
        sliceLevelNeon, countOnesNeon, rowScanNeon,
    };
    return &table;
}

} // namespace ta

#endif // TA_HAVE_NEON && __aarch64__
