/**
 * @file
 * Extension study: prefill vs decode. The paper evaluates prefill
 * (sequence 2048), where FC GEMMs are compute-bound and transitive
 * sparsity pays off. During autoregressive decode the same layers run
 * with M = 1 token and become memory-bound GEMVs: every accelerator
 * collapses to the DRAM streaming rate, and TransArray's compute
 * advantage is capped — a deployment-relevant boundary the paper's
 * framework predicts directly.
 */

#include <cstdio>

#include "baselines/baseline.h"
#include "common/table.h"
#include "harness/harness.h"
#include "workloads/llama.h"

using namespace ta;

namespace {

int
runAblationDecode(HarnessContext &ctx)
{
    const LlamaConfig model = llama1_7b();
    TransArrayAccelerator::Config tc;
    tc.sampleLimit = ctx.quick() ? 16 : 64;
    const auto ta_acc = ctx.makeAccelerator(tc);
    auto olive = makeBaseline("Olive");
    const uint64_t seed = ctx.seed(3);

    Table t("Prefill vs decode on LLaMA-1-7B q_proj (TA-4bit vs "
            "Olive-8bit)");
    t.setHeader({"Batch M", "Olive cycles", "TA-4bit cycles",
                 "Speedup", "TA bound by"});
    const GemmShape base = llamaFcLayers(model).layers[0].shape;
    for (uint64_t m : {1ull, 8ull, 64ull, 512ull, 2048ull}) {
        GemmShape shape = base;
        shape.m = m;
        const LayerRun ta = ta_acc->runShape(shape, 4, seed);
        const LayerRun ol = olive->runGemm(shape, 8, 8);
        t.addRow({std::to_string(m), std::to_string(ol.cycles),
                  std::to_string(ta.cycles),
                  Table::fmt(static_cast<double>(ol.cycles) / ta.cycles,
                             2),
                  ta.dramCycles >= ta.computeCycles ? "DRAM"
                                                    : "compute"});
        const std::string k = "m" + std::to_string(m);
        ctx.metric("ta_cycles_" + k, ta.cycles);
        ctx.metric("speedup_" + k,
                   static_cast<double>(ol.cycles) / ta.cycles);
    }
    t.print();

    std::printf(
        "Takeaway: at M = 1 both designs stream the weight matrix and\n"
        "the speedup is just the 4-bit vs 8-bit traffic ratio (~2x);\n"
        "transitive result reuse needs batch/prefill parallelism to\n"
        "shine, reaching the paper's ~7.5x once M reaches ~64.\n");
    return 0;
}

} // namespace

TA_BENCHMARK("ablation_decode",
             "prefill vs decode: speedup vs batch size M",
             runAblationDecode);
