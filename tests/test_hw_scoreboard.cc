/** @file Tests for the structural scoreboard unit model (Sec. 3.4/4.6). */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dispatcher.h"
#include "scoreboard/hw_scoreboard.h"

namespace ta {
namespace {

std::vector<TransRow>
randomRows(size_t n, int t, uint64_t seed)
{
    Rng rng(seed);
    std::vector<TransRow> rows(n);
    for (size_t i = 0; i < n; ++i)
        rows[i] = {static_cast<uint32_t>(rng.uniformInt(0, (1 << t) - 1)),
                   static_cast<uint32_t>(i)};
    return rows;
}

HwScoreboard::Config
hcfg(int t = 8)
{
    HwScoreboard::Config c;
    c.tBits = t;
    return c;
}

TEST(HwScoreboard, ProducesSameSiAsAlgorithm)
{
    HwScoreboard hw(hcfg());
    ScoreboardConfig sc;
    sc.tBits = 8;
    Scoreboard algo(sc);
    for (int trial = 0; trial < 10; ++trial) {
        const auto rows = randomRows(256, 8, 500 + trial);
        const auto hw_res = hw.process(rows);
        const ScoreboardInfo ref =
            ScoreboardInfo::fromPlan(algo.build(rows));
        for (NodeId n = 0; n < 256; ++n) {
            EXPECT_EQ(hw_res.si.valid(n), ref.valid(n)) << n;
            if (ref.valid(n)) {
                EXPECT_EQ(hw_res.si.entry(n).prefix,
                          ref.entry(n).prefix)
                    << n;
                EXPECT_EQ(hw_res.si.entry(n).outlier,
                          ref.entry(n).outlier)
                    << n;
            }
        }
    }
}

TEST(HwScoreboard, SortOrderDoesNotChangeOps)
{
    // The SI depends only on the value multiset, not arrival order —
    // the sorter normalizes order, so shuffled inputs give equal plans.
    HwScoreboard hw(hcfg());
    auto rows = randomRows(128, 8, 7);
    const auto a = hw.process(rows);
    std::reverse(rows.begin(), rows.end());
    const auto b = hw.process(rows);
    EXPECT_EQ(a.plan.totalOps(), b.plan.totalOps());
}

TEST(HwScoreboard, PassCyclesBoundedByTableOverWays)
{
    // Paper: each pass processes at most min(n, 2^T) nodes, T per
    // cycle.
    HwScoreboard hw(hcfg());
    const auto rows = randomRows(256, 8, 9);
    const auto r = hw.process(rows);
    EXPECT_LE(r.forwardCycles, 256u / 8 + 1);
    EXPECT_LE(r.backwardCycles, 256u / 8 + 1);
    EXPECT_EQ(r.recordCycles, 32u);
}

TEST(HwScoreboard, HiddenBehindPpeOnFullSubTiles)
{
    // Sec. 4.6: scoreboarding time < PPE time, so the three-stage
    // pipeline keeps the PPE array as the critical path. Compare
    // against the dispatcher's PPE cycles across an m-tile pass
    // (PPE repeats per m-tile; the scoreboard runs once).
    HwScoreboard hw(hcfg());
    Dispatcher d([] {
        Dispatcher::Config c;
        c.tBits = 8;
        return c;
    }());
    uint64_t sb_total = 0, ppe_total = 0;
    for (int trial = 0; trial < 16; ++trial) {
        const auto rows = randomRows(256, 8, 900 + trial);
        const auto hr = hw.process(rows);
        const auto dr = d.dispatch(hr.plan, rows);
        sb_total += hr.totalCycles();
        ppe_total += dr.ppeCycles;
    }
    // One scoreboarding per sub-tile vs a PPE pass per m-tile: with the
    // Table 1 tiling (M = 2048 -> 64 m-tiles) the stage-2 work is ~64x
    // the per-pass PPE cycles; the scoreboard stage pipelines away as
    // long as it is under a handful of PPE passes.
    EXPECT_LT(sb_total, ppe_total * 6);
}

TEST(HwScoreboard, TableFitsScoreboardBudget)
{
    // Two 8-way 256-entry tables (Table 1) stay under 4 KB.
    HwScoreboard hw(hcfg());
    EXPECT_LE(hw.tableBytes(), 4096u);
    EXPECT_GT(hw.tableBytes(), 0u);
}

TEST(HwScoreboard, ZeroRowsSkipRecording)
{
    HwScoreboard hw(hcfg(4));
    std::vector<TransRow> rows(16, TransRow{0, 0});
    const auto r = hw.process(rows);
    EXPECT_EQ(r.recordCycles, 0u);
    EXPECT_EQ(r.plan.totalOps(), 0u);
}

TEST(HwScoreboard, WaysScaleCycles)
{
    HwScoreboard::Config narrow = hcfg();
    narrow.ways = 4;
    HwScoreboard::Config wide = hcfg();
    wide.ways = 16;
    const auto rows = randomRows(256, 8, 11);
    const auto rn = HwScoreboard(narrow).process(rows);
    const auto rw = HwScoreboard(wide).process(rows);
    EXPECT_GT(rn.forwardCycles, rw.forwardCycles);
    EXPECT_GT(rn.recordCycles, rw.recordCycles);
}

TEST(HwScoreboard, TableWritesCounted)
{
    HwScoreboard hw(hcfg());
    const auto rows = randomRows(64, 8, 13);
    const auto r = hw.process(rows);
    EXPECT_GT(r.tableWrites, 64u); // record + propagation updates
}

} // namespace
} // namespace ta
