/**
 * @file
 * OliVe (Guo et al., ISCA'23) model: a 32x48 array of 4-bit
 * outlier-victim-pair PEs (Table 2: 319 um^2). Outliers are encoded
 * in-place by sacrificing the adjacent victim, so the PE array runs
 * dense 4-bit MACs with a small decoder overhead; 8-bit operands
 * decompose 2x2 like ANT.
 */

#ifndef TA_BASELINES_OLIVE_H
#define TA_BASELINES_OLIVE_H

#include "baselines/baseline.h"

namespace ta {

class Olive : public BaselineAccelerator
{
  public:
    explicit Olive(const EnergyParams &energy);

    std::string name() const override { return "Olive"; }

  protected:
    double macsPerCycle(int weight_bits, int act_bits,
                        double bit_density) const override;
};

} // namespace ta

#endif // TA_BASELINES_OLIVE_H
