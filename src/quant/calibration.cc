#include "quant/calibration.h"

#include <algorithm>

#include "common/logging.h"

namespace ta {

TransRowCollector::TransRowCollector(int t_bits)
    : tBits_(t_bits), counts_(1ull << t_bits, 0)
{
    TA_ASSERT(t_bits >= 2 && t_bits <= 16, "bad TransRow width ",
              t_bits);
}

void
TransRowCollector::collect(const SlicedMatrix &tensor)
{
    const size_t chunks = numChunks(tensor.bits.cols(), tBits_);
    for (size_t ch = 0; ch < chunks; ++ch) {
        for (const TransRow &r :
             extractTransRows(tensor, tBits_, ch, 0,
                              tensor.bits.rows())) {
            ++counts_[r.value];
            ++totalRows_;
        }
    }
    ++batches_;
}

void
TransRowCollector::collect(const std::vector<uint32_t> &values)
{
    for (uint32_t v : values) {
        TA_ASSERT(v < counts_.size(), "value out of range");
        ++counts_[v];
        ++totalRows_;
    }
    ++batches_;
}

uint32_t
TransRowCollector::distinctValues() const
{
    uint32_t n = 0;
    for (uint64_t c : counts_)
        n += c > 0;
    return n;
}

uint64_t
TransRowCollector::countOf(uint32_t value) const
{
    TA_ASSERT(value < counts_.size(), "value out of range");
    return counts_[value];
}

double
TransRowCollector::coverage(const SlicedMatrix &tensor) const
{
    uint64_t seen = 0, total = 0;
    const size_t chunks = numChunks(tensor.bits.cols(), tBits_);
    for (size_t ch = 0; ch < chunks; ++ch) {
        for (const TransRow &r :
             extractTransRows(tensor, tBits_, ch, 0,
                              tensor.bits.rows())) {
            ++total;
            seen += counts_[r.value] > 0;
        }
    }
    return total == 0 ? 1.0 : static_cast<double>(seen) / total;
}

std::vector<uint32_t>
TransRowCollector::population(uint32_t count_cap) const
{
    std::vector<uint32_t> pop;
    for (uint32_t v = 0; v < counts_.size(); ++v) {
        const uint64_t reps =
            std::min<uint64_t>(counts_[v], count_cap);
        for (uint64_t i = 0; i < reps; ++i)
            pop.push_back(v);
    }
    return pop;
}

} // namespace ta
