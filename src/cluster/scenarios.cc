#include "cluster/scenarios.h"

#include <cmath>
#include <cstdio>

#include "common/rng.h"

namespace ta {

namespace {

/**
 * The scenario engine pool: variant v of `pool` selects one EngineKey
 * by spreading maxdist, static calibration and sample count — the
 * same knobs the affinity policy hashes — so a skewed pick
 * distribution becomes a skewed per-replica load distribution.
 */
void
applyEngineVariant(ServiceRequest &r, int variant, bool quick)
{
    r.maxdist = 3 + variant % 3;
    r.useStatic = (variant / 3) % 2 != 0;
    r.samples = (quick ? 16u : 32u) + ((variant / 6) % 2 != 0
                                           ? (quick ? 8u : 32u)
                                           : 0u);
}

} // namespace

/**
 * Seeded request trace over `enginePool` engine variants picked with
 * a Zipf(s) popularity distribution (s = 0 → uniform). Shapes are
 * the loadgen quick suites (FC / attention / im2col) scaled up a
 * little in full mode — scenario runs stress the serving fabric, not
 * the simulator, so requests stay small.
 */
std::vector<ServiceRequest>
scenarioTrace(uint64_t seed, size_t count, bool quick, int pool,
              double zipf_s)
{
    Rng rng(seed);
    std::vector<double> cdf(static_cast<size_t>(pool));
    double total = 0;
    for (int v = 0; v < pool; ++v) {
        total += 1.0 / std::pow(static_cast<double>(v + 1), zipf_s);
        cdf[static_cast<size_t>(v)] = total;
    }
    const int mul = quick ? 4 : 6;
    std::vector<ServiceRequest> trace;
    trace.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        ServiceRequest r;
        const int suite = static_cast<int>(rng.uniformInt(0, 2));
        if (suite == 0) { // FC projection
            r.shape = {static_cast<uint64_t>(128 *
                                             rng.uniformInt(1, mul)),
                       static_cast<uint64_t>(128 *
                                             rng.uniformInt(1, mul)),
                       static_cast<uint64_t>(64 *
                                             rng.uniformInt(1, mul))};
        } else if (suite == 1) { // attention score
            r.shape = {static_cast<uint64_t>(64 *
                                             rng.uniformInt(2, mul)),
                       64, 128};
        } else { // CNN im2col
            r.shape = {64,
                       static_cast<uint64_t>(
                           64 * rng.uniformInt(2, 2 * mul)),
                       196};
        }
        const int pick = static_cast<int>(rng.uniformInt(0, 3));
        r.wbits = pick == 0 ? 8 : pick == 1 ? 6 : 4;
        r.seed = static_cast<uint64_t>(rng.uniformInt(1, 1 << 20));
        r.priority = static_cast<int>(rng.uniformInt(0, 2));
        const double u = rng.uniformDouble() * total;
        int variant = 0;
        while (variant + 1 < pool &&
               u > cdf[static_cast<size_t>(variant)])
            ++variant;
        applyEngineVariant(r, variant, quick);
        trace.push_back(r);
    }
    return trace;
}

namespace {

/**
 * Deterministic sinusoidal arrival offsets: request i+1 follows
 * request i after 1/rate(t) seconds where
 * rate(t) = base * (1 + amp * sin(2*pi*t / period)). Inversion by
 * forward stepping — no randomness, so the offered curve is exactly
 * reproducible.
 */
std::vector<double>
diurnalArrivals(size_t count, double base_rps, double amp,
                double period_sec)
{
    std::vector<double> arrivals(count);
    double t = 0;
    for (size_t i = 0; i < count; ++i) {
        arrivals[i] = t;
        const double rate =
            base_rps *
            (1.0 + amp * std::sin(2.0 * M_PI * t / period_sec));
        t += 1.0 / (rate > 1e-6 ? rate : 1e-6);
    }
    return arrivals;
}

/** On/off arrival offsets: `per_burst` requests at `burst_rps`, then
 *  `gap_sec` of silence, repeated. */
std::vector<double>
burstArrivals(size_t count, size_t per_burst, double burst_rps,
              double gap_sec)
{
    std::vector<double> arrivals(count);
    double t = 0;
    for (size_t i = 0; i < count; ++i) {
        arrivals[i] = t;
        t += 1.0 / burst_rps;
        if ((i + 1) % per_burst == 0)
            t += gap_sec;
    }
    return arrivals;
}

} // namespace

std::vector<std::string>
scenarioNames()
{
    return {"diurnal",      "burst",
            "zipf_engines", "crash_storm",
            "slow_client",  "cache_cold_stampede",
            "corrupt_cache_restart"};
}

bool
buildScenario(const std::string &name, uint64_t seed, bool quick,
              ScenarioSpec &out, std::string &err)
{
    out = ScenarioSpec{};
    out.name = name;
    // Liveness-flavored tail bound: the gate exists to catch a stuck
    // or livelocked cluster, not to benchmark the host.
    out.p99BoundMs = quick ? 60000 : 120000;

    if (name == "diurnal") {
        out.description = "open-loop sinusoidal offered load over an "
                          "autoscaling cluster";
        out.replicas = 2;
        out.maxReplicas = 4;
        out.openLoop = true;
        const size_t n = quick ? 96 : 240;
        out.trace = scenarioTrace(seed, n, quick, 6, 0.0);
        out.arrivalSec =
            diurnalArrivals(n, quick ? 40.0 : 60.0, 0.6, 2.4);
        return true;
    }
    if (name == "burst") {
        out.description = "on/off arrival bursts over tiny replica "
                          "queues; admission control sheds";
        out.replicas = 2;
        out.queueCap = 4;
        out.openLoop = true;
        out.allowShed = true;
        const size_t n = quick ? 96 : 192;
        out.trace = scenarioTrace(seed, n, quick, 6, 0.0);
        out.arrivalSec = burstArrivals(n, 16, 500.0, 0.5);
        return true;
    }
    if (name == "zipf_engines") {
        out.description = "Zipf-skewed engine popularity under "
                          "affinity routing";
        out.replicas = 3;
        out.concurrency = 8;
        const size_t n = quick ? 96 : 240;
        out.trace = scenarioTrace(seed, n, quick, 12, 1.1);
        return true;
    }
    if (name == "crash_storm") {
        out.description = "kill ceil(N/2) replicas mid-trace with "
                          "autoscaling on";
        out.replicas = 3;
        out.maxReplicas = 4;
        out.concurrency = 8;
        out.maxRedispatch = 8;
        const size_t n = quick ? 120 : 240;
        out.trace = scenarioTrace(seed, n, quick, 6, 0.0);
        FaultEvent kill;
        kill.kind = FaultKind::Kill;
        kill.atRequest = n / 3;
        kill.count = (out.replicas + 1) / 2;
        out.faults.events.push_back(kill);
        out.minRestarts = 1;
        return true;
    }
    if (name == "slow_client") {
        out.description = "clients stalling their reads while the "
                          "main trace flows";
        out.replicas = 2;
        out.concurrency = 6;
        const size_t n = quick ? 72 : 144;
        out.trace = scenarioTrace(seed, n, quick, 6, 0.0);
        out.slowClients = 2;
        out.stallReadMs = quick ? 250 : 400;
        out.slowClientRequests = quick ? 6 : 10;
        return true;
    }
    if (name == "cache_cold_stampede") {
        out.description = "no warmup, high concurrency on two "
                          "engines: every replica plans cold at once";
        out.replicas = 3;
        out.concurrency = 16;
        out.warmup = false;
        const size_t n = quick ? 96 : 192;
        out.trace = scenarioTrace(seed, n, quick, 2, 0.0);
        return true;
    }
    if (name == "corrupt_cache_restart") {
        out.description = "corrupt a persisted plan-cache file and "
                          "kill its replica; the warm restart must "
                          "reject the snapshot and keep serving";
        out.replicas = 2;
        out.concurrency = 6;
        out.needsCacheFiles = true;
        out.cacheSaveIntervalSec = 1;
        const size_t n = quick ? 96 : 192;
        out.trace = scenarioTrace(seed, n, quick, 4, 0.0);
        FaultEvent corrupt;
        corrupt.kind = FaultKind::CorruptCache;
        corrupt.atRequest = n / 2;
        corrupt.slot = 0;
        out.faults.events.push_back(corrupt);
        out.minRestarts = 1;
        return true;
    }
    err = "unknown scenario '" + name + "'";
    return false;
}

bool
checkScenarioGates(const ScenarioSpec &spec, ScenarioOutcome &outcome)
{
    outcome.failures.clear();
    char buf[160];
    const auto fail = [&](const char *fmt, uint64_t a, uint64_t b) {
        std::snprintf(buf, sizeof(buf), fmt,
                      static_cast<unsigned long long>(a),
                      static_cast<unsigned long long>(b));
        outcome.failures.push_back(buf);
    };
    if (outcome.lost != 0)
        fail("%llu of %llu requests lost (never answered)",
             outcome.lost, outcome.requests);
    if (outcome.duplicated != 0)
        fail("%llu of %llu requests answered more than once",
             outcome.duplicated, outcome.requests);
    if (outcome.mismatches != 0)
        fail("%llu of %llu served responses not byte-identical to "
             "the serial oracle",
             outcome.mismatches, outcome.served);
    if (!spec.allowShed && outcome.shed != 0)
        fail("%llu requests shed but the scenario declares no "
             "overload (%llu requests)",
             outcome.shed, outcome.requests);
    if (outcome.errors != 0)
        fail("%llu non-overload error responses (%llu requests)",
             outcome.errors, outcome.requests);
    if (outcome.served > 0 && outcome.p99Ms > spec.p99BoundMs) {
        std::snprintf(buf, sizeof(buf),
                      "p99 %.1f ms exceeds the %.1f ms bound",
                      outcome.p99Ms, spec.p99BoundMs);
        outcome.failures.push_back(buf);
    }
    if (outcome.restarts < spec.minRestarts)
        fail("%llu restarts observed, scenario requires at least "
             "%llu",
             outcome.restarts, spec.minRestarts);
    if (outcome.abandoned != 0)
        fail("%llu replica slots abandoned (%llu restarts)",
             outcome.abandoned, outcome.restarts);
    outcome.pass = outcome.failures.empty();
    return outcome.pass;
}

} // namespace ta
