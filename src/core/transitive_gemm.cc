#include "core/transitive_gemm.h"

#include "common/logging.h"

namespace ta {

TransitiveGemmEngine::TransitiveGemmEngine(TransitiveGemmConfig config)
    : config_(config), scoreboard_(config.scoreboard)
{
    TA_ASSERT(config_.maxTransRows > 0, "maxTransRows must be positive");
}

TransitiveGemmResult
TransitiveGemmEngine::run(const MatI32 &w, int weight_bits,
                          const MatI32 &in) const
{
    return runSliced(bitSlice(w, weight_bits), in);
}

TransitiveGemmResult
TransitiveGemmEngine::runSliced(const SlicedMatrix &w,
                                const MatI32 &in) const
{
    TA_ASSERT(w.bits.cols() == in.rows(), "GEMM shape mismatch: K = ",
              w.bits.cols(), " vs ", in.rows());
    const int t = config_.scoreboard.tBits;
    const size_t chunks = numChunks(w.bits.cols(), t);

    TransitiveGemmResult res;
    res.output = MatI64(w.origRows, in.cols(), 0);

    for (size_t r0 = 0; r0 < w.bits.rows(); r0 += config_.maxTransRows) {
        const size_t r1 =
            std::min(w.bits.rows(), r0 + config_.maxTransRows);
        for (size_t ch = 0; ch < chunks; ++ch) {
            const auto rows = extractTransRows(w, t, ch, r0, r1);
            const Plan plan = scoreboard_.build(rows);
            executeSubTile(w, rows, plan, in, ch, res.output);

            std::vector<uint32_t> values;
            values.reserve(rows.size());
            for (const auto &r : rows)
                values.push_back(r.value);
            res.stats.merge(
                SparsityStats::fromPlan(plan, bitOpsOf(values)));
            ++res.subTiles;
        }
    }
    return res;
}

void
TransitiveGemmEngine::executeSubTile(const SlicedMatrix &w,
                                     const std::vector<TransRow> &rows,
                                     const Plan &plan, const MatI32 &in,
                                     size_t chunk, MatI64 &out) const
{
    const int t = config_.scoreboard.tBits;
    const size_t m = in.cols();
    const size_t k0 = chunk * t;

    // Partial-sum storage: one M-vector per executed node (the
    // distributed prefix buffer of Sec. 4.4).
    std::vector<std::vector<int64_t>> node_vals(1u << t);

    for (const PlanNode &pn : plan.nodes) {
        std::vector<int64_t> val(m, 0);
        uint32_t diff = pn.id;
        if (!pn.outlier && pn.parent != 0) {
            const auto &pv = node_vals[pn.parent];
            TA_ASSERT(!pv.empty(), "parent ", pn.parent,
                      " of node ", pn.id, " not yet computed");
            val = pv;
            diff = pn.id ^ pn.parent;
        }
        // Accumulate the difference bits: this is the PPE add. For
        // distance-1 nodes diff has exactly one set bit (one add).
        for (int b : setBits(diff)) {
            const size_t k = k0 + static_cast<size_t>(b);
            TA_ASSERT(k < in.rows(),
                      "TransRow bit beyond K: padding must be zero");
            const int32_t *row = in.rowPtr(k);
            for (size_t c = 0; c < m; ++c)
                val[c] += row[c];
        }
        node_vals[pn.id] = std::move(val);
    }

    // APE: scatter each row's node result into the output with the
    // bit-level shift and sign.
    for (const TransRow &r : rows) {
        if (r.value == 0)
            continue; // ZR
        const auto &val = node_vals[r.value];
        TA_ASSERT(!val.empty(), "row value ", r.value, " not computed");
        const int64_t lw = w.levelWeight(r.slicedRow);
        const size_t orow = w.origRow(r.slicedRow);
        int64_t *out_row = out.rowPtr(orow);
        for (size_t c = 0; c < m; ++c)
            out_row[c] += lw * val[c];
    }
}

} // namespace ta
