/** @file Unit tests for the static scoreboard + SI-miss model (Sec. 3.3). */

#include <gtest/gtest.h>

#include "scoreboard/static_scoreboard.h"
#include "workloads/generators.h"

namespace ta {
namespace {

ScoreboardConfig
cfg(int t)
{
    ScoreboardConfig c;
    c.tBits = t;
    return c;
}

TEST(StaticScoreboard, TileEqualsTensorNoMisses)
{
    // When the tile is the whole calibration set, reuse paths all hold.
    const std::vector<uint32_t> values = {1, 3, 7, 15, 3, 1};
    StaticScoreboard sb(cfg(4), values);
    const SparsityStats s = sb.evaluateTile(values);
    EXPECT_EQ(s.siMisses, 0u);
    EXPECT_EQ(s.totalOps(), 6u); // chain 1->3->7->15 + 2 duplicates
}

TEST(StaticScoreboard, MissingPrefixIsMaterialized)
{
    // Calibration saw {1, 3}; tile contains only {3}: SI points 3 -> 1,
    // but 1 is absent from the tile, so it must be re-materialized
    // (one SI miss, one TR add).
    StaticScoreboard sb(cfg(4), {1, 3});
    const SparsityStats s = sb.evaluateTile({3});
    EXPECT_EQ(s.siMisses, 1u);
    EXPECT_EQ(s.trNodes, 1u);
    EXPECT_EQ(s.totalOps(), 2u); // == popcount(3): no reuse benefit left
}

TEST(StaticScoreboard, UnseenValueFallsBackToScratch)
{
    // Node 7 never appeared during calibration: no SI entry at all.
    StaticScoreboard sb(cfg(4), {1, 3});
    const SparsityStats s = sb.evaluateTile({7});
    EXPECT_GE(s.siMisses, 1u);
    EXPECT_EQ(s.totalOps(), 3u); // popcount(7) from scratch
}

TEST(StaticScoreboard, SharedAncestorComputedOnce)
{
    // Tile {3, 7, 15}: chain within the tile; only the absent node 1
    // (3's calibrated prefix) is re-materialized once.
    StaticScoreboard sb(cfg(4), {1, 3, 7, 15});
    const SparsityStats s = sb.evaluateTile({3, 7, 15});
    EXPECT_EQ(s.siMisses, 1u);
    EXPECT_EQ(s.totalOps(), 4u); // 3 rows + 1 TR
}

TEST(StaticScoreboard, ZeroRowsSkipped)
{
    StaticScoreboard sb(cfg(4), {0, 1, 0});
    const SparsityStats s = sb.evaluateTile({0, 0, 1});
    EXPECT_EQ(s.zrRows, 2u);
    EXPECT_EQ(s.totalOps(), 1u);
}

TEST(StaticScoreboard, DuplicatesInTileAreFr)
{
    StaticScoreboard sb(cfg(4), {5, 5});
    const SparsityStats s = sb.evaluateTile({5, 5, 5});
    EXPECT_EQ(s.prRows, 1u);
    EXPECT_EQ(s.frRows, 2u);
}

TEST(StaticScoreboard, DenserThanDynamicOnSmallTiles)
{
    // Fig. 13: static SI degrades for small tiling row sizes but both
    // stay far below bit sparsity.
    const MatBit bits = randomBinaryMatrix(2048, 64, 0.5, 31);
    const auto all = tileValues(bits, 8, bits.rows());
    std::vector<uint32_t> calib;
    for (const auto &t : all)
        calib.insert(calib.end(), t.begin(), t.end());

    StaticScoreboard sb(cfg(8), calib);
    SparsityAnalyzer dyn(cfg(8));

    const double ds64 = sb.analyze(bits, 64).totalDensity();
    const double dd64 = dyn.analyzeDynamic(bits, 64).totalDensity();
    EXPECT_GT(ds64, dd64);

    const SparsityStats ss = sb.analyze(bits, 64);
    EXPECT_LT(ss.totalDensity(), ss.bitDensity());
}

TEST(StaticScoreboard, ConvergesToDynamicAtLargeTiles)
{
    const MatBit bits = randomBinaryMatrix(2048, 64, 0.5, 37);
    const auto all = tileValues(bits, 8, bits.rows());
    std::vector<uint32_t> calib;
    for (const auto &t : all)
        calib.insert(calib.end(), t.begin(), t.end());

    StaticScoreboard sb(cfg(8), calib);
    SparsityAnalyzer dyn(cfg(8));
    const double ds = sb.analyze(bits, 1024).totalDensity();
    const double dd = dyn.analyzeDynamic(bits, 1024).totalDensity();
    EXPECT_NEAR(ds, dd, 0.02);
}

TEST(StaticScoreboard, TensorPlanExposed)
{
    StaticScoreboard sb(cfg(4), {1, 3});
    EXPECT_EQ(sb.tensorPlan().numRows, 2u);
    EXPECT_TRUE(sb.info().valid(3));
}

} // namespace
} // namespace ta
