#include "quant/quantizer.h"

#include <algorithm>
#include <cmath>

#include "common/bitutil.h"

namespace ta {

namespace {

/** Clamp v into the symmetric S-bit signed range. */
int32_t
clampCode(int64_t v, int bits)
{
    const int64_t lo = -(1ll << (bits - 1));
    const int64_t hi = (1ll << (bits - 1)) - 1;
    return static_cast<int32_t>(std::clamp(v, lo, hi));
}

int32_t
roundToCode(float v, float scale, int bits)
{
    if (scale <= 0.0f)
        return 0;
    return clampCode(std::llroundf(v / scale), bits);
}

float
absMax(const float *p, size_t n)
{
    float m = 0.0f;
    for (size_t i = 0; i < n; ++i)
        m = std::max(m, std::fabs(p[i]));
    return m;
}

} // namespace

float
QuantResult::scaleAt(size_t r, size_t c) const
{
    const size_t g = groupSize > 0 ? c / groupSize : 0;
    return scales[r * numGroups + g];
}

MatF
QuantResult::dequantize() const
{
    MatF out(values.rows(), values.cols());
    for (size_t r = 0; r < values.rows(); ++r)
        for (size_t c = 0; c < values.cols(); ++c)
            out.at(r, c) = values.at(r, c) * scaleAt(r, c);
    return out;
}

std::string
PerTensorQuantizer::name() const
{
    return "per-tensor-int" + std::to_string(bits_);
}

QuantResult
PerTensorQuantizer::quantize(const MatF &m) const
{
    QuantResult q;
    q.bits = bits_;
    q.groupSize = 0;
    q.numGroups = 1;
    const float amax = absMax(m.data().data(), m.size());
    const float scale = amax / ((1 << (bits_ - 1)) - 1);
    // One scale replicated per row keeps scaleAt() uniform.
    q.scales.assign(m.rows(), scale);
    q.values = MatI32(m.rows(), m.cols());
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < m.cols(); ++c)
            q.values.at(r, c) = roundToCode(m.at(r, c), scale, bits_);
    return q;
}

std::string
GroupQuantizer::name() const
{
    return "group" + std::to_string(groupSize_) + "-int" +
           std::to_string(bits_);
}

QuantResult
GroupQuantizer::quantize(const MatF &m) const
{
    TA_ASSERT(groupSize_ > 0, "group size must be positive");
    QuantResult q;
    q.bits = bits_;
    q.groupSize = groupSize_;
    q.numGroups = ceilDiv(m.cols(), groupSize_);
    q.scales.assign(m.rows() * q.numGroups, 0.0f);
    q.values = MatI32(m.rows(), m.cols());
    for (size_t r = 0; r < m.rows(); ++r) {
        for (size_t g = 0; g < q.numGroups; ++g) {
            const size_t c0 = g * groupSize_;
            const size_t c1 = std::min(m.cols(), c0 + groupSize_);
            const float amax = absMax(m.rowPtr(r) + c0, c1 - c0);
            const float scale = amax / ((1 << (bits_ - 1)) - 1);
            q.scales[r * q.numGroups + g] = scale;
            for (size_t c = c0; c < c1; ++c)
                q.values.at(r, c) = roundToCode(m.at(r, c), scale, bits_);
        }
    }
    return q;
}

std::string
OutlierVictimQuantizer::name() const
{
    return "olive-ovp-int" + std::to_string(bits_);
}

QuantResult
OutlierVictimQuantizer::quantize(const MatF &m) const
{
    QuantResult q;
    q.bits = bits_;
    q.groupSize = 0;
    q.numGroups = 1;
    q.scales.assign(m.rows(), 0.0f);
    q.values = MatI32(m.rows(), m.cols());
    for (size_t r = 0; r < m.rows(); ++r) {
        // Percentile clipping: sort |row| and scale to the clip point.
        std::vector<float> mags(m.cols());
        for (size_t c = 0; c < m.cols(); ++c)
            mags[c] = std::fabs(m.at(r, c));
        std::vector<float> sorted = mags;
        std::sort(sorted.begin(), sorted.end());
        const size_t idx = std::min(
            sorted.size() - 1,
            static_cast<size_t>(clipPercentile_ * (sorted.size() - 1)));
        const float clip = sorted[idx];
        const float scale = clip / ((1 << (bits_ - 1)) - 1);
        q.scales[r] = scale;
        std::vector<bool> victim_of(m.cols(), false);
        for (size_t c = 0; c < m.cols(); ++c) {
            const float v = m.at(r, c);
            if (victim_of[c]) {
                q.values.at(r, c) = 0; // sacrificed to an outlier
                continue;
            }
            if (std::fabs(v) > clip && scale > 0.0f) {
                // Outlier: the victim's bits buy an exponent + 4-bit
                // mantissa code, so large magnitudes keep ~3% relative
                // precision (the OVP "outlier" encoding).
                const double mag = std::fabs(v) / scale;
                int e = static_cast<int>(std::floor(std::log2(mag)));
                int mant = static_cast<int>(
                    std::round((mag / std::exp2(e) - 1.0) * 16.0));
                if (mant == 16) {
                    mant = 0;
                    ++e;
                }
                e = std::min(e, 26); // keep the code inside int32
                const int64_t code =
                    e >= 4 ? static_cast<int64_t>(16 + mant) << (e - 4)
                           : std::llround(mag);
                q.values.at(r, c) = static_cast<int32_t>(
                    (v < 0 ? -code : code));
                // Victimize the neighbor (zero it).
                const size_t victim = c + 1 < m.cols() ? c + 1 : c - 1;
                q.values.at(r, victim) = 0;
                victim_of[victim] = true;
            } else {
                q.values.at(r, c) = roundToCode(v, scale, bits_);
            }
        }
    }
    return q;
}

std::string
AdaptiveTypeQuantizer::name() const
{
    std::string n = "ant-adaptive-int" + std::to_string(bits_);
    if (groupSize_ > 0)
        n += "-g" + std::to_string(groupSize_);
    return n;
}

QuantResult
AdaptiveTypeQuantizer::quantize(const MatF &m) const
{
    // Start from the uniform-int baseline (per row or per group).
    const int gs = groupSize_ > 0 ? groupSize_
                                  : static_cast<int>(m.cols());
    GroupQuantizer base(bits_, gs);
    QuantResult q = base.quantize(m);

    // Per row, consider the power-of-two ("float-ish") alternative and
    // keep whichever code minimizes squared error.
    for (size_t r = 0; r < m.rows(); ++r) {
        for (size_t g = 0; g < q.numGroups; ++g) {
            const size_t c0 = g * gs;
            const size_t c1 = std::min(m.cols(), c0 + gs);
            const float scale = q.scales[r * q.numGroups + g];
            if (scale <= 0.0f)
                continue;
            double err_int = 0.0, err_pot = 0.0;
            std::vector<int32_t> pot(c1 - c0, 0);
            for (size_t c = c0; c < c1; ++c) {
                const float v = m.at(r, c);
                const float dq = q.values.at(r, c) * scale;
                err_int += static_cast<double>(v - dq) * (v - dq);
                // Power-of-two code: value = sign * 2^e * scale, with e in
                // [0, 2^(bits-1)-1) and a zero code.
                int32_t code = 0;
                if (std::fabs(v) >= scale * 0.5f) {
                    const int max_e = (1 << (bits_ - 1)) - 2;
                    int e = static_cast<int>(std::round(
                        std::log2(std::fabs(v) / scale)));
                    e = std::clamp(e, 0, max_e);
                    code = (v < 0 ? -1 : 1) * (1 << e);
                }
                pot[c - c0] = code;
                const float dq2 = code * scale;
                err_pot += static_cast<double>(v - dq2) * (v - dq2);
            }
            if (err_pot < err_int) {
                for (size_t c = c0; c < c1; ++c)
                    q.values.at(r, c) = pot[c - c0];
            }
        }
    }
    return q;
}

double
quantMse(const MatF &ref, const QuantResult &q)
{
    const MatF dq = q.dequantize();
    double acc = 0.0;
    for (size_t i = 0; i < ref.size(); ++i) {
        const double d = ref.data()[i] - dq.data()[i];
        acc += d * d;
    }
    return acc / static_cast<double>(ref.size());
}

double
quantSqnr(const MatF &ref, const QuantResult &q)
{
    const MatF dq = q.dequantize();
    double sig = 0.0, noise = 0.0;
    for (size_t i = 0; i < ref.size(); ++i) {
        const double s = ref.data()[i];
        const double d = s - dq.data()[i];
        sig += s * s;
        noise += d * d;
    }
    if (noise == 0.0)
        return 120.0; // lossless: report a ceiling
    return 10.0 * std::log10(sig / noise);
}

} // namespace ta
