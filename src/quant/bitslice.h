/**
 * @file
 * Bit-slicing (Fig. 2 of the paper): an S-bit 2's-complement integer matrix
 * of shape (N x K) is decomposed into S binary matrices and re-arranged
 * into one (S*N x K) binary matrix. Row i*S + s of the sliced matrix holds
 * bit s of original row i; bit S-1 is the sign bit and carries weight
 * -2^(S-1), all others +2^s. With wide-enough accumulators this is exactly
 * lossless (Sec. 2.1), which the test suite verifies exhaustively.
 */

#ifndef TA_QUANT_BITSLICE_H
#define TA_QUANT_BITSLICE_H

#include <cstdint>
#include <vector>

#include "common/bitutil.h"
#include "quant/matrix.h"

namespace ta {

/** A binary matrix produced by bit-slicing plus its row metadata. */
struct SlicedMatrix
{
    MatBit bits;     ///< (S*N x K) matrix of {0,1}
    int wordBits = 0;    ///< S: width of the source integers
    size_t origRows = 0; ///< N: rows of the source matrix

    /** Original row index of sliced row r. */
    size_t origRow(size_t r) const { return r / wordBits; }

    /** Bit level (0 = LSB) of sliced row r. */
    int bitLevel(size_t r) const { return static_cast<int>(r % wordBits); }

    /**
     * Signed weight 2^level (negative for the sign bit) applied when
     * recombining bit-level partial results.
     */
    int64_t levelWeight(size_t r) const;
};

/**
 * Slice an integer matrix with values representable in `word_bits`-bit
 * 2's complement. fatal()s if any value is out of range.
 */
SlicedMatrix bitSlice(const MatI32 &m, int word_bits);

/** Reassemble the integer matrix from its slices (test helper). */
MatI32 bitUnslice(const SlicedMatrix &s);

/**
 * A TransRow: one T-bit-wide segment of one sliced row. `value` packs the
 * T bits (bit j of value corresponds to binary-matrix column chunkCol*T+j);
 * `slicedRow` identifies which sliced row it came from so results can be
 * scattered back with the right shift and sign.
 */
struct TransRow
{
    uint32_t value = 0;
    uint32_t slicedRow = 0;
};

/**
 * Extract the TransRows of column chunk `chunk` (columns
 * [chunk*T, chunk*T+T), zero-padded at the edge) for sliced rows
 * [row_begin, row_end).
 */
std::vector<TransRow> extractTransRows(const SlicedMatrix &s, int t_bits,
                                       size_t chunk, size_t row_begin,
                                       size_t row_end);

/**
 * Allocation-free variant: `out` is cleared and refilled, keeping its
 * capacity. This is the hot-loop entry point — one reused buffer per
 * executor thread extracts every sub-tile without touching the heap.
 */
void extractTransRows(const SlicedMatrix &s, int t_bits, size_t chunk,
                      size_t row_begin, size_t row_end,
                      std::vector<TransRow> &out);

/**
 * A zero-copy, read-only view of a bit-packed sliced weight plane —
 * what the storage tier's BufferManager hands the engine instead of a
 * freshly synthesized SlicedMatrix. Bit c of packed row r lives at
 * data[r * rowStride + (c >> 3)], bit position (c & 7) (LSB-first,
 * matching the kernel packBits convention), so a TransRow extracted
 * from a view is bit-identical to one extracted from the SlicedMatrix
 * the view was packed from. The view does not own `data`; the segment
 * mapping (or test buffer) behind it must outlive every extraction.
 */
struct WeightView
{
    const uint8_t *data = nullptr;
    size_t rowStride = 0; ///< bytes per packed row: ceilDiv(cols, 8)
    size_t rows = 0;      ///< S*N sliced rows
    size_t cols = 0;      ///< K columns
    int wordBits = 0;     ///< S: width of the source integers
    size_t origRows = 0;  ///< N: rows of the source matrix
};

/** extractTransRows over a bit-packed view: same chunk geometry, same
 *  TransRow values and order as the SlicedMatrix overload. */
void extractTransRows(const WeightView &v, int t_bits, size_t chunk,
                      size_t row_begin, size_t row_end,
                      std::vector<TransRow> &out);

/**
 * Pack a byte-per-bit SlicedMatrix into the WeightView bit layout
 * (LSB-first within each byte, rows padded to whole bytes with
 * zeros). This is the one packing rule `ta_pack` writes with and the
 * round-trip tests verify against.
 */
std::vector<uint8_t> packSlicedBits(const SlicedMatrix &s);

/** Number of T-wide column chunks covering K columns. */
inline size_t
numChunks(size_t cols, int t_bits)
{
    return ceilDiv(cols, t_bits);
}

/** Total number of set bits in a binary matrix (bit-sparsity numerator). */
uint64_t countOnes(const MatBit &bits);

} // namespace ta

#endif // TA_QUANT_BITSLICE_H
