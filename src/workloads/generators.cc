#include "workloads/generators.h"

#include <algorithm>
#include <cmath>

namespace ta {

MatBit
randomBinaryMatrix(size_t rows, size_t cols, double p, uint64_t seed)
{
    Rng rng(seed);
    MatBit m(rows, cols);
    for (auto &b : m.data())
        b = rng.bernoulli(p) ? 1 : 0;
    return m;
}

MatI32
randomIntMatrix(size_t rows, size_t cols, int bits, uint64_t seed)
{
    Rng rng(seed);
    const int64_t lo = -(1ll << (bits - 1));
    const int64_t hi = (1ll << (bits - 1)) - 1;
    MatI32 m(rows, cols);
    for (auto &v : m.data())
        v = static_cast<int32_t>(rng.uniformInt(lo, hi));
    return m;
}

MatF
gaussianWeights(size_t rows, size_t cols, uint64_t seed, double sigma,
                double outlier_frac, double outlier_scale)
{
    Rng rng(seed);
    MatF m(rows, cols);
    for (auto &v : m.data()) {
        double s = sigma;
        if (outlier_frac > 0 && rng.bernoulli(outlier_frac))
            s *= outlier_scale;
        v = static_cast<float>(rng.gaussian() * s);
    }
    return m;
}

MatI32
realLikeWeights(size_t rows, size_t cols, int bits, uint64_t seed)
{
    const MatF w = gaussianWeights(rows, cols, seed);
    const GroupQuantizer q(bits, 128);
    return q.quantize(w).values;
}

SlicedMatrix
realLikeSlicedWeights(size_t rows, size_t cols, int bits, uint64_t seed)
{
    return bitSlice(realLikeWeights(rows, cols, bits, seed), bits);
}

MatI32
randomActivations(size_t rows, size_t cols, int bits, uint64_t seed)
{
    Rng rng(seed);
    const double sigma = (1 << (bits - 1)) / 4.0;
    const int64_t lo = -(1ll << (bits - 1));
    const int64_t hi = (1ll << (bits - 1)) - 1;
    MatI32 m(rows, cols);
    for (auto &v : m.data()) {
        const int64_t x = std::llround(rng.gaussian() * sigma);
        v = static_cast<int32_t>(std::clamp(x, lo, hi));
    }
    return m;
}

double
slicedBitDensity(const SlicedMatrix &s)
{
    if (s.bits.size() == 0)
        return 0.0;
    return static_cast<double>(countOnes(s.bits)) / s.bits.size();
}

} // namespace ta
