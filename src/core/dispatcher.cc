#include "core/dispatcher.h"

#include <algorithm>

#include "common/logging.h"
#include "noc/benes.h"

namespace ta {

Dispatcher::Dispatcher(Config config)
    : config_(config), sorter_(config.sorterCapacity)
{
}

DispatchResult
Dispatcher::dispatch(const Plan &plan,
                     const std::vector<TransRow> &rows) const
{
    const int t = config_.tBits;
    DispatchResult r;

    // Stage 1a: PopCount sort into Hamming order.
    r.sorterCycles = sorter_.sortCycles(rows.size());
    const uint32_t k = ceilLog2(config_.sorterCapacity);
    r.sorterCompares = ceilDiv(rows.size(), config_.sorterCapacity) *
                       (k * (k + 1) / 2) *
                       (config_.sorterCapacity / 2);

    // Stage 1b: T-way scoreboard. The table has 2^T entries but only
    // distinct executed nodes are touched, so the stage runs in
    // min(n, 2^T)/T cycles at worst and distinct/T typically (Sec. 4.6).
    const uint64_t nodes = std::min<uint64_t>(
        plan.nodes.size(), std::min<uint64_t>(rows.size(), 1ull << t));
    r.scoreboardCycles = ceilDiv(nodes, t);
    r.scoreboardNodes = nodes;

    // Stage 2: PPE — the longest lane queue dominates.
    const auto lane_ops = plan.laneOps();
    r.ppeCycles =
        *std::max_element(lane_ops.begin(), lane_ops.end());
    r.ppeOps = plan.ppeOps();
    r.benesTraversals = r.ppeCycles;

    // One XOR prune per dispatched row (Fig. 8 step 3).
    r.xorOps = plan.numRows - plan.zeroRows;

    // Stage 3: APE — T rows retire per cycle, subject to prefix-buffer
    // bank conflicts through the crossbar.
    CrossbarModel xbar(config_.prefixBanks, config_.xbarQueueDepth);
    std::vector<std::vector<uint32_t>> groups;
    std::vector<uint32_t> cur;
    for (const TransRow &row : rows) {
        if (row.value == 0)
            continue;
        cur.push_back(row.slicedRow % config_.prefixBanks);
        if (cur.size() == static_cast<size_t>(t)) {
            groups.push_back(cur);
            cur.clear();
        }
    }
    if (!cur.empty())
        groups.push_back(cur);
    r.apeCycles = xbar.simulateGroups(groups);
    r.xbarStallCycles = xbar.stats().get("stallCycles");
    r.apeOps = plan.apeOps();

    return r;
}

} // namespace ta
