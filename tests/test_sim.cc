/** @file Unit tests for the energy/area/SRAM/DRAM models. */

#include <gtest/gtest.h>

#include "sim/area_model.h"
#include "sim/dram.h"
#include "sim/energy_model.h"
#include "sim/sram.h"

namespace ta {
namespace {

TEST(EnergyParams, AddScalesWithWidth)
{
    EnergyParams p;
    EXPECT_DOUBLE_EQ(p.addEnergy(24), 2 * p.addEnergy(12));
    EXPECT_GT(p.addEnergy(12), 0.0);
}

TEST(EnergyParams, MultQuadraticInWidth)
{
    EnergyParams p;
    EXPECT_NEAR(p.multEnergy(8) / p.multEnergy(4), 4.0, 1e-9);
}

TEST(EnergyParams, MacCostsMoreThanAdd)
{
    EnergyParams p;
    EXPECT_GT(p.macEnergy(8), p.addEnergy(24));
}

TEST(EnergyParams, SramSqrtScaling)
{
    EnergyParams p;
    EXPECT_DOUBLE_EQ(p.sramPerByte(8), p.sramBase);
    EXPECT_NEAR(p.sramPerByte(32), 2 * p.sramBase, 1e-9);
    EXPECT_GT(p.sramPerByte(512), p.sramPerByte(32));
    EXPECT_DOUBLE_EQ(p.sramPerByte(0), 0.0);
}

TEST(EnergyParams, CyclesToNsAt500Mhz)
{
    EnergyParams p;
    EXPECT_DOUBLE_EQ(p.cyclesToNs(500), 1000.0); // 500 cycles = 1 us
}

TEST(EnergyParams, DramStaticGrowsWithTime)
{
    EnergyParams p;
    EXPECT_GT(p.dramStaticEnergy(1000), p.dramStaticEnergy(10));
}

TEST(EnergyBreakdown, Accumulate)
{
    EnergyBreakdown a, b;
    a.core = 1;
    a.prefixBuf = 2;
    b.core = 3;
    b.dramStatic = 4;
    a += b;
    EXPECT_DOUBLE_EQ(a.core, 4.0);
    EXPECT_DOUBLE_EQ(a.buffers(), 2.0);
    EXPECT_DOUBLE_EQ(a.total(), 10.0);
}

TEST(Sram, TracksAccesses)
{
    SramBuffer b("wgt", 8 * 1024);
    b.read(100);
    b.write(50);
    EXPECT_EQ(b.readBytes(), 100u);
    EXPECT_EQ(b.writeBytes(), 50u);
    EXPECT_EQ(b.totalBytes(), 150u);
    b.reset();
    EXPECT_EQ(b.totalBytes(), 0u);
}

TEST(Sram, EnergyProportionalToTraffic)
{
    EnergyParams p;
    SramBuffer b("in", 8 * 1024);
    b.read(1000);
    const double e1 = b.accessEnergy(p);
    b.read(1000);
    EXPECT_NEAR(b.accessEnergy(p), 2 * e1, 1e-9);
}

TEST(DoubleBuffer, OverlapHidesFill)
{
    DoubleBuffer db("dbuf", 1024);
    EXPECT_EQ(db.overlap(10, 50), 0u);  // fully hidden
    EXPECT_EQ(db.overlap(80, 50), 30u); // partially exposed
    EXPECT_EQ(db.exposedCycles(), 30u);
}

TEST(Dram, TransferCycles)
{
    DramModel d(64.0);
    d.read(640);
    EXPECT_EQ(d.transferCycles(), 10u);
    d.write(1);
    EXPECT_EQ(d.transferCycles(), 11u); // ceil
}

TEST(Dram, DynamicEnergy)
{
    EnergyParams p;
    DramModel d;
    d.read(100);
    EXPECT_DOUBLE_EQ(d.dynamicEnergy(p), 100 * p.dramPerByte);
}

TEST(Dram, RejectsBadBandwidth)
{
    EXPECT_THROW(DramModel(0.0), std::logic_error);
}

TEST(AreaModel, TransArrayMatchesTable2)
{
    // Paper Table 2: 6 units of 8x32 PPE+APE plus NoC and scoreboard
    // come to ~0.443 mm^2.
    AreaModel am;
    const AreaReport r = am.transArray(6, 8, 32, 480);
    EXPECT_NEAR(r.coreAreaMm2, 0.443, 0.02);
    EXPECT_EQ(r.bufferKb, 480u);
}

TEST(AreaModel, BaselinesMatchTable2)
{
    AreaModel am;
    const auto rows = am.table2();
    ASSERT_EQ(rows.size(), 6u);
    // BitFusion 28x32 x 548 um^2 = 0.491 mm^2.
    EXPECT_EQ(rows[1].arch, "BitFusion");
    EXPECT_NEAR(rows[1].coreAreaMm2, 0.491, 0.01);
    EXPECT_NEAR(rows[2].coreAreaMm2, 0.484, 0.01); // ANT
    EXPECT_NEAR(rows[3].coreAreaMm2, 0.489, 0.01); // Olive
    EXPECT_NEAR(rows[4].coreAreaMm2, 0.473, 0.01); // BitVert
    EXPECT_NEAR(rows[5].coreAreaMm2, 0.474, 0.01); // Tender
}

TEST(AreaModel, TransArrayCoreSmallerThanBaselines)
{
    AreaModel am;
    const auto rows = am.table2();
    for (size_t i = 1; i < rows.size(); ++i)
        EXPECT_LT(rows[0].coreAreaMm2, rows[i].coreAreaMm2)
            << rows[i].arch;
}

TEST(AreaModel, StaticScoreboardSavesArea)
{
    AreaModel am;
    const double dynamic =
        am.transArray(6, 8, 32, 480, true).coreAreaMm2;
    const double fixed =
        am.transArray(6, 8, 32, 480, false).coreAreaMm2;
    EXPECT_LT(fixed, dynamic);
    // Sec. 5.8: the scoreboard unit is ~25% of the core.
    EXPECT_NEAR((dynamic - fixed) / dynamic, 0.21, 0.08);
}

} // namespace
} // namespace ta
