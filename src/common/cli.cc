#include "common/cli.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace ta {

namespace {

void
report(const std::string &flag, const char *value, long long min,
       long long max)
{
    std::fprintf(stderr, "%s: expected integer in [%lld, %lld], got '%s'\n",
                 flag.c_str(), min, max, value == nullptr ? "" : value);
}

void
reportU64(const std::string &flag, const char *value, uint64_t min,
          uint64_t max)
{
    std::fprintf(stderr,
                 "%s: expected integer in [%llu, %llu], got '%s'\n",
                 flag.c_str(), static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max),
                 value == nullptr ? "" : value);
}

} // namespace

bool
parseIntFlag(const std::string &flag, const char *value, long long min,
             long long max, long long &out)
{
    if (value == nullptr || *value == '\0') {
        report(flag, value, min, max);
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(value, &end, 10);
    if (errno == ERANGE || end == value || *end != '\0' || v < min ||
        v > max) {
        report(flag, value, min, max);
        return false;
    }
    out = v;
    return true;
}

bool
parseU64Value(const char *value, uint64_t min, uint64_t max,
              uint64_t &out)
{
    if (value == nullptr || *value == '\0')
        return false;
    // strtoull accepts "-1" by wrapping; reject any explicit sign here
    // so negative values fail loudly instead of becoming 2^64-1.
    if (*value == '-' || *value == '+')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    if (errno == ERANGE || end == value || *end != '\0' || v < min ||
        v > max)
        return false;
    out = v;
    return true;
}

bool
parseU64Flag(const std::string &flag, const char *value, uint64_t min,
             uint64_t max, uint64_t &out)
{
    if (!parseU64Value(value, min, max, out)) {
        reportU64(flag, value, min, max);
        return false;
    }
    return true;
}

bool
parseIntFlag(const std::string &flag, const char *value, int min,
             int max, int &out)
{
    long long v = 0;
    if (!parseIntFlag(flag, value, static_cast<long long>(min),
                      static_cast<long long>(max), v))
        return false;
    out = static_cast<int>(v);
    return true;
}

bool
parseSizeFlag(const std::string &flag, const char *value, uint64_t min,
              uint64_t max, size_t &out)
{
    uint64_t v = 0;
    if (!parseU64Flag(flag, value, min, max, v))
        return false;
    out = static_cast<size_t>(v);
    return true;
}

} // namespace ta
