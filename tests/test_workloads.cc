/** @file Unit tests for the LLaMA / ResNet-18 workload descriptors. */

#include <gtest/gtest.h>

#include "workloads/llama.h"
#include "workloads/resnet18.h"

namespace ta {
namespace {

TEST(Llama, SevenModelsInPaperOrder)
{
    const auto models = allLlamaModels();
    ASSERT_EQ(models.size(), 7u);
    EXPECT_EQ(models[0].name, "LLaMA-1-7B");
    EXPECT_EQ(models[3].name, "LLaMA-1-65B");
    EXPECT_EQ(models[6].name, "LLaMA-3-8B");
}

TEST(Llama, SevenBHyperparameters)
{
    const LlamaConfig c = llama1_7b();
    EXPECT_EQ(c.hidden, 4096u);
    EXPECT_EQ(c.ffn, 11008u);
    EXPECT_EQ(c.heads, 32u);
    EXPECT_EQ(c.headDim(), 128u);
    EXPECT_EQ(c.seq, 2048u);
}

TEST(Llama, GroupedQueryAttentionIn3)
{
    const LlamaConfig c = llama3_8b();
    EXPECT_EQ(c.kvHeads, 8u);
    EXPECT_EQ(c.kvDim(), 1024u);
    EXPECT_LT(c.kvDim(), c.hidden);
}

TEST(Llama, FcSuiteHasSevenGemms)
{
    const WorkloadSuite s = llamaFcLayers(llama1_7b());
    ASSERT_EQ(s.layers.size(), 7u);
    // q_proj: 4096x4096 against seq 2048.
    EXPECT_EQ(s.layers[0].shape.n, 4096u);
    EXPECT_EQ(s.layers[0].shape.k, 4096u);
    EXPECT_EQ(s.layers[0].shape.m, 2048u);
    // down_proj: transposed MLP dims.
    EXPECT_EQ(s.layers[6].shape.n, 4096u);
    EXPECT_EQ(s.layers[6].shape.k, 11008u);
}

TEST(Llama, KvProjectionsShrinkWithGqa)
{
    const WorkloadSuite s = llamaFcLayers(llama3_8b());
    EXPECT_EQ(s.layers[1].shape.n, 1024u); // k_proj
    EXPECT_EQ(s.layers[2].shape.n, 1024u); // v_proj
}

TEST(Llama, FcMacsGrowWithModelSize)
{
    uint64_t prev = 0;
    for (const auto &cfg :
         {llama1_7b(), llama1_13b(), llama1_30b(), llama1_65b()}) {
        const uint64_t macs = llamaFcLayers(cfg).totalMacs();
        EXPECT_GT(macs, prev);
        prev = macs;
    }
}

TEST(Llama, AttentionSuite)
{
    const WorkloadSuite s = llamaAttentionLayers(llama1_7b());
    ASSERT_EQ(s.layers.size(), 2u);
    EXPECT_TRUE(s.layers[0].attention);
    EXPECT_EQ(s.layers[0].count, 32u); // per head
    // QK^T: seq x headDim x seq.
    EXPECT_EQ(s.layers[0].shape.n, 2048u);
    EXPECT_EQ(s.layers[0].shape.k, 128u);
    EXPECT_EQ(s.layers[0].shape.m, 2048u);
    // PV: headDim x seq x seq.
    EXPECT_EQ(s.layers[1].shape.n, 128u);
    EXPECT_EQ(s.layers[1].shape.k, 2048u);
}

TEST(Resnet18, TwentyOneLayers)
{
    const WorkloadSuite s = resnet18Layers();
    EXPECT_EQ(s.layers.size(), 21u); // Fig. 14 x-axis
}

TEST(Resnet18, Conv1Im2col)
{
    const auto convs = resnet18Convs();
    const GemmShape g = convs[0].gemm();
    EXPECT_EQ(g.n, 64u);
    EXPECT_EQ(g.k, 3u * 7 * 7);
    EXPECT_EQ(g.m, 112u * 112);
}

TEST(Resnet18, DownsampleShortcutsPresent)
{
    const auto s = resnet18Layers();
    int downsamples = 0;
    for (const auto &l : s.layers)
        downsamples += l.name.find("downsample") != std::string::npos;
    EXPECT_EQ(downsamples, 3);
}

TEST(Resnet18, TotalMacsNearTwoGmacs)
{
    // ResNet-18 is ~1.8 GMACs at 224x224.
    const double gmacs = resnet18Layers().totalMacs() / 1e9;
    EXPECT_GT(gmacs, 1.5);
    EXPECT_LT(gmacs, 2.2);
}

TEST(Resnet18, SpatialSizesChainCorrectly)
{
    for (const auto &c : resnet18Convs()) {
        EXPECT_EQ(c.inSize % c.stride, 0u) << c.name;
        EXPECT_GT(c.gemm().macs(), 0u);
    }
}

TEST(WorkloadSuite, TotalMacsSums)
{
    WorkloadSuite s;
    s.layers.push_back({"a", {2, 3, 4}, 1, false});
    s.layers.push_back({"b", {2, 3, 4}, 5, false});
    EXPECT_EQ(s.totalMacs(), 24u + 120u);
}

} // namespace
} // namespace ta

namespace ta {
namespace {

TEST(Llama, FcMacFormula)
{
    // Without GQA: (4 h^2 + 3 h f) * seq.
    const LlamaConfig c = llama1_7b();
    const uint64_t expected =
        (4 * c.hidden * c.hidden + 3 * c.hidden * c.ffn) * c.seq;
    EXPECT_EQ(llamaFcLayers(c).totalMacs(), expected);
}

TEST(Llama, GqaReducesFcMacs)
{
    // LLaMA-3's grouped KV projections shave MACs vs full heads.
    LlamaConfig full = llama3_8b();
    full.kvHeads = full.heads;
    EXPECT_LT(llamaFcLayers(llama3_8b()).totalMacs(),
              llamaFcLayers(full).totalMacs());
}

TEST(Llama, AttentionMacsQuadraticInSeq)
{
    LlamaConfig c = llama1_7b();
    const uint64_t m1 = llamaAttentionLayers(c).totalMacs();
    c.seq = 4096;
    const uint64_t m2 = llamaAttentionLayers(c).totalMacs();
    EXPECT_NEAR(static_cast<double>(m2) / m1, 4.0, 0.01);
}

TEST(Llama, BlockCountsMatchCheckpoints)
{
    EXPECT_EQ(llama1_7b().layers, 32u);
    EXPECT_EQ(llama1_13b().layers, 40u);
    EXPECT_EQ(llama1_30b().layers, 60u);
    EXPECT_EQ(llama1_65b().layers, 80u);
}

TEST(Resnet18, SpatialChainOutputs)
{
    // Downsampling stages halve the feature map.
    const auto convs = resnet18Convs();
    for (const auto &c : convs) {
        if (c.stride == 2)
            EXPECT_EQ(c.outSize(), c.inSize / 2) << c.name;
        else
            EXPECT_EQ(c.outSize(), c.inSize) << c.name;
    }
}

} // namespace
} // namespace ta
