/** @file Unit tests for the CACTI-lite SRAM estimator. */

#include <gtest/gtest.h>

#include "sim/cacti_lite.h"
#include "sim/energy_model.h"

namespace ta {
namespace {

TEST(CactiLite, AreaScalesWithCapacity)
{
    CactiLite c;
    const double a8 = c.estimate({8 * 1024, 1, 8}).areaMm2;
    const double a32 = c.estimate({32 * 1024, 1, 8}).areaMm2;
    EXPECT_NEAR(a32 / a8, 4.0, 0.01);
}

TEST(CactiLite, PlausibleDensityAt28nm)
{
    // 480 KB (the TransArray buffer budget) should land in the
    // 0.5-1.5 mm^2 range at 28 nm.
    CactiLite c;
    const double area = c.estimate({480 * 1024, 8, 8}).areaMm2;
    EXPECT_GT(area, 0.3);
    EXPECT_LT(area, 2.0);
}

TEST(CactiLite, EnergyGrowsSublinearlyWithCapacity)
{
    CactiLite c;
    const double e8 = c.estimate({8 * 1024, 1, 8}).readPjPerAccess;
    const double e128 = c.estimate({128 * 1024, 1, 8}).readPjPerAccess;
    EXPECT_GT(e128, e8);
    EXPECT_LT(e128 / e8, 16.0); // sqrt law, not linear
    EXPECT_NEAR(e128 / e8, 4.0, 0.1);
}

TEST(CactiLite, BankingReducesAccessEnergyCostsArea)
{
    CactiLite c;
    const SramEstimate mono = c.estimate({64 * 1024, 1, 8});
    const SramEstimate banked = c.estimate({64 * 1024, 8, 8});
    EXPECT_LT(banked.readPjPerAccess, mono.readPjPerAccess);
    EXPECT_GT(banked.areaMm2, mono.areaMm2);
}

TEST(CactiLite, ConsistentWithEnergyParamsLaw)
{
    // The fast-path sramPerByte() law and the geometric model agree at
    // the anchor point and track each other across sizes.
    CactiLite c;
    EnergyParams ep;
    for (double kb : {8.0, 18.0, 32.0, 128.0}) {
        const SramEstimate e = c.estimate(
            {static_cast<uint64_t>(kb * 1024), 1, 1});
        EXPECT_NEAR(e.readPjPerAccess, ep.sramPerByte(kb),
                    ep.sramPerByte(kb) * 0.05)
            << kb << " KB";
    }
}

TEST(CactiLite, WritesCostMoreThanReads)
{
    CactiLite c;
    const SramEstimate e = c.estimate({16 * 1024, 1, 4});
    EXPECT_GT(e.writePjPerAccess, e.readPjPerAccess);
}

TEST(CactiLite, LeakageProportionalToCapacity)
{
    CactiLite c;
    EXPECT_NEAR(c.estimate({64 * 1024, 1, 8}).leakageMw /
                    c.estimate({16 * 1024, 1, 8}).leakageMw,
                4.0, 0.01);
}

TEST(CactiLite, RejectsBadGeometry)
{
    CactiLite c;
    EXPECT_THROW(c.estimate({64, 1, 8}), std::logic_error);
    EXPECT_THROW(c.estimate({8192, 3, 8}), std::logic_error);
    EXPECT_THROW(c.estimate({8192, 1, 0}), std::logic_error);
}

TEST(CactiLite, PerBytHelper)
{
    CactiLite c;
    const SramEstimate e = c.estimate({8 * 1024, 1, 16});
    EXPECT_NEAR(e.readPjPerByte(16) * 16, e.readPjPerAccess, 1e-12);
}

} // namespace
} // namespace ta
