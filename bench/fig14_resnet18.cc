/**
 * @file
 * Fig. 14: per-layer speedups on ResNet-18 (ImageNet, im2col GEMMs) for
 * BitFusion (=1x), ANT and TransArray. Following Sec. 5.10, TransArray
 * uses 4-bit quantization except the first convolution and the final FC
 * layer, which stay at 8 bits; ANT and BitFusion run their 8-bit CNN
 * configurations. The mixed-precision layer loop routes through
 * runSuiteMixed(), which owns the shared weight-seed convention.
 */

#include <cmath>
#include <cstdio>

#include "baselines/baseline.h"
#include "common/table.h"
#include "harness/harness.h"
#include "workloads/resnet18.h"
#include "workloads/suite_runner.h"

using namespace ta;

namespace {

int
runFig14(HarnessContext &ctx)
{
    WorkloadSuite s = resnet18Layers();
    if (ctx.quick() && s.layers.size() > 7) {
        // Keep the 8-bit edge layers (first conv, final FC) plus the
        // first few inner 4-bit layers.
        WorkloadSuite small;
        small.name = s.name;
        small.layers.assign(s.layers.begin(), s.layers.begin() + 6);
        small.layers.push_back(s.layers.back());
        s = small;
    }
    // ResNet feature maps are small enough to stay on-chip between
    // fused layers, so the effective streaming bandwidth is far higher
    // than the LLM setting; model it as 102.4 B/cycle for everyone.
    const double cnn_bw = 102.4;
    auto bf = makeBaseline("BitFusion");
    auto ant = makeBaseline("ANT");
    bf->setDramBytesPerCycle(cnn_bw);
    ant->setDramBytesPerCycle(cnn_bw);
    // TransArray mixed precision for CNNs (Sec. 4.5): 4-bit activations
    // split each PPE into two, except the 8-bit edge layers.
    TransArrayAccelerator::Config tc;
    tc.sampleLimit = ctx.quick() ? 16 : 64;
    tc.dramBytesPerCycle = cnn_bw;
    const auto ta_acc = ctx.makeAccelerator(tc);
    TransArrayAccelerator::Config tc4 = tc;
    tc4.actBits = 4;
    const auto ta_acc4 = ctx.makeAccelerator(tc4);

    // First conv and final FC keep 8-bit precision (Sec. 5.10).
    auto edge = [&](size_t i) {
        return i == 0 || i + 1 == s.layers.size();
    };
    const SuiteRunResult ta_res = runSuiteMixed(
        s,
        [&](size_t i, const GemmLayerDesc &) {
            return edge(i) ? LayerEnginePick{ta_acc.get(), 8}
                           : LayerEnginePick{ta_acc4.get(), 4};
        },
        ctx.seed(33), ctx.batch(8));

    // Baseline per-layer cycles, sharded across the executor with
    // slot-order merges (bit-identical to the serial loop). The two
    // baselines run their 8-bit edge / 4-bit inner convention via two
    // sub-suite passes split by precision.
    ParallelExecutor &pool = ctx.executor();
    const BaselineSuiteResult bf_res =
        runBaselineSuite(*bf, s, 8, 8, 0.5, &pool);
    WorkloadSuite edges, inner;
    edges.name = inner.name = s.name;
    std::vector<size_t> edge_idx, inner_idx;
    for (size_t i = 0; i < s.layers.size(); ++i) {
        (edge(i) ? edges : inner).layers.push_back(s.layers[i]);
        (edge(i) ? edge_idx : inner_idx).push_back(i);
    }
    const BaselineSuiteResult ant_edge =
        runBaselineSuite(*ant, edges, 8, 8, 0.5, &pool);
    const BaselineSuiteResult ant_inner =
        runBaselineSuite(*ant, inner, 4, 4, 0.5, &pool);
    std::vector<uint64_t> ant_cycles(s.layers.size(), 0);
    for (size_t k = 0; k < edge_idx.size(); ++k)
        ant_cycles[edge_idx[k]] = ant_edge.perLayer[k].cycles;
    for (size_t k = 0; k < inner_idx.size(); ++k)
        ant_cycles[inner_idx[k]] = ant_inner.perLayer[k].cycles;

    Table t("Fig. 14: ResNet-18 per-layer speedup over BitFusion");
    t.setHeader({"#", "Layer", "GEMM (NxKxM)", "BitFusion", "ANT",
                 "TransArray"});

    uint64_t bf_total = 0, ant_total = 0, ta_total = 0;
    for (size_t i = 0; i < s.layers.size(); ++i) {
        const GemmLayerDesc &l = s.layers[i];
        const uint64_t c_bf = bf_res.perLayer[i].cycles;
        const uint64_t c_ant = ant_cycles[i];
        const uint64_t c_ta = ta_res.perLayer[i].cycles;
        bf_total += c_bf;
        ant_total += c_ant;
        ta_total += c_ta;

        char shape[64];
        std::snprintf(shape, sizeof(shape), "%llux%llux%llu",
                      static_cast<unsigned long long>(l.shape.n),
                      static_cast<unsigned long long>(l.shape.k),
                      static_cast<unsigned long long>(l.shape.m));
        t.addRow({std::to_string(i + 1), l.name, shape, "1.00",
                  Table::fmt(static_cast<double>(c_bf) / c_ant, 2),
                  Table::fmt(static_cast<double>(c_bf) / c_ta, 2)});
    }
    t.addRow({"-", "Total", "-", "1.00",
              Table::fmt(static_cast<double>(bf_total) / ant_total, 2),
              Table::fmt(static_cast<double>(bf_total) / ta_total, 2)});
    t.print();

    ctx.metric("layers", static_cast<uint64_t>(s.layers.size()));
    ctx.metric("ta_total_cycles", ta_total);
    ctx.metric("ant_total_cycles", ant_total);
    ctx.metric("bitfusion_total_cycles", bf_total);
    ctx.metric("speedup_ta_vs_bitfusion",
               static_cast<double>(bf_total) / ta_total);
    ctx.metric("speedup_ta_vs_ant",
               static_cast<double>(ant_total) / ta_total);

    std::printf(
        "Shape check vs paper (Sec. 5.10): TransArray ~4.3x over\n"
        "BitFusion and ~2.2x over ANT in total; small late layers are\n"
        "memory-bound, so per-layer speedups taper toward the end.\n");
    return 0;
}

} // namespace

TA_BENCHMARK("fig14",
             "ResNet-18 per-layer speedups (mixed 8/4-bit TransArray)",
             runFig14);
