#include "core/ta_unit.h"

#include "common/logging.h"

namespace ta {

TransArrayUnit::TransArrayUnit(Config config)
    : config_(config), scoreboard_(config.scoreboardConfig()),
      dispatcher_(config.dispatcherConfig())
{
    TA_ASSERT(config_.maxTransRows > 0, "sub-tile height must be > 0");
}

TransArrayUnit::SubTileResult
TransArrayUnit::processSubTile(const std::vector<TransRow> &rows) const
{
    const Plan plan = scoreboard_.build(rows);
    return processSubTilePlanned(plan, rows);
}

TransArrayUnit::SubTileResult
TransArrayUnit::processSubTilePlanned(
    const Plan &plan, const std::vector<TransRow> &rows) const
{
    TA_ASSERT(rows.size() <= config_.maxTransRows, "sub-tile of ",
              rows.size(), " rows exceeds capacity ",
              config_.maxTransRows);
    SubTileResult r;
    r.dispatch = dispatcher_.dispatch(plan, rows);
    r.stats = SparsityStats::fromPlan(plan, bitOpsOf(rows));
    return r;
}

TransArrayUnit::SubTileResult
TransArrayUnit::processSubTileStatic(
    const StaticScoreboard &si, const std::vector<TransRow> &rows) const
{
    std::vector<uint32_t> values;
    return processSubTileStatic(si, rows, values);
}

TransArrayUnit::SubTileResult
TransArrayUnit::processSubTileStatic(
    const StaticScoreboard &si, const std::vector<TransRow> &rows,
    std::vector<uint32_t> &values_scratch) const
{
    values_scratch.clear();
    values_scratch.reserve(rows.size());
    for (const auto &row : rows)
        values_scratch.push_back(row.value);

    SubTileResult r;
    r.stats = si.evaluateTile(values_scratch);

    // Static SI: no runtime sorter/scoreboard stage; PPE ops include the
    // SI-miss re-materializations; lane balance is the offline one, so
    // approximate the longest lane as the mean with a small imbalance
    // margin.
    const uint64_t ppe_ops =
        r.stats.prRows + r.stats.trNodes + r.stats.outlierExtra;
    const uint64_t ape_ops = r.stats.prRows + r.stats.frRows;
    DispatchResult &d = r.dispatch;
    d.sorterCycles = 0;
    d.scoreboardCycles = 0;
    d.ppeOps = ppe_ops;
    d.apeOps = ape_ops;
    d.xorOps = ape_ops;
    d.ppeCycles = ceilDiv(ppe_ops * 12, 10ull * config_.tBits);
    d.apeCycles = ceilDiv(ape_ops * 11, 10ull * config_.tBits);
    d.benesTraversals = d.ppeCycles;
    return r;
}

} // namespace ta
