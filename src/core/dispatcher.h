/**
 * @file
 * Dispatcher (Sec. 4.3-4.4): turns a scoreboard plan into per-stage cycle
 * counts and hardware event counts. Models the XOR TranSparsity pruning,
 * the PopCount (bitonic) sorter, the T-way scoreboard unit, the Benes
 * input-distribution network, and the crossbar bank conflicts in front of
 * the prefix buffer.
 */

#ifndef TA_CORE_DISPATCHER_H
#define TA_CORE_DISPATCHER_H

#include <cstdint>

#include "noc/bitonic_sorter.h"
#include "noc/crossbar.h"
#include "scoreboard/scoreboard.h"

namespace ta {

/** Per-sub-tile timing and event counts. */
struct DispatchResult
{
    // --- stage timings (cycles) ---------------------------------------
    uint64_t sorterCycles = 0;
    uint64_t scoreboardCycles = 0;
    uint64_t ppeCycles = 0; ///< max per-lane node queue
    uint64_t apeCycles = 0; ///< rows/T plus crossbar stalls

    // --- event counts (energy) ----------------------------------------
    uint64_t ppeOps = 0;        ///< node adds (per output column)
    uint64_t apeOps = 0;        ///< row accumulations (per output column)
    uint64_t xorOps = 0;        ///< TranSparsity prunes
    uint64_t sorterCompares = 0;
    uint64_t scoreboardNodes = 0;
    uint64_t benesTraversals = 0; ///< one per PPE issue cycle
    uint64_t xbarStallCycles = 0;

    uint64_t stage1Cycles() const
    {
        return sorterCycles + scoreboardCycles;
    }
};

class Dispatcher
{
  public:
    struct Config
    {
        int tBits = 8;
        uint32_t prefixBanks = 8;   ///< distributed prefix buffer banks
        uint32_t xbarQueueDepth = 8;
        uint32_t sorterCapacity = 256;
    };

    explicit Dispatcher(Config config);

    /**
     * Time one sub-tile: `plan` built from `rows`. Row order matters for
     * the crossbar model (bank ids come from sliced-row indices).
     */
    DispatchResult dispatch(const Plan &plan,
                            const std::vector<TransRow> &rows) const;

  private:
    Config config_;
    BitonicSorter sorter_;
};

} // namespace ta

#endif // TA_CORE_DISPATCHER_H
