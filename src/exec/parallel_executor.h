/**
 * @file
 * Deterministic thread-pool executor for the simulator's embarrassingly
 * parallel sub-tile loops. No work stealing: work item ranges are split
 * into one contiguous shard per worker, fixed by (n, threads) alone, so
 * any per-shard partial results can be merged in shard order and the
 * final result is bit-identical for every thread count (including 1).
 * This is rule 1 of the determinism contract in docs/ARCHITECTURE.md.
 *
 * Thread safety: run() may be called from any thread, including
 * concurrently — calls are serialized internally (one loop at a time).
 * The shard callback runs concurrently on pool workers and must only
 * write shard- or slot-local state; shardBusyNanos()/runsCompleted()
 * are maintenance counters to be read only between run() calls.
 */

#ifndef TA_EXEC_PARALLEL_EXECUTOR_H
#define TA_EXEC_PARALLEL_EXECUTOR_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ta {

class ParallelExecutor
{
  public:
    /**
     * Shard callback: process items [begin, end) as shard `shard` of
     * threads() total. Shards never overlap and cover [0, n) exactly.
     */
    using ShardFn = std::function<void(int shard, size_t begin,
                                       size_t end)>;

    /** threads <= 0 resolves through defaultThreads(). */
    explicit ParallelExecutor(int threads = 0);
    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    int threads() const { return threads_; }

    /**
     * Run fn over [0, n) split into threads() contiguous shards; shard
     * s always covers [shardBegin(n, s), shardBegin(n, s + 1)).
     * Blocks until every shard finished; rethrows the first worker
     * exception. Calls are serialized: the pool runs one loop at a time.
     */
    void run(size_t n, const ShardFn &fn);

    /** First item of shard `shard` when n items split `shards` ways. */
    static size_t shardBegin(size_t n, int shard, int shards);

    /**
     * Thread-count default: the TA_THREADS environment variable when
     * set (>= 1), otherwise 1 — simulation results never depend on it,
     * only wall-clock time does.
     */
    static int defaultThreads();

    /** Cumulative busy nanoseconds per worker (utilization counter). */
    const std::vector<uint64_t> &shardBusyNanos() const
    {
        return busyNanos_;
    }

    /** Number of run() invocations so far. */
    uint64_t runsCompleted() const { return runs_; }

  private:
    void workerLoop(int worker);
    void runShard(int shard, const ShardFn &fn);

    int threads_;
    std::vector<std::thread> workers_;
    std::vector<uint64_t> busyNanos_;
    uint64_t runs_ = 0;

    // Job hand-off state, guarded by mu_.
    std::mutex mu_;
    std::mutex callMu_; ///< serializes concurrent run() calls
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    const ShardFn *job_ = nullptr;
    size_t jobItems_ = 0;
    uint64_t generation_ = 0;
    int pending_ = 0;
    bool stop_ = false;
    std::exception_ptr firstError_;
};

} // namespace ta

#endif // TA_EXEC_PARALLEL_EXECUTOR_H
