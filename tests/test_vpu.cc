/** @file Unit tests for the Vector Processing Unit (Sec. 4.5). */

#include <gtest/gtest.h>

#include <cmath>

#include "vpu/vpu.h"
#include "workloads/generators.h"

namespace ta {
namespace {

MatI64
randomLogits(size_t rows, size_t cols, uint64_t seed, int64_t span)
{
    Rng rng(seed);
    MatI64 m(rows, cols);
    for (auto &v : m.data())
        v = rng.uniformInt(-span, span);
    return m;
}

TEST(Vpu, SoftmaxRowsSumToOne)
{
    Vpu vpu;
    const MatI64 logits = randomLogits(16, 64, 1, 1000);
    const MatI32 p = vpu.softmaxInt8(logits, 0.01);
    for (size_t r = 0; r < p.rows(); ++r) {
        int64_t sum = 0;
        for (size_t c = 0; c < p.cols(); ++c) {
            sum += p.at(r, c);
            EXPECT_GE(p.at(r, c), 0);
            EXPECT_LE(p.at(r, c), 255);
        }
        EXPECT_NEAR(static_cast<double>(sum), 255.0, 4.0);
    }
}

TEST(Vpu, SoftmaxMatchesFloatReference)
{
    Vpu vpu;
    const MatI64 logits = randomLogits(8, 128, 3, 500);
    const MatI32 p = vpu.softmaxInt8(logits, 0.02);
    const MatF ref = Vpu::softmaxRef(logits, 0.02);
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(p.data()[i] / 255.0, ref.data()[i], 0.02);
}

TEST(Vpu, SoftmaxPicksArgmax)
{
    Vpu vpu;
    MatI64 logits(1, 4, 0);
    logits.at(0, 2) = 10000;
    const MatI32 p = vpu.softmaxInt8(logits, 0.01);
    EXPECT_GT(p.at(0, 2), 250);
    EXPECT_LT(p.at(0, 0), 3);
}

TEST(Vpu, SoftmaxUniformLogits)
{
    Vpu vpu;
    MatI64 logits(1, 8, 42);
    const MatI32 p = vpu.softmaxInt8(logits, 0.05);
    for (size_t c = 0; c < 8; ++c)
        EXPECT_NEAR(p.at(0, c), 255 / 8, 2);
}

TEST(Vpu, SoftmaxMonotone)
{
    // Larger logit -> probability never smaller.
    Vpu vpu;
    const MatI64 logits = randomLogits(4, 32, 9, 800);
    const MatI32 p = vpu.softmaxInt8(logits, 0.01);
    for (size_t r = 0; r < 4; ++r)
        for (size_t a = 0; a < 32; ++a)
            for (size_t b = 0; b < 32; ++b)
                if (logits.at(r, a) > logits.at(r, b)) {
                    EXPECT_GE(p.at(r, a) + 1, p.at(r, b));
                }
}

TEST(Vpu, SoftmaxCycleModel)
{
    Vpu::Config c;
    c.lanes = 64;
    c.expCycles = 4;
    Vpu vpu(c);
    VpuRun run;
    vpu.softmaxInt8(randomLogits(8, 64, 5, 100), 0.1, &run);
    EXPECT_EQ(run.elements, 8u * 64);
    EXPECT_EQ(run.cycles, ceilDiv(8 * 64 * (4 + 4), 64));
}

TEST(Vpu, DequantizeAppliesGroupScale)
{
    Vpu vpu;
    MatI64 acc(2, 4, 10);
    std::vector<float> scales = {0.5f, 2.0f};
    const MatF out = vpu.dequantize(acc, scales, 1);
    EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), 20.0f);
}

TEST(Vpu, DequantizeRejectsBadScales)
{
    Vpu vpu;
    MatI64 acc(2, 4, 1);
    std::vector<float> scales = {0.5f};
    EXPECT_THROW(vpu.dequantize(acc, scales, 1), std::logic_error);
}

TEST(Vpu, RequantizeRoundTrip)
{
    Vpu vpu;
    const MatF acts = gaussianWeights(8, 64, 7);
    std::vector<float> scales;
    const MatI32 q = vpu.requantize(acts, 8, &scales);
    ASSERT_EQ(scales.size(), 8u);
    for (size_t r = 0; r < 8; ++r)
        for (size_t c = 0; c < 64; ++c) {
            EXPECT_GE(q.at(r, c), -128);
            EXPECT_LE(q.at(r, c), 127);
            EXPECT_NEAR(q.at(r, c) * scales[r], acts.at(r, c),
                        scales[r] * 0.51);
        }
}

TEST(Vpu, RequantizeZeroRow)
{
    Vpu vpu;
    MatF acts(1, 4, 0.0f);
    std::vector<float> scales;
    const MatI32 q = vpu.requantize(acts, 8, &scales);
    for (int32_t v : q.data())
        EXPECT_EQ(v, 0);
}

TEST(Vpu, ElementwiseCyclesScaleWithLanes)
{
    Vpu::Config narrow;
    narrow.lanes = 8;
    Vpu::Config wide;
    wide.lanes = 64;
    EXPECT_GT(Vpu(narrow).elementwiseCycles(1024, 2),
              Vpu(wide).elementwiseCycles(1024, 2));
}

} // namespace
} // namespace ta

namespace ta {
namespace {

TEST(Vpu, DequantizeAppliesPerGroupScale)
{
    // Two groups per row with different scales must both apply.
    Vpu vpu;
    MatI64 acc(1, 4, 10);
    std::vector<float> scales = {1.0f, 3.0f}; // group 0, group 1
    const MatF out = vpu.dequantize(acc, scales, 2);
    EXPECT_FLOAT_EQ(out.at(0, 0), 10.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1), 10.0f);
    EXPECT_FLOAT_EQ(out.at(0, 2), 30.0f);
    EXPECT_FLOAT_EQ(out.at(0, 3), 30.0f);
}

TEST(Vpu, DequantizeRoundTripWithGroupQuantizer)
{
    // GroupQuantizer -> integer codes -> VPU dequant reproduces the
    // quantizer's own dequantize().
    const MatF w = gaussianWeights(4, 256, 31);
    const GroupQuantizer gq(8, 128);
    const QuantResult q = gq.quantize(w);
    MatI64 codes(q.values.rows(), q.values.cols());
    for (size_t i = 0; i < q.values.size(); ++i)
        codes.data()[i] = q.values.data()[i];
    Vpu vpu;
    const MatF a = vpu.dequantize(codes, q.scales, q.numGroups);
    const MatF b = q.dequantize();
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
}

} // namespace
} // namespace ta
