/**
 * @file
 * Execution tracer: expands a scoreboard plan into the cycle-by-cycle
 * PPE issue schedule. Because the lane balancer keeps every tree inside
 * one lane (Sec. 2.4's data-independence property), each lane simply
 * issues its nodes in plan order, one per cycle; the tracer makes that
 * schedule explicit and checks the property — every node issues after
 * its parent, and no cross-lane dependency exists.
 */

#ifndef TA_CORE_TRACE_H
#define TA_CORE_TRACE_H

#include <string>
#include <vector>

#include "scoreboard/scoreboard.h"

namespace ta {

/** One PPE issue event. */
struct TraceRecord
{
    uint64_t cycle = 0; ///< issue cycle within the sub-tile
    int lane = 0;
    NodeId node = 0;
    NodeId parent = 0;
    bool materialized = false; ///< TR pass-through
    bool outlier = false;
    uint32_t rowCount = 0; ///< APE accumulations this node feeds
};

class ExecutionTracer
{
  public:
    /** Expand a plan into per-lane, in-order issue records. */
    static std::vector<TraceRecord> trace(const Plan &plan);

    /**
     * Check the schedule: parents issue strictly before children, and
     * always in the same lane (or are the root). Returns true when the
     * paper's lane-independence property holds.
     */
    static bool validate(const std::vector<TraceRecord> &records);

    /** Longest lane's issue count == PPE cycles of the sub-tile. */
    static uint64_t ppeCycles(const std::vector<TraceRecord> &records,
                              int lanes);

    /** Human-readable rendering (one line per event). */
    static std::string render(const std::vector<TraceRecord> &records);
};

} // namespace ta

#endif // TA_CORE_TRACE_H
