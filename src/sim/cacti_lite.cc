#include "sim/cacti_lite.h"

#include <cmath>

#include "common/bitutil.h"
#include "common/logging.h"

namespace ta {

SramEstimate
CactiLite::estimate(const SramGeometry &g) const
{
    TA_ASSERT(g.bytes >= 128, "macro too small: ", g.bytes, " bytes");
    TA_ASSERT(g.banks >= 1 && isPow2(g.banks),
              "banks must be a power of two");
    TA_ASSERT(g.wordBytes >= 1, "word must be at least one byte");

    SramEstimate e;

    // Area: cells plus periphery, plus per-bank duplication overhead.
    const double cells = static_cast<double>(g.bytes) * 8.0;
    const double bank_mult =
        1.0 + params_.bankOverhead * ceilLog2(g.banks);
    e.areaMm2 = cells * params_.cellUm2 / params_.arrayEfficiency *
                bank_mult / 1e6;

    // Access energy: wordline/bitline length grows with the square
    // root of the bank capacity; banking shortens lines.
    const double bank_kb =
        static_cast<double>(g.bytes) / g.banks / 1024.0;
    const double per_byte =
        params_.basePjPerByte * std::sqrt(std::max(bank_kb, 0.125) / 8.0);
    e.readPjPerAccess = per_byte * g.wordBytes;
    e.writePjPerAccess = e.readPjPerAccess * params_.writeFactor;

    // Leakage scales with total capacity.
    e.leakageMw = params_.leakMwPerKb * (g.bytes / 1024.0);
    return e;
}

} // namespace ta
