/** @file Unit tests for the dispatcher stage timing (Sec. 4.3-4.4). */

#include <gtest/gtest.h>

#include "core/dispatcher.h"
#include "common/rng.h"

namespace ta {
namespace {

Dispatcher::Config
dcfg(int t = 8)
{
    Dispatcher::Config c;
    c.tBits = t;
    return c;
}

std::vector<TransRow>
randomRows(size_t n, int t, uint64_t seed)
{
    Rng rng(seed);
    std::vector<TransRow> rows(n);
    for (size_t i = 0; i < n; ++i)
        rows[i] = {static_cast<uint32_t>(
                       rng.uniformInt(0, (1 << t) - 1)),
                   static_cast<uint32_t>(i)};
    return rows;
}

Plan
planFor(const std::vector<TransRow> &rows, int t)
{
    ScoreboardConfig c;
    c.tBits = t;
    return Scoreboard(c).build(rows);
}

TEST(Dispatcher, EmptySubTile)
{
    Dispatcher d(dcfg());
    const std::vector<TransRow> rows;
    const auto r = d.dispatch(planFor(rows, 8), rows);
    EXPECT_EQ(r.ppeOps, 0u);
    EXPECT_EQ(r.apeOps, 0u);
    EXPECT_EQ(r.sorterCycles, 0u);
}

TEST(Dispatcher, PpeCyclesAreLongestLane)
{
    const auto rows = randomRows(256, 8, 5);
    const Plan plan = planFor(rows, 8);
    Dispatcher d(dcfg());
    const auto r = d.dispatch(plan, rows);
    const auto lanes = plan.laneOps();
    EXPECT_EQ(r.ppeCycles,
              *std::max_element(lanes.begin(), lanes.end()));
}

TEST(Dispatcher, ApeCyclesAtLeastRowsOverLanes)
{
    const auto rows = randomRows(256, 8, 7);
    const Plan plan = planFor(rows, 8);
    Dispatcher d(dcfg());
    const auto r = d.dispatch(plan, rows);
    const uint64_t nonzero = plan.numRows - plan.zeroRows;
    EXPECT_GE(r.apeCycles, ceilDiv(nonzero, 8));
    EXPECT_LE(r.apeCycles, nonzero + 8);
}

TEST(Dispatcher, ScoreboardCyclesBoundedByDistinctNodes)
{
    const auto rows = randomRows(1000, 4, 9);
    const Plan plan = planFor(rows, 4);
    Dispatcher dd(dcfg(4));
    const auto r = dd.dispatch(plan, rows);
    // min(n, 2^T)/T = 16/4 = 4 (Sec. 4.6).
    EXPECT_EQ(r.scoreboardCycles, 4u);
}

TEST(Dispatcher, XorPrunePerNonZeroRow)
{
    std::vector<TransRow> rows = {{3, 0}, {0, 1}, {7, 2}};
    Dispatcher d(dcfg(4));
    const auto r = d.dispatch(planFor(rows, 4), rows);
    EXPECT_EQ(r.xorOps, 2u);
}

TEST(Dispatcher, SequentialBankRowsConflictFree)
{
    // Rows hit banks 0..7 round-robin: one APE group per cycle.
    std::vector<TransRow> rows;
    for (uint32_t i = 0; i < 64; ++i)
        rows.push_back({1u + (i % 15), i});
    Dispatcher d(dcfg(4));
    const auto r = d.dispatch(planFor(rows, 4), rows);
    EXPECT_EQ(r.xbarStallCycles, 0u);
}

TEST(Dispatcher, SameBankRowsStall)
{
    // Every row lands in bank 0 (slicedRow multiples of 8): worst-case
    // serialization behind the queue.
    std::vector<TransRow> rows;
    for (uint32_t i = 0; i < 64; ++i)
        rows.push_back({5u, i * 8});
    Dispatcher d(dcfg(8));
    const auto r = d.dispatch(planFor(rows, 8), rows);
    EXPECT_GT(r.xbarStallCycles, 0u);
    EXPECT_GE(r.apeCycles, 56u); // 64 writes serialized on one bank
}

TEST(Dispatcher, SorterCyclesGrowWithRows)
{
    Dispatcher d(dcfg());
    const auto small = randomRows(64, 8, 1);
    const auto big = randomRows(2048, 8, 2);
    const auto rs = d.dispatch(planFor(small, 8), small);
    const auto rb = d.dispatch(planFor(big, 8), big);
    EXPECT_GT(rb.sorterCycles, rs.sorterCycles);
}

TEST(Dispatcher, EventCountsMatchPlan)
{
    const auto rows = randomRows(128, 8, 33);
    const Plan plan = planFor(rows, 8);
    Dispatcher d(dcfg());
    const auto r = d.dispatch(plan, rows);
    EXPECT_EQ(r.ppeOps, plan.ppeOps());
    EXPECT_EQ(r.apeOps, plan.apeOps());
}

} // namespace
} // namespace ta
