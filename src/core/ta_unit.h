/**
 * @file
 * One Transitive Array unit (Fig. 7(b), Table 1): PopCount sorter,
 * scoreboard, dispatcher with Benes net + crossbar, T x adders PPE and
 * APE arrays, distributed prefix buffer. Processes one weight sub-tile
 * (up to maxTransRows TransRows x T bits) at a time and reports stage
 * timings, event counts and sparsity statistics.
 */

#ifndef TA_CORE_TA_UNIT_H
#define TA_CORE_TA_UNIT_H

#include <memory>

#include "core/dispatcher.h"
#include "scoreboard/static_scoreboard.h"

namespace ta {

class TransArrayUnit
{
  public:
    struct Config
    {
        int tBits = 8;            ///< TranSparsity width T
        uint32_t adders = 32;     ///< adders per lane (m tile width)
        size_t maxTransRows = 256; ///< sub-tile height (Table 1)
        uint32_t prefixBanks = 8;
        uint32_t xbarQueueDepth = 8;
        uint32_t sorterCapacity = 256;
        int maxDistance = 4;

        ScoreboardConfig
        scoreboardConfig() const
        {
            ScoreboardConfig sc;
            sc.tBits = tBits;
            sc.maxDistance = maxDistance;
            return sc;
        }

        Dispatcher::Config
        dispatcherConfig() const
        {
            Dispatcher::Config dc;
            dc.tBits = tBits;
            dc.prefixBanks = prefixBanks;
            dc.xbarQueueDepth = xbarQueueDepth;
            dc.sorterCapacity = sorterCapacity;
            return dc;
        }
    };

    /** Timing, events and sparsity of one processed sub-tile. */
    struct SubTileResult
    {
        DispatchResult dispatch;
        SparsityStats stats;
    };

    explicit TransArrayUnit(Config config);

    const Config &config() const { return config_; }

    /** The unit's dynamic scoreboard (shared, stateless between builds). */
    const Scoreboard &scoreboard() const { return scoreboard_; }

    /** Dynamic scoreboard: a private SI is built for this sub-tile. */
    SubTileResult processSubTile(const std::vector<TransRow> &rows) const;

    /**
     * Dynamic path with a pre-built (possibly cached) plan for `rows`:
     * dispatch timing + sparsity stats only. The plan must come from a
     * scoreboard with this unit's configuration.
     */
    SubTileResult
    processSubTilePlanned(const Plan &plan,
                          const std::vector<TransRow> &rows) const;

    /**
     * Static scoreboard: the shared tensor-level SI is applied; SI
     * misses inflate the PPE op count (Sec. 3.3). No scoreboard-stage
     * cycles are charged (the SI is prefetched from DRAM).
     */
    SubTileResult
    processSubTileStatic(const StaticScoreboard &si,
                         const std::vector<TransRow> &rows) const;

    /** Allocation-free variant: `values_scratch` stages the row values. */
    SubTileResult
    processSubTileStatic(const StaticScoreboard &si,
                         const std::vector<TransRow> &rows,
                         std::vector<uint32_t> &values_scratch) const;

  private:
    Config config_;
    Scoreboard scoreboard_;
    Dispatcher dispatcher_;
};

} // namespace ta

#endif // TA_CORE_TA_UNIT_H
