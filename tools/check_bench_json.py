#!/usr/bin/env python3
"""Validate BENCH_*.json files emitted by ta_bench --json-out.

Each file must parse as JSON and carry the schema-stable stamp keys
("benchmark", "schema_version", "quick") plus at least one actual
metric. The full schema — stamp semantics, the determinism rule, the
host-performance exceptions, and the PlanCacheStore binary format — is
documented in docs/BENCH_SCHEMA.md; keep the two in sync.

Usage: check_bench_json.py BENCH_a.json [BENCH_b.json ...]
"""

import json
import sys

EXPECTED_SCHEMA_VERSION = 2
STAMP_KEYS = ("benchmark", "schema_version", "quick")


def check(path: str) -> list:
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: failed to parse: {e}"]
    for key in STAMP_KEYS:
        if key not in data:
            errors.append(f"{path}: missing stamp key '{key}'")
    if data.get("schema_version") != EXPECTED_SCHEMA_VERSION:
        errors.append(
            f"{path}: schema_version {data.get('schema_version')!r} "
            f"!= {EXPECTED_SCHEMA_VERSION}"
        )
    metrics = [k for k in data if k not in STAMP_KEYS]
    if not metrics:
        errors.append(f"{path}: no metric keys beyond the stamps")
    if not errors:
        print(f"{path}: ok ({data['benchmark']}, {len(metrics)} metrics)")
    return errors


def main(argv: list) -> int:
    if not argv:
        print("usage: check_bench_json.py FILE...", file=sys.stderr)
        return 2
    errors = []
    for path in argv:
        errors.extend(check(path))
    for e in errors:
        print(e, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
