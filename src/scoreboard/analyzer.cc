#include "scoreboard/analyzer.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/parallel_executor.h"
#include "exec/plan_cache.h"

namespace ta {

double
SparsityStats::totalDensity() const
{
    return denseOps == 0 ? 0.0
                         : static_cast<double>(totalOps()) / denseOps;
}

double
SparsityStats::bitDensity() const
{
    return denseOps == 0 ? 0.0 : static_cast<double>(bitOps) / denseOps;
}

double
SparsityStats::zrSparsity() const
{
    return rows == 0 ? 0.0 : static_cast<double>(zrRows) / rows;
}

double
SparsityStats::trDensity() const
{
    return denseOps == 0
               ? 0.0
               : static_cast<double>(trNodes + outlierExtra) / denseOps;
}

double
SparsityStats::frDensity() const
{
    return denseOps == 0 ? 0.0 : static_cast<double>(frRows) / denseOps;
}

double
SparsityStats::prDensity() const
{
    return denseOps == 0 ? 0.0 : static_cast<double>(prRows) / denseOps;
}

void
SparsityStats::merge(const SparsityStats &other)
{
    TA_ASSERT(tBits == 0 || other.tBits == 0 || tBits == other.tBits,
              "merging stats of different TransRow widths");
    if (tBits == 0)
        tBits = other.tBits;
    rows += other.rows;
    denseOps += other.denseOps;
    bitOps += other.bitOps;
    zrRows += other.zrRows;
    prRows += other.prRows;
    frRows += other.frRows;
    trNodes += other.trNodes;
    outlierExtra += other.outlierExtra;
    siMisses += other.siMisses;
    for (size_t i = 0; i < distHist.size(); ++i)
        distHist[i] += other.distHist[i];
}

SparsityStats
SparsityStats::fromPlan(const Plan &plan, uint64_t bit_ops)
{
    SparsityStats s;
    s.tBits = plan.config.tBits;
    s.rows = plan.numRows;
    s.denseOps = plan.numRows * plan.config.tBits;
    s.bitOps = bit_ops;
    s.zrRows = plan.zeroRows;
    s.prRows = plan.prRows();
    s.frRows = plan.frRows();
    s.trNodes = plan.trNodes();
    s.outlierExtra = plan.outlierExtraOps();
    for (const auto &pn : plan.nodes) {
        if (pn.count == 0)
            continue; // histogram covers present nodes only
        int d = pn.outlier ? popcount(pn.id) : pn.distance;
        d = std::min<int>(d, static_cast<int>(s.distHist.size()));
        if (d >= 1)
            ++s.distHist[d - 1];
    }
    return s;
}

SparsityStats
SparsityAnalyzer::analyzeDynamic(const MatBit &bits,
                                 size_t tile_rows) const
{
    SparsityStats total;
    for (const auto &values :
         tileValues(bits, config_.tBits, tile_rows)) {
        total.merge(analyzeValues(values));
    }
    return total;
}

SparsityStats
SparsityAnalyzer::analyzeDynamic(const MatBit &bits, size_t tile_rows,
                                 ParallelExecutor &pool) const
{
    std::vector<SparsityStats> per_shard(pool.threads());
    forEachTileChunkSharded(
        pool, bits, config_.tBits, tile_rows,
        [&](int shard, const std::vector<uint32_t> &values) {
            per_shard[shard].merge(analyzeValues(values));
        });
    SparsityStats total;
    for (const SparsityStats &s : per_shard)
        total.merge(s);
    return total;
}

SparsityStats
SparsityAnalyzer::analyzeValues(const std::vector<uint32_t> &values) const
{
    if (cache_ != nullptr) {
        const auto plan = cache_->getOrBuild(
            values, [&] { return scoreboard_.build(values); });
        return SparsityStats::fromPlan(*plan, bitOpsOf(values));
    }
    const Plan plan = scoreboard_.build(values);
    return SparsityStats::fromPlan(plan, bitOpsOf(values));
}

uint64_t
bitOpsOf(const std::vector<uint32_t> &values)
{
    uint64_t n = 0;
    for (uint32_t v : values)
        n += popcount(v);
    return n;
}

uint64_t
bitOpsOf(const std::vector<TransRow> &rows)
{
    uint64_t n = 0;
    for (const TransRow &r : rows)
        n += popcount(r.value);
    return n;
}

size_t
tileGridCells(const MatBit &bits, int t_bits, size_t tile_rows)
{
    TA_ASSERT(tile_rows > 0, "tile_rows must be positive");
    return ceilDiv(bits.rows(), tile_rows) *
           numChunks(bits.cols(), t_bits);
}

void
appendTileChunkValues(const MatBit &bits, int t_bits, size_t tile_rows,
                      size_t cell, std::vector<uint32_t> &out)
{
    TA_ASSERT(tile_rows > 0, "tile_rows must be positive");
    const size_t chunks = numChunks(bits.cols(), t_bits);
    const size_t r0 = (cell / chunks) * tile_rows;
    const size_t r1 = std::min(bits.rows(), r0 + tile_rows);
    const size_t c0 = (cell % chunks) * t_bits;
    const size_t c1 = std::min(bits.cols(), c0 + t_bits);
    out.reserve(out.size() + (r1 - r0));
    for (size_t r = r0; r < r1; ++r) {
        uint32_t v = 0;
        for (size_t c = c0; c < c1; ++c)
            v |= static_cast<uint32_t>(bits.at(r, c)) << (c - c0);
        out.push_back(v);
    }
}

void
forEachTileChunkSharded(
    ParallelExecutor &pool, const MatBit &bits, int t_bits,
    size_t tile_rows,
    const std::function<void(int, const std::vector<uint32_t> &)>
        &per_cell)
{
    const size_t cells = tileGridCells(bits, t_bits, tile_rows);
    pool.run(cells, [&](int shard, size_t begin, size_t end) {
        std::vector<uint32_t> values;
        for (size_t i = begin; i < end; ++i) {
            values.clear();
            appendTileChunkValues(bits, t_bits, tile_rows, i, values);
            per_cell(shard, values);
        }
    });
}

std::vector<std::vector<uint32_t>>
tileValues(const MatBit &bits, int t_bits, size_t tile_rows)
{
    const size_t cells = tileGridCells(bits, t_bits, tile_rows);
    std::vector<std::vector<uint32_t>> out(cells);
    for (size_t i = 0; i < cells; ++i)
        appendTileChunkValues(bits, t_bits, tile_rows, i, out[i]);
    return out;
}

} // namespace ta
