#include "baselines/ant.h"

namespace ta {

Ant::Ant(const EnergyParams &energy)
    : BaselineAccelerator([&] {
          Config c;
          c.peRows = 36;
          c.peCols = 64;
          c.nativeBits = 4;
          c.utilization = 0.85;
          c.energy = energy;
          return c;
      }())
{
}

double
Ant::macsPerCycle(int weight_bits, int act_bits,
                  double /*bit_density*/) const
{
    const uint64_t splits = ceilDiv(weight_bits, 4) * ceilDiv(act_bits, 4);
    return static_cast<double>(numPes()) / splits;
}

} // namespace ta
