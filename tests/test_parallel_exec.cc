/**
 * @file
 * Determinism contract of the parallel sub-tile execution engine: the
 * functional engine's outputs/stats and the cycle model's LayerRun are
 * bit-identical for every thread count, the plan cache returns plans
 * equivalent to fresh Scoreboard::build results, and the executor's
 * static sharding covers ranges exactly.
 */

#include <gtest/gtest.h>

#include "core/accelerator.h"
#include "core/transitive_gemm.h"
#include "exec/parallel_executor.h"
#include "exec/plan_cache.h"
#include "workloads/generators.h"

namespace ta {
namespace {

// ---- ParallelExecutor ---------------------------------------------------

TEST(ParallelExecutor, ShardsPartitionRangeExactly)
{
    for (int threads : {1, 2, 3, 8}) {
        for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
            size_t prev = 0;
            for (int s = 0; s <= threads; ++s) {
                const size_t b =
                    ParallelExecutor::shardBegin(n, s, threads);
                EXPECT_GE(b, prev);
                prev = b;
            }
            EXPECT_EQ(ParallelExecutor::shardBegin(n, 0, threads), 0u);
            EXPECT_EQ(ParallelExecutor::shardBegin(n, threads, threads),
                      n);
        }
    }
}

TEST(ParallelExecutor, RunsEveryItemExactlyOnce)
{
    for (int threads : {1, 2, 8}) {
        ParallelExecutor pool(threads);
        EXPECT_EQ(pool.threads(), threads);
        std::vector<int> touched(257, 0);
        pool.run(touched.size(), [&](int, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i)
                ++touched[i];
        });
        for (int t : touched)
            EXPECT_EQ(t, 1);
    }
}

TEST(ParallelExecutor, PropagatesWorkerExceptions)
{
    ParallelExecutor pool(4);
    EXPECT_THROW(pool.run(100,
                          [&](int shard, size_t, size_t) {
                              if (shard == 2)
                                  throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
    // The pool survives a throwing job.
    std::atomic<int> ok{0};
    pool.run(4, [&](int, size_t b, size_t e) {
        ok += static_cast<int>(e - b);
    });
    EXPECT_EQ(ok.load(), 4);
}

// ---- PlanCache ----------------------------------------------------------

void
expectPlansEqual(const Plan &a, const Plan &b)
{
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    EXPECT_EQ(a.numRows, b.numRows);
    EXPECT_EQ(a.zeroRows, b.zeroRows);
    for (size_t i = 0; i < a.nodes.size(); ++i) {
        EXPECT_EQ(a.nodes[i].id, b.nodes[i].id);
        EXPECT_EQ(a.nodes[i].count, b.nodes[i].count);
        EXPECT_EQ(a.nodes[i].parent, b.nodes[i].parent);
        EXPECT_EQ(a.nodes[i].distance, b.nodes[i].distance);
        EXPECT_EQ(a.nodes[i].materialized, b.nodes[i].materialized);
        EXPECT_EQ(a.nodes[i].outlier, b.nodes[i].outlier);
        EXPECT_EQ(a.nodes[i].lane, b.nodes[i].lane);
    }
}

TEST(PlanCache, CachedPlanMatchesFreshBuild)
{
    ScoreboardConfig sc;
    sc.tBits = 8;
    Scoreboard sb(sc);
    PlanCache cache(128);
    Rng rng(99);

    std::vector<std::vector<uint32_t>> tiles;
    for (int i = 0; i < 16; ++i) {
        std::vector<uint32_t> v(64);
        for (auto &x : v)
            x = static_cast<uint32_t>(rng.uniformInt(0, 255));
        tiles.push_back(v);
    }
    // Two passes: first populates, second hits; both must agree with a
    // fresh build.
    for (int pass = 0; pass < 2; ++pass) {
        for (const auto &v : tiles) {
            const auto cached =
                cache.getOrBuild(v, [&] { return sb.build(v); });
            expectPlansEqual(*cached, sb.build(v));
        }
    }
    const PlanCache::Counters c = cache.counters();
    EXPECT_EQ(c.misses, tiles.size());
    EXPECT_EQ(c.hits, tiles.size());
    EXPECT_EQ(cache.size(), tiles.size());
}

TEST(PlanCache, EvictsLeastRecentlyUsed)
{
    ScoreboardConfig sc;
    sc.tBits = 4;
    Scoreboard sb(sc);
    PlanCache cache(4, 1); // one shard, 4 entries
    auto key = [](uint32_t v) { return std::vector<uint32_t>{v, v}; };
    for (uint32_t v = 1; v <= 6; ++v)
        cache.getOrBuild(key(v), [&] { return sb.build(key(v)); });
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_EQ(cache.counters().evictions, 2u);
    // Oldest keys were evicted: re-fetching key(1) misses again.
    cache.getOrBuild(key(1), [&] { return sb.build(key(1)); });
    EXPECT_EQ(cache.counters().misses, 7u);
}

TEST(PlanCache, DisabledCacheStillBuilds)
{
    ScoreboardConfig sc;
    sc.tBits = 4;
    Scoreboard sb(sc);
    PlanCache cache(0);
    const std::vector<uint32_t> v{1, 2, 3};
    const auto plan = cache.getOrBuild(v, [&] { return sb.build(v); });
    expectPlansEqual(*plan, sb.build(v));
    EXPECT_EQ(cache.size(), 0u);
}

// ---- Scoreboard scratch reuse -------------------------------------------

TEST(ScoreboardScratch, ReusedScratchGivesIdenticalPlans)
{
    ScoreboardConfig sc;
    sc.tBits = 8;
    sc.maxDistance = 4;
    Scoreboard sb(sc);
    Scoreboard::Scratch scratch;
    Rng rng(7);
    for (int i = 0; i < 32; ++i) {
        std::vector<uint32_t> v(128);
        for (auto &x : v)
            x = static_cast<uint32_t>(rng.uniformInt(0, 255));
        expectPlansEqual(sb.build(v, nullptr, scratch), sb.build(v));
    }
}

// ---- Functional engine determinism --------------------------------------

void
expectStatsEqual(const SparsityStats &a, const SparsityStats &b)
{
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.denseOps, b.denseOps);
    EXPECT_EQ(a.bitOps, b.bitOps);
    EXPECT_EQ(a.zrRows, b.zrRows);
    EXPECT_EQ(a.prRows, b.prRows);
    EXPECT_EQ(a.frRows, b.frRows);
    EXPECT_EQ(a.trNodes, b.trNodes);
    EXPECT_EQ(a.outlierExtra, b.outlierExtra);
    EXPECT_EQ(a.siMisses, b.siMisses);
    EXPECT_EQ(a.distHist, b.distHist);
}

TransitiveGemmConfig
gemmCfg(int threads, size_t cache_capacity = 4096)
{
    TransitiveGemmConfig c;
    c.scoreboard.tBits = 8;
    c.maxTransRows = 32; // several row tiles even on small matrices
    c.threads = threads;
    c.planCacheCapacity = cache_capacity;
    return c;
}

TEST(ParallelTransitiveGemm, BitIdenticalAcrossThreadCounts)
{
    const MatI32 w = realLikeWeights(48, 96, 6, 321);
    const MatI32 in = randomActivations(96, 9, 8, 322);

    const TransitiveGemmEngine ref(gemmCfg(1));
    const TransitiveGemmResult r1 = ref.run(w, 6, in);
    EXPECT_TRUE(r1.output == denseGemm(w, in));

    for (int threads : {2, 8}) {
        const TransitiveGemmEngine eng(gemmCfg(threads));
        const TransitiveGemmResult r = eng.run(w, 6, in);
        EXPECT_TRUE(r.output == r1.output) << threads << " threads";
        EXPECT_EQ(r.subTiles, r1.subTiles);
        expectStatsEqual(r.stats, r1.stats);
    }
}

TEST(ParallelTransitiveGemm, CacheOnAndOffAgree)
{
    const MatI32 w = realLikeWeights(32, 64, 4, 11);
    const MatI32 in = randomActivations(64, 5, 8, 12);
    const TransitiveGemmEngine cached(gemmCfg(2, 4096));
    const TransitiveGemmEngine uncached(gemmCfg(2, 0));
    const auto rc = cached.run(w, 4, in);
    const auto ru = uncached.run(w, 4, in);
    EXPECT_TRUE(rc.output == ru.output);
    expectStatsEqual(rc.stats, ru.stats);
    EXPECT_TRUE(rc.output == denseGemm(w, in));
}

TEST(ParallelTransitiveGemm, RepeatedRunsHitTheCache)
{
    // Ternary-style weights: tiny value alphabet, so sub-tiles repeat
    // and the second run should be nearly all hits.
    MatI32 w(16, 64);
    Rng rng(5);
    for (auto &x : w.data())
        x = static_cast<int32_t>(rng.uniformInt(-1, 1));
    const MatI32 in = randomActivations(64, 4, 8, 6);
    const TransitiveGemmEngine eng(gemmCfg(1));
    const auto r1 = eng.run(w, 2, in);
    const auto r2 = eng.run(w, 2, in);
    EXPECT_TRUE(r1.output == r2.output);
    EXPECT_EQ(r2.exec.get("planCache.misses"), 0u);
    EXPECT_EQ(r2.exec.get("planCache.hits"), r2.subTiles);
}

// ---- Cycle model determinism --------------------------------------------

void
expectLayerRunEqual(const LayerRun &a, const LayerRun &b)
{
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    EXPECT_EQ(a.dramCycles, b.dramCycles);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
    EXPECT_EQ(a.subTiles, b.subTiles);
    expectStatsEqual(a.sparsity, b.sparsity);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TransArrayAccelerator::Config
accCfg(int threads, bool use_static = false)
{
    TransArrayAccelerator::Config c;
    c.sampleLimit = 48;
    c.threads = threads;
    c.useStaticScoreboard = use_static;
    return c;
}

TEST(ParallelAccelerator, RunLayerBitIdenticalAcrossThreadCounts)
{
    const SlicedMatrix w = realLikeSlicedWeights(96, 256, 4, 77);
    const LayerRun r1 =
        TransArrayAccelerator(accCfg(1)).runLayer(w, 128);
    for (int threads : {2, 8}) {
        const LayerRun r =
            TransArrayAccelerator(accCfg(threads)).runLayer(w, 128);
        expectLayerRunEqual(r, r1);
    }
}

TEST(ParallelAccelerator, RunShapeBitIdenticalAcrossThreadCounts)
{
    const GemmShape shape{512, 512, 256};
    const LayerRun r1 =
        TransArrayAccelerator(accCfg(1)).runShape(shape, 4, 9);
    for (int threads : {2, 8}) {
        const LayerRun r =
            TransArrayAccelerator(accCfg(threads)).runShape(shape, 4, 9);
        expectLayerRunEqual(r, r1);
    }
}

TEST(ParallelAccelerator, StaticScoreboardPathAlsoDeterministic)
{
    const SlicedMatrix w = realLikeSlicedWeights(64, 128, 4, 13);
    const LayerRun r1 =
        TransArrayAccelerator(accCfg(1, true)).runLayer(w, 64);
    const LayerRun r8 =
        TransArrayAccelerator(accCfg(8, true)).runLayer(w, 64);
    expectLayerRunEqual(r8, r1);
}

TEST(ParallelAccelerator, ExecCountersSurfaceCacheActivity)
{
    const SlicedMatrix w = realLikeSlicedWeights(96, 256, 4, 21);
    TransArrayAccelerator acc(accCfg(2));
    const LayerRun run = acc.runLayer(w, 128);
    const uint64_t sampled = run.exec.get("exec.sampledSubTiles");
    EXPECT_GT(sampled, 0u);
    EXPECT_EQ(run.exec.get("planCache.hits") +
                  run.exec.get("planCache.misses"),
              sampled);
    // Deterministic static sharding: shard counts are fixed by
    // (sampled, threads) alone.
    EXPECT_EQ(run.exec.get("exec.shard0.subTiles") +
                  run.exec.get("exec.shard1.subTiles"),
              sampled);
    // Second identical layer: every sub-tile plan is already cached.
    const LayerRun again = acc.runLayer(w, 128);
    EXPECT_EQ(again.exec.get("planCache.misses"), 0u);
}

} // namespace
} // namespace ta
