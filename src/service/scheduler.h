/**
 * @file
 * ServiceScheduler: the long-lived serving core behind `ta_serve`.
 * Admitted requests flow through the bounded RequestQueue; worker
 * sessions pop batches of same-engine requests and dispatch them as
 * one `TransArrayAccelerator::runLayersBatched` window (cross-request
 * batching), so concurrent requests share one pool pass exactly like
 * the layers of a suite do. Engines are created on demand per
 * EngineKey and share one process-wide `PlanCache` per scoreboard
 * configuration, warm-started from and persisted to a `PlanCacheStore`
 * file (atomic save), so every request of the server's lifetime — and
 * of previous lifetimes — feeds the same plan cache.
 *
 * Determinism contract (docs/SERVICE.md): the response for a request
 * is byte-identical to a standalone serial run of the same request,
 * regardless of the batch window it was coalesced into, the executor
 * width, the number of sessions, or the cache state — because
 * runLayersBatched is bit-identical to runShape per layer and the
 * response serializer renders only simulation-deterministic fields.
 *
 * Thread safety: submit()/stats() may be called from any thread (the
 * server calls them from per-connection reader threads). Responders
 * are invoked from worker sessions, or inline from submit() on
 * rejection.
 */

#ifndef TA_SERVICE_SCHEDULER_H
#define TA_SERVICE_SCHEDULER_H

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/stats.h"
#include "harness/plan_cache_store.h"
#include "obs/metrics.h"
#include "service/cost_model.h"
#include "service/request_queue.h"
#include "storage/buffer_manager.h"

namespace ta {

/** Serving configuration of one ta_serve process. */
struct ServiceConfig
{
    /** Executor width per engine; 0 = TA_THREADS env, else 1. */
    int threads = 0;
    /** Max requests coalesced per dispatch window; 1 = batching off. */
    size_t window = 8;
    /** Worker sessions draining the queue. */
    int sessions = 2;
    /** Admission-control bound on queued requests. */
    size_t queueCapacity = 256;
    /** Capacity of each shared per-scoreboard-config plan cache. */
    size_t planCacheCapacity = 1 << 16;
    /** Warm-start/persist file ("" disables persistence). */
    std::string planCachePath;
    /**
     * Also persist the plan cache every N seconds while serving
     * (0 = only at shutdown). Cluster replicas run with this on so a
     * crash-restarted replica warm-starts from a recent snapshot
     * instead of an empty cache. Saves are atomic (temp + rename).
     */
    int cacheSaveIntervalSec = 0;
    /**
     * Cost-planned scheduling (the default): requests are annotated
     * with cost-model predictions, the queue orders EDF within
     * priority, window packing is cost-bounded, and requests whose
     * predicted cost exceeds their own deadline_ms are shed at
     * admission with `deadline_unmeetable`. false = the historical
     * FIFO-within-priority greedy coalescing (`--scheduler fifo`);
     * deadlines are then observed for miss accounting only.
     */
    bool plannedScheduling = true;
    /** Calibrated cost-model coefficients file ("" = built-in). */
    std::string costModelPath;
    /**
     * Directory of ta_pack segment files ("" = no catalog; requests
     * naming a model are rejected with a "storage:" error). With a
     * catalog, a request's named model serves its weight plane
     * zero-copy out of the mmapped segment instead of synthesizing —
     * responses stay byte-identical either way.
     */
    std::string catalogDir;
    /** BufferManager residency bound (verified pages kept mapped). */
    size_t bufferPages = 4096;
};

/**
 * The planning layer of the scheduler: owns the calibrated CostModel
 * and turns it into per-job annotations (predicted cost, absolute
 * deadline) and the admission-time unmeetable-deadline shed decision.
 * Predictions are pure functions of (request, coefficients), so for a
 * fixed trace, thread count and coefficients file the planned
 * schedule — including which requests are shed — is byte-identical
 * across runs (the determinism contract, docs/SERVICE.md).
 */
class WindowPlanner
{
  public:
    WindowPlanner() : model_(CostModel::builtin()) {}

    /** Strict wholesale load of a coefficients file; on failure the
     *  model keeps its previous (built-in) state. */
    bool loadCoefficients(const std::string &path, std::string *err)
    {
        return model_.loadFile(path, err);
    }

    const CostModel &model() const { return model_; }

    double predictMs(const ServiceRequest &req) const
    {
        return model_.predictMs(req);
    }

    /**
     * Non-empty when the request provably cannot meet its own
     * deadline_ms (predicted service cost alone exceeds it, before
     * any queueing): the `deadline_unmeetable` error message to shed
     * with. Deliberately ignores queue depth and wall-clock so the
     * decision is deterministic.
     */
    std::string admissionShed(const ServiceRequest &req) const;

    /** Fill the job's planning fields (prediction + absolute
     *  deadline) from `now_ms` on the steadyNowMs() clock. */
    void annotate(ServiceJob &job, double now_ms) const;

  private:
    CostModel model_;
};

/** Aggregate serving statistics (host-volatile, for the stats op). */
struct ServiceStats
{
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t served = 0;
    uint64_t errors = 0;
    uint64_t windows = 0;          ///< dispatch windows executed
    uint64_t batchedRequests = 0;  ///< requests in windows of size > 1
    uint64_t maxWindow = 0;        ///< largest window observed
    uint64_t queueDepth = 0;
    uint64_t peakQueueDepth = 0;
    uint64_t plansLoaded = 0;      ///< warm-start size (0 = cold)
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEvictions = 0;
    uint64_t latencySamples = 0;
    /** Admission-time `deadline_unmeetable` sheds (planned mode). */
    uint64_t shedUnmeetable = 0;
    /** Storage tier (zero without --catalog): page pins served from
     *  verified residency vs. evicted-and-rehashed, and the catalog's
     *  footprint. */
    uint64_t bufferHits = 0;
    uint64_t bufferMisses = 0;
    uint64_t bufferEvictions = 0;
    uint64_t catalogModels = 0;
    uint64_t storageBytesMapped = 0;
    /** Served requests that carried a deadline, split by outcome. */
    uint64_t deadlineMet = 0;
    uint64_t deadlineMisses = 0;
    /** Dispatch windows currently executing across sessions (gauge). */
    uint64_t inflightWindows = 0;
    /** Milliseconds since start() on the steady clock (gauge). */
    uint64_t uptimeMs = 0;
    /** "planned" or "fifo" (the stats op reports the active policy). */
    std::string scheduler;
    PercentileSummary serviceMs;   ///< enqueue-to-response latency
    /**
     * Cumulative service-latency histogram: one `service_ms_le_<edge>`
     * entry per fixed log-2 bucket edge (obs::Histogram) plus the
     * terminal `service_ms_le_inf`, in edge order. Fixed edges make
     * snapshots from different processes directly summable (the
     * router adds them bucket-by-bucket).
     */
    std::vector<std::pair<std::string, uint64_t>> latencyHist;

    double hitRate() const
    {
        const uint64_t total = cacheHits + cacheMisses;
        return total == 0 ? 0.0
                          : static_cast<double>(cacheHits) / total;
    }
};

class ServiceScheduler
{
  public:
    explicit ServiceScheduler(ServiceConfig config);
    ~ServiceScheduler();

    ServiceScheduler(const ServiceScheduler &) = delete;
    ServiceScheduler &operator=(const ServiceScheduler &) = delete;

    /** Load the warm cache and launch the worker sessions. */
    void start();

    /**
     * Drain the queue, join the sessions and persist the plan cache.
     * Idempotent; also invoked by the destructor.
     */
    void stop();

    /**
     * Validate and enqueue a "run" request. The responder is invoked
     * exactly once — from a worker session on success or failure, or
     * inline when admission control rejects the request.
     */
    void submit(const ServiceRequest &req, ServiceResponder respond);

    ServiceStats stats() const;

    const ServiceConfig &config() const { return config_; }
    const WindowPlanner &planner() const { return planner_; }

  private:
    /** One shared plan cache + the scoreboard config that owns it. */
    struct SharedCache
    {
        ScoreboardConfig config;
        std::unique_ptr<PlanCache> cache;
    };

    void sessionLoop();
    void runBatch(std::vector<ServiceJob> &batch);
    /**
     * Resolve a request's named model to a pinned catalog plane. True
     * with the pin filled on success; false with `err` set (no
     * catalog, unknown model/plane, or checksum-failed page) — the
     * caller turns that into a "storage:" protocol error.
     */
    bool resolveModel(const ServiceRequest &req,
                      BufferManager::Pin &pin, std::string &err);
    TransArrayAccelerator &engineFor(const ServiceRequest &req);
    void recordLatency(double ms);
    /** Capture every shared cache into the store and save the file. */
    bool persistSnapshot();
    void persistLoop();

    ServiceConfig config_;
    WindowPlanner planner_;
    RequestQueue queue_;
    /** The storage tier (null without --catalog). Opened in start(),
     *  immutable afterwards; pin/unpin are internally thread-safe. */
    std::unique_ptr<BufferManager> buffers_;
    /** Guards store_ (periodic saves race engine warm-starts). */
    mutable std::mutex storeMu_;
    PlanCacheStore store_;
    uint64_t plansLoaded_ = 0;

    mutable std::mutex engineMu_;
    std::map<EngineKey, std::unique_ptr<TransArrayAccelerator>> engines_;
    /** Keyed by the plan-relevant ScoreboardConfig fields. */
    std::map<std::tuple<int, int, int, bool>, SharedCache> caches_;

    /**
     * The unified metrics registry (src/obs): every counter the stats
     * op reports lives here as a typed metric instead of an ad-hoc
     * field. The references below are stable handles into the
     * registry (declared after it so construction order is right);
     * updates are lock-free atomics, so the hot path never takes
     * statsMu_ for counting.
     */
    obs::MetricsRegistry metrics_;
    obs::Counter &served_;
    obs::Counter &errors_;
    obs::Counter &windows_;
    obs::Counter &batchedRequests_;
    obs::Counter &shedUnmeetable_;
    obs::Counter &deadlineMet_;
    obs::Counter &deadlineMisses_;
    obs::Gauge &maxWindow_;
    obs::Gauge &inflightWindows_;
    obs::Histogram &serviceHist_;
    /** start() time on the steady clock, for the uptime_ms gauge. */
    std::chrono::steady_clock::time_point startedAt_{};

    /** Guards the latency ring only (percentiles need a snapshot). */
    mutable std::mutex statsMu_;
    /** Ring of recent enqueue-to-response latencies (ms). */
    std::vector<double> latencyRing_;
    uint64_t latencyCount_ = 0;

    std::vector<std::thread> sessions_;
    std::thread persister_;
    std::mutex persistMu_;
    std::condition_variable persistCv_;
    bool persistStop_ = false;
    bool started_ = false;
    bool stopped_ = false;
};

} // namespace ta

#endif // TA_SERVICE_SCHEDULER_H
