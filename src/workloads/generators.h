/**
 * @file
 * Synthetic data generators. The paper evaluates on (a) uniform random
 * 0-1 matrices (design space exploration, Fig. 9/13) and (b) "real data"
 * extracted from LLaMA checkpoints. For (b) we substitute
 * Gaussian-distributed weights — with a small heavy-tail outlier mixture
 * mimicking LLM weight statistics — quantized group-wise and bit-sliced,
 * which reproduces the duplicate-count property the paper reports in
 * Sec. 5.9 (slightly fewer unique TransRows than uniform random data).
 */

#ifndef TA_WORKLOADS_GENERATORS_H
#define TA_WORKLOADS_GENERATORS_H

#include <cstdint>

#include "common/rng.h"
#include "quant/bitslice.h"
#include "quant/matrix.h"
#include "quant/quantizer.h"

namespace ta {

/** Uniform random binary matrix with one-probability p. */
MatBit randomBinaryMatrix(size_t rows, size_t cols, double p,
                          uint64_t seed);

/** Uniform random integers covering the full `bits` signed range. */
MatI32 randomIntMatrix(size_t rows, size_t cols, int bits, uint64_t seed);

/**
 * Gaussian weights with an outlier mixture: fraction `outlier_frac` of
 * entries drawn at `outlier_scale` times the base sigma.
 */
MatF gaussianWeights(size_t rows, size_t cols, uint64_t seed,
                     double sigma = 1.0, double outlier_frac = 1e-3,
                     double outlier_scale = 8.0);

/**
 * "Real-like" quantized weights: Gaussian source, group-wise symmetric
 * quantization (g = 128) to `bits`.
 */
MatI32 realLikeWeights(size_t rows, size_t cols, int bits, uint64_t seed);

/** Real-like weights already bit-sliced. */
SlicedMatrix realLikeSlicedWeights(size_t rows, size_t cols, int bits,
                                   uint64_t seed);

/** Gaussian int8 activations (for functional attention runs). */
MatI32 randomActivations(size_t rows, size_t cols, int bits,
                         uint64_t seed);

/** Fraction of one-bits in the bit-sliced form of a weight matrix. */
double slicedBitDensity(const SlicedMatrix &s);

} // namespace ta

#endif // TA_WORKLOADS_GENERATORS_H
