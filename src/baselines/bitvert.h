/**
 * @file
 * BitVert / BBS (Chen et al., 2024) model: a 16x30 array of 8-bit
 * bit-slice PEs (Table 2: 985 um^2). Bi-directional bit-level sparsity
 * with binary pruning guarantees at least 50% of weight bits are
 * skipped; each PE processes eight weight-bit lanes per cycle, so the
 * effective MAC rate is numPes * 8 / (weight_bits * density) with
 * density capped at 0.5. Workload imbalance across bit columns lowers
 * utilization.
 */

#ifndef TA_BASELINES_BITVERT_H
#define TA_BASELINES_BITVERT_H

#include "baselines/baseline.h"

namespace ta {

class BitVert : public BaselineAccelerator
{
  public:
    explicit BitVert(const EnergyParams &energy);

    std::string name() const override { return "BitVert"; }

  protected:
    double macsPerCycle(int weight_bits, int act_bits,
                        double bit_density) const override;
    double macEnergyPj(int weight_bits, int act_bits,
                       double bit_density) const override;

  private:
    static constexpr int kBitLanes = 8;
};

} // namespace ta

#endif // TA_BASELINES_BITVERT_H
