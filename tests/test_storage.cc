/**
 * @file
 * Storage-tier tests: the ta-segment v1 format and the process-wide
 * BufferManager. The contracts pinned here are the ones serving
 * correctness rests on:
 *
 *  - Round trip is bit-exact: writeSegmentFile -> SegmentFile::open
 *    reproduces every catalog field and every packed plane byte, and
 *    the writer is deterministic (same inputs, byte-identical file).
 *  - Corruption detection is total: flipping ANY single byte of a
 *    segment is caught — metadata bytes at open time, data-page bytes
 *    (including page padding) at pin time — and rejection is
 *    wholesale. Truncation at any boundary rejects at open.
 *  - A pinned WeightView serves the engine bytes identical to fresh
 *    synthesis (runShapeView == runShape), including through the
 *    scheduler's batched window path.
 *  - Eviction under a small residency bound is correct and
 *    thread-safe: concurrent pin churn past the bound re-verifies
 *    evicted pages and never yields wrong bytes (run under TSan).
 */

#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <future>
#include <gtest/gtest.h>
#include <thread>

#include "core/accelerator.h"
#include "quant/bitslice.h"
#include "service/protocol.h"
#include "service/scheduler.h"
#include "storage/buffer_manager.h"
#include "storage/segment_format.h"
#include "workloads/generators.h"

namespace ta {
namespace {

/** A four-plane test model (seeds 9..12), each plane one data page:
 *  reprRows 64, wbits 4 -> 256 sliced rows x 8 bytes = 2048 bytes. */
std::vector<SegmentModelInput>
tinyModel()
{
    SegmentModelInput m;
    m.name = "m1";
    m.baseSeed = 9;
    m.wbits = 4;
    for (uint64_t i = 0; i < 4; ++i) {
        SegmentEntryInput e;
        e.layer = "l" + std::to_string(i);
        e.n = 64;
        e.k = 64;
        e.m = 32;
        e.seed = 9 + i;
        e.wbits = 4;
        e.reprRows = 64;
        e.reprCols = 64;
        e.packed = packSlicedBits(realLikeSlicedWeights(64, 64, 4, 9 + i));
        m.entries.push_back(std::move(e));
    }
    return {m};
}

std::string
writeTinySegment(const std::string &dirName)
{
    const std::string dir = ::testing::TempDir() + dirName;
    ::mkdir(dir.c_str(), 0755);
    const std::string path = dir + "/m1.taseg";
    std::string err;
    EXPECT_TRUE(writeSegmentFile(path, tinyModel(), &err)) << err;
    return path;
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::vector<uint8_t> bytes;
    if (f != nullptr) {
        std::fseek(f, 0, SEEK_END);
        bytes.resize(static_cast<size_t>(std::ftell(f)));
        std::fseek(f, 0, SEEK_SET);
        EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
        std::fclose(f);
    }
    return bytes;
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

// ---- format round trip ----------------------------------------------------

TEST(SegmentFormat, RoundTripIsBitExact)
{
    const std::string path = writeTinySegment("seg_roundtrip");
    const std::vector<SegmentModelInput> in = tinyModel();

    SegmentFile seg;
    std::string err;
    ASSERT_TRUE(seg.open(path, &err)) << err;
    ASSERT_EQ(seg.models().size(), 1u);
    const CatalogModel &m = seg.models()[0];
    EXPECT_EQ(m.name, "m1");
    EXPECT_EQ(m.baseSeed, 9u);
    EXPECT_EQ(m.wbits, 4);
    ASSERT_EQ(m.entries.size(), in[0].entries.size());
    for (size_t i = 0; i < m.entries.size(); ++i) {
        const CatalogEntry &e = m.entries[i];
        const SegmentEntryInput &src = in[0].entries[i];
        EXPECT_EQ(e.layer, src.layer);
        EXPECT_EQ(e.n, src.n);
        EXPECT_EQ(e.k, src.k);
        EXPECT_EQ(e.m, src.m);
        EXPECT_EQ(e.seed, src.seed);
        EXPECT_EQ(e.wbits, src.wbits);
        EXPECT_EQ(e.reprRows, src.reprRows);
        EXPECT_EQ(e.reprCols, src.reprCols);
        EXPECT_EQ(e.rows, src.reprRows * 4);
        EXPECT_EQ(e.rowStride, (src.reprCols + 7) / 8);
        ASSERT_EQ(e.dataBytes, src.packed.size());
        // The mapped plane is byte-identical to what was packed.
        EXPECT_EQ(std::memcmp(seg.pageData(e.firstPage),
                              src.packed.data(), src.packed.size()),
                  0);
    }
    // Per-page checksums cover the whole page, padding included.
    for (uint64_t p = seg.dataPageStart();
         p < seg.dataPageStart() + seg.dataPageCount(); ++p)
        EXPECT_EQ(seg.pageFnv(p),
                  fnv64(seg.pageData(p), kSegmentPageSize));
}

TEST(SegmentFormat, WriterIsDeterministic)
{
    const std::string a = writeTinySegment("seg_det_a");
    const std::string b = writeTinySegment("seg_det_b");
    EXPECT_EQ(readFile(a), readFile(b));
}

// ---- total corruption detection -------------------------------------------

TEST(SegmentFormat, EveryByteFlipIsDetected)
{
    const std::string path = writeTinySegment("seg_flip");
    const std::vector<uint8_t> pristine = readFile(path);
    ASSERT_EQ(pristine.size() % kSegmentPageSize, 0u);

    uint64_t data_start = 0, data_count = 0;
    {
        SegmentFile seg;
        std::string err;
        ASSERT_TRUE(seg.open(path, &err)) << err;
        data_start = seg.dataPageStart();
        data_count = seg.dataPageCount();
    }
    const size_t data_lo = data_start * kSegmentPageSize;
    const size_t data_hi = data_lo + data_count * kSegmentPageSize;

    std::vector<uint8_t> bytes = pristine;
    for (size_t off = 0; off < bytes.size(); ++off) {
        bytes[off] ^= 0x01;
        writeFile(path, bytes);
        SegmentFile seg;
        std::string err;
        const bool opened = seg.open(path, &err);
        if (off < data_lo || off >= data_hi) {
            // Metadata: open-time rejection, wholesale.
            EXPECT_FALSE(opened) << "metadata byte " << off;
        } else {
            // Data region (padding included): opens, but pinning the
            // entry that owns the page must fail its checksum.
            ASSERT_TRUE(opened) << "data byte " << off << ": " << err;
            BufferManager mgr;
            ASSERT_TRUE(mgr.openSegment(path, &err)) << err;
            const uint64_t page = off / kSegmentPageSize;
            bool covered = false;
            for (const CatalogModel *m : mgr.models())
                for (const CatalogEntry &e : m->entries)
                    if (page >= e.firstPage &&
                        page < e.firstPage + e.pageCount) {
                        BufferManager::Pin pin = mgr.pin(e, &err);
                        EXPECT_FALSE(pin.ok())
                            << "data byte " << off;
                        covered = true;
                    }
            EXPECT_TRUE(covered) << "data byte " << off
                                 << " owned by no entry";
        }
        bytes[off] = pristine[off];
    }
    writeFile(path, pristine);
}

TEST(SegmentFormat, TruncationRejectedAtOpen)
{
    const std::string path = writeTinySegment("seg_trunc");
    const std::vector<uint8_t> pristine = readFile(path);
    const size_t cuts[] = {
        0,                              // empty file
        1,                              // sub-header
        kSegmentPageSize - 1,           // partial header page
        kSegmentPageSize,               // header only
        pristine.size() - kSegmentPageSize, // trailer gone
        pristine.size() - 1,            // one byte short
    };
    for (const size_t cut : cuts) {
        std::vector<uint8_t> bytes(pristine.begin(),
                                   pristine.begin() +
                                       static_cast<ptrdiff_t>(cut));
        writeFile(path, bytes);
        SegmentFile seg;
        std::string err;
        EXPECT_FALSE(seg.open(path, &err)) << "cut at " << cut;
        EXPECT_FALSE(err.empty()) << "cut at " << cut;
    }
}

// ---- buffer manager -------------------------------------------------------

TEST(BufferManagerTest, CountersTrackHitsMissesAndEvictions)
{
    const std::string path = writeTinySegment("seg_counters");

    BufferManager::Config cfg;
    cfg.bufferPages = 2; // four one-page planes: churn is guaranteed
    cfg.shards = 1;      // one shard so the bound is exact
    BufferManager mgr(cfg);
    std::string err;
    ASSERT_TRUE(mgr.openSegment(path, &err)) << err;
    ASSERT_EQ(mgr.models().size(), 1u);
    const CatalogModel *m = mgr.models()[0];
    ASSERT_EQ(m->entries.size(), 4u);

    // First pass: every page verifies cold.
    for (const CatalogEntry &e : m->entries) {
        BufferManager::Pin pin = mgr.pin(e, &err);
        ASSERT_TRUE(pin.ok()) << err;
    }
    const BufferManager::Counters first = mgr.counters();
    EXPECT_EQ(first.hits, 0u);
    EXPECT_EQ(first.misses, 4u);
    EXPECT_GE(first.evictions, 2u); // only 2 of 4 pages may stay

    // Pinning an evicted page re-verifies it (a miss, not a hit).
    for (const CatalogEntry &e : m->entries) {
        BufferManager::Pin pin = mgr.pin(e, &err);
        ASSERT_TRUE(pin.ok()) << err;
    }
    const BufferManager::Counters second = mgr.counters();
    EXPECT_EQ(second.hits + second.misses, 8u);
    EXPECT_GT(second.misses, first.misses);
}

TEST(BufferManagerTest, EvictionChurnUnderThreadsServesCorrectBytes)
{
    const std::string path = writeTinySegment("seg_churn");
    const std::vector<SegmentModelInput> in = tinyModel();

    BufferManager::Config cfg;
    cfg.bufferPages = 1; // maximal churn: every pin can evict
    cfg.shards = 1;      // all pages contend for the single slot
    BufferManager mgr(cfg);
    std::string err;
    ASSERT_TRUE(mgr.openSegment(path, &err)) << err;
    const CatalogModel *m = mgr.models()[0];

    std::atomic<uint64_t> bad{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 64; ++i) {
                const size_t idx =
                    static_cast<size_t>(t + i) % m->entries.size();
                const CatalogEntry &e = m->entries[idx];
                std::string perr;
                BufferManager::Pin pin = mgr.pin(e, &perr);
                if (!pin.ok() ||
                    std::memcmp(pin.view().data,
                                in[0].entries[idx].packed.data(),
                                e.dataBytes) != 0)
                    ++bad;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(bad.load(), 0u);
    const BufferManager::Counters c = mgr.counters();
    EXPECT_EQ(c.hits + c.misses, 4u * 64u);
    EXPECT_GT(c.evictions, 0u);
}

// ---- view-vs-synthesis byte identity --------------------------------------

TEST(StorageServing, ViewRunsBitIdenticalToSynthesis)
{
    const std::string path = writeTinySegment("seg_view");
    BufferManager mgr;
    std::string err;
    ASSERT_TRUE(mgr.openSegment(path, &err)) << err;
    const CatalogEntry *e = mgr.findEntry("m1", 9, 4, 64, 64);
    ASSERT_NE(e, nullptr);
    BufferManager::Pin pin = mgr.pin(*e, &err);
    ASSERT_TRUE(pin.ok()) << err;

    const GemmShape shape{64, 64, 32};
    TransArrayAccelerator acc(TransArrayAccelerator::Config{});
    const LayerRun fresh = acc.runShape(shape, 4, 9);
    const LayerRun viewed = acc.runShapeView(shape, 4, pin.view());
    ServiceRequest req;
    req.id = 1;
    req.shape = shape;
    req.wbits = 4;
    req.seed = 9;
    EXPECT_EQ(serializeResponse(req, fresh),
              serializeResponse(req, viewed));
}

TEST(StorageServing, CatalogBatchedWindowIsByteIdenticalToSynthesis)
{
    const std::string path = writeTinySegment("seg_sched");
    const std::string dir =
        path.substr(0, path.find_last_of('/'));

    // Eight requests cycling the four planes; model-naming ones must
    // serve bytes identical to the plain synthesis run of the same
    // request, through a batching window.
    std::vector<ServiceRequest> trace;
    for (uint64_t i = 0; i < 8; ++i) {
        ServiceRequest req;
        req.id = i + 1;
        req.shape = {64, 64, 32};
        req.wbits = 4;
        req.seed = 9 + i % 4;
        req.samples = 16;
        req.model = "m1";
        trace.push_back(req);
    }

    ServiceConfig cfg;
    cfg.threads = 1;
    cfg.sessions = 2;
    cfg.window = 4;
    cfg.catalogDir = dir;
    ServiceScheduler sched(cfg);
    sched.start();
    std::vector<std::string> responses(trace.size());
    std::vector<std::promise<void>> done(trace.size());
    for (size_t i = 0; i < trace.size(); ++i)
        sched.submit(trace[i], [&, i](const std::string &line) {
            responses[i] = line;
            done[i].set_value();
        });
    for (std::promise<void> &p : done)
        p.get_future().wait();
    const ServiceStats stats = sched.stats();
    sched.stop();

    EXPECT_GT(stats.bufferHits + stats.bufferMisses, 0u);
    EXPECT_EQ(stats.catalogModels, 1u);
    for (size_t i = 0; i < trace.size(); ++i) {
        ServiceRequest plain = trace[i];
        plain.model.clear();
        TransArrayAccelerator oracle(
            engineConfig(engineKeyOf(plain), 1));
        EXPECT_EQ(responses[i],
                  serializeResponse(plain,
                                    oracle.runShape(plain.shape,
                                                    plain.wbits,
                                                    plain.seed)))
            << "request " << i;
    }
}

} // namespace
} // namespace ta
