#include "baselines/tender.h"

namespace ta {

Tender::Tender(const EnergyParams &energy)
    : BaselineAccelerator([&] {
          Config c;
          c.peRows = 30;
          c.peCols = 48;
          c.nativeBits = 4;
          c.utilization = 0.80; // runtime requantization passes
          c.energy = energy;
          return c;
      }())
{
}

double
Tender::macsPerCycle(int weight_bits, int act_bits,
                     double /*bit_density*/) const
{
    const uint64_t splits = ceilDiv(weight_bits, 4) * ceilDiv(act_bits, 4);
    return static_cast<double>(numPes()) / splits;
}

} // namespace ta
