#include "workloads/suite_runner.h"

#include <algorithm>

#include "common/logging.h"

namespace ta {

namespace {

/**
 * Apply one layer's run to the suite totals with its instance count
 * (cycles scale linearly; the `count` copies are identical runs). Host
 * exec counters are NOT scaled: the layer was executed once on the
 * host regardless of its instance count.
 */
void
applyLayer(SuiteRunResult &res, const LayerRun &run, uint64_t count)
{
    res.perLayer.push_back(run);
    res.total += run;
    LayerRun copy = run;
    copy.exec = StatGroup{};
    for (uint64_t j = 1; j < count; ++j)
        res.total += copy;
}

} // namespace

SuiteRunResult
runSuiteMixed(const WorkloadSuite &suite, const LayerEngineFn &pick,
              uint64_t seed, size_t batch)
{
    SuiteRunResult res;
    const size_t n = suite.layers.size();
    res.perLayer.reserve(n);

    if (batch <= 1) {
        for (size_t i = 0; i < n; ++i) {
            const GemmLayerDesc &l = suite.layers[i];
            const LayerEnginePick p = pick(i, l);
            TA_ASSERT(p.acc != nullptr, "layer pick without accelerator");
            applyLayer(res,
                       p.acc->runShape(l.shape, p.weightBits,
                                       layerSeed(seed, i)),
                       l.count);
        }
        return res;
    }

    // Batched dispatch: windows of up to `batch` consecutive layers
    // sharing an accelerator go through one runLayersBatched call
    // (multiple layers in flight per executor). Engine picks are
    // resolved up front, in layer order, so `pick` observes the same
    // call sequence as per-layer dispatch.
    std::vector<LayerEnginePick> picks(n);
    for (size_t i = 0; i < n; ++i) {
        picks[i] = pick(i, suite.layers[i]);
        TA_ASSERT(picks[i].acc != nullptr,
                  "layer pick without accelerator");
    }
    size_t i = 0;
    std::vector<BatchLayerRequest> window;
    while (i < n) {
        const TransArrayAccelerator *acc = picks[i].acc;
        window.clear();
        size_t j = i;
        while (j < n && picks[j].acc == acc && window.size() < batch) {
            window.push_back(BatchLayerRequest{suite.layers[j].shape,
                                               picks[j].weightBits,
                                               layerSeed(seed, j)});
            ++j;
        }
        const std::vector<LayerRun> runs = acc->runLayersBatched(window);
        for (size_t k = 0; k < runs.size(); ++k)
            applyLayer(res, runs[k], suite.layers[i + k].count);
        i = j;
    }
    return res;
}

SuiteRunResult
runSuite(const TransArrayAccelerator &acc, const WorkloadSuite &suite,
         int weight_bits, uint64_t seed, size_t batch)
{
    return runSuiteMixed(
        suite,
        [&](size_t, const GemmLayerDesc &) {
            return LayerEnginePick{&acc, weight_bits};
        },
        seed, batch);
}

uint64_t
suiteCycles(const TransArrayAccelerator &acc, const WorkloadSuite &suite,
            int weight_bits, uint64_t seed, size_t batch)
{
    if (batch <= 1) {
        uint64_t total = 0;
        for (size_t i = 0; i < suite.layers.size(); ++i) {
            const GemmLayerDesc &l = suite.layers[i];
            total += acc.runShape(l.shape, weight_bits,
                                  layerSeed(seed, i))
                         .cycles *
                     l.count;
        }
        return total;
    }
    return runSuite(acc, suite, weight_bits, seed, batch).total.cycles;
}

} // namespace ta
