/**
 * @file
 * GEMM workload descriptors shared by the TransArray simulator, the
 * baseline models and the benchmark harnesses: plain shapes, named
 * layers, and whole-model layer lists (one transformer block for the
 * LLaMA family, matching the paper's methodology in Sec. 5.1).
 */

#ifndef TA_WORKLOADS_GEMM_WORKLOAD_H
#define TA_WORKLOADS_GEMM_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

namespace ta {

/** Plain GEMM dimensions: out (n x m) = w (n x k) * in (k x m). */
struct GemmShape
{
    uint64_t n = 0;
    uint64_t k = 0;
    uint64_t m = 0;

    uint64_t macs() const { return n * k * m; }
};

/** One named GEMM layer of a model. */
struct GemmLayerDesc
{
    std::string name;
    GemmShape shape;
    uint64_t count = 1;    ///< identical instances (e.g. heads)
    bool attention = false; ///< operand is runtime-generated (K/V/score)

    uint64_t totalMacs() const { return shape.macs() * count; }
};

/** A set of layers evaluated together (e.g. one transformer block). */
struct WorkloadSuite
{
    std::string name;
    std::vector<GemmLayerDesc> layers;

    uint64_t totalMacs() const;
};

} // namespace ta

#endif // TA_WORKLOADS_GEMM_WORKLOAD_H
