/**
 * @file
 * Kernel dispatch: resolves which KernelTable the process uses. The
 * table pointer is a single atomic — kernels() is one relaxed load on
 * the hot path. Resolution happens once, lazily, from the TA_KERNELS
 * environment variable; tools layer their --kernels flag on top via
 * setKernels() before any engine runs.
 */

#include "kernels/kernel_table.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"

namespace ta {

#if defined(TA_HAVE_AVX2)
const KernelTable *avx2KernelTableIfSupported();
#endif
#if defined(TA_HAVE_NEON)
const KernelTable *neonKernelTable();
#endif

namespace {

std::atomic<const KernelTable *> g_table{nullptr};
std::mutex g_dispatchMutex;

/** Best vector table this build + CPU offers, or null for scalar. */
const KernelTable *
bestVectorTable()
{
#if defined(TA_HAVE_AVX2)
    if (const KernelTable *t = avx2KernelTableIfSupported())
        return t;
#endif
#if defined(TA_HAVE_NEON)
    if (const KernelTable *t = neonKernelTable())
        return t;
#endif
    return nullptr;
}

/** Table for an explicit arch name, or null when unavailable. */
const KernelTable *
tableByName(const std::string &name)
{
    if (name == "scalar")
        return &scalarKernelTable();
    if (name == "auto") {
        const KernelTable *best = bestVectorTable();
        return best != nullptr ? best : &scalarKernelTable();
    }
#if defined(TA_HAVE_AVX2)
    if (name == "avx2")
        return avx2KernelTableIfSupported();
#endif
#if defined(TA_HAVE_NEON)
    if (name == "neon")
        return neonKernelTable();
#endif
    return nullptr;
}

bool
knownName(const std::string &name)
{
    return name == "scalar" || name == "avx2" || name == "neon" ||
           name == "auto";
}

/**
 * First-use resolution from TA_KERNELS. An invalid value is fatal
 * rather than a fallback: a determinism oracle run that silently used
 * a different backend would defeat its purpose.
 */
const KernelTable *
resolveInitial()
{
    const char *env = std::getenv("TA_KERNELS");
    const std::string name = (env != nullptr && *env != '\0')
                                 ? std::string(env)
                                 : std::string("auto");
    if (!knownName(name))
        TA_FATAL("TA_KERNELS='", name,
                 "' is not one of scalar|avx2|neon|auto");
    const KernelTable *t = tableByName(name);
    if (t == nullptr)
        TA_FATAL("TA_KERNELS='", name,
                 "' kernels are not available on this host/build");
    return t;
}

} // namespace

const KernelTable &
kernels()
{
    const KernelTable *t = g_table.load(std::memory_order_acquire);
    if (t != nullptr)
        return *t;
    std::lock_guard<std::mutex> lock(g_dispatchMutex);
    t = g_table.load(std::memory_order_acquire);
    if (t == nullptr) {
        t = resolveInitial();
        g_table.store(t, std::memory_order_release);
    }
    return *t;
}

const char *
kernelArch()
{
    return kernels().arch;
}

bool
setKernels(const std::string &name, std::string *err)
{
    if (!knownName(name)) {
        if (err != nullptr)
            *err = "unknown kernel arch '" + name +
                   "' (expected scalar|avx2|neon|auto)";
        return false;
    }
    const KernelTable *t = tableByName(name);
    if (t == nullptr) {
        if (err != nullptr)
            *err = "kernel arch '" + name +
                   "' is not available on this host/build";
        return false;
    }
    std::lock_guard<std::mutex> lock(g_dispatchMutex);
    g_table.store(t, std::memory_order_release);
    return true;
}

std::vector<std::string>
availableKernelArchs()
{
    std::vector<std::string> archs{"scalar"};
#if defined(TA_HAVE_AVX2)
    if (avx2KernelTableIfSupported() != nullptr)
        archs.push_back("avx2");
#endif
#if defined(TA_HAVE_NEON)
    if (neonKernelTable() != nullptr)
        archs.push_back("neon");
#endif
    return archs;
}

} // namespace ta
