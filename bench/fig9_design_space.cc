/**
 * @file
 * Fig. 9: design space exploration on a 1024x1024 uniform random 0-1
 * matrix.
 *  (a) overall density vs tiling row size for TranSparsity widths
 *      2..16 bits;
 *  (b) ZR/TR/FR/PR percentages vs bit width at tiling row size 256;
 *  (c) node-type percentages vs tiling row size for 8-bit TranSparsity;
 *  (d) present-node distance histogram vs tiling row size (8-bit).
 */

#include <cstdio>

#include "common/table.h"
#include "scoreboard/analyzer.h"
#include "workloads/generators.h"

using namespace ta;

namespace {

SparsityStats
analyze(const MatBit &bits, int t, size_t rows, int max_dist = 4)
{
    ScoreboardConfig c;
    c.tBits = t;
    c.maxDistance = max_dist;
    return SparsityAnalyzer(c).analyzeDynamic(bits, rows);
}

std::string
pct(double v)
{
    return Table::fmt(100.0 * v, 2);
}

} // namespace

int
main()
{
    const MatBit bits = randomBinaryMatrix(1024, 1024, 0.5, 20250621);

    // ---- (a) density vs tiling row size per bit width ----------------
    const int widths[] = {2, 4, 6, 8, 10, 12, 16};
    const size_t sizes[] = {16, 32, 64, 128, 256, 512, 1024};
    Table a("Fig. 9(a): overall density (%) vs tiling row size");
    std::vector<std::string> header = {"Rows"};
    for (int t : widths)
        header.push_back(std::to_string(t) + "-bit");
    a.setHeader(header);
    for (size_t rows : sizes) {
        std::vector<std::string> r = {std::to_string(rows)};
        for (int t : widths)
            r.push_back(pct(analyze(bits, t, rows).totalDensity()));
        a.addRow(r);
    }
    a.print();

    // ---- (b) node types vs bit width at 256 rows ---------------------
    Table b("Fig. 9(b): node-type percentages at tiling row size 256");
    b.setHeader({"T", "ZR sparsity", "TR density", "FR density",
                 "PR density", "Total density"});
    for (int t : {1, 2, 4, 6, 8, 10, 12, 16}) {
        if (t == 1)
            continue; // 1-bit TransRows have no transitive structure
        const SparsityStats s = analyze(bits, t, 256);
        b.addRow({std::to_string(t), pct(s.zrSparsity()),
                  pct(s.trDensity()), pct(s.frDensity()),
                  pct(s.prDensity()), pct(s.totalDensity())});
    }
    b.print();

    // ---- (c) node types vs tiling row size, 8-bit --------------------
    Table c("Fig. 9(c): node-type percentages, 8-bit TranSparsity");
    c.setHeader({"Rows", "ZR sparsity", "TR density", "FR density",
                 "PR density", "Total density"});
    for (size_t rows : sizes) {
        const SparsityStats s = analyze(bits, 8, rows);
        c.addRow({std::to_string(rows), pct(s.zrSparsity()),
                  pct(s.trDensity()), pct(s.frDensity()),
                  pct(s.prDensity()), pct(s.totalDensity())});
    }
    c.print();

    // ---- (d) distance histogram vs tiling row size, 8-bit ------------
    // Raised distance cutoff so the long tail is visible (the paper
    // plots Dis-1..Dis-5).
    Table d("Fig. 9(d): present-node distance counts, 8-bit");
    d.setHeader({"Rows", "Dis-1", "Dis-2", "Dis-3", "Dis-4", "Dis-5+"});
    for (size_t rows : sizes) {
        const SparsityStats s = analyze(bits, 8, rows, 6);
        uint64_t d5 = 0;
        for (size_t i = 4; i < s.distHist.size(); ++i)
            d5 += s.distHist[i];
        d.addRow({std::to_string(rows), std::to_string(s.distHist[0]),
                  std::to_string(s.distHist[1]),
                  std::to_string(s.distHist[2]),
                  std::to_string(s.distHist[3]), std::to_string(d5)});
    }
    d.print();

    std::printf(
        "Shape check vs paper: density bottoms out near 1/T; 8-bit at\n"
        "256 rows sits at ~12.6%% (paper: 12.57%%) and is the Pareto\n"
        "point; beyond 256 rows no Dis-3+ nodes survive.\n");
    return 0;
}
