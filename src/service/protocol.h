/**
 * @file
 * Wire protocol of the request-serving front-end (`ta_serve`): one JSON
 * object per line, both directions, over stdin/stdout or TCP. A request
 * selects an op ("run", "ping", "stats", "shutdown"); "run" carries the
 * same GEMM/engine parameters as the `ta_sim` CLI with the same
 * defaults, so a service request and a ta_sim invocation describe the
 * same simulation.
 *
 * Determinism contract (docs/SERVICE.md): serializeResponse() renders
 * only simulation-deterministic LayerRun fields with fixed formatting,
 * so the response line for a request is byte-identical to a standalone
 * `ta_sim --response` run of the same request — regardless of server
 * thread count, batch window, or what the request was co-batched with.
 * Host-volatile counters (the `exec` group) are deliberately excluded.
 *
 * The parser accepts exactly the flat JSON the protocol emits: string,
 * integer, boolean and null values, no nesting. Unknown keys and
 * out-of-range values are rejected with a clear error — admission
 * control starts at the parser.
 */

#ifndef TA_SERVICE_PROTOCOL_H
#define TA_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/accelerator.h"

namespace ta {

/** Highest request priority; valid priorities are 0 .. kMaxPriority
 *  (the parser's bound and RequestQueue's class count derive from
 *  this one constant). */
constexpr int kMaxPriority = 2;

/** Upper bound of the `deadline_ms` field (24 h): a deadline is a
 *  service-level objective, not a calendar; anything larger is a
 *  client bug the parser should catch. */
constexpr uint64_t kMaxDeadlineMs = 24ull * 60 * 60 * 1000;

/** Upper bound of the `model` field's length. */
constexpr size_t kMaxModelNameLen = 128;

/** One parsed protocol request (defaults match the ta_sim CLI). */
struct ServiceRequest
{
    uint64_t id = 0;
    std::string op = "run";
    GemmShape shape{4096, 4096, 2048};
    int wbits = 4;
    int abits = 8;
    int tbits = 8;
    int maxdist = 4;
    uint32_t units = 6;
    bool useStatic = false;
    uint64_t seed = 1;
    size_t samples = 96;
    /** Dispatch priority, 0 (lowest) .. kMaxPriority (most urgent);
     *  default 1. Orders RequestQueue pops only — never changes
     *  response bytes. */
    int priority = 1;
    /**
     * Relative SLO deadline in milliseconds, 1 .. kMaxDeadlineMs;
     * 0 = no deadline (the field is absent from the wire). A deadline
     * orders dispatch (EDF within priority) and arms admission-time
     * shedding (`deadline_unmeetable`) — like priority, it can never
     * change a served response's bytes.
     */
    uint64_t deadlineMs = 0;
    /**
     * Catalog model to serve the weight plane from ("" = absent from
     * the wire; the server synthesizes as always). Validated by the
     * parser (1 .. kMaxModelNameLen chars of [A-Za-z0-9._-]); a named
     * model must resolve in the server's `--catalog` or the request
     * fails with a "storage:" error. Like priority and deadline_ms it
     * can never change a served response's bytes — a catalog plane is
     * byte-identical to what synthesis would build for the same
     * (seed, wbits, shape).
     */
    std::string model;
    /**
     * Distributed-tracing context, minted by the client or router and
     * propagated router → replica on the wire as the `trace` field
     * (1..16 lowercase hex digits; 0 = absent). Purely observational:
     * it tags the spans a traced process records for this request and
     * is **never echoed** — serializeResponse() does not know it
     * exists, so responses are byte-identical with tracing on, off or
     * absent (pinned by tests/test_service.cc and the CI obs-smoke
     * byte-compare).
     */
    uint64_t traceId = 0;
};

/**
 * The engine-selection part of a request: requests with equal keys run
 * on the same accelerator instance and may be coalesced into one batch
 * window. Everything except (shape, wbits, seed, id) — those vary per
 * layer inside a window.
 */
struct EngineKey
{
    int abits = 8;
    int tbits = 8;
    int maxdist = 4;
    uint32_t units = 6;
    bool useStatic = false;
    size_t samples = 96;

    bool operator==(const EngineKey &o) const;
    bool operator<(const EngineKey &o) const;
};

EngineKey engineKeyOf(const ServiceRequest &req);

/**
 * The accelerator configuration a request selects — the single builder
 * shared by the service scheduler, the loadgen verifier and
 * `ta_sim --response`, so "the same request" can never mean two
 * different engines. `shared_cache` may be null (owned cache).
 */
TransArrayAccelerator::Config
engineConfig(const EngineKey &key, int threads,
             PlanCache *shared_cache = nullptr);

/**
 * Parse one flat JSON object line into ordered (key, raw value) pairs.
 * Raw values are unescaped strings, number text, "1"/"0" for booleans,
 * or "null". Returns false with `err` set on any syntax error, nesting,
 * or duplicate key.
 */
bool parseJsonFlat(const std::string &line,
                   std::vector<std::pair<std::string, std::string>> &out,
                   std::string &err);

/**
 * Parse and validate a request line. Unknown keys, malformed numbers
 * and out-of-range values (e.g. "wbits": 0) are rejected with a
 * human-readable `err`. On failure `req.id` still carries the line's
 * id when one was readable, so the error response can echo it.
 */
bool parseRequestLine(const std::string &line, ServiceRequest &req,
                      std::string &err);

/** Canonical request line (what ta_loadgen sends). */
std::string serializeRequest(const ServiceRequest &req);

/**
 * Canonical success response for a "run" request: the deterministic
 * LayerRun fields only, fixed key order and number formatting.
 */
std::string serializeResponse(const ServiceRequest &req,
                              const LayerRun &run);

/** Canonical error response ({"id":N,"ok":0,"error":"..."}). */
std::string serializeError(uint64_t id, const std::string &error);

/**
 * True when `line` is an explicit load-shedding rejection — an error
 * response whose message starts with "overloaded" (queue-full
 * admission control, router retry-budget exhaustion, router waiting
 * cap). Clients distinguish shed requests, which are a declared and
 * gated overload response, from genuine failures.
 */
bool isOverloadedLine(const std::string &line);

/**
 * True when `line` is an explicit SLO shed — an error response whose
 * message starts with "deadline_unmeetable" (the planner predicted the
 * request cannot finish inside its own deadline_ms, so it was rejected
 * at admission instead of burning cycles). Like "overloaded", this is
 * a declared, ledger-counted outcome, never a silent drop.
 */
bool isDeadlineUnmeetableLine(const std::string &line);

/**
 * True when `line` is a storage-tier rejection — an error response
 * whose message starts with "storage" (unknown model, no catalog
 * loaded, or a checksum-failed segment page). Always an explicit,
 * counted outcome: a corrupt segment yields this error, never wrong
 * bytes and never a crash.
 */
bool isStorageErrorLine(const std::string &line);

/** The `model` field's validation rule (shared by the parser and any
 *  tool that mints model names). */
bool validModelName(const std::string &name);

/** Fixed formatting for protocol doubles ("%.10g"). */
std::string formatDouble(double v);

} // namespace ta

#endif // TA_SERVICE_PROTOCOL_H
