/** @file Unit + property tests for bit-slicing (Fig. 2 / Sec. 2.1). */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "quant/bitslice.h"
#include "workloads/generators.h"

namespace ta {
namespace {

TEST(BitSlice, ShapeIsSxNByK)
{
    MatI32 m(4, 4, 0);
    const SlicedMatrix s = bitSlice(m, 4);
    EXPECT_EQ(s.bits.rows(), 16u);
    EXPECT_EQ(s.bits.cols(), 4u);
    EXPECT_EQ(s.wordBits, 4);
    EXPECT_EQ(s.origRows, 4u);
}

TEST(BitSlice, RowMetadata)
{
    MatI32 m(3, 2, 0);
    const SlicedMatrix s = bitSlice(m, 4);
    EXPECT_EQ(s.origRow(0), 0u);
    EXPECT_EQ(s.origRow(7), 1u);
    EXPECT_EQ(s.bitLevel(0), 0);
    EXPECT_EQ(s.bitLevel(7), 3);
    EXPECT_EQ(s.levelWeight(0), 1);
    EXPECT_EQ(s.levelWeight(1), 2);
    EXPECT_EQ(s.levelWeight(3), -8); // sign bit of a 4-bit word
}

TEST(BitSlice, TwosComplementBits)
{
    MatI32 m(1, 1, -3); // -3 in 4-bit: 1101
    const SlicedMatrix s = bitSlice(m, 4);
    EXPECT_EQ(s.bits.at(0, 0), 1);
    EXPECT_EQ(s.bits.at(1, 0), 0);
    EXPECT_EQ(s.bits.at(2, 0), 1);
    EXPECT_EQ(s.bits.at(3, 0), 1);
}

TEST(BitSlice, OutOfRangeValueIsFatal)
{
    MatI32 m(1, 1, 8); // 4-bit range is [-8, 7]
    EXPECT_THROW(bitSlice(m, 4), std::runtime_error);
    MatI32 ok(1, 1, -8);
    EXPECT_NO_THROW(bitSlice(ok, 4));
}

TEST(BitSlice, UnsliceRoundTripExhaustive4Bit)
{
    // Every 4-bit value survives the round trip.
    MatI32 m(16, 1);
    for (int v = -8; v <= 7; ++v)
        m.at(v + 8, 0) = v;
    EXPECT_TRUE(bitUnslice(bitSlice(m, 4)) == m);
}

class BitSliceRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(BitSliceRoundTrip, RandomMatricesSurvive)
{
    const int bits = GetParam();
    Rng rng(bits * 977);
    const MatI32 m = randomIntMatrix(13, 17, bits, rng.next());
    EXPECT_TRUE(bitUnslice(bitSlice(m, bits)) == m);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitSliceRoundTrip,
                         ::testing::Values(2, 3, 4, 6, 8, 12, 16));

TEST(ExtractTransRows, PacksChunkBitsLsbFirst)
{
    MatI32 m(1, 8, 0);
    // One 2-bit word per column: value 1 puts a one-bit at level 0.
    for (int c = 0; c < 8; ++c)
        m.at(0, c) = (c % 2) ? 1 : 0;
    const SlicedMatrix s = bitSlice(m, 2);
    const auto rows = extractTransRows(s, 8, 0, 0, s.bits.rows());
    ASSERT_EQ(rows.size(), 2u);
    // Level-0 sliced row: bits at odd columns -> 0b10101010.
    EXPECT_EQ(rows[0].value, 0b10101010u);
    EXPECT_EQ(rows[1].value, 0u);
    EXPECT_EQ(rows[0].slicedRow, 0u);
}

TEST(ExtractTransRows, EdgeChunkZeroPadded)
{
    MatI32 m(1, 10, 1); // K = 10 with T = 8: second chunk has 2 columns
    const SlicedMatrix s = bitSlice(m, 2);
    const auto rows = extractTransRows(s, 8, 1, 0, 1);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].value, 0b11u); // only two valid bits
}

TEST(ExtractTransRows, RowRange)
{
    MatI32 m(4, 4, 1); // 2-bit range is [-2, 1]
    const SlicedMatrix s = bitSlice(m, 2);
    const auto rows = extractTransRows(s, 4, 0, 2, 6);
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].slicedRow, 2u);
    EXPECT_EQ(rows[3].slicedRow, 5u);
}

TEST(CountOnes, MatchesManual)
{
    MatBit b(2, 3, 0);
    b.at(0, 0) = 1;
    b.at(1, 2) = 1;
    EXPECT_EQ(countOnes(b), 2u);
}

TEST(NumChunks, Rounding)
{
    EXPECT_EQ(numChunks(8, 8), 1u);
    EXPECT_EQ(numChunks(9, 8), 2u);
    EXPECT_EQ(numChunks(16, 4), 4u);
}

} // namespace
} // namespace ta
