/**
 * @file
 * The service front-end's contracts: protocol parse/serialize strictness,
 * RequestQueue admission control and same-engine coalescing, and the
 * cross-request determinism contract — responses from a ServiceScheduler
 * are byte-identical to standalone serial runs of the same requests for
 * every {threads, window, sessions, submission concurrency} combination
 * tested, including under plan-cache eviction churn (which the TSan CI
 * job additionally checks for races).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <thread>

#include "service/protocol.h"
#include "service/request_queue.h"
#include "service/scheduler.h"

namespace ta {
namespace {

// ---- protocol -----------------------------------------------------------

TEST(ServiceProtocol, RequestRoundTrip)
{
    ServiceRequest req;
    req.id = 42;
    req.shape = {512, 256, 128};
    req.wbits = 8;
    req.useStatic = true;
    req.seed = 7;
    req.samples = 32;

    ServiceRequest parsed;
    std::string err;
    ASSERT_TRUE(parseRequestLine(serializeRequest(req), parsed, err))
        << err;
    EXPECT_EQ(parsed.id, req.id);
    EXPECT_EQ(parsed.shape.n, req.shape.n);
    EXPECT_EQ(parsed.shape.k, req.shape.k);
    EXPECT_EQ(parsed.shape.m, req.shape.m);
    EXPECT_EQ(parsed.wbits, req.wbits);
    EXPECT_EQ(parsed.useStatic, req.useStatic);
    EXPECT_EQ(parsed.seed, req.seed);
    EXPECT_EQ(parsed.samples, req.samples);
    EXPECT_EQ(engineKeyOf(parsed), engineKeyOf(req));
}

TEST(ServiceProtocol, DefaultsMatchTaSim)
{
    ServiceRequest req;
    std::string err;
    ASSERT_TRUE(parseRequestLine("{}", req, err)) << err;
    EXPECT_EQ(req.shape.n, 4096u);
    EXPECT_EQ(req.shape.k, 4096u);
    EXPECT_EQ(req.shape.m, 2048u);
    EXPECT_EQ(req.wbits, 4);
    EXPECT_EQ(req.abits, 8);
    EXPECT_EQ(req.tbits, 8);
    EXPECT_EQ(req.maxdist, 4);
    EXPECT_EQ(req.units, 6u);
    EXPECT_EQ(req.samples, 96u);
    EXPECT_EQ(req.seed, 1u);
    EXPECT_FALSE(req.useStatic);
}

TEST(ServiceProtocol, RejectsGarbage)
{
    ServiceRequest req;
    std::string err;
    EXPECT_FALSE(parseRequestLine("not json", req, err));
    EXPECT_FALSE(parseRequestLine("{\"wbits\":0}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"wbits\":-1}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"wbits\":\"four\"}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"threads\":2}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"n\":{}}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"n\":1,\"n\":2}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"op\":\"fly\"}", req, err));
    EXPECT_FALSE(parseRequestLine("{} trailing", req, err));
    // A failed request with a readable id still echoes it.
    EXPECT_FALSE(
        parseRequestLine("{\"id\":9,\"wbits\":99}", req, err));
    EXPECT_EQ(req.id, 9u);
}

TEST(ServiceProtocol, ResponseSerializationIsCanonical)
{
    LayerRun run;
    run.cycles = 100;
    run.computeCycles = 90;
    run.dramCycles = 100;
    run.dramBytes = 4096;
    run.subTiles = 7;
    ServiceRequest req;
    req.id = 3;
    const std::string line = serializeResponse(req, run);
    EXPECT_EQ(line.find("{\"id\":3,\"ok\":1,\"cycles\":100,"), 0u);
    // exec (host-volatile) must never leak into the response.
    EXPECT_EQ(line.find("exec"), std::string::npos);
    // Identical runs serialize identically (the byte contract).
    EXPECT_EQ(line, serializeResponse(req, run));
}

// ---- request queue ------------------------------------------------------

ServiceJob
jobWithKey(int abits, ServiceResponder respond = nullptr)
{
    ServiceJob job;
    job.request.abits = abits;
    job.key = engineKeyOf(job.request);
    job.respond = std::move(respond);
    job.enqueued = std::chrono::steady_clock::now();
    return job;
}

TEST(RequestQueueTest, AdmissionControlRejectsWhenFull)
{
    RequestQueue q(2);
    EXPECT_TRUE(q.submit(jobWithKey(8)));
    EXPECT_TRUE(q.submit(jobWithKey(8)));
    EXPECT_FALSE(q.submit(jobWithKey(8))); // full
    EXPECT_EQ(q.counters().admitted, 2u);
    EXPECT_EQ(q.counters().rejected, 1u);

    std::vector<ServiceJob> batch;
    EXPECT_TRUE(q.popBatch(8, batch));
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_TRUE(q.submit(jobWithKey(8))); // capacity freed
}

TEST(RequestQueueTest, CoalescesSameEngineOnlyAndPreservesOrder)
{
    RequestQueue q(16);
    // a a b a b, window 8: first batch = the three a's, then the b's.
    ASSERT_TRUE(q.submit(jobWithKey(8)));
    ASSERT_TRUE(q.submit(jobWithKey(8)));
    ASSERT_TRUE(q.submit(jobWithKey(4)));
    ASSERT_TRUE(q.submit(jobWithKey(8)));
    ASSERT_TRUE(q.submit(jobWithKey(4)));

    std::vector<ServiceJob> batch;
    ASSERT_TRUE(q.popBatch(8, batch));
    ASSERT_EQ(batch.size(), 3u);
    for (const ServiceJob &j : batch)
        EXPECT_EQ(j.request.abits, 8);
    ASSERT_TRUE(q.popBatch(8, batch));
    ASSERT_EQ(batch.size(), 2u);
    for (const ServiceJob &j : batch)
        EXPECT_EQ(j.request.abits, 4);
}

TEST(RequestQueueTest, WindowBoundsTheBatch)
{
    RequestQueue q(16);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(q.submit(jobWithKey(8)));
    std::vector<ServiceJob> batch;
    ASSERT_TRUE(q.popBatch(2, batch));
    EXPECT_EQ(batch.size(), 2u);
    ASSERT_TRUE(q.popBatch(2, batch));
    EXPECT_EQ(batch.size(), 2u);
    ASSERT_TRUE(q.popBatch(2, batch));
    EXPECT_EQ(batch.size(), 1u);
}

ServiceJob
jobWithPriority(int priority, int abits = 8)
{
    ServiceJob job = jobWithKey(abits);
    job.request.priority = priority;
    job.request.seed = static_cast<uint64_t>(priority) * 100 +
                       static_cast<uint64_t>(abits);
    return job;
}

TEST(RequestQueueTest, PriorityOrdersPopsFifoWithinClass)
{
    RequestQueue q(16);
    // Mixed classes, distinct engines so coalescing can't reorder:
    // submit (p, abits): (1,8) (0,7) (2,6) (1,5) (2,4) (0,3).
    ASSERT_TRUE(q.submit(jobWithPriority(1, 8)));
    ASSERT_TRUE(q.submit(jobWithPriority(0, 7)));
    ASSERT_TRUE(q.submit(jobWithPriority(2, 6)));
    ASSERT_TRUE(q.submit(jobWithPriority(1, 5)));
    ASSERT_TRUE(q.submit(jobWithPriority(2, 4)));
    ASSERT_TRUE(q.submit(jobWithPriority(0, 3)));

    // Pop order: class 2 FIFO (6, 4), class 1 FIFO (8, 5), class 0
    // FIFO (7, 3).
    const int expect_abits[] = {6, 4, 8, 5, 7, 3};
    std::vector<ServiceJob> batch;
    for (int expected : expect_abits) {
        ASSERT_TRUE(q.popBatch(1, batch));
        ASSERT_EQ(batch.size(), 1u);
        EXPECT_EQ(batch.front().request.abits, expected);
    }
    EXPECT_EQ(q.depth(), 0u);
}

TEST(RequestQueueTest, CoalescingSpansClassesHighestFirst)
{
    RequestQueue q(16);
    // Same engine key across all three classes plus one foreign key.
    ASSERT_TRUE(q.submit(jobWithPriority(0, 8)));
    ASSERT_TRUE(q.submit(jobWithPriority(1, 4))); // foreign engine
    ASSERT_TRUE(q.submit(jobWithPriority(1, 8)));
    ASSERT_TRUE(q.submit(jobWithPriority(2, 8)));

    std::vector<ServiceJob> batch;
    ASSERT_TRUE(q.popBatch(8, batch));
    // Lead job is the most urgent (p2), and the window coalesces the
    // same-engine p1 and p0 jobs, leaving the foreign engine behind.
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].request.priority, 2);
    EXPECT_EQ(batch[1].request.priority, 1);
    EXPECT_EQ(batch[2].request.priority, 0);
    for (const ServiceJob &j : batch)
        EXPECT_EQ(j.request.abits, 8);

    ASSERT_TRUE(q.popBatch(8, batch));
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch.front().request.abits, 4);
}

TEST(ServiceProtocol, PriorityParsedValidatedAndDefaulted)
{
    ServiceRequest req;
    std::string err;
    ASSERT_TRUE(parseRequestLine("{}", req, err)) << err;
    EXPECT_EQ(req.priority, 1); // default: normal
    ASSERT_TRUE(parseRequestLine("{\"priority\":2}", req, err)) << err;
    EXPECT_EQ(req.priority, 2);
    EXPECT_FALSE(parseRequestLine("{\"priority\":3}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"priority\":-1}", req, err));
    // Round-trips through the canonical request line.
    ServiceRequest out;
    req.priority = 0;
    ASSERT_TRUE(parseRequestLine(serializeRequest(req), out, err))
        << err;
    EXPECT_EQ(out.priority, 0);
}

TEST(RequestQueueTest, CloseDrainsThenUnblocks)
{
    RequestQueue q(4);
    ASSERT_TRUE(q.submit(jobWithKey(8)));
    q.close();
    EXPECT_FALSE(q.submit(jobWithKey(8))); // closed
    std::vector<ServiceJob> batch;
    EXPECT_TRUE(q.popBatch(8, batch)); // drains the admitted job
    EXPECT_FALSE(q.popBatch(8, batch)); // then reports closed
}

// ---- cross-request determinism ------------------------------------------

/** The trace the determinism tests replay: mixed shapes, precisions,
 *  engines (static + dynamic) and repeated requests. */
std::vector<ServiceRequest>
mixedTrace()
{
    std::vector<ServiceRequest> trace;
    ServiceRequest r;
    r.samples = 16;
    for (int rep = 0; rep < 2; ++rep) {
        r.shape = {256, 256, 128};
        r.wbits = 4;
        r.seed = 9;
        r.useStatic = false;
        trace.push_back(r);
        r.shape = {128, 512, 64};
        r.wbits = 8;
        r.seed = 10;
        trace.push_back(r);
        r.shape = {96, 128, 196};
        r.wbits = 6;
        r.seed = 11;
        trace.push_back(r);
        r.shape = {192, 256, 0}; // degenerate layer must survive
        r.wbits = 4;
        r.seed = 12;
        trace.push_back(r);
        r.shape = {128, 128, 64};
        r.wbits = 4;
        r.seed = 13;
        r.useStatic = true; // second engine key
        trace.push_back(r);
    }
    return trace;
}

/** Standalone serial oracle (fresh single-threaded engines). */
std::vector<std::string>
standaloneResponses(const std::vector<ServiceRequest> &trace)
{
    std::map<EngineKey, std::unique_ptr<TransArrayAccelerator>> engines;
    std::vector<std::string> out;
    for (const ServiceRequest &req : trace) {
        const EngineKey key = engineKeyOf(req);
        auto it = engines.find(key);
        if (it == engines.end())
            it = engines
                     .emplace(
                         key,
                         std::make_unique<TransArrayAccelerator>(
                             engineConfig(key, 1)))
                     .first;
        out.push_back(serializeResponse(
            req, it->second->runShape(req.shape, req.wbits, req.seed)));
    }
    return out;
}

/** Replay `trace` through a scheduler from `concurrency` submitter
 *  threads; returns the response line per trace index. */
std::vector<std::string>
schedulerResponses(ServiceConfig cfg,
                   const std::vector<ServiceRequest> &trace,
                   size_t concurrency)
{
    ServiceScheduler sched(cfg);
    sched.start();
    std::vector<std::string> responses(trace.size());
    std::vector<std::promise<void>> done(trace.size());
    std::atomic<size_t> next{0};
    std::vector<std::thread> submitters;
    for (size_t c = 0; c < concurrency; ++c) {
        submitters.emplace_back([&] {
            while (true) {
                const size_t i = next.fetch_add(1);
                if (i >= trace.size())
                    return;
                ServiceRequest req = trace[i];
                req.id = i + 1;
                sched.submit(req, [&, i](const std::string &line) {
                    responses[i] = line;
                    done[i].set_value();
                });
            }
        });
    }
    for (std::thread &t : submitters)
        t.join();
    for (std::promise<void> &p : done)
        p.get_future().wait();
    sched.stop();
    return responses;
}

TEST(ServiceDeterminism, ByteIdenticalAcrossConcurrencyAndBatching)
{
    // Stamp the ids the scheduler will see, then compute the
    // standalone serial oracle once for all configurations.
    std::vector<ServiceRequest> stamped = mixedTrace();
    for (size_t i = 0; i < stamped.size(); ++i)
        stamped[i].id = i + 1;
    const std::vector<std::string> expect =
        standaloneResponses(stamped);

    // Batching off/on x threads x sessions x submit concurrency:
    // every response must equal the standalone serial line.
    struct Case
    {
        int threads;
        size_t window;
        int sessions;
        size_t concurrency;
    };
    const Case cases[] = {
        {1, 1, 1, 1}, // batching off, serial submit
        {1, 4, 1, 8}, // batching on, concurrent submit
        {2, 4, 2, 8}, // parallel engines + two sessions
        {2, 16, 2, 1}, // window larger than trace
    };
    for (const Case &c : cases) {
        ServiceConfig cfg;
        cfg.threads = c.threads;
        cfg.window = c.window;
        cfg.sessions = c.sessions;
        const std::vector<std::string> got =
            schedulerResponses(cfg, stamped, c.concurrency);
        for (size_t i = 0; i < stamped.size(); ++i)
            EXPECT_EQ(got[i], expect[i])
                << "threads " << c.threads << " window " << c.window
                << " sessions " << c.sessions << " concurrency "
                << c.concurrency << " trace " << i;
    }
}

TEST(ServiceDeterminism, EvictionChurnKeepsResponsesIdentical)
{
    // A plan cache far smaller than the working set forces constant
    // concurrent insert/eviction from both sessions; responses must
    // not change (plans are pure), and the TSan CI job checks the
    // cache's internals stay race-free under this churn.
    const std::vector<ServiceRequest> trace = mixedTrace();
    std::vector<ServiceRequest> stamped = trace;
    for (size_t i = 0; i < stamped.size(); ++i)
        stamped[i].id = i + 1;
    const std::vector<std::string> expect =
        standaloneResponses(stamped);

    ServiceConfig cfg;
    cfg.threads = 2;
    cfg.window = 4;
    cfg.sessions = 2;
    cfg.planCacheCapacity = 8; // way below the working set
    const std::vector<std::string> got =
        schedulerResponses(cfg, stamped, 8);
    for (size_t i = 0; i < stamped.size(); ++i)
        EXPECT_EQ(got[i], expect[i]) << "trace " << i;

    ServiceConfig cfg_off = cfg;
    cfg_off.planCacheCapacity = 0; // cache disabled entirely
    const std::vector<std::string> got_off =
        schedulerResponses(cfg_off, stamped, 8);
    for (size_t i = 0; i < stamped.size(); ++i)
        EXPECT_EQ(got_off[i], expect[i]) << "trace " << i;
}

TEST(ServiceScheduler_, RejectsWhenQueueFullAndReportsStats)
{
    // sessions block on a queue that admits 2: flood it and expect
    // some rejections, all well-formed error lines, and stats that
    // add up.
    ServiceConfig cfg;
    cfg.window = 1;
    cfg.sessions = 1;
    cfg.queueCapacity = 2;
    ServiceScheduler sched(cfg);
    sched.start();

    constexpr size_t kFlood = 64;
    std::mutex mu;
    std::condition_variable cv;
    size_t responded = 0;
    size_t rejected = 0;
    for (size_t i = 0; i < kFlood; ++i) {
        ServiceRequest req;
        req.id = i + 1;
        req.shape = {128, 128, 64};
        req.samples = 8;
        sched.submit(req, [&](const std::string &line) {
            std::lock_guard<std::mutex> lock(mu);
            ++responded;
            if (line.find("\"ok\":0") != std::string::npos) {
                ++rejected;
                EXPECT_NE(line.find("overloaded"), std::string::npos);
            }
            cv.notify_one();
        });
    }
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return responded == kFlood; });
    }
    sched.stop();
    const ServiceStats s = sched.stats();
    EXPECT_EQ(s.admitted + s.rejected, kFlood);
    EXPECT_EQ(s.served, s.admitted);
    EXPECT_EQ(s.rejected, rejected);
    EXPECT_GT(s.latencySamples, 0u);
}

// ---- shared plan cache --------------------------------------------------

TEST(SharedPlanCache, AcceleratorUsesExternalCache)
{
    PlanCache shared(4096);
    TransArrayAccelerator::Config cfg;
    cfg.sampleLimit = 16;
    cfg.sharedPlanCache = &shared;
    const TransArrayAccelerator a(cfg), b(cfg);

    const GemmShape shape{256, 256, 128};
    const LayerRun first = a.runShape(shape, 4, 5);
    EXPECT_GT(shared.size(), 0u);
    const uint64_t misses_after_first = shared.counters().misses;

    // The second engine sees the first engine's plans: same results,
    // no new misses for an identical layer.
    const LayerRun second = b.runShape(shape, 4, 5);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(shared.counters().misses, misses_after_first);
    EXPECT_GT(shared.counters().hits, 0u);
}

} // namespace
} // namespace ta
