/**
 * @file
 * ANT (Guo et al., MICRO'22) model: a 36x64 array of 4-bit
 * adaptive-datatype PEs (Table 2: 210 um^2). flint/int types keep PEs at
 * 4 bits; 8-bit operands decompose into 2x2 4-bit partial products, so
 * 8x8 throughput is numPes/4. Group-wise quantization (the paper's
 * modified ANT) adds a small rescale overhead absorbed in utilization.
 */

#ifndef TA_BASELINES_ANT_H
#define TA_BASELINES_ANT_H

#include "baselines/baseline.h"

namespace ta {

class Ant : public BaselineAccelerator
{
  public:
    explicit Ant(const EnergyParams &energy);

    std::string name() const override { return "ANT"; }

  protected:
    double macsPerCycle(int weight_bits, int act_bits,
                        double bit_density) const override;
};

} // namespace ta

#endif // TA_BASELINES_ANT_H
