/**
 * @file
 * Batch-level sharded execution: keeps multiple layers in flight on one
 * ParallelExecutor. Each layer of a batch window is decomposed into the
 * same contiguous sub-ranges the per-layer path would use
 * (ParallelExecutor::shardBegin with the pool's thread count), and every
 * (layer, shard) pair becomes one LayerTask slot in a statically ordered
 * queue. Workers drain contiguous runs of that queue, writing partial
 * results only into their task's own (layer, shard) slot, so merging
 * the slots of one layer in shard order reproduces the per-layer
 * dispatch bit for bit — for any thread count and any interleaving of
 * layers — while paying one pool barrier per batch instead of one per
 * layer.
 *
 * Determinism contract (see docs/ARCHITECTURE.md):
 *  - task ranges depend only on (itemsPerLayer, pool.threads());
 *  - a task may touch shared state only through its own slot (or through
 *    already-thread-safe structures like the PlanCache);
 *  - per-layer results are merged in shard order by the caller.
 *
 * Thread safety: a BatchScheduler is a thin wrapper over a
 * ParallelExecutor; run() calls are serialized by the pool. The prepare
 * and process callbacks run concurrently on pool workers and must only
 * write layer- or slot-local state.
 */

#ifndef TA_EXEC_BATCH_SCHEDULER_H
#define TA_EXEC_BATCH_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "exec/parallel_executor.h"

namespace ta {

/** One (layer, shard) work slot of a batch window. */
struct LayerTask
{
    size_t layer = 0; ///< batch-local layer index
    int shard = 0;    ///< layer-local shard in [0, layerShards)
    size_t begin = 0; ///< first item of the layer's range
    size_t end = 0;   ///< one past the last item
};

class BatchScheduler
{
  public:
    /**
     * Per-layer preparation (weight generation, geometry, buffers);
     * returns the layer's item count. Runs on pool workers — must only
     * touch state owned by `layer`.
     */
    using PrepareFn = std::function<size_t(size_t layer)>;
    /**
     * Process one LayerTask on pool worker `worker` (use it to index
     * per-worker scratch). Partial results must land in state owned by
     * (task.layer, task.shard) alone.
     */
    using TaskFn = std::function<void(const LayerTask &task, int worker)>;

    explicit BatchScheduler(ParallelExecutor &pool) : pool_(pool) {}

    /** Shards per layer — always the pool's thread count, so batched
     *  per-layer partitions match per-layer dispatch exactly. */
    int layerShards() const { return pool_.threads(); }

    /**
     * The statically ordered task queue for a batch: shard-major
     * (all layers' shard 0, then shard 1, ...), empty ranges skipped.
     * Depends only on (itemsPerLayer, layerShards) — never on timing.
     * With the executor's contiguous task split, pool worker w drains
     * (approximately) shard w of every layer, mirroring the per-layer
     * load balance.
     */
    static std::vector<LayerTask>
    buildTasks(const std::vector<size_t> &itemsPerLayer, int layerShards);

    /**
     * Run one batch window of `numLayers` layers: `prepare(layer)` for
     * every layer in parallel (a full pool barrier separates it from
     * processing; its return values become the per-layer item counts),
     * then every LayerTask of buildTasks(items, layerShards()) across
     * the pool. Blocks until the batch drained; rethrows the first
     * callback exception.
     */
    void run(size_t numLayers, const PrepareFn &prepare,
             const TaskFn &process);

    /** Same, with the per-layer item counts already known. */
    void run(const std::vector<size_t> &itemsPerLayer,
             const TaskFn &process);

    /** Batches drained by run() so far. */
    uint64_t batchesCompleted() const { return batches_; }
    /** LayerTasks executed across all batches. */
    uint64_t tasksCompleted() const { return tasks_; }

  private:
    ParallelExecutor &pool_;
    uint64_t batches_ = 0;
    uint64_t tasks_ = 0;
};

} // namespace ta

#endif // TA_EXEC_BATCH_SCHEDULER_H
