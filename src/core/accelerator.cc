#include "core/accelerator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"
#include "exec/batch_scheduler.h"
#include "exec/scratch_arena.h"
#include "noc/benes.h"
#include "workloads/generators.h"

namespace ta {

namespace {

/** Representative-tensor dimensions: the full shape capped at
 *  (repr_rows x repr_cols) — the one rule runShape and the batched
 *  path must agree on, or rescaleToShape would rescale a tensor of a
 *  different size than was synthesized. */
std::pair<size_t, size_t>
reprDims(const GemmShape &shape, size_t repr_rows, size_t repr_cols)
{
    return {std::min<size_t>(shape.n, repr_rows),
            std::min<size_t>(shape.k, repr_cols)};
}

} // namespace

LayerRun &
LayerRun::operator+=(const LayerRun &o)
{
    computeCycles += o.computeCycles;
    dramCycles += o.dramCycles;
    cycles += o.cycles;
    dramBytes += o.dramBytes;
    energy += o.energy;
    sparsity.merge(o.sparsity);
    subTiles += o.subTiles;
    exec.merge(o.exec);
    return *this;
}

/**
 * One face over the two weight representations the layer machinery
 * consumes: a freshly synthesized SlicedMatrix (byte-per-bit) or a
 * storage-tier WeightView (bit-packed, zero copy out of a pinned
 * segment mapping). Both expose identical geometry and produce
 * identical TransRows, which is the whole byte-identity story of
 * catalog serving.
 */
struct TransArrayAccelerator::WeightRef
{
    const SlicedMatrix *mat = nullptr;
    WeightView view; ///< used when mat == nullptr

    WeightRef() = default;
    explicit WeightRef(const SlicedMatrix &m) : mat(&m) {}
    explicit WeightRef(const WeightView &v) : view(v) {}

    size_t rows() const { return mat ? mat->bits.rows() : view.rows; }
    size_t cols() const { return mat ? mat->bits.cols() : view.cols; }
    int wordBits() const
    {
        return mat ? mat->wordBits : view.wordBits;
    }
    size_t origRows() const
    {
        return mat ? mat->origRows : view.origRows;
    }

    void
    extract(int t_bits, size_t chunk, size_t r0, size_t r1,
            std::vector<TransRow> &out) const
    {
        if (mat != nullptr)
            extractTransRows(*mat, t_bits, chunk, r0, r1, out);
        else
            extractTransRows(view, t_bits, chunk, r0, r1, out);
    }
};

/** Sub-tile geometry and sampling plan of one layer. */
struct TransArrayAccelerator::LayerGeom
{
    int t = 0;                 ///< bit-slice chunk width
    size_t tileRows = 0;       ///< rows per sub-tile
    size_t chunks = 0;         ///< column chunks
    uint64_t totalSubTiles = 0;
    uint64_t stride = 1;       ///< deterministic sampling stride
    uint64_t sampled = 0;      ///< sub-tiles actually executed
    uint64_t mTiles = 0;       ///< m-dimension tiles (eff. adders)
    size_t mCols = 0;

    bool degenerate() const { return totalSubTiles == 0 || mCols == 0; }
};

/**
 * Per-(layer, shard) partial results. Everything is an integer (or an
 * integer-merged SparsityStats), so the shard-order reduction in
 * finalizeLayer is bit-identical for any shard interleaving.
 */
struct TransArrayAccelerator::ShardAcc
{
    SparsityStats sparsity;
    uint64_t ppe = 0, ape = 0, xors = 0;
    uint64_t sorter = 0, sbNodes = 0, benes = 0;
    uint64_t weightBufRows = 0, count = 0;
    /** Local plan-cache outcome counts (host-volatile). */
    uint64_t cacheHits = 0, cacheMisses = 0;
};

TransArrayAccelerator::TransArrayAccelerator(Config config)
    : config_(config), unit_(config.unit), pool_(config.threads),
      ownPlanCache_(config.sharedPlanCache != nullptr
                        ? 0
                        : config.planCacheCapacity),
      planCache_(config.sharedPlanCache != nullptr
                     ? config.sharedPlanCache
                     : &ownPlanCache_),
      scratch_(static_cast<size_t>(pool_.threads()))
{
    TA_ASSERT(config_.units >= 1, "need at least one unit");
}

TransArrayAccelerator::LayerGeom
TransArrayAccelerator::layerGeometry(const WeightRef &w,
                                     size_t m_cols) const
{
    LayerGeom g;
    g.t = config_.unit.tBits;
    g.tileRows = config_.unit.maxTransRows;
    g.chunks = numChunks(w.cols(), g.t);
    const size_t row_tiles = ceilDiv(w.rows(), g.tileRows);
    g.totalSubTiles = row_tiles * g.chunks;
    g.mCols = m_cols;
    if (g.degenerate())
        return g;
    // Sec. 4.5: with 4-bit activations each 12-bit PPE splits into two
    // 6-bit PPEs, doubling the effective m-tile width.
    const uint64_t eff_adders =
        config_.unit.adders *
        std::max<uint64_t>(1, 8 / std::max(1, config_.actBits));
    g.mTiles = ceilDiv(m_cols, eff_adders);
    // Deterministic stride sampling of homogeneous sub-tiles.
    if (config_.sampleLimit > 0 && g.totalSubTiles > config_.sampleLimit)
        g.stride = ceilDiv(g.totalSubTiles, config_.sampleLimit);
    g.sampled = ceilDiv(g.totalSubTiles, g.stride);
    return g;
}

std::unique_ptr<StaticScoreboard>
TransArrayAccelerator::calibrateStatic(const WeightRef &w,
                                       const LayerGeom &g) const
{
    // Offline calibration: record every TransRow of the tensor (sampled
    // rows suffice for the shared SI).
    std::vector<uint32_t> all_values;
    std::vector<TransRow> rows;
    for (uint64_t s = 0; s < g.totalSubTiles; s += g.stride) {
        const size_t rt = s / g.chunks, ch = s % g.chunks;
        const size_t r0 = rt * g.tileRows;
        const size_t r1 = std::min(w.rows(), r0 + g.tileRows);
        w.extract(g.t, ch, r0, r1, rows);
        for (const auto &row : rows)
            all_values.push_back(row.value);
    }
    return std::make_unique<StaticScoreboard>(
        config_.unit.scoreboardConfig(), all_values);
}

void
TransArrayAccelerator::processSpan(const WeightRef &w,
                                   const LayerGeom &g,
                                   const StaticScoreboard *static_sb,
                                   ExecScratch &sc, ShardAcc &a,
                                   StageCosts *items, size_t i0,
                                   size_t i1) const
{
    const uint64_t oh = config_.mTileOverheadCycles;
    for (size_t i = i0; i < i1; ++i) {
        const uint64_t s = i * g.stride;
        const size_t rt = s / g.chunks, ch = s % g.chunks;
        const size_t r0 = rt * g.tileRows;
        const size_t r1 = std::min(w.rows(), r0 + g.tileRows);
        w.extract(g.t, ch, r0, r1, sc.rows);
        TransArrayUnit::SubTileResult res;
        if (static_sb != nullptr) {
            res = unit_.processSubTileStatic(*static_sb, sc.rows,
                                             sc.values);
        } else {
            sc.stageValues();
            bool built = false;
            const auto plan = planCache_->getOrBuild(sc.values, [&] {
                built = true;
                return unit_.scoreboard().build(sc.values, nullptr,
                                                sc.scoreboard);
            });
            built ? ++a.cacheMisses : ++a.cacheHits;
            res = unit_.processSubTilePlanned(*plan, sc.rows);
        }
        a.sparsity.merge(res.stats);
        const DispatchResult &d = res.dispatch;
        items[i] = {d.stage1Cycles(), (d.ppeCycles + oh) * g.mTiles,
                    (d.apeCycles + oh) * g.mTiles};
        a.ppe += d.ppeOps;
        a.ape += d.apeOps;
        a.xors += d.xorOps;
        a.sorter += d.sorterCompares;
        a.sbNodes += d.scoreboardNodes;
        a.benes += d.benesTraversals * g.mTiles;
        a.weightBufRows += sc.rows.size();
        ++a.count;
    }
}

LayerRun
TransArrayAccelerator::finalizeLayer(
    const WeightRef &w, size_t m_cols, const LayerGeom &g,
    const std::vector<ShardAcc> &accs,
    const std::vector<StageCosts> &items,
    const PlanCache::Counters *cache_delta) const
{
    LayerRun run;
    // ---- shard-order merge -------------------------------------------
    uint64_t sampled = 0;
    uint64_t ppe_ops = 0, ape_ops = 0, xor_ops = 0;
    uint64_t sorter_cmp = 0, sb_nodes = 0, benes_trips = 0;
    uint64_t weight_buf_rows = 0;
    uint64_t local_hits = 0, local_misses = 0;
    for (size_t s = 0; s < accs.size(); ++s) {
        const ShardAcc &a = accs[s];
        run.sparsity.merge(a.sparsity);
        sampled += a.count;
        ppe_ops += a.ppe;
        ape_ops += a.ape;
        xor_ops += a.xors;
        sorter_cmp += a.sorter;
        sb_nodes += a.sbNodes;
        benes_trips += a.benes;
        weight_buf_rows += a.weightBufRows;
        local_hits += a.cacheHits;
        local_misses += a.cacheMisses;
        run.exec.set("exec.shard" + std::to_string(s) + ".subTiles",
                     a.count);
    }
    run.exec.set("exec.layers", 1);
    run.exec.set("exec.sampledSubTiles", sampled);
    if (cache_delta != nullptr) {
        run.exec.set("planCache.hits", cache_delta->hits);
        run.exec.set("planCache.misses", cache_delta->misses);
        run.exec.set("planCache.evictions", cache_delta->evictions);
    } else {
        // Batched layers share the cache with other layers in flight:
        // report this layer's own lookup outcomes; evictions are not
        // attributable per layer (batch-level counters cover them).
        run.exec.set("planCache.hits", local_hits);
        run.exec.set("planCache.misses", local_misses);
    }

    const double scale = static_cast<double>(g.totalSubTiles) /
                         static_cast<double>(sampled);
    run.subTiles = g.totalSubTiles;

    // ---- timing -------------------------------------------------------
    const uint64_t pipeline_cycles =
        PipelineModel::steadyStateCycles(items, scale);
    run.computeCycles = ceilDiv(pipeline_cycles, config_.units);

    DramModel dram(config_.dramBytesPerCycle);
    const uint64_t weight_bytes =
        w.origRows() * w.cols() * w.wordBits() / 8;
    const uint64_t input_bytes =
        w.cols() * m_cols * config_.actBits / 8;
    const uint64_t output_bytes = w.origRows() * m_cols * 4;
    dram.read(weight_bytes + input_bytes);
    dram.write(output_bytes);
    run.dramBytes = dram.totalBytes();
    run.dramCycles = dram.transferCycles();
    run.cycles = std::max(run.computeCycles, run.dramCycles);

    // ---- energy ---------------------------------------------------------
    const EnergyParams &ep = config_.energy;
    EnergyBreakdown &e = run.energy;

    // Element-granularity op counts: each node/row op covers every
    // output column of the layer.
    const double ppe_elems = ppe_ops * scale * m_cols;
    const double ape_elems = ape_ops * scale * m_cols;
    const int t = g.t;
    BenesNetwork benes(std::max(2, t));
    e.core = ppe_elems * ep.addEnergy(12) + ape_elems * ep.addEnergy(24) +
             xor_ops * scale * ep.xorOp +
             sorter_cmp * scale * ep.sorterCompare +
             sb_nodes * scale * ep.scoreboardNode +
             benes_trips * scale * benes.numSwitches() * ep.benesSwitch +
             ape_elems * ep.shifterOp;
    if (config_.groupSize > 0) {
        // VPU group-wise rescale: one integer scale application per
        // output element per K-group (Sec. 4.5), overlapped with GEMM
        // so it costs energy but no cycles.
        const double rescales =
            ape_elems * t / static_cast<double>(config_.groupSize);
        e.core += rescales * ep.addEnergy(24);
    }

    // Buffer access energies (Table 1 capacities).
    const double bpe_in = config_.actBits / 8.0;
    e.weightBuf = weight_buf_rows * scale * (t / 8.0) *
                  (1.0 + g.mTiles) * ep.sramPerByte(8);
    e.inputBuf = ppe_elems * bpe_in * ep.sramPerByte(8);
    // The prefix buffer is distributed per lane (Sec. 4.4), so each
    // access touches a small 18/T KB bank: parent read + result write
    // per PPE op, one result read per APE op, 12-bit words.
    e.prefixBuf = (1.5 * ppe_elems + ape_elems) * 1.5 *
                  ep.sramPerByte(18.0 / t);
    // Bit-level partial results merge in the 24-bit APE accumulator
    // (shifter + add), so the 32-bit output buffer sees one
    // read-modify-write per original weight row, not per sliced row.
    e.outputBuf = ape_elems / w.wordBits() * 6.0 * ep.sramPerByte(22);
    e.otherBuf = 2.0 * run.dramBytes * ep.sramPerByte(24);

    e.dramDynamic = dram.dynamicEnergy(ep);
    e.dramStatic = ep.dramStaticEnergy(run.cycles);
    return run;
}

LayerRun
TransArrayAccelerator::runGemm(const MatI32 &w, int weight_bits,
                               size_t m_cols) const
{
    return runLayer(bitSlice(w, weight_bits), m_cols);
}

LayerRun
TransArrayAccelerator::rescaleToShape(LayerRun run,
                                      const GemmShape &shape,
                                      int weight_bits, size_t repr_rows,
                                      size_t repr_cols) const
{
    // A zero-area weight tensor (n == 0 or k == 0) has nothing to
    // rescale; 0/0 here would poison every derived number with NaN.
    const double f =
        repr_rows == 0 || repr_cols == 0
            ? 0.0
            : static_cast<double>(shape.n) * shape.k /
                  (static_cast<double>(repr_rows) * repr_cols);
    run.computeCycles = static_cast<uint64_t>(
        std::llround(run.computeCycles * f));
    run.subTiles = static_cast<uint64_t>(std::llround(run.subTiles * f));
    EnergyBreakdown &e = run.energy;
    e.core *= f;
    e.weightBuf *= f;
    e.inputBuf *= f;
    e.prefixBuf *= f;
    e.outputBuf *= f;

    // Recompute DRAM traffic and background energy for the true shape.
    const EnergyParams &ep = config_.energy;
    DramModel dram(config_.dramBytesPerCycle);
    dram.read(shape.n * shape.k * weight_bits / 8 +
              shape.k * shape.m * config_.actBits / 8);
    dram.write(shape.n * shape.m * 4);
    run.dramBytes = dram.totalBytes();
    run.dramCycles = dram.transferCycles();
    run.cycles = std::max(run.computeCycles, run.dramCycles);
    e.otherBuf = 2.0 * run.dramBytes * ep.sramPerByte(24);
    e.dramDynamic = dram.dynamicEnergy(ep);
    e.dramStatic = ep.dramStaticEnergy(run.cycles);
    return run;
}

LayerRun
TransArrayAccelerator::runShape(const GemmShape &shape, int weight_bits,
                                uint64_t seed, size_t repr_rows,
                                size_t repr_cols) const
{
    const auto [nr, kr] = reprDims(shape, repr_rows, repr_cols);
    const SlicedMatrix w = realLikeSlicedWeights(nr, kr, weight_bits,
                                                 seed);
    return rescaleToShape(runLayer(w, shape.m), shape, weight_bits, nr,
                          kr);
}

LayerRun
TransArrayAccelerator::runLayer(const SlicedMatrix &w,
                                size_t m_cols) const
{
    return runLayerRef(WeightRef(w), m_cols);
}

LayerRun
TransArrayAccelerator::runLayerView(const WeightView &v,
                                    size_t m_cols) const
{
    return runLayerRef(WeightRef(v), m_cols);
}

LayerRun
TransArrayAccelerator::runShapeView(const GemmShape &shape,
                                    int weight_bits,
                                    const WeightView &v) const
{
    return rescaleToShape(runLayerView(v, shape.m), shape, weight_bits,
                          v.origRows, v.cols);
}

LayerRun
TransArrayAccelerator::runLayerRef(const WeightRef &w,
                                   size_t m_cols) const
{
    const LayerGeom g = layerGeometry(w, m_cols);
    if (g.degenerate())
        return LayerRun(); // degenerate layer: nothing to do

    std::unique_ptr<StaticScoreboard> static_sb;
    if (config_.useStaticScoreboard)
        static_sb = calibrateStatic(w, g);

    const int shards = pool_.threads();
    const PlanCache::Counters cache_before = planCache_->counters();

    // Sampled sub-tiles are independent: shard them across the executor.
    // items[i] slots and per-shard accumulators (merged in shard order
    // in finalizeLayer) keep the result bit-identical to the serial
    // loop.
    std::vector<StageCosts> items(g.sampled);
    std::vector<ShardAcc> accs(shards);
    pool_.run(g.sampled, [&](int shard, size_t i0, size_t i1) {
        processSpan(w, g, static_sb.get(), scratch_[shard], accs[shard],
                    items.data(), i0, i1);
    });

    const PlanCache::Counters cache_after = planCache_->counters();
    const PlanCache::Counters delta{
        cache_after.hits - cache_before.hits,
        cache_after.misses - cache_before.misses,
        cache_after.evictions - cache_before.evictions};
    return finalizeLayer(w, m_cols, g, accs, items, &delta);
}

std::vector<LayerRun>
TransArrayAccelerator::runLayersBatched(
    const std::vector<BatchLayerRequest> &layers) const
{
    const size_t n = layers.size();
    std::vector<LayerRun> out(n);
    if (n == 0)
        return out;
    const int shards = pool_.threads();

    // Per-layer state, indexed by batch-local layer id. Tasks touch
    // only their own (layer, shard) slots. `owned` backs the
    // synthesized layers; view-bearing layers reference their pinned
    // segment pages instead and synthesize nothing.
    std::vector<SlicedMatrix> owned(n);
    std::vector<WeightRef> weights(n);
    std::vector<LayerGeom> geoms(n);
    std::vector<std::pair<size_t, size_t>> repr(n);
    std::vector<std::unique_ptr<StaticScoreboard>> static_sbs(n);
    std::vector<std::vector<StageCosts>> items(n);
    std::vector<std::vector<ShardAcc>> accs(n);

    BatchScheduler sched(pool_);
    sched.run(
        n,
        // Phase 1: weight synthesis + geometry + static calibration,
        // parallel across the window's layers (the serial bottleneck of
        // per-layer dispatch).
        [&](size_t l) -> size_t {
            const BatchLayerRequest &r = layers[l];
            if (r.view != nullptr) {
                repr[l] = {r.view->origRows, r.view->cols};
                weights[l] = WeightRef(*r.view);
            } else {
                repr[l] = reprDims(r.shape, r.reprRows, r.reprCols);
                owned[l] = realLikeSlicedWeights(
                    repr[l].first, repr[l].second, r.weightBits,
                    r.seed);
                weights[l] = WeightRef(owned[l]);
            }
            geoms[l] = layerGeometry(weights[l], r.shape.m);
            if (geoms[l].degenerate())
                return 0;
            if (config_.useStaticScoreboard)
                static_sbs[l] = calibrateStatic(weights[l], geoms[l]);
            items[l].assign(geoms[l].sampled, StageCosts{});
            accs[l].assign(shards, ShardAcc{});
            return geoms[l].sampled;
        },
        // Phase 2: every (layer, shard) sub-tile slot of the window in
        // flight on the one pool.
        [&](const LayerTask &task, int worker) {
            const size_t l = task.layer;
            processSpan(weights[l], geoms[l], static_sbs[l].get(),
                        scratch_[worker], accs[l][task.shard],
                        items[l].data(), task.begin, task.end);
        });

    // Phase 3: shard-order reduction per layer, then the runShape
    // full-shape rescale — the exact serial arithmetic.
    for (size_t l = 0; l < n; ++l) {
        const BatchLayerRequest &r = layers[l];
        LayerRun run;
        if (!geoms[l].degenerate())
            run = finalizeLayer(weights[l], r.shape.m, geoms[l], accs[l],
                                items[l], nullptr);
        out[l] = rescaleToShape(std::move(run), r.shape, r.weightBits,
                                repr[l].first, repr[l].second);
    }
    return out;
}

} // namespace ta
