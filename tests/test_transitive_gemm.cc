/**
 * @file
 * The central correctness property of the paper (Sec. 2.1): transitive
 * GEMM over bit-sliced weights is bit-exact against dense integer GEMM,
 * for every width, shape and data distribution — transitive sparsity is
 * lossless.
 */

#include <gtest/gtest.h>

#include "core/transitive_gemm.h"
#include "quant/matrix.h"
#include "workloads/generators.h"

namespace ta {
namespace {

TransitiveGemmConfig
cfg(int t, size_t max_rows = 256, int max_dist = 4)
{
    TransitiveGemmConfig c;
    c.scoreboard.tBits = t;
    c.scoreboard.maxDistance = max_dist;
    c.maxTransRows = max_rows;
    return c;
}

void
expectExact(const MatI32 &w, int bits, const MatI32 &in,
            const TransitiveGemmConfig &c)
{
    TransitiveGemmEngine engine(c);
    const TransitiveGemmResult res = engine.run(w, bits, in);
    const MatI64 ref = denseGemm(w, in);
    ASSERT_EQ(res.output.rows(), ref.rows());
    ASSERT_EQ(res.output.cols(), ref.cols());
    for (size_t r = 0; r < ref.rows(); ++r)
        for (size_t col = 0; col < ref.cols(); ++col)
            ASSERT_EQ(res.output.at(r, col), ref.at(r, col))
                << "mismatch at (" << r << "," << col << ")";
}

TEST(TransitiveGemm, PaperFig1Example)
{
    // 4-bit weights whose bit patterns are the figure's rows, input
    // column (6, -2, 4, -5).
    MatI32 w(1, 4);
    w.at(0, 0) = 5;
    w.at(0, 1) = -3;
    w.at(0, 2) = 7;
    w.at(0, 3) = 2;
    MatI32 in(4, 1);
    in.at(0, 0) = 6;
    in.at(1, 0) = -2;
    in.at(2, 0) = 4;
    in.at(3, 0) = -5;
    expectExact(w, 4, in, cfg(4));
}

TEST(TransitiveGemm, ExhaustiveTinyMatrices)
{
    // All 2-bit weight matrices of shape 2x2 against a fixed input:
    // 16^2 x ... exhaustive over 256 weight matrices.
    MatI32 in(2, 2);
    in.at(0, 0) = 3;
    in.at(0, 1) = -1;
    in.at(1, 0) = -128;
    in.at(1, 1) = 127;
    for (int a = -2; a <= 1; ++a)
        for (int b = -2; b <= 1; ++b)
            for (int c = -2; c <= 1; ++c)
                for (int d = -2; d <= 1; ++d) {
                    MatI32 w(2, 2);
                    w.at(0, 0) = a;
                    w.at(0, 1) = b;
                    w.at(1, 0) = c;
                    w.at(1, 1) = d;
                    expectExact(w, 2, in, cfg(2, 8));
                }
}

TEST(TransitiveGemm, NegativeWeightsAndActivations)
{
    MatI32 w(3, 8);
    int v = -8;
    for (auto &x : w.data())
        x = (v = (v + 3) % 8);
    MatI32 in(8, 3);
    int u = -100;
    for (auto &x : in.data())
        x = (u = (u + 37) % 128);
    expectExact(w, 4, in, cfg(4));
}

TEST(TransitiveGemm, ZeroWeightMatrix)
{
    MatI32 w(4, 8, 0);
    const MatI32 in = randomActivations(8, 5, 8, 3);
    TransitiveGemmEngine engine(cfg(8));
    const auto res = engine.run(w, 8, in);
    for (int64_t x : res.output.data())
        EXPECT_EQ(x, 0);
    EXPECT_EQ(res.stats.totalOps(), 0u);
    EXPECT_EQ(res.stats.zrRows, res.stats.rows);
}

struct GemmCase
{
    int weightBits;
    int tBits;
    size_t n, k, m;
    size_t maxRows;
    int maxDist;
};

class TransitiveGemmSweep : public ::testing::TestWithParam<GemmCase>
{
};

TEST_P(TransitiveGemmSweep, MatchesDenseExactly)
{
    const GemmCase p = GetParam();
    const MatI32 w = randomIntMatrix(p.n, p.k, p.weightBits,
                                     p.n * 31 + p.k * 7 + p.tBits);
    const MatI32 in = randomActivations(p.k, p.m, 8, p.k * 13 + 1);
    expectExact(w, p.weightBits, in,
                cfg(p.tBits, p.maxRows, p.maxDist));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransitiveGemmSweep,
    ::testing::Values(
        GemmCase{4, 4, 8, 16, 4, 256, 4},   // paper running example
        GemmCase{8, 8, 16, 32, 8, 256, 4},  // default hardware config
        GemmCase{8, 8, 32, 64, 16, 256, 4},
        GemmCase{4, 8, 32, 64, 8, 256, 4},  // TA-4bit weights
        GemmCase{2, 8, 16, 24, 4, 64, 4},   // BitNet-style ternary-ish
        GemmCase{8, 4, 16, 30, 8, 128, 4},  // K not a multiple of T
        GemmCase{8, 8, 16, 33, 8, 256, 4},  // ragged K chunk
        GemmCase{6, 6, 12, 36, 8, 96, 4},   // odd widths
        GemmCase{8, 8, 16, 32, 8, 16, 4},   // tiny sub-tiles
        GemmCase{8, 8, 16, 32, 8, 256, 2},  // aggressive outlier cutoff
        GemmCase{8, 8, 16, 32, 8, 256, 8},  // deep chains allowed
        GemmCase{3, 5, 10, 20, 6, 40, 3},   // fully irregular
        GemmCase{8, 10, 8, 40, 4, 256, 4},  // wide TransRows
        GemmCase{16, 8, 6, 24, 4, 256, 4})); // 16-bit attention weights

TEST(TransitiveGemm, RealLikeWeightsExact)
{
    const MatI32 w = realLikeWeights(24, 64, 4, 99);
    const MatI32 in = randomActivations(64, 8, 8, 5);
    expectExact(w, 4, in, cfg(8));
}

TEST(TransitiveGemm, StatsAreConsistentWithAnalyzer)
{
    const MatI32 w = randomIntMatrix(32, 64, 8, 1234);
    const MatI32 in = randomActivations(64, 4, 8, 8);
    TransitiveGemmEngine engine(cfg(8));
    const auto res = engine.run(w, 8, in);
    EXPECT_EQ(res.stats.rows, 32u * 8 * (64 / 8));
    EXPECT_EQ(res.subTiles, 8u); // 256-row tiles x 8 chunks
    EXPECT_LE(res.stats.totalOps(), res.stats.bitOps);
    EXPECT_GE(res.stats.totalOps(),
              res.stats.rows - res.stats.zrRows);
}

TEST(TransitiveGemm, AttentionStyleDynamicOperand)
{
    // K-cache as the weight: runtime-quantized activations (Sec. 5.7).
    const MatI32 kcache = randomActivations(16, 64, 8, 21);
    const MatI32 queries = randomActivations(64, 16, 8, 22);
    expectExact(kcache, 8, queries, cfg(8));
}

TEST(TransitiveGemm, AccumulationOrderIndependence)
{
    // Different sub-tile heights reorder the accumulation; integer
    // arithmetic must not care (the Sec. 2.1 claim).
    const MatI32 w = randomIntMatrix(16, 48, 8, 777);
    const MatI32 in = randomActivations(48, 6, 8, 778);
    TransitiveGemmEngine a(cfg(8, 256));
    TransitiveGemmEngine b(cfg(8, 32));
    const auto ra = a.run(w, 8, in);
    const auto rb = b.run(w, 8, in);
    EXPECT_TRUE(ra.output == rb.output);
}

} // namespace
} // namespace ta
