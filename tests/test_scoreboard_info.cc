/** @file Unit tests for the SI table (Fig. 5 step 6 / Fig. 6). */

#include <gtest/gtest.h>

#include "scoreboard/scoreboard_info.h"

namespace ta {
namespace {

Plan
buildPlan(const std::vector<uint32_t> &values, int t = 4)
{
    ScoreboardConfig c;
    c.tBits = t;
    return Scoreboard(c).build(values);
}

TEST(ScoreboardInfo, SizeMatchesPaperFormula)
{
    EXPECT_EQ(ScoreboardInfo(4).sizeBits(), 2u * 4 * 16);
    // T = 8: 4096 bits = 512 bytes (Sec. 3.2).
    EXPECT_EQ(ScoreboardInfo(8).sizeBits(), 4096u);
    EXPECT_EQ(ScoreboardInfo(8).sizeBits() / 8, 512u);
}

TEST(ScoreboardInfo, FromPlanMarksExecutedNodes)
{
    const Plan plan = buildPlan({1, 3, 7});
    const ScoreboardInfo si = ScoreboardInfo::fromPlan(plan);
    EXPECT_TRUE(si.valid(1));
    EXPECT_TRUE(si.valid(3));
    EXPECT_TRUE(si.valid(7));
    EXPECT_FALSE(si.valid(15));
    EXPECT_FALSE(si.valid(0));
}

TEST(ScoreboardInfo, PrefixChainMatchesPlan)
{
    const Plan plan = buildPlan({1, 3, 7});
    const ScoreboardInfo si = ScoreboardInfo::fromPlan(plan);
    EXPECT_EQ(si.entry(1).prefix, 0u);
    EXPECT_EQ(si.entry(3).prefix, 1u);
    EXPECT_EQ(si.entry(7).prefix, 3u);
}

TEST(ScoreboardInfo, TransSparsityIsXorPrune)
{
    // Fig. 8: TransRow 7 (0111) with prefix 5 (0101) prunes to 0010.
    const Plan plan = buildPlan({5, 7});
    const ScoreboardInfo si = ScoreboardInfo::fromPlan(plan);
    EXPECT_EQ(si.entry(7).prefix, 5u);
    EXPECT_EQ(si.transSparsity(7), 0b0010u);
}

TEST(ScoreboardInfo, TransSparsityOfOutlierIsWholeValue)
{
    ScoreboardConfig c;
    c.tBits = 4;
    c.maxDistance = 2;
    const Plan plan = Scoreboard(c).build(std::vector<uint32_t>{7});
    const ScoreboardInfo si = ScoreboardInfo::fromPlan(plan);
    EXPECT_TRUE(si.entry(7).outlier);
    EXPECT_EQ(si.transSparsity(7), 7u);
}

TEST(ScoreboardInfo, LookupRejectsOutOfRange)
{
    ScoreboardInfo si(4);
    EXPECT_THROW(si.entry(16), std::logic_error);
}

TEST(ScoreboardInfo, TransSparsityOfAbsentNodeRejected)
{
    const Plan plan = buildPlan({1});
    const ScoreboardInfo si = ScoreboardInfo::fromPlan(plan);
    EXPECT_THROW(si.transSparsity(9), std::logic_error);
}

TEST(ScoreboardInfo, MaterializedNodesAreMarked)
{
    // {2, 14}: intermediate TR node between them.
    const Plan plan = buildPlan({2, 14});
    const ScoreboardInfo si = ScoreboardInfo::fromPlan(plan);
    int materialized = 0;
    for (NodeId n = 1; n < 16; ++n)
        if (si.valid(n))
            materialized += si.entry(n).materialized;
    EXPECT_EQ(materialized, 1);
}

TEST(ScoreboardInfo, LanesCopiedFromPlan)
{
    const Plan plan = buildPlan({1, 2, 3, 5, 9});
    const ScoreboardInfo si = ScoreboardInfo::fromPlan(plan);
    for (const auto &pn : plan.nodes)
        EXPECT_EQ(si.entry(pn.id).lane, pn.lane);
}

} // namespace
} // namespace ta
