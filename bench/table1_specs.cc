/**
 * @file
 * Table 1: specifications of one TransArray unit. Prints the configured
 * hardware parameters straight from the simulator's default config so
 * the reported design and the simulated design cannot drift apart.
 */

#include <cstdio>

#include "common/table.h"
#include "harness/harness.h"
#include "scoreboard/scoreboard_info.h"

using namespace ta;

namespace {

int
runTable1(HarnessContext &ctx)
{
    TransArrayAccelerator::Config c;
    const TransArrayUnit::Config &u = c.unit;

    Table t("Table 1: Specifications of One TransArray Unit");
    t.setHeader({"Parameter", "Value"});
    t.addRow({"Bit-width", "T = " + std::to_string(u.tBits) +
                               "-bit TranSparsity"});
    t.addRow({"TransRow number",
              "max " + std::to_string(u.maxTransRows) +
                  " 1-bit TransRows"});
    t.addRow({"Weight tiling",
              "N = " + std::to_string(u.maxTransRows / 8) +
                  " for 8-bit wgt; N = " +
                  std::to_string(u.maxTransRows / 4) + " for 4-bit wgt"});
    t.addRow({"Input tiling",
              "M = " + std::to_string(u.adders) + " for 8-bit input"});
    t.addRow({"PPE array", std::to_string(u.tBits) + " x " +
                               std::to_string(u.adders) +
                               " 12-bit adders"});
    t.addRow({"APE array", std::to_string(u.tBits) + " x " +
                               std::to_string(u.adders) +
                               " 24-bit adders"});
    t.addRow({"NoC", "an " + std::to_string(u.tBits) +
                         "-way Benes net and crossbar (" +
                         std::to_string(u.prefixBanks) + " banks)"});
    t.addRow({"Scoreboard",
              "two " + std::to_string(u.tBits) + "-way " +
                  std::to_string(1 << u.tBits) +
                  "-entry tables; a bitonic sorter (cap " +
                  std::to_string(u.sorterCapacity) + ")"});
    const ScoreboardInfo si(u.tBits);
    t.addRow({"SI footprint",
              std::to_string(si.sizeBits() / 8) + " bytes"});
    t.addRow({"Buffer size",
              "80KB: 8KB weight; 8KB input; 22KB output; 18KB prefix; "
              "24KB double buffer"});
    t.addRow({"Units", std::to_string(c.units)});
    t.addRow({"Frequency", "500 MHz, 28 nm"});
    t.print();

    ctx.metric("t_bits", u.tBits);
    ctx.metric("max_trans_rows", static_cast<uint64_t>(u.maxTransRows));
    ctx.metric("adders", static_cast<uint64_t>(u.adders));
    ctx.metric("prefix_banks", static_cast<uint64_t>(u.prefixBanks));
    ctx.metric("units", static_cast<uint64_t>(c.units));
    ctx.metric("si_footprint_bytes",
               static_cast<uint64_t>(si.sizeBits() / 8));
    return 0;
}

} // namespace

TA_BENCHMARK("table1", "TransArray unit specifications", runTable1);
