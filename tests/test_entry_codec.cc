/** @file Unit tests for the Fig. 6 scoreboard entry codec. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "scoreboard/entry_codec.h"

namespace ta {
namespace {

TEST(EntryCodec, FourBitEntryWidthMatchesFig6)
{
    // Fig. 6: node 4 + count 8 + PB1 4 + PB2,3,4 12 + SB 4 + lane 2
    // = 34 bits.
    SiEntryCodec codec(4, 4);
    EXPECT_EQ(codec.entryBits(), 34u);
}

TEST(EntryCodec, EightBitTableFitsScoreboardBudget)
{
    SiEntryCodec codec(8, 4);
    // 8 + 8 + 4*8 + 8 + 3 = 59 bits/entry, 256 entries < 2 KB.
    EXPECT_EQ(codec.entryBits(), 59u);
    EXPECT_LE(codec.tableBytes(), 2048u);
}

TEST(EntryCodec, PackUnpackRoundTrip)
{
    SiEntryCodec codec(4, 4);
    HwEntry e;
    e.node = 0b1011;
    e.count = 42;
    e.prefixBitmaps = {0b1010, 0b0001, 0, 0b1000};
    e.suffixBitmap = 0b0100;
    e.laneId = 2;
    EXPECT_EQ(codec.unpack(codec.pack(e)), e);
}

TEST(EntryCodec, CountSaturatesAt255)
{
    SiEntryCodec codec(4, 4);
    HwEntry e;
    e.node = 1;
    e.count = 1000;
    e.prefixBitmaps = {0, 0, 0, 0};
    EXPECT_EQ(codec.unpack(codec.pack(e)).count, 255u);
}

TEST(EntryCodec, RejectsOutOfRangeFields)
{
    SiEntryCodec codec(4, 4);
    HwEntry e;
    e.node = 16; // > 4 bits
    e.prefixBitmaps = {0, 0, 0, 0};
    EXPECT_THROW(codec.pack(e), std::logic_error);

    e.node = 3;
    e.prefixBitmaps = {0, 0, 0};
    EXPECT_THROW(codec.pack(e), std::logic_error); // wrong field count

    e.prefixBitmaps = {0, 0, 0, 0};
    e.suffixBitmap = 0x10;
    EXPECT_THROW(codec.pack(e), std::logic_error);

    e.suffixBitmap = 0;
    e.laneId = 9;
    EXPECT_THROW(codec.pack(e), std::logic_error);
}

TEST(EntryCodec, RejectsUnsupportedWidths)
{
    EXPECT_THROW(SiEntryCodec(1, 4), std::logic_error);
    EXPECT_THROW(SiEntryCodec(9, 4), std::logic_error);
    EXPECT_THROW(SiEntryCodec(8, 0), std::logic_error);
    EXPECT_THROW(SiEntryCodec(8, 6), std::logic_error);
}

TEST(EntryCodec, RandomRoundTripSweep)
{
    Rng rng(77);
    for (int t : {2, 4, 6, 8}) {
        for (int d : {1, 2, 4}) {
            SiEntryCodec codec(t, d);
            for (int trial = 0; trial < 200; ++trial) {
                HwEntry e;
                const uint32_t tmask = (1u << t) - 1;
                e.node = static_cast<NodeId>(rng.next()) & tmask;
                e.count = static_cast<uint32_t>(rng.next()) & 255;
                for (int i = 0; i < d; ++i)
                    e.prefixBitmaps.push_back(
                        static_cast<NeighborBitmap>(rng.next()) & tmask);
                e.suffixBitmap =
                    static_cast<NeighborBitmap>(rng.next()) & tmask;
                e.laneId = static_cast<uint32_t>(
                    rng.uniformInt(0, std::max(1, t) - 1));
                ASSERT_EQ(codec.unpack(codec.pack(e)), e);
            }
        }
    }
}

TEST(EntryCodec, DistinctEntriesDistinctWords)
{
    SiEntryCodec codec(4, 2);
    HwEntry a, b;
    a.node = 3;
    b.node = 5;
    a.prefixBitmaps = {0, 0};
    b.prefixBitmaps = {0, 0};
    EXPECT_NE(codec.pack(a), codec.pack(b));
}

} // namespace
} // namespace ta
