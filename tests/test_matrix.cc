/** @file Unit tests for the dense matrix type and reference GEMMs. */

#include <gtest/gtest.h>

#include "quant/matrix.h"

namespace ta {
namespace {

TEST(Matrix, ConstructAndIndex)
{
    MatI32 m(2, 3, 7);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    EXPECT_EQ(m.at(1, 2), 7);
    m.at(0, 1) = -4;
    EXPECT_EQ(m.at(0, 1), -4);
}

TEST(Matrix, OutOfRangeThrows)
{
    MatI32 m(2, 2);
    EXPECT_THROW(m.at(2, 0), std::logic_error);
    EXPECT_THROW(m.at(0, 2), std::logic_error);
}

TEST(Matrix, RowPtr)
{
    MatI32 m(2, 3, 0);
    m.at(1, 0) = 5;
    EXPECT_EQ(m.rowPtr(1)[0], 5);
}

TEST(Matrix, Equality)
{
    MatI32 a(2, 2, 1), b(2, 2, 1), c(2, 2, 2);
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(DenseGemm, PaperFig1Example)
{
    // Binary weight rows 1011, 1111, 0011, 0010 times input (6,-5,-2,4).
    // Bit j of a row multiplies input row j.
    MatI32 w(4, 4, 0);
    const uint32_t rows[4] = {0b1011, 0b1111, 0b0011, 0b0010};
    for (size_t r = 0; r < 4; ++r)
        for (int b = 0; b < 4; ++b)
            w.at(r, b) = (rows[r] >> b) & 1;
    MatI32 in(4, 1, 0);
    in.at(0, 0) = 6;
    in.at(1, 0) = -2;
    in.at(2, 0) = 4;
    in.at(3, 0) = -5;
    const MatI64 out = denseGemm(w, in);
    // 1011 -> 6 + (-2) + (-5) = ... bit0=6, bit1=-2, bit3=-5 => -1? The
    // paper's figure maps bits MSB-first; with our LSB-first convention
    // row values differ but the arithmetic identity is what matters:
    EXPECT_EQ(out.at(0, 0), 6 - 2 - 5);
    EXPECT_EQ(out.at(1, 0), 6 - 2 + 4 - 5);
    EXPECT_EQ(out.at(2, 0), 6 - 2);
    EXPECT_EQ(out.at(3, 0), -2);
}

TEST(DenseGemm, ShapeMismatchThrows)
{
    MatI32 w(2, 3), in(4, 2);
    EXPECT_THROW(denseGemm(w, in), std::logic_error);
}

TEST(DenseGemm, IdentityWeight)
{
    MatI32 w(3, 3, 0);
    for (int i = 0; i < 3; ++i)
        w.at(i, i) = 1;
    MatI32 in(3, 2);
    int v = 1;
    for (auto &x : in.data())
        x = v++;
    const MatI64 out = denseGemm(w, in);
    for (size_t r = 0; r < 3; ++r)
        for (size_t c = 0; c < 2; ++c)
            EXPECT_EQ(out.at(r, c), in.at(r, c));
}

TEST(DenseGemmF, MatchesManual)
{
    MatF w(1, 2);
    w.at(0, 0) = 0.5f;
    w.at(0, 1) = -1.5f;
    MatF in(2, 1);
    in.at(0, 0) = 4.0f;
    in.at(1, 0) = 2.0f;
    const MatF out = denseGemmF(w, in);
    EXPECT_FLOAT_EQ(out.at(0, 0), 0.5f * 4.0f - 1.5f * 2.0f);
}

} // namespace
} // namespace ta
