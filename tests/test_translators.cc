/** @file Unit tests for the prefix/suffix translators (Fig. 6). */

#include <gtest/gtest.h>

#include "hasse/translators.h"

namespace ta {
namespace {

TEST(PrefixTranslator, EncodeDecodeRoundTrip)
{
    // Fig. 6 example: node 1011 with prefix bitmap {0011, 1001, 1010}.
    const NodeId n = 0b1011;
    NeighborBitmap bm = 0;
    bm |= encodePrefix(n, 0b0011);
    bm |= encodePrefix(n, 0b1001);
    bm |= encodePrefix(n, 0b1010);
    EXPECT_EQ(bm, 0b1011u); // all three set bits flip
    auto decoded = decodePrefixes(n, bm);
    std::sort(decoded.begin(), decoded.end());
    EXPECT_EQ(decoded, (std::vector<NodeId>{0b0011, 0b1001, 0b1010}));
}

TEST(PrefixTranslator, EncodeRejectsNonCover)
{
    EXPECT_THROW(encodePrefix(0b1011, 0b0001), std::logic_error);
    EXPECT_THROW(encodePrefix(0b1011, 0b1111), std::logic_error);
}

TEST(PrefixTranslator, FirstPrefixPicksLowestFlip)
{
    EXPECT_EQ(firstPrefix(0b1011, 0b1010), 0b1001u);
    EXPECT_EQ(firstPrefix(0b1011, 0b1000), 0b0011u);
    EXPECT_EQ(firstPrefix(0b1011, 0), 0b1011u);
}

TEST(PrefixTranslator, DecodeRejectsBadBitmap)
{
    // Bitmap bit not set in the node.
    EXPECT_THROW(decodePrefixes(0b1010, 0b0001), std::logic_error);
}

TEST(SuffixTranslator, EncodeDecodeRoundTrip)
{
    // Fig. 6: node 1000 with suffixes {1100, 1010, 1001}.
    const NodeId n = 0b1000;
    NeighborBitmap bm = 0;
    bm |= encodeSuffix(n, 0b1100);
    bm |= encodeSuffix(n, 0b1010);
    bm |= encodeSuffix(n, 0b1001);
    EXPECT_EQ(bm, 0b0111u);
    auto decoded = decodeSuffixes(n, bm);
    std::sort(decoded.begin(), decoded.end());
    EXPECT_EQ(decoded, (std::vector<NodeId>{0b1001, 0b1010, 0b1100}));
}

TEST(SuffixTranslator, EncodeRejectsNonCover)
{
    EXPECT_THROW(encodeSuffix(0b1011, 0b1011), std::logic_error);
    EXPECT_THROW(encodeSuffix(0b1011, 0b0011), std::logic_error);
}

TEST(SuffixTranslator, DecodeRejectsBadBitmap)
{
    EXPECT_THROW(decodeSuffixes(0b1010, 0b0010), std::logic_error);
}

TEST(Translators, ExhaustiveRoundTrip8Bit)
{
    // Every (node, parent) cover pair in the 8-bit graph round-trips.
    for (NodeId n = 1; n < 256; ++n) {
        for (int b : setBits(n)) {
            const NodeId p = n & ~(1u << b);
            const NeighborBitmap bm = encodePrefix(n, p);
            EXPECT_EQ(bm, 1u << b);
            EXPECT_EQ(decodePrefixes(n, bm), std::vector<NodeId>{p});
            EXPECT_EQ(encodeSuffix(p, n), bm);
            EXPECT_EQ(decodeSuffixes(p, bm), std::vector<NodeId>{n});
        }
    }
}

} // namespace
} // namespace ta
