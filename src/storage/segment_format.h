/**
 * @file
 * The `ta-segment v1` on-disk format: a versioned, checksummed,
 * page-aligned container for bit-packed ternary/low-bit weight planes
 * plus the model catalog that maps (model, engine geometry, seed) to
 * the page extent holding its packed plane. This is the storage tier's
 * ground truth — `ta_pack` writes it, the BufferManager mmaps it
 * read-only, and the engine consumes WeightViews straight out of the
 * mapping (zero copy), so byte-identity of the packed plane with fresh
 * synthesis is exactly byte-identity of the served response.
 *
 * Layout (kPageSize = 4 KiB pages, host endianness like the
 * PlanCacheStore format; segments are host-local artifacts, not
 * interchange files):
 *
 *   page 0                      header (magic, version, geometry,
 *                               catalogFnv, headerFnv; zero padding)
 *   pages 1 .. dataPageStart-1  catalog blob: per-model entry table
 *                               followed by one FNV-1a checksum per
 *                               data page (zero padding)
 *   pages dataPageStart ..      raw bit-packed weight planes, each
 *        dataPageStart+count-1  entry starting on a page boundary
 *   last page                   trailer (magic, version, fileFnv over
 *                               every metadata page; padding must be
 *                               zero)
 *
 * Checksum coverage is total: header + catalog pages (including
 * padding) are covered by the trailer's fileFnv, every data page
 * (including padding) by its per-page FNV — which itself lives inside
 * the FNV-covered catalog blob — and the trailer's own fields are
 * validated directly, its padding by an explicit zero check. A single
 * flipped byte anywhere in the file is therefore detected: at open
 * time for metadata, at pin time for data pages (the BufferManager
 * verifies a page before the engine may read through it). Rejection
 * is wholesale — a corrupt segment serves nothing.
 *
 * Determinism: the writer emits a pure function of its inputs (no
 * timestamps, no pointers, fixed iteration order), so packing the
 * same suite twice yields byte-identical files — pinned by tests and
 * the CI re-pack `cmp`.
 */

#ifndef TA_STORAGE_SEGMENT_FORMAT_H
#define TA_STORAGE_SEGMENT_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ta {

constexpr uint32_t kSegmentMagic = 0x54415347;  ///< "TASG"
constexpr uint32_t kSegmentTrailerMagic = 0x54415354; ///< "TAST"
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentPageSize = 4096;

/** Streaming FNV-1a (the repo-wide checksum; same constants as the
 *  plan-cache and cost-model stores). */
constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
uint64_t fnv64(const void *data, size_t n,
               uint64_t h = kFnvOffsetBasis);

/** One packed weight plane: the catalog's unit of lookup. */
struct CatalogEntry
{
    std::string layer;     ///< layer name (diagnostic only)
    uint64_t n = 0, k = 0, m = 0; ///< canonical full GEMM shape
    uint64_t seed = 0;     ///< synthesis seed of this plane
    int wbits = 0;         ///< weight bit width S
    uint64_t reprRows = 0; ///< nr: capped representative rows
    uint64_t reprCols = 0; ///< kr: capped representative cols
    uint64_t rows = 0;     ///< wbits * reprRows sliced rows
    uint64_t rowStride = 0;///< ceilDiv(reprCols, 8) packed bytes/row
    uint64_t dataBytes = 0;///< rows * rowStride
    uint64_t firstPage = 0;///< absolute page index of the plane
    uint64_t pageCount = 0;///< ceilDiv(dataBytes, kSegmentPageSize)
    /** Owning segment index within the BufferManager's catalog
     *  (assigned at openCatalog time; 0 for a standalone open). */
    size_t segment = 0;
};

/** One packed model: a name plus its per-layer entries. */
struct CatalogModel
{
    std::string name;
    uint64_t baseSeed = 0;
    int wbits = 0;
    std::vector<CatalogEntry> entries;
};

/** Writer-side inputs (ta_pack and the format tests). */
struct SegmentEntryInput
{
    std::string layer;
    uint64_t n = 0, k = 0, m = 0;
    uint64_t seed = 0;
    int wbits = 0;
    uint64_t reprRows = 0;
    uint64_t reprCols = 0;
    std::vector<uint8_t> packed; ///< rows * rowStride bytes
};

struct SegmentModelInput
{
    std::string name;
    uint64_t baseSeed = 0;
    int wbits = 0;
    std::vector<SegmentEntryInput> entries;
};

/**
 * Write a ta-segment v1 file. Deterministic (byte-identical output for
 * identical inputs) and atomic (temp file + rename, like every store
 * in the repo). Returns false with `err` set on invalid inputs or I/O
 * failure.
 */
bool writeSegmentFile(const std::string &path,
                      const std::vector<SegmentModelInput> &models,
                      std::string *err);

/**
 * A read-only mmap of one segment file with its parsed, validated
 * catalog. Open validates everything except data-page payloads:
 * header fields and checksum, trailer checksum over all metadata
 * pages, trailer zero padding, exact page-multiple file size, catalog
 * checksum, and every entry's geometric invariants and page extents.
 * Data pages are verified lazily, per page, by the BufferManager at
 * pin time (pageFnv() is the expected value). Any failure rejects the
 * whole file.
 */
class SegmentFile
{
  public:
    SegmentFile() = default;
    ~SegmentFile();

    SegmentFile(const SegmentFile &) = delete;
    SegmentFile &operator=(const SegmentFile &) = delete;
    SegmentFile(SegmentFile &&o) noexcept;
    SegmentFile &operator=(SegmentFile &&o) noexcept;

    /** mmap + validate; false with `err` set on any defect. */
    bool open(const std::string &path, std::string *err);
    void close();

    bool isOpen() const { return base_ != nullptr; }
    const std::string &path() const { return path_; }
    const std::vector<CatalogModel> &models() const { return models_; }
    /** Mutable view for the BufferManager's catalog indexing (it
     *  stamps each entry's owning-segment index after open). */
    std::vector<CatalogModel> &mutableModels() { return models_; }
    uint64_t dataPageStart() const { return dataPageStart_; }
    uint64_t dataPageCount() const { return dataPageCount_; }
    uint64_t totalPages() const { return totalPages_; }
    size_t bytesMapped() const { return mappedBytes_; }

    /** Start of absolute page `page` inside the mapping. */
    const uint8_t *pageData(uint64_t page) const;

    /** Expected FNV-1a of data page `page` (absolute index). */
    uint64_t pageFnv(uint64_t page) const;

    /** Advise the kernel a page's cached copy may be dropped (the
     *  buffer manager's eviction). The mapping stays valid; a later
     *  access simply faults the page back in. */
    void dropPage(uint64_t page) const;

  private:
    std::string path_;
    uint8_t *base_ = nullptr;
    size_t mappedBytes_ = 0;
    uint64_t totalPages_ = 0;
    uint64_t dataPageStart_ = 0;
    uint64_t dataPageCount_ = 0;
    std::vector<CatalogModel> models_;
    std::vector<uint64_t> pageFnvs_; ///< indexed by page-dataPageStart
};

} // namespace ta

#endif // TA_STORAGE_SEGMENT_FORMAT_H
