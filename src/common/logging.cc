#include "common/logging.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace ta {

namespace {

LogLevel
resolveLogLevel()
{
    const char *env = std::getenv("TA_LOG_LEVEL");
    if (env == nullptr || *env == '\0')
        return LogLevel::Info;
    if (std::strcmp(env, "error") == 0 || std::strcmp(env, "0") == 0)
        return LogLevel::Error;
    if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "1") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "info") == 0 || std::strcmp(env, "2") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "3") == 0)
        return LogLevel::Debug;
    std::fprintf(stderr,
                 "log: unknown TA_LOG_LEVEL '%s' (want error, warn, "
                 "info or debug); defaulting to info\n",
                 env);
    return LogLevel::Info;
}

} // namespace

bool
logEnabled(LogLevel level)
{
    static const LogLevel threshold = resolveLogLevel();
    return static_cast<int>(level) <= static_cast<int>(threshold);
}

void
logf(LogLevel level, const char *component, const char *fmt, ...)
{
    if (!logEnabled(level))
        return;
    // One formatted write per line so concurrent loggers interleave
    // at line granularity, never mid-line.
    char buf[1024];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "%s: %s\n", component, buf);
}

namespace detail {

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throw instead of exit(1) so tests can assert on user-error paths.
    throw std::runtime_error("fatal: " + msg);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    throw std::logic_error("panic: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace ta
