/** @file Unit tests for the execution tracer (lane independence). */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/trace.h"

namespace ta {
namespace {

Plan
planFor(const std::vector<uint32_t> &values, int t = 8,
        int max_dist = 4)
{
    ScoreboardConfig c;
    c.tBits = t;
    c.maxDistance = max_dist;
    return Scoreboard(c).build(values);
}

TEST(Trace, EmptyPlan)
{
    const auto records = ExecutionTracer::trace(planFor({}));
    EXPECT_TRUE(records.empty());
    EXPECT_TRUE(ExecutionTracer::validate(records));
    EXPECT_EQ(ExecutionTracer::ppeCycles(records, 8), 0u);
}

TEST(Trace, ChainIssuesInOrder)
{
    const auto plan = planFor({0b0001, 0b0011, 0b0111}, 4);
    const auto records = ExecutionTracer::trace(plan);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_TRUE(ExecutionTracer::validate(records));
    // All in one lane, cycles 0, 1, 2.
    EXPECT_EQ(records[0].cycle, 0u);
    EXPECT_EQ(records[1].cycle, 1u);
    EXPECT_EQ(records[2].cycle, 2u);
    EXPECT_EQ(records[0].lane, records[2].lane);
}

TEST(Trace, LaneIndependenceOnRandomData)
{
    // The paper's Sec. 2.4 claim: dividing the Hasse graph into trees
    // eliminates cross-lane dependencies. validate() checks exactly
    // that, over many random sub-tiles.
    Rng rng(2024);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<uint32_t> values(256);
        for (auto &v : values)
            v = static_cast<uint32_t>(rng.uniformInt(0, 255));
        const auto records =
            ExecutionTracer::trace(planFor(values));
        EXPECT_TRUE(ExecutionTracer::validate(records));
    }
}

TEST(Trace, PpeCyclesMatchDispatcher)
{
    Rng rng(55);
    std::vector<uint32_t> values(200);
    for (auto &v : values)
        v = static_cast<uint32_t>(rng.uniformInt(0, 255));
    const Plan plan = planFor(values);
    const auto records = ExecutionTracer::trace(plan);
    const auto lane_ops = plan.laneOps();
    EXPECT_EQ(ExecutionTracer::ppeCycles(records, plan.config.lanes()),
              *std::max_element(lane_ops.begin(), lane_ops.end()));
}

TEST(Trace, OutlierTakesPopcountSlots)
{
    ScoreboardConfig c;
    c.tBits = 4;
    c.maxDistance = 2;
    const Plan plan = Scoreboard(c).build(std::vector<uint32_t>{7});
    const auto records = ExecutionTracer::trace(plan);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(records[0].outlier);
    EXPECT_EQ(records[0].cycle, 2u); // 3 adds -> finishes at cycle 2
    EXPECT_EQ(ExecutionTracer::ppeCycles(records, 4), 3u);
}

TEST(Trace, RenderContainsEvents)
{
    const auto plan = planFor({2, 14}, 4);
    const auto records = ExecutionTracer::trace(plan);
    const std::string out = ExecutionTracer::render(records);
    EXPECT_NE(out.find("node 2"), std::string::npos);
    EXPECT_NE(out.find("node 14"), std::string::npos);
    EXPECT_NE(out.find("(TR)"), std::string::npos);
}

TEST(Trace, ValidateDetectsBrokenSchedules)
{
    const auto plan = planFor({0b0001, 0b0011}, 4);
    auto records = ExecutionTracer::trace(plan);
    ASSERT_EQ(records.size(), 2u);

    // Parent after child: invalid.
    auto swapped = records;
    std::swap(swapped[0].cycle, swapped[1].cycle);
    EXPECT_FALSE(ExecutionTracer::validate(swapped));

    // Cross-lane dependency: invalid.
    auto cross = records;
    cross[0].lane = (cross[0].lane + 1) % 4;
    EXPECT_FALSE(ExecutionTracer::validate(cross));

    // Dangling parent: invalid.
    auto dangling = records;
    dangling[1].parent = 0b1000;
    EXPECT_FALSE(ExecutionTracer::validate(dangling));

    // Duplicate node: invalid.
    auto dup = records;
    dup[0].node = dup[1].node;
    EXPECT_FALSE(ExecutionTracer::validate(dup));
}

TEST(Trace, DuplicateRowsCarriedAsRowCount)
{
    const auto plan = planFor({3, 3, 3}, 4);
    const auto records = ExecutionTracer::trace(plan);
    bool found = false;
    for (const auto &r : records)
        if (r.node == 3) {
            EXPECT_EQ(r.rowCount, 3u);
            found = true;
        }
    EXPECT_TRUE(found);
}

} // namespace
} // namespace ta
