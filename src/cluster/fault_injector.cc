#include "cluster/fault_injector.h"

#include <dirent.h>

#include <algorithm>
#include <csignal>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "storage/segment_format.h"

namespace ta {

namespace {

/** Parse a decimal (optionally negative) integer field; false on any
 *  trailing garbage. */
bool
parseNum(const std::string &s, long long &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoll(s.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

bool
parseEvent(const std::string &token, FaultEvent &ev, std::string &err)
{
    const size_t at = token.find('@');
    if (at == std::string::npos) {
        err = "fault event '" + token + "' missing '@'";
        return false;
    }
    const std::string kind = token.substr(0, at);
    if (kind == "kill")
        ev.kind = FaultKind::Kill;
    else if (kind == "blackhole")
        ev.kind = FaultKind::Blackhole;
    else if (kind == "corrupt_cache")
        ev.kind = FaultKind::CorruptCache;
    else if (kind == "corrupt_segment")
        ev.kind = FaultKind::CorruptSegment;
    else {
        err = "unknown fault kind '" + kind + "'";
        return false;
    }
    // Split the argument list AT[:A[:B]].
    std::vector<std::string> fields;
    std::string rest = token.substr(at + 1);
    size_t start = 0;
    for (;;) {
        const size_t colon = rest.find(':', start);
        if (colon == std::string::npos) {
            fields.push_back(rest.substr(start));
            break;
        }
        fields.push_back(rest.substr(start, colon - start));
        start = colon + 1;
    }
    long long v = 0;
    if (!parseNum(fields[0], v) || v < 0) {
        err = "fault event '" + token + "': bad request index";
        return false;
    }
    ev.atRequest = static_cast<uint64_t>(v);
    const size_t maxFields =
        ev.kind == FaultKind::Kill ? 2
        : ev.kind == FaultKind::Blackhole ? 3
        : ev.kind == FaultKind::CorruptSegment ? 1
                                               : 2;
    if (fields.size() > maxFields) {
        err = "fault event '" + token + "': too many fields";
        return false;
    }
    if (ev.kind == FaultKind::CorruptSegment)
        return true; // AT only; the catalog is shared, no slot
    if (ev.kind == FaultKind::Kill) {
        if (fields.size() >= 2) {
            if (!parseNum(fields[1], v) || v < 1 || v > 64) {
                err = "fault event '" + token + "': bad kill count";
                return false;
            }
            ev.count = static_cast<int>(v);
        }
        return true;
    }
    // blackhole / corrupt_cache: [SLOT [DURATION_MS]]
    if (fields.size() >= 2) {
        if (!parseNum(fields[1], v) || v < -1 || v > 4096) {
            err = "fault event '" + token + "': bad slot";
            return false;
        }
        ev.slot = static_cast<int>(v);
    }
    if (fields.size() >= 3) {
        if (!parseNum(fields[2], v) || v < 1 || v > 600000) {
            err = "fault event '" + token + "': bad duration";
            return false;
        }
        ev.durationMs = static_cast<int>(v);
    }
    return true;
}

/** Flip one mid-file byte of `path`; false when the file cannot be
 *  opened or is empty. */
bool
flipByte(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size <= 0) {
        std::fclose(f);
        return false;
    }
    const long pos = size / 2;
    std::fseek(f, pos, SEEK_SET);
    const int c = std::fgetc(f);
    if (c == EOF) {
        std::fclose(f);
        return false;
    }
    std::fseek(f, pos, SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
    return true;
}

} // namespace

bool
corruptSegmentDataByte(const std::string &path)
{
    // Parse with the real reader so the flipped byte provably lands
    // inside the data region — damage open-time validation accepts
    // and only a pin-time page checksum can reject.
    uint64_t offset = 0;
    {
        SegmentFile seg;
        std::string err;
        if (!seg.open(path, &err) || seg.dataPageCount() == 0)
            return false;
        offset = seg.dataPageStart() * kSegmentPageSize +
                 seg.dataPageCount() * kSegmentPageSize / 2;
    }
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f)
        return false;
    std::fseek(f, static_cast<long>(offset), SEEK_SET);
    const int c = std::fgetc(f);
    if (c == EOF) {
        std::fclose(f);
        return false;
    }
    std::fseek(f, static_cast<long>(offset), SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
    return true;
}

bool
parseFaultSpec(const std::string &spec, FaultPlan &plan,
               std::string &err)
{
    plan.events.clear();
    size_t start = 0;
    while (start <= spec.size()) {
        if (start == spec.size())
            break;
        size_t end = spec.find(';', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string token = spec.substr(start, end - start);
        if (!token.empty()) {
            FaultEvent ev;
            if (!parseEvent(token, ev, err))
                return false;
            plan.events.push_back(ev);
        }
        start = end + 1;
    }
    return true;
}

FaultInjector::FaultInjector(ReplicaManager &manager, FaultPlan plan,
                             uint64_t seed, std::string planCacheBase,
                             std::string catalogDir)
    : manager_(manager),
      plan_(std::move(plan)),
      planCacheBase_(std::move(planCacheBase)),
      catalogDir_(std::move(catalogDir)),
      rng_(seed)
{
    fired_.assign(plan_.events.size(), false);
    timer_ = std::thread([this] { timerLoop(); });
}

FaultInjector::~FaultInjector()
{
    {
        std::lock_guard<std::mutex> lock(timerMu_);
        timerStop_ = true;
    }
    timerCv_.notify_all();
    if (timer_.joinable())
        timer_.join();
    // Never leave a replica stopped behind us.
    for (const Stalled &s : stalled_)
        ::kill(s.pid, SIGCONT);
}

int
FaultInjector::pickVictim(int fixedSlot)
{
    const int n = manager_.count();
    if (fixedSlot >= 0)
        return fixedSlot < n ? fixedSlot : -1;
    std::vector<int> live;
    for (int i = 0; i < n; ++i) {
        const ReplicaEndpoint ep = manager_.endpoint(i);
        if (ep.up && ep.pid > 0)
            live.push_back(i);
    }
    if (live.empty())
        return -1;
    return live[static_cast<size_t>(rng_.uniformInt(
        0, static_cast<int64_t>(live.size()) - 1))];
}

void
FaultInjector::fire(const FaultEvent &ev)
{
    switch (ev.kind) {
    case FaultKind::Kill: {
        // Pick `count` *distinct* victims up front: the manager only
        // notices a SIGKILLed child asynchronously, so re-running
        // pickVictim could hit the same (still nominally up) slot.
        std::vector<int> victims;
        if (ev.slot >= 0) {
            if (ev.slot < manager_.count())
                victims.push_back(ev.slot);
        } else {
            std::vector<int> live;
            for (int i = 0; i < manager_.count(); ++i) {
                const ReplicaEndpoint ep = manager_.endpoint(i);
                if (ep.up && ep.pid > 0)
                    live.push_back(i);
            }
            for (int c = 0; c < ev.count && !live.empty(); ++c) {
                const size_t pick = static_cast<size_t>(
                    rng_.uniformInt(
                        0, static_cast<int64_t>(live.size()) - 1));
                victims.push_back(live[pick]);
                live.erase(live.begin() +
                           static_cast<ptrdiff_t>(pick));
            }
        }
        for (const int victim : victims) {
            const pid_t pid = manager_.pidOf(victim);
            if (pid <= 0)
                continue;
            logf(LogLevel::Info, "faults",
                 "kill replica %d (pid %d)", victim,
                 static_cast<int>(pid));
            ::kill(pid, SIGKILL);
            ++counters_.kills;
        }
        return;
    }
    case FaultKind::Blackhole: {
        const int victim = pickVictim(ev.slot);
        if (victim < 0)
            return;
        const pid_t pid = manager_.pidOf(victim);
        if (pid <= 0)
            return;
        logf(LogLevel::Info, "faults",
             "blackhole replica %d (pid %d) for %d ms", victim,
             static_cast<int>(pid), ev.durationMs);
        ::kill(pid, SIGSTOP);
        ++counters_.blackholes;
        {
            std::lock_guard<std::mutex> lock(timerMu_);
            stalled_.push_back(
                {pid, std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ev.durationMs)});
        }
        timerCv_.notify_all();
        return;
    }
    case FaultKind::CorruptCache: {
        const int victim = pickVictim(ev.slot);
        if (victim < 0)
            return;
        if (!planCacheBase_.empty()) {
            const std::string path =
                planCacheBase_ + "." + std::to_string(victim);
            if (flipByte(path))
                logf(LogLevel::Info, "faults", "corrupted %s",
                     path.c_str());
            else
                logf(LogLevel::Warn, "faults",
                     "no cache file to corrupt at %s", path.c_str());
        }
        const pid_t pid = manager_.pidOf(victim);
        if (pid > 0) {
            logf(LogLevel::Info, "faults",
                 "kill replica %d (pid %d) after cache corruption",
                 victim, static_cast<int>(pid));
            ::kill(pid, SIGKILL);
        }
        ++counters_.corruptions;
        return;
    }
    case FaultKind::CorruptSegment: {
        if (catalogDir_.empty()) {
            logf(LogLevel::Warn, "faults",
                 "corrupt_segment with no catalog dir");
            return;
        }
        // First segment file in directory order — deterministic for
        // a fixed catalog.
        std::vector<std::string> segs;
        if (DIR *d = ::opendir(catalogDir_.c_str())) {
            while (const dirent *de = ::readdir(d)) {
                const std::string name = de->d_name;
                if (name.size() > 6 &&
                    name.compare(name.size() - 6, 6, ".taseg") == 0)
                    segs.push_back(catalogDir_ + "/" + name);
            }
            ::closedir(d);
        }
        std::sort(segs.begin(), segs.end());
        if (!segs.empty() && corruptSegmentDataByte(segs.front())) {
            logf(LogLevel::Info, "faults", "corrupted %s",
                 segs.front().c_str());
            ++counters_.segmentCorruptions;
        } else {
            logf(LogLevel::Warn, "faults",
                 "no segment to corrupt in %s", catalogDir_.c_str());
        }
        return;
    }
    }
}

void
FaultInjector::onRequestIssued(uint64_t index)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < plan_.events.size(); ++i) {
        if (fired_[i] || plan_.events[i].atRequest > index)
            continue;
        fired_[i] = true;
        fire(plan_.events[i]);
    }
}

FaultInjector::Counters
FaultInjector::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

void
FaultInjector::timerLoop()
{
    std::unique_lock<std::mutex> lock(timerMu_);
    for (;;) {
        if (timerStop_)
            return; // destructor SIGCONTs the leftovers
        if (stalled_.empty()) {
            timerCv_.wait(lock);
            continue;
        }
        auto next = stalled_.begin();
        for (auto it = next + 1; it != stalled_.end(); ++it)
            if (it->wake < next->wake)
                next = it;
        const auto now = std::chrono::steady_clock::now();
        if (next->wake > now) {
            timerCv_.wait_until(lock, next->wake);
            continue;
        }
        const pid_t pid = next->pid;
        stalled_.erase(next);
        lock.unlock();
        // A SIGKILLed-meanwhile victim makes this a no-op; stale-pid
        // reuse inside one run is not a realistic race at this scale.
        ::kill(pid, SIGCONT);
        logf(LogLevel::Info, "faults", "resumed pid %d",
             static_cast<int>(pid));
        lock.lock();
    }
}

} // namespace ta
