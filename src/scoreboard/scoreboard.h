/**
 * @file
 * The Scoreboard (Sec. 3): turns a set of TransRows into an execution plan
 * — a balanced forest over the Hasse graph in which every executed node
 * reuses the partial result of exactly one prefix node. Implements the
 * forward pass (Alg. 1), the backward pass with TR-node materialization
 * (Alg. 2), and the round-robin-like lane balancing of Sec. 2.4, all
 * generalized over the TransRow width T.
 */

#ifndef TA_SCOREBOARD_SCOREBOARD_H
#define TA_SCOREBOARD_SCOREBOARD_H

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "hasse/hasse_graph.h"
#include "hasse/translators.h"
#include "quant/bitslice.h"

namespace ta {

/** Distance value meaning "no prefix found yet". */
constexpr int kInfDistance = std::numeric_limits<int>::max();

/** Hard cap on ScoreboardConfig::maxDistance (sizes scratch arrays). */
constexpr int kMaxPrefixDistance = 16;

/** Tunable parameters of the scoreboard algorithm. */
struct ScoreboardConfig
{
    int tBits = 8;       ///< TransRow width T
    /**
     * Prefixes farther than this are rejected (Alg. 1 line 7); present
     * nodes left at distance >= maxDistance become outliers dispatched
     * standalone at PopCount cost (Sec. 5.2).
     */
    int maxDistance = 4;
    int numLanes = 0;    ///< parallel lanes; 0 = T (Sec. 2.4 granularity)
    /**
     * Round-robin-like workload balancing of Sec. 2.4. When disabled
     * (ablation), distance-1 nodes take their first candidate parent
     * regardless of lane load.
     */
    bool balanceLanes = true;

    int lanes() const { return numLanes > 0 ? numLanes : tBits; }
};

/** One executed node of the plan, in execution (Hamming) order. */
struct PlanNode
{
    NodeId id = 0;
    uint32_t count = 0;      ///< TransRows whose value equals id
    NodeId parent = 0;       ///< node whose partial result is reused
    int distance = 0;        ///< Hasse distance to nearest present prefix
    bool materialized = false; ///< TR node: absent from rows, on a path
    bool outlier = false;    ///< no valid prefix; accumulated from scratch
    int lane = -1;           ///< parallel lane (tree) assignment
};

/**
 * The scoreboard's output: the executed forest plus per-category op
 * counts. `nodes` is ordered so every parent precedes its children
 * (Hamming order), which is the hardware issue order.
 */
struct Plan
{
    ScoreboardConfig config;
    std::vector<PlanNode> nodes;

    uint64_t numRows = 0;    ///< TransRows fed in (incl. zero rows)
    uint64_t zeroRows = 0;   ///< ZR: rows with value 0 (skipped)

    /** PR rows: one per present node — needs PPE + APE. */
    uint64_t prRows() const;
    /** FR rows: duplicate rows reusing a full result — APE only. */
    uint64_t frRows() const;
    /** TR nodes: materialized pass-through nodes — PPE only. */
    uint64_t trNodes() const;
    /** Extra PPE adds spent on outlier nodes beyond their first. */
    uint64_t outlierExtraOps() const;

    /** Single-lane add operations: PR + FR + TR + outlier extra. */
    uint64_t totalOps() const;
    /** PPE adds: one per non-outlier node + level per outlier. */
    uint64_t ppeOps() const;
    /** APE accumulations: one per non-zero row. */
    uint64_t apeOps() const;
    /** Per-lane PPE op totals (load-balance view). */
    std::vector<uint64_t> laneOps() const;
};

/**
 * Work counters of the two scoreboard passes, used by the hardware
 * scoreboard model to derive cycle counts (Sec. 4.6).
 */
struct PassStats
{
    uint64_t forwardTouched = 0;  ///< nodes that propagated prefixes
    uint64_t forwardUpdates = 0;  ///< SetPrefix table writes
    uint64_t backwardTouched = 0; ///< nodes inspected in reverse order
    uint64_t backwardUpdates = 0; ///< SetSuffix / materializations
};

/**
 * The Scoreboard engine. Stateless between build() calls; one instance
 * per TransRow width.
 */
class Scoreboard
{
  public:
    /**
     * Reusable working state for build(): the per-node pass tables and
     * the lane-balancing workload vector. One Scratch per thread lets
     * the hot sub-tile loop run without a single heap allocation beyond
     * the returned Plan's node list. A default-constructed Scratch
     * works for any T / maxDistance; buffers grow on first use and are
     * reused afterwards.
     */
    struct Scratch
    {
        /** Working state for one node during the passes. */
        struct NodeState
        {
            uint32_t count = 0;
            int distance = kInfDistance;
            /** Candidate immediate parents per distance (index d-1). */
            std::array<NeighborBitmap, kMaxPrefixDistance>
                prefixBitmaps{};
            NeighborBitmap suffixBitmap = 0;
            bool materialized = false;
            NodeId chosenParent = 0;
            bool hasChosenParent = false;
            int lane = -1;
        };

        std::vector<NodeState> nodes;
        std::vector<uint64_t> laneLoad;
        std::vector<uint32_t> values; ///< staging for TransRow overloads
    };

    explicit Scoreboard(ScoreboardConfig config);

    const ScoreboardConfig &config() const { return config_; }
    const HasseGraph &graph() const { return graph_; }

    /**
     * Run the full algorithm on a set of TransRows: count, forward pass,
     * backward pass, lane balancing. Values >= 2^T are rejected.
     */
    Plan build(const std::vector<TransRow> &rows) const;

    /** Convenience overload on raw values. */
    Plan build(const std::vector<uint32_t> &values) const;

    /** As build(), also reporting per-pass work counters. */
    Plan build(const std::vector<uint32_t> &values,
               PassStats *pass_stats) const;

    /**
     * Allocation-free core: as build() but with caller-owned working
     * state. Thread-safe as long as each thread passes its own scratch.
     */
    Plan build(const std::vector<uint32_t> &values,
               PassStats *pass_stats, Scratch &scratch) const;

    /** TransRow overload staging values through the scratch. */
    Plan build(const std::vector<TransRow> &rows, Scratch &scratch) const;

  private:
    void forwardPass(std::vector<Scratch::NodeState> &nodes,
                     PassStats *pass_stats) const;
    void backwardPass(std::vector<Scratch::NodeState> &nodes,
                      PassStats *pass_stats) const;
    void balanceLanes(std::vector<Scratch::NodeState> &nodes,
                      std::vector<uint64_t> &workload, Plan &plan) const;

    ScoreboardConfig config_;
    HasseGraph graph_;
};

} // namespace ta

#endif // TA_SCOREBOARD_SCOREBOARD_H
