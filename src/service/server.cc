#include "service/server.h"

#include <csignal>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "kernels/kernel_table.h"
#include "service/line_reader.h"

namespace ta {

namespace {

std::string
serializeStats(uint64_t id, const ServiceStats &s)
{
    char buf[1792];
    std::snprintf(
        buf, sizeof(buf),
        "{\"id\":%llu,\"ok\":1,\"admitted\":%llu,\"rejected\":%llu,"
        "\"served\":%llu,\"errors\":%llu,\"windows\":%llu,"
        "\"batched_requests\":%llu,\"max_window\":%llu,"
        "\"queue_depth\":%llu,\"peak_queue_depth\":%llu,"
        "\"inflight_windows\":%llu,\"uptime_ms\":%llu,"
        "\"plans_loaded\":%llu,\"cache_hits\":%llu,"
        "\"cache_misses\":%llu,\"cache_evictions\":%llu,"
        "\"cache_hit_rate\":%s,\"service_ms_p50\":%s,"
        "\"service_ms_p95\":%s,\"service_ms_p99\":%s,"
        "\"shed_unmeetable\":%llu,\"deadline_met\":%llu,"
        "\"deadline_misses\":%llu,\"buffer_hits\":%llu,"
        "\"buffer_misses\":%llu,"
        "\"buffer_evictions\":%llu,\"catalog_models\":%llu,"
        "\"storage_bytes_mapped\":%llu",
        static_cast<unsigned long long>(id),
        static_cast<unsigned long long>(s.admitted),
        static_cast<unsigned long long>(s.rejected),
        static_cast<unsigned long long>(s.served),
        static_cast<unsigned long long>(s.errors),
        static_cast<unsigned long long>(s.windows),
        static_cast<unsigned long long>(s.batchedRequests),
        static_cast<unsigned long long>(s.maxWindow),
        static_cast<unsigned long long>(s.queueDepth),
        static_cast<unsigned long long>(s.peakQueueDepth),
        static_cast<unsigned long long>(s.inflightWindows),
        static_cast<unsigned long long>(s.uptimeMs),
        static_cast<unsigned long long>(s.plansLoaded),
        static_cast<unsigned long long>(s.cacheHits),
        static_cast<unsigned long long>(s.cacheMisses),
        static_cast<unsigned long long>(s.cacheEvictions),
        formatDouble(s.hitRate()).c_str(),
        formatDouble(s.serviceMs.p50).c_str(),
        formatDouble(s.serviceMs.p95).c_str(),
        formatDouble(s.serviceMs.p99).c_str(),
        static_cast<unsigned long long>(s.shedUnmeetable),
        static_cast<unsigned long long>(s.deadlineMet),
        static_cast<unsigned long long>(s.deadlineMisses),
        static_cast<unsigned long long>(s.bufferHits),
        static_cast<unsigned long long>(s.bufferMisses),
        static_cast<unsigned long long>(s.bufferEvictions),
        static_cast<unsigned long long>(s.catalogModels),
        static_cast<unsigned long long>(s.storageBytesMapped));
    std::string out = buf;
    // Fixed-edge service-latency buckets (MetricsRegistry snapshot):
    // cumulative counts the router can sum bucket-wise.
    for (const auto &kv : s.latencyHist)
        out += ",\"" + kv.first + "\":" + std::to_string(kv.second);
    out += ",\"scheduler\":\"" + s.scheduler + "\",\"kernel_arch\":\"";
    out += kernelArch();
    out += "\"}";
    return out;
}

/**
 * A disconnected peer must surface as a write error (handled by
 * ConnWriter's dead-peer path), not as SIGPIPE killing the process.
 * Idempotent; called by every serve entry point.
 */
void
ignoreSigpipe()
{
    std::signal(SIGPIPE, SIG_IGN);
}

} // namespace

void
ConnWriter::beginRequest()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++inFlight_;
}

void
ConnWriter::writeLine(const std::string &line)
{
    // A dead peer — gone, or one that stopped reading for
    // kWriteTimeoutMs — marks the writer dead and drops output, so a
    // stalled client can never wedge the worker delivering its
    // response (pipes and sockets alike; the poll() bound is what
    // SO_SNDTIMEO would give us on sockets only).
    std::lock_guard<std::mutex> lock(mu_);
    if (!dead_) {
        std::string buf = line;
        buf.push_back('\n');
        size_t off = 0;
        while (off < buf.size()) {
            pollfd pfd{fd_, POLLOUT, 0};
            if (::poll(&pfd, 1, kWriteTimeoutMs) <= 0 ||
                (pfd.revents & POLLOUT) == 0) {
                dead_ = true;
                break;
            }
            const ssize_t n =
                ::write(fd_, buf.data() + off, buf.size() - off);
            if (n <= 0) {
                dead_ = true; // peer gone; drop remaining output
                break;
            }
            off += static_cast<size_t>(n);
        }
    }
}

void
ConnWriter::finishRequest()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        --inFlight_;
    }
    cv_.notify_all();
}

void
ConnWriter::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return inFlight_ == 0; });
}

void
serveLineConnection(const LineHandler &handler, int in_fd, int out_fd)
{
    ignoreSigpipe();
    auto writer = std::make_shared<ConnWriter>(out_fd);
    LineReader reader(in_fd);
    std::string line;
    while (reader.next(line)) {
        if (line.empty())
            continue;
        if (!handler(line, writer))
            break;
    }
    // Never close a connection with responses still in flight: the
    // responder lambdas hold the writer, and workers may still be
    // computing.
    writer->drain();
}

int
serveLineStdio(const LineHandler &handler)
{
    serveLineConnection(handler, STDIN_FILENO, STDOUT_FILENO);
    return 0;
}

int
serveLineTcp(const LineHandler &handler, uint16_t port,
             std::atomic<bool> &shutdown_flag, const char *name)
{
    ignoreSigpipe();
    const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) {
        logf(LogLevel::Error, name, "socket: %s",
             std::strerror(errno));
        return 1;
    }
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd, 64) != 0) {
        logf(LogLevel::Error, name, "bind/listen: %s",
             std::strerror(errno));
        ::close(listen_fd);
        return 1;
    }
    // Port 0 asks the kernel for an ephemeral port; report whichever
    // port we actually bound. The stdout announcement is the machine
    // interface (stdout carries nothing else in TCP mode): the
    // ReplicaManager, tests and CI parse it instead of racing on a
    // fixed port.
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    uint16_t bound_port = port;
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0)
        bound_port = ntohs(bound.sin_port);
    std::printf("listening %u\n", static_cast<unsigned>(bound_port));
    std::fflush(stdout);
    logf(LogLevel::Info, name, "listening on 127.0.0.1:%u",
         static_cast<unsigned>(bound_port));

    struct Conn
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> finished{false};
    };
    std::mutex conn_mu;
    std::vector<std::unique_ptr<Conn>> conns;
    // Join-and-close every connection whose thread has finished (or,
    // with `all`, every connection). Keeps long-lived servers from
    // accumulating one fd + one exited thread per past connection.
    auto reap = [&](bool all) {
        std::lock_guard<std::mutex> lock(conn_mu);
        for (auto it = conns.begin(); it != conns.end();) {
            if (all || (*it)->finished.load()) {
                (*it)->thread.join();
                ::close((*it)->fd);
                it = conns.erase(it);
            } else {
                ++it;
            }
        }
    };

    while (!shutdown_flag.load()) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
            break; // listener closed by the shutdown connection
        reap(false);
        // Belt and braces on top of ConnWriter's poll() bound: cap the
        // blocking write itself (sockets only; pipes rely on poll).
        timeval send_timeout{ConnWriter::kWriteTimeoutMs / 1000, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                     sizeof(send_timeout));
        auto conn = std::make_unique<Conn>();
        Conn *c = conn.get();
        c->fd = fd;
        c->thread =
            std::thread([&handler, &shutdown_flag, listen_fd, c] {
                serveLineConnection(handler, c->fd, c->fd);
                c->finished.store(true);
                if (shutdown_flag.load()) {
                    // Unblock the accept loop; harmless if repeated.
                    ::shutdown(listen_fd, SHUT_RDWR);
                }
            });
        std::lock_guard<std::mutex> lock(conn_mu);
        conns.push_back(std::move(conn));
    }
    // Force-drain every live peer: stop reads so connection threads
    // fall out of their loops, then join and close everything.
    {
        std::lock_guard<std::mutex> lock(conn_mu);
        for (const auto &c : conns)
            if (!c->finished.load())
                ::shutdown(c->fd, SHUT_RD);
    }
    reap(true);
    ::close(listen_fd);
    return 0;
}

LineHandler
makeServiceHandler(ServiceScheduler &sched,
                   std::atomic<bool> &shutdown_flag)
{
    return [&sched, &shutdown_flag](
               const std::string &line,
               const std::shared_ptr<ConnWriter> &writer) -> bool {
        ServiceRequest req;
        std::string err;
        if (!parseRequestLine(line, req, err)) {
            writer->writeLine(serializeError(req.id, err));
            return true;
        }
        if (req.op == "ping") {
            writer->writeLine("{\"id\":" + std::to_string(req.id) +
                              ",\"ok\":1,\"pong\":1}");
            return true;
        }
        if (req.op == "stats") {
            writer->writeLine(serializeStats(req.id, sched.stats()));
            return true;
        }
        if (req.op == "shutdown") {
            shutdown_flag.store(true);
            writer->writeLine("{\"id\":" + std::to_string(req.id) +
                              ",\"ok\":1,\"shutdown\":1}");
            return false;
        }
        writer->beginRequest();
        sched.submit(req, [writer](const std::string &response) {
            writer->writeLine(response);
            writer->finishRequest();
        });
        return true;
    };
}

void
serveConnection(ServiceScheduler &sched, int in_fd, int out_fd,
                std::atomic<bool> &shutdown_flag)
{
    serveLineConnection(makeServiceHandler(sched, shutdown_flag),
                        in_fd, out_fd);
}

int
serveStdio(ServiceScheduler &sched)
{
    std::atomic<bool> shutdown_flag{false};
    return serveLineStdio(makeServiceHandler(sched, shutdown_flag));
}

int
serveTcp(ServiceScheduler &sched, uint16_t port)
{
    std::atomic<bool> shutdown_flag{false};
    return serveLineTcp(makeServiceHandler(sched, shutdown_flag), port,
                        shutdown_flag, "ta_serve");
}

} // namespace ta
