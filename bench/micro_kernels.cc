/**
 * @file
 * Micro-kernel benchmarks for the simulator's hot paths: the scoreboard
 * build (heap vs scratch-arena), the plan-cache hit path, the bitonic
 * sorter, Benes routing, the static-SI tile evaluation and the
 * functional transitive GEMM. These are host-side throughput numbers
 * (how fast the *simulator* runs), useful for keeping the design-space
 * sweeps laptop-scale. Timing is hand-rolled (no google-benchmark
 * dependency) through bench/kernel_report.h, which also defines the
 * per-kernel metric schema (`<K>_ns_per_call`, `<K>_items_per_sec`,
 * `<K>_calls`, `<K>_arch`, `<K>_checksum`, `<K>_bytes_per_cycle`)
 * shared with the `kernels` benchmark and documented in
 * docs/BENCH_SCHEMA.md. Host timings are inherently volatile, so this
 * benchmark's JSON metrics are exempt from the byte-identical contract
 * the figure benchmarks follow — except the `<K>_checksum` fields,
 * which are pure functions of the seeded inputs.
 */

#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/transitive_gemm.h"
#include "kernel_report.h"
#include "kernels/kernel_table.h"
#include "noc/benes.h"
#include "noc/bitonic_sorter.h"
#include "scoreboard/static_scoreboard.h"
#include "workloads/generators.h"

using namespace ta;
using namespace ta::benchkernels;

namespace {

std::vector<uint32_t>
randomValues(size_t n, int t, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> v(n);
    for (auto &x : v)
        x = static_cast<uint32_t>(rng.uniformInt(0, (1 << t) - 1));
    return v;
}

int
runMicroKernels(HarnessContext &ctx)
{
    const double budget = ctx.quick() ? 0.02 : 0.2;
    // These benchmarks exercise simulator paths above the kernel
    // layer; the dispatched backend is what the sub-tile inner loops
    // (scoreboard counting scan, engine accumulate/scatter) run on.
    const std::string arch = kernelArch();
    ctx.metric("dispatch_arch", arch);

    Table t("Micro kernels: simulator hot-path throughput (host)");
    t.setHeader({"Kernel", "Arch", "ns/call", "items/s", "calls"});

    auto report = [&](const std::string &name, uint64_t items,
                      const std::function<uint64_t()> &fn) {
        reportKernel(ctx, t, budget, name, arch, items, 0, fn);
    };

    // ---- scoreboard build: heap path vs reusable scratch arena -------
    for (int tb : {4, 8, 12}) {
        ScoreboardConfig c;
        c.tBits = tb;
        const Scoreboard sb(c);
        const auto values = randomValues(256, tb, 7);
        report("scoreboard_build_t" + std::to_string(tb), values.size(),
               [&, values] { return sb.build(values).nodes.size(); });
    }
    {
        ScoreboardConfig c;
        c.tBits = 8;
        const Scoreboard sb(c);
        const auto values = randomValues(256, 8, 7);
        Scoreboard::Scratch scratch;
        report("scoreboard_build_arena_t8", values.size(), [&] {
            return sb.build(values, nullptr, scratch).nodes.size();
        });

        // Steady-state cost of a plan-cache hit vs a fresh build.
        PlanCache cache(64);
        report("plan_cache_hit", values.size(), [&] {
            return cache
                .getOrBuild(values,
                            [&] {
                                return sb.build(values, nullptr,
                                                scratch);
                            })
                ->nodes.size();
        });
    }

    // ---- bitonic sorter ----------------------------------------------
    for (size_t n : {64u, 256u, 1024u}) {
        BitonicSorter sorter(256);
        std::vector<TransRow> rows(n);
        Rng rng(3);
        for (size_t i = 0; i < n; ++i)
            rows[i] = {static_cast<uint32_t>(rng.uniformInt(0, 255)),
                       static_cast<uint32_t>(i)};
        report("bitonic_sort_n" + std::to_string(n), n,
               [&, rows] { return sorter.sort(rows).size(); });
    }

    // ---- Benes routing ------------------------------------------------
    for (uint32_t ports : {8u, 64u}) {
        BenesNetwork net(ports);
        Rng rng(5);
        std::vector<uint32_t> perm(ports);
        for (uint32_t i = 0; i < ports; ++i)
            perm[i] = i;
        for (size_t i = ports - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.uniformInt(0, i)]);
        report("benes_route_p" + std::to_string(ports), ports,
               [&, perm] { return net.route(perm).switchCount(); });
    }

    // ---- static-SI tile evaluation ------------------------------------
    {
        ScoreboardConfig c;
        c.tBits = 8;
        const auto calib = randomValues(4096, 8, 11);
        const StaticScoreboard sb(c, calib);
        const auto tile = randomValues(256, 8, 13);
        report("static_si_tile", tile.size(),
               [&] { return sb.evaluateTile(tile).totalOps(); });
    }

    // ---- functional transitive GEMM vs dense reference ----------------
    {
        const MatI32 w = realLikeWeights(32, 256, 8, 17);
        const MatI32 in = randomActivations(256, 32, 8, 19);
        const uint64_t macs = w.rows() * w.cols() * in.cols();
        TransitiveGemmConfig c;
        c.scoreboard.tBits = 8;
        const TransitiveGemmEngine engine(c);
        report("transitive_gemm", macs, [&] {
            return static_cast<uint64_t>(
                engine.run(w, 8, in).output.at(0, 0));
        });
        report("dense_gemm_reference", macs, [&] {
            return static_cast<uint64_t>(denseGemm(w, in).at(0, 0));
        });
    }

    t.print();
    std::printf("(host timings; kernel dispatch %s; see BM history in "
                "BENCH_%s.json)\n",
                arch.c_str(), ctx.name().c_str());
    return 0;
}

} // namespace

TA_BENCHMARK("micro_kernels",
             "host-side micro-benchmarks of the simulator hot paths",
             runMicroKernels);
