#include "common/bitutil.h"

#include <algorithm>

namespace ta {

int
ceilLog2(uint32_t v)
{
    int l = 0;
    uint32_t p = 1;
    while (p < v) {
        p <<= 1;
        ++l;
    }
    return l;
}

std::vector<int>
setBits(uint32_t v)
{
    std::vector<int> bits;
    while (v) {
        int b = lowestSetBit(v);
        bits.push_back(b);
        v &= v - 1;
    }
    return bits;
}

std::vector<uint32_t>
hammingOrder(int t_bits)
{
    const uint32_t n = 1u << t_bits;
    std::vector<uint32_t> order(n);
    for (uint32_t i = 0; i < n; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [](uint32_t a, uint32_t b) {
                         int pa = popcount(a), pb = popcount(b);
                         return pa != pb ? pa < pb : a < b;
                     });
    return order;
}

} // namespace ta
