#include "eval/accuracy_proxy.h"

#include "workloads/generators.h"

namespace ta {

std::vector<std::string>
table3Models()
{
    return {"L-1 7B", "L-1 13B", "L-1 30B", "L-1 65B",
            "L-2 7B", "L-2 13B", "L-3 8B"};
}

AccuracyRow
evaluateQuantizer(const Quantizer &q, size_t rows, size_t cols,
                  uint64_t seed)
{
    const MatF w = gaussianWeights(rows, cols, seed);
    const QuantResult r = q.quantize(w);
    AccuracyRow row;
    row.scheme = q.name();
    row.sqnrDb = quantSqnr(w, r);
    row.mse = quantMse(w, r);
    return row;
}

std::vector<AccuracyRow>
evaluateTable3(size_t rows, size_t cols, uint64_t seed)
{
    // Paper Table 3 PPL values (WikiText), in table3Models() order.
    // -1 marks entries the paper leaves blank.
    struct Entry
    {
        const char *arch;
        std::unique_ptr<Quantizer> quant;
        std::vector<double> ppl;
    };
    std::vector<Entry> entries;
    entries.push_back({"Tender-4", std::make_unique<PerTensorQuantizer>(4),
                       {23.85, 13.68, 12.07, 8.85, 36.47, 55.08, 28.60}});
    entries.push_back({"BitFusion",
                       std::make_unique<PerTensorQuantizer>(8),
                       {9.50, 8.46, 6.70, 5.34, 10.68, 16.11, 22.56}});
    entries.push_back({"Olive",
                       std::make_unique<OutlierVictimQuantizer>(8),
                       {5.86, 5.28, 4.37, 3.80, 5.73, 5.06, 6.70}});
    entries.push_back({"Tender-8", std::make_unique<PerTensorQuantizer>(8),
                       {5.87, 5.28, 4.27, 3.74, 5.77, 5.09, 7.17}});
    entries.push_back({"BitVert",
                       std::make_unique<GroupQuantizer>(8, 128),
                       {-1, -1, -1, -1, -1, -1, 6.24}});
    entries.push_back({"ANT-group",
                       std::make_unique<AdaptiveTypeQuantizer>(8, 128),
                       {5.82, 5.20, 4.32, 3.76, 5.58, 5.20, 6.27}});
    entries.push_back({"TA-int4",
                       std::make_unique<GroupQuantizer>(4, 128),
                       {5.82, 5.20, 4.24, 3.66, 5.62, 5.01, 6.59}});
    entries.push_back({"TA-int8",
                       std::make_unique<GroupQuantizer>(8, 128),
                       {5.75, 5.14, 4.17, 3.57, 5.56, 4.95, 6.39}});

    std::vector<AccuracyRow> out;
    for (auto &e : entries) {
        AccuracyRow row = evaluateQuantizer(*e.quant, rows, cols, seed);
        row.arch = e.arch;
        row.paperPpl = e.ppl;
        out.push_back(std::move(row));
    }
    return out;
}

} // namespace ta
