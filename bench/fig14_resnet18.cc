/**
 * @file
 * Fig. 14: per-layer speedups on ResNet-18 (ImageNet, im2col GEMMs) for
 * BitFusion (=1x), ANT and TransArray. Following Sec. 5.10, TransArray
 * uses 4-bit quantization except the first convolution and the final FC
 * layer, which stay at 8 bits; ANT and BitFusion run their 8-bit CNN
 * configurations.
 */

#include <cstdio>
#include <cmath>

#include "baselines/baseline.h"
#include "common/table.h"
#include "core/accelerator.h"
#include "workloads/resnet18.h"

using namespace ta;

int
main()
{
    const WorkloadSuite s = resnet18Layers();
    // ResNet feature maps are small enough to stay on-chip between
    // fused layers, so the effective streaming bandwidth is far higher
    // than the LLM setting; model it as 102.4 B/cycle for everyone.
    const double cnn_bw = 102.4;
    auto bf = makeBaseline("BitFusion");
    auto ant = makeBaseline("ANT");
    bf->setDramBytesPerCycle(cnn_bw);
    ant->setDramBytesPerCycle(cnn_bw);
    // TransArray mixed precision for CNNs (Sec. 4.5): 4-bit activations
    // split each PPE into two, except the 8-bit edge layers.
    TransArrayAccelerator::Config tc;
    tc.sampleLimit = 64;
    tc.dramBytesPerCycle = cnn_bw;
    const TransArrayAccelerator ta_acc(tc);
    TransArrayAccelerator::Config tc4 = tc;
    tc4.actBits = 4;
    const TransArrayAccelerator ta_acc4(tc4);

    Table t("Fig. 14: ResNet-18 per-layer speedup over BitFusion");
    t.setHeader({"#", "Layer", "GEMM (NxKxM)", "BitFusion", "ANT",
                 "TransArray"});

    uint64_t bf_total = 0, ant_total = 0, ta_total = 0;
    uint64_t seed = 33;
    for (size_t i = 0; i < s.layers.size(); ++i) {
        const GemmLayerDesc &l = s.layers[i];
        // First conv and final FC keep 8-bit precision (Sec. 5.10).
        const bool edge = i == 0 || i + 1 == s.layers.size();
        const int ta_bits = edge ? 8 : 4;
        const int ant_bits = edge ? 8 : 4;
        const int act_bits = edge ? 8 : 4;

        const uint64_t c_bf = bf->runGemm(l.shape, 8, 8).cycles;
        const uint64_t c_ant =
            ant->runGemm(l.shape, ant_bits, act_bits).cycles;
        const TransArrayAccelerator &ta_sel = edge ? ta_acc : ta_acc4;
        const uint64_t c_ta =
            ta_sel.runShape(l.shape, ta_bits, seed++).cycles;
        bf_total += c_bf;
        ant_total += c_ant;
        ta_total += c_ta;

        char shape[64];
        std::snprintf(shape, sizeof(shape), "%llux%llux%llu",
                      static_cast<unsigned long long>(l.shape.n),
                      static_cast<unsigned long long>(l.shape.k),
                      static_cast<unsigned long long>(l.shape.m));
        t.addRow({std::to_string(i + 1), l.name, shape, "1.00",
                  Table::fmt(static_cast<double>(c_bf) / c_ant, 2),
                  Table::fmt(static_cast<double>(c_bf) / c_ta, 2)});
    }
    t.addRow({"-", "Total", "-", "1.00",
              Table::fmt(static_cast<double>(bf_total) / ant_total, 2),
              Table::fmt(static_cast<double>(bf_total) / ta_total, 2)});
    t.print();

    std::printf(
        "Shape check vs paper (Sec. 5.10): TransArray ~4.3x over\n"
        "BitFusion and ~2.2x over ANT in total; small late layers are\n"
        "memory-bound, so per-layer speedups taper toward the end.\n");
    return 0;
}
