#include "quant/matrix.h"

namespace ta {

MatI64
denseGemm(const MatI32 &w, const MatI32 &in)
{
    TA_ASSERT(w.cols() == in.rows(), "GEMM shape mismatch: w ", w.rows(),
              "x", w.cols(), " vs in ", in.rows(), "x", in.cols());
    MatI64 out(w.rows(), in.cols(), 0);
    for (size_t n = 0; n < w.rows(); ++n) {
        for (size_t k = 0; k < w.cols(); ++k) {
            const int64_t wv = w.at(n, k);
            if (wv == 0)
                continue;
            for (size_t m = 0; m < in.cols(); ++m)
                out.at(n, m) += wv * in.at(k, m);
        }
    }
    return out;
}

MatF
denseGemmF(const MatF &w, const MatF &in)
{
    TA_ASSERT(w.cols() == in.rows(), "GEMM shape mismatch");
    MatF out(w.rows(), in.cols(), 0.0f);
    for (size_t n = 0; n < w.rows(); ++n) {
        for (size_t k = 0; k < w.cols(); ++k) {
            const float wv = w.at(n, k);
            for (size_t m = 0; m < in.cols(); ++m)
                out.at(n, m) += wv * in.at(k, m);
        }
    }
    return out;
}

} // namespace ta
