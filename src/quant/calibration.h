/**
 * @file
 * Calibration flow for the static scoreboard (Sec. 3.3): for weight
 * tensors the TransRows come from the checkpoint itself; for activation
 * tensors a small calibration dataset is run through the (quantized)
 * model and every TransRow observed is recorded. The collector
 * accumulates TransRow histograms across batches and hands the static
 * scoreboard its value population.
 */

#ifndef TA_QUANT_CALIBRATION_H
#define TA_QUANT_CALIBRATION_H

#include <cstdint>
#include <vector>

#include "quant/bitslice.h"

namespace ta {

class TransRowCollector
{
  public:
    /** @param t_bits TransRow width T. */
    explicit TransRowCollector(int t_bits);

    int tBits() const { return tBits_; }

    /** Record every TransRow of one bit-sliced tensor (a batch). */
    void collect(const SlicedMatrix &tensor);

    /** Record raw TransRow values. */
    void collect(const std::vector<uint32_t> &values);

    /** Number of tensors/batches collected. */
    uint64_t batches() const { return batches_; }

    /** Total TransRows seen. */
    uint64_t totalRows() const { return totalRows_; }

    /** Distinct TransRow values seen. */
    uint32_t distinctValues() const;

    /** Occurrence count of one value. */
    uint64_t countOf(uint32_t value) const;

    /**
     * Coverage of a new tensor by the collected population: fraction of
     * its rows whose value was already seen. Calibration is "enough"
     * when this saturates (tested against Sec. 5.9's unique-value
     * statistics).
     */
    double coverage(const SlicedMatrix &tensor) const;

    /**
     * The value population for StaticScoreboard: every seen value,
     * replicated by a capped count so the scoreboard's load balancing
     * sees relative frequencies without unbounded memory.
     */
    std::vector<uint32_t> population(uint32_t count_cap = 16) const;

  private:
    int tBits_;
    std::vector<uint64_t> counts_;
    uint64_t batches_ = 0;
    uint64_t totalRows_ = 0;
};

} // namespace ta

#endif // TA_QUANT_CALIBRATION_H
