/**
 * @file
 * Shared timing + JSON schema for the host-performance kernel
 * benchmarks (`kernels`, `micro_kernels`). Both emit one metric group
 * per timed kernel K:
 *
 *   <K>_ns_per_call      mean wall-clock latency per call
 *   <K>_items_per_sec    items * calls / elapsed
 *   <K>_calls            timed calls within the budget
 *   <K>_arch             kernel backend the calls dispatched to
 *   <K>_checksum         result checksum (equal across backends)
 *   <K>_bytes_per_cycle  bytes * calls / TSC ticks (0 off x86-64)
 *
 * documented in docs/BENCH_SCHEMA.md. The checksum is the
 * determinism hook: it is a pure function of the kernel's fixed seeded
 * inputs, so two backends (or two hosts) must report the same value
 * even though every timing field is host-volatile.
 */

#ifndef TA_BENCH_KERNEL_REPORT_H
#define TA_BENCH_KERNEL_REPORT_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

#include "common/table.h"
#include "harness/harness.h"

namespace ta {
namespace benchkernels {

/** TSC tick counter on x86-64; 0 elsewhere (no fake bytes/cycle). */
inline uint64_t
cycleTicks()
{
#if defined(__x86_64__)
    return __rdtsc();
#else
    return 0;
#endif
}

struct KernelTiming
{
    double nsPerCall = 0;
    double itemsPerSec = 0;
    double bytesPerCycle = 0;
    uint64_t calls = 0;
    uint64_t checksum = 0;
};

/**
 * Run `fn` repeatedly for ~`budget_secs` (after one warm-up call) and
 * report the mean call latency; `items` scales the throughput column
 * and `bytes` the bytes/cycle column (0 = skip). `fn` returns its
 * result checksum, which doubles as the optimizer sink.
 */
inline KernelTiming
timeKernel(double budget_secs, uint64_t items, uint64_t bytes,
           const std::function<uint64_t()> &fn)
{
    using clock = std::chrono::steady_clock;
    KernelTiming r;
    r.checksum = fn(); // warm-up (first-touch allocations, caches)
    const clock::time_point start = clock::now();
    const uint64_t ticks0 = cycleTicks();
    double elapsed = 0;
    do {
        r.checksum = fn();
        ++r.calls;
        elapsed = std::chrono::duration<double>(clock::now() - start)
                      .count();
    } while (elapsed < budget_secs);
    const uint64_t ticks = cycleTicks() - ticks0;
    r.nsPerCall = elapsed * 1e9 / static_cast<double>(r.calls);
    r.itemsPerSec =
        static_cast<double>(items) * static_cast<double>(r.calls) /
        elapsed;
    if (bytes > 0 && ticks > 0)
        r.bytesPerCycle = static_cast<double>(bytes) *
                          static_cast<double>(r.calls) /
                          static_cast<double>(ticks);
    return r;
}

/**
 * Time one kernel and emit its metric group + table row. Returns the
 * timing (callers cross-verify checksums across backends).
 */
inline KernelTiming
reportKernel(HarnessContext &ctx, Table &t, double budget_secs,
             const std::string &name, const std::string &arch,
             uint64_t items, uint64_t bytes,
             const std::function<uint64_t()> &fn)
{
    const KernelTiming r = timeKernel(budget_secs, items, bytes, fn);
    t.addRow({name, arch, Table::fmt(r.nsPerCall, 0),
              Table::fmt(r.itemsPerSec, 0), std::to_string(r.calls)});
    ctx.metric(name + "_ns_per_call", r.nsPerCall);
    ctx.metric(name + "_items_per_sec", r.itemsPerSec);
    ctx.metric(name + "_calls", r.calls);
    ctx.metric(name + "_arch", arch);
    ctx.metric(name + "_checksum", r.checksum);
    ctx.metric(name + "_bytes_per_cycle", r.bytesPerCycle);
    return r;
}

} // namespace benchkernels
} // namespace ta

#endif // TA_BENCH_KERNEL_REPORT_H
