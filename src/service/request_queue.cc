#include "service/request_queue.h"

#include <algorithm>

namespace ta {

namespace {

/** Clamp an (already parser-validated) priority into the class range. */
int
classOf(const ServiceJob &job)
{
    return std::clamp(job.request.priority, 0,
                      RequestQueue::kPriorities - 1);
}

} // namespace

RequestQueue::RequestQueue(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity))
{
}

bool
RequestQueue::submit(ServiceJob job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_ || resident_ >= capacity_) {
            ++counters_.rejected;
            return false;
        }
        classes_[classOf(job)].push_back(std::move(job));
        ++resident_;
        ++counters_.admitted;
        counters_.peakDepth =
            std::max<uint64_t>(counters_.peakDepth, resident_);
    }
    cv_.notify_one();
    return true;
}

bool
RequestQueue::popBatch(size_t max_window, std::vector<ServiceJob> &out)
{
    out.clear();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || resident_ > 0; });
    if (resident_ == 0)
        return false; // closed and drained

    // Most urgent class first; FIFO within the class.
    int lead = kPriorities - 1;
    while (classes_[lead].empty())
        --lead;
    out.push_back(std::move(classes_[lead].front()));
    classes_[lead].pop_front();
    --resident_;
    // By value: push_back below may reallocate `out` and would leave a
    // reference into it dangling.
    const EngineKey key = out.front().key;
    // Coalesce same-engine jobs, highest class down and in arrival
    // order within a class; everything left behind keeps its relative
    // order for the next popBatch().
    const size_t window = std::max<size_t>(1, max_window);
    for (int p = kPriorities - 1; p >= 0 && out.size() < window; --p) {
        std::deque<ServiceJob> &cls = classes_[p];
        for (auto it = cls.begin();
             it != cls.end() && out.size() < window;) {
            if (it->key == key) {
                out.push_back(std::move(*it));
                it = cls.erase(it);
                --resident_;
            } else {
                ++it;
            }
        }
    }
    return true;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return resident_;
}

RequestQueue::Counters
RequestQueue::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

} // namespace ta
