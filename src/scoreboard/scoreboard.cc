#include "scoreboard/scoreboard.h"

#include <algorithm>
#include <cstddef>

#include "common/logging.h"
#include "kernels/kernel_table.h"

namespace ta {

uint64_t
Plan::prRows() const
{
    uint64_t n = 0;
    for (const auto &pn : nodes)
        if (pn.count > 0)
            ++n;
    return n;
}

uint64_t
Plan::frRows() const
{
    uint64_t n = 0;
    for (const auto &pn : nodes)
        if (pn.count > 1)
            n += pn.count - 1;
    return n;
}

uint64_t
Plan::trNodes() const
{
    uint64_t n = 0;
    for (const auto &pn : nodes)
        if (pn.materialized)
            ++n;
    return n;
}

uint64_t
Plan::outlierExtraOps() const
{
    uint64_t n = 0;
    for (const auto &pn : nodes)
        if (pn.outlier)
            n += popcount(pn.id) - 1;
    return n;
}

uint64_t
Plan::totalOps() const
{
    // Paper op model: every non-zero TransRow costs one accumulation
    // (PR: the prefix+input add; FR: the full-result reuse), every
    // materialized TR node costs one pass-through add, and outliers pay
    // their PopCount beyond the first add.
    return (numRows - zeroRows) + trNodes() + outlierExtraOps();
}

uint64_t
Plan::ppeOps() const
{
    uint64_t n = 0;
    for (const auto &pn : nodes)
        n += pn.outlier ? popcount(pn.id) : 1;
    return n;
}

uint64_t
Plan::apeOps() const
{
    return numRows - zeroRows;
}

std::vector<uint64_t>
Plan::laneOps() const
{
    std::vector<uint64_t> ops(config.lanes(), 0);
    for (const auto &pn : nodes) {
        TA_ASSERT(pn.lane >= 0 && pn.lane < config.lanes(),
                  "node ", pn.id, " has bad lane ", pn.lane);
        ops[pn.lane] += pn.outlier ? popcount(pn.id) : 1;
    }
    return ops;
}

Scoreboard::Scoreboard(ScoreboardConfig config)
    : config_(config), graph_(config.tBits)
{
    TA_ASSERT(config_.maxDistance >= 2,
              "maxDistance must be at least 2, got ", config_.maxDistance);
    TA_ASSERT(config_.maxDistance <= kMaxPrefixDistance,
              "maxDistance ", config_.maxDistance, " exceeds cap ",
              kMaxPrefixDistance);
}

Plan
Scoreboard::build(const std::vector<TransRow> &rows) const
{
    Scratch scratch;
    return build(rows, scratch);
}

Plan
Scoreboard::build(const std::vector<TransRow> &rows,
                  Scratch &scratch) const
{
    scratch.values.clear();
    scratch.values.reserve(rows.size());
    for (const auto &r : rows)
        scratch.values.push_back(r.value);
    return build(scratch.values, nullptr, scratch);
}

Plan
Scoreboard::build(const std::vector<uint32_t> &values) const
{
    return build(values, nullptr);
}

Plan
Scoreboard::build(const std::vector<uint32_t> &values,
                  PassStats *pass_stats) const
{
    Scratch scratch;
    return build(values, pass_stats, scratch);
}

Plan
Scoreboard::build(const std::vector<uint32_t> &values,
                  PassStats *pass_stats, Scratch &scratch) const
{
    const uint32_t num_nodes = graph_.numNodes();
    // assign() both sizes the arena on first use and resets every node
    // to its default state on reuse (NodeState is trivially copyable).
    std::vector<Scratch::NodeState> &nodes = scratch.nodes;
    nodes.assign(num_nodes, Scratch::NodeState{});

    Plan plan;
    plan.config = config_;
    plan.numRows = values.size();
    // ZR skip + per-node count histogram in one pass through the
    // dispatched row-scan kernel; the counters are the strided
    // NodeState::count fields of the scratch arena.
    if (!values.empty() &&
        !kernels().rowScan(
            values.data(), values.size(), num_nodes,
            reinterpret_cast<unsigned char *>(nodes.data()) +
                offsetof(Scratch::NodeState, count),
            sizeof(Scratch::NodeState), &plan.zeroRows)) {
        // Out-of-range row: re-scan scalar for the diagnostic value.
        for (uint32_t v : values)
            TA_ASSERT(v < num_nodes, "TransRow value ", v, " exceeds ",
                      config_.tBits, "-bit range");
    }

    forwardPass(nodes, pass_stats);
    backwardPass(nodes, pass_stats);
    balanceLanes(nodes, scratch.laneLoad, plan);
    return plan;
}

void
Scoreboard::forwardPass(std::vector<Scratch::NodeState> &nodes,
                        PassStats *pass_stats) const
{
    // Alg. 1: traverse in Hamming order so every node's parents are
    // finalized before the node propagates to its suffixes.
    for (NodeId idx : graph_.forwardOrder()) {
        Scratch::NodeState &n = nodes[idx];
        int dis = n.distance;
        if (dis >= config_.maxDistance && idx != 0)
            continue; // too far from any present prefix to be useful
        if (n.count > 0 || idx == 0)
            dis = 0; // will be executed: resets the chain distance
        const int d = dis + 1;
        if (d > config_.maxDistance)
            continue;
        if (pass_stats)
            ++pass_stats->forwardTouched;
        // Suffixes enumerated in place (idx with one 0-bit set,
        // ascending) instead of through graph_.suffixes(): this loop
        // runs once per touched node and must not allocate.
        for (int b = 0; b < config_.tBits; ++b) {
            const uint32_t bit = 1u << b;
            if (idx & bit)
                continue;
            Scratch::NodeState &suf = nodes[idx | bit];
            suf.prefixBitmaps[d - 1] |= bit;
            suf.distance = std::min(suf.distance, d);
            if (pass_stats)
                ++pass_stats->forwardUpdates;
        }
    }
}

void
Scoreboard::backwardPass(std::vector<Scratch::NodeState> &nodes,
                         PassStats *pass_stats) const
{
    // Alg. 2: reverse Hamming order. A present node at distance > 1 picks
    // the first candidate parent on a shortest path and materializes it as
    // a TR (pass-through) node; the sweep then extends the path downward
    // because materialized parents are processed later.
    const auto &order = graph_.forwardOrder();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const NodeId idx = *it;
        Scratch::NodeState &n = nodes[idx];
        const int dis = n.distance;
        const bool executed = n.count > 0 || n.materialized;
        if (pass_stats && dis < kInfDistance)
            ++pass_stats->backwardTouched;
        if (dis > 1 && dis < config_.maxDistance && executed) {
            const NeighborBitmap bm = n.prefixBitmaps[dis - 1];
            TA_ASSERT(bm != 0, "node ", idx, " at distance ", dis,
                      " has an empty prefix bitmap");
            const NodeId p = firstPrefix(idx, bm);
            n.chosenParent = p;
            n.hasChosenParent = true;
            Scratch::NodeState &pn = nodes[p];
            pn.suffixBitmap |= encodeSuffix(p, idx);
            if (pn.count == 0)
                pn.materialized = true;
            if (pass_stats)
                ++pass_stats->backwardUpdates;
        }
        // Keep only the prefix bitmap with the smallest distance
        // (Alg. 2 line 11).
        if (dis >= 1 && dis < kInfDistance) {
            for (int d = dis + 1; d <= config_.maxDistance; ++d)
                n.prefixBitmaps[d - 1] = 0;
        }
    }
}

void
Scoreboard::balanceLanes(std::vector<Scratch::NodeState> &nodes,
                         std::vector<uint64_t> &workload,
                         Plan &plan) const
{
    const int lanes = config_.lanes();
    workload.assign(lanes, 0);

    for (NodeId idx : graph_.forwardOrder()) {
        if (idx == 0)
            continue;
        Scratch::NodeState &n = nodes[idx];
        const bool executed = n.count > 0 || n.materialized;
        if (!executed)
            continue;

        PlanNode pn;
        pn.id = idx;
        pn.count = n.count;
        pn.materialized = n.materialized && n.count == 0;
        pn.distance = n.distance;

        uint64_t cost = 1 + n.count; // one PPE add + count APE accs
        if (n.hasChosenParent) {
            // Distance > 1: path fixed by the backward pass; inherit the
            // parent's lane so the chain stays inside one tree.
            pn.parent = n.chosenParent;
            pn.lane = nodes[pn.parent].lane;
        } else if (n.distance == 1) {
            // Candidate parents all carry a computed result (present
            // nodes or the root 0); pick the least-loaded lane
            // (round-robin-like supervision of Sec. 2.4). Candidates
            // are decoded in place — bit b of the distance-1 bitmap
            // names prefix idx with bit b cleared — in the same
            // ascending-bit order decodePrefixes used, so the chosen
            // parent is unchanged.
            const NeighborBitmap bm = n.prefixBitmaps[0];
            TA_ASSERT(bm != 0, "distance-1 node ", idx,
                      " without candidates");
            NodeId best = idx & ~(bm & (~bm + 1)); // lowest-bit prefix
            for (NeighborBitmap rest = bm; rest != 0;
                 rest &= rest - 1) {
                const NodeId c = idx & ~(rest & (~rest + 1));
                if (c == 0)
                    continue; // root: lane decided by own bit below
                if (best == 0 ||
                    (config_.balanceLanes &&
                     workload[nodes[c].lane] <
                         workload[nodes[best].lane])) {
                    best = c;
                }
            }
            pn.parent = best;
            if (best == 0) {
                // Tree root at level 1: pin to its bit lane.
                pn.lane = lowestSetBit(idx) % lanes;
            } else {
                pn.lane = nodes[best].lane;
            }
        } else {
            // No usable prefix: outlier, accumulated from scratch and
            // dispatched to the least-loaded lane (Sec. 5.2).
            pn.outlier = true;
            pn.parent = 0;
            pn.distance = kInfDistance;
            pn.lane = static_cast<int>(
                std::min_element(workload.begin(), workload.end()) -
                workload.begin());
            cost = popcount(idx) + n.count;
        }

        // Level-1 nodes whose best candidate was a present node still
        // root correctly: parent level >= 1 keeps partial order.
        n.lane = pn.lane;
        workload[pn.lane] += cost;
        plan.nodes.push_back(pn);
    }
}

} // namespace ta
