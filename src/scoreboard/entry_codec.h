/**
 * @file
 * Hardware bit-field codec for dynamic-scoreboard entries (Fig. 6). The
 * 4-bit layout in the paper is:
 *
 *   [0:3] Node | [4:11] Count | [12:15] Prefix Bitmap 1 |
 *   [16:27] Prefix Bitmaps 2,3,4 | [28:31] Suffix Bitmap |
 *   [32:33] Lane ID
 *
 * generalized here to any TransRow width T and prefix-bitmap count
 * (= maxDistance): node and each bitmap take T bits, Count 8 bits, and
 * Lane ID ceil(log2(T)) bits. Prefix/suffix bitmaps name neighbors by
 * which bit to flip (hasse/translators.h), which is what keeps the entry
 * tens of bits instead of storing T node indices — the paper's "T times"
 * memory saving.
 */

#ifndef TA_SCOREBOARD_ENTRY_CODEC_H
#define TA_SCOREBOARD_ENTRY_CODEC_H

#include <cstdint>
#include <vector>

#include "hasse/translators.h"

namespace ta {

/** An unpacked dynamic-scoreboard table entry. */
struct HwEntry
{
    NodeId node = 0;
    uint32_t count = 0; ///< saturates at 255 (8-bit field)
    std::vector<NeighborBitmap> prefixBitmaps; ///< index d-1
    NeighborBitmap suffixBitmap = 0;
    uint32_t laneId = 0;

    bool operator==(const HwEntry &o) const = default;
};

class SiEntryCodec
{
  public:
    /**
     * @param t_bits TransRow width T
     * @param max_distance number of prefix-bitmap fields
     */
    SiEntryCodec(int t_bits, int max_distance);

    int tBits() const { return tBits_; }
    int maxDistance() const { return maxDistance_; }

    /** Total bits of one packed entry. */
    uint32_t entryBits() const;

    /** Bytes of the whole table (2^T entries), for the buffer model. */
    uint64_t tableBytes() const;

    /** Pack an entry; fields out of range are fatal (count saturates). */
    uint64_t pack(const HwEntry &e) const;

    /** Unpack a packed word. */
    HwEntry unpack(uint64_t word) const;

  private:
    int tBits_;
    int maxDistance_;
    int laneBits_;
};

} // namespace ta

#endif // TA_SCOREBOARD_ENTRY_CODEC_H
