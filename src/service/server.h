/**
 * @file
 * Connection handling for `ta_serve`: line-delimited JSON over a pair
 * of file descriptors (stdio mode) or over TCP connections on
 * 127.0.0.1 (one reader thread per connection). Requests are pipelined
 * — a client may keep many ids in flight on one connection and
 * responses come back as their batch windows complete, matched by id,
 * possibly out of order. Control ops (ping/stats/shutdown) are
 * answered inline; "run" ops go through the ServiceScheduler.
 *
 * The shutdown op answers, then stops the server: stdio mode returns
 * after the current connection drains; TCP mode closes the listener
 * and unblocks every connection. A connection never closes with
 * responses still in flight — the writer waits for the scheduler to
 * deliver every outstanding response first.
 */

#ifndef TA_SERVICE_SERVER_H
#define TA_SERVICE_SERVER_H

#include <atomic>
#include <cstdint>

#include "service/scheduler.h"

namespace ta {

/**
 * Serve one connection: read request lines from `in_fd`, write
 * response lines to `out_fd`, until EOF or a shutdown op. Sets
 * `shutdown_flag` when the client asked the whole server to stop.
 * Blocks until every in-flight response has been written.
 */
void serveConnection(ServiceScheduler &sched, int in_fd, int out_fd,
                     std::atomic<bool> &shutdown_flag);

/** Serve stdin/stdout until EOF or shutdown. Returns 0. */
int serveStdio(ServiceScheduler &sched);

/**
 * Listen on 127.0.0.1:`port` and serve every connection until a
 * shutdown op arrives on any of them. Returns 0, or 1 when the socket
 * could not be opened.
 */
int serveTcp(ServiceScheduler &sched, uint16_t port);

} // namespace ta

#endif // TA_SERVICE_SERVER_H
