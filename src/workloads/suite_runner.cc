#include "workloads/suite_runner.h"

namespace ta {

SuiteRunResult
runSuite(const TransArrayAccelerator &acc, const WorkloadSuite &suite,
         int weight_bits, uint64_t seed)
{
    SuiteRunResult res;
    res.perLayer.reserve(suite.layers.size());
    for (const GemmLayerDesc &l : suite.layers) {
        LayerRun run = acc.runShape(l.shape, weight_bits, seed++);
        res.perLayer.push_back(run);
        // Apply the instance count to the model-level totals (cycles
        // scale linearly; the `count` copies are identical runs). Host
        // exec counters are NOT scaled: the layer was executed once on
        // the host regardless of its instance count.
        res.total += run;
        LayerRun copy = run;
        copy.exec = StatGroup{};
        for (uint64_t i = 1; i < l.count; ++i)
            res.total += copy;
    }
    return res;
}

uint64_t
suiteCycles(const TransArrayAccelerator &acc, const WorkloadSuite &suite,
            int weight_bits, uint64_t seed)
{
    uint64_t total = 0;
    for (const GemmLayerDesc &l : suite.layers)
        total += acc.runShape(l.shape, weight_bits, seed++).cycles *
                 l.count;
    return total;
}

} // namespace ta
