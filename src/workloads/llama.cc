#include "workloads/llama.h"

namespace ta {

namespace {

LlamaConfig
make(const std::string &name, uint64_t hidden, uint64_t ffn,
     uint64_t heads, uint64_t kv_heads, uint64_t layers)
{
    LlamaConfig c;
    c.name = name;
    c.hidden = hidden;
    c.ffn = ffn;
    c.heads = heads;
    c.kvHeads = kv_heads;
    c.layers = layers;
    return c;
}

} // namespace

LlamaConfig
llama1_7b()
{
    return make("LLaMA-1-7B", 4096, 11008, 32, 32, 32);
}

LlamaConfig
llama1_13b()
{
    return make("LLaMA-1-13B", 5120, 13824, 40, 40, 40);
}

LlamaConfig
llama1_30b()
{
    return make("LLaMA-1-30B", 6656, 17920, 52, 52, 60);
}

LlamaConfig
llama1_65b()
{
    return make("LLaMA-1-65B", 8192, 22016, 64, 64, 80);
}

LlamaConfig
llama2_7b()
{
    return make("LLaMA-2-7B", 4096, 11008, 32, 32, 32);
}

LlamaConfig
llama2_13b()
{
    return make("LLaMA-2-13B", 5120, 13824, 40, 40, 40);
}

LlamaConfig
llama3_8b()
{
    return make("LLaMA-3-8B", 4096, 14336, 32, 8, 32);
}

std::vector<LlamaConfig>
allLlamaModels()
{
    return {llama1_7b(), llama1_13b(), llama1_30b(), llama1_65b(),
            llama2_7b(), llama2_13b(), llama3_8b()};
}

WorkloadSuite
llamaFcLayers(const LlamaConfig &cfg)
{
    WorkloadSuite s;
    s.name = cfg.name + "-fc";
    const uint64_t h = cfg.hidden, f = cfg.ffn, m = cfg.seq;
    const uint64_t kv = cfg.kvDim();
    s.layers = {
        {"q_proj", {h, h, m}, 1, false},
        {"k_proj", {kv, h, m}, 1, false},
        {"v_proj", {kv, h, m}, 1, false},
        {"o_proj", {h, h, m}, 1, false},
        {"gate_proj", {f, h, m}, 1, false},
        {"up_proj", {f, h, m}, 1, false},
        {"down_proj", {h, f, m}, 1, false},
    };
    return s;
}

WorkloadSuite
llamaAttentionLayers(const LlamaConfig &cfg)
{
    WorkloadSuite s;
    s.name = cfg.name + "-attn";
    const uint64_t hd = cfg.headDim(), m = cfg.seq;
    // The K (resp. V) cache acts as the weight operand; queries (resp.
    // score rows) stream as activations. One GEMM per head.
    s.layers = {
        {"qk^T", {m, hd, m}, cfg.heads, true},
        {"pv", {hd, m, m}, cfg.heads, true},
    };
    return s;
}

} // namespace ta
