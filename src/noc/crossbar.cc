#include "noc/crossbar.h"

#include <algorithm>

#include "common/logging.h"

namespace ta {

CrossbarModel::CrossbarModel(uint32_t banks, uint32_t queue_depth)
    : banks_(banks), queueDepth_(queue_depth)
{
    TA_ASSERT(banks >= 1, "need at least one bank");
}

uint32_t
CrossbarModel::cyclesForGroup(const std::vector<uint32_t> &bank_ids)
{
    std::vector<uint32_t> mult(banks_, 0);
    for (uint32_t b : bank_ids) {
        TA_ASSERT(b < banks_, "bank id ", b, " out of range");
        ++mult[b];
    }
    const uint32_t worst =
        *std::max_element(mult.begin(), mult.end());
    stats_.add("groups");
    if (worst > 1)
        stats_.add("conflictGroups");
    stats_.add("writes", bank_ids.size());
    return std::max<uint32_t>(worst, 1);
}

uint64_t
CrossbarModel::simulateGroups(
    const std::vector<std::vector<uint32_t>> &groups)
{
    // Backlog model: each group nominally takes one issue cycle; excess
    // serialization (worst - 1) accumulates in the queue. While the
    // backlog fits in the queue the producer is not stalled; overflow
    // adds cycles immediately.
    uint64_t cycles = 0;
    uint64_t backlog = 0;
    for (const auto &g : groups) {
        const uint32_t need = cyclesForGroup(g);
        cycles += 1;
        backlog += need - 1;
        if (backlog > queueDepth_) {
            const uint64_t overflow = backlog - queueDepth_;
            cycles += overflow;
            stats_.add("stallCycles", overflow);
            backlog = queueDepth_;
        } else if (need == 1 && backlog > 0) {
            // A conflict-free group lets the queue drain one entry.
            --backlog;
        }
    }
    cycles += backlog; // final drain
    stats_.add("cycles", cycles);
    return cycles;
}

} // namespace ta
