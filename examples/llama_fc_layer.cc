/**
 * @file
 * Simulate one LLaMA-1-7B FC layer (q_proj: 4096 x 4096, prefill
 * sequence 2048) on the TransArray accelerator at 4-bit and 8-bit
 * weight precision, and compare cycles and energy against the Olive
 * and BitVert baselines — a single-layer slice of Fig. 10.
 *
 * Build & run:  ./build/examples/llama_fc_layer
 */

#include <cstdio>

#include "baselines/baseline.h"
#include "common/table.h"
#include "core/accelerator.h"
#include "workloads/llama.h"

using namespace ta;

int
main()
{
    const LlamaConfig model = llama1_7b();
    const GemmLayerDesc layer = llamaFcLayers(model).layers[0];
    std::printf("layer %s of %s: %llu x %llu x %llu (%.1f GMACs)\n\n",
                layer.name.c_str(), model.name.c_str(),
                static_cast<unsigned long long>(layer.shape.n),
                static_cast<unsigned long long>(layer.shape.k),
                static_cast<unsigned long long>(layer.shape.m),
                layer.shape.macs() / 1e9);

    TransArrayAccelerator::Config tc;
    tc.sampleLimit = 128;
    const TransArrayAccelerator ta_acc(tc);

    const LayerRun ta8 = ta_acc.runShape(layer.shape, 8, 1);
    const LayerRun ta4 = ta_acc.runShape(layer.shape, 4, 1);
    const LayerRun olive =
        makeBaseline("Olive")->runGemm(layer.shape, 8, 8);
    const LayerRun bitvert =
        makeBaseline("BitVert")->runGemm(layer.shape, 8, 8, 0.5);

    Table t("q_proj on four accelerators");
    t.setHeader({"Arch", "Cycles", "Time (ms @500MHz)", "Energy (uJ)",
                 "Speedup vs Olive"});
    auto add = [&](const char *name, const LayerRun &r) {
        t.addRow({name, std::to_string(r.cycles),
                  Table::fmt(r.cycles / 500e3, 3),
                  Table::fmt(r.energy.total() / 1e6, 1),
                  Table::fmt(static_cast<double>(olive.cycles) /
                                 r.cycles,
                             2)});
    };
    add("Olive (8-bit)", olive);
    add("BitVert (8-bit)", bitvert);
    add("TransArray-8bit", ta8);
    add("TransArray-4bit", ta4);
    t.print();

    std::printf("TA-4bit transitive density: %.2f%% of dense bit ops "
                "(lower bound 1/T = 12.5%%)\n",
                100.0 * ta4.sparsity.totalDensity());
    return 0;
}
