/**
 * @file
 * The cluster subsystem's contracts: routing-policy unit behavior
 * (affinity hash stability, least-outstanding tie-breaks), and the
 * end-to-end determinism contract over real `ta_serve` replica
 * processes — routed responses are byte-identical to standalone
 * serial runs for every {replica count, policy, submit concurrency}
 * combination, and a replica SIGKILLed mid-trace is restarted by the
 * ReplicaManager with no lost and no duplicated responses (the TSan
 * CI job runs the same tests against the router's internals).
 *
 * The replica binary is `./ta_serve` (tests run from the build
 * directory) unless TA_SERVE_BIN overrides it.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "cluster/fault_injector.h"
#include "cluster/router.h"
#include "obs/trace.h"
#include "service/protocol.h"

namespace ta {
namespace {

const char *
serveBin()
{
    const char *env = std::getenv("TA_SERVE_BIN");
    return env != nullptr && env[0] != '\0' ? env : "./ta_serve";
}

ReplicaProcessConfig
quickClusterConfig(int replicas)
{
    ReplicaProcessConfig cfg;
    cfg.serveBinary = serveBin();
    cfg.count = replicas;
    cfg.serveArgs = {"--window", "4", "--sessions", "2"};
    cfg.backoffInitialMs = 50;
    // Effectively disable periodic health probes: on an oversubscribed
    // ctest host a probe can time out against a perfectly healthy
    // replica and restart it mid-test, resetting the counters the
    // stats assertions check. Crash detection is waitpid-based and
    // unaffected; the probe path itself is exercised by the CI
    // cluster-smoke job's default 500 ms cadence.
    cfg.healthIntervalMs = 60 * 1000;
    return cfg;
}

/** Mixed engines (maxdist / static vary), tiny shapes. */
std::vector<ServiceRequest>
mixedClusterTrace()
{
    std::vector<ServiceRequest> trace;
    ServiceRequest r;
    r.samples = 8;
    for (int rep = 0; rep < 2; ++rep) {
        r.shape = {128, 128, 64};
        r.wbits = 4;
        r.seed = 21;
        r.maxdist = 4;
        r.useStatic = false;
        trace.push_back(r);
        r.shape = {96, 256, 64};
        r.wbits = 8;
        r.seed = 22;
        r.maxdist = 3; // second engine key
        trace.push_back(r);
        r.shape = {64, 128, 96};
        r.wbits = 6;
        r.seed = 23;
        r.maxdist = 5; // third engine key
        trace.push_back(r);
        r.shape = {128, 64, 64};
        r.wbits = 4;
        r.seed = 24;
        r.maxdist = 4;
        r.useStatic = true; // fourth engine key
        trace.push_back(r);
    }
    return trace;
}

/** One engine key only — the affinity crash test pins one slot. */
std::vector<ServiceRequest>
singleKeyTrace(size_t count)
{
    std::vector<ServiceRequest> trace;
    ServiceRequest r;
    r.samples = 8;
    for (size_t i = 0; i < count; ++i) {
        r.shape = {96 + 32 * (i % 3), 128, 64};
        r.wbits = i % 2 == 0 ? 4 : 8;
        r.seed = 100 + i;
        trace.push_back(r);
    }
    return trace;
}

/** Standalone serial oracle (fresh single-threaded engines). */
std::vector<std::string>
standaloneResponses(const std::vector<ServiceRequest> &trace)
{
    std::map<EngineKey, std::unique_ptr<TransArrayAccelerator>>
        engines;
    std::vector<std::string> out;
    for (const ServiceRequest &req : trace) {
        const EngineKey key = engineKeyOf(req);
        auto it = engines.find(key);
        if (it == engines.end())
            it = engines
                     .emplace(key,
                              std::make_unique<TransArrayAccelerator>(
                                  engineConfig(key, 1)))
                     .first;
        out.push_back(serializeResponse(
            req,
            it->second->runShape(req.shape, req.wbits, req.seed)));
    }
    return out;
}

/**
 * Route the whole trace from `concurrency` submitter threads;
 * `on_response(i)` fires per delivery. Returns the response line per
 * trace index and asserts exactly-once delivery.
 */
std::vector<std::string>
routeAll(Router &router, const std::vector<ServiceRequest> &trace,
         size_t concurrency,
         std::function<void(size_t)> on_response = nullptr)
{
    // Responders run on router reader threads and hold this state by
    // shared_ptr, so even a (buggy) late duplicate delivery could
    // never touch freed test-stack memory.
    struct State
    {
        explicit State(size_t n) : responses(n), done(n)
        {
            for (size_t i = 0; i < n; ++i)
                deliveries.push_back(
                    std::make_unique<std::atomic<int>>(0));
        }
        std::vector<std::string> responses;
        std::vector<std::unique_ptr<std::atomic<int>>> deliveries;
        std::vector<std::promise<void>> done;
        std::function<void(size_t)> on_response;
    };
    auto state = std::make_shared<State>(trace.size());
    state->on_response = std::move(on_response);
    std::atomic<size_t> next{0};
    std::vector<std::thread> submitters;
    for (size_t c = 0; c < concurrency; ++c) {
        submitters.emplace_back([&router, &trace, &next, state] {
            while (true) {
                const size_t i = next.fetch_add(1);
                if (i >= trace.size())
                    return;
                ServiceRequest req = trace[i];
                req.id = i + 1;
                router.submit(
                    req, [state, i](const std::string &line) {
                        if (state->deliveries[i]->fetch_add(1) == 0) {
                            state->responses[i] = line;
                            if (state->on_response)
                                state->on_response(i);
                            state->done[i].set_value();
                        }
                    });
            }
        });
    }
    for (std::thread &t : submitters)
        t.join();
    for (std::promise<void> &p : state->done)
        p.get_future().wait();
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(state->deliveries[i]->load(), 1)
            << "trace " << i << " delivered more than once";
    return state->responses;
}

// ---- policy units (no processes) ----------------------------------------

TEST(RouterPolicy, AffinityHashIsStableAndSpreads)
{
    const std::vector<ServiceRequest> trace = mixedClusterTrace();
    for (const ServiceRequest &req : trace) {
        const EngineKey key = engineKeyOf(req);
        // Pure function: identical on every call (and therefore
        // across replica restarts and router restarts).
        for (int n : {1, 2, 3, 4, 16}) {
            const int first = affinityIndexOf(key, n);
            EXPECT_EQ(first, affinityIndexOf(key, n));
            EXPECT_GE(first, 0);
            EXPECT_LT(first, n);
        }
    }
    // Distinct keys must not all collapse onto one slot of 4.
    std::vector<bool> used(4, false);
    for (const ServiceRequest &req : trace)
        used[affinityIndexOf(engineKeyOf(req), 4)] = true;
    int distinct = 0;
    for (bool u : used)
        distinct += u ? 1 : 0;
    EXPECT_GT(distinct, 1);
}

TEST(RouterPolicy, LeastOutstandingTieBreaksLowestIndex)
{
    // All idle: lowest index wins the tie.
    EXPECT_EQ(pickLeastOutstanding({0, 0, 0}, {true, true, true}), 0);
    // Strictly fewest outstanding wins.
    EXPECT_EQ(pickLeastOutstanding({2, 1, 5}, {true, true, true}), 1);
    // Ties inside a subset still break to the lowest index.
    EXPECT_EQ(pickLeastOutstanding({3, 1, 1}, {true, true, true}), 1);
    // Ineligible (down / full) slots are skipped even when idle.
    EXPECT_EQ(pickLeastOutstanding({0, 4, 2}, {false, true, true}),
              2);
    // Nothing eligible: no choice.
    EXPECT_EQ(pickLeastOutstanding({1, 1}, {false, false}), -1);
}

TEST(RouterPolicy, ParseAndName)
{
    RoutePolicy p;
    ASSERT_TRUE(parseRoutePolicy("round_robin", p));
    EXPECT_EQ(p, RoutePolicy::RoundRobin);
    ASSERT_TRUE(parseRoutePolicy("least_outstanding", p));
    EXPECT_EQ(p, RoutePolicy::LeastOutstanding);
    ASSERT_TRUE(parseRoutePolicy("affinity", p));
    EXPECT_EQ(p, RoutePolicy::Affinity);
    EXPECT_FALSE(parseRoutePolicy("random", p));
    EXPECT_STREQ(routePolicyName(RoutePolicy::Affinity), "affinity");
}

// ---- end-to-end determinism over real replicas --------------------------

TEST(ClusterDeterminism, ByteIdenticalAcrossReplicasPoliciesConcurrency)
{
    std::vector<ServiceRequest> trace = mixedClusterTrace();
    for (size_t i = 0; i < trace.size(); ++i)
        trace[i].id = i + 1;
    const std::vector<std::string> expect =
        standaloneResponses(trace);

    for (const int replicas : {1, 2, 4}) {
        ReplicaManager manager(quickClusterConfig(replicas));
        ASSERT_TRUE(manager.start())
            << "replicas failed to start; is " << serveBin()
            << " built?";
        for (const RoutePolicy policy :
             {RoutePolicy::RoundRobin, RoutePolicy::LeastOutstanding,
              RoutePolicy::Affinity}) {
            RouterConfig rcfg;
            rcfg.policy = policy;
            Router router(rcfg, manager);
            router.start();
            for (const size_t concurrency : {size_t{1}, size_t{8}}) {
                const std::vector<std::string> got =
                    routeAll(router, trace, concurrency);
                for (size_t i = 0; i < trace.size(); ++i)
                    EXPECT_EQ(got[i], expect[i])
                        << "replicas " << replicas << " policy "
                        << routePolicyName(policy) << " concurrency "
                        << concurrency << " trace " << i;
            }
            router.stop();
        }
        manager.stop();
    }
}

TEST(ClusterResilience, CrashedReplicaRestartsNoLostNoDuplicated)
{
    constexpr int kReplicas = 3;
    constexpr size_t kRequests = 32;
    std::vector<ServiceRequest> trace = singleKeyTrace(kRequests);
    for (size_t i = 0; i < trace.size(); ++i)
        trace[i].id = i + 1;
    const std::vector<std::string> expect =
        standaloneResponses(trace);
    const int home =
        affinityIndexOf(engineKeyOf(trace.front()), kReplicas);

    ReplicaManager manager(quickClusterConfig(kReplicas));
    ASSERT_TRUE(manager.start());
    RouterConfig rcfg;
    rcfg.policy = RoutePolicy::Affinity;
    Router router(rcfg, manager);
    router.start();

    const pid_t victim = manager.pidOf(home);
    ASSERT_GT(victim, 0);

    // SIGKILL the affinity home slot once a few responses are in:
    // requests in flight on it must be re-dispatched, not lost, and
    // the slot must come back (bounded backoff) for the rest.
    std::atomic<size_t> delivered{0};
    std::atomic<bool> killed{false};
    const std::vector<std::string> got = routeAll(
        router, trace, 8, [&](size_t) {
            if (delivered.fetch_add(1) + 1 == 6 &&
                !killed.exchange(true))
                ::kill(victim, SIGKILL);
        });

    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(got[i], expect[i]) << "trace " << i;
    EXPECT_TRUE(killed.load());
    EXPECT_GE(manager.restarts(), 1u);

    // Affinity stability across the restart: every request was
    // forwarded to the home slot (retries wait for its restart
    // instead of straying), so the other slots saw nothing.
    const RouterCounters counters = router.counters();
    EXPECT_EQ(counters.failed, 0u);
    for (int i = 0; i < kReplicas; ++i) {
        if (i == home)
            EXPECT_EQ(counters.perReplica[i], counters.forwarded);
        else
            EXPECT_EQ(counters.perReplica[i], 0u) << "slot " << i;
    }
    // The home slot restarted under a new pid.
    EXPECT_NE(manager.pidOf(home), victim);
    EXPECT_TRUE(manager.endpoint(home).up);

    router.stop();
    manager.stop();
}

TEST(ClusterStats, AggregatesAcrossReplicas)
{
    std::vector<ServiceRequest> trace = mixedClusterTrace();
    ReplicaManager manager(quickClusterConfig(2));
    ASSERT_TRUE(manager.start());
    RouterConfig rcfg;
    rcfg.policy = RoutePolicy::RoundRobin;
    Router router(rcfg, manager);
    router.start();

    routeAll(router, trace, 4);
    const std::string line = router.statsLine(77);
    std::vector<std::pair<std::string, std::string>> kvs;
    std::string err;
    ASSERT_TRUE(parseJsonFlat(line, kvs, err)) << err << ": " << line;
    std::map<std::string, std::string> stats(kvs.begin(), kvs.end());
    EXPECT_EQ(stats["id"], "77");
    EXPECT_EQ(stats["ok"], "1");
    EXPECT_EQ(stats["replicas"], "2");
    // The strict counter equalities assume no replica restarted
    // mid-test; an overloaded host can in principle provoke one, and
    // then the restarted replica's counters reset (delivery is still
    // exactly-once — the determinism tests pin that).
    if (manager.restarts() == 0) {
        EXPECT_EQ(stats["replicas_up"], "2");
        EXPECT_EQ(stats["replicas_replied"], "2");
        // Every request was served exactly once across the cluster.
        EXPECT_EQ(stats["served"], std::to_string(trace.size()));
        EXPECT_EQ(stats["router_forwarded"],
                  std::to_string(trace.size()));
        // Round-robin over 2 replicas touches both.
        const RouterCounters counters = router.counters();
        EXPECT_GT(counters.perReplica[0], 0u);
        EXPECT_GT(counters.perReplica[1], 0u);
    }

    router.stop();
    manager.stop();
}

// ---- degradation: timeouts, retry budgets, shedding ----------------------

TEST(ClusterDegradation, BlackholedReplicaTimesOutAndRedispatches)
{
    // A SIGSTOPped replica keeps its connection open, so only the
    // per-attempt timeout can recover requests stuck on it. The
    // FaultInjector stalls slot 0 for 800 ms; every request must
    // still complete exactly once (routeAll asserts) with
    // byte-identical responses, and the timeout/redispatch counters
    // must show the recovery actually took that path.
    std::vector<ServiceRequest> trace = mixedClusterTrace();
    for (size_t i = 0; i < trace.size(); ++i)
        trace[i].id = i + 1;
    const std::vector<std::string> expect =
        standaloneResponses(trace);

    ReplicaManager manager(quickClusterConfig(2));
    ASSERT_TRUE(manager.start());
    RouterConfig rcfg;
    rcfg.policy = RoutePolicy::LeastOutstanding;
    rcfg.requestTimeoutMs = 300;
    rcfg.maxRedispatch = 50; // generous: the stall ends, shed never
    Router router(rcfg, manager);
    router.start();

    FaultPlan plan;
    FaultEvent ev;
    ev.kind = FaultKind::Blackhole;
    ev.atRequest = 0;
    ev.slot = 0;
    ev.durationMs = 800;
    plan.events.push_back(ev);
    FaultInjector injector(manager, plan, /*seed=*/7);
    injector.onRequestIssued(0);

    const std::vector<std::string> got = routeAll(router, trace, 4);
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(got[i], expect[i]) << "trace " << i;

    const RouterCounters counters = router.counters();
    EXPECT_GE(counters.timedOut, 1u);
    EXPECT_GE(counters.retried, 1u);
    EXPECT_EQ(counters.failed, 0u);
    EXPECT_EQ(counters.shed, 0u);
    EXPECT_EQ(injector.counters().blackholes, 1u);

    router.stop();
    manager.stop();
}

TEST(ClusterDegradation, RetryBudgetExhaustionShedsInsteadOfHanging)
{
    // One replica, stalled for far longer than the budget can cover:
    // the request must come back as an explicit `overloaded` protocol
    // error within a bounded time — never a hang, never silence.
    ReplicaManager manager(quickClusterConfig(1));
    ASSERT_TRUE(manager.start());
    RouterConfig rcfg;
    rcfg.policy = RoutePolicy::Affinity;
    rcfg.requestTimeoutMs = 150;
    rcfg.maxRedispatch = 1;
    Router router(rcfg, manager);
    router.start();

    const pid_t victim = manager.pidOf(0);
    ASSERT_GT(victim, 0);
    ASSERT_EQ(::kill(victim, SIGSTOP), 0);

    ServiceRequest req = singleKeyTrace(1).front();
    req.id = 1;
    std::promise<std::string> prom;
    std::future<std::string> fut = prom.get_future();
    router.submit(req, [&prom](const std::string &line) {
        prom.set_value(line);
    });
    // Budget 1 = two attempts of 150 ms plus backoff; 20 s is pure
    // headroom for a loaded host, not an expected wait.
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(20)),
              std::future_status::ready)
        << "request hung after retry budget exhaustion";
    const std::string line = fut.get();
    EXPECT_TRUE(isOverloadedLine(line)) << line;
    EXPECT_NE(line.find("retry budget"), std::string::npos) << line;

    const RouterCounters counters = router.counters();
    EXPECT_GE(counters.shed, 1u);
    EXPECT_GE(counters.timedOut, 2u);

    ASSERT_EQ(::kill(victim, SIGCONT), 0);
    router.stop();
    manager.stop();
}

TEST(ClusterDegradation, RetryBackoffIsSeededJitteredAndBounded)
{
    // Deterministic: same (base, attempt, seed, seq) → same delay.
    for (int attempt = 1; attempt <= 10; ++attempt)
        EXPECT_EQ(retryBackoffMs(10, attempt, 42, 7),
                  retryBackoffMs(10, attempt, 42, 7));
    // Jittered: different sequence numbers de-synchronize retries.
    bool differs = false;
    for (uint64_t seq = 0; seq < 32 && !differs; ++seq)
        differs = retryBackoffMs(10, 1, 42, seq) !=
                  retryBackoffMs(10, 1, 42, seq + 1);
    EXPECT_TRUE(differs);
    // Bounded: never negative, never beyond cap + jitter, and the
    // exponential component grows with the attempt.
    for (int attempt = 1; attempt <= 20; ++attempt) {
        const int ms = retryBackoffMs(10, attempt, 1, attempt);
        EXPECT_GE(ms, 10 << std::min(attempt - 1, 6));
        EXPECT_LE(ms, 2000 + 10);
    }
}

// ---- autoscaling ---------------------------------------------------------

TEST(ClusterAutoscale, ScalesUpUnderPressureAndBackDownWhenIdle)
{
    ReplicaProcessConfig cfg = quickClusterConfig(1);
    cfg.autoscale.maxReplicas = 2;
    cfg.autoscale.upDepthPerReplica = 2;
    cfg.autoscale.downDepthPerReplica = 1;
    cfg.autoscale.holdMs = 50;
    cfg.autoscale.cooldownMs = 100;
    ReplicaManager manager(cfg);
    ASSERT_TRUE(manager.start());
    // The slot array is fixed at maxReplicas; only activation moves.
    EXPECT_EQ(manager.count(), 2);
    EXPECT_EQ(manager.activeCount(), 1);
    EXPECT_TRUE(manager.endpoint(1).retired);

    const auto waitActive = [&](int want) {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (manager.activeCount() != want &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        return manager.activeCount() == want;
    };

    manager.reportQueuePressure(16); // far above 2 * active
    EXPECT_TRUE(waitActive(2)) << "no scale-up under pressure";
    EXPECT_GE(manager.scaleUps(), 1u);
    EXPECT_FALSE(manager.endpoint(1).retired);

    manager.reportQueuePressure(0);
    EXPECT_TRUE(waitActive(1)) << "no scale-down when idle";
    EXPECT_GE(manager.scaleDowns(), 1u);
    EXPECT_TRUE(manager.endpoint(1).retired);
    // Never below the configured floor.
    EXPECT_FALSE(manager.endpoint(0).retired);

    manager.stop();
}

// ---- abandonment reporting -----------------------------------------------

TEST(ClusterStats, ReportsAbandonedSlots)
{
    ReplicaProcessConfig cfg = quickClusterConfig(2);
    cfg.maxRestarts = 0; // first crash abandons the slot
    cfg.backoffInitialMs = 10;
    ReplicaManager manager(cfg);
    ASSERT_TRUE(manager.start());
    RouterConfig rcfg;
    rcfg.policy = RoutePolicy::RoundRobin;
    Router router(rcfg, manager);
    router.start();

    const pid_t victim = manager.pidOf(1);
    ASSERT_GT(victim, 0);
    ASSERT_EQ(::kill(victim, SIGKILL), 0);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (manager.abandonedCount() != 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(manager.abandonedCount(), 1);
    EXPECT_EQ(manager.activeCount(), 1);

    const std::string line = router.statsLine(9);
    std::vector<std::pair<std::string, std::string>> kvs;
    std::string err;
    ASSERT_TRUE(parseJsonFlat(line, kvs, err)) << err << ": " << line;
    std::map<std::string, std::string> stats(kvs.begin(), kvs.end());
    EXPECT_EQ(stats["replicas_abandoned"], "1");
    EXPECT_EQ(stats["replicas_active"], "1");

    // The surviving replica still serves.
    std::vector<ServiceRequest> trace = singleKeyTrace(4);
    for (size_t i = 0; i < trace.size(); ++i)
        trace[i].id = i + 1;
    const std::vector<std::string> expect =
        standaloneResponses(trace);
    const std::vector<std::string> got = routeAll(router, trace, 2);
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(got[i], expect[i]) << "trace " << i;

    router.stop();
    manager.stop();
}

// ---- trace propagation across redispatch ---------------------------------

/** Slurp a whole file; empty string when absent. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    if (!in.good())
        return "";
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Trace-id hex of every `"name":"<name>"` event in a flushed trace
 *  file (the event's args follow its name field). */
std::vector<std::string>
traceIdsOfSpans(const std::string &text, const std::string &name)
{
    std::vector<std::string> ids;
    const std::string name_needle = "\"name\":\"" + name + "\"";
    const std::string trace_needle = "\"trace\":\"";
    for (size_t pos = text.find(name_needle);
         pos != std::string::npos;
         pos = text.find(name_needle, pos + name_needle.size())) {
        const size_t t = text.find(trace_needle, pos);
        if (t == std::string::npos)
            break;
        const size_t begin = t + trace_needle.size();
        ids.push_back(
            text.substr(begin, text.find('"', begin) - begin));
    }
    return ids;
}

// Declared last in this file: the process-global tracer is sticky
// (enable has no inverse), and every earlier test must run untraced.
TEST(ClusterTracing, TraceSurvivesSigkillRedispatchExactlyOnce)
{
    constexpr int kReplicas = 3;
    constexpr size_t kRequests = 32;
    std::vector<ServiceRequest> trace = singleKeyTrace(kRequests);
    std::set<std::string> minted;
    for (size_t i = 0; i < trace.size(); ++i) {
        trace[i].id = i + 1;
        trace[i].traceId = obs::mintTraceId(i + 1);
        minted.insert(obs::traceIdHex(trace[i].traceId));
    }
    // Trace context must be invisible in response bytes: the oracle
    // of the stamped trace is the oracle of the unstamped one.
    const std::vector<std::string> expect =
        standaloneResponses(trace);

    const std::string base = "test_cluster_trace.json";
    for (const std::string &path :
         {base + ".replica0.json", base + ".replica1.json",
          base + ".replica2.json", base + ".local.json"})
        std::remove(path.c_str());

    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.enable(base + ".local.json", "test_cluster");
    ASSERT_TRUE(tracer.enabled());
    const uint64_t spans_before = tracer.spanCount();

    ReplicaProcessConfig cfg = quickClusterConfig(kReplicas);
    cfg.traceOutBase = base; // replicas flush base.replica<i>.json
    ReplicaManager manager(cfg);
    ASSERT_TRUE(manager.start());
    RouterConfig rcfg;
    rcfg.policy = RoutePolicy::Affinity;
    Router router(rcfg, manager);
    router.start();

    const int home =
        affinityIndexOf(engineKeyOf(trace.front()), kReplicas);
    const pid_t victim = manager.pidOf(home);
    ASSERT_GT(victim, 0);

    std::atomic<size_t> delivered{0};
    std::atomic<bool> killed{false};
    const std::vector<std::string> got = routeAll(
        router, trace, 8, [&](size_t) {
            if (delivered.fetch_add(1) + 1 == 6 &&
                !killed.exchange(true))
                ::kill(victim, SIGKILL);
        });
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(got[i], expect[i]) << "trace " << i;
    EXPECT_TRUE(killed.load());
    EXPECT_GE(manager.restarts(), 1u);

    // The "route" span wraps the responder, so redispatch after the
    // SIGKILL must not duplicate it: exactly one span per request.
    EXPECT_EQ(tracer.spanCount() - spans_before, kRequests);

    router.stop();
    manager.stop(); // surviving replicas flush their trace files

    // Replica-side spans: every exec span carries one of the minted
    // trace ids (the context crossed the wire, including on the
    // re-dispatched requests), and no trace id executed twice among
    // the flushed files. The SIGKILLed process never flushed, so its
    // spans vanish rather than duplicate — the ids may be a subset.
    std::vector<std::string> exec_ids;
    for (int i = 0; i < kReplicas; ++i) {
        const std::string text =
            slurp(base + ".replica" + std::to_string(i) + ".json");
        const std::vector<std::string> ids =
            traceIdsOfSpans(text, "exec");
        exec_ids.insert(exec_ids.end(), ids.begin(), ids.end());
    }
    EXPECT_FALSE(exec_ids.empty());
    std::set<std::string> distinct;
    for (const std::string &id : exec_ids) {
        EXPECT_EQ(minted.count(id), 1u) << "foreign trace id " << id;
        EXPECT_TRUE(distinct.insert(id).second)
            << "trace id " << id << " executed twice after flush";
    }

    ASSERT_TRUE(tracer.flush());
    const std::vector<std::string> route_ids =
        traceIdsOfSpans(slurp(base + ".local.json"), "route");
    EXPECT_EQ(route_ids.size(), kRequests);
    for (const std::string &id : route_ids)
        EXPECT_EQ(minted.count(id), 1u) << "foreign trace id " << id;

    for (const std::string &path :
         {base + ".replica0.json", base + ".replica1.json",
          base + ".replica2.json", base + ".local.json"})
        std::remove(path.c_str());
}

} // namespace
} // namespace ta
