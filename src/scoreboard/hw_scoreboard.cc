#include "scoreboard/hw_scoreboard.h"

#include "common/logging.h"

namespace ta {

namespace {

ScoreboardConfig
toAlgoConfig(const HwScoreboard::Config &c)
{
    ScoreboardConfig sc;
    sc.tBits = c.tBits;
    sc.maxDistance = c.maxDistance;
    return sc;
}

} // namespace

HwScoreboard::HwScoreboard(Config config)
    : config_(config), scoreboard_(toAlgoConfig(config)),
      sorter_(config.sorterCapacity),
      codec_(config.tBits, config.maxDistance)
{
}

uint64_t
HwScoreboard::tableBytes() const
{
    return 2 * codec_.tableBytes(); // two T-way tables (Table 1)
}

HwScoreboard::Result
HwScoreboard::process(const std::vector<TransRow> &rows) const
{
    Result r;

    // Stage 0: PopCount sort into Hamming order (pipelined network).
    const auto sorted = sorter_.sort(rows);
    r.sortCycles = sorter_.sortCycles(rows.size());

    // Stage 1: record counts. T rows update the banked Count fields per
    // cycle; same-node updates coalesce in the bank port.
    std::vector<uint32_t> values;
    values.reserve(sorted.size());
    uint64_t nonzero = 0;
    for (const auto &row : sorted) {
        values.push_back(row.value);
        nonzero += row.value != 0;
    }
    r.recordCycles = ceilDiv(nonzero, config_.portCount());

    // Stage 2+3: forward and backward passes over the node tables.
    // Work counters come from the algorithmic engine, which the
    // hardware mirrors exactly; each pass retires portCount() node
    // visits per cycle.
    PassStats ps;
    r.plan = scoreboard_.build(values, &ps);
    r.forwardCycles = ceilDiv(ps.forwardTouched, config_.portCount());
    r.backwardCycles =
        ceilDiv(ps.backwardTouched, config_.portCount());
    r.tableWrites = ps.forwardUpdates + ps.backwardUpdates + nonzero;

    r.si = ScoreboardInfo::fromPlan(r.plan);
    return r;
}

} // namespace ta
