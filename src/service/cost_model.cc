#include "service/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/bitutil.h"
#include "common/stats.h"

namespace ta {

namespace {

/** Coefficient names, fixed file order (docs/BENCH_SCHEMA.md). */
constexpr const char *kCoeffNames[CostFeatures::kCount] = {
    "base", "sampled_subtile", "sliced_bit", "static_subtile",
    "miss_subtile",
};

constexpr const char *kFileVersion = "ta-cost-model v1";

/** FNV-1a 64-bit over a byte range; the coefficients file trailer. */
uint64_t
fnv1a64(const char *data, size_t len)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

/** Strict full-consume double parse (finite values only). */
bool
parseDoubleStrict(const std::string &raw, double &out)
{
    if (raw.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(raw.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v))
        return false;
    out = v;
    return true;
}

/**
 * Solve the dense symmetric system A x = b over the `active` feature
 * subset by Gaussian elimination with partial pivoting. A near-zero
 * pivot (a feature column with no variation in the battery) drops
 * that feature from the active set and signals a retry.
 */
bool
solveActive(const std::array<std::array<double, CostFeatures::kCount>,
                             CostFeatures::kCount> &A,
            const std::array<double, CostFeatures::kCount> &b,
            std::vector<size_t> &active,
            std::array<double, CostFeatures::kCount> &x)
{
    const size_t n = active.size();
    // Dense copy restricted to the active columns.
    std::vector<std::vector<double>> m(n, std::vector<double>(n + 1));
    for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < n; ++c)
            m[r][c] = A[active[r]][active[c]];
        m[r][n] = b[active[r]];
    }
    for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        for (size_t r = col + 1; r < n; ++r)
            if (std::fabs(m[r][col]) > std::fabs(m[pivot][col]))
                pivot = r;
        if (std::fabs(m[pivot][col]) < 1e-12) {
            // Singular direction: retire this feature and re-solve.
            active.erase(active.begin() +
                         static_cast<ptrdiff_t>(col));
            return false;
        }
        std::swap(m[col], m[pivot]);
        for (size_t r = 0; r < n; ++r) {
            if (r == col)
                continue;
            const double f = m[r][col] / m[col][col];
            for (size_t c = col; c <= n; ++c)
                m[r][c] -= f * m[col][c];
        }
    }
    x.fill(0.0);
    for (size_t r = 0; r < n; ++r)
        x[active[r]] = m[r][n] / m[r][r];
    return true;
}

} // namespace

CostFeatures
costFeaturesOf(const ServiceRequest &req, double miss_prob)
{
    miss_prob = std::clamp(miss_prob, 0.0, 1.0);
    // The same defaults the scheduler's engines are built from: one
    // source of truth for tile geometry (engineConfig), so a request
    // can never be costed against a different machine than it runs on.
    const TransArrayAccelerator::Config cfg =
        engineConfig(engineKeyOf(req), 1);

    CostFeatures out;
    out.f[0] = 1.0; // fixed per-request overhead

    // Mirror of TransArrayAccelerator::layerGeometry over the
    // representative tensor runShape would synthesize.
    const uint64_t nr =
        std::min<uint64_t>(req.shape.n, kDefaultReprRows);
    const uint64_t kr =
        std::min<uint64_t>(req.shape.k, kDefaultReprCols);
    const uint64_t sliced_rows =
        nr * static_cast<uint64_t>(std::max(1, req.wbits));
    const uint64_t chunks =
        ceilDiv(kr, static_cast<uint64_t>(std::max(1, cfg.unit.tBits)));
    const uint64_t row_tiles =
        ceilDiv(sliced_rows, cfg.unit.maxTransRows);
    const uint64_t total = row_tiles * chunks;
    if (total == 0 || req.shape.m == 0)
        return out; // degenerate layer: overhead only

    uint64_t stride = 1;
    if (cfg.sampleLimit > 0 && total > cfg.sampleLimit)
        stride = ceilDiv(total, cfg.sampleLimit);
    const uint64_t sampled = ceilDiv(total, stride);

    out.f[1] = static_cast<double>(sampled);
    out.f[2] = static_cast<double>(sliced_rows) *
               static_cast<double>(kr); // nr * wbits * kr bit area
    out.f[3] = req.useStatic ? static_cast<double>(sampled) : 0.0;
    out.f[4] = miss_prob * static_cast<double>(sampled);
    return out;
}

CostModel
CostModel::builtin()
{
    // Calibrated once on the reference container (ta_calibrate --quick
    // battery, median-of-3 timing); conservative enough that shedding
    // only triggers on deadlines the request clearly cannot meet.
    CostModel m;
    m.coeffs_ = {
        320000.0, // base: per-request fixed overhead (ns)
        27000.0,  // sampled_subtile: per simulated sub-tile (ns)
        3.6,      // sliced_bit: synthesis + slicing per bit (ns)
        0.0,      // static_subtile: static path costs no extra on host
        12800.0,  // miss_subtile: plan construction per missed tile (ns)
    };
    m.assumedMissProb_ = 0.1;
    return m;
}

double
CostModel::predictCycles(const CostFeatures &features) const
{
    double cycles = 0.0;
    for (size_t i = 0; i < CostFeatures::kCount; ++i)
        cycles += coeffs_[i] * features.f[i];
    return cycles;
}

double
CostModel::predictMs(const ServiceRequest &req) const
{
    return predictMsAt(req, assumedMissProb_);
}

double
CostModel::predictMsAt(const ServiceRequest &req,
                       double miss_prob) const
{
    return predictCycles(costFeaturesOf(req, miss_prob)) / 1e6;
}

void
CostModel::setAssumedMissProb(double p)
{
    assumedMissProb_ = std::clamp(p, 0.0, 1.0);
}

bool
CostModel::fit(const std::vector<Sample> &samples, FitReport *report)
{
    if (samples.empty())
        return false;

    // Normal equations of *relative* least squares: each sample is
    // weighted by 1/measured, so a 1 ms request and a 40 ms request
    // pull on the fit equally in relative terms — an absolute fit
    // would let the big shapes dictate a huge per-request base cost
    // and mispredict small requests by whole multiples.
    std::array<std::array<double, CostFeatures::kCount>,
               CostFeatures::kCount>
        A{};
    std::array<double, CostFeatures::kCount> b{};
    for (const Sample &s : samples) {
        const double w = 1.0 / std::max(1.0, s.measuredNs);
        const double w2 = w * w;
        for (size_t r = 0; r < CostFeatures::kCount; ++r) {
            for (size_t c = 0; c < CostFeatures::kCount; ++c)
                A[r][c] += w2 * s.features.f[r] * s.features.f[c];
            b[r] += w2 * s.features.f[r] * s.measuredNs;
        }
    }

    // Active-set nonnegative least squares: solve, retire any feature
    // whose coefficient went negative (or whose column is singular),
    // repeat. Terminates — the active set only shrinks.
    std::vector<size_t> active;
    for (size_t i = 0; i < CostFeatures::kCount; ++i)
        active.push_back(i);
    std::array<double, CostFeatures::kCount> x{};
    while (!active.empty()) {
        if (!solveActive(A, b, active, x))
            continue; // singular column retired; retry
        size_t worst = CostFeatures::kCount;
        double worst_v = 0.0;
        for (size_t i : active) {
            if (x[i] < worst_v) {
                worst_v = x[i];
                worst = i;
            }
        }
        if (worst == CostFeatures::kCount)
            break; // all nonnegative
        active.erase(std::find(active.begin(), active.end(), worst));
    }
    if (active.empty())
        return false; // no feature explains the data

    coeffs_ = x;
    for (double &c : coeffs_)
        c = std::max(0.0, c);

    // Relative-error percentiles over the fitted battery itself.
    std::vector<double> errs;
    errs.reserve(samples.size());
    for (const Sample &s : samples) {
        const double pred = predictCycles(s.features);
        const double denom = std::max(1.0, s.measuredNs);
        errs.push_back(std::fabs(pred - s.measuredNs) / denom);
    }
    report_.samples = samples.size();
    report_.errP50 = percentileOf(errs, 50.0);
    report_.errP90 = percentileOf(errs, 90.0);
    report_.errP99 = percentileOf(errs, 99.0);
    if (report != nullptr)
        *report = report_;
    return true;
}

bool
CostModel::saveFile(const std::string &path) const
{
    std::string body = std::string(kFileVersion) + "\n";
    char line[128];
    for (size_t i = 0; i < CostFeatures::kCount; ++i) {
        // %.17g: exact double round-trip, so save -> load -> predict
        // is bit-identical to the in-memory model.
        std::snprintf(line, sizeof(line), "coeff %s %.17g\n",
                      kCoeffNames[i], coeffs_[i]);
        body += line;
    }
    std::snprintf(line, sizeof(line), "assumed_miss_prob %.17g\n",
                  assumedMissProb_);
    body += line;
    std::snprintf(line, sizeof(line), "fit_samples %zu\n",
                  report_.samples);
    body += line;
    std::snprintf(line, sizeof(line), "fit_err_p50 %.17g\n",
                  report_.errP50);
    body += line;
    std::snprintf(line, sizeof(line), "fit_err_p90 %.17g\n",
                  report_.errP90);
    body += line;
    std::snprintf(line, sizeof(line), "fit_err_p99 %.17g\n",
                  report_.errP99);
    body += line;
    std::snprintf(line, sizeof(line), "checksum %016llx\n",
                  static_cast<unsigned long long>(
                      fnv1a64(body.data(), body.size())));
    body += line;

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    return std::fclose(f) == 0 && ok;
}

bool
CostModel::loadFile(const std::string &path, std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err != nullptr)
            *err = path + ": " + why;
        return false;
    };

    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return fail("cannot open");
    std::string body;
    char buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        body.append(buf, n);
    std::fclose(f);

    // The checksum line must be the exact tail of the file; everything
    // before it is covered by the FNV-1a trailer. Any mismatch — a
    // flipped byte, a truncated tail, appended garbage — rejects the
    // whole file.
    const std::string marker = "checksum ";
    const size_t pos = body.rfind(marker);
    if (pos == std::string::npos || pos == 0 ||
        body[pos - 1] != '\n')
        return fail("missing checksum trailer");
    const std::string tail = body.substr(pos);
    if (tail.size() != marker.size() + 17 || tail.back() != '\n')
        return fail("malformed checksum trailer");
    unsigned long long want = 0;
    if (std::sscanf(tail.c_str(), "checksum %16llx", &want) != 1)
        return fail("malformed checksum trailer");
    if (fnv1a64(body.data(), pos) != want)
        return fail("checksum mismatch (corrupt or truncated)");

    // Strict line-by-line parse in the exact written order.
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < pos) {
        const size_t nl = body.find('\n', start);
        if (nl == std::string::npos || nl >= pos)
            return fail("unterminated line");
        lines.push_back(body.substr(start, nl - start));
        start = nl + 1;
    }
    const size_t expect = 1 + CostFeatures::kCount + 5;
    if (lines.size() != expect)
        return fail("wrong line count");
    if (lines[0] != kFileVersion)
        return fail("unknown version '" + lines[0] + "'");

    auto field = [&](const std::string &line, const std::string &key,
                     double &out) {
        if (line.compare(0, key.size() + 1, key + " ") != 0)
            return false;
        return parseDoubleStrict(line.substr(key.size() + 1), out);
    };

    std::array<double, CostFeatures::kCount> coeffs{};
    for (size_t i = 0; i < CostFeatures::kCount; ++i) {
        if (!field(lines[1 + i],
                   std::string("coeff ") + kCoeffNames[i], coeffs[i]) ||
            coeffs[i] < 0.0)
            return fail("bad coefficient line '" + lines[1 + i] + "'");
    }
    double miss = 0.0, fit_samples = 0.0;
    FitReport report;
    size_t li = 1 + CostFeatures::kCount;
    if (!field(lines[li++], "assumed_miss_prob", miss) || miss < 0.0 ||
        miss > 1.0)
        return fail("bad assumed_miss_prob");
    if (!field(lines[li++], "fit_samples", fit_samples) ||
        fit_samples < 0.0)
        return fail("bad fit_samples");
    if (!field(lines[li++], "fit_err_p50", report.errP50))
        return fail("bad fit_err_p50");
    if (!field(lines[li++], "fit_err_p90", report.errP90))
        return fail("bad fit_err_p90");
    if (!field(lines[li++], "fit_err_p99", report.errP99))
        return fail("bad fit_err_p99");

    coeffs_ = coeffs;
    assumedMissProb_ = miss;
    report_ = report;
    report_.samples = static_cast<size_t>(fit_samples);
    return true;
}

std::vector<ServiceRequest>
costCalibrationBattery(uint64_t seed, bool quick)
{
    // A fixed grid (not random): every feature must vary somewhere in
    // the battery or the fit retires it. Seeds vary per point so the
    // synthesized tensors differ like real traffic does.
    struct Shape
    {
        size_t n, k, m;
    };
    static const Shape kQuickShapes[] = {
        {128, 256, 128},
        {256, 1024, 256},
        {512, 4096, 512},
    };
    static const Shape kFullShapes[] = {
        {128, 256, 128},   {256, 512, 256},    {256, 1024, 256},
        {512, 2048, 512},  {512, 4096, 512},   {1024, 4096, 1024},
        {2048, 4096, 2048}, {4096, 4096, 2048},
    };
    const Shape *shapes = quick ? kQuickShapes : kFullShapes;
    const size_t shape_count = quick ? 3 : 8;
    const int wbits_set[] = {2, 4, 8};
    const size_t wbits_count = quick ? 2 : 3; // quick: {2, 4}
    const size_t samples_set[] = {32, 96};
    const size_t samples_count = quick ? 1 : 2; // quick: {96}

    std::vector<ServiceRequest> out;
    uint64_t id = 1;
    for (size_t si = 0; si < shape_count; ++si) {
        for (size_t wi = 0; wi < wbits_count; ++wi) {
            for (int st = 0; st <= 1; ++st) {
                for (size_t pi = 0; pi < samples_count; ++pi) {
                    ServiceRequest req;
                    req.id = id++;
                    req.shape = {shapes[si].n, shapes[si].k,
                                 shapes[si].m};
                    req.wbits = wbits_set[wi];
                    req.useStatic = st != 0;
                    req.samples =
                        samples_set[quick ? 1 : pi]; // quick: 96
                    req.seed = seed + id * 7919;
                    out.push_back(req);
                }
            }
        }
    }
    return out;
}

} // namespace ta
