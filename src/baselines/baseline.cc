#include "baselines/baseline.h"

#include <algorithm>
#include <cmath>

#include "baselines/ant.h"
#include "baselines/dataflow.h"
#include "baselines/bitfusion.h"
#include "baselines/bitvert.h"
#include "baselines/olive.h"
#include "baselines/tender.h"
#include "common/logging.h"
#include "sim/dram.h"

namespace ta {

double
BaselineAccelerator::macEnergyPj(int weight_bits, int act_bits,
                                 double /*bit_density*/) const
{
    // Native-width MAC, replicated for operands wider than the PE.
    const int native = config_.nativeBits;
    const uint64_t splits =
        ceilDiv(std::max(weight_bits, native), native) *
        ceilDiv(std::max(act_bits, native), native);
    return splits * config_.energy.macEnergy(native);
}

LayerRun
BaselineAccelerator::runGemm(const GemmShape &shape, int weight_bits,
                             int act_bits, double bit_density) const
{
    const double mpc =
        macsPerCycle(weight_bits, act_bits, bit_density) *
        config_.utilization;
    TA_ASSERT(mpc > 0, "throughput must be positive");

    LayerRun run;
    run.computeCycles = static_cast<uint64_t>(
        std::ceil(static_cast<double>(shape.macs()) / mpc));

    DramModel dram(config_.dramBytesPerCycle);
    const uint64_t weight_bytes = shape.n * shape.k * weight_bits / 8;
    const uint64_t input_bytes = shape.k * shape.m * act_bits / 8;
    const uint64_t output_bytes = shape.n * shape.m * 4;
    dram.read(weight_bytes + input_bytes);
    dram.write(output_bytes);
    run.dramBytes = dram.totalBytes();
    run.dramCycles = dram.transferCycles();
    run.cycles = std::max(run.computeCycles, run.dramCycles);

    const EnergyParams &ep = config_.energy;
    EnergyBreakdown &e = run.energy;
    e.core = shape.macs() *
             macEnergyPj(weight_bits, act_bits, bit_density);

    // Array-side buffer traffic from the weight-stationary loop nest
    // (baselines/dataflow.h). DRAM traffic above stays at one pass per
    // tensor: the evaluation GEMMs are large-M prefill shapes where
    // blocked tiling achieves near-minimal streaming.
    DataflowModel df([&] {
        DataflowModel::Config dc;
        dc.dataflow = Dataflow::WeightStationary;
        dc.peRows = config_.peRows;
        dc.peCols = config_.peCols;
        dc.weightBits = weight_bits;
        dc.actBits = act_bits;
        return dc;
    }());
    const TrafficReport tr = df.traffic(shape);
    e.weightBuf = static_cast<double>(tr.bufWeightBytes) *
                  ep.sramPerByte(256);
    e.inputBuf = static_cast<double>(tr.bufInputBytes) *
                 ep.sramPerByte(256);
    e.outputBuf = static_cast<double>(tr.bufOutputBytes) *
                  ep.sramPerByte(256);
    e.otherBuf = 2.0 * run.dramBytes * ep.sramPerByte(32);

    e.dramDynamic = dram.dynamicEnergy(ep);
    e.dramStatic = ep.dramStaticEnergy(run.cycles);

    run.sparsity.rows = shape.n;
    return run;
}

BaselineSuiteResult
runBaselineSuite(const BaselineAccelerator &acc,
                 const WorkloadSuite &suite, int weight_bits,
                 int act_bits, double bit_density, ParallelExecutor *pool)
{
    const size_t n = suite.layers.size();
    BaselineSuiteResult res;
    res.perLayer.resize(n);
    auto run_one = [&](size_t i) {
        return acc.runGemm(suite.layers[i].shape, weight_bits, act_bits,
                           bit_density);
    };
    if (pool != nullptr && pool->threads() > 1 && n > 1) {
        // Slot-per-layer sharding: layer i's result lands in slot i, so
        // the reduction below is independent of the interleaving.
        pool->run(n, [&](int, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i)
                res.perLayer[i] = run_one(i);
        });
    } else {
        for (size_t i = 0; i < n; ++i)
            res.perLayer[i] = run_one(i);
    }
    // Slot-order reduction with instance counts applied.
    for (size_t i = 0; i < n; ++i) {
        for (uint64_t j = 0; j < suite.layers[i].count; ++j)
            res.total += res.perLayer[i];
    }
    return res;
}

std::unique_ptr<BaselineAccelerator>
makeBaseline(const std::string &name, const EnergyParams &energy)
{
    if (name == "BitFusion")
        return std::make_unique<BitFusion>(energy);
    if (name == "ANT")
        return std::make_unique<Ant>(energy);
    if (name == "Olive")
        return std::make_unique<Olive>(energy);
    if (name == "Tender")
        return std::make_unique<Tender>(energy);
    if (name == "BitVert")
        return std::make_unique<BitVert>(energy);
    TA_FATAL("unknown baseline '", name, "'");
}

} // namespace ta
