/**
 * @file
 * Fig. 12: speedups on Attention layers (QK^T and PV at sequence 2048,
 * K/V cache treated as the weight operand) for LLaMA-1-7B, LLaMA-2-13B
 * and LLaMA-3-8B. Baselines that rely on offline weight preprocessing
 * cannot run attention; the comparison is BitFusion-16bit (=1x),
 * ANT/BitFusion-8bit, and TransArray-8bit with the dynamic scoreboard.
 */

#include <cmath>
#include <cstdio>
#include <functional>

#include "baselines/baseline.h"
#include "common/table.h"
#include "core/accelerator.h"
#include "workloads/llama.h"

using namespace ta;

namespace {

uint64_t
suiteCycles(const WorkloadSuite &s,
            const std::function<uint64_t(const GemmLayerDesc &)> &run)
{
    uint64_t total = 0;
    for (const auto &l : s.layers)
        total += run(l) * l.count;
    return total;
}

} // namespace

int
main()
{
    TransArrayAccelerator::Config tc;
    tc.sampleLimit = 64;
    const TransArrayAccelerator ta_acc(tc);
    auto bf = makeBaseline("BitFusion");
    auto ant = makeBaseline("ANT");

    Table t("Fig. 12: attention-layer speedup over BitFusion-16bit");
    t.setHeader({"Model", "BitFusion-16bit", "ANT/BitFusion-8bit",
                 "TransArray-8bit"});

    std::vector<double> sp8, spta;
    for (const LlamaConfig &model :
         {llama1_7b(), llama2_13b(), llama3_8b()}) {
        const WorkloadSuite s = llamaAttentionLayers(model);
        uint64_t seed = 100;
        const uint64_t bf16 = suiteCycles(s, [&](const auto &l) {
            return bf->runGemm(l.shape, 16, 16).cycles;
        });
        const uint64_t ant8 = suiteCycles(s, [&](const auto &l) {
            return ant->runGemm(l.shape, 8, 8).cycles;
        });
        const uint64_t ta8 = suiteCycles(s, [&](const auto &l) {
            return ta_acc.runShape(l.shape, 8, seed++).cycles;
        });
        const double s8 = static_cast<double>(bf16) / ant8;
        const double sta = static_cast<double>(bf16) / ta8;
        sp8.push_back(s8);
        spta.push_back(sta);
        t.addRow({model.name, "1.00", Table::fmt(s8, 2),
                  Table::fmt(sta, 2)});
    }
    auto geo = [](const std::vector<double> &v) {
        double acc = 0;
        for (double x : v)
            acc += std::log(x);
        return std::exp(acc / v.size());
    };
    t.addRow({"Geomean", "1.00", Table::fmt(geo(sp8), 2),
              Table::fmt(geo(spta), 2)});
    t.print();

    std::printf(
        "Shape check vs paper: ANT-8bit ~2.58x and TA-8bit ~3.97x over\n"
        "BitFusion-16bit (TA ~1.54x over ANT). Attention is largely\n"
        "bound by streaming the seq x seq score tensors, which caps\n"
        "TA's compute advantage. Olive/Tender/BitVert are absent: their\n"
        "offline weight preprocessing cannot handle runtime K/V.\n");
    return 0;
}
