/**
 * @file
 * Structural model of the dynamic Scoreboard unit (Sec. 3.4 / Fig. 6):
 * a bitonic PopCount sorter feeding two T-way banked node tables that
 * run the record, forward and backward passes. The model produces the
 * same Scoreboard Information as the algorithmic engine (checked by the
 * tests) plus stage-accurate cycle counts, independently validating the
 * paper's claim that scoreboarding takes at most min(n, 2^T)/T cycles
 * per pass and therefore hides behind the PPE/APE stages (Sec. 4.6).
 */

#ifndef TA_SCOREBOARD_HW_SCOREBOARD_H
#define TA_SCOREBOARD_HW_SCOREBOARD_H

#include "noc/bitonic_sorter.h"
#include "scoreboard/entry_codec.h"
#include "scoreboard/scoreboard_info.h"

namespace ta {

class HwScoreboard
{
  public:
    struct Config
    {
        int tBits = 8;
        int maxDistance = 4;
        uint32_t ways = 0; ///< parallel table ports; 0 = T
        uint32_t sorterCapacity = 256;

        uint32_t portCount() const
        {
            return ways > 0 ? ways : static_cast<uint32_t>(tBits);
        }
    };

    /** Timing and the produced SI of one sub-tile. */
    struct Result
    {
        ScoreboardInfo si;
        Plan plan;
        uint64_t sortCycles = 0;
        uint64_t recordCycles = 0;   ///< count-field updates, T/cycle
        uint64_t forwardCycles = 0;  ///< forward-pass node visits
        uint64_t backwardCycles = 0; ///< backward-pass node visits
        uint64_t tableWrites = 0;    ///< banked entry updates (energy)

        uint64_t totalCycles() const
        {
            return sortCycles + recordCycles + forwardCycles +
                   backwardCycles;
        }
    };

    explicit HwScoreboard(Config config);

    const Config &config() const { return config_; }

    /** Bytes of the two node tables (via the Fig. 6 entry codec). */
    uint64_t tableBytes() const;

    /** Process one sub-tile of TransRows (unsorted; the unit sorts). */
    Result process(const std::vector<TransRow> &rows) const;

  private:
    Config config_;
    Scoreboard scoreboard_;
    BitonicSorter sorter_;
    SiEntryCodec codec_;
};

} // namespace ta

#endif // TA_SCOREBOARD_HW_SCOREBOARD_H
