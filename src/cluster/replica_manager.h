/**
 * @file
 * Replica lifecycle for the multi-process serving cluster: the
 * ReplicaManager fork+execs N `ta_serve --port 0` processes on
 * ephemeral TCP ports (discovered from each child's `listening <port>`
 * stdout line), health-checks them through the protocol's `stats` op,
 * and restarts crashed or wedged replicas with bounded exponential
 * backoff. A slot that keeps failing is marked permanently failed and
 * routed around instead of being restarted forever.
 *
 * Plan-cache coordination: with `planCacheBase` set, replica i runs
 * with `--plan-cache <base>.<i>` — it warm-starts from its own file
 * and persists back to it at shutdown and (with
 * `cacheSaveIntervalSec`) periodically, so a crash-restarted replica
 * comes back warm from its latest snapshot. `ta_router merge` unions
 * the per-replica files into one cold-start snapshot.
 *
 * Autoscaling: with `autoscale.maxReplicas > count` the manager owns
 * a fixed array of maxReplicas slots of which only the first `count`
 * start active; the rest are *retired* (not running, not failed).
 * The monitor thread activates a retired slot when the reported queue
 * pressure stays above `upDepthPerReplica` per active replica, and
 * gracefully retires the highest active slot when pressure stays
 * below `downDepthPerReplica` (never below `count`). The slot array
 * never changes size, so the affinity hash stays a pure function of
 * the key — scaling only changes which slots are retired, and the
 * deterministic probe in the Router remaps exactly the keys homed on
 * a retired slot.
 *
 * Thread safety: every public method may be called from any thread
 * (the Router calls reportDown() from its reader threads while the
 * monitor thread restarts slots). Simulated results never depend on
 * which replica serves a request — replicas are interchangeable by
 * the service determinism contract — so restarts, scale-ups and
 * scale-downs are invisible in response bytes.
 */

#ifndef TA_CLUSTER_REPLICA_MANAGER_H
#define TA_CLUSTER_REPLICA_MANAGER_H

#include <sys/types.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ta {

/**
 * The default `ta_serve` path for a cluster tool invoked as `argv0`:
 * the binary next to it ("DIR/ta_serve"), falling back to
 * "./ta_serve" for a bare (PATH-resolved) invocation. Shared by
 * ta_router and ta_loadgen so the lookup rule cannot diverge.
 */
std::string defaultServeBinary(const char *argv0);

/**
 * Queue-pressure-driven autoscaling policy. Disabled unless
 * `maxReplicas > 0`; the manager then owns `max(count, maxReplicas)`
 * slots and activates/retires the surplus based on the queue pressure
 * the Router reports. Thresholds are per *active* replica, and a
 * condition must hold for `holdMs` before acting; `cooldownMs`
 * separates consecutive scale events so a single burst cannot thrash.
 */
struct AutoscaleConfig
{
    /** Upper slot bound; 0 disables autoscaling entirely. */
    int maxReplicas = 0;
    /** Scale up when pressure > upDepthPerReplica * active. */
    size_t upDepthPerReplica = 8;
    /** Scale down when pressure < downDepthPerReplica * active
     *  (never below the configured initial count). */
    size_t downDepthPerReplica = 2;
    /** How long a threshold must hold before acting. */
    int holdMs = 250;
    /** Minimum gap between scale events. */
    int cooldownMs = 1000;
};

/** How one cluster's replica processes are spawned and supervised. */
struct ReplicaProcessConfig
{
    /** Path to the `ta_serve` binary each replica execs. */
    std::string serveBinary = "./ta_serve";
    /** Number of replica slots. */
    int count = 1;
    /** Extra `ta_serve` flags (e.g. {"--threads", "2"}). */
    std::vector<std::string> serveArgs;
    /** Per-replica plan-cache file base ("" disables persistence);
     *  replica i uses `<base>.<i>`. */
    std::string planCacheBase;
    /** Per-replica trace file base ("" disables replica tracing);
     *  replica i runs with `--trace-out <base>.replica<i>.json`, so a
     *  traced cluster run leaves one Chrome trace file per replica
     *  for `ta_trace` to merge. A SIGKILLed replica never flushes —
     *  its spans simply vanish, they are never duplicated. */
    std::string traceOutBase;
    /** Forwarded as --cache-save-interval when > 0 (needs a base). */
    int cacheSaveIntervalSec = 0;
    /** Consecutive failed spawns before a slot is abandoned. */
    int maxRestarts = 5;
    /** Restart backoff: initial delay, doubling per consecutive
     *  failure up to the cap. */
    int backoffInitialMs = 100;
    int backoffMaxMs = 2000;
    /** Period of the stats-op health probe per live replica. */
    int healthIntervalMs = 500;
    /** Deadline for a spawned child to announce its port. */
    int spawnTimeoutMs = 10000;
    /** Queue-pressure autoscaling (off by default). */
    AutoscaleConfig autoscale;
};

/** Snapshot of one replica slot. */
struct ReplicaEndpoint
{
    bool up = false;       ///< accepting connections right now
    bool failed = false;   ///< abandoned after maxRestarts failures
    bool retired = false;  ///< autoscaling slot currently parked
    uint16_t port = 0;     ///< valid while up
    pid_t pid = -1;        ///< valid while up
    uint64_t generation = 0; ///< bumped on every successful spawn
};

class ReplicaManager
{
  public:
    explicit ReplicaManager(ReplicaProcessConfig config);
    ~ReplicaManager();

    ReplicaManager(const ReplicaManager &) = delete;
    ReplicaManager &operator=(const ReplicaManager &) = delete;

    /**
     * Spawn every replica and start the monitor thread. Returns false
     * — with everything already spawned torn down — when any replica
     * fails to come up.
     */
    bool start();

    /**
     * Gracefully stop every replica (shutdown op, so each persists
     * its plan-cache file), escalating to SIGKILL on a deadline, and
     * join the monitor. Idempotent; also invoked by the destructor.
     */
    void stop();

    /** Total slot count (fixed for the manager's lifetime; includes
     *  retired autoscaling slots so affinity hashing stays pure). */
    int count() const { return totalSlots_; }

    /** Snapshot of slot i. */
    ReplicaEndpoint endpoint(int i) const;

    /**
     * A connection to slot i at `generation` died (the Router's
     * reader saw EOF). Ignored when stale — the slot already moved
     * on to a newer generation. Schedules a prompt restart.
     */
    void reportDown(int i, uint64_t generation);

    /** Replica i's pid (tests kill it to exercise crash-restart). */
    pid_t pidOf(int i) const;

    /** Successful restarts performed after the initial spawn. */
    uint64_t restarts() const;

    /**
     * Latest queue pressure seen by the caller (the Router reports
     * waiting + in-flight requests from its maintenance pass). Feeds
     * the autoscaler; a no-op with autoscaling disabled.
     */
    void reportQueuePressure(size_t depth);

    /** Slots currently active (not retired, not abandoned). */
    int activeCount() const;

    /** Slots permanently abandoned after maxRestarts failures. */
    int abandonedCount() const;

    /** Autoscale events performed so far. */
    uint64_t scaleUps() const;
    uint64_t scaleDowns() const;

    const ReplicaProcessConfig &config() const { return config_; }

  private:
    struct Slot
    {
        ReplicaEndpoint ep;
        int stdoutFd = -1; ///< child's stdout (port announcements)
        int failures = 0;  ///< consecutive spawn/health failures
        int probeMisses = 0; ///< consecutive failed health probes
        std::chrono::steady_clock::time_point nextAttempt{};
        std::chrono::steady_clock::time_point nextHealth{};
    };

    bool spawnSlot(int i);
    void markDown(int i, const char *why);
    void monitorLoop();
    void reapZombies();
    void maybeAutoscale(std::chrono::steady_clock::time_point now);
    /** Connect to `port` and exchange one stats op. */
    bool healthProbe(uint16_t port) const;
    int backoffMsFor(int failures) const;

    ReplicaProcessConfig config_;
    int totalSlots_ = 0;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::vector<Slot> slots_;
    std::vector<pid_t> zombies_; ///< dead children awaiting waitpid
    /** Gracefully retiring children: SIGKILLed past the deadline. */
    struct Retiring
    {
        pid_t pid;
        std::chrono::steady_clock::time_point deadline;
    };
    std::vector<Retiring> retiring_;
    uint64_t restarts_ = 0;
    uint64_t scaleUps_ = 0;
    uint64_t scaleDowns_ = 0;
    size_t queuePressure_ = 0;
    std::chrono::steady_clock::time_point pressureAbove_{};
    std::chrono::steady_clock::time_point pressureBelow_{};
    std::chrono::steady_clock::time_point cooldownUntil_{};
    bool monitorStop_ = false;
    bool started_ = false;
    bool stopped_ = false;
    std::thread monitor_;
};

} // namespace ta

#endif // TA_CLUSTER_REPLICA_MANAGER_H
