#include "exec/parallel_executor.h"

#include <chrono>
#include <cstdlib>

#include "common/logging.h"

namespace ta {

namespace {

uint64_t
nowNanos()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

int
ParallelExecutor::defaultThreads()
{
    const char *env = std::getenv("TA_THREADS");
    if (env != nullptr) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<int>(v);
        TA_WARN("ignoring TA_THREADS=", env, " (want an integer >= 1)");
    }
    return 1;
}

size_t
ParallelExecutor::shardBegin(size_t n, int shard, int shards)
{
    return n * static_cast<size_t>(shard) / static_cast<size_t>(shards);
}

ParallelExecutor::ParallelExecutor(int threads)
    : threads_(threads >= 1 ? threads : defaultThreads())
{
    busyNanos_.assign(threads_, 0);
    // Worker w handles shard w + 1; shard 0 runs on the calling thread.
    workers_.reserve(threads_ - 1);
    for (int w = 0; w + 1 < threads_; ++w)
        workers_.emplace_back(&ParallelExecutor::workerLoop, this, w);
}

ParallelExecutor::~ParallelExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ParallelExecutor::runShard(int shard, const ShardFn &fn)
{
    const size_t begin = shardBegin(jobItems_, shard, threads_);
    const size_t end = shardBegin(jobItems_, shard + 1, threads_);
    const uint64_t t0 = nowNanos();
    fn(shard, begin, end);
    busyNanos_[shard] += nowNanos() - t0;
}

void
ParallelExecutor::workerLoop(int worker)
{
    const int shard = worker + 1;
    uint64_t seen = 0;
    for (;;) {
        const ShardFn *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
        }
        std::exception_ptr err;
        try {
            runShard(shard, *job);
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (err && !firstError_)
                firstError_ = err;
            if (--pending_ == 0)
                doneCv_.notify_all();
        }
    }
}

void
ParallelExecutor::run(size_t n, const ShardFn &fn)
{
    std::lock_guard<std::mutex> call(callMu_);
    if (threads_ == 1 || n == 0) {
        jobItems_ = n;
        runShard(0, fn);
        ++runs_;
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        job_ = &fn;
        jobItems_ = n;
        pending_ = threads_ - 1;
        firstError_ = nullptr;
        ++generation_;
    }
    workCv_.notify_all();

    std::exception_ptr err;
    try {
        runShard(0, fn);
    } catch (...) {
        err = std::current_exception();
    }

    std::unique_lock<std::mutex> lock(mu_);
    doneCv_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
    ++runs_;
    if (!firstError_ && err)
        firstError_ = err;
    if (firstError_) {
        const std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        lock.unlock();
        std::rethrow_exception(e);
    }
}

} // namespace ta
