/**
 * @file
 * google-benchmark micro kernels for the simulator's hot paths: the
 * scoreboard build, the bitonic sorter, Benes routing, the static-SI
 * tile evaluation and the functional transitive GEMM. These are
 * host-side throughput numbers (how fast the *simulator* runs), useful
 * for keeping the design-space sweeps laptop-scale.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/transitive_gemm.h"
#include "exec/plan_cache.h"
#include "noc/benes.h"
#include "noc/bitonic_sorter.h"
#include "scoreboard/static_scoreboard.h"
#include "workloads/generators.h"

namespace {

using namespace ta;

std::vector<uint32_t>
randomValues(size_t n, int t, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> v(n);
    for (auto &x : v)
        x = static_cast<uint32_t>(rng.uniformInt(0, (1 << t) - 1));
    return v;
}

void
BM_ScoreboardBuild(benchmark::State &state)
{
    const int t = static_cast<int>(state.range(0));
    ScoreboardConfig c;
    c.tBits = t;
    Scoreboard sb(c);
    const auto values = randomValues(256, t, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(sb.build(values));
    state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_ScoreboardBuild)->Arg(4)->Arg(8)->Arg(12);

void
BM_ScoreboardBuildArena(benchmark::State &state)
{
    // Same work as BM_ScoreboardBuild but through the reusable scratch
    // arena: the delta between the two is the per-call allocation cost
    // the parallel executor's per-thread scratch removes.
    const int t = static_cast<int>(state.range(0));
    ScoreboardConfig c;
    c.tBits = t;
    Scoreboard sb(c);
    const auto values = randomValues(256, t, 7);
    Scoreboard::Scratch scratch;
    for (auto _ : state)
        benchmark::DoNotOptimize(sb.build(values, nullptr, scratch));
    state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_ScoreboardBuildArena)->Arg(4)->Arg(8)->Arg(12);

void
BM_PlanCacheHit(benchmark::State &state)
{
    // Steady-state cost of a plan-cache hit vs a fresh build (compare
    // with BM_ScoreboardBuildArena at the same T).
    ScoreboardConfig c;
    c.tBits = 8;
    Scoreboard sb(c);
    const auto values = randomValues(256, 8, 7);
    PlanCache cache(64);
    Scoreboard::Scratch scratch;
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.getOrBuild(values, [&] {
            return sb.build(values, nullptr, scratch);
        }));
    state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_PlanCacheHit);

void
BM_BitonicSort(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    BitonicSorter sorter(256);
    std::vector<TransRow> rows(n);
    Rng rng(3);
    for (size_t i = 0; i < n; ++i)
        rows[i] = {static_cast<uint32_t>(rng.uniformInt(0, 255)),
                   static_cast<uint32_t>(i)};
    for (auto _ : state)
        benchmark::DoNotOptimize(sorter.sort(rows));
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BitonicSort)->Arg(64)->Arg(256)->Arg(1024);

void
BM_BenesRoute(benchmark::State &state)
{
    const uint32_t ports = static_cast<uint32_t>(state.range(0));
    BenesNetwork net(ports);
    Rng rng(5);
    std::vector<uint32_t> perm(ports);
    for (uint32_t i = 0; i < ports; ++i)
        perm[i] = i;
    for (size_t i = ports - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.uniformInt(0, i)]);
    for (auto _ : state)
        benchmark::DoNotOptimize(net.route(perm));
}
BENCHMARK(BM_BenesRoute)->Arg(8)->Arg(64);

void
BM_StaticSiTile(benchmark::State &state)
{
    ScoreboardConfig c;
    c.tBits = 8;
    const auto calib = randomValues(4096, 8, 11);
    StaticScoreboard sb(c, calib);
    const auto tile = randomValues(256, 8, 13);
    for (auto _ : state)
        benchmark::DoNotOptimize(sb.evaluateTile(tile));
    state.SetItemsProcessed(state.iterations() * tile.size());
}
BENCHMARK(BM_StaticSiTile);

void
BM_TransitiveGemm(benchmark::State &state)
{
    const MatI32 w = realLikeWeights(32, 256, 8, 17);
    const MatI32 in = randomActivations(256, 32, 8, 19);
    TransitiveGemmConfig c;
    c.scoreboard.tBits = 8;
    TransitiveGemmEngine engine(c);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.run(w, 8, in));
    state.SetItemsProcessed(state.iterations() * w.rows() * w.cols() *
                            in.cols());
}
BENCHMARK(BM_TransitiveGemm);

void
BM_DenseGemmReference(benchmark::State &state)
{
    const MatI32 w = realLikeWeights(32, 256, 8, 17);
    const MatI32 in = randomActivations(256, 32, 8, 19);
    for (auto _ : state)
        benchmark::DoNotOptimize(denseGemm(w, in));
    state.SetItemsProcessed(state.iterations() * w.rows() * w.cols() *
                            in.cols());
}
BENCHMARK(BM_DenseGemmReference);

} // namespace

BENCHMARK_MAIN();
