#include "baselines/bitfusion.h"

namespace ta {

BitFusion::BitFusion(const EnergyParams &energy)
    : BaselineAccelerator([&] {
          Config c;
          c.peRows = 28;
          c.peCols = 32;
          c.nativeBits = 8;
          c.utilization = 0.85;
          c.energy = energy;
          return c;
      }())
{
}

double
BitFusion::macsPerCycle(int weight_bits, int act_bits,
                        double /*bit_density*/) const
{
    // Bit-level composability: throughput scales with the product of
    // per-operand fusion factors (min granularity 2 bits).
    const double wf = 8.0 / std::max(2, weight_bits);
    const double af = 8.0 / std::max(2, act_bits);
    // Wider-than-native operands split a MAC over multiple PEs/cycles;
    // the same formula covers both directions.
    return static_cast<double>(numPes()) * wf * af;
}

} // namespace ta
