/**
 * @file
 * The service front-end's contracts: protocol parse/serialize strictness,
 * RequestQueue admission control and same-engine coalescing, and the
 * cross-request determinism contract — responses from a ServiceScheduler
 * are byte-identical to standalone serial runs of the same requests for
 * every {threads, window, sessions, submission concurrency} combination
 * tested, including under plan-cache eviction churn (which the TSan CI
 * job additionally checks for races).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "service/protocol.h"
#include "service/request_queue.h"
#include "service/scheduler.h"

namespace ta {
namespace {

// ---- protocol -----------------------------------------------------------

TEST(ServiceProtocol, RequestRoundTrip)
{
    ServiceRequest req;
    req.id = 42;
    req.shape = {512, 256, 128};
    req.wbits = 8;
    req.useStatic = true;
    req.seed = 7;
    req.samples = 32;

    ServiceRequest parsed;
    std::string err;
    ASSERT_TRUE(parseRequestLine(serializeRequest(req), parsed, err))
        << err;
    EXPECT_EQ(parsed.id, req.id);
    EXPECT_EQ(parsed.shape.n, req.shape.n);
    EXPECT_EQ(parsed.shape.k, req.shape.k);
    EXPECT_EQ(parsed.shape.m, req.shape.m);
    EXPECT_EQ(parsed.wbits, req.wbits);
    EXPECT_EQ(parsed.useStatic, req.useStatic);
    EXPECT_EQ(parsed.seed, req.seed);
    EXPECT_EQ(parsed.samples, req.samples);
    EXPECT_EQ(engineKeyOf(parsed), engineKeyOf(req));
}

TEST(ServiceProtocol, DefaultsMatchTaSim)
{
    ServiceRequest req;
    std::string err;
    ASSERT_TRUE(parseRequestLine("{}", req, err)) << err;
    EXPECT_EQ(req.shape.n, 4096u);
    EXPECT_EQ(req.shape.k, 4096u);
    EXPECT_EQ(req.shape.m, 2048u);
    EXPECT_EQ(req.wbits, 4);
    EXPECT_EQ(req.abits, 8);
    EXPECT_EQ(req.tbits, 8);
    EXPECT_EQ(req.maxdist, 4);
    EXPECT_EQ(req.units, 6u);
    EXPECT_EQ(req.samples, 96u);
    EXPECT_EQ(req.seed, 1u);
    EXPECT_FALSE(req.useStatic);
}

TEST(ServiceProtocol, RejectsGarbage)
{
    ServiceRequest req;
    std::string err;
    EXPECT_FALSE(parseRequestLine("not json", req, err));
    EXPECT_FALSE(parseRequestLine("{\"wbits\":0}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"wbits\":-1}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"wbits\":\"four\"}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"threads\":2}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"n\":{}}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"n\":1,\"n\":2}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"op\":\"fly\"}", req, err));
    EXPECT_FALSE(parseRequestLine("{} trailing", req, err));
    // A failed request with a readable id still echoes it.
    EXPECT_FALSE(
        parseRequestLine("{\"id\":9,\"wbits\":99}", req, err));
    EXPECT_EQ(req.id, 9u);
}

TEST(ServiceProtocol, ResponseSerializationIsCanonical)
{
    LayerRun run;
    run.cycles = 100;
    run.computeCycles = 90;
    run.dramCycles = 100;
    run.dramBytes = 4096;
    run.subTiles = 7;
    ServiceRequest req;
    req.id = 3;
    const std::string line = serializeResponse(req, run);
    EXPECT_EQ(line.find("{\"id\":3,\"ok\":1,\"cycles\":100,"), 0u);
    // exec (host-volatile) must never leak into the response.
    EXPECT_EQ(line.find("exec"), std::string::npos);
    // Identical runs serialize identically (the byte contract).
    EXPECT_EQ(line, serializeResponse(req, run));
}

// ---- request queue ------------------------------------------------------

ServiceJob
jobWithKey(int abits, ServiceResponder respond = nullptr)
{
    ServiceJob job;
    job.request.abits = abits;
    job.key = engineKeyOf(job.request);
    job.respond = std::move(respond);
    job.enqueued = std::chrono::steady_clock::now();
    return job;
}

TEST(RequestQueueTest, AdmissionControlRejectsWhenFull)
{
    RequestQueue q(2);
    EXPECT_TRUE(q.submit(jobWithKey(8)));
    EXPECT_TRUE(q.submit(jobWithKey(8)));
    EXPECT_FALSE(q.submit(jobWithKey(8))); // full
    EXPECT_EQ(q.counters().admitted, 2u);
    EXPECT_EQ(q.counters().rejected, 1u);

    std::vector<ServiceJob> batch;
    EXPECT_TRUE(q.popBatch(8, batch));
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_TRUE(q.submit(jobWithKey(8))); // capacity freed
}

TEST(RequestQueueTest, CoalescesSameEngineOnlyAndPreservesOrder)
{
    RequestQueue q(16);
    // a a b a b, window 8: first batch = the three a's, then the b's.
    ASSERT_TRUE(q.submit(jobWithKey(8)));
    ASSERT_TRUE(q.submit(jobWithKey(8)));
    ASSERT_TRUE(q.submit(jobWithKey(4)));
    ASSERT_TRUE(q.submit(jobWithKey(8)));
    ASSERT_TRUE(q.submit(jobWithKey(4)));

    std::vector<ServiceJob> batch;
    ASSERT_TRUE(q.popBatch(8, batch));
    ASSERT_EQ(batch.size(), 3u);
    for (const ServiceJob &j : batch)
        EXPECT_EQ(j.request.abits, 8);
    ASSERT_TRUE(q.popBatch(8, batch));
    ASSERT_EQ(batch.size(), 2u);
    for (const ServiceJob &j : batch)
        EXPECT_EQ(j.request.abits, 4);
}

TEST(RequestQueueTest, WindowBoundsTheBatch)
{
    RequestQueue q(16);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(q.submit(jobWithKey(8)));
    std::vector<ServiceJob> batch;
    ASSERT_TRUE(q.popBatch(2, batch));
    EXPECT_EQ(batch.size(), 2u);
    ASSERT_TRUE(q.popBatch(2, batch));
    EXPECT_EQ(batch.size(), 2u);
    ASSERT_TRUE(q.popBatch(2, batch));
    EXPECT_EQ(batch.size(), 1u);
}

ServiceJob
jobWithPriority(int priority, int abits = 8)
{
    ServiceJob job = jobWithKey(abits);
    job.request.priority = priority;
    job.request.seed = static_cast<uint64_t>(priority) * 100 +
                       static_cast<uint64_t>(abits);
    return job;
}

TEST(RequestQueueTest, PriorityOrdersPopsFifoWithinClass)
{
    RequestQueue q(16);
    // Mixed classes, distinct engines so coalescing can't reorder:
    // submit (p, abits): (1,8) (0,7) (2,6) (1,5) (2,4) (0,3).
    ASSERT_TRUE(q.submit(jobWithPriority(1, 8)));
    ASSERT_TRUE(q.submit(jobWithPriority(0, 7)));
    ASSERT_TRUE(q.submit(jobWithPriority(2, 6)));
    ASSERT_TRUE(q.submit(jobWithPriority(1, 5)));
    ASSERT_TRUE(q.submit(jobWithPriority(2, 4)));
    ASSERT_TRUE(q.submit(jobWithPriority(0, 3)));

    // Pop order: class 2 FIFO (6, 4), class 1 FIFO (8, 5), class 0
    // FIFO (7, 3).
    const int expect_abits[] = {6, 4, 8, 5, 7, 3};
    std::vector<ServiceJob> batch;
    for (int expected : expect_abits) {
        ASSERT_TRUE(q.popBatch(1, batch));
        ASSERT_EQ(batch.size(), 1u);
        EXPECT_EQ(batch.front().request.abits, expected);
    }
    EXPECT_EQ(q.depth(), 0u);
}

TEST(RequestQueueTest, CoalescingSpansClassesHighestFirst)
{
    RequestQueue q(16);
    // Same engine key across all three classes plus one foreign key.
    ASSERT_TRUE(q.submit(jobWithPriority(0, 8)));
    ASSERT_TRUE(q.submit(jobWithPriority(1, 4))); // foreign engine
    ASSERT_TRUE(q.submit(jobWithPriority(1, 8)));
    ASSERT_TRUE(q.submit(jobWithPriority(2, 8)));

    std::vector<ServiceJob> batch;
    ASSERT_TRUE(q.popBatch(8, batch));
    // Lead job is the most urgent (p2), and the window coalesces the
    // same-engine p1 and p0 jobs, leaving the foreign engine behind.
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].request.priority, 2);
    EXPECT_EQ(batch[1].request.priority, 1);
    EXPECT_EQ(batch[2].request.priority, 0);
    for (const ServiceJob &j : batch)
        EXPECT_EQ(j.request.abits, 8);

    ASSERT_TRUE(q.popBatch(8, batch));
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch.front().request.abits, 4);
}

TEST(ServiceProtocol, PriorityParsedValidatedAndDefaulted)
{
    ServiceRequest req;
    std::string err;
    ASSERT_TRUE(parseRequestLine("{}", req, err)) << err;
    EXPECT_EQ(req.priority, 1); // default: normal
    ASSERT_TRUE(parseRequestLine("{\"priority\":2}", req, err)) << err;
    EXPECT_EQ(req.priority, 2);
    EXPECT_FALSE(parseRequestLine("{\"priority\":3}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"priority\":-1}", req, err));
    // Round-trips through the canonical request line.
    ServiceRequest out;
    req.priority = 0;
    ASSERT_TRUE(parseRequestLine(serializeRequest(req), out, err))
        << err;
    EXPECT_EQ(out.priority, 0);
}

TEST(RequestQueueTest, CloseDrainsThenUnblocks)
{
    RequestQueue q(4);
    ASSERT_TRUE(q.submit(jobWithKey(8)));
    q.close();
    EXPECT_FALSE(q.submit(jobWithKey(8))); // closed
    std::vector<ServiceJob> batch;
    EXPECT_TRUE(q.popBatch(8, batch)); // drains the admitted job
    EXPECT_FALSE(q.popBatch(8, batch)); // then reports closed
}

// ---- cross-request determinism ------------------------------------------

/** The trace the determinism tests replay: mixed shapes, precisions,
 *  engines (static + dynamic) and repeated requests. */
std::vector<ServiceRequest>
mixedTrace()
{
    std::vector<ServiceRequest> trace;
    ServiceRequest r;
    r.samples = 16;
    for (int rep = 0; rep < 2; ++rep) {
        r.shape = {256, 256, 128};
        r.wbits = 4;
        r.seed = 9;
        r.useStatic = false;
        trace.push_back(r);
        r.shape = {128, 512, 64};
        r.wbits = 8;
        r.seed = 10;
        trace.push_back(r);
        r.shape = {96, 128, 196};
        r.wbits = 6;
        r.seed = 11;
        trace.push_back(r);
        r.shape = {192, 256, 0}; // degenerate layer must survive
        r.wbits = 4;
        r.seed = 12;
        trace.push_back(r);
        r.shape = {128, 128, 64};
        r.wbits = 4;
        r.seed = 13;
        r.useStatic = true; // second engine key
        trace.push_back(r);
    }
    return trace;
}

/** Standalone serial oracle (fresh single-threaded engines). */
std::vector<std::string>
standaloneResponses(const std::vector<ServiceRequest> &trace)
{
    std::map<EngineKey, std::unique_ptr<TransArrayAccelerator>> engines;
    std::vector<std::string> out;
    for (const ServiceRequest &req : trace) {
        const EngineKey key = engineKeyOf(req);
        auto it = engines.find(key);
        if (it == engines.end())
            it = engines
                     .emplace(
                         key,
                         std::make_unique<TransArrayAccelerator>(
                             engineConfig(key, 1)))
                     .first;
        out.push_back(serializeResponse(
            req, it->second->runShape(req.shape, req.wbits, req.seed)));
    }
    return out;
}

/** Replay `trace` through a scheduler from `concurrency` submitter
 *  threads; returns the response line per trace index. */
std::vector<std::string>
schedulerResponses(ServiceConfig cfg,
                   const std::vector<ServiceRequest> &trace,
                   size_t concurrency)
{
    ServiceScheduler sched(cfg);
    sched.start();
    std::vector<std::string> responses(trace.size());
    std::vector<std::promise<void>> done(trace.size());
    std::atomic<size_t> next{0};
    std::vector<std::thread> submitters;
    for (size_t c = 0; c < concurrency; ++c) {
        submitters.emplace_back([&] {
            while (true) {
                const size_t i = next.fetch_add(1);
                if (i >= trace.size())
                    return;
                ServiceRequest req = trace[i];
                req.id = i + 1;
                sched.submit(req, [&, i](const std::string &line) {
                    responses[i] = line;
                    done[i].set_value();
                });
            }
        });
    }
    for (std::thread &t : submitters)
        t.join();
    for (std::promise<void> &p : done)
        p.get_future().wait();
    sched.stop();
    return responses;
}

TEST(ServiceDeterminism, ByteIdenticalAcrossConcurrencyAndBatching)
{
    // Stamp the ids the scheduler will see, then compute the
    // standalone serial oracle once for all configurations.
    std::vector<ServiceRequest> stamped = mixedTrace();
    for (size_t i = 0; i < stamped.size(); ++i)
        stamped[i].id = i + 1;
    const std::vector<std::string> expect =
        standaloneResponses(stamped);

    // Batching off/on x threads x sessions x submit concurrency:
    // every response must equal the standalone serial line.
    struct Case
    {
        int threads;
        size_t window;
        int sessions;
        size_t concurrency;
    };
    const Case cases[] = {
        {1, 1, 1, 1}, // batching off, serial submit
        {1, 4, 1, 8}, // batching on, concurrent submit
        {2, 4, 2, 8}, // parallel engines + two sessions
        {2, 16, 2, 1}, // window larger than trace
    };
    for (const Case &c : cases) {
        ServiceConfig cfg;
        cfg.threads = c.threads;
        cfg.window = c.window;
        cfg.sessions = c.sessions;
        const std::vector<std::string> got =
            schedulerResponses(cfg, stamped, c.concurrency);
        for (size_t i = 0; i < stamped.size(); ++i)
            EXPECT_EQ(got[i], expect[i])
                << "threads " << c.threads << " window " << c.window
                << " sessions " << c.sessions << " concurrency "
                << c.concurrency << " trace " << i;
    }
}

TEST(ServiceDeterminism, EvictionChurnKeepsResponsesIdentical)
{
    // A plan cache far smaller than the working set forces constant
    // concurrent insert/eviction from both sessions; responses must
    // not change (plans are pure), and the TSan CI job checks the
    // cache's internals stay race-free under this churn.
    const std::vector<ServiceRequest> trace = mixedTrace();
    std::vector<ServiceRequest> stamped = trace;
    for (size_t i = 0; i < stamped.size(); ++i)
        stamped[i].id = i + 1;
    const std::vector<std::string> expect =
        standaloneResponses(stamped);

    ServiceConfig cfg;
    cfg.threads = 2;
    cfg.window = 4;
    cfg.sessions = 2;
    cfg.planCacheCapacity = 8; // way below the working set
    const std::vector<std::string> got =
        schedulerResponses(cfg, stamped, 8);
    for (size_t i = 0; i < stamped.size(); ++i)
        EXPECT_EQ(got[i], expect[i]) << "trace " << i;

    ServiceConfig cfg_off = cfg;
    cfg_off.planCacheCapacity = 0; // cache disabled entirely
    const std::vector<std::string> got_off =
        schedulerResponses(cfg_off, stamped, 8);
    for (size_t i = 0; i < stamped.size(); ++i)
        EXPECT_EQ(got_off[i], expect[i]) << "trace " << i;
}

TEST(ServiceScheduler_, RejectsWhenQueueFullAndReportsStats)
{
    // sessions block on a queue that admits 2: flood it and expect
    // some rejections, all well-formed error lines, and stats that
    // add up.
    ServiceConfig cfg;
    cfg.window = 1;
    cfg.sessions = 1;
    cfg.queueCapacity = 2;
    ServiceScheduler sched(cfg);
    sched.start();

    constexpr size_t kFlood = 64;
    std::mutex mu;
    std::condition_variable cv;
    size_t responded = 0;
    size_t rejected = 0;
    for (size_t i = 0; i < kFlood; ++i) {
        ServiceRequest req;
        req.id = i + 1;
        req.shape = {128, 128, 64};
        req.samples = 8;
        sched.submit(req, [&](const std::string &line) {
            std::lock_guard<std::mutex> lock(mu);
            ++responded;
            if (line.find("\"ok\":0") != std::string::npos) {
                ++rejected;
                EXPECT_NE(line.find("overloaded"), std::string::npos);
            }
            cv.notify_one();
        });
    }
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return responded == kFlood; });
    }
    sched.stop();
    const ServiceStats s = sched.stats();
    EXPECT_EQ(s.admitted + s.rejected, kFlood);
    EXPECT_EQ(s.served, s.admitted);
    EXPECT_EQ(s.rejected, rejected);
    EXPECT_GT(s.latencySamples, 0u);
}

// ---- deadlines: protocol ------------------------------------------------

TEST(ServiceProtocol, DeadlineParsedValidatedAndRoundTrips)
{
    ServiceRequest req;
    std::string err;
    ASSERT_TRUE(parseRequestLine("{}", req, err)) << err;
    EXPECT_EQ(req.deadlineMs, 0u); // default: no deadline

    ASSERT_TRUE(parseRequestLine("{\"deadline_ms\":250}", req, err))
        << err;
    EXPECT_EQ(req.deadlineMs, 250u);

    // Canonical serialization round-trips the field, and omits it
    // entirely for deadline-free requests (historical bytes).
    ServiceRequest out;
    ASSERT_TRUE(parseRequestLine(serializeRequest(req), out, err))
        << err;
    EXPECT_EQ(out.deadlineMs, 250u);
    req.deadlineMs = 0;
    EXPECT_EQ(serializeRequest(req).find("deadline_ms"),
              std::string::npos);
}

TEST(ServiceProtocol, MalformedDeadlineRejectedStrictly)
{
    ServiceRequest req;
    std::string err;
    // Every malformed variant is a hard parse error, never a silent
    // default: zero, negative, fractional, non-numeric, trailing
    // garbage, beyond the bound, and u64 overflow.
    EXPECT_FALSE(parseRequestLine("{\"deadline_ms\":0}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"deadline_ms\":-5}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"deadline_ms\":1.5}", req, err));
    EXPECT_FALSE(
        parseRequestLine("{\"deadline_ms\":\"abc\"}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"deadline_ms\":1x}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"deadline_ms\":+7}", req, err));
    const std::string over =
        "{\"deadline_ms\":" + std::to_string(kMaxDeadlineMs + 1) + "}";
    EXPECT_FALSE(parseRequestLine(over, req, err));
    EXPECT_FALSE(parseRequestLine(
        "{\"deadline_ms\":18446744073709551616}", req, err));
    // The bound itself is valid.
    const std::string max =
        "{\"deadline_ms\":" + std::to_string(kMaxDeadlineMs) + "}";
    EXPECT_TRUE(parseRequestLine(max, req, err)) << err;
    EXPECT_EQ(req.deadlineMs, kMaxDeadlineMs);
}

// ---- deadlines: queue ordering ------------------------------------------

ServiceJob
jobWithDeadline(double deadline_abs_ms, double predicted_ms,
                uint64_t tag, int priority = 1, int abits = 8)
{
    ServiceJob job = jobWithKey(abits);
    job.request.priority = priority;
    job.request.seed = tag;
    job.deadlineAbsMs = deadline_abs_ms;
    job.predictedMs = predicted_ms;
    return job;
}

TEST(RequestQueueTest, EdfOrdersWithinClassFifoForNoDeadline)
{
    RequestQueue q(16);
    const double now = 1000.0;
    ASSERT_TRUE(q.submit(jobWithDeadline(now + 4000, 1, 1)));
    ASSERT_TRUE(q.submit(jobWithDeadline(kNoDeadlineMs, 0, 2)));
    ASSERT_TRUE(q.submit(jobWithDeadline(now + 200, 1, 3)));
    ASSERT_TRUE(q.submit(jobWithDeadline(kNoDeadlineMs, 0, 4)));
    ASSERT_TRUE(q.submit(jobWithDeadline(now + 2000, 1, 5)));

    // EDF first (200, 2000, 4000), then the deadline-free jobs in
    // arrival order — the historical FIFO behavior is the deadline-
    // free special case, not a separate mode.
    const uint64_t expect[] = {3, 5, 1, 2, 4};
    std::vector<ServiceJob> batch;
    for (uint64_t tag : expect) {
        ASSERT_TRUE(q.popBatch(1, batch, now));
        ASSERT_EQ(batch.size(), 1u);
        EXPECT_EQ(batch.front().request.seed, tag);
    }
}

TEST(RequestQueueTest, ImminentLowerClassDeadlineIsNotStarved)
{
    // A high-priority stream must not park a lower class past its
    // own deadline: once slack <= kUrgencyFactor x predicted cost,
    // the lower-class job is promoted and leads the window.
    RequestQueue q(16);
    const double now = 1000.0;
    // Distinct engine keys so coalescing can't mask the ordering.
    ASSERT_TRUE(q.submit(jobWithDeadline(kNoDeadlineMs, 0, 1,
                                         /*priority=*/2,
                                         /*abits=*/8)));
    ASSERT_TRUE(q.submit(jobWithDeadline(now + 10, 8, 2,
                                         /*priority=*/0,
                                         /*abits=*/4)));

    std::vector<ServiceJob> batch;
    ASSERT_TRUE(q.popBatch(8, batch, now));
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch.front().request.seed, 2u) << "imminent class-0 "
                                                 "job must lead";
    ASSERT_TRUE(q.popBatch(8, batch, now));
    EXPECT_EQ(batch.front().request.seed, 1u);

    // Control: with ample slack the class order stands.
    ASSERT_TRUE(q.submit(jobWithDeadline(kNoDeadlineMs, 0, 3,
                                         /*priority=*/2,
                                         /*abits=*/8)));
    ASSERT_TRUE(q.submit(jobWithDeadline(now + 10000, 8, 4,
                                         /*priority=*/0,
                                         /*abits=*/4)));
    ASSERT_TRUE(q.popBatch(8, batch, now));
    EXPECT_EQ(batch.front().request.seed, 3u);
    ASSERT_TRUE(q.popBatch(8, batch, now));
    EXPECT_EQ(batch.front().request.seed, 4u);
}

TEST(RequestQueueTest, CoalescedWindowInheritsEarliestDeadline)
{
    // Merging a deadline-free or late-deadline request into an urgent
    // window must not launder the urgency away: the popped window
    // reports the earliest member deadline.
    RequestQueue q(16);
    const double now = 0.0;
    ASSERT_TRUE(q.submit(jobWithDeadline(500, 0, 1)));
    ASSERT_TRUE(q.submit(jobWithDeadline(100, 0, 2)));
    ASSERT_TRUE(q.submit(jobWithDeadline(300, 0, 3)));
    ASSERT_TRUE(q.submit(jobWithDeadline(kNoDeadlineMs, 0, 4)));

    std::vector<ServiceJob> batch;
    RequestQueue::PoppedWindow window;
    ASSERT_TRUE(q.popBatch(8, batch, now, &window));
    ASSERT_EQ(batch.size(), 4u);
    // Lead is EDF (100), then candidates in deadline order.
    EXPECT_EQ(batch[0].request.seed, 2u);
    EXPECT_EQ(batch[1].request.seed, 3u);
    EXPECT_EQ(batch[2].request.seed, 1u);
    EXPECT_EQ(batch[3].request.seed, 4u);
    EXPECT_EQ(window.deadlineAbsMs, 100.0);
}

TEST(RequestQueueTest, CostBoundedPackingRespectsMemberSlack)
{
    // The window executes as one dispatch barrier: a candidate may
    // join only while the cumulative predicted cost fits inside every
    // packed member's slack and its own. now = 0, so deadlineAbsMs is
    // the slack directly.
    RequestQueue q(16);
    ASSERT_TRUE(q.submit(jobWithDeadline(40, 10, 1)));
    ASSERT_TRUE(q.submit(jobWithDeadline(44, 10, 2)));
    ASSERT_TRUE(q.submit(jobWithDeadline(200, 50, 3)));
    ASSERT_TRUE(q.submit(jobWithDeadline(kNoDeadlineMs, 15, 4)));
    ASSERT_TRUE(q.submit(jobWithDeadline(42, 10, 5)));

    std::vector<ServiceJob> batch;
    RequestQueue::PoppedWindow window;
    // Lead = tag 1 (EDF, cum 10, window slack 40). Tag 2 packs
    // (cum 20 <= 40 and <= its own 44), tag 5 would push cum to 30 —
    // fine — but then tag 3 (cum 80) and finally... walk it: EDF
    // candidate order is 5 (42), 2 (44), 3 (200), 4 (inf).
    //   tag 5: cum 20 <= 40, <= 42 -> packed, min_slack 40
    //   tag 2: cum 30 <= 40, <= 44 -> packed
    //   tag 3: cum 80 > 40 -> left for a later window
    //   tag 4: cum 45 > 40 -> left (no deadline, but it would still
    //          push the packed members past theirs)
    ASSERT_TRUE(q.popBatch(8, batch, 0.0, &window));
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].request.seed, 1u);
    EXPECT_EQ(batch[1].request.seed, 5u);
    EXPECT_EQ(batch[2].request.seed, 2u);
    EXPECT_DOUBLE_EQ(window.predictedMs, 30.0);

    // Next window: tag 3 leads (EDF among the leftovers); tag 4's 15
    // ms would fit 200's slack (65 <= 150)... and does.
    ASSERT_TRUE(q.popBatch(8, batch, 0.0, &window));
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].request.seed, 3u);
    EXPECT_EQ(batch[1].request.seed, 4u);

    // Zero predictions reproduce the historical greedy coalescing:
    // everything packs regardless of deadlines.
    ASSERT_TRUE(q.submit(jobWithDeadline(5, 0, 6)));
    ASSERT_TRUE(q.submit(jobWithDeadline(kNoDeadlineMs, 0, 7)));
    ASSERT_TRUE(q.submit(jobWithDeadline(1, 0, 8)));
    ASSERT_TRUE(q.popBatch(8, batch, 0.0, &window));
    EXPECT_EQ(batch.size(), 3u);
}

// ---- deadlines: scheduler shed + accounting -----------------------------

TEST(ServiceScheduler_, ShedsUnmeetableDeadlinesExplicitly)
{
    ServiceConfig cfg;
    cfg.window = 4;
    cfg.sessions = 1;
    ASSERT_TRUE(cfg.plannedScheduling); // the default
    ServiceScheduler sched(cfg);
    sched.start();

    std::mutex mu;
    std::condition_variable cv;
    size_t responded = 0;
    std::map<uint64_t, std::string> lines;
    auto respond = [&](uint64_t id) {
        return [&, id](const std::string &line) {
            std::lock_guard<std::mutex> lock(mu);
            lines[id] = line;
            ++responded;
            cv.notify_one();
        };
    };

    // Three meetable requests (generous deadline) and one provably
    // unmeetable one: a full-size layer against a 1 ms deadline. The
    // built-in cost model predicts tens of milliseconds for it, so
    // the planner must shed it at admission — explicitly, with
    // deadline_unmeetable, never by silent drop.
    ServiceRequest small;
    small.shape = {128, 128, 64};
    small.samples = 8;
    small.deadlineMs = 60000;
    for (uint64_t id = 1; id <= 3; ++id) {
        small.id = id;
        sched.submit(small, respond(id));
    }
    ServiceRequest doomed;
    doomed.id = 4;
    doomed.shape = {4096, 4096, 2048};
    doomed.samples = 96;
    doomed.deadlineMs = 1;
    const double predicted = sched.planner().predictMs(doomed);
    EXPECT_GT(predicted, 1.0) << "fixture must be unmeetable";
    sched.submit(doomed, respond(4));

    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return responded == 4; });
    }
    sched.stop();

    EXPECT_TRUE(isDeadlineUnmeetableLine(lines[4])) << lines[4];
    EXPECT_NE(lines[4].find("\"id\":4"), std::string::npos);
    for (uint64_t id = 1; id <= 3; ++id)
        EXPECT_NE(lines[id].find("\"ok\":1"), std::string::npos)
            << lines[id];

    // The ledger balances: every submitted request is admitted,
    // rejected, or explicitly shed — and sheds are counted.
    const ServiceStats s = sched.stats();
    EXPECT_EQ(s.shedUnmeetable, 1u);
    EXPECT_EQ(s.admitted + s.rejected + s.shedUnmeetable, 4u);
    EXPECT_EQ(s.served, 3u);
    EXPECT_EQ(s.deadlineMet, 3u);
    EXPECT_EQ(s.deadlineMisses, 0u);
    EXPECT_EQ(s.scheduler, "planned");
}

TEST(ServiceScheduler_, FifoModeNeverShedsOnDeadline)
{
    ServiceConfig cfg;
    cfg.window = 4;
    cfg.sessions = 1;
    cfg.plannedScheduling = false;
    ServiceScheduler sched(cfg);
    sched.start();

    // The same doomed request FIFO mode must execute (late), not
    // shed: deadlines are observed for miss accounting only.
    ServiceRequest doomed;
    doomed.id = 1;
    doomed.shape = {256, 256, 128};
    doomed.samples = 8;
    doomed.deadlineMs = 1;
    std::promise<std::string> done;
    sched.submit(doomed, [&](const std::string &line) {
        done.set_value(line);
    });
    const std::string line = done.get_future().get();
    sched.stop();

    EXPECT_NE(line.find("\"ok\":1"), std::string::npos) << line;
    const ServiceStats s = sched.stats();
    EXPECT_EQ(s.shedUnmeetable, 0u);
    EXPECT_EQ(s.served, 1u);
    EXPECT_EQ(s.deadlineMet + s.deadlineMisses, 1u);
    EXPECT_EQ(s.scheduler, "fifo");
}

// ---- deadlines: determinism across policies -----------------------------

TEST(ServiceDeterminism, DeadlinesKeepBytesIdenticalUnderBothPolicies)
{
    // Deadline-bearing requests must produce byte-identical responses
    // under planned and fifo scheduling, at every tested {threads,
    // window, sessions, concurrency}: scheduling (and shedding
    // decisions, which this trace never triggers) may change dispatch
    // order only, never a response byte.
    std::vector<ServiceRequest> stamped = mixedTrace();
    for (size_t i = 0; i < stamped.size(); ++i) {
        stamped[i].id = i + 1;
        stamped[i].deadlineMs = 60000; // generous: never shed
    }
    const std::vector<std::string> expect =
        standaloneResponses(stamped);

    struct Case
    {
        bool planned;
        int threads;
        size_t window;
        int sessions;
        size_t concurrency;
    };
    const Case cases[] = {
        {true, 1, 4, 1, 8},
        {true, 2, 4, 2, 8},
        {false, 1, 4, 1, 8},
        {false, 2, 4, 2, 8},
    };
    for (const Case &c : cases) {
        ServiceConfig cfg;
        cfg.plannedScheduling = c.planned;
        cfg.threads = c.threads;
        cfg.window = c.window;
        cfg.sessions = c.sessions;
        const std::vector<std::string> got =
            schedulerResponses(cfg, stamped, c.concurrency);
        for (size_t i = 0; i < stamped.size(); ++i)
            EXPECT_EQ(got[i], expect[i])
                << (c.planned ? "planned" : "fifo") << " threads "
                << c.threads << " sessions " << c.sessions
                << " trace " << i;
    }
}

// ---- shared plan cache --------------------------------------------------

TEST(SharedPlanCache, AcceleratorUsesExternalCache)
{
    PlanCache shared(4096);
    TransArrayAccelerator::Config cfg;
    cfg.sampleLimit = 16;
    cfg.sharedPlanCache = &shared;
    const TransArrayAccelerator a(cfg), b(cfg);

    const GemmShape shape{256, 256, 128};
    const LayerRun first = a.runShape(shape, 4, 5);
    EXPECT_GT(shared.size(), 0u);
    const uint64_t misses_after_first = shared.counters().misses;

    // The second engine sees the first engine's plans: same results,
    // no new misses for an identical layer.
    const LayerRun second = b.runShape(shape, 4, 5);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(shared.counters().misses, misses_after_first);
    EXPECT_GT(shared.counters().hits, 0u);
}

// ---- trace context ------------------------------------------------------

TEST(ServiceProtocol, TraceFieldParsedValidatedAndRoundTrips)
{
    ServiceRequest req;
    std::string err;
    ASSERT_TRUE(parseRequestLine("{}", req, err)) << err;
    EXPECT_EQ(req.traceId, 0u); // default: untraced

    ASSERT_TRUE(parseRequestLine("{\"trace\":\"ab12\"}", req, err))
        << err;
    EXPECT_EQ(req.traceId, 0xab12u);

    // serializeRequest round-trips the field (the router forwards the
    // trace context to replicas) and omits it entirely for untraced
    // requests, so pre-tracing fixtures stay valid byte for byte.
    ServiceRequest out;
    ASSERT_TRUE(parseRequestLine(serializeRequest(req), out, err))
        << err;
    EXPECT_EQ(out.traceId, 0xab12u);
    req.traceId = 0;
    EXPECT_EQ(serializeRequest(req).find("trace"), std::string::npos);
}

TEST(ServiceProtocol, MalformedTraceRejectedStrictly)
{
    ServiceRequest req;
    std::string err;
    // Strict wire format: 1..16 lowercase hex digits, nonzero. Every
    // malformed variant is a hard parse error, never a silent default.
    EXPECT_FALSE(parseRequestLine("{\"trace\":\"\"}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"trace\":\"0\"}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"trace\":\"0000\"}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"trace\":\"ABC\"}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"trace\":\"0xab\"}", req, err));
    EXPECT_FALSE(parseRequestLine("{\"trace\":\"12g4\"}", req, err));
    EXPECT_FALSE(parseRequestLine(
        "{\"trace\":\"11112222333344445\"}", req, err)); // 17 digits
    // The widest valid id round-trips.
    ASSERT_TRUE(parseRequestLine(
        "{\"trace\":\"ffffffffffffffff\"}", req, err))
        << err;
    EXPECT_EQ(req.traceId, ~0ull);
}

TEST(ServiceProtocol, TraceIdNeverEchoedInResponses)
{
    LayerRun run;
    run.cycles = 100;
    run.computeCycles = 90;
    run.dramCycles = 100;
    run.dramBytes = 4096;
    run.subTiles = 7;
    ServiceRequest req;
    req.id = 9;

    ServiceRequest traced = req;
    traced.traceId = 0xdeadbeefull;
    const std::string plain = serializeResponse(req, run);
    const std::string with_trace = serializeResponse(traced, run);
    EXPECT_EQ(plain, with_trace)
        << "the trace field must be invisible in response bytes";
    EXPECT_EQ(with_trace.find("trace"), std::string::npos);
}

TEST(ServiceDeterminism, TracedRequestsKeepBytesIdentical)
{
    // Responses are byte-identical whether requests carry trace
    // context or not — tracing observes, never perturbs.
    std::vector<ServiceRequest> stamped = mixedTrace();
    for (size_t i = 0; i < stamped.size(); ++i)
        stamped[i].id = i + 1;
    const std::vector<std::string> expect =
        standaloneResponses(stamped);

    std::vector<ServiceRequest> traced = stamped;
    for (size_t i = 0; i < traced.size(); i += 2)
        traced[i].traceId = 0x1000 + i;
    ServiceConfig cfg;
    cfg.window = 4;
    cfg.sessions = 2;
    const std::vector<std::string> got =
        schedulerResponses(cfg, traced, 4);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], expect[i]) << "trace " << i;
}

TEST(ServiceScheduler_, StatsExposeGaugesAndLatencyHistogram)
{
    ServiceConfig cfg;
    cfg.window = 2;
    ServiceScheduler sched(cfg);
    sched.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

    std::vector<ServiceRequest> trace = mixedTrace();
    std::vector<std::promise<void>> done(trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
        trace[i].id = i + 1;
        sched.submit(trace[i], [&done, i](const std::string &) {
            done[i].set_value();
        });
    }
    for (std::promise<void> &p : done)
        p.get_future().wait();
    // Responders fire before the window's closing bookkeeping (gauge
    // decrement, latency observe); give the worker a moment to settle.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    const auto settled = [&] {
        const ServiceStats s = sched.stats();
        return s.inflightWindows == 0 && s.served == trace.size() &&
               !s.latencyHist.empty() &&
               s.latencyHist.back().second == trace.size();
    };
    while (!settled() && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));

    const ServiceStats s = sched.stats();
    EXPECT_EQ(s.served, trace.size());
    EXPECT_EQ(s.inflightWindows, 0u) << "drained scheduler";
    EXPECT_GE(s.uptimeMs, 1u);
    // Fixed-edge latency buckets: kNumEdges finite edges + _le_inf,
    // cumulative (monotone), with the overflow total == observations.
    ASSERT_EQ(s.latencyHist.size(),
              static_cast<size_t>(obs::Histogram::kNumEdges + 1));
    EXPECT_EQ(s.latencyHist.front().first, "service_ms_le_1");
    EXPECT_EQ(s.latencyHist.back().first, "service_ms_le_inf");
    EXPECT_EQ(s.latencyHist.back().second, trace.size());
    for (size_t i = 1; i < s.latencyHist.size(); ++i)
        EXPECT_GE(s.latencyHist[i].second,
                  s.latencyHist[i - 1].second)
            << s.latencyHist[i].first;

    sched.stop();
}

} // namespace
} // namespace ta
