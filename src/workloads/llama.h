/**
 * @file
 * LLaMA model configurations (versions 1, 2, 3 — the seven models of
 * Fig. 10) and the GEMM layer lists of one transformer block at prefill
 * sequence length 2048, the paper's methodology (Sec. 5.1: blocks are
 * identical, so one block is representative). FC layers are the
 * Q/K/V/O projections and the gate/up/down MLP; attention layers are
 * the per-head QK^T and PV GEMMs with the K/V cache treated as the
 * weight tensor (Sec. 5.7).
 */

#ifndef TA_WORKLOADS_LLAMA_H
#define TA_WORKLOADS_LLAMA_H

#include "workloads/gemm_workload.h"

namespace ta {

/** Architecture hyper-parameters of a LLaMA model. */
struct LlamaConfig
{
    std::string name;
    uint64_t hidden = 0;
    uint64_t ffn = 0;
    uint64_t heads = 0;
    uint64_t kvHeads = 0;  ///< grouped-query attention (LLaMA-3)
    uint64_t layers = 0;
    uint64_t seq = 2048;

    uint64_t headDim() const { return hidden / heads; }
    uint64_t kvDim() const { return kvHeads * headDim(); }
};

/** The seven evaluated models. */
LlamaConfig llama1_7b();
LlamaConfig llama1_13b();
LlamaConfig llama1_30b();
LlamaConfig llama1_65b();
LlamaConfig llama2_7b();
LlamaConfig llama2_13b();
LlamaConfig llama3_8b();

/** All of the above, in the paper's Fig. 10 order. */
std::vector<LlamaConfig> allLlamaModels();

/** FC (projection + MLP) GEMMs of one transformer block. */
WorkloadSuite llamaFcLayers(const LlamaConfig &cfg);

/** Attention-score GEMMs (QK^T, PV) of one block, per head. */
WorkloadSuite llamaAttentionLayers(const LlamaConfig &cfg);

} // namespace ta

#endif // TA_WORKLOADS_LLAMA_H
