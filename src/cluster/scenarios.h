/**
 * @file
 * Named adversarial serving scenarios and their CI gates. A
 * ScenarioSpec bundles everything `ta_loadgen --scenario` needs to
 * replay one deterministic stress pattern against a fresh cluster:
 * the seeded request trace, the arrival process (closed-loop
 * concurrency or open-loop offered arrival offsets), the cluster
 * shape (replicas, autoscaling bound, replica queue capacity), the
 * router's degradation knobs, and a seeded FaultPlan.
 *
 * The scenarios:
 *  - diurnal:              open-loop sinusoidal offered load over an
 *                          autoscaling cluster.
 *  - burst:                open-loop on/off bursts over tiny replica
 *                          queues — declared overload; admission
 *                          control sheds, nothing is lost.
 *  - zipf_engines:         Zipf-skewed engine popularity under
 *                          affinity routing (hot-slice stress).
 *  - crash_storm:          kill ceil(N/2) replicas mid-burst with
 *                          autoscaling on.
 *  - slow_client:          clients that stall their reads while the
 *                          main trace flows (backpressure stress).
 *  - cache_cold_stampede:  no warmup, high concurrency on few
 *                          engines — every replica plans cold at
 *                          once.
 *  - corrupt_cache_restart: corrupt a persisted plan-cache file and
 *                          kill its replica; the restart must reject
 *                          the snapshot and keep serving.
 *
 * Gates (checkScenarioGates): zero lost and zero duplicated
 * responses always; byte-verification mismatches always zero; shed
 * responses only when the scenario declares overload; non-overload
 * error responses never; p99 under the scenario's (generous,
 * liveness-flavored) bound; no slot abandoned; and at least
 * `minRestarts` crash-restarts where the scenario injects crashes.
 */

#ifndef TA_CLUSTER_SCENARIOS_H
#define TA_CLUSTER_SCENARIOS_H

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/fault_injector.h"
#include "service/protocol.h"

namespace ta {

/** Everything needed to replay one named scenario. */
struct ScenarioSpec
{
    std::string name;
    std::string description;

    /** Cluster shape. */
    int replicas = 3;
    /** > replicas turns autoscaling on up to this many slots. */
    int maxReplicas = 0;
    /** Replica admission queue bound (0 = server default). */
    size_t queueCap = 0;

    /** Router degradation knobs. */
    int requestTimeoutMs = 8000;
    int maxRedispatch = 6;

    /** Arrival process: closed loop at `concurrency`, or open loop
     *  issuing request i at offset arrivalSec[i]. */
    size_t concurrency = 8;
    bool openLoop = false;
    std::vector<double> arrivalSec;

    /** The seeded request trace (arrivalSec.size() == trace.size()
     *  when openLoop). */
    std::vector<ServiceRequest> trace;

    /** Seeded fault schedule, fired by request index. */
    FaultPlan faults;

    /** Slow-client sidecar: `slowClients` extra connections that
     *  pipeline `slowClientRequests` requests each and stall
     *  `stallReadMs` between response reads. */
    int slowClients = 0;
    int stallReadMs = 0;
    size_t slowClientRequests = 0;

    /** Plan-cache persistence (corrupt_cache faults need files). */
    bool needsCacheFiles = false;
    int cacheSaveIntervalSec = 0;

    /** Run a warmup pass before measuring. */
    bool warmup = true;

    /** Gates. */
    bool allowShed = false;   ///< shed only under declared overload
    double p99BoundMs = 60000; ///< deadline-ish tail bound
    uint64_t minRestarts = 0; ///< crash scenarios must restart
};

/** Every scenario name, in canonical order. */
std::vector<std::string> scenarioNames();

/**
 * Seeded scenario request trace: CI-sized mixed-suite shapes over
 * `enginePool` engine variants picked with a Zipf(`zipfS`) popularity
 * distribution (0 = uniform). Exposed for the slow-client sidecar
 * and the unit tests; buildScenario uses it for every trace.
 */
std::vector<ServiceRequest> scenarioTrace(uint64_t seed, size_t count,
                                          bool quick, int enginePool,
                                          double zipfS);

/**
 * Build the named scenario's spec (trace, arrivals and faults derive
 * from `seed`; quick shrinks counts and shapes to CI size). False +
 * `err` for an unknown name.
 */
bool buildScenario(const std::string &name, uint64_t seed, bool quick,
                   ScenarioSpec &out, std::string &err);

/** What one scenario run observed (filled by the loadgen driver). */
struct ScenarioOutcome
{
    double wallSec = 0;
    double rps = 0;
    double p50Ms = 0;
    double p95Ms = 0;
    double p99Ms = 0;
    uint64_t requests = 0;
    uint64_t served = 0;     ///< ok responses
    uint64_t shed = 0;       ///< explicit `overloaded` rejections
    uint64_t errors = 0;     ///< non-overload error responses
    uint64_t lost = 0;       ///< never answered
    uint64_t duplicated = 0; ///< answered more than once
    uint64_t mismatches = 0; ///< byte-verification failures
    uint64_t restarts = 0;
    uint64_t scaleUps = 0;
    uint64_t scaleDowns = 0;
    uint64_t abandoned = 0;
    bool pass = false;
    std::vector<std::string> failures;
};

/**
 * Evaluate the gates for `spec` over `outcome`: fills outcome.pass
 * and outcome.failures (one human-readable line per violated gate)
 * and returns outcome.pass. Pure.
 */
bool checkScenarioGates(const ScenarioSpec &spec,
                        ScenarioOutcome &outcome);

} // namespace ta

#endif // TA_CLUSTER_SCENARIOS_H
