/**
 * @file
 * ta_serve: the request-serving front-end over the simulator. Speaks
 * the line-delimited JSON protocol of docs/SERVICE.md on stdin/stdout
 * (default) or on a TCP port (--tcp), coalescing concurrent
 * same-engine requests into shared batch windows over one process-wide
 * plan cache. Every response is byte-identical to a standalone
 * `ta_sim --response` run of the same request.
 *
 * Usage:
 *   ta_serve [--threads N] [--window N] [--sessions N]
 *            [--queue-cap N] [--cache-capacity N]
 *            [--plan-cache FILE] [--cache-save-interval SEC]
 *            [--scheduler planned|fifo] [--cost-model FILE]
 *            [--catalog DIR] [--buffer-pages N]
 *            [--kernels scalar|avx2|neon|auto]
 *            [--trace-out FILE] [--port PORT | --tcp PORT]
 *
 * TCP mode: --port PORT (alias --tcp) listens on 127.0.0.1; PORT 0
 * binds a kernel-assigned ephemeral port. Either way the bound port
 * is announced on stdout as `listening <port>` so supervisors (the
 * cluster ReplicaManager, CI) never race on a fixed port.
 *
 * All diagnostics go to stderr; in stdio mode stdout carries only
 * protocol lines, in TCP mode only the listening announcement.
 */

#include <cstdio>
#include <string>

#include "common/cli.h"
#include "kernels/kernel_table.h"
#include "obs/trace.h"
#include "service/server.h"
#include "storage/buffer_manager.h"

using namespace ta;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--threads N] [--window N] [--sessions N]\n"
        "          [--queue-cap N] [--cache-capacity N]\n"
        "          [--plan-cache FILE] [--cache-save-interval SEC]\n"
        "          [--scheduler planned|fifo] [--cost-model FILE]\n"
        "          [--catalog DIR] [--buffer-pages N]\n"
        "          [--kernels scalar|avx2|neon|auto]\n"
        "          [--trace-out FILE] [--port PORT | --tcp PORT]\n"
        "  --threads        executor width per engine (default\n"
        "                   TA_THREADS, else 1)\n"
        "  --window         max requests coalesced per batch window\n"
        "                   (default 8; 1 disables cross-request\n"
        "                   batching)\n"
        "  --sessions       worker sessions draining the queue\n"
        "                   (default 2)\n"
        "  --queue-cap      admission-control queue bound (default\n"
        "                   256)\n"
        "  --cache-capacity shared plan-cache plans per scoreboard\n"
        "                   config (default 65536)\n"
        "  --plan-cache     warm-start/persist plans across restarts\n"
        "  --cache-save-interval\n"
        "                   also persist every SEC seconds while\n"
        "                   serving (default 0 = only at shutdown)\n"
        "  --scheduler      planned = cost-model EDF scheduling with\n"
        "                   deadline_unmeetable shedding (default);\n"
        "                   fifo = historical FIFO-within-priority\n"
        "  --cost-model     calibrated coefficients file from\n"
        "                   ta_calibrate (default: built-in model);\n"
        "                   a corrupt file is rejected and exits\n"
        "  --catalog        directory of ta_pack segment files;\n"
        "                   requests naming a model serve their\n"
        "                   weight plane from the catalog (byte-\n"
        "                   identical to synthesis). A corrupt or\n"
        "                   empty catalog is rejected and exits\n"
        "  --buffer-pages   buffer-manager residency bound in 4 KiB\n"
        "                   pages (default 4096)\n"
        "  --kernels        sub-tile kernel backend (responses are\n"
        "                   byte-identical for every backend; default\n"
        "                   TA_KERNELS, else auto)\n"
        "  --trace-out      record request spans and write Chrome\n"
        "                   trace-event JSON to FILE at shutdown\n"
        "                   (responses stay byte-identical; merge\n"
        "                   files with ta_trace)\n"
        "  --port / --tcp   listen on 127.0.0.1:PORT instead of\n"
        "                   stdin/stdout; 0 = ephemeral port. The\n"
        "                   bound port is printed on stdout as\n"
        "                   'listening <port>'\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    ServiceConfig cfg;
    std::string trace_out;
    long long tcp_port = 0;
    bool tcp_mode = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 2;
        }
        const bool known = a == "--threads" || a == "--window" ||
                           a == "--sessions" || a == "--queue-cap" ||
                           a == "--cache-capacity" ||
                           a == "--plan-cache" ||
                           a == "--cache-save-interval" ||
                           a == "--scheduler" ||
                           a == "--cost-model" ||
                           a == "--catalog" ||
                           a == "--buffer-pages" ||
                           a == "--kernels" ||
                           a == "--trace-out" ||
                           a == "--tcp" || a == "--port";
        if (!known) {
            std::fprintf(stderr, "unknown flag %s\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
        const char *v = argv[++i];
        bool ok = true;
        if (a == "--threads")
            ok = parseIntFlag(a, v, 1, 256, cfg.threads);
        else if (a == "--window")
            ok = parseSizeFlag(a, v, 1, 256, cfg.window);
        else if (a == "--sessions")
            ok = parseIntFlag(a, v, 1, 64, cfg.sessions);
        else if (a == "--queue-cap")
            ok = parseSizeFlag(a, v, 1, 1u << 20, cfg.queueCapacity);
        else if (a == "--cache-capacity")
            ok = parseSizeFlag(a, v, 0, 1u << 26,
                               cfg.planCacheCapacity);
        else if (a == "--plan-cache")
            cfg.planCachePath = v;
        else if (a == "--scheduler") {
            const std::string policy = v;
            if (policy == "planned") {
                cfg.plannedScheduling = true;
            } else if (policy == "fifo") {
                cfg.plannedScheduling = false;
            } else {
                std::fprintf(stderr,
                             "--scheduler: expected planned|fifo, "
                             "got '%s'\n",
                             v);
                ok = false;
            }
        }
        else if (a == "--cost-model")
            cfg.costModelPath = v;
        else if (a == "--catalog")
            cfg.catalogDir = v;
        else if (a == "--buffer-pages")
            ok = parseSizeFlag(a, v, 1, 1u << 26, cfg.bufferPages);
        else if (a == "--kernels") {
            std::string err;
            ok = setKernels(v, &err);
            if (!ok)
                std::fprintf(stderr, "--kernels: %s\n", err.c_str());
        }
        else if (a == "--trace-out")
            trace_out = v;
        else if (a == "--cache-save-interval")
            ok = parseIntFlag(a, v, 0, 86400,
                              cfg.cacheSaveIntervalSec);
        else if (a == "--tcp" || a == "--port") {
            ok = parseIntFlag(a, v, 0, 65535, tcp_port);
            tcp_mode = true;
        }
        if (!ok) {
            usage(argv[0]);
            return 2;
        }
    }

    if (!cfg.costModelPath.empty()) {
        // Pre-validate strictly: serving with silently-wrong
        // coefficients would change shed decisions, so a rejected
        // file is a startup error, not a fallback.
        CostModel probe;
        std::string err;
        if (!probe.loadFile(cfg.costModelPath, &err)) {
            std::fprintf(stderr, "--cost-model: %s\n", err.c_str());
            return 2;
        }
    }

    if (!cfg.catalogDir.empty()) {
        // Pre-validate strictly, same policy as --cost-model: serving
        // with a missing or corrupt catalog would turn every model
        // request into a runtime error, so a rejected catalog is a
        // startup error, not a fallback.
        BufferManager probe;
        std::string err;
        if (!probe.openCatalog(cfg.catalogDir, &err)) {
            std::fprintf(stderr, "--catalog: %s\n", err.c_str());
            return 2;
        }
    }

    if (!trace_out.empty())
        obs::Tracer::instance().enable(trace_out, "ta_serve");

    ServiceScheduler sched(cfg);
    sched.start();
    std::fprintf(stderr,
                 "ta_serve: %d session(s), window %zu, queue %zu, "
                 "%s kernels, %s mode\n",
                 sched.config().sessions, sched.config().window,
                 sched.config().queueCapacity, kernelArch(),
                 tcp_mode ? "tcp" : "stdio");

    const int rc = tcp_mode
                       ? serveTcp(sched,
                                  static_cast<uint16_t>(tcp_port))
                       : serveStdio(sched);
    sched.stop();

    const ServiceStats s = sched.stats();
    std::fprintf(stderr,
                 "ta_serve: served %llu (rejected %llu) in %llu "
                 "windows (max %llu, %llu batched), plan cache "
                 "%llu/%llu hits (%.1f%%), service p50/p95/p99 "
                 "%.2f/%.2f/%.2f ms\n",
                 static_cast<unsigned long long>(s.served),
                 static_cast<unsigned long long>(s.rejected),
                 static_cast<unsigned long long>(s.windows),
                 static_cast<unsigned long long>(s.maxWindow),
                 static_cast<unsigned long long>(s.batchedRequests),
                 static_cast<unsigned long long>(s.cacheHits),
                 static_cast<unsigned long long>(s.cacheHits +
                                                 s.cacheMisses),
                 100.0 * s.hitRate(), s.serviceMs.p50, s.serviceMs.p95,
                 s.serviceMs.p99);
    if (!trace_out.empty()) {
        obs::Tracer &tracer = obs::Tracer::instance();
        if (tracer.flush())
            std::fprintf(stderr,
                         "ta_serve: wrote %llu span(s) to %s "
                         "(%llu dropped)\n",
                         static_cast<unsigned long long>(
                             tracer.spanCount()),
                         trace_out.c_str(),
                         static_cast<unsigned long long>(
                             tracer.dropped()));
        else
            std::fprintf(stderr, "ta_serve: failed to write %s\n",
                         trace_out.c_str());
    }
    return rc;
}
