/** @file Unit + property tests for the Benes network (Sec. 4.4). */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "noc/benes.h"

namespace ta {
namespace {

std::vector<int64_t>
iota(uint32_t n)
{
    std::vector<int64_t> v(n);
    std::iota(v.begin(), v.end(), 100);
    return v;
}

void
checkPermutation(BenesNetwork &net, const std::vector<uint32_t> &perm)
{
    const auto routing = net.route(perm);
    const auto in = iota(net.ports());
    const auto out = net.apply(routing, in);
    ASSERT_EQ(out.size(), perm.size());
    for (size_t o = 0; o < perm.size(); ++o)
        EXPECT_EQ(out[o], in[perm[o]]) << "output " << o;
}

TEST(Benes, StageCountFormula)
{
    EXPECT_EQ(BenesNetwork(2).numStages(), 1u);
    EXPECT_EQ(BenesNetwork(4).numStages(), 3u);
    EXPECT_EQ(BenesNetwork(8).numStages(), 5u);
    EXPECT_EQ(BenesNetwork(16).numStages(), 7u);
}

TEST(Benes, SwitchCountFormula)
{
    EXPECT_EQ(BenesNetwork(8).numSwitches(), 5u * 4);
    EXPECT_EQ(BenesNetwork(16).numSwitches(), 7u * 8);
}

TEST(Benes, RejectsNonPow2)
{
    EXPECT_THROW(BenesNetwork(3), std::logic_error);
    EXPECT_THROW(BenesNetwork(0), std::logic_error);
    EXPECT_THROW(BenesNetwork(12), std::logic_error);
}

TEST(Benes, RejectsNonPermutation)
{
    BenesNetwork net(4);
    EXPECT_THROW(net.route({0, 0, 1, 2}), std::logic_error);
    EXPECT_THROW(net.route({0, 1, 2}), std::logic_error);
    EXPECT_THROW(net.route({0, 1, 2, 4}), std::logic_error);
}

TEST(Benes, IdentityTwoPorts)
{
    BenesNetwork net(2);
    checkPermutation(net, {0, 1});
    checkPermutation(net, {1, 0});
}

TEST(Benes, AllPermutationsOfFour)
{
    BenesNetwork net(4);
    std::vector<uint32_t> perm = {0, 1, 2, 3};
    do {
        checkPermutation(net, perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(Benes, AllPermutationsOfEightSampled)
{
    // 8! = 40320 is feasible but slow under sanitizers; check a rotation
    // family, reversals and 2000 random permutations.
    BenesNetwork net(8);
    std::vector<uint32_t> perm(8);
    for (uint32_t r = 0; r < 8; ++r) {
        for (uint32_t i = 0; i < 8; ++i)
            perm[i] = (i + r) % 8;
        checkPermutation(net, perm);
    }
    std::iota(perm.begin(), perm.end(), 0);
    std::reverse(perm.begin(), perm.end());
    checkPermutation(net, perm);

    Rng rng(4242);
    std::iota(perm.begin(), perm.end(), 0);
    for (int t = 0; t < 2000; ++t) {
        for (size_t i = perm.size() - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.uniformInt(0, i)]);
        checkPermutation(net, perm);
    }
}

TEST(Benes, RandomPermutationsSixtyFourPorts)
{
    BenesNetwork net(64);
    Rng rng(7);
    std::vector<uint32_t> perm(64);
    std::iota(perm.begin(), perm.end(), 0);
    for (int t = 0; t < 50; ++t) {
        for (size_t i = perm.size() - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.uniformInt(0, i)]);
        checkPermutation(net, perm);
    }
}

TEST(Benes, RoutingSwitchCountBounded)
{
    BenesNetwork net(8);
    const auto routing = net.route({7, 6, 5, 4, 3, 2, 1, 0});
    EXPECT_LE(routing.switchCount(), net.numSwitches());
    EXPECT_GT(routing.switchCount(), 0u);
}

} // namespace
} // namespace ta
