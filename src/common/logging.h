/**
 * @file
 * gem5-style status and error reporting. fatal() is for user errors (bad
 * configuration), panic() for internal invariant violations, warn()/inform()
 * for non-terminating diagnostics.
 *
 * Runtime components (service, cluster, storage) log through the
 * leveled `logf()` instead of raw fprintf: one `component: message`
 * line per call on stderr, filtered by the `TA_LOG_LEVEL` environment
 * variable (`error`, `warn`, `info` — the default — or `debug`; a
 * bare digit 0–3 also works). The level is resolved once per process.
 */

#ifndef TA_COMMON_LOGGING_H
#define TA_COMMON_LOGGING_H

#include <cstdlib>
#include <sstream>
#include <string>

namespace ta {

/** Severity of a logf() line; smaller is more severe. */
enum class LogLevel : int {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/** True when `level` passes the TA_LOG_LEVEL filter. */
bool logEnabled(LogLevel level);

/**
 * Emit one `component: message` line to stderr when `level` passes
 * the filter. printf-style; the component is a short subsystem tag
 * ("service", "cluster", "faults", "plan-cache", ...).
 */
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 3, 4)))
#endif
void logf(LogLevel level, const char *component, const char *fmt, ...);

namespace detail {

/** Concatenate a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Terminate due to a user error (bad config, invalid argument). */
#define TA_FATAL(...) \
    ::ta::detail::fatalImpl(__FILE__, __LINE__, \
                            ::ta::detail::concat(__VA_ARGS__))

/** Terminate due to an internal bug (invariant violation). */
#define TA_PANIC(...) \
    ::ta::detail::panicImpl(__FILE__, __LINE__, \
                            ::ta::detail::concat(__VA_ARGS__))

/** panic() unless the condition holds. */
#define TA_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::ta::detail::panicImpl(__FILE__, __LINE__, \
                ::ta::detail::concat("assertion failed: " #cond " ", \
                                     ##__VA_ARGS__)); \
        } \
    } while (0)

/** Non-fatal warning to stderr. */
#define TA_WARN(...) \
    ::ta::detail::warnImpl(::ta::detail::concat(__VA_ARGS__))

/** Informational message to stderr. */
#define TA_INFORM(...) \
    ::ta::detail::informImpl(::ta::detail::concat(__VA_ARGS__))

} // namespace ta

#endif // TA_COMMON_LOGGING_H
