/**
 * @file
 * Small blocking loopback-socket helpers shared by the cluster's
 * ReplicaManager (health probes, graceful shutdown) and Router
 * (replica connections) — one implementation, so fixes like EINTR
 * handling or close-on-exec never diverge between the two.
 */

#ifndef TA_CLUSTER_NET_H
#define TA_CLUSTER_NET_H

#include <cstdint>
#include <string>

namespace ta {

/**
 * Blocking connect to 127.0.0.1:`port`, bounded by `timeout_ms`;
 * returns the fd, or -1 on failure. The fd is marked close-on-exec so
 * spawned replicas never inherit live connections.
 *
 * With `keep_io_timeouts` (the default) the timeout stays installed
 * as SO_RCVTIMEO/SO_SNDTIMEO — right for short-lived probe/shutdown
 * exchanges. Long-lived connections (the Router's upstreams) must
 * pass false: a receive timeout on a connection that is legitimately
 * idle, or mid-computation, reads as EOF and would be treated as a
 * replica death.
 */
int connectLoopback(uint16_t port, int timeout_ms,
                    bool keep_io_timeouts = true);

/** Write all of `data`; false on any short/failed write (EINTR
 *  retried). */
bool writeAll(int fd, const std::string &data);

/**
 * Read one '\n'-terminated line (without the '\n') within
 * `timeout_ms`; false on EOF or deadline.
 */
bool readLineTimeout(int fd, int timeout_ms, std::string &line);

} // namespace ta

#endif // TA_CLUSTER_NET_H
