/**
 * @file
 * Ablations of the scoreboard design choices DESIGN.md §6 calls out:
 *
 *  (1) maxDistance cutoff (Alg. 1 line 7): density / TR nodes /
 *      outlier ops as the prefix search range widens;
 *  (2) lane balancing (Sec. 2.4): PPE critical path with the
 *      round-robin-like workload counter vs. naive first-candidate
 *      assignment;
 *  (3) prefix-buffer banking (Sec. 4.4): APE stall cycles vs. the
 *      number of crossbar banks.
 *
 * The per-trial loops of (2) and (3) run as sweepGrid() points across
 * the harness executor — each trial is independent and lands in its
 * own slot, so the averages are bit-identical to the serial loops.
 */

#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/dispatcher.h"
#include "harness/harness.h"
#include "scoreboard/analyzer.h"
#include "workloads/generators.h"

using namespace ta;

namespace {

std::vector<TransRow>
randomRows(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<TransRow> rows(n);
    for (size_t i = 0; i < n; ++i)
        rows[i] = {static_cast<uint32_t>(rng.uniformInt(0, 255)),
                   static_cast<uint32_t>(i)};
    return rows;
}

int
runAblationScoreboard(HarnessContext &ctx)
{
    const MatBit bits = randomBinaryMatrix(ctx.quick() ? 512 : 2048, 256,
                                           0.5, ctx.seed(777));
    ParallelExecutor &pool = ctx.executor();

    // ---- (1) maxDistance sweep ----------------------------------------
    Table t1("Ablation 1: prefix search range (T=8, 64-row tiles)");
    t1.setHeader({"maxDistance", "Total density (%)", "TR nodes",
                  "Outlier extra ops", "Dist hist 1/2/3+"});
    const std::vector<int> max_dists = {2, 3, 4, 6, 8};
    const std::vector<SparsityStats> md_stats =
        sweepGrid(pool, max_dists.size(), [&](size_t i) {
            ScoreboardConfig c;
            c.tBits = 8;
            c.maxDistance = max_dists[i];
            return SparsityAnalyzer(c).analyzeDynamic(bits, 64);
        });
    for (size_t i = 0; i < max_dists.size(); ++i) {
        const SparsityStats &s = md_stats[i];
        uint64_t d3 = 0;
        for (size_t j = 2; j < s.distHist.size(); ++j)
            d3 += s.distHist[j];
        t1.addRow({std::to_string(max_dists[i]),
                   Table::fmt(100 * s.totalDensity(), 2),
                   std::to_string(s.trNodes),
                   std::to_string(s.outlierExtra),
                   std::to_string(s.distHist[0]) + "/" +
                       std::to_string(s.distHist[1]) + "/" +
                       std::to_string(d3)});
        ctx.metric("density_maxdist" + std::to_string(max_dists[i]) +
                       "_pct",
                   100 * s.totalDensity());
    }
    t1.print();

    // ---- (2) lane balancing on/off -------------------------------------
    Table t2("Ablation 2: lane balancing (T=8, 256-row sub-tiles)");
    t2.setHeader({"Policy", "Avg PPE cycles (max lane)",
                  "Avg mean lane", "Imbalance"});
    const int trials = ctx.quick() ? 16 : 64;
    for (bool balance : {true, false}) {
        ScoreboardConfig c;
        c.tBits = 8;
        c.balanceLanes = balance;
        struct LaneLoad
        {
            double mx = 0, mean = 0;
        };
        const std::vector<LaneLoad> loads =
            sweepGrid(pool, trials, [&](size_t i) {
                const Scoreboard sb(c);
                const Plan plan = sb.build(randomRows(256, 1000 + i));
                const auto lanes = plan.laneOps();
                uint64_t mx = 0, sum = 0;
                for (uint64_t l : lanes) {
                    mx = std::max(mx, l);
                    sum += l;
                }
                return LaneLoad{static_cast<double>(mx),
                                static_cast<double>(sum) / lanes.size()};
            });
        double max_sum = 0, mean_sum = 0;
        for (const LaneLoad &l : loads) {
            max_sum += l.mx;
            mean_sum += l.mean;
        }
        t2.addRow({balance ? "balanced (paper)" : "naive first-prefix",
                   Table::fmt(max_sum / trials, 2),
                   Table::fmt(mean_sum / trials, 2),
                   Table::fmt(max_sum / mean_sum, 2)});
        ctx.metric(balance ? "imbalance_balanced" : "imbalance_naive",
                   max_sum / mean_sum);
    }
    t2.print();

    // ---- (3) prefix-buffer banks ----------------------------------------
    Table t3("Ablation 3: prefix-buffer banks (256-row sub-tiles)");
    t3.setHeader({"Banks", "Avg APE cycles", "Avg stall cycles"});
    const int bank_trials = ctx.quick() ? 8 : 32;
    for (uint32_t banks : {1u, 2u, 4u, 8u, 16u, 32u}) {
        struct Cycles
        {
            double ape = 0, stall = 0;
        };
        const std::vector<Cycles> runs =
            sweepGrid(pool, bank_trials, [&](size_t i) {
                Dispatcher::Config dc;
                dc.tBits = 8;
                dc.prefixBanks = banks;
                Dispatcher d(dc);
                ScoreboardConfig c;
                c.tBits = 8;
                const Scoreboard sb(c);
                const auto rows = randomRows(256, 2000 + i);
                const auto r = d.dispatch(sb.build(rows), rows);
                return Cycles{static_cast<double>(r.apeCycles),
                              static_cast<double>(r.xbarStallCycles)};
            });
        double ape = 0, stall = 0;
        for (const Cycles &r : runs) {
            ape += r.ape;
            stall += r.stall;
        }
        t3.addRow({std::to_string(banks),
                   Table::fmt(ape / bank_trials, 1),
                   Table::fmt(stall / bank_trials, 1)});
        ctx.metric("stall_cycles_banks" + std::to_string(banks),
                   stall / bank_trials);
    }
    t3.print();

    std::printf(
        "Takeaways: (1) maxDistance=4 captures virtually all reuse —\n"
        "wider search buys nothing on 64-row tiles but longer Hasse\n"
        "chains; (2) the workload counter keeps the longest lane within\n"
        "a few percent of the mean, while naive assignment stretches\n"
        "the PPE critical path; (3) T=8 banks make crossbar stalls\n"
        "negligible, matching the paper's distributed-buffer choice.\n");
    return 0;
}

} // namespace

TA_BENCHMARK("ablation_scoreboard",
             "scoreboard ablations: maxDistance, lane balancing, "
             "prefix banks",
             runAblationScoreboard);
