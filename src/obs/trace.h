/**
 * @file
 * Always-on-capable request tracing: per-thread lock-free span rings
 * flushed to Chrome trace-event JSON.
 *
 * A span is `(trace_id, span_id, parent, name, t0, t1, args)` with
 * steady-clock nanosecond timestamps. CLOCK_MONOTONIC is system-wide
 * on Linux, so spans recorded by different processes on one host merge
 * onto a single timeline — `ta_trace` stitches a request's client,
 * router and replica spans by trace id.
 *
 * Design rules, in the spirit of Dapper-style low-overhead tracing:
 *
 *  - **Off means off.** The tracer is process-global and disabled
 *    until `--trace-out` calls `enable()`. A disabled `SpanScope` is
 *    one relaxed atomic load; no allocation, no clock read.
 *  - **Single-writer rings.** Each thread records into its own
 *    preallocated ring; the only lock is taken once per thread to
 *    register the ring. Publication is an acquire/release size
 *    counter, so `flush()` can run concurrently with recording.
 *  - **Drop, never block.** A full ring drops the new span and counts
 *    it (`dropped()`); earlier spans — the parents — survive, so a
 *    truncated trace degrades to missing leaves, not orphans.
 *  - **Static names only.** Span names and arg keys must be string
 *    literals; the ring stores the pointer.
 *
 * Trace ids travel on the wire as the protocol's `trace` field
 * (lowercase hex, never echoed in responses — see
 * docs/OBSERVABILITY.md). Span ids are process-local; `(pid, span_id)`
 * is globally unique and parents always refer to spans of the same
 * process.
 */

#ifndef TA_OBS_TRACE_H
#define TA_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ta {
namespace obs {

/** One completed span. POD; lives in a preallocated ring slot. */
struct Span
{
    uint64_t traceId = 0; ///< request identity; 0 = untraced
    uint64_t spanId = 0;  ///< process-local, minted by the tracer
    uint64_t parent = 0;  ///< span id in the same process; 0 = root
    const char *name = "";   ///< static string literal
    const char *argKey = nullptr; ///< optional static key (e.g. "window")
    uint64_t argVal = 0;
    uint64_t t0Ns = 0; ///< steady-clock nanoseconds
    uint64_t t1Ns = 0;
    uint32_t tid = 0; ///< registration-order thread index
};

/** Process-global span sink. Thread-safe. */
class Tracer
{
  public:
    /** Spans each thread can hold before dropping. */
    static constexpr size_t kRingCapacity = 1 << 16;

    static Tracer &instance();

    /**
     * Turn recording on and remember where `flush()` writes. `process`
     * labels the Chrome process row (e.g. "ta_serve"). Idempotent;
     * later calls just update the destination.
     */
    void enable(const std::string &path, const std::string &process);

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Steady-clock now, in nanoseconds. */
    static uint64_t nowNs();

    /** Mint a process-locally-unique span id (never 0). */
    uint64_t mintSpanId()
    {
        return nextSpan_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Record a completed span into the calling thread's ring. */
    void record(const Span &span);

    /**
     * Write every span recorded so far as Chrome trace-event JSON to
     * the enabled path. Safe to call while other threads still
     * record (they keep appending; a later flush rewrites the file
     * with the fuller picture). Returns false on I/O failure or when
     * never enabled.
     */
    bool flush();

    /** Spans dropped on ring overflow since enable(). */
    uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Spans currently recorded across all rings. */
    uint64_t spanCount() const;

    /** Bytes written by the last successful flush(). */
    uint64_t flushedBytes() const
    {
        return flushedBytes_.load(std::memory_order_relaxed);
    }

  private:
    struct Ring
    {
        std::vector<Span> spans;   ///< capacity fixed at registration
        std::atomic<size_t> size{0}; ///< published slots
        uint32_t tid = 0;
    };

    Tracer() = default;
    Ring *threadRing();

    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> nextSpan_{1};
    std::atomic<uint64_t> dropped_{0};
    std::atomic<uint64_t> flushedBytes_{0};
    mutable std::mutex mu_; ///< guards rings_ registration + path
    std::vector<std::unique_ptr<Ring>> rings_;
    std::string path_;
    std::string process_;
};

/**
 * RAII span: stamps t0 at construction, records at destruction. A
 * scope built while the tracer is disabled (or with traceId 0) does
 * nothing at all.
 */
class SpanScope
{
  public:
    SpanScope(uint64_t trace_id, const char *name, uint64_t parent = 0)
    {
        Tracer &tracer = Tracer::instance();
        if (trace_id == 0 || !tracer.enabled())
            return;
        span_.traceId = trace_id;
        span_.spanId = tracer.mintSpanId();
        span_.parent = parent;
        span_.name = name;
        span_.t0Ns = Tracer::nowNs();
        live_ = true;
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    ~SpanScope() { finish(); }

    /** Record now instead of at scope exit. Idempotent. */
    void finish()
    {
        if (!live_)
            return;
        live_ = false;
        span_.t1Ns = Tracer::nowNs();
        Tracer::instance().record(span_);
    }

    /** Attach the single optional argument. `key` must be static. */
    void setArg(const char *key, uint64_t value)
    {
        span_.argKey = key;
        span_.argVal = value;
    }

    /** This span's id, for parenting children; 0 when not recording. */
    uint64_t id() const { return live_ ? span_.spanId : 0; }

    bool recording() const { return live_; }

  private:
    Span span_;
    bool live_ = false;
};

/**
 * Mint a nonzero trace id. Deterministically derived from a global
 * counter mixed (splitmix64) with `salt` and the pid, so concurrent
 * clients minting against the same cluster do not collide.
 */
uint64_t mintTraceId(uint64_t salt);

/** Render a trace id as the wire format: lowercase hex, no prefix. */
std::string traceIdHex(uint64_t id);

/**
 * Parse the protocol `trace` field: 1..16 lowercase hex digits,
 * nonzero. Returns false (out untouched) on anything else.
 */
bool parseTraceId(const std::string &hex, uint64_t &out);

} // namespace obs
} // namespace ta

#endif // TA_OBS_TRACE_H
