/**
 * @file
 * Fig. 12: speedups on Attention layers (QK^T and PV at sequence 2048,
 * K/V cache treated as the weight operand) for LLaMA-1-7B, LLaMA-2-13B
 * and LLaMA-3-8B. Baselines that rely on offline weight preprocessing
 * cannot run attention; the comparison is BitFusion-16bit (=1x),
 * ANT/BitFusion-8bit, and TransArray-8bit with the dynamic scoreboard.
 */

#include <cmath>
#include <cstdio>

#include "baselines/baseline.h"
#include "common/table.h"
#include "harness/harness.h"
#include "workloads/llama.h"
#include "workloads/suite_runner.h"

using namespace ta;

namespace {

uint64_t
baselineCycles(const BaselineAccelerator &acc, const WorkloadSuite &s,
               int bits, ParallelExecutor &pool)
{
    // Shared baseline suite driver: layers shard across the executor
    // with slot-order merges (bit-identical to the serial loop).
    return runBaselineSuite(acc, s, bits, bits, 0.5, &pool).total.cycles;
}

int
runFig12(HarnessContext &ctx)
{
    TransArrayAccelerator::Config tc;
    tc.sampleLimit = ctx.quick() ? 16 : 64;
    const auto ta_acc = ctx.makeAccelerator(tc);
    auto bf = makeBaseline("BitFusion");
    auto ant = makeBaseline("ANT");
    // Historical convention: every model's attention suite restarts at
    // seed 100 (layer i then draws layerSeed(100, i) = 100 + i).
    const uint64_t seed = ctx.seed(100);

    Table t("Fig. 12: attention-layer speedup over BitFusion-16bit");
    t.setHeader({"Model", "BitFusion-16bit", "ANT/BitFusion-8bit",
                 "TransArray-8bit"});

    std::vector<double> sp8, spta;
    ParallelExecutor &pool = ctx.executor();
    for (const LlamaConfig &model :
         {llama1_7b(), llama2_13b(), llama3_8b()}) {
        const WorkloadSuite s = llamaAttentionLayers(model);
        const uint64_t bf16 = baselineCycles(*bf, s, 16, pool);
        const uint64_t ant8 = baselineCycles(*ant, s, 8, pool);
        // Shared suite driver (threading + plan cache + seed rule +
        // batched layers-in-flight dispatch).
        const uint64_t ta8 =
            suiteCycles(*ta_acc, s, 8, seed, ctx.batch(8));
        const double s8 = static_cast<double>(bf16) / ant8;
        const double sta = static_cast<double>(bf16) / ta8;
        sp8.push_back(s8);
        spta.push_back(sta);
        t.addRow({model.name, "1.00", Table::fmt(s8, 2),
                  Table::fmt(sta, 2)});
        ctx.metric("cycles_ta8_" + model.name, ta8);
        ctx.metric("speedup_ta8_" + model.name, sta);
    }
    auto geo = [](const std::vector<double> &v) {
        double acc = 0;
        for (double x : v)
            acc += std::log(x);
        return std::exp(acc / v.size());
    };
    t.addRow({"Geomean", "1.00", Table::fmt(geo(sp8), 2),
              Table::fmt(geo(spta), 2)});
    t.print();

    ctx.metric("geomean_speedup_ant8", geo(sp8));
    ctx.metric("geomean_speedup_ta8", geo(spta));

    std::printf(
        "Shape check vs paper: ANT-8bit ~2.58x and TA-8bit ~3.97x over\n"
        "BitFusion-16bit (TA ~1.54x over ANT). Attention is largely\n"
        "bound by streaming the seq x seq score tensors, which caps\n"
        "TA's compute advantage. Olive/Tender/BitVert are absent: their\n"
        "offline weight preprocessing cannot handle runtime K/V.\n");
    return 0;
}

} // namespace

TA_BENCHMARK("fig12",
             "attention-layer speedups (QK^T, PV) vs BitFusion/ANT",
             runFig12);
