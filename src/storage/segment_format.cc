#include "storage/segment_format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>

#include "common/bitutil.h"

namespace ta {

namespace {

// Sanity bounds: reject absurd counts before allocating (a corrupt
// file must fail cleanly, not OOM) — same policy as PlanCacheStore.
constexpr uint64_t kMaxModels = 1u << 16;
constexpr uint64_t kMaxEntriesPerModel = 1u << 20;
constexpr uint64_t kMaxNameLen = 1u << 10;
constexpr uint64_t kMaxPlaneBytes = 1ull << 34; ///< 16 GiB per plane

/** Append-only little builder over a byte vector (the catalog blob is
 *  built in memory, then laid out into pages). */
struct BlobWriter
{
    std::vector<uint8_t> bytes;

    template <typename T>
    void
    put(T v)
    {
        const uint8_t *p = reinterpret_cast<const uint8_t *>(&v);
        bytes.insert(bytes.end(), p, p + sizeof(v));
    }

    void
    putString(const std::string &s)
    {
        put(static_cast<uint64_t>(s.size()));
        bytes.insert(bytes.end(), s.begin(), s.end());
    }
};

/** Bounds-checked reader over the mapped catalog blob. */
struct BlobReader
{
    const uint8_t *p = nullptr;
    size_t n = 0;
    size_t off = 0;
    bool ok = true;

    template <typename T>
    T
    get()
    {
        T v{};
        if (!ok || off + sizeof(v) > n) {
            ok = false;
            return v;
        }
        std::memcpy(&v, p + off, sizeof(v));
        off += sizeof(v);
        return v;
    }

    std::string
    getString(uint64_t max_len)
    {
        const uint64_t len = get<uint64_t>();
        if (!ok || len > max_len || off + len > n) {
            ok = false;
            return "";
        }
        std::string s(reinterpret_cast<const char *>(p + off), len);
        off += len;
        return s;
    }
};

/** Fixed-layout header at the start of page 0. */
struct SegmentHeader
{
    uint32_t magic = 0;
    uint32_t version = 0;
    uint32_t pageSize = 0;
    uint32_t reserved = 0;
    uint64_t totalPages = 0;
    uint64_t dataPageStart = 0;
    uint64_t dataPageCount = 0;
    uint64_t catalogBytes = 0;
    uint64_t modelCount = 0;
    uint64_t entryCount = 0;
    uint64_t catalogFnv = 0;
    uint64_t headerFnv = 0; ///< FNV of every field above this one
};

/** Fixed-layout trailer at the start of the last page. */
struct SegmentTrailer
{
    uint32_t magic = 0;
    uint32_t version = 0;
    uint64_t fileFnv = 0; ///< FNV of pages [0, dataPageStart)
};

bool
fail(std::string *err, const std::string &msg)
{
    if (err != nullptr)
        *err = msg;
    return false;
}

} // namespace

uint64_t
fnv64(const void *data, size_t n, uint64_t h)
{
    const unsigned char *b = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= b[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

bool
writeSegmentFile(const std::string &path,
                 const std::vector<SegmentModelInput> &models,
                 std::string *err)
{
    if (models.empty())
        return fail(err, path + ": nothing to pack (no models)");

    // ---- validate inputs and lay out the data region ---------------
    uint64_t entry_count = 0;
    uint64_t data_pages = 0;
    for (const SegmentModelInput &m : models) {
        if (m.name.empty() || m.name.size() > kMaxNameLen)
            return fail(err, path + ": bad model name");
        if (m.entries.empty())
            return fail(err,
                        path + ": model '" + m.name + "' has no layers");
        for (const SegmentEntryInput &e : m.entries) {
            const uint64_t rows =
                static_cast<uint64_t>(e.wbits) * e.reprRows;
            const uint64_t stride = ceilDiv(e.reprCols, uint64_t{8});
            if (e.wbits < 1 || e.wbits > 16 || e.reprRows == 0 ||
                e.reprCols == 0 ||
                e.packed.size() != rows * stride ||
                rows * stride > kMaxPlaneBytes)
                return fail(err, path + ": model '" + m.name +
                                     "' layer '" + e.layer +
                                     "': inconsistent plane geometry");
            data_pages += ceilDiv(rows * stride, kSegmentPageSize);
            ++entry_count;
        }
    }

    // ---- catalog blob (entries first, then per-data-page FNVs) ------
    // The blob is a pure function of the inputs: model order, entry
    // order and page assignment all follow the input vector, so two
    // packs of the same suite are byte-identical.
    BlobWriter blob;
    std::vector<const SegmentEntryInput *> planes; // data-region order
    blob.put(static_cast<uint64_t>(models.size()));
    uint64_t next_page = 0; // relative to dataPageStart, patched below
    for (const SegmentModelInput &m : models) {
        blob.putString(m.name);
        blob.put(m.baseSeed);
        blob.put(static_cast<uint32_t>(m.wbits));
        blob.put(static_cast<uint64_t>(m.entries.size()));
        for (const SegmentEntryInput &e : m.entries) {
            const uint64_t rows =
                static_cast<uint64_t>(e.wbits) * e.reprRows;
            const uint64_t stride = ceilDiv(e.reprCols, uint64_t{8});
            const uint64_t bytes = rows * stride;
            const uint64_t pages = ceilDiv(bytes, kSegmentPageSize);
            blob.putString(e.layer);
            blob.put(e.n);
            blob.put(e.k);
            blob.put(e.m);
            blob.put(e.seed);
            blob.put(static_cast<uint32_t>(e.wbits));
            blob.put(e.reprRows);
            blob.put(e.reprCols);
            blob.put(rows);
            blob.put(stride);
            blob.put(bytes);
            blob.put(next_page); // patched to absolute on read side
            blob.put(pages);
            planes.push_back(&e);
            next_page += pages;
        }
    }

    // Per-page FNVs of the (zero-padded) data pages.
    blob.put(data_pages);
    std::vector<uint8_t> page(kSegmentPageSize);
    for (const SegmentEntryInput *e : planes) {
        size_t off = 0;
        while (off < e->packed.size()) {
            const size_t n =
                std::min(kSegmentPageSize, e->packed.size() - off);
            std::memset(page.data(), 0, kSegmentPageSize);
            std::memcpy(page.data(), e->packed.data() + off, n);
            blob.put(fnv64(page.data(), kSegmentPageSize));
            off += n;
        }
    }

    const uint64_t catalog_pages =
        ceilDiv(blob.bytes.size(), kSegmentPageSize);
    const uint64_t data_page_start = 1 + catalog_pages;
    const uint64_t total_pages = data_page_start + data_pages + 1;

    // ---- header -----------------------------------------------------
    SegmentHeader h;
    h.magic = kSegmentMagic;
    h.version = kSegmentVersion;
    h.pageSize = static_cast<uint32_t>(kSegmentPageSize);
    h.totalPages = total_pages;
    h.dataPageStart = data_page_start;
    h.dataPageCount = data_pages;
    h.catalogBytes = blob.bytes.size();
    h.modelCount = models.size();
    h.entryCount = entry_count;
    h.catalogFnv = fnv64(blob.bytes.data(), blob.bytes.size());
    h.headerFnv = fnv64(&h, offsetof(SegmentHeader, headerFnv));

    // ---- assemble the metadata region and its trailer checksum ------
    std::vector<uint8_t> meta(data_page_start * kSegmentPageSize, 0);
    std::memcpy(meta.data(), &h, sizeof(h));
    std::memcpy(meta.data() + kSegmentPageSize, blob.bytes.data(),
                blob.bytes.size());

    SegmentTrailer t;
    t.magic = kSegmentTrailerMagic;
    t.version = kSegmentVersion;
    t.fileFnv = fnv64(meta.data(), meta.size());

    // ---- atomic write: temp file + rename ---------------------------
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return fail(err, tmp + ": cannot open for writing");
    bool ok =
        std::fwrite(meta.data(), 1, meta.size(), f) == meta.size();
    for (const SegmentEntryInput *e : planes) {
        size_t off = 0;
        while (ok && off < e->packed.size()) {
            const size_t n =
                std::min(kSegmentPageSize, e->packed.size() - off);
            std::memset(page.data(), 0, kSegmentPageSize);
            std::memcpy(page.data(), e->packed.data() + off, n);
            ok = std::fwrite(page.data(), 1, kSegmentPageSize, f) ==
                 kSegmentPageSize;
            off += n;
        }
    }
    if (ok) {
        std::memset(page.data(), 0, kSegmentPageSize);
        std::memcpy(page.data(), &t, sizeof(t));
        ok = std::fwrite(page.data(), 1, kSegmentPageSize, f) ==
             kSegmentPageSize;
    }
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return fail(err, path + ": write failed");
    }
    return true;
}

SegmentFile::~SegmentFile()
{
    close();
}

SegmentFile::SegmentFile(SegmentFile &&o) noexcept
{
    *this = std::move(o);
}

SegmentFile &
SegmentFile::operator=(SegmentFile &&o) noexcept
{
    if (this != &o) {
        close();
        path_ = std::move(o.path_);
        base_ = o.base_;
        mappedBytes_ = o.mappedBytes_;
        totalPages_ = o.totalPages_;
        dataPageStart_ = o.dataPageStart_;
        dataPageCount_ = o.dataPageCount_;
        models_ = std::move(o.models_);
        pageFnvs_ = std::move(o.pageFnvs_);
        o.base_ = nullptr;
        o.mappedBytes_ = 0;
    }
    return *this;
}

void
SegmentFile::close()
{
    if (base_ != nullptr) {
        ::munmap(base_, mappedBytes_);
        base_ = nullptr;
    }
    mappedBytes_ = 0;
    totalPages_ = dataPageStart_ = dataPageCount_ = 0;
    models_.clear();
    pageFnvs_.clear();
}

const uint8_t *
SegmentFile::pageData(uint64_t page) const
{
    return base_ + page * kSegmentPageSize;
}

uint64_t
SegmentFile::pageFnv(uint64_t page) const
{
    return pageFnvs_[page - dataPageStart_];
}

void
SegmentFile::dropPage(uint64_t page) const
{
    ::madvise(base_ + page * kSegmentPageSize, kSegmentPageSize,
              MADV_DONTNEED);
}

bool
SegmentFile::open(const std::string &path, std::string *err)
{
    close();
    path_ = path;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return fail(err, path + ": cannot open");
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        return fail(err, path + ": cannot stat");
    }
    const uint64_t size = static_cast<uint64_t>(st.st_size);
    // Exact size discipline: a segment is a whole number of pages and
    // at least header + one catalog page + trailer. Truncation (or
    // trailing junk) is detected before any field is trusted.
    if (size % kSegmentPageSize != 0 || size < 3 * kSegmentPageSize) {
        ::close(fd);
        return fail(err, path + ": truncated or misaligned (size " +
                             std::to_string(size) + ")");
    }
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (map == MAP_FAILED)
        return fail(err, path + ": mmap failed");
    base_ = static_cast<uint8_t *>(map);
    mappedBytes_ = size;

    // ---- header -----------------------------------------------------
    SegmentHeader h;
    std::memcpy(&h, base_, sizeof(h));
    if (h.magic != kSegmentMagic) {
        close();
        return fail(err, path + ": bad magic");
    }
    if (h.version != kSegmentVersion) {
        close();
        return fail(err, path + ": unsupported version " +
                             std::to_string(h.version));
    }
    if (h.pageSize != kSegmentPageSize ||
        h.headerFnv != fnv64(base_, offsetof(SegmentHeader,
                                             headerFnv))) {
        close();
        return fail(err, path + ": header checksum mismatch");
    }
    const uint64_t pages = size / kSegmentPageSize;
    if (h.totalPages != pages || h.dataPageStart < 2 ||
        h.dataPageStart + h.dataPageCount + 1 != pages ||
        h.modelCount == 0 || h.modelCount > kMaxModels ||
        h.catalogBytes == 0 ||
        h.catalogBytes >
            (h.dataPageStart - 1) * kSegmentPageSize) {
        close();
        return fail(err, path + ": inconsistent header geometry");
    }

    // ---- trailer ----------------------------------------------------
    const uint8_t *tp = base_ + (pages - 1) * kSegmentPageSize;
    SegmentTrailer t;
    std::memcpy(&t, tp, sizeof(t));
    if (t.magic != kSegmentTrailerMagic ||
        t.version != kSegmentVersion ||
        t.fileFnv !=
            fnv64(base_, h.dataPageStart * kSegmentPageSize)) {
        close();
        return fail(err, path + ": trailer checksum mismatch");
    }
    for (size_t i = sizeof(t); i < kSegmentPageSize; ++i) {
        if (tp[i] != 0) {
            close();
            return fail(err, path + ": trailer padding not zero");
        }
    }

    // ---- catalog ----------------------------------------------------
    const uint8_t *blob = base_ + kSegmentPageSize;
    if (h.catalogFnv != fnv64(blob, h.catalogBytes)) {
        close();
        return fail(err, path + ": catalog checksum mismatch");
    }
    BlobReader r{blob, static_cast<size_t>(h.catalogBytes), 0, true};
    std::vector<CatalogModel> models;
    uint64_t entries_seen = 0;
    uint64_t expect_page = h.dataPageStart; // entries are contiguous
    const uint64_t model_count = r.get<uint64_t>();
    if (!r.ok || model_count != h.modelCount) {
        close();
        return fail(err, path + ": catalog model count mismatch");
    }
    for (uint64_t mi = 0; mi < model_count; ++mi) {
        CatalogModel m;
        m.name = r.getString(kMaxNameLen);
        m.baseSeed = r.get<uint64_t>();
        m.wbits = static_cast<int>(r.get<uint32_t>());
        const uint64_t n_entries = r.get<uint64_t>();
        if (!r.ok || m.name.empty() ||
            n_entries == 0 || n_entries > kMaxEntriesPerModel) {
            close();
            return fail(err, path + ": corrupt catalog model record");
        }
        for (uint64_t ei = 0; ei < n_entries; ++ei) {
            CatalogEntry e;
            e.layer = r.getString(kMaxNameLen);
            e.n = r.get<uint64_t>();
            e.k = r.get<uint64_t>();
            e.m = r.get<uint64_t>();
            e.seed = r.get<uint64_t>();
            e.wbits = static_cast<int>(r.get<uint32_t>());
            e.reprRows = r.get<uint64_t>();
            e.reprCols = r.get<uint64_t>();
            e.rows = r.get<uint64_t>();
            e.rowStride = r.get<uint64_t>();
            e.dataBytes = r.get<uint64_t>();
            e.firstPage = r.get<uint64_t>() + h.dataPageStart;
            e.pageCount = r.get<uint64_t>();
            if (!r.ok) {
                close();
                return fail(err,
                            path + ": corrupt catalog entry record");
            }
            // Geometric invariants: a lying catalog is as rejected as
            // a corrupt one, so a WeightView built from an entry can
            // never read outside its own extent.
            if (e.wbits < 1 || e.wbits > 16 || e.reprRows == 0 ||
                e.reprCols == 0 ||
                e.rows != static_cast<uint64_t>(e.wbits) * e.reprRows ||
                e.rowStride != ceilDiv(e.reprCols, uint64_t{8}) ||
                e.dataBytes != e.rows * e.rowStride ||
                e.dataBytes > kMaxPlaneBytes ||
                e.pageCount !=
                    ceilDiv(e.dataBytes, kSegmentPageSize) ||
                e.firstPage != expect_page ||
                e.firstPage + e.pageCount >
                    h.dataPageStart + h.dataPageCount) {
                close();
                return fail(err, path + ": catalog entry '" + m.name +
                                     "/" + e.layer +
                                     "' violates format invariants");
            }
            expect_page += e.pageCount;
            ++entries_seen;
            m.entries.push_back(std::move(e));
        }
        models.push_back(std::move(m));
    }
    if (entries_seen != h.entryCount ||
        expect_page != h.dataPageStart + h.dataPageCount) {
        close();
        return fail(err, path + ": catalog extent ledger mismatch");
    }
    const uint64_t fnv_count = r.get<uint64_t>();
    if (!r.ok || fnv_count != h.dataPageCount) {
        close();
        return fail(err, path + ": per-page checksum table mismatch");
    }
    std::vector<uint64_t> fnvs(fnv_count);
    for (uint64_t i = 0; i < fnv_count; ++i)
        fnvs[i] = r.get<uint64_t>();
    if (!r.ok || r.off != h.catalogBytes) {
        close();
        return fail(err, path + ": catalog blob length mismatch");
    }

    totalPages_ = pages;
    dataPageStart_ = h.dataPageStart;
    dataPageCount_ = h.dataPageCount;
    models_ = std::move(models);
    pageFnvs_ = std::move(fnvs);
    return true;
}

} // namespace ta
