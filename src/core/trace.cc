#include "core/trace.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace ta {

std::vector<TraceRecord>
ExecutionTracer::trace(const Plan &plan)
{
    std::vector<uint64_t> lane_cycle(plan.config.lanes(), 0);
    std::vector<TraceRecord> records;
    records.reserve(plan.nodes.size());
    for (const PlanNode &pn : plan.nodes) {
        TraceRecord r;
        r.lane = pn.lane;
        // Outliers need PopCount issue slots; others one.
        const uint64_t slots = pn.outlier ? popcount(pn.id) : 1;
        r.cycle = lane_cycle[pn.lane] + slots - 1;
        lane_cycle[pn.lane] += slots;
        r.node = pn.id;
        r.parent = pn.outlier ? 0 : pn.parent;
        r.materialized = pn.materialized;
        r.outlier = pn.outlier;
        r.rowCount = pn.count;
        records.push_back(r);
    }
    return records;
}

bool
ExecutionTracer::validate(const std::vector<TraceRecord> &records)
{
    std::map<NodeId, const TraceRecord *> by_node;
    for (const auto &r : records) {
        if (by_node.count(r.node))
            return false; // node issued twice
        by_node[r.node] = &r;
    }
    for (const auto &r : records) {
        if (r.parent == 0)
            continue;
        auto it = by_node.find(r.parent);
        if (it == by_node.end())
            return false; // dangling dependency
        const TraceRecord *p = it->second;
        if (p->lane != r.lane)
            return false; // cross-lane dependency: property violated
        if (p->cycle >= r.cycle)
            return false; // parent not ready
    }
    return true;
}

uint64_t
ExecutionTracer::ppeCycles(const std::vector<TraceRecord> &records,
                           int lanes)
{
    std::vector<uint64_t> depth(lanes, 0);
    for (const auto &r : records)
        depth[r.lane] = std::max(depth[r.lane], r.cycle + 1);
    return depth.empty()
               ? 0
               : *std::max_element(depth.begin(), depth.end());
}

std::string
ExecutionTracer::render(const std::vector<TraceRecord> &records)
{
    std::ostringstream oss;
    for (const auto &r : records) {
        oss << "cycle " << r.cycle << " lane " << r.lane << ": node "
            << r.node;
        if (r.outlier)
            oss << " (outlier, " << popcount(r.node) << " adds)";
        else
            oss << " <- " << r.parent
                << (r.materialized ? " (TR)" : "");
        if (r.rowCount > 1)
            oss << " x" << r.rowCount << " rows";
        oss << '\n';
    }
    return oss.str();
}

} // namespace ta
