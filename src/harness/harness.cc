#include "harness/harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/cli.h"
#include "common/table.h"
#include "kernels/kernel_table.h"

namespace ta {

namespace detail {

void
AccelCapture::operator()(TransArrayAccelerator *acc) const
{
    if (acc == nullptr)
        return;
    if (store != nullptr)
        store->capture(acc->config().unit.scoreboardConfig(),
                       acc->planCache());
    delete acc;
}

void
CacheCapture::operator()(PlanCache *cache) const
{
    if (cache == nullptr)
        return;
    if (store != nullptr)
        store->capture(config, *cache);
    delete cache;
}

} // namespace detail

bool
parseHarnessOptions(int argc, char **argv, HarnessOptions &opt)
{
    auto usage = [&] {
        std::fprintf(
            stderr,
            "usage: %s [--list] [--filter SUBSTR] [--threads N]\n"
            "          [--seed S] [--json-out] [--quick]\n"
            "          [--plan-cache FILE] [--batch N]\n"
            "          [--kernels scalar|avx2|neon|auto]\n"
            "  --list        enumerate registered benchmarks and exit\n"
            "  --filter      run benchmarks whose name contains SUBSTR\n"
            "  --threads     host executor width (default TA_THREADS/1)\n"
            "  --seed        override the benchmark's default RNG seed\n"
            "  --json-out    write BENCH_<name>.json per benchmark\n"
            "  --quick       CI-sized shapes and iteration counts\n"
            "  --plan-cache  load/save scoreboard plans across runs\n"
            "  --batch       layers in flight per dispatch window\n"
            "                (results identical for any N)\n"
            "  --kernels     sub-tile kernel backend (results identical\n"
            "                for every backend; default TA_KERNELS/auto)\n",
            argv[0]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", a.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (a == "--list") {
            opt.list = true;
        } else if (a == "--json-out") {
            opt.emitJson = true;
        } else if (a == "--quick") {
            opt.quick = true;
        } else if (a == "--help" || a == "-h") {
            usage();
            return false;
        } else if (a == "--filter" || a == "--threads" || a == "--seed" ||
                   a == "--plan-cache" || a == "--batch" ||
                   a == "--kernels") {
            const char *v = next();
            if (v == nullptr) {
                usage();
                return false;
            }
            // Validated numeric parsing: garbage and out-of-range
            // values (--threads 0, --batch -1) are rejected with a
            // clear error instead of silently becoming 0.
            bool ok = true;
            if (a == "--filter") {
                opt.filter = v;
            } else if (a == "--threads") {
                ok = parseIntFlag(a, v, 1, 256, opt.threads);
            } else if (a == "--seed") {
                ok = parseU64Flag(a, v, 0, ~0ull, opt.seed);
                opt.haveSeed = ok;
            } else if (a == "--batch") {
                ok = parseSizeFlag(a, v, 1, 4096, opt.batch);
            } else if (a == "--kernels") {
                opt.kernels = v;
            } else {
                opt.planCachePath = v;
            }
            if (!ok) {
                usage();
                return false;
            }
        } else {
            std::fprintf(stderr, "unknown flag %s\n", a.c_str());
            usage();
            return false;
        }
    }
    return true;
}

HarnessContext::HarnessContext(std::string bench_name,
                               const HarnessOptions &opt,
                               PlanCacheStore *store)
    : name_(std::move(bench_name)), options_(opt), store_(store),
      threads_(opt.threads > 0 ? opt.threads
                               : ParallelExecutor::defaultThreads()),
      json_(name_)
{
    if (threads_ < 1)
        threads_ = 1;
    json_.add("benchmark", name_);
    json_.add("schema_version", kBenchJsonSchemaVersion);
    json_.add("quick", static_cast<uint64_t>(options_.quick ? 1 : 0));
}

ParallelExecutor &
HarnessContext::executor()
{
    if (pool_ == nullptr)
        pool_ = std::make_unique<ParallelExecutor>(threads_);
    return *pool_;
}

void
HarnessContext::metric(const std::string &key, double value)
{
    json_.add(key, value);
}

void
HarnessContext::metric(const std::string &key, uint64_t value)
{
    json_.add(key, value);
}

void
HarnessContext::metric(const std::string &key, const std::string &value)
{
    json_.add(key, value);
}

std::string
HarnessContext::writeJson() const
{
    if (!options_.emitJson)
        return "";
    return json_.write();
}

HarnessContext::AcceleratorHandle
HarnessContext::makeAccelerator(TransArrayAccelerator::Config config) const
{
    config.threads = threads_;
    AcceleratorHandle acc(new TransArrayAccelerator(config),
                          detail::AccelCapture{store_});
    if (store_ != nullptr)
        store_->restore(config.unit.scoreboardConfig(),
                        acc->planCache());
    return acc;
}

HarnessContext::PlanCacheHandle
HarnessContext::makePlanCache(const ScoreboardConfig &config,
                              size_t capacity) const
{
    PlanCacheHandle cache(new PlanCache(capacity),
                          detail::CacheCapture{store_, config});
    if (store_ != nullptr)
        store_->restore(config, *cache);
    return cache;
}

int
harnessMain(int argc, char **argv, const char *only)
{
    HarnessOptions opt;
    if (!parseHarnessOptions(argc, argv, opt))
        return 2;
    if (!opt.kernels.empty()) {
        std::string err;
        if (!setKernels(opt.kernels, &err)) {
            std::fprintf(stderr, "--kernels: %s\n", err.c_str());
            return 2;
        }
    }

    const BenchmarkRegistry &reg = BenchmarkRegistry::instance();
    std::vector<const BenchmarkDesc *> selected;
    if (only != nullptr) {
        const BenchmarkDesc *d = reg.find(only);
        if (d == nullptr) {
            std::fprintf(stderr, "benchmark '%s' is not registered\n",
                         only);
            return 2;
        }
        selected = {d};
    } else {
        selected = reg.match(opt.filter);
    }

    if (opt.list) {
        Table t("Registered benchmarks");
        t.setHeader({"Name", "Description"});
        for (const BenchmarkDesc *d : selected)
            t.addRow({d->name, d->description});
        t.print();
        std::printf("%zu benchmark(s)\n", selected.size());
        return 0;
    }
    if (selected.empty()) {
        std::fprintf(stderr, "no benchmarks match filter '%s'\n",
                     opt.filter.c_str());
        return 2;
    }

    PlanCacheStore store;
    PlanCacheStore *store_p = nullptr;
    if (!opt.planCachePath.empty()) {
        store_p = &store;
        loadPlanCacheFile(store, opt.planCachePath);
    }

    int rc = 0;
    for (const BenchmarkDesc *d : selected) {
        if (selected.size() > 1)
            std::printf("\n==== %s — %s ====\n", d->name.c_str(),
                        d->description.c_str());
        HarnessContext ctx(d->name, opt, store_p);
        const int r = d->run(ctx);
        if (r != 0) {
            std::fprintf(stderr, "benchmark '%s' failed (rc %d)\n",
                         d->name.c_str(), r);
            if (rc == 0)
                rc = r;
            continue;
        }
        const std::string path = ctx.writeJson();
        if (!path.empty())
            std::printf("wrote %s\n", path.c_str());
    }

    if (store_p != nullptr)
        savePlanCacheFile(store, opt.planCachePath);
    return rc;
}

} // namespace ta
