#include "sim/dram.h"

#include <cmath>

#include "common/logging.h"

namespace ta {

DramModel::DramModel(double bytes_per_cycle)
    : bytesPerCycle_(bytes_per_cycle)
{
    TA_ASSERT(bytes_per_cycle > 0, "bandwidth must be positive");
}

uint64_t
DramModel::transferCycles() const
{
    return cyclesFor(totalBytes());
}

uint64_t
DramModel::cyclesFor(uint64_t bytes) const
{
    return static_cast<uint64_t>(
        std::ceil(static_cast<double>(bytes) / bytesPerCycle_));
}

double
DramModel::dynamicEnergy(const EnergyParams &p) const
{
    return totalBytes() * p.dramPerByte;
}

void
DramModel::reset()
{
    readBytes_ = 0;
    writeBytes_ = 0;
}

} // namespace ta
