#include "exec/batch_scheduler.h"

namespace ta {

std::vector<LayerTask>
BatchScheduler::buildTasks(const std::vector<size_t> &itemsPerLayer,
                           int layerShards)
{
    std::vector<LayerTask> tasks;
    tasks.reserve(itemsPerLayer.size() *
                  static_cast<size_t>(layerShards));
    for (int s = 0; s < layerShards; ++s) {
        for (size_t l = 0; l < itemsPerLayer.size(); ++l) {
            const size_t n = itemsPerLayer[l];
            const size_t b =
                ParallelExecutor::shardBegin(n, s, layerShards);
            const size_t e =
                ParallelExecutor::shardBegin(n, s + 1, layerShards);
            if (b == e)
                continue;
            tasks.push_back(LayerTask{l, s, b, e});
        }
    }
    return tasks;
}

void
BatchScheduler::run(size_t numLayers, const PrepareFn &prepare,
                    const TaskFn &process)
{
    if (numLayers == 0)
        return;
    std::vector<size_t> items(numLayers, 0);
    pool_.run(numLayers, [&](int, size_t begin, size_t end) {
        for (size_t l = begin; l < end; ++l)
            items[l] = prepare(l);
    });
    run(items, process);
}

void
BatchScheduler::run(const std::vector<size_t> &itemsPerLayer,
                    const TaskFn &process)
{
    if (itemsPerLayer.empty())
        return;
    const std::vector<LayerTask> tasks =
        buildTasks(itemsPerLayer, layerShards());
    pool_.run(tasks.size(), [&](int worker, size_t begin, size_t end) {
        for (size_t t = begin; t < end; ++t)
            process(tasks[t], worker);
    });
    ++batches_;
    tasks_ += tasks.size();
}

} // namespace ta
