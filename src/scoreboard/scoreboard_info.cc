#include "scoreboard/scoreboard_info.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/logging.h"

namespace ta {

ScoreboardInfo::ScoreboardInfo(int t_bits)
    : tBits_(t_bits), entries_(1u << t_bits)
{
}

ScoreboardInfo
ScoreboardInfo::fromPlan(const Plan &plan)
{
    ScoreboardInfo si(plan.config.tBits);
    for (const auto &pn : plan.nodes) {
        SiEntry &e = si.entries_[pn.id];
        e.valid = true;
        e.prefix = pn.outlier ? 0 : pn.parent;
        e.lane = static_cast<uint8_t>(pn.lane);
        e.outlier = pn.outlier;
        e.materialized = pn.materialized;
    }
    return si;
}

const SiEntry &
ScoreboardInfo::entry(NodeId n) const
{
    TA_ASSERT(n < entries_.size(), "SI lookup ", n, " out of range");
    return entries_[n];
}

uint32_t
ScoreboardInfo::transSparsity(NodeId n) const
{
    const SiEntry &e = entry(n);
    TA_ASSERT(e.valid, "TranSparsity of node ", n, " absent from SI");
    return e.outlier ? n : (n ^ e.prefix);
}

uint64_t
ScoreboardInfo::sizeBits() const
{
    return 2ull * tBits_ * (1ull << tBits_);
}

namespace {

/** Bits per serialized entry: prefix T + valid/outlier/materialized +
 *  3-bit lane; equals the paper's 2T once T >= 6. */
int
serializedEntryBits(int t_bits)
{
    return std::max(2 * t_bits, t_bits + 6);
}

void
putBits(std::vector<uint8_t> &img, uint64_t bitpos, uint64_t value,
        int bits)
{
    for (int b = 0; b < bits; ++b) {
        const uint64_t p = bitpos + b;
        if ((value >> b) & 1)
            img[p / 8] |= static_cast<uint8_t>(1u << (p % 8));
    }
}

uint64_t
getBits(const std::vector<uint8_t> &img, uint64_t bitpos, int bits)
{
    uint64_t v = 0;
    for (int b = 0; b < bits; ++b) {
        const uint64_t p = bitpos + b;
        if (img[p / 8] & (1u << (p % 8)))
            v |= 1ull << b;
    }
    return v;
}

} // namespace

std::vector<uint8_t>
ScoreboardInfo::serialize() const
{
    TA_ASSERT(tBits_ >= 4 && tBits_ <= 8,
              "serializable SI supports T in [4,8], got ", tBits_);
    const int eb = serializedEntryBits(tBits_);
    std::vector<uint8_t> img(
        ceilDiv(static_cast<uint64_t>(eb) * entries_.size(), 8), 0);
    for (size_t n = 0; n < entries_.size(); ++n) {
        const SiEntry &e = entries_[n];
        uint64_t bitpos = n * eb;
        putBits(img, bitpos, e.prefix, tBits_);
        bitpos += tBits_;
        putBits(img, bitpos, e.valid, 1);
        putBits(img, bitpos + 1, e.outlier, 1);
        putBits(img, bitpos + 2, e.materialized, 1);
        putBits(img, bitpos + 3, e.lane, 3);
    }
    return img;
}

ScoreboardInfo
ScoreboardInfo::deserialize(int t_bits, const std::vector<uint8_t> &img)
{
    ScoreboardInfo si(t_bits);
    const int eb = serializedEntryBits(t_bits);
    TA_ASSERT(img.size() ==
                  ceilDiv(static_cast<uint64_t>(eb) *
                              si.entries_.size(),
                          8),
              "SI image size mismatch: ", img.size(), " bytes");
    for (size_t n = 0; n < si.entries_.size(); ++n) {
        SiEntry &e = si.entries_[n];
        uint64_t bitpos = n * eb;
        e.prefix = static_cast<NodeId>(getBits(img, bitpos, t_bits));
        bitpos += t_bits;
        e.valid = getBits(img, bitpos, 1);
        e.outlier = getBits(img, bitpos + 1, 1);
        e.materialized = getBits(img, bitpos + 2, 1);
        e.lane = static_cast<uint8_t>(getBits(img, bitpos + 3, 3));
    }
    return si;
}

} // namespace ta
