#include "harness/plan_cache_store.h"

#include <unistd.h>

#include <cstdio>
#include <tuple>

#include "common/logging.h"

namespace ta {

namespace {

// Sanity bounds: reject absurd counts before allocating (a corrupt or
// truncated file must fail cleanly, not OOM).
constexpr uint64_t kMaxSections = 1u << 20;
constexpr uint64_t kMaxEntries = 1u << 26;
constexpr uint64_t kMaxKeyLen = 1u << 22;
constexpr uint64_t kMaxNodes = 1u << 22;

/** FNV-1a over every payload byte as it streams through Reader or
 *  Writer; the v2 file trailer stores the final value. */
struct Fnv64
{
    uint64_t h = 0xcbf29ce484222325ull;

    void
    mix(const void *p, size_t n)
    {
        const unsigned char *b = static_cast<const unsigned char *>(p);
        for (size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 0x100000001b3ull;
        }
    }
};

struct Reader
{
    std::FILE *f = nullptr;
    bool ok = true;
    Fnv64 sum;

    template <typename T>
    T
    get()
    {
        T v{};
        if (ok && std::fread(&v, sizeof(v), 1, f) != 1)
            ok = false;
        if (ok)
            sum.mix(&v, sizeof(v));
        return v;
    }
};

struct Writer
{
    std::FILE *f = nullptr;
    bool ok = true;
    Fnv64 sum;

    template <typename T>
    void
    put(T v)
    {
        if (ok && std::fwrite(&v, sizeof(v), 1, f) != 1)
            ok = false;
        if (ok)
            sum.mix(&v, sizeof(v));
    }
};

} // namespace

bool
PlanCacheStore::ConfigKey::operator<(const ConfigKey &o) const
{
    return std::tie(tBits, maxDistance, numLanes, balanceLanes) <
           std::tie(o.tBits, o.maxDistance, o.numLanes, o.balanceLanes);
}

PlanCacheStore::ConfigKey
PlanCacheStore::keyOf(const ScoreboardConfig &config)
{
    return {config.tBits, config.maxDistance, config.numLanes,
            config.balanceLanes};
}

size_t
PlanCacheStore::planCount() const
{
    size_t n = 0;
    for (const auto &sec : sections_)
        n += sec.second.size();
    return n;
}

size_t
PlanCacheStore::restore(const ScoreboardConfig &config,
                        PlanCache &cache) const
{
    const auto it = sections_.find(keyOf(config));
    if (it == sections_.end())
        return 0;
    for (const auto &entry : it->second)
        cache.insert(entry.first, entry.second);
    return it->second.size();
}

size_t
PlanCacheStore::capture(const ScoreboardConfig &config,
                        const PlanCache &cache)
{
    Section &sec = sections_[keyOf(config)];
    cache.forEach([&](const std::vector<uint32_t> &key,
                      const std::shared_ptr<const Plan> &plan) {
        sec[key] = plan;
    });
    return sec.size();
}

bool
PlanCacheStore::saveFile(const std::string &path) const
{
    // Atomic save: write a temp file in the same directory, then
    // rename over the target. A crashed or killed process can leave a
    // stale temp file behind but never a truncated cache — other runs
    // warm-starting from `path` see either the old snapshot or the new
    // one, complete. The pid suffix keeps concurrent savers (two
    // servers sharing one warm file) from clobbering each other's
    // in-progress temp data; last rename wins whole.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return false;
    Writer w;
    w.f = f;
    w.put(kMagic);
    w.put(kVersion);
    w.put(static_cast<uint64_t>(sections_.size()));
    for (const auto &sec : sections_) {
        const ConfigKey &ck = sec.first;
        w.put(static_cast<int32_t>(ck.tBits));
        w.put(static_cast<int32_t>(ck.maxDistance));
        w.put(static_cast<int32_t>(ck.numLanes));
        w.put(static_cast<uint8_t>(ck.balanceLanes ? 1 : 0));
        w.put(static_cast<uint64_t>(sec.second.size()));
        for (const auto &entry : sec.second) {
            const std::vector<uint32_t> &key = entry.first;
            const Plan &plan = *entry.second;
            w.put(static_cast<uint64_t>(key.size()));
            if (w.ok && !key.empty()) {
                if (std::fwrite(key.data(), sizeof(uint32_t),
                                key.size(), f) != key.size())
                    w.ok = false;
                else
                    w.sum.mix(key.data(),
                              key.size() * sizeof(uint32_t));
            }
            w.put(plan.numRows);
            w.put(plan.zeroRows);
            w.put(static_cast<uint64_t>(plan.nodes.size()));
            for (const PlanNode &n : plan.nodes) {
                w.put(static_cast<uint32_t>(n.id));
                w.put(n.count);
                w.put(static_cast<uint32_t>(n.parent));
                w.put(static_cast<int32_t>(n.distance));
                w.put(static_cast<uint8_t>(n.materialized ? 1 : 0));
                w.put(static_cast<uint8_t>(n.outlier ? 1 : 0));
                w.put(static_cast<int32_t>(n.lane));
            }
        }
    }
    // v2 trailer: the checksum of every byte above, itself unhashed.
    const uint64_t sum = w.sum.h;
    if (w.ok && std::fwrite(&sum, sizeof(sum), 1, f) != 1)
        w.ok = false;
    bool ok = w.ok;
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
PlanCacheStore::loadFile(const std::string &path, bool merge)
{
    if (!merge)
        sections_.clear();
    // Parse into a scratch map and commit only on success, so a merge
    // from a corrupt file cannot leave a half-applied union.
    std::map<ConfigKey, Section> loaded;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    Reader r;
    r.f = f;

    const uint32_t magic = r.get<uint32_t>();
    const uint32_t version = r.get<uint32_t>();
    if (!r.ok || magic != kMagic || version != kVersion) {
        std::fclose(f);
        logf(LogLevel::Warn, "plan-cache",
             "rejecting %s (bad magic or version; this build reads "
             "v%u)",
             path.c_str(), kVersion);
        return false;
    }

    const uint64_t num_sections = r.get<uint64_t>();
    if (!r.ok || num_sections > kMaxSections) {
        std::fclose(f);
        logf(LogLevel::Warn, "plan-cache",
             "rejecting %s (implausible section count)",
             path.c_str());
        return false;
    }

    for (uint64_t s = 0; r.ok && s < num_sections; ++s) {
        ConfigKey ck;
        ck.tBits = r.get<int32_t>();
        ck.maxDistance = r.get<int32_t>();
        ck.numLanes = r.get<int32_t>();
        ck.balanceLanes = r.get<uint8_t>() != 0;
        const uint64_t num_entries = r.get<uint64_t>();
        if (!r.ok || num_entries > kMaxEntries || ck.tBits < 1 ||
            ck.tBits > 24 || ck.maxDistance < 0 || ck.numLanes < 0) {
            r.ok = false;
            break;
        }
        // Everything a plan references lives below 2^tBits; anything
        // larger is corruption (bit flips survive the count checks).
        const uint32_t node_bound = 1u << ck.tBits;
        ScoreboardConfig config;
        config.tBits = ck.tBits;
        config.maxDistance = ck.maxDistance;
        config.numLanes = ck.numLanes;
        config.balanceLanes = ck.balanceLanes;
        Section &sec = loaded[ck];
        for (uint64_t e = 0; r.ok && e < num_entries; ++e) {
            const uint64_t key_len = r.get<uint64_t>();
            if (!r.ok || key_len > kMaxKeyLen) {
                r.ok = false;
                break;
            }
            std::vector<uint32_t> key(key_len);
            if (key_len > 0) {
                if (std::fread(key.data(), sizeof(uint32_t), key_len,
                               f) != key_len) {
                    r.ok = false;
                    break;
                }
                r.sum.mix(key.data(), key_len * sizeof(uint32_t));
            }
            for (uint32_t v : key) {
                if (v >= node_bound) {
                    r.ok = false;
                    break;
                }
            }
            if (!r.ok)
                break;
            Plan plan;
            plan.config = config;
            plan.numRows = r.get<uint64_t>();
            plan.zeroRows = r.get<uint64_t>();
            const uint64_t num_nodes = r.get<uint64_t>();
            if (!r.ok || num_nodes > kMaxNodes) {
                r.ok = false;
                break;
            }
            plan.nodes.resize(num_nodes);
            for (uint64_t n = 0; r.ok && n < num_nodes; ++n) {
                PlanNode &pn = plan.nodes[n];
                pn.id = r.get<uint32_t>();
                pn.count = r.get<uint32_t>();
                pn.parent = r.get<uint32_t>();
                pn.distance = r.get<int32_t>();
                pn.materialized = r.get<uint8_t>() != 0;
                pn.outlier = r.get<uint8_t>() != 0;
                pn.lane = r.get<int32_t>();
                if (pn.id >= node_bound || pn.parent >= node_bound ||
                    pn.count > plan.numRows || pn.distance < 0 ||
                    pn.lane < -1 || pn.lane >= 1 << 20)
                    r.ok = false;
            }
            if (r.ok)
                sec[std::move(key)] =
                    std::make_shared<const Plan>(std::move(plan));
        }
    }

    // v2 trailer: the stored checksum (itself unhashed) must match
    // what streamed past, and a well-formed file ends exactly after
    // it. A corrupt snapshot is rejected whole — the caller starts
    // cold — never loaded partially and never a crash.
    if (r.ok) {
        const uint64_t expect = r.sum.h;
        uint64_t stored = 0;
        if (std::fread(&stored, sizeof(stored), 1, f) != 1 ||
            stored != expect)
            r.ok = false;
    }
    if (r.ok && std::fgetc(f) != EOF)
        r.ok = false;
    std::fclose(f);
    if (!r.ok) {
        logf(LogLevel::Warn, "plan-cache",
             "rejecting %s (corrupt or incompatible: bad magic, "
             "version, record or checksum)",
             path.c_str());
        return false;
    }
    if (!merge) {
        sections_ = std::move(loaded);
        return true;
    }
    for (auto &sec : loaded) {
        Section &dst = sections_[sec.first];
        for (auto &entry : sec.second)
            dst.emplace(entry.first,
                        std::move(entry.second)); // existing wins
    }
    return true;
}

bool
loadPlanCacheFile(PlanCacheStore &store, const std::string &path)
{
    if (store.loadFile(path)) {
        std::printf("plan-cache: loaded %zu plans (%zu configs) from "
                    "%s\n",
                    store.planCount(), store.sectionCount(),
                    path.c_str());
        return true;
    }
    std::printf("plan-cache: starting cold (%s absent or unreadable)\n",
                path.c_str());
    return false;
}

bool
savePlanCacheFile(const PlanCacheStore &store, const std::string &path)
{
    if (store.saveFile(path)) {
        std::printf("plan-cache: saved %zu plans (%zu configs) to %s\n",
                    store.planCount(), store.sectionCount(),
                    path.c_str());
        return true;
    }
    logf(LogLevel::Warn, "plan-cache", "failed to write %s",
         path.c_str());
    return false;
}

} // namespace ta
