/**
 * @file
 * ta_router: the cluster front-end. Spawns and supervises N
 * `ta_serve` replicas (fork+exec on ephemeral ports, health-checked,
 * crash-restarted with bounded backoff) and speaks the same
 * line-delimited JSON protocol as a single `ta_serve` — on
 * stdin/stdout (default) or a TCP port — forwarding each request to a
 * replica under a routing policy. Responses are byte-identical to
 * single-process serving for every policy and replica count.
 *
 * Usage:
 *   ta_router [--replicas N] [--policy round_robin|least_outstanding|
 *             affinity] [--serve-bin PATH] [--port PORT | --tcp PORT]
 *             [--threads N] [--window N] [--sessions N]
 *             [--plan-cache BASE] [--cache-save-interval SEC]
 *             [--max-outstanding N] [--request-timeout MS]
 *             [--retry-budget N] [--max-waiting N]
 *             [--autoscale-max N] [--trace-out BASE]
 *   ta_router merge OUT IN [IN...]
 *
 * Degradation knobs: --request-timeout withdraws and re-dispatches
 * requests stuck on a stalled replica; --retry-budget bounds the
 * redispatches per request before it is shed with an `overloaded`
 * error; --max-waiting bounds blocked submitters the same way;
 * --autoscale-max lets the manager grow/shrink the active replica
 * set between --replicas and N on queue pressure.
 *
 * With --plan-cache BASE, replica i persists to `BASE.<i>`. The
 * `merge` mode unions such per-replica cache files into one snapshot
 * (earlier inputs win on conflicts) for cold-start distribution.
 *
 * The `stats` op answers with cluster-wide aggregates; `shutdown`
 * stops the router, which gracefully stops every replica (each
 * persists its cache file on the way out).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "common/cli.h"
#include "harness/plan_cache_store.h"
#include "obs/trace.h"
#include "service/server.h"
#include "storage/buffer_manager.h"

using namespace ta;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--replicas N] [--policy P] [--serve-bin PATH]\n"
        "          [--port PORT | --tcp PORT] [--threads N]\n"
        "          [--window N] [--sessions N] [--plan-cache BASE]\n"
        "          [--cache-save-interval SEC] [--max-outstanding N]\n"
        "          [--request-timeout MS] [--retry-budget N]\n"
        "          [--max-waiting N] [--autoscale-max N]\n"
        "          [--catalog DIR] [--buffer-pages N]\n"
        "          [--trace-out BASE]\n"
        "       %s merge OUT IN [IN...]\n"
        "  --replicas       ta_serve replica processes (default 2)\n"
        "  --policy         round_robin | least_outstanding |\n"
        "                   affinity (default affinity: hash of the\n"
        "                   engine key picks the replica, keeping\n"
        "                   per-replica plan caches hot)\n"
        "  --serve-bin      ta_serve binary (default: next to this\n"
        "                   binary)\n"
        "  --port / --tcp   serve the protocol on 127.0.0.1:PORT\n"
        "                   (0 = ephemeral) instead of stdin/stdout;\n"
        "                   the bound port is printed on stdout as\n"
        "                   'listening <port>'\n"
        "  --threads/--window/--sessions\n"
        "                   forwarded to every replica\n"
        "  --plan-cache     replica i warm-starts from and persists\n"
        "                   to BASE.<i>\n"
        "  --cache-save-interval\n"
        "                   replicas also persist every SEC seconds\n"
        "                   (crash-restarted replicas come back warm)\n"
        "  --max-outstanding\n"
        "                   per-replica in-flight cap (default 256)\n"
        "  --request-timeout\n"
        "                   withdraw and re-dispatch a request stuck\n"
        "                   in flight longer than MS (default 0 =\n"
        "                   never; catches stalled replicas)\n"
        "  --retry-budget   re-dispatches per request before it is\n"
        "                   shed with an 'overloaded' error\n"
        "                   (default 5)\n"
        "  --max-waiting    blocked submitters before new requests\n"
        "                   are shed (default 0 = unbounded)\n"
        "  --autoscale-max  grow/shrink the active replica set\n"
        "                   between --replicas and N on queue\n"
        "                   pressure (default off)\n"
        "  --catalog        segment-file directory forwarded to every\n"
        "                   replica (validated here first; a corrupt\n"
        "                   or empty catalog is a startup error)\n"
        "  --buffer-pages   per-replica buffer-manager residency\n"
        "                   bound, forwarded with --catalog\n"
        "  --trace-out      trace requests across the cluster: the\n"
        "                   router writes BASE.router.json and\n"
        "                   replica i writes BASE.replica<i>.json\n"
        "                   (Chrome trace JSON; merge and analyze\n"
        "                   with ta_trace)\n"
        "  merge            union per-replica cache files into OUT\n"
        "                   (earlier inputs win on conflicts)\n",
        argv0, argv0);
}

int
mergeMain(int argc, char **argv)
{
    // ta_router merge OUT IN [IN...]
    if (argc < 4) {
        usage(argv[0]);
        return 2;
    }
    const std::string out = argv[2];
    PlanCacheStore store;
    for (int i = 3; i < argc; ++i) {
        const size_t before = store.planCount();
        if (!store.loadFile(argv[i], /*merge=*/true)) {
            std::fprintf(stderr,
                         "ta_router: cannot read %s (missing or "
                         "malformed)\n",
                         argv[i]);
            return 1;
        }
        std::printf("merged %s: +%zu plans (%zu total, %zu "
                    "configs)\n",
                    argv[i], store.planCount() - before,
                    store.planCount(), store.sectionCount());
    }
    if (!store.saveFile(out)) {
        std::fprintf(stderr, "ta_router: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    std::printf("wrote %s: %zu plans (%zu configs)\n", out.c_str(),
                store.planCount(), store.sectionCount());
    return 0;
}

/** The router's protocol handler: stats/ping/shutdown here, "run"
 *  through the Router. */
LineHandler
makeRouterHandler(Router &router, std::atomic<bool> &shutdown_flag)
{
    return [&router, &shutdown_flag](
               const std::string &line,
               const std::shared_ptr<ConnWriter> &writer) -> bool {
        ServiceRequest req;
        std::string err;
        if (!parseRequestLine(line, req, err)) {
            writer->writeLine(serializeError(req.id, err));
            return true;
        }
        if (req.op == "shutdown") {
            shutdown_flag.store(true);
            writer->writeLine("{\"id\":" + std::to_string(req.id) +
                              ",\"ok\":1,\"shutdown\":1}");
            return false;
        }
        // ping and stats are answered by the router itself (stats
        // aggregates every replica's counters); "run" is routed.
        writer->beginRequest();
        router.submit(req, [writer](const std::string &response) {
            writer->writeLine(response);
            writer->finishRequest();
        });
        return true;
    };
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::string(argv[1]) == "merge")
        return mergeMain(argc, argv);

    ReplicaProcessConfig rcfg;
    rcfg.serveBinary = defaultServeBinary(argv[0]);
    rcfg.count = 2;
    RouterConfig rtcfg;
    long long tcp_port = 0;
    bool tcp_mode = false;
    long long threads = 0, window = 0, sessions = 0;
    long long buffer_pages = 0;
    std::string catalog_dir;
    std::string trace_out_base;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 2;
        }
        const bool known =
            a == "--replicas" || a == "--policy" ||
            a == "--serve-bin" || a == "--port" || a == "--tcp" ||
            a == "--threads" || a == "--window" ||
            a == "--sessions" || a == "--plan-cache" ||
            a == "--cache-save-interval" ||
            a == "--max-outstanding" || a == "--request-timeout" ||
            a == "--retry-budget" || a == "--max-waiting" ||
            a == "--autoscale-max" || a == "--catalog" ||
            a == "--buffer-pages" || a == "--trace-out";
        if (!known) {
            std::fprintf(stderr, "unknown flag %s\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", a.c_str());
            usage(argv[0]);
            return 2;
        }
        const char *v = argv[++i];
        bool ok = true;
        if (a == "--replicas")
            ok = parseIntFlag(a, v, 1, 64, rcfg.count);
        else if (a == "--policy") {
            ok = parseRoutePolicy(v, rtcfg.policy);
            if (!ok)
                std::fprintf(stderr,
                             "--policy: expected round_robin, "
                             "least_outstanding or affinity, got "
                             "'%s'\n",
                             v);
        } else if (a == "--serve-bin")
            rcfg.serveBinary = v;
        else if (a == "--port" || a == "--tcp") {
            ok = parseIntFlag(a, v, 0, 65535, tcp_port);
            tcp_mode = true;
        } else if (a == "--threads")
            ok = parseIntFlag(a, v, 1, 256, threads);
        else if (a == "--window")
            ok = parseIntFlag(a, v, 1, 256, window);
        else if (a == "--sessions")
            ok = parseIntFlag(a, v, 1, 64, sessions);
        else if (a == "--plan-cache")
            rcfg.planCacheBase = v;
        else if (a == "--cache-save-interval")
            ok = parseIntFlag(a, v, 0, 86400,
                              rcfg.cacheSaveIntervalSec);
        else if (a == "--max-outstanding") {
            ok = parseSizeFlag(a, v, 1, 1u << 20,
                               rtcfg.maxOutstanding);
        } else if (a == "--request-timeout") {
            long long ms = 0;
            ok = parseIntFlag(a, v, 0, 3600000, ms);
            rtcfg.requestTimeoutMs = static_cast<int>(ms);
        } else if (a == "--retry-budget") {
            long long budget = 0;
            ok = parseIntFlag(a, v, 0, 1000, budget);
            rtcfg.maxRedispatch = static_cast<int>(budget);
        } else if (a == "--max-waiting") {
            ok = parseSizeFlag(a, v, 0, 1u << 20, rtcfg.maxWaiting);
        } else if (a == "--autoscale-max") {
            long long max_replicas = 0;
            ok = parseIntFlag(a, v, 1, 64, max_replicas);
            rcfg.autoscale.maxReplicas =
                static_cast<int>(max_replicas);
        } else if (a == "--catalog") {
            catalog_dir = v;
        } else if (a == "--trace-out") {
            trace_out_base = v;
        } else if (a == "--buffer-pages") {
            ok = parseIntFlag(a, v, 1, 1 << 26, buffer_pages);
        }
        if (!ok) {
            usage(argv[0]);
            return 2;
        }
    }
    if (threads > 0) {
        rcfg.serveArgs.push_back("--threads");
        rcfg.serveArgs.push_back(std::to_string(threads));
    }
    if (window > 0) {
        rcfg.serveArgs.push_back("--window");
        rcfg.serveArgs.push_back(std::to_string(window));
    }
    if (sessions > 0) {
        rcfg.serveArgs.push_back("--sessions");
        rcfg.serveArgs.push_back(std::to_string(sessions));
    }
    if (!catalog_dir.empty()) {
        // Validate once here before fanning out to N replicas: a
        // catalog every replica would reject is a router startup
        // error, not N crash-looping children.
        BufferManager probe;
        std::string err;
        if (!probe.openCatalog(catalog_dir, &err)) {
            std::fprintf(stderr, "--catalog: %s\n", err.c_str());
            return 2;
        }
        rcfg.serveArgs.push_back("--catalog");
        rcfg.serveArgs.push_back(catalog_dir);
        if (buffer_pages > 0) {
            rcfg.serveArgs.push_back("--buffer-pages");
            rcfg.serveArgs.push_back(std::to_string(buffer_pages));
        }
    }

    if (!trace_out_base.empty()) {
        // The router is the cluster's trace-context source: it mints
        // ids for untraced requests and propagates them replica-ward
        // on the wire; every process writes its own trace file.
        obs::Tracer::instance().enable(
            trace_out_base + ".router.json", "ta_router");
        rcfg.traceOutBase = trace_out_base;
    }

    ReplicaManager manager(rcfg);
    if (!manager.start())
        return 1;
    Router router(rtcfg, manager);
    router.start();
    std::fprintf(stderr,
                 "ta_router: %d replica(s), policy %s, %s mode\n",
                 manager.count(), routePolicyName(rtcfg.policy),
                 tcp_mode ? "tcp" : "stdio");

    std::atomic<bool> shutdown_flag{false};
    const LineHandler handler =
        makeRouterHandler(router, shutdown_flag);
    const int rc =
        tcp_mode ? serveLineTcp(handler,
                                static_cast<uint16_t>(tcp_port),
                                shutdown_flag, "ta_router")
                 : serveLineStdio(handler);

    router.stop();
    manager.stop(); // graceful: every replica persists its cache
    const RouterCounters rcount = router.counters();
    std::fprintf(stderr,
                 "ta_router: forwarded %llu (retried %llu, failed "
                 "%llu, timed out %llu, shed %llu), %llu replica "
                 "restart(s), scale +%llu/-%llu\n",
                 static_cast<unsigned long long>(rcount.forwarded),
                 static_cast<unsigned long long>(rcount.retried),
                 static_cast<unsigned long long>(rcount.failed),
                 static_cast<unsigned long long>(rcount.timedOut),
                 static_cast<unsigned long long>(rcount.shed),
                 static_cast<unsigned long long>(manager.restarts()),
                 static_cast<unsigned long long>(manager.scaleUps()),
                 static_cast<unsigned long long>(
                     manager.scaleDowns()));
    if (!trace_out_base.empty()) {
        obs::Tracer &tracer = obs::Tracer::instance();
        if (tracer.flush())
            std::fprintf(stderr,
                         "ta_router: wrote %llu span(s) to "
                         "%s.router.json (%llu dropped)\n",
                         static_cast<unsigned long long>(
                             tracer.spanCount()),
                         trace_out_base.c_str(),
                         static_cast<unsigned long long>(
                             tracer.dropped()));
        else
            std::fprintf(stderr,
                         "ta_router: failed to write %s.router.json\n",
                         trace_out_base.c_str());
    }
    return rc;
}
