/** @file Unit + property tests for the Hasse graph (Sec. 2.3). */

#include <gtest/gtest.h>

#include <algorithm>

#include "hasse/hasse_graph.h"

namespace ta {
namespace {

TEST(HasseGraph, BasicShape)
{
    HasseGraph g(4);
    EXPECT_EQ(g.tBits(), 4);
    EXPECT_EQ(g.numNodes(), 16u);
    EXPECT_EQ(g.level(0), 0);
    EXPECT_EQ(g.level(0b1011), 3);
    EXPECT_EQ(g.level(0b1111), 4);
}

TEST(HasseGraph, RejectsBadWidth)
{
    EXPECT_THROW(HasseGraph(1), std::logic_error);
    EXPECT_THROW(HasseGraph(17), std::logic_error);
}

TEST(HasseGraph, PrefixesOfNode11)
{
    // Fig. 4: prefixes of 1011 are 0011, 1001, 1010.
    HasseGraph g(4);
    auto p = g.prefixes(0b1011);
    std::sort(p.begin(), p.end());
    EXPECT_EQ(p, (std::vector<NodeId>{0b0011, 0b1001, 0b1010}));
}

TEST(HasseGraph, SuffixesOfNode3)
{
    // Suffixes of 0011 are 0111 and 1011 (Fig. 4a edges).
    HasseGraph g(4);
    EXPECT_EQ(g.suffixes(0b0011), (std::vector<NodeId>{0b0111, 0b1011}));
}

TEST(HasseGraph, RootAndTopNeighbors)
{
    HasseGraph g(4);
    EXPECT_TRUE(g.prefixes(0).empty());
    EXPECT_EQ(g.suffixes(0).size(), 4u);
    EXPECT_TRUE(g.suffixes(0b1111).empty());
    EXPECT_EQ(g.prefixes(0b1111).size(), 4u);
}

TEST(HasseGraph, PrecedesIsStrictSubset)
{
    HasseGraph g(4);
    EXPECT_TRUE(g.precedes(0b0011, 0b1011));
    EXPECT_TRUE(g.precedes(0, 0b0001));
    EXPECT_FALSE(g.precedes(0b0011, 0b0011)); // strict
    EXPECT_FALSE(g.precedes(0b0011, 0b0101)); // incomparable
    EXPECT_FALSE(g.precedes(0b1011, 0b0011)); // wrong direction
}

TEST(HasseGraph, DistanceSemantics)
{
    // Fig. 4(b): distance(4, 14) considers 12 as intermediate -> 2.
    HasseGraph g(4);
    EXPECT_EQ(g.distance(0b0100, 0b1110), 2);
    EXPECT_EQ(g.distance(0b0011, 0b1011), 1);
    EXPECT_EQ(g.distance(0b1011, 0b1111), 1);
    EXPECT_EQ(g.distance(5, 5), 0);
    EXPECT_EQ(g.distance(0b0011, 0b0101), -1);
}

TEST(HasseGraph, SuffixPrefixAreInverse)
{
    HasseGraph g(5);
    for (NodeId n = 0; n < g.numNodes(); ++n) {
        for (NodeId s : g.suffixes(n)) {
            const auto back = g.prefixes(s);
            EXPECT_NE(std::find(back.begin(), back.end(), n), back.end());
            EXPECT_EQ(g.level(s), g.level(n) + 1);
        }
    }
}

TEST(HasseGraph, LevelWidthsAreBinomials)
{
    HasseGraph g(8);
    EXPECT_EQ(g.levelWidth(0), 1u);
    EXPECT_EQ(g.levelWidth(1), 8u);
    EXPECT_EQ(g.levelWidth(4), 70u); // paper: level 4 of 8-bit graph
    EXPECT_EQ(g.levelWidth(8), 1u);
    EXPECT_EQ(g.maxLevelWidth(), 70u);

    HasseGraph g4(4);
    EXPECT_EQ(g4.maxLevelWidth(), 6u); // paper: level 2 of 4-bit graph
}

TEST(HasseGraph, LevelWidthsSumToNodeCount)
{
    for (int t : {2, 4, 6, 8}) {
        HasseGraph g(t);
        uint64_t total = 0;
        for (int l = 0; l <= t; ++l)
            total += g.levelWidth(l);
        EXPECT_EQ(total, g.numNodes());
    }
}

TEST(HasseGraph, ForwardOrderStartsAtRootEndsAtTop)
{
    HasseGraph g(6);
    EXPECT_EQ(g.forwardOrder().front(), 0u);
    EXPECT_EQ(g.forwardOrder().back(), 63u);
}

class HasseProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(HasseProperty, EveryNonRootNodeHasLevelManyPrefixes)
{
    HasseGraph g(GetParam());
    for (NodeId n = 1; n < g.numNodes(); ++n) {
        EXPECT_EQ(g.prefixes(n).size(),
                  static_cast<size_t>(g.level(n)));
        EXPECT_EQ(g.suffixes(n).size(),
                  static_cast<size_t>(g.tBits() - g.level(n)));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, HasseProperty,
                         ::testing::Values(2, 3, 4, 5, 8));

} // namespace
} // namespace ta
