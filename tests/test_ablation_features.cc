/**
 * @file
 * Tests for the ablation-facing features: the lane-balancing switch,
 * the 4-bit-activation PPE split, the m-tile overhead knob, and
 * runShape scaling consistency.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/accelerator.h"
#include "scoreboard/scoreboard.h"
#include "workloads/generators.h"

namespace ta {
namespace {

std::vector<uint32_t>
randomValues(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> v(n);
    for (auto &x : v)
        x = static_cast<uint32_t>(rng.uniformInt(0, 255));
    return v;
}

TEST(LaneBalanceSwitch, NaiveModeKeepsInvariants)
{
    ScoreboardConfig c;
    c.tBits = 8;
    c.balanceLanes = false;
    const Plan plan = Scoreboard(c).build(randomValues(256, 1));
    // Ops accounting unchanged by the policy.
    EXPECT_EQ(plan.prRows() + plan.frRows(),
              plan.numRows - plan.zeroRows);
    for (const auto &pn : plan.nodes) {
        EXPECT_GE(pn.lane, 0);
        EXPECT_LT(pn.lane, 8);
        if (!pn.outlier) {
            EXPECT_EQ(popcount(pn.id ^ pn.parent), 1);
        }
    }
}

TEST(LaneBalanceSwitch, SameOpsDifferentSchedule)
{
    ScoreboardConfig bal, naive;
    bal.tBits = naive.tBits = 8;
    naive.balanceLanes = false;
    const auto values = randomValues(256, 2);
    const Plan pb = Scoreboard(bal).build(values);
    const Plan pn = Scoreboard(naive).build(values);
    EXPECT_EQ(pb.totalOps(), pn.totalOps());
}

TEST(LaneBalanceSwitch, BalancedNeverWorseOnAverage)
{
    ScoreboardConfig bal, naive;
    bal.tBits = naive.tBits = 8;
    naive.balanceLanes = false;
    uint64_t bal_max = 0, naive_max = 0;
    for (int i = 0; i < 24; ++i) {
        const auto values = randomValues(256, 100 + i);
        const auto lb = Scoreboard(bal).build(values).laneOps();
        const auto ln = Scoreboard(naive).build(values).laneOps();
        bal_max += *std::max_element(lb.begin(), lb.end());
        naive_max += *std::max_element(ln.begin(), ln.end());
    }
    EXPECT_LT(bal_max, naive_max);
}

TEST(Accelerator, FourBitActivationsHalveMTiles)
{
    TransArrayAccelerator::Config c8;
    c8.sampleLimit = 32;
    TransArrayAccelerator::Config c4 = c8;
    c4.actBits = 4;
    const SlicedMatrix w = realLikeSlicedWeights(64, 128, 8, 5);
    const uint64_t cy8 =
        TransArrayAccelerator(c8).runLayer(w, 2048).computeCycles;
    const uint64_t cy4 =
        TransArrayAccelerator(c4).runLayer(w, 2048).computeCycles;
    EXPECT_NEAR(static_cast<double>(cy8) / cy4, 2.0, 0.2);
}

TEST(Accelerator, MTileOverheadMonotone)
{
    TransArrayAccelerator::Config lo;
    lo.sampleLimit = 32;
    lo.mTileOverheadCycles = 0;
    TransArrayAccelerator::Config hi = lo;
    hi.mTileOverheadCycles = 16;
    const SlicedMatrix w = realLikeSlicedWeights(64, 128, 8, 6);
    EXPECT_LT(TransArrayAccelerator(lo).runLayer(w, 512).computeCycles,
              TransArrayAccelerator(hi).runLayer(w, 512).computeCycles);
}

TEST(Accelerator, RunShapeScalesWithN)
{
    TransArrayAccelerator::Config c;
    c.sampleLimit = 32;
    TransArrayAccelerator acc(c);
    const GemmShape small{512, 1024, 512};
    const GemmShape big{1024, 1024, 512};
    const uint64_t cs = acc.runShape(small, 8, 7).computeCycles;
    const uint64_t cb = acc.runShape(big, 8, 7).computeCycles;
    EXPECT_NEAR(static_cast<double>(cb) / cs, 2.0, 0.1);
}

TEST(Accelerator, RunShapeRecomputesDramExactly)
{
    TransArrayAccelerator::Config c;
    c.sampleLimit = 16;
    TransArrayAccelerator acc(c);
    const GemmShape shape{4096, 4096, 128};
    const LayerRun r = acc.runShape(shape, 4, 9);
    const uint64_t expected = 4096ull * 4096 / 2  // int4 weights
                              + 4096ull * 128     // int8 inputs
                              + 4096ull * 128 * 4; // int32 outputs
    EXPECT_EQ(r.dramBytes, expected);
}

TEST(Accelerator, RunShapeSmallShapeUnscaled)
{
    // Shapes below the representative caps are simulated directly.
    TransArrayAccelerator::Config c;
    c.sampleLimit = 0;
    TransArrayAccelerator acc(c);
    const GemmShape shape{64, 128, 64};
    const LayerRun a = acc.runShape(shape, 8, 11);
    const LayerRun b = acc.runLayer(
        realLikeSlicedWeights(64, 128, 8, 11), 64);
    EXPECT_EQ(a.computeCycles, b.computeCycles);
}

} // namespace
} // namespace ta
