#include "hasse/translators.h"

#include "common/logging.h"

namespace ta {

NeighborBitmap
encodePrefix(NodeId n, NodeId p)
{
    const uint32_t diff = n ^ p;
    TA_ASSERT(isPow2(diff) && (n & diff),
              "node ", n, " does not cover ", p);
    return diff;
}

std::vector<NodeId>
decodePrefixes(NodeId n, NeighborBitmap bm)
{
    std::vector<NodeId> out;
    for (int b : setBits(bm)) {
        const uint32_t bit = 1u << b;
        TA_ASSERT(n & bit, "prefix bitmap bit ", b,
                  " not set in node ", n);
        out.push_back(n & ~bit);
    }
    return out;
}

NodeId
firstPrefix(NodeId n, NeighborBitmap bm)
{
    if (bm == 0)
        return n;
    const uint32_t low = bm & (~bm + 1);
    TA_ASSERT(n & low, "prefix bitmap bit not set in node ", n);
    return n & ~low;
}

NeighborBitmap
encodeSuffix(NodeId n, NodeId s)
{
    const uint32_t diff = n ^ s;
    TA_ASSERT(isPow2(diff) && (s & diff),
              "node ", s, " does not cover ", n);
    return diff;
}

std::vector<NodeId>
decodeSuffixes(NodeId n, NeighborBitmap bm)
{
    std::vector<NodeId> out;
    for (int b : setBits(bm)) {
        const uint32_t bit = 1u << b;
        TA_ASSERT(!(n & bit), "suffix bitmap bit ", b,
                  " already set in node ", n);
        out.push_back(n | bit);
    }
    return out;
}

} // namespace ta
