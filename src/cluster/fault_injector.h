/**
 * @file
 * Deterministic fault injection for the serving cluster. A FaultPlan
 * is a seeded schedule of events keyed to the load generator's
 * request index — "when request N is issued, kill two replicas" — so
 * an adversarial run is exactly reproducible from (trace seed, fault
 * spec, fault seed). Three fault kinds:
 *
 *  - kill:          SIGKILL k live replicas (crash-restart path).
 *  - blackhole:     SIGSTOP a replica for a duration, then SIGCONT —
 *                   the connection stays open but nothing answers,
 *                   exercising the router's per-request timeout and
 *                   redispatch instead of its disconnect sweep.
 *  - corrupt_cache: flip one byte of the replica's persisted
 *                   plan-cache file, then SIGKILL it — the restart
 *                   must reject the corrupt snapshot (checksum) and
 *                   come back cold instead of crashing or loading
 *                   garbage.
 *  - corrupt_segment: flip one byte inside the data region of a
 *                   catalog segment file — past open-time validation,
 *                   where only the buffer manager's pin-time page
 *                   checksum can see it. Requests for the corrupted
 *                   plane must fail with a clean "storage:" protocol
 *                   error (no crash, no wrong bytes); everything else
 *                   keeps serving.
 *
 * Spec grammar (the `--faults` flag of ta_loadgen):
 *   spec    := event (';' event)*
 *   event   := 'kill@' AT [':' COUNT]
 *            | 'blackhole@' AT [':' SLOT [':' DURATION_MS]]
 *            | 'corrupt_cache@' AT [':' SLOT]
 *            | 'corrupt_segment@' AT
 *   AT      := request index (0-based) at which the event fires
 *   SLOT    := fixed replica slot, or -1 to pick a seeded random
 *              live replica (the default)
 * e.g. "kill@12:2;blackhole@5:0:400;corrupt_cache@20:1".
 *
 * Victim selection among live replicas uses the injector's own seeded
 * Rng, so two runs with the same seed pick the same victims (given
 * the same set of live slots — which the deterministic schedule
 * produces).
 */

#ifndef TA_CLUSTER_FAULT_INJECTOR_H
#define TA_CLUSTER_FAULT_INJECTOR_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/replica_manager.h"
#include "common/rng.h"

namespace ta {

enum class FaultKind
{
    Kill,
    Blackhole,
    CorruptCache,
    CorruptSegment,
};

/** One scheduled fault. */
struct FaultEvent
{
    FaultKind kind = FaultKind::Kill;
    uint64_t atRequest = 0; ///< fires when this request is issued
    int count = 1;          ///< kill: number of victims
    int slot = -1;          ///< fixed slot, or -1 = seeded random
    int durationMs = 200;   ///< blackhole: stall length
};

/** A full schedule (events need not be sorted). */
struct FaultPlan
{
    std::vector<FaultEvent> events;
};

/** Parse the `--faults` spec grammar; false + `err` on malformed
 *  input. An empty spec parses to an empty plan. */
bool parseFaultSpec(const std::string &spec, FaultPlan &plan,
                    std::string &err);

/**
 * Flip one byte in the middle of a ta-segment file's data region —
 * the packed weight planes, which open-time validation deliberately
 * does not hash; only the buffer manager's pin-time page checksum can
 * reject the damage. False when the file cannot be opened or its
 * header does not parse as a segment.
 */
bool corruptSegmentDataByte(const std::string &path);

class FaultInjector
{
  public:
    /** `planCacheBase` is the manager's per-replica cache file base
     *  (required only by corrupt_cache events); `catalogDir` is the
     *  replicas' segment directory (required only by corrupt_segment
     *  events). */
    FaultInjector(ReplicaManager &manager, FaultPlan plan,
                  uint64_t seed, std::string planCacheBase = "",
                  std::string catalogDir = "");
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * The load generator announces that request `index` is being
     * issued; every not-yet-fired event with atRequest <= index fires
     * now, exactly once. Thread-safe; blackhole SIGCONTs are
     * delivered by a background timer thread so this never sleeps.
     */
    void onRequestIssued(uint64_t index);

    struct Counters
    {
        uint64_t kills = 0;
        uint64_t blackholes = 0;
        uint64_t corruptions = 0;
        uint64_t segmentCorruptions = 0;
    };
    Counters counters() const;

  private:
    struct Stalled
    {
        pid_t pid;
        std::chrono::steady_clock::time_point wake;
    };

    void fire(const FaultEvent &ev);
    /** A live victim slot (fixed when ev.slot >= 0, else seeded
     *  choice among up slots); -1 when none qualify. */
    int pickVictim(int fixedSlot);
    void timerLoop();

    ReplicaManager &manager_;
    FaultPlan plan_;
    std::string planCacheBase_;
    std::string catalogDir_;
    Rng rng_;
    mutable std::mutex mu_;
    std::vector<bool> fired_;
    Counters counters_;

    std::mutex timerMu_;
    std::condition_variable timerCv_;
    std::vector<Stalled> stalled_;
    bool timerStop_ = false;
    std::thread timer_;
};

} // namespace ta

#endif // TA_CLUSTER_FAULT_INJECTOR_H
