/**
 * @file
 * Bounded admission queue of the service front-end. submit() enforces
 * admission control (a full queue rejects instead of blocking — the
 * caller sends an "overloaded" error so clients see backpressure
 * immediately), and popBatch() is where cross-request batching starts:
 * it pops the most urgent oldest job plus up to window-1 jobs with the
 * same EngineKey, preserving FIFO order among the jobs it leaves
 * behind.
 *
 * Priorities: jobs are held in one FIFO class per request priority
 * (0 .. 2, where 2 is the most urgent). popBatch() always starts from
 * the highest non-empty class and coalesces same-engine jobs from the
 * highest class down, FIFO within each class — priorities reorder
 * dispatch only and can never change a response's bytes.
 *
 * Thread safety: every method may be called from any thread. Worker
 * sessions block in popBatch() until work arrives or close() drains
 * the queue for shutdown.
 */

#ifndef TA_SERVICE_REQUEST_QUEUE_H
#define TA_SERVICE_REQUEST_QUEUE_H

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "service/protocol.h"

namespace ta {

/** Delivers one response line; called exactly once per request. */
using ServiceResponder = std::function<void(const std::string &line)>;

/** One admitted request waiting for a worker session. */
struct ServiceJob
{
    ServiceRequest request;
    EngineKey key;
    ServiceResponder respond;
    std::chrono::steady_clock::time_point enqueued;
};

class RequestQueue
{
  public:
    /** One FIFO class per valid priority (0 .. kMaxPriority). */
    static constexpr int kPriorities = kMaxPriority + 1;

    struct Counters
    {
        uint64_t admitted = 0;
        uint64_t rejected = 0;
        uint64_t peakDepth = 0;
    };

    /** `capacity` >= 1: jobs resident before admission control trips. */
    explicit RequestQueue(size_t capacity);

    /**
     * Admit `job` unless the queue is full. Returns false on rejection
     * (the job's responder has NOT been called — the caller owns the
     * rejection response) or after close().
     */
    bool submit(ServiceJob job);

    /**
     * Block until a job is available, then fill `out` with the oldest
     * job of the highest non-empty priority class plus up to
     * `max_window - 1` jobs sharing its EngineKey (highest class
     * first, FIFO within each class). Returns false once the queue is
     * closed and drained.
     */
    bool popBatch(size_t max_window, std::vector<ServiceJob> &out);

    /** Reject new work and wake every popBatch() blocked waiter. */
    void close();

    size_t depth() const;
    Counters counters() const;

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    /** One FIFO per priority class; classes_[kPriorities-1] is most
     *  urgent. `resident_` is the job count across all classes. */
    std::array<std::deque<ServiceJob>, kPriorities> classes_;
    size_t resident_ = 0;
    Counters counters_;
    bool closed_ = false;
};

} // namespace ta

#endif // TA_SERVICE_REQUEST_QUEUE_H
